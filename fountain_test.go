package fountain

import (
	"bytes"
	"math/rand"
	"net"
	"testing"
	"time"
)

// TestPublicAPIQuickstart exercises the documented public surface end to
// end: codec construction, session, receiver, efficiency accounting.
func TestPublicAPIQuickstart(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	file := make([]byte, 100<<10)
	rng.Read(file)
	cfg := DefaultConfig()
	cfg.Layers = 1
	sess, err := NewSession(file, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := NewReceiver(sess.Info())
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; !rcv.Done(); round++ {
		for _, idx := range sess.CarouselIndices(0, round) {
			if rng.Float64() < 0.3 {
				continue
			}
			rcv.HandleRaw(sess.Packet(idx, 0, uint32(round), 0))
		}
	}
	got, err := rcv.File()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, file) {
		t.Fatal("file corrupted")
	}
}

// TestPublicCodecs constructs each public codec and round-trips it.
func TestPublicCodecs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	k, pl := 32, 32
	mks := map[string]func() (Codec, error){
		"tornado-a":   func() (Codec, error) { return NewTornado(TornadoA(), k, 2*k, pl, 7) },
		"tornado-b":   func() (Codec, error) { return NewTornado(TornadoB(), k, 2*k, pl, 7) },
		"vandermonde": func() (Codec, error) { return NewVandermonde(k, 2*k, pl) },
		"cauchy":      func() (Codec, error) { return NewCauchy(k, 2*k, pl) },
		"interleaved": func() (Codec, error) { return NewInterleaved(k, 8, 2, pl) },
	}
	for name, mk := range mks {
		c, err := mk()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		src := make([][]byte, c.K())
		for i := range src {
			src[i] = make([]byte, pl)
			rng.Read(src[i])
		}
		enc, err := c.Encode(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		d := c.NewDecoder()
		for _, i := range rng.Perm(c.N()) {
			if done, _ := d.Add(i, enc[i]); done {
				break
			}
		}
		got, err := d.Source()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range src {
			if !bytes.Equal(got[i], src[i]) {
				t.Fatalf("%s: packet %d differs", name, i)
			}
		}
	}
}

// TestUDPPrototypeEndToEnd runs the real-socket prototype on loopback.
func TestUDPPrototypeEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	file := make([]byte, 64<<10)
	rng.Read(file)
	cfg := DefaultConfig()
	cfg.Layers = 2
	sess, err := NewSession(file, cfg)
	if err != nil {
		t.Fatal(err)
	}
	udp, err := NewUDPServer("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer udp.Close()
	cli, err := NewUDPClient(udp.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	eng, err := NewClient(sess.Info(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(sess, udp)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for !eng.Done() {
			pkt, ok := cli.Recv(200000000) // 200ms
			if !ok {
				continue
			}
			eng.HandlePacket(pkt)
		}
	}()
	deadline := 20000
	for i := 0; i < deadline; i++ {
		select {
		case <-done:
			i = deadline
		default:
			srv.Step()
		}
	}
	<-done
	got, err := eng.File()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, file) {
		t.Fatal("UDP download corrupted")
	}
}

// TestMultiSourceUDPEndToEnd runs the §8 mirrored download on loopback
// through the public API: two UDP fountain services carrying the same
// encoding at staggered phases, one MultiClient + multi-source engine
// harvesting both, per-source accounting checked at the end.
func TestMultiSourceUDPEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	file := make([]byte, 96<<10)
	rng.Read(file)
	cfg := DefaultConfig()
	cfg.Layers = 1

	var addrs []*net.UDPAddr
	var info SessionInfo
	for i := 0; i < 2; i++ {
		sess, err := NewSession(file, cfg)
		if err != nil {
			t.Fatal(err)
		}
		udp, err := NewUDPServer("127.0.0.1:0", cfg.Layers)
		if err != nil {
			t.Fatal(err)
		}
		defer udp.Close()
		svc := NewService(udp, ServiceConfig{})
		defer svc.Close()
		phase := sess.Codec().N() * i / 2
		if err := svc.AddPhased(sess, 4000, phase); err != nil {
			t.Fatal(err)
		}
		got, ok := svc.Lookup(cfg.Session)
		if !ok || got.Phase != uint32(phase) {
			t.Fatalf("mirror %d advertises %+v", i, got)
		}
		addrs = append(addrs, udp.Addr())
		if i == 0 {
			info = got
		}
	}

	mc, err := NewMultiClient(addrs, info.Session, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	eng, err := NewMultiSourceClient(info, len(addrs), 0, func(l int) { mc.SetLevel(l) })
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for !eng.Done() {
		if time.Now().After(deadline) {
			t.Fatal("multi-source download never completed")
		}
		src, pkt, ok := mc.Recv(time.Second)
		if !ok {
			continue
		}
		if _, err := eng.HandlePacketFrom(src, pkt); err != nil {
			t.Fatal(err)
		}
	}
	got, err := eng.File()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, file) {
		t.Fatal("multi-source download corrupted")
	}
	// Both mirrors must have contributed, and the per-source split must
	// cover everything the engine counted.
	total := 0
	for _, src := range eng.Sources() {
		st := eng.SourceStats(src)
		if st.Received == 0 {
			t.Fatalf("mirror %d contributed nothing", src)
		}
		total += st.Received
	}
	if total == 0 || len(eng.Sources()) != 2 {
		t.Fatalf("source accounting wrong: %v packets over %v", total, eng.Sources())
	}
}
