// Command fountain-server serves files as digital fountains over UDP. One
// data socket multiplexes every session (clients subscribe to a specific
// session id, or to all of them), and one control socket answers catalog
// and session-info requests (the paper's "UDP unicast thread which provides
// control information"). Repair packets of range-encodable codecs are
// produced lazily behind a shared bounded cache, so one server can carry
// many large files.
//
// Usage:
//
//	fountain-server -file software.bin -file patch.bin \
//	                -data 127.0.0.1:9000 -control 127.0.0.1:9001 \
//	                -layers 4 -rate 2048 -codec cauchy -cache 67108864
//
// Each -file becomes its own session: the first gets session id -session,
// the next -session+1, and so on.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/evtrace"
	"repro/internal/proto"
	"repro/internal/service"
	"repro/internal/transport"
)

type fileList []string

func (f *fileList) String() string     { return fmt.Sprint(*f) }
func (f *fileList) Set(s string) error { *f = append(*f, s); return nil }

func main() {
	var files fileList
	var (
		dataAddr = flag.String("data", "127.0.0.1:9000", "data socket address")
		ctrlAddr = flag.String("control", "127.0.0.1:9001", "control socket address")
		layers   = flag.Int("layers", 4, "multicast layers")
		rate     = flag.Int("rate", 2048, "base-layer rate per session, packets/second")
		codec    = flag.String("codec", "tornado-a", "tornado-a|tornado-b|cauchy|vandermonde|interleaved|lt|raptor")
		ltc      = flag.Float64("lt-c", 0, "soliton c (0 = default; -codec lt or raptor)")
		ltdelta  = flag.Float64("lt-delta", 0, "soliton delta (0 = default; -codec lt or raptor)")
		rchecks  = flag.Int("raptor-checks", 0, "raptor precode check count (0 = k-dependent default; -codec raptor only)")
		rmaxd    = flag.Int("raptor-maxd", 0, "raptor inner-code degree truncation (0 = k-dependent default; -codec raptor only)")
		pktLen   = flag.Int("pkt", 500, "payload bytes per packet")
		seed     = flag.Int64("seed", 1998, "graph seed")
		baseID   = flag.Uint("session", 0xDF98, "session id of the first file (subsequent files increment)")
		phase    = flag.Int("phase", 0, "carousel start round, advertised to clients (mirrors of one file stagger theirs, §8)")
		cacheB   = flag.Int64("cache", 64<<20, "shared lazy-encoding cache budget, bytes")
		statsSec = flag.Int("stats", 30, "seconds between stats lines (0 = never)")
		metricsA = flag.String("metrics-addr", "", "serve Prometheus text metrics on this address at /metrics (empty = off)")
		traceOn  = flag.Bool("trace", false, "start with the flight recorder enabled (toggle later via /debug/evtrace/enable|disable on -metrics-addr)")
		traceBuf = flag.Int("trace-buf", 1<<14, "flight-recorder ring capacity per scheduler shard, events")
		maxSess  = flag.Int("max-sessions", 0, "session registry cap (0 = unlimited)")
		maxSubs  = flag.Int("max-subs", 0, "distinct subscriber address cap (0 = unlimited)")
		maxPPS   = flag.Int("max-pps", 0, "per-subscriber packets/second cap (0 = uncapped)")
		evictN   = flag.Int("evict-after", 8, "consecutive write errors before a subscriber is evicted")
	)
	flag.Var(&files, "file", "file to distribute (repeatable)")
	flag.Parse()
	if len(files) == 0 {
		log.Fatal("fountain-server: at least one -file is required")
	}
	// Session ids are uint16 and 0xFFFF is the subscription wildcard; the
	// per-file increment must stay below it.
	if *baseID+uint(len(files))-1 > 0xFFFE {
		log.Fatalf("fountain-server: -session %#x + %d files exceeds the max session id 0xFFFE", *baseID, len(files))
	}

	codecID, err := codecByName(*codec)
	if err != nil {
		log.Fatal(err)
	}

	udp, err := transport.NewUDPServer(*dataAddr, *layers)
	if err != nil {
		log.Fatal(err)
	}
	defer udp.Close()
	udp.SetLimits(transport.UDPLimits{
		MaxSubscribers: *maxSubs,
		EvictAfter:     *evictN,
		MaxPPS:         *maxPPS,
		Log:            log.Printf,
	})

	// The flight recorder is always compiled in and always attached — the
	// send path pays one predictable branch per site while it is disabled.
	// -trace starts it recording; the /debug/evtrace endpoints toggle and
	// dump it at runtime.
	rec := evtrace.New(evtrace.Config{Shards: runtime.GOMAXPROCS(0), ShardSize: *traceBuf})
	if *traceOn {
		rec.Enable()
	}

	svc := service.New(udp, service.Config{CacheBytes: *cacheB, BaseRate: *rate, MaxSessions: *maxSess, Trace: rec})
	defer svc.Close()
	// One registry carries both layers' series: the service registered its
	// own at construction; the transport adds its socket-level counters.
	udp.RegisterMetrics(svc.Metrics())
	if *metricsA != "" {
		// One diagnostics port: Prometheus metrics, Go pprof profiles, and
		// flight-recorder dumps all live on the -metrics-addr mux (unknown
		// paths get the mux's plain 404).
		mux := http.NewServeMux()
		mux.Handle("/metrics", svc.Metrics().Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.HandleFunc("/debug/evtrace", func(w http.ResponseWriter, r *http.Request) {
			events := rec.Snapshot()
			if r.URL.Query().Get("format") == "chrome" {
				w.Header().Set("Content-Type", "application/json")
				if err := evtrace.WriteChrome(w, events); err != nil {
					log.Printf("fountain-server: evtrace dump: %v", err)
				}
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Disposition", `attachment; filename="fountain.evtrace"`)
			if err := evtrace.WriteBinary(w, events); err != nil {
				log.Printf("fountain-server: evtrace dump: %v", err)
			}
		})
		mux.HandleFunc("/debug/evtrace/enable", func(w http.ResponseWriter, r *http.Request) {
			rec.Enable()
			fmt.Fprintln(w, "tracing enabled")
		})
		mux.HandleFunc("/debug/evtrace/disable", func(w http.ResponseWriter, r *http.Request) {
			rec.Disable()
			fmt.Fprintln(w, "tracing disabled")
		})
		msrv := &http.Server{Addr: *metricsA, Handler: mux}
		ln, err := net.Listen("tcp", *metricsA)
		if err != nil {
			log.Fatal(err)
		}
		defer msrv.Close()
		go func() {
			if err := msrv.Serve(ln); err != nil && err != http.ErrServerClosed {
				log.Printf("fountain-server: metrics endpoint: %v", err)
			}
		}()
		fmt.Printf("fountain-server: metrics at http://%s/metrics (pprof at /debug/pprof/, trace dumps at /debug/evtrace)\n", ln.Addr())
	}

	for i, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			log.Fatal(err)
		}
		cfg := core.DefaultConfig()
		cfg.Codec = codecID
		cfg.Layers = *layers
		cfg.PacketLen = *pktLen
		cfg.Seed = *seed + int64(i)
		cfg.Session = uint16(*baseID) + uint16(i)
		cfg.LTC = *ltc
		cfg.LTDelta = *ltdelta
		cfg.RaptorChecks = *rchecks
		cfg.RaptorMaxD = *rmaxd
		sess, err := svc.AddDataPhased(data, cfg, *rate, *phase)
		if err != nil {
			log.Fatal(err)
		}
		info := sess.Info()
		mode := "eager"
		if sess.Lazy() {
			mode = "lazy"
		}
		if sess.Rateless() {
			// A rateless mirror needs no phase coordination, only an
			// arbitrary distinct stream start; describe the fountain shape.
			if info.Codec == proto.CodecRaptor {
				fmt.Printf("fountain-server: session %#x %s (%d bytes, k=%d, rateless raptor s=%d maxd=%d c=%.3g delta=%.3g, stream start %d)\n",
					cfg.Session, file, len(data), info.K, info.RaptorS, info.RaptorMaxD,
					float64(info.LTCMicro)/1e6, float64(info.LTDeltaMicro)/1e6, *phase)
				continue
			}
			fmt.Printf("fountain-server: session %#x %s (%d bytes, k=%d, rateless LT c=%.3g delta=%.3g, stream start %d)\n",
				cfg.Session, file, len(data), info.K,
				float64(info.LTCMicro)/1e6, float64(info.LTDeltaMicro)/1e6, *phase)
			continue
		}
		fmt.Printf("fountain-server: session %#x %s (%d bytes, k=%d, n=%d, phase=%d, %s encoding)\n",
			cfg.Session, file, len(data), info.K, info.N, *phase, mode)
	}

	ctrl, stopCtrl, err := transport.ServeControlFunc(*ctrlAddr, svc.HandleControl)
	if err != nil {
		log.Fatal(err)
	}
	defer stopCtrl()
	fmt.Printf("fountain-server: %d sessions data=%s control=%s layers=%d rate=%d sched-shards=%d\n",
		len(files), udp.Addr(), ctrl, *layers, *rate, svc.Stats().Shards)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *statsSec > 0 {
		go func() {
			t := time.NewTicker(time.Duration(*statsSec) * time.Second)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					s := svc.Stats()
					fmt.Printf("fountain-server: sessions=%d pkts=%d bytes=%d errs=%d cache=%d/%d (peak %d) hit/miss=%d/%d\n",
						s.Sessions, s.PacketsSent, s.BytesSent, s.SendErrors,
						s.CacheUsed, svc.Cache().Cap(), s.CachePeak, s.CacheHits, s.CacheMisses)
				}
			}
		}()
	}
	<-ctx.Done()
	// Graceful drain: stop admitting sessions, let every in-flight round
	// finish, join the shard workers — then tear the sockets down. Clients
	// mid-download lose nothing they can't re-harvest from a mirror.
	fmt.Println("fountain-server: draining (no new sessions, finishing in-flight rounds)")
	svc.Drain()
	s := svc.Stats()
	h := udp.Hardening()
	fmt.Printf("fountain-server: drained; pkts=%d bytes=%d errs=%d evictions=%d refused-joins=%d rate-dropped=%d\n",
		s.PacketsSent, s.BytesSent, s.SendErrors, h.Evictions, h.RefusedJoins, h.RateDropped)
}

func codecByName(name string) (uint8, error) {
	switch name {
	case "tornado-a":
		return proto.CodecTornadoA, nil
	case "tornado-b":
		return proto.CodecTornadoB, nil
	case "cauchy":
		return proto.CodecCauchy, nil
	case "vandermonde":
		return proto.CodecVandermonde, nil
	case "interleaved":
		return proto.CodecInterleaved, nil
	case "lt":
		return proto.CodecLT, nil
	case "raptor":
		return proto.CodecRaptor, nil
	default:
		return 0, fmt.Errorf("unknown codec %q", name)
	}
}
