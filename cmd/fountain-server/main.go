// Command fountain-server serves a file as a digital fountain over UDP:
// a control socket answers session-info requests (the paper's "UDP unicast
// thread which provides control information"), and a data socket transmits
// the layered carousel to subscribed clients.
//
// Usage:
//
//	fountain-server -file software.bin -data 127.0.0.1:9000 -control 127.0.0.1:9001 \
//	                -layers 4 -rate 2048 -codec tornado-a
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/server"
	"repro/internal/transport"
)

func main() {
	var (
		file     = flag.String("file", "", "file to distribute")
		dataAddr = flag.String("data", "127.0.0.1:9000", "data socket address")
		ctrlAddr = flag.String("control", "127.0.0.1:9001", "control socket address")
		layers   = flag.Int("layers", 4, "multicast layers")
		rate     = flag.Int("rate", 2048, "base-layer rate, packets/second")
		codec    = flag.String("codec", "tornado-a", "tornado-a|tornado-b|cauchy|vandermonde|interleaved")
		pktLen   = flag.Int("pkt", 500, "payload bytes per packet")
		seed     = flag.Int64("seed", 1998, "graph seed")
	)
	flag.Parse()
	if *file == "" {
		log.Fatal("fountain-server: -file is required")
	}
	data, err := os.ReadFile(*file)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Layers = *layers
	cfg.PacketLen = *pktLen
	cfg.Seed = *seed
	switch *codec {
	case "tornado-a":
		cfg.Codec = proto.CodecTornadoA
	case "tornado-b":
		cfg.Codec = proto.CodecTornadoB
	case "cauchy":
		cfg.Codec = proto.CodecCauchy
	case "vandermonde":
		cfg.Codec = proto.CodecVandermonde
	case "interleaved":
		cfg.Codec = proto.CodecInterleaved
	default:
		log.Fatalf("unknown codec %q", *codec)
	}
	sess, err := core.NewSession(data, cfg)
	if err != nil {
		log.Fatal(err)
	}
	info := sess.Info()
	info.BaseRate = uint32(*rate)

	udp, err := transport.NewUDPServer(*dataAddr, *layers)
	if err != nil {
		log.Fatal(err)
	}
	defer udp.Close()
	ctrl, stopCtrl, err := transport.ServeControl(*ctrlAddr, proto.IsHello, info.Marshal())
	if err != nil {
		log.Fatal(err)
	}
	defer stopCtrl()

	fmt.Printf("fountain-server: %s (%d bytes, k=%d, n=%d) data=%s control=%s layers=%d\n",
		*file, len(data), info.K, info.N, udp.Addr(), ctrl, *layers)
	eng := server.New(sess, udp)
	if err := eng.Run(context.Background(), *rate); err != nil && err != context.Canceled {
		log.Fatal(err)
	}
}
