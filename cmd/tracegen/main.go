// Command tracegen synthesizes MBone-style packet-loss traces (the §6.4
// substitute; see DESIGN.md) and writes them to a trace file consumable by
// the simulator, printing the population's loss statistics.
//
// Usage:
//
//	tracegen -out traces.dftr -receivers 120 -length 28800 -mean 0.18
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/trace"
)

func main() {
	var (
		out       = flag.String("out", "traces.dftr", "output file")
		receivers = flag.Int("receivers", 120, "number of receivers")
		length    = flag.Int("length", 28800, "packets per trace")
		mean      = flag.Float64("mean", 0.18, "target population mean loss")
		seed      = flag.Int64("seed", 1998, "generator seed")
	)
	flag.Parse()
	traces := trace.Generate(trace.GenParams{
		Receivers: *receivers, Length: *length, MeanLoss: *mean, Seed: *seed,
	})
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := trace.Write(f, traces); err != nil {
		log.Fatal(err)
	}
	lo, hi := 1.0, 0.0
	for _, t := range traces {
		r := t.LossRate()
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	fmt.Printf("tracegen: wrote %d traces x %d packets to %s (mean loss %.3f, range %.3f-%.3f)\n",
		len(traces), *length, *out, trace.MeanLoss(traces), lo, hi)
}
