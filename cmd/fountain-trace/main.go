// Command fountain-trace analyzes flight-recorder dumps produced by the
// fountain stack (fountain-server's /debug/evtrace endpoint,
// fountain-client -trace, or harness tests): it decomposes the packet
// lifecycle per session, source and receiver — pacing jitter histograms,
// channel fault accounting, intake→release decode latency, reception
// overhead, and the time-to-decode distribution — straight from the binary
// event stream, with no access to the processes that produced it.
//
// Usage:
//
//	fountain-trace trace.bin                 # human-readable summary
//	fountain-trace -table trace.bin          # EXPERIMENTS.md-style markdown table
//	fountain-trace -chrome out.json trace.bin  # convert for about://tracing / Perfetto
//	fountain-trace -raw trace.bin            # dump every event
//
// Reading from standard input: use "-" as the file argument.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/evtrace"
)

func main() {
	var (
		table  = flag.Bool("table", false, "render an EXPERIMENTS.md-style markdown table instead of the summary")
		chrome = flag.String("chrome", "", "convert the trace to Chrome trace-event JSON at this path and exit")
		raw    = flag.Bool("raw", false, "print every event instead of the summary")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fountain-trace [-table | -raw | -chrome out.json] trace.bin")
		os.Exit(2)
	}
	events, err := readDump(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}

	switch {
	case *chrome != "":
		f, err := os.Create(*chrome)
		if err != nil {
			log.Fatal(err)
		}
		werr := evtrace.WriteChrome(f, events)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			log.Fatal(werr)
		}
		fmt.Printf("fountain-trace: wrote %s (%d events); load it in about://tracing or Perfetto\n",
			*chrome, len(events))
	case *raw:
		for _, ev := range events {
			fmt.Printf("%12d %-14s sess=%#04x src=%d actor=%d layer=%d a=%d b=%d\n",
				ev.TS, ev.Type, ev.Sess, ev.Src, ev.Actor, ev.Layer, ev.A, ev.B)
		}
	case *table:
		if err := evtrace.Analyze(events).WriteTable(os.Stdout); err != nil {
			log.Fatal(err)
		}
	default:
		fmt.Printf("fountain-trace: %d events\n", len(events))
		if err := evtrace.Analyze(events).WriteSummary(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}

// readDump loads a binary dump from a file or, for "-", standard input.
func readDump(path string) ([]evtrace.Event, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return evtrace.ReadBinary(r)
}
