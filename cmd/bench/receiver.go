package main

// The receiver suite measures the million-receiver receive path from the
// ISSUE-7 rework, top to bottom:
//
//   - engine intake: wire packets through client.Engine.HandlePacketFrom /
//     HandleBatchFrom in steady state (tag verify, header parse, serial
//     accounting against the ring window, duplicate decode) — gated to be
//     allocation-free per packet;
//   - the UDP socket path: a burst-and-drain loopback comparison of the
//     pooled one-datagram read (RecvOne) against the batched recvmmsg read
//     (RecvBatch), with the batched path gated allocation-free;
//   - the receiver population simulator: PopulationParallel at a million
//     receivers with k = 10000 (the paper's large block), hard-checked
//     bit-identical to the serial oracle on a sampled prefix, plus the §6
//     interleaved-block baseline at 10^5 receivers.
//
// The allocation gates are hard failures: the CI bench-smoke step runs
// this suite, so a regression that makes steady-state intake allocate
// fails the build, not just a trend line.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/evtrace"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/transport"
)

// intakeDistinct is the number of distinct packet indices cycled through
// the engine during the intake measurement — small enough that the session
// (k ≈ 4194) can never finish decoding mid-window, large enough that the
// per-index decoder state is out of cache like a real download's.
const intakeDistinct = 2000

// intakeCycles is how many fresh-serial passes over the distinct indices
// are pre-generated; the first pass warms the engine (registers every
// index with the decoder), the rest are the measured steady state.
const intakeCycles = 50

// drainBurst is the per-round datagram count of the socket benchmark:
// small enough to sit in a default receive socket buffer without loss,
// large enough that the batched path gets full recvmmsg chunks.
const drainBurst = 128

// drainTarget is the number of datagrams each socket mode drains in total.
const drainTarget = 20_000

// simK is the simulated block size (the paper's large-file operating
// point), and simLoss the per-receiver Bernoulli loss rate.
const (
	simK    = 10_000
	simLoss = 0.05
)

// identityPrefix is the receiver-index prefix on which the parallel
// population run is re-simulated serially and compared bit for bit.
const identityPrefix = 4096

type receiverResult struct {
	Mode    string  `json:"mode"`
	Packets uint64  `json:"packets,omitempty"`
	Seconds float64 `json:"seconds"`
	// Socket/intake rows.
	PacketsPerSec       float64 `json:"packets_per_s,omitempty"`
	MBPerSec            float64 `json:"mb_per_s,omitempty"`
	AllocsPerPacket     float64 `json:"allocs_per_packet"`
	AllocBytesPerPacket float64 `json:"alloc_bytes_per_packet"`
	Drops               uint64  `json:"drops,omitempty"`
	// Simulator rows.
	Receivers       int     `json:"receivers,omitempty"`
	K               int     `json:"k,omitempty"`
	ReceiversPerSec float64 `json:"receivers_per_s,omitempty"`
	MeanEfficiency  float64 `json:"mean_efficiency,omitempty"`
}

type receiverReport struct {
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	GoVersion  string           `json:"go_version"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Time       time.Time        `json:"time"`
	Results    []receiverResult `json:"results"`
	// SpeedupBatch is batched over unbatched socket drain throughput,
	// measured in this same run.
	SpeedupBatch float64 `json:"speedup_batch"`
}

// intakeSession builds the 4-layer Tornado session whose packets feed the
// engine rows. ~2 MiB at 500-byte payloads puts k ≈ 4194, so cycling 2000
// distinct indices can never complete the decode.
func intakeSession() (*core.Session, error) {
	data := make([]byte, 2<<20)
	for i := range data {
		data[i] = byte(i * 167)
	}
	cfg := core.DefaultConfig()
	cfg.Codec = proto.CodecTornadoA
	cfg.PacketLen = 500
	cfg.Layers = 4
	cfg.Seed = 7
	cfg.Session = 0x7001
	return core.NewSession(data, cfg)
}

// intakePackets pre-generates the full duplicate-heavy intake stream: the
// same intakeDistinct indices over and over, with fresh, mostly contiguous
// per-layer serials (an occasional skip keeps the loss window live). All
// wire bytes exist before the clock starts — the measurement sees only the
// engine.
func intakePackets(sess *core.Session) [][]byte {
	layers := 4
	pkts := make([][]byte, 0, intakeCycles*intakeDistinct)
	var serial [4]uint32
	var count [4]int
	for m := 0; m < intakeCycles; m++ {
		for i := 0; i < intakeDistinct; i++ {
			l := i % layers
			count[l]++
			serial[l]++
			if count[l]%97 == 0 {
				serial[l] += 3 // a small gap: the ring window stays exercised
			}
			pkts = append(pkts, sess.Packet(i, uint8(l), serial[l], 0))
		}
	}
	return pkts
}

// measureIntake feeds the pre-generated stream to a fresh engine — first
// cycle off the clock as warmup — and accounts time and allocations over
// the rest. batch selects HandleBatchFrom in recvChunk-sized slices versus
// the per-packet call; traced attaches an enabled flight recorder, so the
// gated row proves intake stays allocation-free while every packet also
// writes EvIntake/EvSymbol events into the ring.
func measureIntake(sess *core.Session, pkts [][]byte, batch, traced bool) (receiverResult, error) {
	eng, err := client.New(sess.Info(), 0, nil)
	if err != nil {
		return receiverResult{}, err
	}
	if traced {
		rec := evtrace.New(evtrace.Config{Shards: 1, ShardSize: 1 << 16})
		rec.Enable()
		eng.SetTrace(rec.Shard(0), 0)
	}
	warm := pkts[:intakeDistinct]
	rest := pkts[intakeDistinct:]
	for _, p := range warm {
		if _, err := eng.HandlePacketFrom(0, p); err != nil {
			return receiverResult{}, err
		}
	}
	var bytes uint64
	for _, p := range rest {
		bytes += uint64(len(p))
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	if batch {
		const chunk = 32 // the transport's recvChunk: the shape RecvBatch delivers
		for lo := 0; lo < len(rest); lo += chunk {
			hi := lo + chunk
			if hi > len(rest) {
				hi = len(rest)
			}
			if _, err := eng.HandleBatchFrom(0, rest[lo:hi]); err != nil {
				return receiverResult{}, err
			}
		}
	} else {
		for _, p := range rest {
			if _, err := eng.HandlePacketFrom(0, p); err != nil {
				return receiverResult{}, err
			}
		}
	}
	secs := time.Since(t0).Seconds()
	runtime.ReadMemStats(&m1)
	if eng.Done() {
		return receiverResult{}, fmt.Errorf("intake decode completed mid-window: measurement invalid")
	}
	mode := "engine-intake"
	switch {
	case batch:
		mode = "engine-intake-batch"
	case traced:
		mode = "engine-intake-trace"
	}
	n := uint64(len(rest))
	return receiverResult{
		Mode:                mode,
		Packets:             n,
		Seconds:             secs,
		PacketsPerSec:       float64(n) / secs,
		MBPerSec:            float64(bytes) / secs / 1e6,
		AllocsPerPacket:     float64(m1.Mallocs-m0.Mallocs) / float64(n),
		AllocBytesPerPacket: float64(m1.TotalAlloc-m0.TotalAlloc) / float64(n),
	}, nil
}

// measureDrain runs the burst-and-drain socket benchmark: the server
// blasts drainBurst datagrams (off the clock), then the client drains them
// with either RecvOne or RecvBatch while time and allocations are
// accounted. Loss inside a round ends it (counted in Drops), so a dropped
// datagram costs one timeout, not a hang.
func measureDrain(batch bool) (receiverResult, error) {
	const session = 0x7002
	srv, err := transport.NewUDPServer("127.0.0.1:0", 1)
	if err != nil {
		return receiverResult{}, err
	}
	defer srv.Close()
	cli, err := transport.NewUDPClientSession(srv.Addr(), session, 0)
	if err != nil {
		return receiverResult{}, err
	}
	defer cli.Close()
	deadline := time.Now().Add(5 * time.Second)
	for srv.SessionSubscribers(session, 0) == 0 {
		if time.Now().After(deadline) {
			return receiverResult{}, fmt.Errorf("subscription never registered")
		}
		time.Sleep(time.Millisecond)
	}
	burst := make([][]byte, drainBurst)
	payload := make([]byte, 500)
	for i := range burst {
		h := proto.Header{Index: uint32(i), Serial: uint32(i + 1), Session: session}
		burst[i] = append(h.Marshal(nil), payload...)
	}
	var rb transport.RecvBatch
	defer rb.Free()
	var (
		total, bytes, drops uint64
		secs                float64
		m0, m1              runtime.MemStats
	)
	runtime.GC()
	for total+drops < drainTarget {
		if err := srv.SendBatch(0, burst); err != nil {
			return receiverResult{}, err
		}
		got := 0
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		for got < drainBurst {
			if batch {
				n, err := cli.RecvBatch(&rb, 250*time.Millisecond)
				if err == transport.ErrTimeout {
					break
				}
				if err != nil {
					return receiverResult{}, err
				}
				for _, p := range rb.Packets() {
					bytes += uint64(len(p))
				}
				got += n
			} else {
				p, err := cli.RecvOne(250 * time.Millisecond)
				if err == transport.ErrTimeout {
					break
				}
				if err != nil {
					return receiverResult{}, err
				}
				bytes += uint64(len(p))
				got++
			}
		}
		secs += time.Since(t0).Seconds()
		runtime.ReadMemStats(&m1)
		total += uint64(got)
		drops += uint64(drainBurst - got)
	}
	mode := "udp-recv-one"
	if batch {
		mode = "udp-recv-batch"
	}
	res := receiverResult{
		Mode:    mode,
		Packets: total,
		Seconds: secs,
		Drops:   drops,
	}
	if total > 0 && secs > 0 {
		res.PacketsPerSec = float64(total) / secs
		res.MBPerSec = float64(bytes) / secs / 1e6
		res.AllocsPerPacket = float64(m1.Mallocs-m0.Mallocs) / float64(total)
		res.AllocBytesPerPacket = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(total)
	}
	return res, nil
}

// The ReadMemStats bracketing in measureDrain spans send rounds too (m0 is
// re-read each round), so allocations from the server's send path between
// rounds never land in the receiver's account.

// simThreshold runs the headline row: `receivers` i.i.d. ThresholdDecoder
// receivers at k = simK under Bernoulli loss, through the sharded parallel
// simulator, then re-simulates an identityPrefix-receiver prefix serially
// and requires bitwise identity.
func simThreshold(receivers int) (receiverResult, error) {
	mkDec := func(rng *netsim.RNG) netsim.Decodability {
		return &netsim.ThresholdDecoder{NTotal: 2 * simK, Need: simK}
	}
	mkLoss := func(rng *netsim.RNG) netsim.LossProcess {
		return &netsim.Bernoulli{P: simLoss, Rng: rng}
	}
	const seed = 98
	t0 := time.Now()
	effs := netsim.PopulationParallel(receivers, simK, mkDec, mkLoss, nil, seed)
	secs := time.Since(t0).Seconds()
	prefix := identityPrefix
	if prefix > receivers {
		prefix = receivers
	}
	oracle := netsim.Population(prefix, simK, mkDec, mkLoss, nil, seed)
	for i := range oracle {
		if effs[i] != oracle[i] {
			return receiverResult{}, fmt.Errorf(
				"parallel population diverges from serial oracle at receiver %d: %v != %v",
				i, effs[i], oracle[i])
		}
	}
	mean := 0.0
	for _, e := range effs {
		mean += e
	}
	mean /= float64(len(effs))
	return receiverResult{
		Mode:            "netsim-threshold",
		Receivers:       receivers,
		K:               simK,
		Seconds:         secs,
		ReceiversPerSec: float64(receivers) / secs,
		MeanEfficiency:  mean,
	}, nil
}

// simBlock runs the §6 interleaved-block baseline: 100 blocks of 100
// source packets each (k = simK in total), 10^5 receivers.
func simBlock() (receiverResult, error) {
	const receivers = 100_000
	mkDec := func(rng *netsim.RNG) netsim.Decodability {
		return netsim.NewBlockDecoder(2*simK, 100, 100)
	}
	mkLoss := func(rng *netsim.RNG) netsim.LossProcess {
		return &netsim.Bernoulli{P: simLoss, Rng: rng}
	}
	t0 := time.Now()
	effs := netsim.PopulationParallel(receivers, simK, mkDec, mkLoss, nil, 99)
	secs := time.Since(t0).Seconds()
	mean := 0.0
	for _, e := range effs {
		mean += e
	}
	mean /= float64(len(effs))
	return receiverResult{
		Mode:            "netsim-block",
		Receivers:       receivers,
		K:               simK,
		Seconds:         secs,
		ReceiversPerSec: float64(receivers) / secs,
		MeanEfficiency:  mean,
	}, nil
}

// runReceiverSuite executes the full suite and writes the JSON report. It
// exits nonzero when steady-state intake or the batched socket read
// allocates, or when the parallel simulator diverges from the serial
// oracle.
func runReceiverSuite(out string, receivers int) {
	rep := receiverReport{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Time:       time.Now().UTC(),
	}
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "bench: receiver: %v\n", err)
		os.Exit(1)
	}

	sess, err := intakeSession()
	if err != nil {
		fail(err)
	}
	pkts := intakePackets(sess)
	for _, m := range []struct{ batch, traced bool }{
		{false, false}, {true, false}, {false, true},
	} {
		res, err := measureIntake(sess, pkts, m.batch, m.traced)
		if err != nil {
			fail(err)
		}
		rep.Results = append(rep.Results, res)
	}
	pkts = nil
	runtime.GC()

	var one, batched float64
	for _, batch := range []bool{false, true} {
		res, err := measureDrain(batch)
		if err != nil {
			fail(err)
		}
		if batch {
			batched = res.PacketsPerSec
		} else {
			one = res.PacketsPerSec
		}
		rep.Results = append(rep.Results, res)
	}
	if one > 0 {
		rep.SpeedupBatch = batched / one
	}

	resT, err := simThreshold(receivers)
	if err != nil {
		fail(err)
	}
	rep.Results = append(rep.Results, resT)
	resB, err := simBlock()
	if err != nil {
		fail(err)
	}
	rep.Results = append(rep.Results, resB)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	buf = append(buf, '\n')
	if out == "-" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(out, buf, 0o644); err != nil {
		fail(err)
	}
	for _, r := range rep.Results {
		switch {
		case r.Receivers > 0:
			fmt.Printf("%-20s receivers=%-9d k=%-6d %8.2f s %12.0f recv/s mean eta %.4f\n",
				r.Mode, r.Receivers, r.K, r.Seconds, r.ReceiversPerSec, r.MeanEfficiency)
		default:
			fmt.Printf("%-20s %9d pkts %12.0f pkts/s %9.2f MB/s %8.4f allocs/pkt %8.1f B/pkt (drops %d)\n",
				r.Mode, r.Packets, r.PacketsPerSec, r.MBPerSec, r.AllocsPerPacket, r.AllocBytesPerPacket, r.Drops)
		}
	}
	if out != "-" {
		fmt.Printf("wrote %s\n", out)
	}

	// Hard gates: nothing passes vacuously, and the steady-state receive
	// path must not allocate.
	for _, r := range rep.Results {
		switch r.Mode {
		case "engine-intake", "engine-intake-batch", "engine-intake-trace", "udp-recv-batch":
			if r.Packets == 0 {
				fmt.Fprintf(os.Stderr, "bench: FAIL: %s processed nothing\n", r.Mode)
				os.Exit(1)
			}
			if r.AllocsPerPacket > allocGate {
				fmt.Fprintf(os.Stderr,
					"bench: FAIL: %s allocates %.4f/packet (gate %.2f)\n",
					r.Mode, r.AllocsPerPacket, allocGate)
				os.Exit(1)
			}
		case "udp-recv-one":
			if r.Packets == 0 {
				fmt.Fprintf(os.Stderr, "bench: FAIL: %s received nothing\n", r.Mode)
				os.Exit(1)
			}
		}
	}
}
