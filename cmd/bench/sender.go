package main

// The sender suite measures the service's aggregate emission throughput at
// 1, 16 and 256 concurrent sessions, comparing the shared pacing scheduler
// (pooled buffers, per-layer batches, GOMAXPROCS shard workers) against
// the pre-refactor architecture: one pacing goroutine per session, one
// fresh allocation per packet (server.Engine.Run, which still exists for
// single-session use and serves as the in-tree baseline). Both modes run
// at a saturating rate against the same null counting sink, so the numbers
// isolate the send path itself.
//
// The suite enforces the zero-alloc property: steady-state scheduler
// emission above allocGate allocations per packet is a hard failure (the
// CI bench-smoke step runs this suite).

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/evtrace"
	"repro/internal/proto"
	"repro/internal/server"
	"repro/internal/service"
)

// senderSessionCounts are the concurrency points of the suite.
var senderSessionCounts = []int{1, 16, 256}

// allocGate is the most allocations per emitted packet the scheduler mode
// tolerates: the send path itself is zero-alloc, and the small margin only
// absorbs unrelated runtime activity (timer wheels, memstats reads) that
// lands in the same measurement window.
const allocGate = 0.01

// traceOffFloor is the fraction of the plain scheduler's throughput the
// scheduler must retain with a flight recorder attached but disabled — the
// "one predictable branch per site" claim as a hard gate rather than a
// comment. The floor is deliberately loose (the real cost is ~0) because
// two separate one-second windows on a shared CI box can diverge that much
// on their own; it exists to catch a recorder that grew a lock or a
// per-packet allocation, not to resolve single percents.
const traceOffFloor = 0.60

// saturationRate is a per-session base rate far beyond what any mode can
// emit, so pacing never idles and the measurement is pure send-path
// throughput.
const saturationRate = 50_000_000

var fileKiB = 16

type senderResult struct {
	Mode                string  `json:"mode"` // "goroutine-per-session" or "scheduler"
	Sessions            int     `json:"sessions"`
	Seconds             float64 `json:"seconds"`
	Packets             uint64  `json:"packets"`
	PacketsPerSec       float64 `json:"packets_per_s"`
	MBPerSec            float64 `json:"mb_per_s"`
	AllocsPerPacket     float64 `json:"allocs_per_packet"`
	AllocBytesPerPacket float64 `json:"alloc_bytes_per_packet"`
	// Scrapes counts metrics-registry text expositions rendered
	// concurrently with the measurement window (scheduler mode only): the
	// alloc gate is enforced with observability read traffic live, so
	// "zero-alloc with instrumentation" is what is actually proven.
	Scrapes int `json:"scrapes,omitempty"`
}

type senderReport struct {
	GOOS       string         `json:"goos"`
	GOARCH     string         `json:"goarch"`
	GoVersion  string         `json:"go_version"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Time       time.Time      `json:"time"`
	PacketLen  int            `json:"packet_len"`
	Results    []senderResult `json:"results"`
	// Speedup256 is scheduler packets/s over goroutine-per-session
	// packets/s at 256 sessions, measured in this same run.
	Speedup256 float64 `json:"speedup_256"`
}

// countSink counts packets and bytes without retaining or allocating; it
// implements the unified transport.Sender so both modes drive it natively.
type countSink struct {
	packets atomic.Uint64
	bytes   atomic.Uint64
}

func (c *countSink) Send(layer int, pkt []byte) error {
	c.packets.Add(1)
	c.bytes.Add(uint64(len(pkt)))
	return nil
}

func (c *countSink) SendBatch(layer int, pkts [][]byte) error {
	var nb uint64
	for _, p := range pkts {
		nb += uint64(len(p))
	}
	c.packets.Add(uint64(len(pkts)))
	c.bytes.Add(nb)
	return nil
}

// senderSessions builds n eagerly encoded Tornado sessions (16 KiB file,
// 4 layers — eager encoding keeps the lazy cache, a different subsystem,
// out of the send-path measurement).
func senderSessions(n, pl int) ([]*core.Session, error) {
	data := make([]byte, fileKiB<<10)
	for i := range data {
		data[i] = byte(i * 131)
	}
	out := make([]*core.Session, n)
	for i := range out {
		cfg := core.DefaultConfig()
		cfg.Codec = proto.CodecTornadoA
		cfg.PacketLen = pl
		cfg.Layers = 4
		cfg.Seed = int64(i + 1)
		cfg.Session = uint16(i + 1)
		sess, err := core.NewSession(data, cfg)
		if err != nil {
			return nil, err
		}
		out[i] = sess
	}
	return out, nil
}

// measureWindow samples the sink and allocator over the measurement
// window, after the warmup, and folds the deltas into a result.
func measureWindow(sink *countSink, warmup, window time.Duration) senderResult {
	time.Sleep(warmup)
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	p0, b0 := sink.packets.Load(), sink.bytes.Load()
	t0 := time.Now()
	time.Sleep(window)
	runtime.ReadMemStats(&m1)
	p1, b1 := sink.packets.Load(), sink.bytes.Load()
	secs := time.Since(t0).Seconds()
	pkts := p1 - p0
	res := senderResult{
		Seconds: secs,
		Packets: pkts,
	}
	if pkts > 0 && secs > 0 {
		res.PacketsPerSec = float64(pkts) / secs
		res.MBPerSec = float64(b1-b0) / secs / 1e6
		res.AllocsPerPacket = float64(m1.Mallocs-m0.Mallocs) / float64(pkts)
		res.AllocBytesPerPacket = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(pkts)
	}
	return res
}

// perPacketCounter reproduces the pre-refactor service's countingSender:
// every packet moved the service stats before reaching the transport. The
// scheduler path pays the same accounting, but per batch.
type perPacketCounter struct {
	packets atomic.Uint64
	bytes   atomic.Uint64
	tx      *countSink
}

func (c *perPacketCounter) Send(layer int, pkt []byte) error {
	if err := c.tx.Send(layer, pkt); err != nil {
		return nil
	}
	c.packets.Add(1)
	c.bytes.Add(uint64(len(pkt)))
	return nil
}

// benchGoroutinePerSession is the baseline: the pre-refactor service
// architecture, reproduced with the still-extant single-session engine —
// one pacing goroutine per session, per-packet allocation, per-packet
// stats accounting, per-packet sends.
func benchGoroutinePerSession(sessions []*core.Session, warmup, window time.Duration) senderResult {
	sink := &countSink{}
	counter := &perPacketCounter{tx: sink}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for _, sess := range sessions {
		wg.Add(1)
		go func(sess *core.Session) {
			defer wg.Done()
			server.New(sess, counter).Run(ctx, saturationRate)
		}(sess)
	}
	res := measureWindow(sink, warmup, window)
	cancel()
	wg.Wait()
	res.Mode = "goroutine-per-session"
	res.Sessions = len(sessions)
	return res
}

// traceMode selects how the flight recorder rides along on a scheduler
// measurement: absent entirely, attached but disabled (the deployment
// default — each instrumentation site costs one predictable branch), or
// attached and recording (every site also writes a 32-byte event into its
// shard's ring).
type traceMode int

const (
	traceNone traceMode = iota
	traceOff
	traceOn
)

func (m traceMode) label() string {
	switch m {
	case traceOff:
		return "scheduler+trace-off"
	case traceOn:
		return "scheduler+trace"
	}
	return "scheduler"
}

// benchScheduler runs the same sessions through the shared pacing
// scheduler and the pooled, batched send path, with the flight recorder in
// the requested mode.
func benchScheduler(sessions []*core.Session, warmup, window time.Duration, tm traceMode) (senderResult, error) {
	sink := &countSink{}
	cfg := service.Config{BaseRate: saturationRate}
	if tm != traceNone {
		rec := evtrace.New(evtrace.Config{Shards: runtime.GOMAXPROCS(0)})
		if tm == traceOn {
			rec.Enable()
		}
		cfg.Trace = rec
	}
	svc := service.New(sink, cfg)
	for _, sess := range sessions {
		if err := svc.Add(sess, saturationRate); err != nil {
			svc.Close()
			return senderResult{}, err
		}
	}
	// A live scraper renders the full text exposition throughout the
	// measurement: the few dozen scrape-side allocations it costs are
	// amortized over millions of packets and must stay far under the
	// per-packet gate — instrumentation that survives only an idle
	// registry would be the kind of metric that lies.
	stopScrape := make(chan struct{})
	scrapeDone := make(chan int)
	go func() {
		n := 0
		t := time.NewTicker(50 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stopScrape:
				scrapeDone <- n
				return
			case <-t.C:
				svc.Metrics().WriteTo(io.Discard)
				n++
			}
		}
	}()
	res := measureWindow(sink, warmup, window)
	close(stopScrape)
	scrapes := <-scrapeDone
	svc.Close()
	res.Mode = tm.label()
	res.Sessions = len(sessions)
	res.Scrapes = scrapes
	return res, nil
}

// runSenderSuite executes the full suite and writes the JSON report. It
// exits nonzero when the scheduler's steady-state emission allocates.
func runSenderSuite(out string, pl int) {
	const (
		warmup = 250 * time.Millisecond
		window = time.Second
	)
	rep := senderReport{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Time:       time.Now().UTC(),
		PacketLen:  core.PadPacketLen(pl),
	}
	var base256, sched256 float64
	for _, n := range senderSessionCounts {
		sessions, err := senderSessions(n, pl)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: sender sessions: %v\n", err)
			os.Exit(1)
		}
		runtime.GC()
		baseRes := benchGoroutinePerSession(sessions, warmup, window)
		rep.Results = append(rep.Results, baseRes)
		for _, tm := range []traceMode{traceNone, traceOff, traceOn} {
			runtime.GC()
			schedRes, err := benchScheduler(sessions, warmup, window, tm)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bench: sender scheduler: %v\n", err)
				os.Exit(1)
			}
			rep.Results = append(rep.Results, schedRes)
			if n == 256 && tm == traceNone {
				base256, sched256 = baseRes.PacketsPerSec, schedRes.PacketsPerSec
			}
		}
	}
	if base256 > 0 {
		rep.Speedup256 = sched256 / base256
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: marshal: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if out == "-" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: write: %v\n", err)
		os.Exit(1)
	}
	for _, r := range rep.Results {
		fmt.Printf("%-22s sessions=%-4d %12.0f pkts/s %9.2f MB/s %8.4f allocs/pkt %8.1f B/pkt\n",
			r.Mode, r.Sessions, r.PacketsPerSec, r.MBPerSec, r.AllocsPerPacket, r.AllocBytesPerPacket)
	}
	fmt.Printf("speedup at 256 sessions: %.2fx\n", rep.Speedup256)
	if out != "-" {
		fmt.Printf("wrote %s\n", out)
	}

	// The hard gates: every mode must actually emit (a stalled scheduler
	// must not pass vacuously); steady-state scheduler emission must not
	// allocate with the recorder absent, attached-disabled, or recording;
	// and a disabled recorder must not cost more than the traceOffFloor
	// against the plain scheduler at the same session count.
	plain := map[int]float64{}
	for _, r := range rep.Results {
		if r.Mode == "scheduler" {
			plain[r.Sessions] = r.PacketsPerSec
		}
	}
	for _, r := range rep.Results {
		if r.Packets == 0 {
			fmt.Fprintf(os.Stderr,
				"bench: FAIL: %s at %d sessions emitted nothing\n", r.Mode, r.Sessions)
			os.Exit(1)
		}
		switch r.Mode {
		case "scheduler", "scheduler+trace-off", "scheduler+trace":
			if r.AllocsPerPacket > allocGate {
				fmt.Fprintf(os.Stderr,
					"bench: FAIL: %s at %d sessions allocates %.4f/packet (gate %.2f)\n",
					r.Mode, r.Sessions, r.AllocsPerPacket, allocGate)
				os.Exit(1)
			}
		}
		if r.Mode == "scheduler+trace-off" {
			if base := plain[r.Sessions]; base > 0 && r.PacketsPerSec < traceOffFloor*base {
				fmt.Fprintf(os.Stderr,
					"bench: FAIL: disabled recorder at %d sessions costs too much: %.0f pkts/s vs %.0f plain (floor %.0f%%)\n",
					r.Sessions, r.PacketsPerSec, base, traceOffFloor*100)
				os.Exit(1)
			}
		}
	}
}
