// Command bench runs the codec benchmarks that back the paper's Tables 2-3
// (encode and decode throughput for Tornado A/B and the two Reed-Solomon
// baselines) and writes the results as machine-readable JSON, so the
// performance trajectory can be tracked PR over PR.
//
// Usage:
//
//	go run ./cmd/bench [-o BENCH_codecs.json] [-k 512] [-pl 1024]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	fountain "repro"
	"repro/internal/benchproto"
)

type result struct {
	Name        string  `json:"name"`
	Op          string  `json:"op"` // "encode" or "decode"
	K           int     `json:"k"`
	N           int     `json:"n"`
	PacketLen   int     `json:"packet_len"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_s"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type report struct {
	GOOS       string    `json:"goos"`
	GOARCH     string    `json:"goarch"`
	GoVersion  string    `json:"go_version"`
	GOMAXPROCS int       `json:"gomaxprocs"`
	Time       time.Time `json:"time"`
	Results    []result  `json:"results"`
}

func main() {
	out := flag.String("o", "BENCH_codecs.json", "output JSON path ('-' for stdout)")
	k := flag.Int("k", 512, "source packets per block")
	pl := flag.Int("pl", 1024, "packet length in bytes")
	flag.Parse()

	kk, ppl := *k, *pl
	codecs := []struct {
		name string
		mk   func() (fountain.Codec, error)
	}{
		{"rs-vandermonde", func() (fountain.Codec, error) { return fountain.NewVandermonde(kk, 2*kk, ppl) }},
		{"rs-cauchy", func() (fountain.Codec, error) { return fountain.NewCauchy(kk, 2*kk, ppl) }},
		{"tornado-a", func() (fountain.Codec, error) { return fountain.NewTornado(fountain.TornadoA(), kk, 2*kk, ppl, 1) }},
		{"tornado-b", func() (fountain.Codec, error) { return fountain.NewTornado(fountain.TornadoB(), kk, 2*kk, ppl, 1) }},
	}

	rep := report{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Time:       time.Now().UTC(),
	}
	for _, c := range codecs {
		codec, err := c.mk()
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s: %v\n", c.name, err)
			os.Exit(1)
		}
		src := benchproto.Source(kk, ppl)
		enc, err := codec.Encode(src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s encode: %v\n", c.name, err)
			os.Exit(1)
		}
		tornadoStyle := false
		switch c.name {
		case "tornado-a", "tornado-b":
			tornadoStyle = true
		}

		encRes := runBench(kk*ppl, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := codec.Encode(src); err != nil {
					b.Fatal(err)
				}
			}
		})
		encRes.Name, encRes.Op = c.name, "encode"
		encRes.K, encRes.N, encRes.PacketLen = kk, codec.N(), ppl
		rep.Results = append(rep.Results, encRes)

		rng := rand.New(rand.NewSource(2))
		decRes := runBench(kk*ppl, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// Packet-order generation is not the decoder's work: keep
				// it off the clock and out of the allocation accounting.
				b.StopTimer()
				var order []int
				if tornadoStyle {
					order = benchproto.TornadoOrder(rng, codec.N())
				} else {
					order = benchproto.RSOrder(rng, kk)
				}
				b.StartTimer()
				d := codec.NewDecoder()
				for _, j := range order {
					done, err := d.Add(j, enc[j])
					if err != nil {
						b.Fatal(err)
					}
					if done {
						break
					}
				}
				if _, err := d.Source(); err != nil {
					b.Fatal(err)
				}
			}
		})
		decRes.Name, decRes.Op = c.name, "decode"
		decRes.K, decRes.N, decRes.PacketLen = kk, codec.N(), ppl
		rep.Results = append(rep.Results, decRes)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: marshal: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: write: %v\n", err)
		os.Exit(1)
	}
	for _, r := range rep.Results {
		fmt.Printf("%-16s %-7s %12.0f ns/op %9.2f MB/s %10d B/op %7d allocs/op\n",
			r.Name, r.Op, r.NsPerOp, r.MBPerSec, r.BytesPerOp, r.AllocsPerOp)
	}
	fmt.Printf("wrote %s\n", *out)
}

// runBench wraps testing.Benchmark (which scales iterations to ~1s of
// measured time) with byte-rate accounting.
func runBench(bytesPerOp int, fn func(b *testing.B)) result {
	r := testing.Benchmark(func(b *testing.B) {
		b.SetBytes(int64(bytesPerOp))
		b.ReportAllocs()
		fn(b)
	})
	if r.N == 0 {
		// testing.Benchmark returns the zero result when the benchmark
		// body b.Fatals; writing zero metrics would silently corrupt the
		// trajectory file.
		fmt.Fprintln(os.Stderr, "bench: benchmark failed (zero iterations)")
		os.Exit(1)
	}
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	mbps := 0.0
	if r.T > 0 {
		mbps = float64(bytesPerOp) * float64(r.N) / r.T.Seconds() / 1e6
	}
	return result{
		Iterations:  r.N,
		NsPerOp:     ns,
		MBPerSec:    mbps,
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}
