// Command bench runs the codec benchmarks that back the paper's Tables 2-3
// (encode and decode throughput for Tornado A/B and the two Reed-Solomon
// baselines, plus the rateless LT and raptor codecs at k = 1000 and 10000)
// and writes the results as machine-readable JSON, so the performance
// trajectory can be tracked PR over PR. Decode rows also carry the measured
// reception overhead (packets needed / k, averaged over fresh reception
// orders), and the rateless rows sit under hard regression gates
// (checkRatelessGates): overhead or allocation drift fails the run.
//
// Usage:
//
//	go run ./cmd/bench [-suite codecs] [-o BENCH_codecs.json] [-k 512] [-pl 1024]
//	go run ./cmd/bench -suite sender [-o BENCH_sender.json]
//	go run ./cmd/bench -suite receiver [-o BENCH_receiver.json] [-receivers 1000000]
//
// The sender suite benchmarks the service's aggregate emission throughput
// at 1/16/256 concurrent sessions — shared pacing scheduler vs the
// goroutine-per-session baseline — and fails when steady-state emission
// allocates (see sender.go). The receiver suite benchmarks the intake
// half — engine packet ingestion, batched vs one-datagram socket reads,
// and the population simulator at 10^6 receivers — with the same
// zero-allocation hard gates (see receiver.go).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	fountain "repro"
	"repro/internal/benchproto"
	"repro/internal/code"
)

type result struct {
	Name        string  `json:"name"`
	Op          string  `json:"op"` // "encode" or "decode"
	K           int     `json:"k"`
	N           int     `json:"n"`
	PacketLen   int     `json:"packet_len"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_s"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Overhead is the measured reception overhead (packets needed / k) of
	// decode rows, averaged over overheadTrials fresh reception orders.
	Overhead float64 `json:"overhead,omitempty"`
}

// overheadTrials is the number of independent reception orders averaged
// into each decode row's Overhead figure.
const overheadTrials = 5

type report struct {
	GOOS       string    `json:"goos"`
	GOARCH     string    `json:"goarch"`
	GoVersion  string    `json:"go_version"`
	GOMAXPROCS int       `json:"gomaxprocs"`
	Time       time.Time `json:"time"`
	Results    []result  `json:"results"`
}

func main() {
	suite := flag.String("suite", "codecs", "benchmark suite: codecs|sender|receiver")
	out := flag.String("o", "", "output JSON path ('-' for stdout; default BENCH_<suite>.json)")
	k := flag.Int("k", 512, "source packets per block (codecs suite only)")
	pl := flag.Int("pl", 1024, "packet length in bytes (sender suite default: 500)")
	receivers := flag.Int("receivers", 1_000_000, "simulated population size (receiver suite only)")
	flag.Parse()

	switch *suite {
	case "receiver":
		if *out == "" {
			*out = "BENCH_receiver.json"
		}
		runReceiverSuite(*out, *receivers)
		return
	case "sender":
		if *out == "" {
			*out = "BENCH_sender.json"
		}
		spl := *pl
		if !flagWasSet("pl") {
			spl = 500 // the paper prototype's payload, the suite's reference point
		}
		runSenderSuite(*out, spl)
		return
	case "codecs":
		if *out == "" {
			*out = "BENCH_codecs.json"
		}
	default:
		fmt.Fprintf(os.Stderr, "bench: unknown suite %q (codecs|sender|receiver)\n", *suite)
		os.Exit(1)
	}

	kk, ppl := *k, *pl
	codecs := []struct {
		name string
		mk   func() (fountain.Codec, error)
	}{
		{"rs-vandermonde", func() (fountain.Codec, error) { return fountain.NewVandermonde(kk, 2*kk, ppl) }},
		{"rs-cauchy", func() (fountain.Codec, error) { return fountain.NewCauchy(kk, 2*kk, ppl) }},
		{"tornado-a", func() (fountain.Codec, error) { return fountain.NewTornado(fountain.TornadoA(), kk, 2*kk, ppl, 1) }},
		{"tornado-b", func() (fountain.Codec, error) { return fountain.NewTornado(fountain.TornadoB(), kk, 2*kk, ppl, 1) }},
	}

	rep := report{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Time:       time.Now().UTC(),
	}
	for _, c := range codecs {
		codec, err := c.mk()
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s: %v\n", c.name, err)
			os.Exit(1)
		}
		src := benchproto.Source(kk, ppl)
		enc, err := codec.Encode(src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s encode: %v\n", c.name, err)
			os.Exit(1)
		}
		tornadoStyle := false
		switch c.name {
		case "tornado-a", "tornado-b":
			tornadoStyle = true
		}

		encRes := runBench(kk*ppl, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := codec.Encode(src); err != nil {
					b.Fatal(err)
				}
			}
		})
		encRes.Name, encRes.Op = c.name, "encode"
		encRes.K, encRes.N, encRes.PacketLen = kk, codec.N(), ppl
		rep.Results = append(rep.Results, encRes)

		rng := rand.New(rand.NewSource(2))
		decRes := runBench(kk*ppl, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// Packet-order generation is not the decoder's work: keep
				// it off the clock and out of the allocation accounting.
				b.StopTimer()
				var order []int
				if tornadoStyle {
					order = benchproto.TornadoOrder(rng, codec.N())
				} else {
					order = benchproto.RSOrder(rng, kk)
				}
				b.StartTimer()
				d := codec.NewDecoder()
				for _, j := range order {
					done, err := d.Add(j, enc[j])
					if err != nil {
						b.Fatal(err)
					}
					if done {
						break
					}
				}
				if _, err := d.Source(); err != nil {
					b.Fatal(err)
				}
			}
		})
		decRes.Name, decRes.Op = c.name, "decode"
		decRes.K, decRes.N, decRes.PacketLen = kk, codec.N(), ppl
		decRes.Overhead = fixedOverhead(codec, enc, kk, tornadoStyle)
		rep.Results = append(rep.Results, decRes)
	}

	// The rateless codecs, at the ISSUE-4 reference sizes. Throughput is
	// per k packets' worth of payload so the MB/s figures are comparable
	// with the fixed-rate rows, and reception overhead is measured over
	// fresh regions of the unbounded index space.
	for _, ltK := range []int{1000, 10000} {
		res, err := benchLT(ltK, ppl)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: lt k=%d: %v\n", ltK, err)
			os.Exit(1)
		}
		rep.Results = append(rep.Results, res...)
	}
	for _, rk := range []int{1000, 10000} {
		res, err := benchRaptor(rk, ppl)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: raptor k=%d: %v\n", rk, err)
			os.Exit(1)
		}
		rep.Results = append(rep.Results, res...)
	}

	if err := checkRatelessGates(rep.Results); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: marshal: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: write: %v\n", err)
		os.Exit(1)
	}
	for _, r := range rep.Results {
		ov := ""
		if r.Overhead > 0 {
			ov = fmt.Sprintf(" %7.4f pkts/k", r.Overhead)
		}
		fmt.Printf("%-16s %-7s k=%-6d %12.0f ns/op %9.2f MB/s %10d B/op %7d allocs/op%s\n",
			r.Name, r.Op, r.K, r.NsPerOp, r.MBPerSec, r.BytesPerOp, r.AllocsPerOp, ov)
	}
	fmt.Printf("wrote %s\n", *out)
}

// flagWasSet reports whether the named flag was given on the command line.
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// fixedOverhead measures a fixed-rate codec's reception overhead (packets
// needed / k) over fresh Table-3 reception orders.
func fixedOverhead(codec fountain.Codec, enc [][]byte, k int, tornadoStyle bool) float64 {
	rng := rand.New(rand.NewSource(77))
	total := 0
	for trial := 0; trial < overheadTrials; trial++ {
		var order []int
		if tornadoStyle {
			order = benchproto.TornadoOrder(rng, codec.N())
		} else {
			order = benchproto.RSOrder(rng, k)
		}
		d := codec.NewDecoder()
		for _, j := range order {
			total++
			done, err := d.Add(j, enc[j])
			if err != nil {
				fmt.Fprintf(os.Stderr, "bench: overhead add: %v\n", err)
				os.Exit(1)
			}
			if done {
				break
			}
		}
		if !d.Done() {
			// A decoder that exhausts its reception order without
			// completing is a regression; a quiet overhead figure would
			// mask exactly what this field exists to track.
			fmt.Fprintf(os.Stderr, "bench: %s did not decode within its reception order\n", codec.Name())
			os.Exit(1)
		}
	}
	return float64(total) / float64(overheadTrials) / float64(k)
}

// benchLT produces the encode/decode rows of the rateless codec at one k:
// encode throughput over k-packet windows of the unbounded index stream,
// decode throughput over a fresh stream region per iteration, and the
// averaged reception overhead on the decode row.
func benchLT(k, pl int) ([]result, error) {
	codec, err := fountain.NewLT(k, pl, 1, 0, 0)
	if err != nil {
		return nil, err
	}
	ranger := codec.(code.RangeEncoder)
	src := benchproto.Source(k, pl)
	// Enough stream for any single decode: measured overhead stays under
	// 1.1; a quarter plus slack gives deterministic headroom.
	budget := k + k/4 + 256

	base := 0
	encRes := runBench(k*pl, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ranger.EncodeRange(src, base, base+k); err != nil {
				b.Fatal(err)
			}
			base += k
		}
	})
	encRes.Name, encRes.Op = codec.Name(), "encode"
	encRes.K, encRes.N, encRes.PacketLen = k, codec.N(), pl

	decBase := 1 << 28
	decRes := runBench(k*pl, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// Stream generation is the encoder's work: off the clock.
			b.StopTimer()
			pool, err := ranger.EncodeRange(src, decBase, decBase+budget)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			d := codec.NewDecoder()
			done := false
			for j := 0; j < len(pool) && !done; j++ {
				if done, err = d.Add(decBase+j, pool[j]); err != nil {
					b.Fatal(err)
				}
			}
			if !done {
				b.Fatalf("lt k=%d: stream budget %d exhausted", k, budget)
			}
			if _, err := d.Source(); err != nil {
				b.Fatal(err)
			}
			decBase += budget
		}
	})
	decRes.Name, decRes.Op = codec.Name(), "decode"
	decRes.K, decRes.N, decRes.PacketLen = k, codec.N(), pl

	// Reception overhead over fresh stream regions.
	total := 0
	ovBase := 1 << 30
	for trial := 0; trial < overheadTrials; trial++ {
		pool, err := ranger.EncodeRange(src, ovBase, ovBase+budget)
		if err != nil {
			return nil, err
		}
		d := codec.NewDecoder()
		done := false
		for j := 0; j < len(pool) && !done; j++ {
			total++
			if done, err = d.Add(ovBase+j, pool[j]); err != nil {
				return nil, err
			}
		}
		if !done {
			return nil, fmt.Errorf("stream budget %d exhausted", budget)
		}
		ovBase += budget
	}
	decRes.Overhead = float64(total) / float64(overheadTrials) / float64(k)
	return []result{encRes, decRes}, nil
}

// benchRaptor produces the rows of the precoded systematic rateless codec
// at one k. Three rows, because the code has two distinct decode regimes:
//
//   - "decode" is the systematic operating point — a lossless receiver's
//     intake of the k source packets, zero XOR work, the regime the
//     digital-fountain deployment sits in whenever loss is low. Its
//     overhead is exactly 1 by construction.
//   - "decode-repair" is the worst case — a receiver that joins mid-stream
//     and sees only repair packets. This row carries the measured
//     reception-overhead figure the ≤1.03 gate holds.
//
// The encode row measures repair-packet production (the systematic prefix
// aliases the source and costs nothing).
func benchRaptor(k, pl int) ([]result, error) {
	codec, err := fountain.NewRaptor(k, pl, 1, 0, 0, 0, 0)
	if err != nil {
		return nil, err
	}
	ranger := codec.(code.RangeEncoder)
	src := benchproto.Source(k, pl)
	budget := k + k/4 + 256

	base := 1 << 27 // repair region: indices >= k
	encRes := runBench(k*pl, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ranger.EncodeRange(src, base, base+k); err != nil {
				b.Fatal(err)
			}
			base += k
		}
	})
	encRes.Name, encRes.Op = codec.Name(), "encode"
	encRes.K, encRes.N, encRes.PacketLen = k, codec.N(), pl

	sysRes := runBench(k*pl, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// The systematic prefix aliases src — no encode work to keep
			// off the clock; the decoder copies into its own arena.
			d := codec.NewDecoder()
			done := false
			var err error
			for j := 0; j < k; j++ {
				if done, err = d.Add(j, src[j]); err != nil {
					b.Fatal(err)
				}
			}
			if !done {
				b.Fatalf("raptor k=%d: lossless systematic intake did not complete at k", k)
			}
			if _, err := d.Source(); err != nil {
				b.Fatal(err)
			}
		}
	})
	sysRes.Name, sysRes.Op = codec.Name(), "decode"
	sysRes.K, sysRes.N, sysRes.PacketLen = k, codec.N(), pl
	sysRes.Overhead = 1 // exactly k packets, asserted above

	decBase := 1 << 28
	decRes := runBench(k*pl, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			pool, err := ranger.EncodeRange(src, decBase, decBase+budget)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			d := codec.NewDecoder()
			done := false
			for j := 0; j < len(pool) && !done; j++ {
				if done, err = d.Add(decBase+j, pool[j]); err != nil {
					b.Fatal(err)
				}
			}
			if !done {
				b.Fatalf("raptor k=%d: stream budget %d exhausted", k, budget)
			}
			if _, err := d.Source(); err != nil {
				b.Fatal(err)
			}
			decBase += budget
		}
	})
	decRes.Name, decRes.Op = codec.Name(), "decode-repair"
	decRes.K, decRes.N, decRes.PacketLen = k, codec.N(), pl

	total := 0
	ovBase := 1 << 30
	for trial := 0; trial < overheadTrials; trial++ {
		pool, err := ranger.EncodeRange(src, ovBase, ovBase+budget)
		if err != nil {
			return nil, err
		}
		d := codec.NewDecoder()
		done := false
		for j := 0; j < len(pool) && !done; j++ {
			total++
			if done, err = d.Add(ovBase+j, pool[j]); err != nil {
				return nil, err
			}
		}
		if !done {
			return nil, fmt.Errorf("stream budget %d exhausted", budget)
		}
		ovBase += budget
	}
	decRes.Overhead = float64(total) / float64(overheadTrials) / float64(k)
	return []result{encRes, sysRes, decRes}, nil
}

// ratelessGate is one hard acceptance bound over a rateless decode row.
// Overhead regressions and decoder-allocation regressions fail the bench
// run (and CI's codec-bench step) outright instead of drifting silently
// into the trajectory file.
type ratelessGate struct {
	name, op    string
	k           int
	maxOverhead float64
	maxAllocs   int64
}

var ratelessGates = []ratelessGate{
	// LT: belief propagation over the full robust soliton; the arena
	// decoder holds k=1000 near a hundred allocs/op, and allocations grow
	// sublinearly in k.
	{"lt", "decode", 1000, 1.15, 2_000},
	{"lt", "decode", 10000, 1.15, 8_000},
	// Raptor: systematic intake is alloc-light and exactly-k by
	// construction; repair-only decode must stay within 3% overhead.
	{"raptor", "decode", 1000, 1.0, 2_000},
	{"raptor", "decode", 10000, 1.0, 8_000},
	{"raptor", "decode-repair", 1000, 1.03, 4_000},
	{"raptor", "decode-repair", 10000, 1.03, 16_000},
}

// checkRatelessGates enforces ratelessGates over the collected rows. A
// gate whose row is missing is itself a failure — a renamed or dropped
// benchmark must not pass vacuously.
func checkRatelessGates(results []result) error {
	for _, g := range ratelessGates {
		found := false
		for _, r := range results {
			if r.Name != g.name || r.Op != g.op || r.K != g.k {
				continue
			}
			found = true
			if r.Overhead > g.maxOverhead {
				return fmt.Errorf("gate %s/%s k=%d: overhead %.4f exceeds %.2f",
					g.name, g.op, g.k, r.Overhead, g.maxOverhead)
			}
			if r.AllocsPerOp > g.maxAllocs {
				return fmt.Errorf("gate %s/%s k=%d: %d allocs/op exceeds %d",
					g.name, g.op, g.k, r.AllocsPerOp, g.maxAllocs)
			}
		}
		if !found {
			return fmt.Errorf("gate %s/%s k=%d matched no benchmark row (vacuous pass)", g.name, g.op, g.k)
		}
	}
	return nil
}

// runBench wraps testing.Benchmark (which scales iterations to ~1s of
// measured time) with byte-rate accounting.
func runBench(bytesPerOp int, fn func(b *testing.B)) result {
	r := testing.Benchmark(func(b *testing.B) {
		b.SetBytes(int64(bytesPerOp))
		b.ReportAllocs()
		fn(b)
	})
	if r.N == 0 {
		// testing.Benchmark returns the zero result when the benchmark
		// body b.Fatals; writing zero metrics would silently corrupt the
		// trajectory file.
		fmt.Fprintln(os.Stderr, "bench: benchmark failed (zero iterations)")
		os.Exit(1)
	}
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	mbps := 0.0
	if r.T > 0 {
		mbps = float64(bytesPerOp) * float64(r.N) / r.T.Seconds() / 1e6
	}
	return result{
		Iterations:  r.N,
		NsPerOp:     ns,
		MBPerSec:    mbps,
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}
