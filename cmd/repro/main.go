// Command repro regenerates the paper's tables and figures.
//
// Usage:
//
//	repro -exp table2            # one experiment (table1..table5, fig2, fig4..fig8)
//	repro -exp all               # everything
//	repro -exp all -full         # the paper's full parameter grid (slow)
//	repro -exp fig4 -trials 5000 # override trial counts
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/repro"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment id: table1,table2,table3,table4,table5,fig2,fig4,fig5,fig6,fig8 or 'all'")
		full   = flag.Bool("full", false, "run the paper's full parameter grid (slow)")
		trials = flag.Int("trials", 0, "override per-point trial counts")
		seed   = flag.Int64("seed", 1998, "experiment seed")
	)
	flag.Parse()
	o := repro.Options{Full: *full, Seed: *seed, Trials: *trials}
	type gen struct {
		id  string
		run func() error
	}
	w := os.Stdout
	gens := []gen{
		{"table1", func() error { return repro.Table1(w, o) }},
		{"table2", func() error { return repro.Table2(w, o) }},
		{"table3", func() error { return repro.Table3(w, o) }},
		{"fig2", func() error { return repro.Fig2(w, o) }},
		{"table4", func() error { return repro.Table4(w, o) }},
		{"fig4", func() error { return repro.Fig4(w, o) }},
		{"fig5", func() error { return repro.Fig5(w, o) }},
		{"fig6", func() error { return repro.Fig6(w, o) }},
		{"table5", func() error { return repro.Table5(w, o) }},
		{"fig8", func() error { return repro.Fig8(w, o) }},
	}
	want := strings.Split(*exp, ",")
	matched := false
	for _, g := range gens {
		sel := *exp == "all"
		for _, id := range want {
			if id == g.id {
				sel = true
			}
		}
		if !sel {
			continue
		}
		matched = true
		fmt.Printf("==== %s ====\n", g.id)
		if err := g.run(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", g.id, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
