// Command fountain-client downloads files from a fountain service over
// UDP: it discovers sessions via the control socket's catalog, subscribes
// to the data layers of the chosen session(s), adapts its subscription
// level at synchronization points, and writes each reconstructed file once
// its decoder reports completion.
//
// Usage:
//
//	fountain-client -control 127.0.0.1:9001 -data 127.0.0.1:9000 -list
//	fountain-client -control ... -data ... -session 0xDF98 -out copy.bin
//	fountain-client -control ... -data ... -all -out download
//
// With neither -session nor -all, the server's default (lowest-id) session
// is fetched, as the one-session prototype did.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strconv"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/proto"
	"repro/internal/transport"
)

func main() {
	var (
		ctrlAddr = flag.String("control", "127.0.0.1:9001", "server control address")
		dataAddr = flag.String("data", "127.0.0.1:9000", "server data address")
		out      = flag.String("out", "download.bin", "output file (suffixed with the session id under -all)")
		level    = flag.Int("level", 0, "initial subscription level")
		timeout  = flag.Duration("timeout", 10*time.Minute, "give up after this long")
		sessArg  = flag.String("session", "", "session id to fetch (e.g. 0xDF98); empty = server default")
		all      = flag.Bool("all", false, "fetch every session in the catalog concurrently")
		list     = flag.Bool("list", false, "print the catalog and exit")
	)
	flag.Parse()

	if *all && *sessArg != "" {
		log.Fatal("fountain-client: -all and -session are mutually exclusive")
	}
	ctrl, err := net.ResolveUDPAddr("udp", *ctrlAddr)
	if err != nil {
		log.Fatal(err)
	}
	data, err := net.ResolveUDPAddr("udp", *dataAddr)
	if err != nil {
		log.Fatal(err)
	}

	if *list || *all {
		reply, err := transport.RequestSessionInfo(ctrl, proto.MarshalCatalogRequest(), 5*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		catalog, err := proto.ParseCatalog(reply)
		if err != nil {
			log.Fatal(err)
		}
		if *list {
			fmt.Printf("fountain-client: %d sessions\n", len(catalog))
			for _, info := range catalog {
				fmt.Printf("  session %#04x codec=%d k=%d n=%d layers=%d rate=%d file=%d bytes\n",
					info.Session, info.Codec, info.K, info.N, info.Layers, info.BaseRate, info.FileLen)
			}
			return
		}
		if len(catalog) == 0 {
			log.Fatal("fountain-client: catalog is empty")
		}
		var wg sync.WaitGroup
		failed := make(chan error, len(catalog))
		for _, info := range catalog {
			wg.Add(1)
			go func(info proto.SessionInfo) {
				defer wg.Done()
				name := fmt.Sprintf("%s.%04x", *out, info.Session)
				if err := download(info, data, name, *level, *timeout); err != nil {
					failed <- fmt.Errorf("session %#x: %w", info.Session, err)
				}
			}(info)
		}
		wg.Wait()
		close(failed)
		nfail := 0
		for err := range failed {
			log.Print(err)
			nfail++
		}
		if nfail > 0 {
			log.Fatalf("fountain-client: %d of %d sessions failed", nfail, len(catalog))
		}
		return
	}

	hello := proto.MarshalHello()
	if *sessArg != "" {
		id, err := strconv.ParseUint(*sessArg, 0, 16)
		if err != nil {
			log.Fatalf("fountain-client: bad -session %q: %v", *sessArg, err)
		}
		hello = proto.MarshalHelloFor(uint16(id))
	}
	reply, err := transport.RequestSessionInfo(ctrl, hello, 5*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	if id, nak := proto.ParseNak(reply); nak {
		if id == transport.SessionAny {
			log.Fatal("fountain-client: server carries no sessions")
		}
		log.Fatalf("fountain-client: server has no session %#x (try -list)", id)
	}
	info, err := proto.ParseSessionInfo(reply)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fountain-client: session %#x codec=%d k=%d n=%d layers=%d file=%d bytes\n",
		info.Session, info.Codec, info.K, info.N, info.Layers, info.FileLen)
	if err := download(info, data, *out, *level, *timeout); err != nil {
		log.Fatal(err)
	}
}

// download fetches one session over its own UDP subscription and writes the
// reconstructed file. Each concurrent download has an independent socket,
// decoder, and congestion controller — the server keeps no state for any of
// them.
func download(info proto.SessionInfo, data *net.UDPAddr, out string, level int, timeout time.Duration) error {
	if level >= int(info.Layers) {
		level = int(info.Layers) - 1
	}
	udp, err := transport.NewUDPClientSession(data, info.Session, level)
	if err != nil {
		return err
	}
	defer udp.Close()
	eng, err := client.New(info, level, func(l int) {
		if err := udp.SetLevel(l); err != nil {
			log.Printf("session %#x: subscription change failed: %v", info.Session, err)
		}
	})
	if err != nil {
		return err
	}
	deadline := time.Now().Add(timeout)
	for !eng.Done() {
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out after %v", timeout)
		}
		pkt, ok := udp.Recv(2 * time.Second)
		if !ok {
			continue
		}
		if _, err := eng.HandlePacket(pkt); err != nil {
			continue // stray datagram
		}
	}
	file, err := eng.File()
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, file, 0o644); err != nil {
		return err
	}
	eta, etaC, etaD := eng.Efficiency()
	fmt.Printf("fountain-client: wrote %s (%d bytes); loss=%.1f%% eta=%.3f eta_c=%.3f eta_d=%.3f level=%d\n",
		out, len(file), 100*eng.MeasuredLoss(), eta, etaC, etaD, eng.Level())
	return nil
}
