// Command fountain-client downloads files from a fountain service over
// UDP: it discovers sessions via the control socket's catalog, subscribes
// to the data layers of the chosen session(s), adapts its subscription
// level at synchronization points, and writes each reconstructed file once
// its decoder reports completion.
//
// With repeated -server flags the client harvests the session from several
// mirrors at once (§8 "mirrored data"): every mirror's packets land in one
// decoder, loss is measured per mirror, and the subscription level follows
// the worst mirror. No mirror coordination is needed — staggered carousel
// phases (servers advertise theirs in the catalog) keep early duplicates
// near zero.
//
// Usage:
//
//	fountain-client -control 127.0.0.1:9001 -data 127.0.0.1:9000 -list
//	fountain-client -control ... -data ... -session 0xDF98 -out copy.bin
//	fountain-client -control ... -data ... -all -out download
//	fountain-client -control ... -server 10.0.0.1:9000 -server 10.0.0.2:9000 -session 0xDF98
//
// With neither -session nor -all, the server's default (lowest-id) session
// is fetched, as the one-session prototype did.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strconv"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/evtrace"
	"repro/internal/proto"
	"repro/internal/transport"
)

type addrList []string

func (a *addrList) String() string     { return fmt.Sprint(*a) }
func (a *addrList) Set(s string) error { *a = append(*a, s); return nil }

func main() {
	var servers addrList
	var (
		ctrlAddr = flag.String("control", "127.0.0.1:9001", "server control address")
		dataAddr = flag.String("data", "127.0.0.1:9000", "server data address (ignored when -server is given)")
		out      = flag.String("out", "download.bin", "output file (suffixed with the session id under -all)")
		level    = flag.Int("level", 0, "initial subscription level")
		timeout  = flag.Duration("timeout", 10*time.Minute, "give up after this long")
		sessArg  = flag.String("session", "", "session id to fetch (e.g. 0xDF98); empty = server default")
		all      = flag.Bool("all", false, "fetch every session in the catalog concurrently")
		list     = flag.Bool("list", false, "print the catalog and exit")
		stats    = flag.Bool("stats", false, "print the server's stats snapshot and exit")
		statsIv  = flag.Duration("stats-interval", 0, "poll the server's stats during the download, printing deltas every interval (0 = off)")
		traceOut = flag.String("trace", "", "record the client intake path and write a flight-recorder dump here (suffixed with the session id under -all); analyze with fountain-trace")
		attempts = flag.Int("ctrl-attempts", 5, "control request attempts before giving up")
		ctrlTO   = flag.Duration("ctrl-timeout", 2*time.Second, "per-attempt control reply timeout")
		rejoinIv = flag.Duration("rejoin", 3*time.Second, "resubscribe to a mirror silent for this long (0 = never)")
		stall    = flag.Duration("stall", 45*time.Second, "abort when no mirror delivers anything for this long")
	)
	flag.Var(&servers, "server", "mirror data address carrying the same session (repeatable)")
	flag.Parse()

	if *all && *sessArg != "" {
		log.Fatal("fountain-client: -all and -session are mutually exclusive")
	}
	ctrl, err := net.ResolveUDPAddr("udp", *ctrlAddr)
	if err != nil {
		log.Fatal(err)
	}
	if len(servers) == 0 {
		servers = addrList{*dataAddr}
	}
	mirrors := make([]*net.UDPAddr, len(servers))
	for i, s := range servers {
		if mirrors[i], err = net.ResolveUDPAddr("udp", s); err != nil {
			log.Fatal(err)
		}
	}

	// Control requests run through a bounded, jittered retry loop: a slow
	// or restarting server is probed a few more times, a dead one fails
	// fast instead of hanging the startup.
	policy := transport.RetryPolicy{Attempts: *attempts, Timeout: *ctrlTO}
	opts := dlOpts{level: *level, timeout: *timeout, rejoin: *rejoinIv, stall: *stall, trace: *traceOut}

	// Periodic control-plane stats polling: one poller for the whole process
	// (downloads of several sessions share the server), printing deltas so
	// an operator watches the server's rates, not its lifetime totals.
	if *statsIv > 0 && !*stats && !*list {
		stopPoll := make(chan struct{})
		defer close(stopPoll)
		go pollStats(ctrl, policy, *statsIv, stopPoll)
	}

	if *stats {
		reply, err := transport.RequestSessionInfoRetry(ctrl, proto.MarshalStatsRequest(), policy)
		if err != nil {
			log.Fatal(err)
		}
		s, err := proto.ParseStats(reply)
		if err != nil {
			log.Fatal(err)
		}
		printStats(s)
		return
	}

	if *list || *all {
		reply, err := transport.RequestSessionInfoRetry(ctrl, proto.MarshalCatalogRequest(), policy)
		if err != nil {
			log.Fatal(err)
		}
		catalog, err := proto.ParseCatalog(reply)
		if err != nil {
			log.Fatal(err)
		}
		if *list {
			fmt.Printf("fountain-client: %d sessions\n", len(catalog))
			for _, info := range catalog {
				fmt.Printf("  session %#04x codec=%d k=%d n=%d layers=%d rate=%d phase=%d file=%d bytes\n",
					info.Session, info.Codec, info.K, info.N, info.Layers, info.BaseRate, info.Phase, info.FileLen)
			}
			return
		}
		if len(catalog) == 0 {
			log.Fatal("fountain-client: catalog is empty")
		}
		var wg sync.WaitGroup
		failed := make(chan error, len(catalog))
		for _, info := range catalog {
			wg.Add(1)
			go func(info proto.SessionInfo) {
				defer wg.Done()
				name := fmt.Sprintf("%s.%04x", *out, info.Session)
				sopts := opts
				if opts.trace != "" {
					sopts.trace = fmt.Sprintf("%s.%04x", opts.trace, info.Session)
				}
				if err := download(info, mirrors, name, sopts); err != nil {
					failed <- fmt.Errorf("session %#x: %w", info.Session, err)
				}
			}(info)
		}
		wg.Wait()
		close(failed)
		nfail := 0
		for err := range failed {
			log.Print(err)
			nfail++
		}
		if nfail > 0 {
			log.Fatalf("fountain-client: %d of %d sessions failed", nfail, len(catalog))
		}
		return
	}

	hello := proto.MarshalHello()
	if *sessArg != "" {
		id, err := strconv.ParseUint(*sessArg, 0, 16)
		if err != nil {
			log.Fatalf("fountain-client: bad -session %q: %v", *sessArg, err)
		}
		hello = proto.MarshalHelloFor(uint16(id))
	}
	reply, err := transport.RequestSessionInfoRetry(ctrl, hello, policy)
	if err != nil {
		log.Fatal(err)
	}
	if id, nak := proto.ParseNak(reply); nak {
		if id == transport.SessionAny {
			log.Fatal("fountain-client: server carries no sessions")
		}
		log.Fatalf("fountain-client: server has no session %#x (try -list)", id)
	}
	info, err := proto.ParseSessionInfo(reply)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fountain-client: session %#x codec=%d k=%d n=%d layers=%d file=%d bytes (%d mirrors)\n",
		info.Session, info.Codec, info.K, info.N, info.Layers, info.FileLen, len(mirrors))
	if err := download(info, mirrors, *out, opts); err != nil {
		log.Fatal(err)
	}
}

// printStats renders a server stats snapshot for operators.
func printStats(s proto.StatsSnapshot) {
	state := "serving"
	if s.Draining == 1 {
		state = "draining"
	}
	fmt.Printf("fountain-server stats (%s):\n", state)
	fmt.Printf("  sessions=%d shards=%d subscribers=%d\n", s.Sessions, s.Shards, s.Subscribers)
	fmt.Printf("  data: packets=%d bytes=%d send-errors=%d\n", s.PacketsSent, s.BytesSent, s.SendErrors)
	fmt.Printf("  scheduler: rounds=%d catchup=%d debt-dropped=%d\n", s.RoundsEmitted, s.CatchupRounds, s.DebtDropped)
	fmt.Printf("  cache: used=%d peak=%d lookups=%d hits=%d misses=%d evictions=%d\n",
		s.CacheUsed, s.CachePeak, s.CacheLookups, s.CacheHits, s.CacheMisses, s.CacheEvictions)
	fmt.Printf("  transport: tx-packets=%d tx-bytes=%d\n", s.TxPackets, s.TxBytes)
}

// pollStats polls the server's control-plane stats every iv, printing the
// counter deltas between snapshots — the live view of what the server did
// while this client downloaded. The first reply prints as a baseline.
func pollStats(ctrl *net.UDPAddr, policy transport.RetryPolicy, iv time.Duration, stop <-chan struct{}) {
	var prev proto.StatsSnapshot
	have := false
	t := time.NewTicker(iv)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		reply, err := transport.RequestSessionInfoRetry(ctrl, proto.MarshalStatsRequest(), policy)
		if err != nil {
			log.Printf("fountain-client: stats poll: %v", err)
			continue
		}
		s, err := proto.ParseStats(reply)
		if err != nil {
			log.Printf("fountain-client: stats poll: %v", err)
			continue
		}
		if have {
			fmt.Printf("fountain-client: server +%v: pkts=+%d bytes=+%d errs=+%d rounds=+%d catchup=+%d subs=%d sessions=%d\n",
				iv, s.PacketsSent-prev.PacketsSent, s.BytesSent-prev.BytesSent,
				s.SendErrors-prev.SendErrors, s.RoundsEmitted-prev.RoundsEmitted,
				s.CatchupRounds-prev.CatchupRounds, s.Subscribers, s.Sessions)
		} else {
			fmt.Printf("fountain-client: server baseline: pkts=%d bytes=%d errs=%d rounds=%d subs=%d sessions=%d\n",
				s.PacketsSent, s.BytesSent, s.SendErrors, s.RoundsEmitted, s.Subscribers, s.Sessions)
		}
		prev, have = s, true
	}
}

// dlOpts bundles the download loop's robustness knobs.
type dlOpts struct {
	level   int
	timeout time.Duration
	rejoin  time.Duration // resubscribe to a mirror silent this long
	stall   time.Duration // abort when every mirror is silent this long
	trace   string        // non-empty = write a flight-recorder dump here
}

// download fetches one session from every mirror at once and writes the
// reconstructed file. Each concurrent download has independent sockets,
// decoder, and congestion controllers — no server keeps state for any of
// them, and the mirrors never hear of each other.
func download(info proto.SessionInfo, mirrors []*net.UDPAddr, out string, o dlOpts) error {
	level := o.level
	if level >= int(info.Layers) {
		level = int(info.Layers) - 1
	}
	mc, err := transport.NewMultiClient(mirrors, info.Session, level)
	if err != nil {
		return err
	}
	defer mc.Close()
	// Size the receive buffers to this session's wire packets (header +
	// payload + integrity tag), with slack for control-plane growth.
	mc.SetRecvSize(proto.HeaderLen + int(info.PacketLen) + proto.TagLen + 64)
	eng, err := client.NewMultiSource(info, len(mirrors), level, func(l int) {
		if err := mc.SetLevel(l); err != nil {
			log.Printf("session %#x: subscription change failed: %v", info.Session, err)
		}
	})
	if err != nil {
		return err
	}
	var rec *evtrace.Recorder
	if o.trace != "" {
		// Record the intake path (accepted packets, integrity drops, symbol
		// releases, completion) in wall-monotonic time for fountain-trace.
		rec = evtrace.New(evtrace.Config{Shards: 1, ShardSize: 1 << 18})
		rec.Enable()
		eng.SetTrace(rec.Shard(0), 0)
	}
	// Silent-mirror watchdog: a mirror that delivered nothing for a whole
	// rejoin interval may have crashed and restarted with an empty
	// membership table, so its subscriptions are re-sent (idempotent on a
	// healthy server). When every mirror stays silent past the stall bound
	// the download aborts instead of spinning until the global timeout.
	deadline := time.Now().Add(o.timeout)
	lastAny := time.Now()
	lastSeen := make([]int, len(mirrors))
	nextRejoin := time.Now().Add(o.rejoin)
	for !eng.Done() {
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out after %v", o.timeout)
		}
		// Whole batches move from the socket to the engine: one funnel
		// handoff and one intake call per recvmmsg burst instead of one
		// channel round-trip per packet.
		src, pkts, err := mc.RecvBatchFrom(500 * time.Millisecond)
		switch err {
		case nil:
			lastAny = time.Now()
			// Stray datagrams are skipped inside the batch (the engine
			// processes the rest); the loop condition re-checks Done.
			_, _ = eng.HandleBatchFrom(src, pkts)
		case transport.ErrClosed:
			return fmt.Errorf("receive sockets closed mid-download")
		case transport.ErrTimeout:
			// Idle interval: fall through to the watchdogs.
		default:
			return err
		}
		if o.stall > 0 && time.Since(lastAny) > o.stall {
			return fmt.Errorf("no data from any of %d mirrors for %v", len(mirrors), o.stall)
		}
		if o.rejoin > 0 && time.Now().After(nextRejoin) {
			for _, s := range eng.Sources() {
				st := eng.SourceStats(s)
				got := st.Received + st.Corrupt
				if got == lastSeen[s] {
					if err := mc.Rejoin(s); err == nil {
						log.Printf("session %#x: mirror %d (%s) silent for %v, resubscribed",
							info.Session, s, mirrors[s], o.rejoin)
					}
				}
				lastSeen[s] = got
			}
			nextRejoin = time.Now().Add(o.rejoin)
		}
	}
	file, err := eng.File()
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, file, 0o644); err != nil {
		return err
	}
	if rec != nil {
		rec.Disable()
		events := rec.Snapshot()
		tf, err := os.Create(o.trace)
		if err != nil {
			return err
		}
		werr := evtrace.WriteBinary(tf, events)
		if cerr := tf.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("writing trace %s: %w", o.trace, werr)
		}
		fmt.Printf("fountain-client: wrote trace %s (%d events, %d overwritten)\n",
			o.trace, len(events), rec.Dropped())
	}
	eta, etaC, etaD := eng.Efficiency()
	fmt.Printf("fountain-client: wrote %s (%d bytes); loss=%.1f%% corrupt=%d eta=%.3f eta_c=%.3f eta_d=%.3f level=%d\n",
		out, len(file), 100*eng.MeasuredLoss(), eng.Corrupt(), eta, etaC, etaD, eng.Level())
	if len(mirrors) > 1 {
		for _, src := range eng.Sources() {
			st := eng.SourceStats(src)
			fmt.Printf("  mirror %d (%s): recv=%d distinct=%d dup=%d corrupt=%d loss=%.1f%% level=%d\n",
				src, mirrors[src], st.Received, st.Distinct, st.Duplicate, st.Corrupt, 100*st.Loss, st.Level)
		}
	}
	return nil
}
