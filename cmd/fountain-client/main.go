// Command fountain-client downloads a file from a fountain server over
// UDP: it fetches the session descriptor from the control socket,
// subscribes to the data layers, adapts its subscription level at
// synchronization points, and writes the reconstructed file once the
// decoder reports completion.
//
// Usage:
//
//	fountain-client -control 127.0.0.1:9001 -data 127.0.0.1:9000 -out copy.bin -level 1
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"repro/internal/client"
	"repro/internal/proto"
	"repro/internal/transport"
)

func main() {
	var (
		ctrlAddr = flag.String("control", "127.0.0.1:9001", "server control address")
		dataAddr = flag.String("data", "127.0.0.1:9000", "server data address")
		out      = flag.String("out", "download.bin", "output file")
		level    = flag.Int("level", 0, "initial subscription level")
		timeout  = flag.Duration("timeout", 10*time.Minute, "give up after this long")
	)
	flag.Parse()

	ctrl, err := net.ResolveUDPAddr("udp", *ctrlAddr)
	if err != nil {
		log.Fatal(err)
	}
	reply, err := transport.RequestSessionInfo(ctrl, proto.MarshalHello(), 5*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	info, err := proto.ParseSessionInfo(reply)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fountain-client: session %#x codec=%d k=%d n=%d layers=%d file=%d bytes\n",
		info.Session, info.Codec, info.K, info.N, info.Layers, info.FileLen)

	data, err := net.ResolveUDPAddr("udp", *dataAddr)
	if err != nil {
		log.Fatal(err)
	}
	if *level >= int(info.Layers) {
		*level = int(info.Layers) - 1
	}
	udp, err := transport.NewUDPClient(data, *level)
	if err != nil {
		log.Fatal(err)
	}
	defer udp.Close()
	eng, err := client.New(info, *level, func(l int) {
		if err := udp.SetLevel(l); err != nil {
			log.Printf("subscription change failed: %v", err)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	deadline := time.Now().Add(*timeout)
	for !eng.Done() {
		if time.Now().After(deadline) {
			log.Fatal("fountain-client: timed out")
		}
		pkt, ok := udp.Recv(2 * time.Second)
		if !ok {
			continue
		}
		if _, err := eng.HandlePacket(pkt); err != nil {
			continue // stray datagram
		}
	}
	file, err := eng.File()
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, file, 0o644); err != nil {
		log.Fatal(err)
	}
	eta, etaC, etaD := eng.Efficiency()
	fmt.Printf("fountain-client: wrote %s (%d bytes); loss=%.1f%% eta=%.3f eta_c=%.3f eta_d=%.3f level=%d\n",
		*out, len(file), 100*eng.MeasuredLoss(), eta, etaC, etaD, eng.Level())
}
