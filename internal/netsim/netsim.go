// Package netsim implements the simulation methodology of §6: receivers
// join a packet carousel at random offsets, lose packets according to a
// loss process (independent Bernoulli, bursty Gilbert-Elliott, or replayed
// traces), and stop once their codec's decodability condition holds. The
// measured quantity is the paper's reception efficiency
//
//	η = (# source data packets) / (# packets received prior to reconstruction)
//
// including duplicate receptions caused by carousel wrap-around — exactly
// the inefficiency Figures 4-6 quantify.
//
// The simulator is built to scale to populations far beyond the paper's:
// per-receiver randomness is an inline splitmix64 generator (a single
// uint64 of state — no math/rand allocation or 607-word seeding per
// receiver), reception tracking is a per-worker reusable bitset instead of
// a fresh []bool per receiver, and PopulationParallel shards the
// population over dynamically balanced workers. A million receivers at
// k=10000 is a routine run, bit-identical to the serial oracle.
package netsim

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
)

// RNG is the simulator's random number generator: splitmix64, a single
// uint64 of state stepped and mixed per draw. It replaces math/rand's
// *rand.Rand (whose default source allocates and seeds a 607-word table
// per instance) so constructing one per simulated receiver costs a few
// nanoseconds and eight bytes. The zero value is a valid generator seeded
// with 0; NewRNG scatters the seed through the output mixer first so
// small consecutive seeds yield uncorrelated streams.
type RNG struct {
	state uint64
}

// splitmix64 constants (Steele, Lea, Flood: "Fast Splittable Pseudorandom
// Number Generators", OOPSLA 2014).
const (
	smGolden = 0x9e3779b97f4a7c15
	smMixA   = 0xbf58476d1ce4e5b9
	smMixB   = 0x94d049bb133111eb
)

// smMix is the splitmix64 output finalizer: a bijective avalanche over
// uint64, also used to scatter seeds.
func smMix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * smMixA
	z = (z ^ (z >> 27)) * smMixB
	return z ^ (z >> 31)
}

// NewRNG returns a generator whose stream is determined by seed alone.
func NewRNG(seed uint64) *RNG { return &RNG{state: smMix(seed)} }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	r.state += smGolden
	return smMix(r.state)
}

// Float64 returns a uniform float64 in [0, 1): the top 53 bits of one
// draw, exactly representable, so `Float64() < p` and the integer compare
// `Uint64()>>11 < ceil(p·2^53)` decide identically.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("netsim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// floatBits is 2^53: the resolution of Float64 and of Bernoulli's integer
// loss threshold.
const floatBits = 1 << 53

// bernThresh converts a loss probability into the integer threshold t such
// that (Uint64()>>11) < t holds with probability p — and, bit for bit,
// exactly when Float64() < p would hold on the same draw.
func bernThresh(p float64) uint64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return floatBits
	default:
		return uint64(math.Ceil(p * floatBits))
	}
}

// LossProcess decides the fate of successive transmissions to one
// receiver. Implementations are stateful and not safe for concurrent use.
type LossProcess interface {
	// Lose reports whether the next packet is lost.
	Lose() bool
}

// Bernoulli loses each packet independently with probability P.
type Bernoulli struct {
	P   float64
	Rng *RNG

	// Cached integer threshold for P, recomputed when P changes. One draw
	// and one compare per packet — no float division on the hot path.
	thresh    uint64
	threshFor float64
	threshSet bool
}

// ensureThresh refreshes the cached threshold after a P change.
func (b *Bernoulli) ensureThresh() {
	if !b.threshSet || b.threshFor != b.P {
		b.thresh = bernThresh(b.P)
		b.threshFor = b.P
		b.threshSet = true
	}
}

// Lose implements LossProcess.
func (b *Bernoulli) Lose() bool {
	b.ensureThresh()
	return b.Rng.Uint64()>>11 < b.thresh
}

// GilbertElliott is the classic two-state bursty loss model: in the good
// state packets are lost with probability LossGood, in the bad state with
// LossBad; the chain moves good→bad with PGB and bad→good with PBG per
// packet. Mean loss = (PGB·LossBad + PBG·LossGood)/(PGB+PBG).
type GilbertElliott struct {
	PGB, PBG          float64
	LossGood, LossBad float64
	Rng               *RNG
	bad               bool
}

// Lose implements LossProcess.
func (g *GilbertElliott) Lose() bool {
	if g.bad {
		if g.Rng.Float64() < g.PBG {
			g.bad = false
		}
	} else {
		if g.Rng.Float64() < g.PGB {
			g.bad = true
		}
	}
	p := g.LossGood
	if g.bad {
		p = g.LossBad
	}
	return g.Rng.Float64() < p
}

// MeanLoss returns the stationary loss rate of the model.
func (g *GilbertElliott) MeanLoss() float64 {
	if g.PGB+g.PBG == 0 {
		return g.LossGood
	}
	pBad := g.PGB / (g.PGB + g.PBG)
	return pBad*g.LossBad + (1-pBad)*g.LossGood
}

// Decodability is the stopping condition of a receiver: it observes each
// distinct-first reception and reports when the source is recoverable.
// Implementations are per-receiver state machines.
type Decodability interface {
	// Need returns an upper bound hint (total encoding size n).
	N() int
	// Receive records reception of encoding packet i (first time only —
	// the simulator filters duplicates) and reports whether the receiver
	// can now reconstruct the source.
	Receive(i int) bool
}

// ThresholdDecoder models an ideal (k of n) or overhead-sampled (Tornado)
// code: done when the number of distinct packets reaches Need.
type ThresholdDecoder struct {
	NTotal int
	Need   int
	got    int
}

// N implements Decodability.
func (t *ThresholdDecoder) N() int { return t.NTotal }

// Receive implements Decodability.
func (t *ThresholdDecoder) Receive(int) bool {
	t.got++
	return t.got >= t.Need
}

// BlockDecoder models the interleaved code of §6: block b of B needs
// blockK distinct packets; packet i belongs to block i % B (carousel
// interleaving order).
type BlockDecoder struct {
	NTotal  int
	Blocks  int
	BlockK  int
	fill    []int
	pending int
}

// NewBlockDecoder constructs a BlockDecoder for B blocks of blockK source
// packets each, with total encoding size n.
func NewBlockDecoder(n, blocks, blockK int) *BlockDecoder {
	return &BlockDecoder{NTotal: n, Blocks: blocks, BlockK: blockK, fill: make([]int, blocks), pending: blocks}
}

// N implements Decodability.
func (b *BlockDecoder) N() int { return b.NTotal }

// Receive implements Decodability.
func (b *BlockDecoder) Receive(i int) bool {
	blk := i % b.Blocks
	b.fill[blk]++
	if b.fill[blk] == b.BlockK {
		b.pending--
	}
	return b.pending == 0
}

// Reception is the outcome of one receiver's download.
type Reception struct {
	Received int // total packets received (including duplicates)
	Distinct int // distinct packets received
	Done     bool
}

// Efficiency returns η = k / Received.
func (r Reception) Efficiency(k int) float64 {
	if r.Received == 0 {
		return 0
	}
	return float64(k) / float64(r.Received)
}

// DistinctEfficiency returns ηd = Distinct / Received.
func (r Reception) DistinctEfficiency() float64 {
	if r.Received == 0 {
		return 0
	}
	return float64(r.Distinct) / float64(r.Received)
}

// Carousel simulates one receiver downloading from a cycling carousel of n
// packets: the receiver joins at a random offset, every transmission is
// subjected to the loss process, and reception stops when dec reports
// decodability (or after maxTx transmissions, Done=false).
//
// order may be nil (sequential carousel 0..n-1) or a permutation of [0,n)
// (the randomized carousel of §7.1).
func Carousel(dec Decodability, loss LossProcess, order []int, rng *RNG, maxTx int) Reception {
	return carouselSeen(dec, loss, order, rng, maxTx, make([]uint64, (dec.N()+63)/64))
}

// carouselSeen is Carousel over a caller-provided (zeroed) seen-bitset of
// at least ceil(n/64) words — the population workers reuse one per worker
// instead of allocating per receiver. Bernoulli loss takes a devirtualized
// fast path; its draws and decisions are bit-identical to the generic
// loop, so which path runs is unobservable in the results.
func carouselSeen(dec Decodability, loss LossProcess, order []int, rng *RNG, maxTx int, seen []uint64) Reception {
	n := dec.N()
	if maxTx <= 0 {
		maxTx = 1000 * n
	}
	pos := rng.Intn(n)
	if b, ok := loss.(*Bernoulli); ok {
		return carouselBernoulli(dec, b, order, maxTx, seen, n, pos)
	}
	var r Reception
	for tx := 0; tx < maxTx; tx++ {
		idx := pos
		if order != nil {
			idx = order[pos]
		}
		pos++
		if pos == n {
			pos = 0
		}
		if loss.Lose() {
			continue
		}
		r.Received++
		w, bit := idx>>6, uint64(1)<<(idx&63)
		if seen[w]&bit == 0 {
			seen[w] |= bit
			r.Distinct++
			if dec.Receive(idx) {
				r.Done = true
				return r
			}
		}
	}
	return r
}

// carouselBernoulli is the hot inner loop at population scale: inlined
// splitmix64 draw, integer loss threshold, bitset dedup, and a concrete
// fast path for ThresholdDecoder (the ideal/Tornado stopping rule). Every
// random decision matches the generic loop bit for bit.
func carouselBernoulli(dec Decodability, b *Bernoulli, order []int, maxTx int, seen []uint64, n, pos int) Reception {
	b.ensureThresh()
	thresh := b.thresh
	rng := b.Rng
	td, isThreshold := dec.(*ThresholdDecoder)
	var r Reception
	for tx := 0; tx < maxTx; tx++ {
		idx := pos
		if order != nil {
			idx = order[pos]
		}
		pos++
		if pos == n {
			pos = 0
		}
		if rng.Uint64()>>11 < thresh {
			continue
		}
		r.Received++
		w, bit := idx>>6, uint64(1)<<(idx&63)
		if seen[w]&bit == 0 {
			seen[w] |= bit
			r.Distinct++
			var done bool
			if isThreshold {
				td.got++
				done = td.got >= td.Need
			} else {
				done = dec.Receive(idx)
			}
			if done {
				r.Done = true
				return r
			}
		}
	}
	return r
}

// ReceiverRNG returns the deterministic RNG of receiver i in a population
// seeded with seed. Each receiver's randomness — decoder sampling, loss
// process, and carousel join offset — is derived only from (seed, i), so a
// population produces bit-identical results regardless of execution order:
// serial and parallel runs agree, and so do runs with different worker
// counts. The (seed, i) pair is scattered through the splitmix64 mixer, so
// neighbouring receiver indices get statistically independent streams.
func ReceiverRNG(seed int64, i int) *RNG {
	return &RNG{state: smMix(uint64(seed) + smGolden*uint64(i+1))}
}

// Population simulates `receivers` i.i.d. receivers serially and returns
// their reception efficiencies. mkDec and mkLoss build fresh per-receiver
// state from the receiver's own deterministic RNG (see ReceiverRNG).
func Population(receivers int, k int, mkDec func(rng *RNG) Decodability, mkLoss func(rng *RNG) LossProcess, order []int, seed int64) []float64 {
	out := make([]float64, receivers)
	var scratch []uint64
	populationRange(out, 0, receivers, k, mkDec, mkLoss, order, seed, &scratch)
	return out
}

// popShard is the number of receivers one worker claims per grab: small
// enough that slow receivers don't strand a worker with a long static
// chunk, large enough that the atomic counter is cold.
const popShard = 1024

// PopulationParallel is Population fanned out over the CPU with
// dynamically balanced shard workers: each worker owns one reusable
// seen-bitset and claims popShard receivers at a time from an atomic
// cursor. Because every receiver's randomness is derived independently
// from (seed, i), the result is bit-identical to the serial Population for
// the same arguments — a million simulated receivers run concurrently
// without losing reproducibility. mkDec and mkLoss must be safe for
// concurrent calls (each invocation gets its own rng; they should not
// share other mutable state).
func PopulationParallel(receivers int, k int, mkDec func(rng *RNG) Decodability, mkLoss func(rng *RNG) LossProcess, order []int, seed int64) []float64 {
	out := make([]float64, receivers)
	workers := runtime.GOMAXPROCS(0)
	if workers > (receivers+popShard-1)/popShard {
		workers = (receivers + popShard - 1) / popShard
	}
	if workers <= 1 {
		var scratch []uint64
		populationRange(out, 0, receivers, k, mkDec, mkLoss, order, seed, &scratch)
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scratch []uint64
			for {
				lo := int(next.Add(popShard)) - popShard
				if lo >= receivers {
					return
				}
				hi := lo + popShard
				if hi > receivers {
					hi = receivers
				}
				populationRange(out, lo, hi, k, mkDec, mkLoss, order, seed, &scratch)
			}
		}()
	}
	wg.Wait()
	return out
}

// populationRange simulates receivers [lo, hi), reusing *scratch as the
// seen-bitset across receivers (cleared, not reallocated, per receiver).
func populationRange(out []float64, lo, hi, k int, mkDec func(rng *RNG) Decodability, mkLoss func(rng *RNG) LossProcess, order []int, seed int64, scratch *[]uint64) {
	for i := lo; i < hi; i++ {
		rng := ReceiverRNG(seed, i)
		dec := mkDec(rng)
		loss := mkLoss(rng)
		words := (dec.N() + 63) / 64
		if cap(*scratch) < words {
			*scratch = make([]uint64, words)
		}
		seen := (*scratch)[:words]
		clear(seen)
		r := carouselSeen(dec, loss, order, rng, 0, seen)
		out[i] = r.Efficiency(k)
	}
}

// WorstOfR estimates the expected worst-case (minimum) efficiency among R
// simultaneous receivers from a sample of i.i.d. receiver efficiencies,
// using exact order statistics on the empirical distribution — the
// average-of-experiments estimator of Figure 4 converges to the same
// quantity.
func WorstOfR(sample []float64, r int) float64 {
	return stats.NewCDF(sample).MeanMinOfR(r)
}

// Varying alternates between two loss processes on a fixed period,
// modelling the time-varying congestion of real paths (it is what makes
// layered receivers oscillate between subscription levels and therefore
// accumulate duplicate packets — the ηd degradation of Figure 8's 4-layer
// runs).
type Varying struct {
	Calm, Congested LossProcess
	Period          int // packets per phase
	n               int
	congested       bool
}

// Lose implements LossProcess.
func (v *Varying) Lose() bool {
	if v.Period > 0 {
		v.n++
		if v.n >= v.Period {
			v.n = 0
			v.congested = !v.congested
		}
	}
	if v.congested {
		return v.Congested.Lose()
	}
	return v.Calm.Lose()
}
