// Package netsim implements the simulation methodology of §6: receivers
// join a packet carousel at random offsets, lose packets according to a
// loss process (independent Bernoulli, bursty Gilbert-Elliott, or replayed
// traces), and stop once their codec's decodability condition holds. The
// measured quantity is the paper's reception efficiency
//
//	η = (# source data packets) / (# packets received prior to reconstruction)
//
// including duplicate receptions caused by carousel wrap-around — exactly
// the inefficiency Figures 4-6 quantify.
package netsim

import (
	"math/rand"

	"repro/internal/code"
	"repro/internal/stats"
)

// LossProcess decides the fate of successive transmissions to one
// receiver. Implementations are stateful and not safe for concurrent use.
type LossProcess interface {
	// Lose reports whether the next packet is lost.
	Lose() bool
}

// Bernoulli loses each packet independently with probability P.
type Bernoulli struct {
	P   float64
	Rng *rand.Rand
}

// Lose implements LossProcess.
func (b *Bernoulli) Lose() bool { return b.Rng.Float64() < b.P }

// GilbertElliott is the classic two-state bursty loss model: in the good
// state packets are lost with probability LossGood, in the bad state with
// LossBad; the chain moves good→bad with PGB and bad→good with PBG per
// packet. Mean loss = (PGB·LossBad + PBG·LossGood)/(PGB+PBG).
type GilbertElliott struct {
	PGB, PBG          float64
	LossGood, LossBad float64
	Rng               *rand.Rand
	bad               bool
}

// Lose implements LossProcess.
func (g *GilbertElliott) Lose() bool {
	if g.bad {
		if g.Rng.Float64() < g.PBG {
			g.bad = false
		}
	} else {
		if g.Rng.Float64() < g.PGB {
			g.bad = true
		}
	}
	p := g.LossGood
	if g.bad {
		p = g.LossBad
	}
	return g.Rng.Float64() < p
}

// MeanLoss returns the stationary loss rate of the model.
func (g *GilbertElliott) MeanLoss() float64 {
	if g.PGB+g.PBG == 0 {
		return g.LossGood
	}
	pBad := g.PGB / (g.PGB + g.PBG)
	return pBad*g.LossBad + (1-pBad)*g.LossGood
}

// Decodability is the stopping condition of a receiver: it observes each
// distinct-first reception and reports when the source is recoverable.
// Implementations are per-receiver state machines.
type Decodability interface {
	// Need returns an upper bound hint (total encoding size n).
	N() int
	// Receive records reception of encoding packet i (first time only —
	// the simulator filters duplicates) and reports whether the receiver
	// can now reconstruct the source.
	Receive(i int) bool
}

// ThresholdDecoder models an ideal (k of n) or overhead-sampled (Tornado)
// code: done when the number of distinct packets reaches Need.
type ThresholdDecoder struct {
	NTotal int
	Need   int
	got    int
}

// N implements Decodability.
func (t *ThresholdDecoder) N() int { return t.NTotal }

// Receive implements Decodability.
func (t *ThresholdDecoder) Receive(int) bool {
	t.got++
	return t.got >= t.Need
}

// BlockDecoder models the interleaved code of §6: block b of B needs
// blockK distinct packets; packet i belongs to block i % B (carousel
// interleaving order).
type BlockDecoder struct {
	NTotal  int
	Blocks  int
	BlockK  int
	fill    []int
	pending int
}

// NewBlockDecoder constructs a BlockDecoder for B blocks of blockK source
// packets each, with total encoding size n.
func NewBlockDecoder(n, blocks, blockK int) *BlockDecoder {
	return &BlockDecoder{NTotal: n, Blocks: blocks, BlockK: blockK, fill: make([]int, blocks), pending: blocks}
}

// N implements Decodability.
func (b *BlockDecoder) N() int { return b.NTotal }

// Receive implements Decodability.
func (b *BlockDecoder) Receive(i int) bool {
	blk := i % b.Blocks
	b.fill[blk]++
	if b.fill[blk] == b.BlockK {
		b.pending--
	}
	return b.pending == 0
}

// Reception is the outcome of one receiver's download.
type Reception struct {
	Received int // total packets received (including duplicates)
	Distinct int // distinct packets received
	Done     bool
}

// Efficiency returns η = k / Received.
func (r Reception) Efficiency(k int) float64 {
	if r.Received == 0 {
		return 0
	}
	return float64(k) / float64(r.Received)
}

// DistinctEfficiency returns ηd = Distinct / Received.
func (r Reception) DistinctEfficiency() float64 {
	if r.Received == 0 {
		return 0
	}
	return float64(r.Distinct) / float64(r.Received)
}

// Carousel simulates one receiver downloading from a cycling carousel of n
// packets: the receiver joins at a random offset, every transmission is
// subjected to the loss process, and reception stops when dec reports
// decodability (or after maxTx transmissions, Done=false).
//
// order may be nil (sequential carousel 0..n-1) or a permutation of [0,n)
// (the randomized carousel of §7.1).
func Carousel(dec Decodability, loss LossProcess, order []int, rng *rand.Rand, maxTx int) Reception {
	n := dec.N()
	if maxTx <= 0 {
		maxTx = 1000 * n
	}
	pos := rng.Intn(n)
	seen := make([]bool, n)
	var r Reception
	for tx := 0; tx < maxTx; tx++ {
		idx := pos
		if order != nil {
			idx = order[pos]
		}
		pos++
		if pos == n {
			pos = 0
		}
		if loss.Lose() {
			continue
		}
		r.Received++
		if !seen[idx] {
			seen[idx] = true
			r.Distinct++
			if dec.Receive(idx) {
				r.Done = true
				return r
			}
		}
	}
	return r
}

// ReceiverRNG returns the deterministic RNG of receiver i in a population
// seeded with seed. Each receiver's randomness — decoder sampling, loss
// process, and carousel join offset — is derived only from (seed, i), so a
// population produces bit-identical results regardless of execution order:
// serial and parallel runs agree, and so do runs with different worker
// counts. The mixer is splitmix64, so neighbouring receiver indices get
// statistically independent streams.
func ReceiverRNG(seed int64, i int) *rand.Rand {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}

// Population simulates `receivers` i.i.d. receivers serially and returns
// their reception efficiencies. mkDec and mkLoss build fresh per-receiver
// state from the receiver's own deterministic RNG (see ReceiverRNG).
func Population(receivers int, k int, mkDec func(rng *rand.Rand) Decodability, mkLoss func(rng *rand.Rand) LossProcess, order []int, seed int64) []float64 {
	out := make([]float64, receivers)
	populationRange(out, 0, receivers, k, mkDec, mkLoss, order, seed)
	return out
}

// PopulationParallel is Population fanned out over the CPU with
// code.ParallelChunks. Because every receiver's randomness is derived
// independently from (seed, i), the result is bit-identical to the serial
// Population for the same arguments — thousands of simulated receivers
// across several sessions run concurrently without losing reproducibility.
// mkDec and mkLoss must be safe for concurrent calls (each invocation gets
// its own rng; they should not share other mutable state).
func PopulationParallel(receivers int, k int, mkDec func(rng *rand.Rand) Decodability, mkLoss func(rng *rand.Rand) LossProcess, order []int, seed int64) []float64 {
	out := make([]float64, receivers)
	code.ParallelChunks(receivers, func(lo, hi int) {
		populationRange(out, lo, hi, k, mkDec, mkLoss, order, seed)
	})
	return out
}

func populationRange(out []float64, lo, hi, k int, mkDec func(rng *rand.Rand) Decodability, mkLoss func(rng *rand.Rand) LossProcess, order []int, seed int64) {
	for i := lo; i < hi; i++ {
		rng := ReceiverRNG(seed, i)
		r := Carousel(mkDec(rng), mkLoss(rng), order, rng, 0)
		out[i] = r.Efficiency(k)
	}
}

// WorstOfR estimates the expected worst-case (minimum) efficiency among R
// simultaneous receivers from a sample of i.i.d. receiver efficiencies,
// using exact order statistics on the empirical distribution — the
// average-of-experiments estimator of Figure 4 converges to the same
// quantity.
func WorstOfR(sample []float64, r int) float64 {
	return stats.NewCDF(sample).MeanMinOfR(r)
}

// Varying alternates between two loss processes on a fixed period,
// modelling the time-varying congestion of real paths (it is what makes
// layered receivers oscillate between subscription levels and therefore
// accumulate duplicate packets — the ηd degradation of Figure 8's 4-layer
// runs).
type Varying struct {
	Calm, Congested LossProcess
	Period          int // packets per phase
	n               int
	congested       bool
}

// Lose implements LossProcess.
func (v *Varying) Lose() bool {
	if v.Period > 0 {
		v.n++
		if v.n >= v.Period {
			v.n = 0
			v.congested = !v.congested
		}
	}
	if v.congested {
		return v.Congested.Lose()
	}
	return v.Calm.Lose()
}
