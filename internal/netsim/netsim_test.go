package netsim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/stats"
)

func TestRNGDeterministicAndSeedSensitive(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 42/43 collide on %d of 1000 draws", same)
	}
	// Float64 must stay in [0,1) and look uniform-ish.
	r := NewRNG(7)
	sum := 0.0
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / 100000; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestReceiverRNGStreamsUncorrelated(t *testing.T) {
	// Adjacent receivers must not be shifted copies of one another: the
	// seed scattering has to break the lockstep that raw splitmix64 states
	// seed + c·i would otherwise have.
	a := ReceiverRNG(1, 10)
	b := ReceiverRNG(1, 11)
	av := make([]uint64, 64)
	for i := range av {
		av[i] = a.Uint64()
	}
	for shift := 0; shift < 32; shift++ {
		bv := ReceiverRNG(1, 11)
		for s := 0; s < shift; s++ {
			bv.Uint64()
		}
		match := 0
		for i := 0; i < 32; i++ {
			if av[i] == bv.Uint64() {
				match++
			}
		}
		if match > 1 {
			t.Fatalf("receiver 11 at shift %d matches receiver 10 on %d of 32 draws", shift, match)
		}
	}
	_ = b
}

func TestBernoulliThresholdMatchesFloatCompare(t *testing.T) {
	// The integer fast path must make exactly the decision Float64() < P
	// would make on the same draw, for awkward P values included.
	for _, p := range []float64{0, 1e-12, 0.1, 0.3, 0.5, 1 / 3.0, 0.999999, 1, 1.5, -0.2} {
		b := &Bernoulli{P: p, Rng: NewRNG(99)}
		ref := NewRNG(99)
		for i := 0; i < 20000; i++ {
			want := ref.Float64() < p
			if got := b.Lose(); got != want {
				t.Fatalf("P=%v draw %d: Lose=%v, Float64 compare=%v", p, i, got, want)
			}
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	b := &Bernoulli{P: 0.3, Rng: NewRNG(1)}
	lost := 0
	for i := 0; i < 100000; i++ {
		if b.Lose() {
			lost++
		}
	}
	if rate := float64(lost) / 100000; math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("loss rate %v, want 0.3", rate)
	}
}

func TestGilbertElliottMeanAndBursts(t *testing.T) {
	g := &GilbertElliott{PGB: 0.01, PBG: 0.1, LossGood: 0.01, LossBad: 0.5, Rng: NewRNG(2)}
	want := g.MeanLoss()
	lost := 0
	runs := 0
	prevLost := false
	burstLens := 0
	n := 300000
	for i := 0; i < n; i++ {
		l := g.Lose()
		if l {
			lost++
			if !prevLost {
				runs++
			}
			burstLens++
		}
		prevLost = l
	}
	rate := float64(lost) / float64(n)
	if math.Abs(rate-want) > 0.01 {
		t.Fatalf("mean loss %v, want %v", rate, want)
	}
	// Bursty: average run length must exceed the Bernoulli expectation
	// 1/(1-p) for the same rate.
	avgRun := float64(burstLens) / float64(runs)
	bern := 1 / (1 - rate)
	if avgRun < bern*1.2 {
		t.Fatalf("avg burst %v not bursty vs bernoulli %v", avgRun, bern)
	}
}

func TestThresholdDecoder(t *testing.T) {
	d := &ThresholdDecoder{NTotal: 10, Need: 3}
	if d.N() != 10 {
		t.Fatal("N wrong")
	}
	if d.Receive(0) || d.Receive(5) {
		t.Fatal("done too early")
	}
	if !d.Receive(9) {
		t.Fatal("not done at threshold")
	}
}

func TestBlockDecoder(t *testing.T) {
	// 2 blocks of k=2, n=8. Packets i%2 = block.
	d := NewBlockDecoder(8, 2, 2)
	if d.Receive(0) {
		t.Fatal("early")
	}
	if d.Receive(2) {
		t.Fatal("block 0 full but block 1 empty")
	}
	d.Receive(1)
	if !d.Receive(3) {
		t.Fatal("both blocks full, not done")
	}
}

func TestCarouselLosslessExactlyK(t *testing.T) {
	// With no loss, an ideal k-of-n receiver needs exactly k receptions.
	rng := NewRNG(3)
	for trial := 0; trial < 20; trial++ {
		dec := &ThresholdDecoder{NTotal: 100, Need: 50}
		r := Carousel(dec, &Bernoulli{P: 0, Rng: rng}, nil, rng, 0)
		if !r.Done || r.Received != 50 || r.Distinct != 50 {
			t.Fatalf("lossless reception: %+v", r)
		}
	}
}

func TestCarouselHighLossWrapsAndDuplicates(t *testing.T) {
	// At 50% loss with threshold k = n/2, the receiver must wrap and see
	// duplicates, so distinct efficiency < 1.
	rng := NewRNG(4)
	dups := 0
	for trial := 0; trial < 50; trial++ {
		dec := &ThresholdDecoder{NTotal: 200, Need: 100}
		r := Carousel(dec, &Bernoulli{P: 0.5, Rng: rng}, nil, rng, 0)
		if !r.Done {
			t.Fatalf("not done: %+v", r)
		}
		if r.Distinct != 100 {
			t.Fatalf("distinct = %d, want 100", r.Distinct)
		}
		if r.Received > r.Distinct {
			dups++
		}
	}
	if dups == 0 {
		t.Fatal("no run saw duplicates at 50% loss")
	}
}

func TestCarouselRandomOrderCoversAll(t *testing.T) {
	order := rand.New(rand.NewSource(5)).Perm(64)
	rng := NewRNG(5)
	dec := &ThresholdDecoder{NTotal: 64, Need: 64}
	r := Carousel(dec, &Bernoulli{P: 0, Rng: rng}, order, rng, 0)
	if !r.Done || r.Distinct != 64 || r.Received != 64 {
		t.Fatalf("randomized carousel: %+v", r)
	}
}

func TestCarouselMaxTx(t *testing.T) {
	rng := NewRNG(6)
	dec := &ThresholdDecoder{NTotal: 10, Need: 10}
	r := Carousel(dec, &Bernoulli{P: 1.0, Rng: rng}, nil, rng, 100)
	if r.Done || r.Received != 0 {
		t.Fatalf("full loss must never finish: %+v", r)
	}
}

// opaqueLoss hides a LossProcess's concrete type from the carousel's
// devirtualized fast path, forcing the generic loop.
type opaqueLoss struct{ p LossProcess }

func (o opaqueLoss) Lose() bool { return o.p.Lose() }

// TestCarouselFastPathBitIdentical: the Bernoulli/ThresholdDecoder fast
// loops must reproduce the generic loop's results exactly — same draws,
// same decisions — so devirtualization is unobservable.
func TestCarouselFastPathBitIdentical(t *testing.T) {
	order := rand.New(rand.NewSource(11)).Perm(300)
	for _, p := range []float64{0.1, 0.5, 1 / 3.0} {
		for _, ord := range [][]int{nil, order} {
			for trial := 0; trial < 10; trial++ {
				seed := uint64(trial)*1000 + uint64(p*100)
				mk := func() (*RNG, Decodability, Decodability) {
					rng := NewRNG(seed)
					return rng, &ThresholdDecoder{NTotal: 300, Need: 150}, NewBlockDecoder(300, 10, 15)
				}
				rngA, tdA, _ := mk()
				fast := Carousel(tdA, &Bernoulli{P: p, Rng: rngA}, ord, rngA, 0)
				rngB, tdB, _ := mk()
				slow := Carousel(tdB, opaqueLoss{&Bernoulli{P: p, Rng: rngB}}, ord, rngB, 0)
				if fast != slow {
					t.Fatalf("p=%v trial %d: fast %+v != generic %+v", p, trial, fast, slow)
				}
				rngC, _, bdC := mk()
				fastBD := Carousel(bdC, &Bernoulli{P: p, Rng: rngC}, ord, rngC, 0)
				rngD, _, bdD := mk()
				slowBD := Carousel(bdD, opaqueLoss{&Bernoulli{P: p, Rng: rngD}}, ord, rngD, 0)
				if fastBD != slowBD {
					t.Fatalf("p=%v trial %d block: fast %+v != generic %+v", p, trial, fastBD, slowBD)
				}
			}
		}
	}
}

func TestInterleavedWorseThanIdealAtHighLoss(t *testing.T) {
	// The coupon-collector effect: at p=0.5, interleaved k=20 over a 1MB
	// file must have noticeably lower efficiency than an ideal code.
	k := 1024
	n := 2 * k
	blocks := k / 20
	ideal := Population(200, k, func(*RNG) Decodability {
		return &ThresholdDecoder{NTotal: n, Need: k}
	}, func(rng *RNG) LossProcess {
		return &Bernoulli{P: 0.5, Rng: rng}
	}, nil, 7)
	inter := Population(200, k, func(*RNG) Decodability {
		return NewBlockDecoder(n, blocks, 20)
	}, func(rng *RNG) LossProcess {
		return &Bernoulli{P: 0.5, Rng: rng}
	}, nil, 7)
	si, sn := stats.Summarize(ideal), stats.Summarize(inter)
	if sn.Mean >= si.Mean-0.1 {
		t.Fatalf("interleaved %v not clearly worse than ideal %v", sn.Mean, si.Mean)
	}
	if si.Mean < 0.85 {
		t.Fatalf("ideal efficiency %v unexpectedly low", si.Mean)
	}
}

func TestWorstOfRDecreases(t *testing.T) {
	rng := NewRNG(8)
	sample := make([]float64, 2000)
	for i := range sample {
		sample[i] = 0.8 + 0.2*rng.Float64()
	}
	prev := math.Inf(1)
	for _, r := range []int{1, 10, 100, 1000} {
		w := WorstOfR(sample, r)
		if w > prev+1e-9 {
			t.Fatalf("worst-of-%d = %v not decreasing (prev %v)", r, w, prev)
		}
		prev = w
	}
	if WorstOfR(sample, 1000) < 0.8-1e-9 {
		t.Fatal("worst below support")
	}
}

func TestVaryingAlternates(t *testing.T) {
	rng := NewRNG(9)
	v := &Varying{
		Calm:      &Bernoulli{P: 0, Rng: rng},
		Congested: &Bernoulli{P: 1, Rng: rng},
		Period:    10,
	}
	lost := 0
	for i := 0; i < 1000; i++ {
		if v.Lose() {
			lost++
		}
	}
	if lost < 400 || lost > 600 {
		t.Fatalf("varying loss = %d/1000, want ~500", lost)
	}
	// First phase must be calm.
	v2 := &Varying{Calm: &Bernoulli{P: 0, Rng: rng}, Congested: &Bernoulli{P: 1, Rng: rng}, Period: 5}
	for i := 0; i < 4; i++ {
		if v2.Lose() {
			t.Fatal("lost during initial calm phase")
		}
	}
}

// TestPopulationParallelBitIdentical: the parallel population must produce
// exactly the serial population's efficiencies — per-receiver RNG makes the
// result independent of execution order and worker count.
func TestPopulationParallelBitIdentical(t *testing.T) {
	k := 512
	n := 2 * k
	mkDec := func(rng *RNG) Decodability {
		// Consume receiver randomness in the factory too, so the test
		// catches any RNG sharing between construction and simulation.
		need := k + rng.Intn(k/10)
		return &ThresholdDecoder{NTotal: n, Need: need}
	}
	mkLoss := func(rng *RNG) LossProcess {
		return &GilbertElliott{PGB: 0.02, PBG: 0.1, LossGood: 0.02, LossBad: 0.6, Rng: rng}
	}
	for _, seed := range []int64{1, 7, 1998} {
		serial := Population(500, k, mkDec, mkLoss, nil, seed)
		parallel := PopulationParallel(500, k, mkDec, mkLoss, nil, seed)
		for i := range serial {
			if serial[i] != parallel[i] {
				t.Fatalf("seed %d receiver %d: serial %v != parallel %v", seed, i, serial[i], parallel[i])
			}
		}
	}
	// Populations spanning several shards must still agree (the shard size
	// is popShard; 3·popShard+17 exercises uneven tails).
	mkB := func(rng *RNG) LossProcess { return &Bernoulli{P: 0.2, Rng: rng} }
	nBig := 3*popShard + 17
	serial := Population(nBig, k, mkDec, mkB, nil, 5)
	parallel := PopulationParallel(nBig, k, mkDec, mkB, nil, 5)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("sharded receiver %d: serial %v != parallel %v", i, serial[i], parallel[i])
		}
	}
	// And different seeds must actually differ.
	a := Population(50, k, mkDec, mkLoss, nil, 1)
	b := Population(50, k, mkDec, mkLoss, nil, 2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("populations identical across different seeds")
	}
}
