package metrics

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestCounterGaugeBasics: atomic arithmetic, zero values ready.
func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-10)
	if got := g.Load(); got != -3 {
		t.Fatalf("gauge = %d, want -3", got)
	}
}

// TestHistogramBuckets: observations land in the first bucket whose bound
// holds them, cumulative exposition matches, sum counts non-negatives.
func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 8, 32)
	for _, v := range []int64{0, 1, 2, 8, 9, 32, 33, 1000} {
		h.Observe(v)
	}
	if got := h.Count(); got != 8 {
		t.Fatalf("count = %d, want 8", got)
	}
	if got := h.Sum(); got != 1085 {
		t.Fatalf("sum = %d, want 1085", got)
	}
	want := []uint64{2, 2, 2, 2} // (<=1)=0,1; (<=8)=2,8; (<=32)=9,32; +Inf=33,1000
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

// TestWriteToFormat: the exposition must group HELP/TYPE per base name,
// keep label suffixes verbatim, and expand histograms to cumulative
// buckets.
func TestWriteToFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_packets_total", "packets")
	c.Add(5)
	r.Counter(`test_backlog{shard="1"}`, "per-shard backlog").Add(2)
	r.Counter(`test_backlog{shard="0"}`, "").Add(3)
	r.GaugeFunc("test_sessions", "sessions", func() float64 { return 4 })
	h := r.Histogram("test_batch_size", "batch sizes", 1, 8)
	h.Observe(1)
	h.Observe(5)
	h.Observe(99)

	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE test_packets_total counter\n",
		"test_packets_total 5\n",
		`test_backlog{shard="1"} 2` + "\n",
		`test_backlog{shard="0"} 3` + "\n",
		"# TYPE test_sessions gauge\n",
		"test_sessions 4\n",
		"# TYPE test_batch_size histogram\n",
		`test_batch_size_bucket{le="1"} 1` + "\n",
		`test_batch_size_bucket{le="8"} 2` + "\n",
		`test_batch_size_bucket{le="+Inf"} 3` + "\n",
		"test_batch_size_sum 105\n",
		"test_batch_size_count 3\n",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	// One TYPE header per base name, even with two labeled series.
	if got := strings.Count(text, "# TYPE test_backlog "); got != 1 {
		t.Fatalf("test_backlog TYPE headers = %d, want 1:\n%s", got, text)
	}
	// Every non-comment line must parse as "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Fatalf("unparseable exposition line %q", line)
		}
	}
}

// TestHistogramNegativeClamp: negative observations must be clamped to
// zero — counted in the first bucket, contributing nothing to the sum — so
// a single bad measurement (e.g. clock skew producing a negative latency)
// cannot wrap the unsigned sum and poison the _sum series forever.
func TestHistogramNegativeClamp(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("neg_test", "latencies", 10, 100)
	h.Observe(-5)
	h.Observe(-1 << 40)
	h.Observe(7)
	if got := h.Count(); got != 3 {
		t.Fatalf("count = %d, want 3", got)
	}
	if got := h.Sum(); got != 7 {
		t.Fatalf("sum = %d, want 7 (negative observations leaked in)", got)
	}
	// Regression on the exposition itself: without the clamp the _sum line
	// rendered as an astronomically large wrapped uint64.
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`neg_test_bucket{le="10"} 3` + "\n", // both negatives clamp into the first bucket
		`neg_test_bucket{le="100"} 3` + "\n",
		`neg_test_bucket{le="+Inf"} 3` + "\n",
		"neg_test_sum 7\n",
		"neg_test_count 3\n",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestHelpEscaping: HELP text containing backslashes or newlines must be
// escaped per the text format — an unescaped newline would split the
// comment into a garbage line no scraper can parse.
func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "path C:\\tmp\nsecond line").Add(1)
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	want := `# HELP esc_total path C:\\tmp\nsecond line` + "\n"
	if !strings.Contains(text, want) {
		t.Fatalf("exposition missing %q:\n%s", want, text)
	}
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if !strings.HasPrefix(line, "#") && len(strings.Fields(line)) != 2 {
			t.Fatalf("help newline broke the exposition: %q", line)
		}
	}
	// The common case — plain help — must not pay an allocation for escaping.
	if s := escapeHelp("plain help text"); s != "plain help text" {
		t.Fatalf("escapeHelp mangled plain text: %q", s)
	}
}

// TestLabelEscaping: Label must escape backslash, quote, and newline in the
// value so hostile or merely unlucky label values (file paths, addresses)
// stay inside the quotes.
func TestLabelEscaping(t *testing.T) {
	got := Label("files_total", "path", "C:\\data\n\"x\"")
	want := `files_total{path="C:\\data\n\"x\""}`
	if got != want {
		t.Fatalf("Label = %q, want %q", got, want)
	}
	if got := Label("a", "k", "v"); got != `a{k="v"}` {
		t.Fatalf("Label = %q", got)
	}
	// End to end: the escaped series must register and expose as one
	// parseable line with the suffix verbatim.
	r := NewRegistry()
	r.Counter(Label("files_total", "path", `a"b`), "").Add(4)
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `files_total{path="a\"b"} 4`+"\n") {
		t.Fatalf("escaped label series missing:\n%s", sb.String())
	}
}

// TestWriteToConcurrentConsistency: every single exposition rendered while
// observations race must be internally consistent — buckets cumulative and
// monotone within the scrape, the +Inf bucket equal to _count, and _count
// never regressing across scrapes.
func TestWriteToConcurrentConsistency(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ht", "", 2, 16)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			h.Observe(i % 32)
		}
	}()
	var lastCount uint64
	for i := 0; i < 300; i++ {
		var sb strings.Builder
		if _, err := r.WriteTo(&sb); err != nil {
			t.Fatal(err)
		}
		var cum []uint64
		var count uint64
		for _, line := range strings.Split(sb.String(), "\n") {
			switch {
			case strings.HasPrefix(line, "ht_bucket"):
				var v uint64
				if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &v); err != nil {
					t.Fatalf("bad bucket line %q: %v", line, err)
				}
				cum = append(cum, v)
			case strings.HasPrefix(line, "ht_count"):
				if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &count); err != nil {
					t.Fatalf("bad count line %q: %v", line, err)
				}
			}
		}
		if len(cum) != 3 {
			t.Fatalf("scrape %d: %d bucket lines, want 3", i, len(cum))
		}
		for j := 1; j < len(cum); j++ {
			if cum[j] < cum[j-1] {
				t.Fatalf("scrape %d: buckets not cumulative: %v", i, cum)
			}
		}
		if cum[len(cum)-1] != count {
			t.Fatalf("scrape %d: +Inf bucket %d != _count %d", i, cum[len(cum)-1], count)
		}
		if count < lastCount {
			t.Fatalf("scrape %d: _count regressed %d -> %d", i, lastCount, count)
		}
		lastCount = count
	}
	close(stop)
	wg.Wait()
}

// TestSnapshot: every series appears, sorted, histograms as _count/_sum.
func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "").Add(2)
	r.Counter("a_total", "").Add(1)
	h := r.Histogram("h", "", 4)
	h.Observe(3)
	got := r.Snapshot()
	want := []Sample{{"a_total", 1}, {"b_total", 2}, {"h_count", 1}, {"h_sum", 3}}
	if len(got) != len(want) {
		t.Fatalf("snapshot = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("snapshot[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestDuplicateRegistrationPanics: series names are unique per registry.
func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("x_total", "")
}

// TestConcurrentScrapeAndUpdate: scraping while updating must be race-free
// (run under -race) and counters must read monotonically.
func TestConcurrentScrapeAndUpdate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mono_total", "")
	h := r.Histogram("hist", "", 2, 16)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.Inc()
			h.Observe(i % 32)
		}
	}()
	var last uint64
	for i := 0; i < 200; i++ {
		var sb strings.Builder
		r.WriteTo(&sb)
		for _, s := range r.Snapshot() {
			if s.Name == "mono_total" {
				if v := uint64(s.Value); v < last {
					t.Errorf("counter regressed: %d -> %d", last, v)
				} else {
					last = v
				}
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestUpdateZeroAlloc: the hot-path update ops must not allocate.
func TestUpdateZeroAlloc(t *testing.T) {
	var c Counter
	var g Gauge
	h := NewHistogram(1, 8, 64)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(5)
		g.Add(-1)
		h.Observe(7)
	}); n != 0 {
		t.Fatalf("update path allocates %.2f allocs/op, want 0", n)
	}
}
