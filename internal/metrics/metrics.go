// Package metrics is the observability substrate of the fountain stack: a
// small registry of atomically updated counters, gauges, and fixed-bucket
// histograms with a Prometheus text exposition writer.
//
// The design constraint is the send and intake hot paths: a paced server
// emits hundreds of thousands of packets per second through code that is
// proven allocation-free by hard bench gates, and instrumentation must not
// bend that. So every series name is interned at registration time, every
// update is plain sync/atomic arithmetic on pre-existing memory (one
// atomic add for a counter or gauge, two for a histogram observation), and
// nothing on the update path takes a lock, formats a string, or allocates.
// All rendering cost — sorting, formatting, bucket accumulation — is paid
// by the scraper, not the hot path.
//
// Components either own their counters directly (metrics.Counter embeds as
// a plain struct field) or keep the raw atomics / mutex-guarded fields they
// already had and expose them through func-backed series (CounterFunc,
// GaugeFunc), which the registry samples at scrape time. Both shapes render
// identically.
package metrics

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The zero value is ready to
// use; embed it by value. Inc/Add are safe for concurrent use and never
// allocate.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (callers must keep counters monotone: n is unsigned).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous int64 value. The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram counts integer observations into fixed buckets chosen at
// construction. Observe costs two atomic adds (bucket + sum) and a linear
// scan over the bounds — bound lists on the hot paths are short (batch
// sizes), so the scan stays in one cache line. Bucket counts are stored
// per-bucket (not cumulative); the exposition writer accumulates.
type Histogram struct {
	bounds []int64 // upper bounds, ascending; +Inf bucket is implicit
	counts []atomic.Uint64
	sum    atomic.Uint64
}

// NewHistogram builds a histogram with the given ascending upper bounds
// (an observation v lands in the first bucket with v <= bound, else the
// implicit +Inf bucket).
func NewHistogram(bounds ...int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not ascending: %v", bounds))
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one observation. Negative observations are clamped to
// zero: they count in the first bucket and contribute nothing to the sum.
// The sum is an unsigned atomic (one add, no CAS loop, on the hot path),
// so a negative value added verbatim would wrap it by ~2^64 and corrupt
// every subsequent scrape of the _sum series; clamping keeps the count
// honest while bounding the damage of a caller's bad clock math to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	if v > 0 {
		h.sum.Add(uint64(v))
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all non-negative observations.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// kind discriminates the exposition TYPE of a registered series.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

// series is one registered time series: an interned name (optionally
// carrying a {label="..."} suffix) and a way to read its current value.
type series struct {
	name string // full series name, label suffix included
	base string // name with the label suffix stripped (HELP/TYPE grouping)
	kind kind
	help string
	c    *Counter
	g    *Gauge
	h    *Histogram
	cf   func() uint64
	gf   func() float64
}

// Registry holds registered series. Registration (which interns names and
// may allocate) happens at wiring time; scraping walks the series and reads
// each one atomically. A Registry is safe for concurrent registration and
// scraping, and the same Counter/Gauge/Histogram may be registered in any
// number of registries.
type Registry struct {
	mu     sync.Mutex
	series []*series
	byName map[string]struct{}
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]struct{})}
}

// Label builds a series name carrying one label: base{key="value"}, with
// the value escaped per the Prometheus text format (backslash, double
// quote, and newline become \\, \", and \n). Use it wherever a label value
// is not a literal under the caller's control — a file name, an address, an
// operator-supplied tag — so a stray quote cannot break the exposition into
// unparseable lines.
func Label(base, key, value string) string {
	var b strings.Builder
	b.Grow(len(base) + len(key) + len(value) + 5)
	b.WriteString(base)
	b.WriteByte('{')
	b.WriteString(key)
	b.WriteString(`="`)
	for i := 0; i < len(value); i++ {
		switch c := value[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteString(`"}`)
	return b.String()
}

// escapeHelp escapes a HELP string per the text format: backslash and
// newline only (quotes are legal in help text). Returns s unchanged — no
// allocation — when nothing needs escaping.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 4)
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// baseName strips a {label="..."} suffix off a series name.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

func (r *Registry) register(s *series) {
	if s.name == "" || baseName(s.name) == "" {
		panic("metrics: empty series name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[s.name]; dup {
		panic(fmt.Sprintf("metrics: duplicate series %q", s.name))
	}
	r.byName[s.name] = struct{}{}
	s.base = baseName(s.name)
	r.series = append(r.series, s)
}

// Counter registers and returns a new counter. The name may carry a
// Prometheus label suffix (`foo_total{shard="3"}`); the suffix is kept
// verbatim in the exposition and stripped for HELP/TYPE grouping.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.AddCounter(name, help, c)
	return c
}

// AddCounter registers an existing counter under name.
func (r *Registry) AddCounter(name, help string, c *Counter) {
	r.register(&series{name: name, kind: kindCounter, help: help, c: c})
}

// CounterFunc registers a counter series whose value is sampled from fn at
// scrape time — the bridge for components that already keep their own
// atomic or lock-guarded monotone counters. fn must be safe for concurrent
// use and must never regress.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.register(&series{name: name, kind: kindCounter, help: help, cf: fn})
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.AddGauge(name, help, g)
	return g
}

// AddGauge registers an existing gauge under name.
func (r *Registry) AddGauge(name, help string, g *Gauge) {
	r.register(&series{name: name, kind: kindGauge, help: help, g: g})
}

// GaugeFunc registers a gauge series sampled from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&series{name: name, kind: kindGauge, help: help, gf: fn})
}

// Histogram registers and returns a new histogram with the given bucket
// upper bounds.
func (r *Registry) Histogram(name, help string, bounds ...int64) *Histogram {
	h := NewHistogram(bounds...)
	r.AddHistogram(name, help, h)
	return h
}

// AddHistogram registers an existing histogram under name. Histogram names
// cannot carry a label suffix (the bucket lines own the le label).
func (r *Registry) AddHistogram(name, help string, h *Histogram) {
	if strings.IndexByte(name, '{') >= 0 {
		panic(fmt.Sprintf("metrics: histogram %q cannot carry labels", name))
	}
	r.register(&series{name: name, kind: kindHistogram, help: help, h: h})
}

// Sample is one scraped value of Snapshot (histograms contribute their
// _count and _sum under suffixed names).
type Sample struct {
	Name  string
	Value float64
}

// Snapshot reads every registered series once, in name order. It is the
// programmatic twin of WriteTo for tests and control-plane consumers.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	ss := append([]*series(nil), r.series...)
	r.mu.Unlock()
	out := make([]Sample, 0, len(ss))
	for _, s := range ss {
		switch s.kind {
		case kindCounter:
			out = append(out, Sample{s.name, float64(s.counterValue())})
		case kindGauge:
			out = append(out, Sample{s.name, s.gaugeValue()})
		case kindHistogram:
			out = append(out, Sample{s.name + "_count", float64(s.h.Count())})
			out = append(out, Sample{s.name + "_sum", float64(s.h.Sum())})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (s *series) counterValue() uint64 {
	if s.cf != nil {
		return s.cf()
	}
	return s.c.Load()
}

func (s *series) gaugeValue() float64 {
	if s.gf != nil {
		return s.gf()
	}
	return float64(s.g.Load())
}

// WriteTo renders the registry in the Prometheus text exposition format
// (version 0.0.4): series grouped by base name with one HELP/TYPE header
// each, histograms expanded to cumulative _bucket/_sum/_count lines. Groups
// appear in base-name order; series within a group keep registration order
// (so labeled shard series stay in shard order).
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	ss := append([]*series(nil), r.series...)
	r.mu.Unlock()

	// Group by base name, groups sorted, registration order kept within.
	sort.SliceStable(ss, func(i, j int) bool { return ss[i].base < ss[j].base })

	var b strings.Builder
	lastBase := ""
	for _, s := range ss {
		if s.base != lastBase {
			lastBase = s.base
			if s.help != "" {
				b.WriteString("# HELP ")
				b.WriteString(s.base)
				b.WriteByte(' ')
				b.WriteString(escapeHelp(s.help))
				b.WriteByte('\n')
			}
			b.WriteString("# TYPE ")
			b.WriteString(s.base)
			b.WriteByte(' ')
			switch s.kind {
			case kindCounter:
				b.WriteString("counter")
			case kindGauge:
				b.WriteString("gauge")
			case kindHistogram:
				b.WriteString("histogram")
			}
			b.WriteByte('\n')
		}
		switch s.kind {
		case kindCounter:
			b.WriteString(s.name)
			b.WriteByte(' ')
			b.WriteString(strconv.FormatUint(s.counterValue(), 10))
			b.WriteByte('\n')
		case kindGauge:
			b.WriteString(s.name)
			b.WriteByte(' ')
			b.WriteString(strconv.FormatFloat(s.gaugeValue(), 'g', -1, 64))
			b.WriteByte('\n')
		case kindHistogram:
			writeHistogram(&b, s)
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// writeHistogram renders one histogram's cumulative bucket lines. The
// per-bucket counts are read once each; the cumulative sums are computed
// here, so a torn read across concurrent observations can only distribute
// an observation between adjacent scrapes, never lose it.
func writeHistogram(b *strings.Builder, s *series) {
	var cum uint64
	for i := range s.h.counts {
		cum += s.h.counts[i].Load()
		le := "+Inf"
		if i < len(s.h.bounds) {
			le = strconv.FormatInt(s.h.bounds[i], 10)
		}
		b.WriteString(s.base)
		b.WriteString(`_bucket{le="`)
		b.WriteString(le)
		b.WriteString(`"} `)
		b.WriteString(strconv.FormatUint(cum, 10))
		b.WriteByte('\n')
	}
	b.WriteString(s.base)
	b.WriteString("_sum ")
	b.WriteString(strconv.FormatUint(s.h.Sum(), 10))
	b.WriteByte('\n')
	b.WriteString(s.base)
	b.WriteString("_count ")
	b.WriteString(strconv.FormatUint(cum, 10))
	b.WriteByte('\n')
}

// Handler returns an http.Handler serving the registry in the Prometheus
// text format — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteTo(w)
	})
}
