// Package server drives a digital-fountain session onto a transport: it
// walks the carousel schedule round by round, stamps headers (serials per
// layer, SP and burst flags) and hands packets to the substrate. The engine
// is clock-agnostic: Step sends one round synchronously (used by the
// virtual-time experiments), Run paces rounds in real time (used by the
// UDP prototype binary).
package server

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/proto"
)

// Sender is the transmit side of a transport (transport.Bus and
// transport.UDPServer both satisfy it).
type Sender interface {
	Send(layer int, pkt []byte) error
}

// Engine transmits one session.
type Engine struct {
	sess    *core.Session
	tx      Sender
	serials []uint32
	round   int
	sent    int
}

// New constructs an engine for the session over the given sender.
func New(sess *core.Session, tx Sender) *Engine {
	return &Engine{sess: sess, tx: tx, serials: make([]uint32, sess.Config().Layers)}
}

// Round returns the next round number to be sent.
func (e *Engine) Round() int { return e.round }

// Sent returns the total number of packets handed to the transport.
func (e *Engine) Sent() int { return e.sent }

// Step transmits one full round across all layers and advances the round
// counter. The first packet of an SP round carries the SP flag; packets of
// a burst round carry the burst flag (the doubled instantaneous rate of
// §7.1.1 is applied by Run's pacing, not by duplicating content).
func (e *Engine) Step() error {
	round := e.round
	e.round++
	layers := e.sess.Config().Layers
	for layer := 0; layer < layers; layer++ {
		idxs := e.sess.CarouselIndices(layer, round)
		var flags uint8
		if e.sess.IsSP(layer, round) {
			flags |= proto.FlagSP
		}
		if e.sess.BurstRound(layer, round) {
			flags |= proto.FlagBurst
		}
		for pi, idx := range idxs {
			f := flags
			if pi > 0 {
				f &^= proto.FlagSP // SP marks only the round's first packet
			}
			e.serials[layer]++
			pkt := e.sess.Packet(idx, uint8(layer), e.serials[layer], f)
			if err := e.tx.Send(layer, pkt); err != nil {
				return err
			}
			e.sent++
		}
	}
	return nil
}

// Run paces Step in real time so that the base layer emits approximately
// baseRate packets per second, until the context is cancelled. Burst
// rounds are sent back-to-back with their predecessor (double instantaneous
// rate).
func (e *Engine) Run(ctx context.Context, baseRate int) error {
	if baseRate <= 0 {
		baseRate = 512
	}
	n := e.sess.Codec().N()
	g := e.sess.Config().Layers
	blockSize := 1 << uint(g-1)
	blocks := (n + blockSize - 1) / blockSize
	perRound := blocks // layer 0 sends one slot per block per round
	interval := time.Second * time.Duration(perRound) / time.Duration(baseRate)
	if interval <= 0 {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
			if err := e.Step(); err != nil {
				return err
			}
			// Double rate during bursts: immediately send the next round.
			if e.sess.BurstRound(0, e.round) {
				if err := e.Step(); err != nil {
					return err
				}
			}
		}
	}
}
