// Package server drives a digital-fountain session onto a transport. The
// carousel iteration itself — rounds, serials, SP/burst header stamping —
// lives in core.Carousel; the engine adds transport binding and pacing. It
// is clock-agnostic: Step sends one round synchronously (used by the
// virtual-time experiments), Run paces rounds in real time (used by the
// UDP prototype binary). Multi-session pacing with lifecycle management is
// internal/service, which drives one core.Carousel per registered session.
package server

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/transport"
)

// Sender is the minimal transmit side of a transport — one packet per
// call. It is an alias of transport.PacketSender, the narrow end of the
// unified transport.Sender interface; transport.AsSender upgrades any
// Sender with a batch fallback, so batch-first senders (the service's
// pacing scheduler) and this engine drive the same transports.
type Sender = transport.PacketSender

// Engine transmits one session.
type Engine struct {
	car *core.Carousel
	tx  Sender
}

// New constructs an engine for the session over the given sender.
func New(sess *core.Session, tx Sender) *Engine {
	return NewAt(sess, tx, 0)
}

// NewAt constructs an engine whose carousel starts at the given round
// phase — the §8 mirrored-server configuration, where each mirror of a
// shared encoding transmits from a staggered position.
func NewAt(sess *core.Session, tx Sender, phase int) *Engine {
	return &Engine{car: core.NewCarouselAt(sess, phase), tx: tx}
}

// Round returns the next round number to be sent.
func (e *Engine) Round() int { return e.car.Round() }

// Sent returns the total number of packets handed to the transport.
func (e *Engine) Sent() int { return e.car.Sent() }

// Step transmits one full round across all layers and advances the round
// counter.
func (e *Engine) Step() error {
	return e.car.NextRound(e.tx.Send)
}

// Run paces Step in real time so that the base layer emits approximately
// baseRate packets per second, until the context is cancelled. Burst
// rounds are sent back-to-back with their predecessor (double instantaneous
// rate).
func (e *Engine) Run(ctx context.Context, baseRate int) error {
	ticker := time.NewTicker(PaceInterval(e.car.Session(), baseRate))
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
			if err := e.Step(); err != nil {
				return err
			}
			// Double rate during bursts: immediately send the next round.
			if e.car.BurstNext() {
				if err := e.Step(); err != nil {
					return err
				}
			}
		}
	}
}

// PaceInterval returns the inter-round interval that makes the session's
// base layer emit approximately baseRate packets per second. In layered
// mode layer 0 sends one slot per reverse-binary block per round; the
// single-layer carousel sends exactly one packet per round, as does the
// base layer of a rateless session (whose unbounded "encoding" has no
// blocks to multiply by). baseRate <= 0 defaults to 512.
func PaceInterval(sess *core.Session, baseRate int) time.Duration {
	interval, _ := Pace(sess, baseRate)
	return interval
}

// Pace is PaceInterval returning also the effective base-layer rate the
// interval actually achieves, in packets per second. Rounding the interval
// to whole nanoseconds makes the effective rate differ slightly from the
// requested one; rates beyond one round per nanosecond are clamped to the
// 1ns floor. Callers that advertise or log a rate should use the effective
// one — it is the truth the wire will show.
func Pace(sess *core.Session, baseRate int) (time.Duration, float64) {
	perRound := 1 // single-layer randomized carousel: one packet per round
	if g := sess.Config().Layers; g > 1 && !sess.Rateless() {
		n := sess.Codec().N()
		blockSize := 1 << uint(g-1)
		perRound = (n + blockSize - 1) / blockSize // one slot per block per round
	}
	interval := paceInterval(perRound, baseRate)
	return interval, float64(perRound) * float64(time.Second) / float64(interval)
}

// paceInterval computes the per-round interval in nanoseconds with
// rounding. The old form — time.Second * perRound / baseRate in Duration
// arithmetic — truncated toward zero, skewing every non-divisor rate high
// (a requested 7000 pps with perRound=1 ran at 7000.05 pps; coarser
// perRound/baseRate ratios skewed further), and its interval<=0 guard
// clamped very high rates to 1ms, silently capping them at 1000 rounds/s.
// Rounding to the nearest nanosecond bounds the skew at half a nanosecond
// per round, and the floor is the honest 1ns minimum.
func paceInterval(perRound, baseRate int) time.Duration {
	if baseRate <= 0 {
		baseRate = 512
	}
	ns := (int64(perRound)*int64(time.Second) + int64(baseRate)/2) / int64(baseRate)
	if ns < 1 {
		ns = 1
	}
	return time.Duration(ns)
}
