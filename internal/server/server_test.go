package server

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/transport"
)

func newSession(t *testing.T, layers int) *core.Session {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 40_000)
	rng.Read(data)
	cfg := core.DefaultConfig()
	cfg.Layers = layers
	cfg.SPInterval = 4
	s, err := core.NewSession(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStepSendsEveryLayerWithSerials(t *testing.T) {
	sess := newSession(t, 4)
	bus := transport.NewBus(4)
	type rec struct {
		layer int
		hdr   proto.Header
	}
	var got []rec
	bus.NewClient(3, nil, func(layer int, pkt []byte) {
		h, _, err := proto.ParseHeader(pkt)
		if err != nil {
			t.Errorf("bad header: %v", err)
			return
		}
		got = append(got, rec{layer, h})
	})
	e := New(sess, bus)
	for r := 0; r < 8; r++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if e.Round() != 8 || e.Sent() != len(got) {
		t.Fatalf("round=%d sent=%d delivered=%d", e.Round(), e.Sent(), len(got))
	}
	// Serials must be dense per layer (no loss on the bus).
	next := map[int]uint32{}
	for _, r := range got {
		if int(r.hdr.Group) != r.layer {
			t.Fatalf("header group %d delivered on layer %d", r.hdr.Group, r.layer)
		}
		next[r.layer]++
		if r.hdr.Serial != next[r.layer] {
			t.Fatalf("layer %d serial %d, want %d", r.layer, r.hdr.Serial, next[r.layer])
		}
	}
	for l := 0; l < 4; l++ {
		if next[l] == 0 {
			t.Fatalf("layer %d never transmitted", l)
		}
	}
}

func TestSPOnlyOnFirstPacketOfRound(t *testing.T) {
	sess := newSession(t, 4)
	bus := transport.NewBus(4)
	spCount := map[int]int{}
	perRound := map[int]int{}
	round := 0
	bus.NewClient(3, nil, func(layer int, pkt []byte) {
		h, _, _ := proto.ParseHeader(pkt)
		if h.Flags&proto.FlagSP != 0 {
			spCount[layer]++
			perRound[round]++
		}
	})
	e := New(sess, bus)
	for ; round < 8; round++ {
		e.Step()
	}
	// SPInterval=4: layer 0 SPs at rounds 0 and 4; layer 1 at round 0.
	if spCount[0] != 2 {
		t.Fatalf("layer 0 SPs = %d, want 2", spCount[0])
	}
	if spCount[1] != 1 {
		t.Fatalf("layer 1 SPs = %d, want 1", spCount[1])
	}
	// At most one SP per layer per round (only the round's first packet).
	if perRound[0] > 4 {
		t.Fatalf("round 0 carried %d SPs", perRound[0])
	}
}

// TestPaceIntervalRateAccuracy: across awkward (perRound, baseRate) pairs
// — non-divisor ratios, rates near and beyond the nanosecond floor — the
// effective rate implied by the rounded interval must sit within half a
// nanosecond per round of the request, and the interval must never fall to
// zero or get silently clamped to a magic 1ms.
func TestPaceIntervalRateAccuracy(t *testing.T) {
	cases := []struct{ perRound, baseRate int }{
		{1, 1}, {1, 3}, {1, 7}, {1, 512}, {1, 1000}, {1, 48_000},
		{1, 1_000_000}, {1, 333_333_333}, {1, 999_999_999},
		{3, 7}, {3, 1024}, {17, 4096}, {100, 2048}, {625, 48_000},
		{1250, 37}, {4096, 999}, {1_000_000, 3},
	}
	for _, tc := range cases {
		interval := paceInterval(tc.perRound, tc.baseRate)
		if interval < 1 {
			t.Fatalf("perRound=%d rate=%d: interval %v < 1ns", tc.perRound, tc.baseRate, interval)
		}
		// The ideal interval in ns; rounding may move it by at most 0.5ns.
		ideal := float64(tc.perRound) * 1e9 / float64(tc.baseRate)
		if diff := float64(interval) - ideal; diff > 0.5 || diff < -0.5 {
			t.Fatalf("perRound=%d rate=%d: interval %v is %.3fns from ideal %.3fns",
				tc.perRound, tc.baseRate, interval, diff, ideal)
		}
		// Effective rate implied by the interval: within 0.5ns/round of target.
		eff := float64(tc.perRound) * 1e9 / float64(interval)
		maxSkew := float64(tc.baseRate) * float64(tc.baseRate) / (float64(tc.perRound) * 2e9)
		if skew := eff - float64(tc.baseRate); skew > maxSkew+1e-9 || skew < -maxSkew-1e-9 {
			t.Fatalf("perRound=%d rate=%d: effective %.6f pps skews %.6f (bound %.6f)",
				tc.perRound, tc.baseRate, eff, skew, maxSkew)
		}
	}
	// Beyond one round per nanosecond the floor clamps — and Pace must
	// report the truthful achievable rate, not echo the request.
	if got := paceInterval(1, 2_000_000_000); got != 1 {
		t.Fatalf("2e9 pps: interval %v, want 1ns floor", got)
	}

	// The old formula's failure modes, pinned: 1500 pps truncated
	// 666666.67ns down to 666666ns (ran 0.0001%% fast); 3e9 pps hit the
	// <=0 clamp and ran at a silent 1000 pps. The rounded form fixes the
	// first and caps the second at the honest 1ns.
	if old := time.Second * 1 / time.Duration(1500); old == paceInterval(1, 1500) {
		t.Fatalf("truncated and rounded intervals agree at 1500 pps — regression pin is dead")
	}
	if paceInterval(1, 1500) != 666667 {
		t.Fatalf("1500 pps: interval %v, want 666667ns", paceInterval(1, 1500))
	}
}

// TestPaceEffectiveRate: Pace's reported effective rate must equal the
// rate its own interval achieves, for a real session in both single-layer
// and layered modes.
func TestPaceEffectiveRate(t *testing.T) {
	for _, layers := range []int{1, 4} {
		sess := newSession(t, layers)
		interval, eff := Pace(sess, 1999)
		if interval != PaceInterval(sess, 1999) {
			t.Fatalf("layers=%d: Pace interval %v != PaceInterval %v",
				layers, interval, PaceInterval(sess, 1999))
		}
		perRound := 1
		if layers > 1 {
			blockSize := 1 << uint(layers-1)
			perRound = (sess.Codec().N() + blockSize - 1) / blockSize
		}
		want := float64(perRound) * 1e9 / float64(interval)
		if eff != want {
			t.Fatalf("layers=%d: effective %.9f, want %.9f", layers, eff, want)
		}
	}
}

func TestRunPacesAndStops(t *testing.T) {
	sess := newSession(t, 2)
	bus := transport.NewBus(2)
	n := 0
	bus.NewClient(1, nil, func(int, []byte) { n++ })
	e := New(sess, bus)
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	err := e.Run(ctx, 50_000)
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v", err)
	}
	if n == 0 {
		t.Fatal("Run sent nothing")
	}
}
