package server

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/transport"
)

func newSession(t *testing.T, layers int) *core.Session {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 40_000)
	rng.Read(data)
	cfg := core.DefaultConfig()
	cfg.Layers = layers
	cfg.SPInterval = 4
	s, err := core.NewSession(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStepSendsEveryLayerWithSerials(t *testing.T) {
	sess := newSession(t, 4)
	bus := transport.NewBus(4)
	type rec struct {
		layer int
		hdr   proto.Header
	}
	var got []rec
	bus.NewClient(3, nil, func(layer int, pkt []byte) {
		h, _, err := proto.ParseHeader(pkt)
		if err != nil {
			t.Errorf("bad header: %v", err)
			return
		}
		got = append(got, rec{layer, h})
	})
	e := New(sess, bus)
	for r := 0; r < 8; r++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if e.Round() != 8 || e.Sent() != len(got) {
		t.Fatalf("round=%d sent=%d delivered=%d", e.Round(), e.Sent(), len(got))
	}
	// Serials must be dense per layer (no loss on the bus).
	next := map[int]uint32{}
	for _, r := range got {
		if int(r.hdr.Group) != r.layer {
			t.Fatalf("header group %d delivered on layer %d", r.hdr.Group, r.layer)
		}
		next[r.layer]++
		if r.hdr.Serial != next[r.layer] {
			t.Fatalf("layer %d serial %d, want %d", r.layer, r.hdr.Serial, next[r.layer])
		}
	}
	for l := 0; l < 4; l++ {
		if next[l] == 0 {
			t.Fatalf("layer %d never transmitted", l)
		}
	}
}

func TestSPOnlyOnFirstPacketOfRound(t *testing.T) {
	sess := newSession(t, 4)
	bus := transport.NewBus(4)
	spCount := map[int]int{}
	perRound := map[int]int{}
	round := 0
	bus.NewClient(3, nil, func(layer int, pkt []byte) {
		h, _, _ := proto.ParseHeader(pkt)
		if h.Flags&proto.FlagSP != 0 {
			spCount[layer]++
			perRound[round]++
		}
	})
	e := New(sess, bus)
	for ; round < 8; round++ {
		e.Step()
	}
	// SPInterval=4: layer 0 SPs at rounds 0 and 4; layer 1 at round 0.
	if spCount[0] != 2 {
		t.Fatalf("layer 0 SPs = %d, want 2", spCount[0])
	}
	if spCount[1] != 1 {
		t.Fatalf("layer 1 SPs = %d, want 1", spCount[1])
	}
	// At most one SP per layer per round (only the round's first packet).
	if perRound[0] > 4 {
		t.Fatalf("round 0 carried %d SPs", perRound[0])
	}
}

func TestRunPacesAndStops(t *testing.T) {
	sess := newSession(t, 2)
	bus := transport.NewBus(2)
	n := 0
	bus.NewClient(1, nil, func(int, []byte) { n++ })
	e := New(sess, bus)
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	err := e.Run(ctx, 50_000)
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v", err)
	}
	if n == 0 {
		t.Fatal("Run sent nothing")
	}
}
