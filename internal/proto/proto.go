// Package proto defines the wire format of the prototype distribution
// system (§7.3): the 12-byte data-packet header ("the packets were
// additionally tagged with 12 bytes of information (packet index, serial
// number and group number)"), and the unicast control messages the server
// uses to hand clients the session parameters (multicast group information,
// file length, code configuration).
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// HeaderLen is the size of the data packet header: 12 bytes, as in the
// paper's prototype.
const HeaderLen = 12

// TagLen is the size of the per-packet integrity trailer: a CRC32C
// (Castagnoli) checksum over header and payload, appended after the
// payload. UDP's own 16-bit checksum is optional and weak; the trailer
// makes corruption on hostile channels indistinguishable from loss — a
// corrupted packet is dropped before it can poison the decoder.
const TagLen = 4

// castagnoli is the CRC32C table; the Castagnoli polynomial has hardware
// support on amd64/arm64, so tagging costs a few ns per packet and
// allocates nothing.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Tag computes the CRC32C integrity checksum of a packet body
// (header + payload, trailer excluded).
func Tag(body []byte) uint32 { return crc32.Checksum(body, castagnoli) }

// AppendTag appends the 4-byte integrity trailer covering all of pkt and
// returns the extended slice. With trailing capacity available it compiles
// to a checksum and four stores — the zero-alloc emit path tags in place.
func AppendTag(pkt []byte) []byte {
	sum := Tag(pkt)
	return append(pkt, byte(sum>>24), byte(sum>>16), byte(sum>>8), byte(sum))
}

// ErrBadTag is returned for packets whose integrity trailer does not match
// their contents: corrupted in flight, truncated, or padded with garbage.
var ErrBadTag = errors.New("proto: packet integrity tag mismatch")

// VerifyPacket checks the integrity trailer of a wire packet and returns
// the body (header + payload) with the trailer stripped. Any bit flip in
// header, payload or trailer fails verification.
func VerifyPacket(pkt []byte) (body []byte, err error) {
	if len(pkt) < HeaderLen+TagLen {
		return nil, ErrShortPacket
	}
	n := len(pkt) - TagLen
	if Tag(pkt[:n]) != binary.BigEndian.Uint32(pkt[n:]) {
		return nil, ErrBadTag
	}
	return pkt[:n], nil
}

// ParsePacket verifies the integrity trailer and decodes the header of a
// wire packet, returning the payload between them. This is the one-stop
// receive parser: nothing it returns has touched the decoder yet, and a
// corrupted packet is rejected with ErrBadTag before any state changes.
func ParsePacket(pkt []byte) (Header, []byte, error) {
	body, err := VerifyPacket(pkt)
	if err != nil {
		return Header{}, nil, err
	}
	return ParseHeader(body)
}

// Flags carried in the packet header.
const (
	// FlagSP marks a synchronization point: receivers may move to a
	// higher subscription level only immediately after an SP (§7.1.1).
	FlagSP uint8 = 1 << iota
	// FlagBurst marks packets sent during a sender burst period, during
	// which each layer temporarily doubles its rate so receivers can
	// probe for spare capacity without explicit join experiments.
	FlagBurst
)

// Header is the per-packet header of the data stream.
type Header struct {
	Index   uint32 // encoding packet index within the session's code
	Serial  uint32 // per-layer monotonically increasing serial number (for loss measurement)
	Group   uint8  // layer / multicast group number
	Flags   uint8  // FlagSP | FlagBurst
	Session uint16 // session identifier, so stray packets are rejected
}

// ErrShortPacket is returned when a buffer cannot hold a header.
var ErrShortPacket = errors.New("proto: packet shorter than header")

// Marshal appends the 12-byte header encoding to dst and returns the
// extended slice (the append-style encoder of the zero-copy send path:
// with capacity available it compiles to direct stores, no staging
// buffer).
func (h Header) Marshal(dst []byte) []byte {
	return append(dst,
		byte(h.Index>>24), byte(h.Index>>16), byte(h.Index>>8), byte(h.Index),
		byte(h.Serial>>24), byte(h.Serial>>16), byte(h.Serial>>8), byte(h.Serial),
		h.Group, h.Flags,
		byte(h.Session>>8), byte(h.Session))
}

// ParseHeader decodes a header from the front of pkt and returns the
// payload that follows it.
func ParseHeader(pkt []byte) (Header, []byte, error) {
	if len(pkt) < HeaderLen {
		return Header{}, nil, ErrShortPacket
	}
	h := Header{
		Index:   binary.BigEndian.Uint32(pkt[0:4]),
		Serial:  binary.BigEndian.Uint32(pkt[4:8]),
		Group:   pkt[8],
		Flags:   pkt[9],
		Session: binary.BigEndian.Uint16(pkt[10:12]),
	}
	return h, pkt[HeaderLen:], nil
}

// SessionInfo is the control answer a server returns to a client: every
// parameter needed to subscribe and decode. The graph seed plays the role
// of the "graph structure agreed upon in advance" (§5.1).
type SessionInfo struct {
	Session    uint16
	Codec      uint8  // CodecTornadoA, ...
	Layers     uint8  // number of multicast groups g
	K          uint32 // source packets
	N          uint32 // encoding packets
	PacketLen  uint32 // payload length (excluding header)
	FileLen    uint64 // original file length in bytes
	Seed       int64  // graph seed
	BaseRate   uint32 // base-layer rate, packets/second
	SPInterval uint32 // rounds between synchronization points on the base layer
	FileHash   uint64 // FNV-64a of the file, for end-to-end verification
	// InterleaveK is the per-block source packet count when Codec is
	// CodecInterleaved (0 otherwise).
	InterleaveK uint32
	// Phase is the carousel round offset this source started transmitting
	// at. Mirrors sharing a seed advertise staggered phases (§8: "each
	// source cycles through the data at a different point") so a receiver
	// harvesting from several of them sees mostly-disjoint prefixes and
	// accumulates few early duplicates. Rateless sessions reuse the field
	// as the sender's arbitrary stream start — informational only, since
	// the unbounded index space makes coordination unnecessary.
	Phase uint32
	// LTCMicro / LTDeltaMicro carry the robust-soliton parameters of a
	// CodecLT or CodecRaptor session in millionths (c, δ quantized so both
	// sides of the wire derive the identical degree distribution). Zero
	// otherwise.
	LTCMicro     uint32
	LTDeltaMicro uint32
	// RaptorS / RaptorMaxD carry a CodecRaptor session's precode check
	// count and inner-code degree truncation. Together with Seed and the
	// (c, δ) micros above they pin the entire code — precode graph, degree
	// CDF, neighbor draws — so both sides derive identical symbols. Zero
	// for every other codec.
	RaptorS    uint32
	RaptorMaxD uint32
	// Digest is the SHA-256 of the published file. A receiver verifies its
	// reassembled download against it, so a completed transfer is provably
	// the published bytes even if every hop in between was hostile (the
	// 64-bit FNV FileHash stays for cheap in-test checks; it is not
	// collision-resistant). An all-zero digest means "not advertised" —
	// the legacy descriptor shape — and disables the check.
	Digest [32]byte
}

// Codec identifiers carried in SessionInfo.
const (
	CodecTornadoA uint8 = iota
	CodecTornadoB
	CodecVandermonde
	CodecCauchy
	CodecInterleaved
	// CodecLT is the rateless Luby Transform code: N is the unbounded
	// sentinel (code.UnboundedN, 2^31-1) and the carousel streams fresh
	// indices forever instead of cycling.
	CodecLT
	// CodecRaptor is the precoded systematic rateless code: like CodecLT
	// the index space is unbounded, but the first K encoding packets ARE
	// the source packets and repair packets are inner-coded over the
	// precode's intermediate symbols (RaptorS, RaptorMaxD below).
	CodecRaptor
)

// Control message types.
const (
	msgHello      uint8 = 1
	msgSession    uint8 = 2
	msgCatalogReq uint8 = 3
	msgCatalog    uint8 = 4
	msgNak        uint8 = 5
	msgStatsReq   uint8 = 6
	msgStats      uint8 = 7
	controlMag0         = 0xDF // "digital fountain"
	controlMag1         = 0x98 // 1998
)

const sessionInfoLen = 2 + 2 + 1 + 1 + 1 + 4 + 4 + 4 + 8 + 8 + 4 + 4 + 8 + 4 + 4 + 4 + 4 + 4 + 4 + 32 // magic+type .. lt params, raptor params, digest

// The control encoders come in two forms: Append* appends the encoding to
// a caller-provided buffer (the zero-copy path — pooled buffers, no
// per-message allocation), and Marshal* allocates a fresh slice (the
// legacy convenience form, defined as Append* over a nil buffer). The two
// forms produce byte-identical output; proto's differential tests and
// fuzz targets hold them to that.

// AppendHello appends a client hello probe to dst. A bare hello asks for
// "the" session — a multi-session service answers with its lowest session
// id (use AppendHelloFor / the catalog for discovery).
func AppendHello(dst []byte) []byte {
	return append(dst, controlMag0, controlMag1, msgHello)
}

// MarshalHello encodes a client hello probe into a fresh slice.
func MarshalHello() []byte { return AppendHello(nil) }

// AppendHelloFor appends a hello probe asking for one specific session.
func AppendHelloFor(dst []byte, session uint16) []byte {
	return append(dst, controlMag0, controlMag1, msgHello, byte(session>>8), byte(session))
}

// MarshalHelloFor encodes a specific-session hello into a fresh slice.
func MarshalHelloFor(session uint16) []byte { return AppendHelloFor(nil, session) }

// IsHello reports whether buf is a client hello (with or without a session
// id).
func IsHello(buf []byte) bool {
	return len(buf) >= 3 && buf[0] == controlMag0 && buf[1] == controlMag1 && buf[2] == msgHello
}

// HelloSession extracts the session id of a hello probe. ok is false for
// non-hello messages; a bare hello returns (0, false, true).
func HelloSession(buf []byte) (session uint16, specific, ok bool) {
	if !IsHello(buf) {
		return 0, false, false
	}
	if len(buf) >= 5 {
		return binary.BigEndian.Uint16(buf[3:5]), true, true
	}
	return 0, false, true
}

// AppendNak appends a negative control reply: the service is alive but
// does not carry the requested session (SessionAny-style 0xFFFF means "no
// sessions at all"). Without it, a typo'd session id and an unreachable
// server would both look like a control timeout to the client.
func AppendNak(dst []byte, session uint16) []byte {
	return append(dst, controlMag0, controlMag1, msgNak, byte(session>>8), byte(session))
}

// MarshalNak encodes a negative control reply into a fresh slice.
func MarshalNak(session uint16) []byte { return AppendNak(nil, session) }

// ParseNak reports whether buf is a negative control reply, and for which
// session id.
func ParseNak(buf []byte) (session uint16, ok bool) {
	if len(buf) < 5 || buf[0] != controlMag0 || buf[1] != controlMag1 || buf[2] != msgNak {
		return 0, false
	}
	return binary.BigEndian.Uint16(buf[3:5]), true
}

// AppendCatalogRequest appends a catalog (session discovery) request.
func AppendCatalogRequest(dst []byte) []byte {
	return append(dst, controlMag0, controlMag1, msgCatalogReq)
}

// MarshalCatalogRequest encodes a catalog request into a fresh slice.
func MarshalCatalogRequest() []byte { return AppendCatalogRequest(nil) }

// IsCatalogRequest reports whether buf is a catalog request.
func IsCatalogRequest(buf []byte) bool {
	return len(buf) >= 3 && buf[0] == controlMag0 && buf[1] == controlMag1 && buf[2] == msgCatalogReq
}

// MaxCatalogEntries is the most sessions one catalog datagram can carry:
// the marshalled message must stay under the 65,507-byte UDP payload
// limit, or the control socket's reply would fail with EMSGSIZE and
// discovery would silently break.
const MaxCatalogEntries = (65000 - 5) / sessionInfoLen

// AppendCatalog appends the announce/catalog message: the descriptors of
// the sessions a service currently carries, so one control round-trip
// discovers everything needed to subscribe and decode any of them. A
// catalog beyond MaxCatalogEntries is truncated to the first entries
// (callers list sessions lowest-id first, so the surviving prefix is
// deterministic); clients needing the rest ask for sessions by id. Each
// entry is encoded in place — no per-entry allocation.
func AppendCatalog(dst []byte, infos []SessionInfo) []byte {
	if len(infos) > MaxCatalogEntries {
		infos = infos[:MaxCatalogEntries]
	}
	dst = append(dst, controlMag0, controlMag1, msgCatalog,
		byte(len(infos)>>8), byte(len(infos)))
	for _, s := range infos {
		dst = s.Append(dst)
	}
	return dst
}

// MarshalCatalog encodes the announce/catalog message into a fresh slice.
func MarshalCatalog(infos []SessionInfo) []byte {
	n := len(infos)
	if n > MaxCatalogEntries {
		n = MaxCatalogEntries
	}
	return AppendCatalog(make([]byte, 0, 5+n*sessionInfoLen), infos)
}

// ParseCatalog decodes a catalog message.
func ParseCatalog(buf []byte) ([]SessionInfo, error) {
	if len(buf) < 5 || buf[0] != controlMag0 || buf[1] != controlMag1 || buf[2] != msgCatalog {
		return nil, errors.New("proto: not a catalog message")
	}
	count := int(binary.BigEndian.Uint16(buf[3:5]))
	rest := buf[5:]
	if len(rest) < count*sessionInfoLen {
		return nil, fmt.Errorf("proto: catalog truncated: %d entries need %d bytes, have %d",
			count, count*sessionInfoLen, len(rest))
	}
	infos := make([]SessionInfo, count)
	for i := 0; i < count; i++ {
		s, err := ParseSessionInfo(rest[i*sessionInfoLen:])
		if err != nil {
			return nil, fmt.Errorf("proto: catalog entry %d: %w", i, err)
		}
		infos[i] = s
	}
	return infos, nil
}

// Append appends the session info control message encoding to dst.
func (s SessionInfo) Append(dst []byte) []byte {
	dst = append(dst, controlMag0, controlMag1, msgSession)
	var tmp [8]byte
	binary.BigEndian.PutUint16(tmp[:2], s.Session)
	dst = append(dst, tmp[:2]...)
	dst = append(dst, s.Codec, s.Layers)
	binary.BigEndian.PutUint32(tmp[:4], s.K)
	dst = append(dst, tmp[:4]...)
	binary.BigEndian.PutUint32(tmp[:4], s.N)
	dst = append(dst, tmp[:4]...)
	binary.BigEndian.PutUint32(tmp[:4], s.PacketLen)
	dst = append(dst, tmp[:4]...)
	binary.BigEndian.PutUint64(tmp[:8], s.FileLen)
	dst = append(dst, tmp[:8]...)
	binary.BigEndian.PutUint64(tmp[:8], uint64(s.Seed))
	dst = append(dst, tmp[:8]...)
	binary.BigEndian.PutUint32(tmp[:4], s.BaseRate)
	dst = append(dst, tmp[:4]...)
	binary.BigEndian.PutUint32(tmp[:4], s.SPInterval)
	dst = append(dst, tmp[:4]...)
	binary.BigEndian.PutUint64(tmp[:8], s.FileHash)
	dst = append(dst, tmp[:8]...)
	binary.BigEndian.PutUint32(tmp[:4], s.InterleaveK)
	dst = append(dst, tmp[:4]...)
	binary.BigEndian.PutUint32(tmp[:4], s.Phase)
	dst = append(dst, tmp[:4]...)
	binary.BigEndian.PutUint32(tmp[:4], s.LTCMicro)
	dst = append(dst, tmp[:4]...)
	binary.BigEndian.PutUint32(tmp[:4], s.LTDeltaMicro)
	dst = append(dst, tmp[:4]...)
	binary.BigEndian.PutUint32(tmp[:4], s.RaptorS)
	dst = append(dst, tmp[:4]...)
	binary.BigEndian.PutUint32(tmp[:4], s.RaptorMaxD)
	dst = append(dst, tmp[:4]...)
	dst = append(dst, s.Digest[:]...)
	return dst
}

// Marshal encodes the session info control message into a fresh slice.
func (s SessionInfo) Marshal() []byte {
	return s.Append(make([]byte, 0, sessionInfoLen))
}

// ParseSessionInfo decodes a session info message.
func ParseSessionInfo(buf []byte) (SessionInfo, error) {
	if len(buf) < sessionInfoLen {
		return SessionInfo{}, fmt.Errorf("proto: session info too short (%d bytes)", len(buf))
	}
	if buf[0] != controlMag0 || buf[1] != controlMag1 || buf[2] != msgSession {
		return SessionInfo{}, errors.New("proto: not a session info message")
	}
	s := SessionInfo{
		Session:    binary.BigEndian.Uint16(buf[3:5]),
		Codec:      buf[5],
		Layers:     buf[6],
		K:          binary.BigEndian.Uint32(buf[7:11]),
		N:          binary.BigEndian.Uint32(buf[11:15]),
		PacketLen:  binary.BigEndian.Uint32(buf[15:19]),
		FileLen:    binary.BigEndian.Uint64(buf[19:27]),
		Seed:       int64(binary.BigEndian.Uint64(buf[27:35])),
		BaseRate:   binary.BigEndian.Uint32(buf[35:39]),
		SPInterval: binary.BigEndian.Uint32(buf[39:43]),
		FileHash:   binary.BigEndian.Uint64(buf[43:51]),
	}
	s.InterleaveK = binary.BigEndian.Uint32(buf[51:55])
	s.Phase = binary.BigEndian.Uint32(buf[55:59])
	s.LTCMicro = binary.BigEndian.Uint32(buf[59:63])
	s.LTDeltaMicro = binary.BigEndian.Uint32(buf[63:67])
	s.RaptorS = binary.BigEndian.Uint32(buf[67:71])
	s.RaptorMaxD = binary.BigEndian.Uint32(buf[71:75])
	copy(s.Digest[:], buf[75:107])
	return s, nil
}

// StatsSnapshot is the control-plane observability answer: a fixed-length
// snapshot of a server's operational counters, so a client (or an
// operator's probe) can read server health over the same unicast control
// socket it uses for session discovery — no HTTP endpoint required.
// Counter semantics match service.Stats; transport fields are zero when
// the transport keeps no such count (the in-process Bus).
type StatsSnapshot struct {
	Sessions       uint32
	Shards         uint32
	PacketsSent    uint64
	BytesSent      uint64
	SendErrors     uint64
	RoundsEmitted  uint64
	CatchupRounds  uint64
	DebtDropped    uint64
	Draining       uint8 // 1 once the server began draining
	CacheUsed      uint64
	CachePeak      uint64
	CacheLookups   uint64
	CacheHits      uint64
	CacheMisses    uint64
	CacheEvictions uint64
	Subscribers    uint32 // transport subscriber addresses
	TxPackets      uint64 // transport datagram writes (per destination)
	TxBytes        uint64
}

// statsLen is the fixed encoding length of a stats message:
// magic+type, two uint32 counts, six uint64 service counters, the drain
// flag, six uint64 cache counters, and the three transport fields.
const statsLen = 3 + 4 + 4 + 6*8 + 1 + 6*8 + 4 + 8 + 8

// AppendStatsRequest appends a stats request probe to dst.
func AppendStatsRequest(dst []byte) []byte {
	return append(dst, controlMag0, controlMag1, msgStatsReq)
}

// MarshalStatsRequest encodes a stats request into a fresh slice.
func MarshalStatsRequest() []byte { return AppendStatsRequest(nil) }

// IsStatsRequest reports whether buf is a stats request.
func IsStatsRequest(buf []byte) bool {
	return len(buf) >= 3 && buf[0] == controlMag0 && buf[1] == controlMag1 && buf[2] == msgStatsReq
}

// Append appends the stats message encoding to dst.
func (s StatsSnapshot) Append(dst []byte) []byte {
	dst = append(dst, controlMag0, controlMag1, msgStats)
	var tmp [8]byte
	put32 := func(v uint32) {
		binary.BigEndian.PutUint32(tmp[:4], v)
		dst = append(dst, tmp[:4]...)
	}
	put64 := func(v uint64) {
		binary.BigEndian.PutUint64(tmp[:8], v)
		dst = append(dst, tmp[:8]...)
	}
	put32(s.Sessions)
	put32(s.Shards)
	put64(s.PacketsSent)
	put64(s.BytesSent)
	put64(s.SendErrors)
	put64(s.RoundsEmitted)
	put64(s.CatchupRounds)
	put64(s.DebtDropped)
	dst = append(dst, s.Draining)
	put64(s.CacheUsed)
	put64(s.CachePeak)
	put64(s.CacheLookups)
	put64(s.CacheHits)
	put64(s.CacheMisses)
	put64(s.CacheEvictions)
	put32(s.Subscribers)
	put64(s.TxPackets)
	put64(s.TxBytes)
	return dst
}

// Marshal encodes the stats message into a fresh slice.
func (s StatsSnapshot) Marshal() []byte {
	return s.Append(make([]byte, 0, statsLen))
}

// ParseStats decodes a stats message.
func ParseStats(buf []byte) (StatsSnapshot, error) {
	if len(buf) < statsLen {
		return StatsSnapshot{}, fmt.Errorf("proto: stats message too short (%d bytes)", len(buf))
	}
	if buf[0] != controlMag0 || buf[1] != controlMag1 || buf[2] != msgStats {
		return StatsSnapshot{}, errors.New("proto: not a stats message")
	}
	i := 3
	get32 := func() uint32 {
		v := binary.BigEndian.Uint32(buf[i : i+4])
		i += 4
		return v
	}
	get64 := func() uint64 {
		v := binary.BigEndian.Uint64(buf[i : i+8])
		i += 8
		return v
	}
	var s StatsSnapshot
	s.Sessions = get32()
	s.Shards = get32()
	s.PacketsSent = get64()
	s.BytesSent = get64()
	s.SendErrors = get64()
	s.RoundsEmitted = get64()
	s.CatchupRounds = get64()
	s.DebtDropped = get64()
	s.Draining = buf[i]
	i++
	s.CacheUsed = get64()
	s.CachePeak = get64()
	s.CacheLookups = get64()
	s.CacheHits = get64()
	s.CacheMisses = get64()
	s.CacheEvictions = get64()
	s.Subscribers = get32()
	s.TxPackets = get64()
	s.TxBytes = get64()
	return s, nil
}

// FNV64a computes the FNV-64a hash of data (used for end-to-end file
// verification in the prototype and its tests).
func FNV64a(data []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range data {
		h ^= uint64(b)
		h *= prime
	}
	return h
}
