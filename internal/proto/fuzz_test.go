package proto

import (
	"bytes"
	"testing"
)

// FuzzParsePacket: ParseHeader must never panic, must reject anything
// shorter than a header, and parse→marshal must reproduce the input
// header bytes exactly (the parser is a bijection on its accept set).
// The integrity layer rides the same corpus: VerifyPacket/ParsePacket must
// never panic, anything they accept must re-tag to identical bytes, a
// freshly tagged body must always verify, and flipping any byte of a
// tagged packet must fail verification (CRC32 detects all single-byte
// errors).
func FuzzParsePacket(f *testing.F) {
	// Seeds: the canonical prototype header, a wrap-boundary serial, an
	// SP|burst-flagged layered packet, a correctly tagged wire packet, and
	// degenerate inputs.
	f.Add(Header{Index: 1, Serial: 1, Group: 0, Session: 0xDF98}.Marshal(nil))
	f.Add(append(Header{Index: 7, Serial: 0xFFFFFFFF, Group: 3,
		Flags: FlagSP | FlagBurst, Session: 0xCAFE}.Marshal(nil), 0xAB, 0xCD))
	f.Add(AppendTag(append(Header{Index: 3, Serial: 9, Session: 0xDF98}.Marshal(nil),
		1, 2, 3, 4, 5, 6, 7, 8)))
	f.Add([]byte{})
	f.Add(make([]byte, HeaderLen-1))
	f.Fuzz(func(t *testing.T, pkt []byte) {
		h, payload, err := ParseHeader(pkt)
		if len(pkt) < HeaderLen {
			if err != ErrShortPacket {
				t.Fatalf("%d-byte packet: err = %v, want ErrShortPacket", len(pkt), err)
			}
		} else {
			if err != nil {
				t.Fatalf("full-length packet rejected: %v", err)
			}
			if len(payload) != len(pkt)-HeaderLen {
				t.Fatalf("payload %d bytes of %d-byte packet", len(payload), len(pkt))
			}
			if got := h.Marshal(nil); !bytes.Equal(got, pkt[:HeaderLen]) {
				t.Fatalf("parse→marshal diverges: %x vs %x", got, pkt[:HeaderLen])
			}
		}

		// Integrity trailer: accept set is exactly {AppendTag(body)}.
		if body, err := VerifyPacket(pkt); err == nil {
			if !bytes.Equal(AppendTag(append([]byte(nil), body...)), pkt) {
				t.Fatal("verify→re-tag diverges from input")
			}
			if _, _, err := ParsePacket(pkt); err != nil {
				t.Fatalf("ParsePacket rejects what VerifyPacket accepts: %v", err)
			}
		} else if err != ErrShortPacket && err != ErrBadTag {
			t.Fatalf("VerifyPacket: unexpected error %v", err)
		}
		if len(pkt) < HeaderLen {
			return
		}
		tagged := AppendTag(append([]byte(nil), pkt...))
		body, err := VerifyPacket(tagged)
		if err != nil || !bytes.Equal(body, pkt) {
			t.Fatalf("fresh tag rejected: %v", err)
		}
		// Any single corrupted byte must be caught — probe the first,
		// last, and a content-dependent middle position.
		for _, pos := range []int{0, len(tagged) / 2, len(tagged) - 1} {
			tagged[pos] ^= 0x40
			if _, err := VerifyPacket(tagged); err != ErrBadTag {
				t.Fatalf("flip at %d not detected: %v", pos, err)
			}
			tagged[pos] ^= 0x40
		}
	})
}

// FuzzParseControl throws arbitrary bytes at every control-message parser
// at once: none may panic, truncated inputs must be rejected (not
// misparsed), and any input accepted as a session descriptor or catalog
// must survive a marshal round-trip.
func FuzzParseControl(f *testing.F) {
	// Seeds from the existing control-plane test vectors.
	f.Add(MarshalHello())
	f.Add(MarshalHelloFor(0xDF98))
	f.Add(MarshalNak(0xDF99))
	f.Add(MarshalCatalogRequest())
	f.Add(SessionInfo{Session: 1, Codec: CodecTornadoA, Layers: 4, K: 100, N: 200,
		PacketLen: 512, FileLen: 50_000, Seed: 1998, BaseRate: 2048, SPInterval: 16,
		FileHash: 0xAB, Phase: 33,
		Digest: [32]byte{1, 2, 3, 0xDF, 0x98, 31: 0xFF}}.Marshal())
	f.Add(MarshalCatalog([]SessionInfo{
		{Session: 1, K: 10, N: 20, PacketLen: 16},
		{Session: 2, K: 30, N: 60, PacketLen: 16, InterleaveK: 5, Phase: 7},
	}))
	f.Add([]byte{controlMag0, controlMag1})
	f.Add(MarshalStatsRequest())
	f.Add(StatsSnapshot{Sessions: 1, Shards: 2, PacketsSent: 3,
		Draining: 1, Subscribers: 4, TxPackets: 5}.Marshal())
	f.Fuzz(func(t *testing.T, buf []byte) {
		if s, err := ParseSessionInfo(buf); err == nil {
			if len(buf) < sessionInfoLen {
				t.Fatalf("truncated session info accepted (%d bytes)", len(buf))
			}
			if !bytes.Equal(s.Marshal(), buf[:sessionInfoLen]) {
				t.Fatal("session info parse→marshal diverges")
			}
			if !bytes.Equal(s.Append(nil), s.Marshal()) {
				t.Fatal("session info Append diverges from Marshal")
			}
		}
		if infos, err := ParseCatalog(buf); err == nil {
			if len(buf) < 5+len(infos)*sessionInfoLen {
				t.Fatalf("catalog of %d entries accepted from %d bytes", len(infos), len(buf))
			}
			round, err := ParseCatalog(MarshalCatalog(infos))
			if err != nil && len(infos) <= MaxCatalogEntries {
				t.Fatalf("catalog re-marshal rejected: %v", err)
			}
			if err == nil && len(round) != len(infos) {
				t.Fatalf("catalog round-trip %d → %d entries", len(infos), len(round))
			}
			if !bytes.Equal(AppendCatalog(nil, infos), MarshalCatalog(infos)) {
				t.Fatal("catalog Append diverges from Marshal")
			}
		}
		if id, specific, ok := HelloSession(buf); ok {
			if !IsHello(buf) {
				t.Fatal("HelloSession accepted what IsHello rejects")
			}
			if specific && len(buf) < 5 {
				t.Fatalf("specific hello for %#x from %d bytes", id, len(buf))
			}
		}
		if _, ok := ParseNak(buf); ok && len(buf) < 5 {
			t.Fatal("truncated NAK accepted")
		}
		if s, err := ParseStats(buf); err == nil {
			if len(buf) < statsLen {
				t.Fatalf("truncated stats accepted (%d bytes)", len(buf))
			}
			if !bytes.Equal(s.Marshal(), buf[:statsLen]) {
				t.Fatal("stats parse→marshal diverges")
			}
			if !bytes.Equal(s.Append(nil), s.Marshal()) {
				t.Fatal("stats Append diverges from Marshal")
			}
		}
		IsCatalogRequest(buf) // must simply not panic
		IsStatsRequest(buf)   // must simply not panic
	})
}
