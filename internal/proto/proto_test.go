package proto

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestHeaderRoundTrip(t *testing.T) {
	err := quick.Check(func(index, serial uint32, group, flags uint8, session uint16) bool {
		h := Header{Index: index, Serial: serial, Group: group, Flags: flags, Session: session}
		buf := h.Marshal(nil)
		if len(buf) != HeaderLen {
			return false
		}
		got, payload, err := ParseHeader(append(buf, 0xAB, 0xCD))
		if err != nil {
			return false
		}
		return got == h && bytes.Equal(payload, []byte{0xAB, 0xCD})
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestHeaderLenIs12(t *testing.T) {
	// The paper tags packets with exactly 12 bytes (§7.3).
	if HeaderLen != 12 {
		t.Fatalf("HeaderLen = %d, want 12", HeaderLen)
	}
	if got := len(Header{}.Marshal(nil)); got != 12 {
		t.Fatalf("marshalled header is %d bytes, want 12", got)
	}
}

func TestParseHeaderShort(t *testing.T) {
	if _, _, err := ParseHeader(make([]byte, 11)); err != ErrShortPacket {
		t.Fatalf("err = %v, want ErrShortPacket", err)
	}
}

func TestHeaderMarshalAppends(t *testing.T) {
	prefix := []byte{1, 2, 3}
	out := (Header{Index: 7}).Marshal(prefix)
	if len(out) != 3+HeaderLen || !bytes.Equal(out[:3], prefix) {
		t.Fatal("Marshal does not append")
	}
}

func TestSessionInfoRoundTrip(t *testing.T) {
	err := quick.Check(func(session uint16, codec, layers uint8, k, n, pl, rate, spi, phase uint32, fl, hash uint64, seed int64) bool {
		s := SessionInfo{
			Session: session, Codec: codec % 5, Layers: layers,
			K: k, N: n, PacketLen: pl, FileLen: fl, Seed: seed,
			BaseRate: rate, SPInterval: spi, FileHash: hash,
			InterleaveK: k % 97, Phase: phase,
		}
		got, err := ParseSessionInfo(s.Marshal())
		return err == nil && got == s
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParseSessionInfoErrors(t *testing.T) {
	if _, err := ParseSessionInfo(make([]byte, 10)); err == nil {
		t.Fatal("short buffer accepted")
	}
	good := SessionInfo{}.Marshal()
	good[0] = 0x00
	if _, err := ParseSessionInfo(good); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestHello(t *testing.T) {
	if !IsHello(MarshalHello()) {
		t.Fatal("hello does not parse")
	}
	if IsHello([]byte{1, 2}) || IsHello(SessionInfo{}.Marshal()) {
		t.Fatal("false positive hello")
	}
}

func TestFNV64a(t *testing.T) {
	// Known FNV-64a test vectors.
	if got := FNV64a(nil); got != 14695981039346656037 {
		t.Fatalf("FNV64a(\"\") = %d", got)
	}
	if got := FNV64a([]byte("a")); got != 0xaf63dc4c8601ec8c {
		t.Fatalf("FNV64a(\"a\") = %#x", got)
	}
	if FNV64a([]byte("abc")) == FNV64a([]byte("acb")) {
		t.Fatal("order-insensitive hash")
	}
}

func TestHelloForSession(t *testing.T) {
	bare := MarshalHello()
	if id, specific, ok := HelloSession(bare); !ok || specific || id != 0 {
		t.Fatalf("bare hello parsed as (%v, %v, %v)", id, specific, ok)
	}
	h := MarshalHelloFor(0xDF98)
	if !IsHello(h) {
		t.Fatal("hello-for not recognized as hello")
	}
	id, specific, ok := HelloSession(h)
	if !ok || !specific || id != 0xDF98 {
		t.Fatalf("hello-for parsed as (%#x, %v, %v)", id, specific, ok)
	}
	if _, _, ok := HelloSession([]byte("nope")); ok {
		t.Fatal("garbage parsed as hello")
	}
}

func TestCatalogRoundTrip(t *testing.T) {
	req := MarshalCatalogRequest()
	if !IsCatalogRequest(req) {
		t.Fatal("request not recognized")
	}
	if IsCatalogRequest(MarshalHello()) || IsHello(req) {
		t.Fatal("hello/catalog confusion")
	}
	infos := []SessionInfo{
		{Session: 1, Codec: CodecTornadoA, Layers: 4, K: 100, N: 200, PacketLen: 512,
			FileLen: 50_000, Seed: 1998, BaseRate: 2048, SPInterval: 16, FileHash: 0xAB},
		{Session: 2, Codec: CodecInterleaved, Layers: 1, K: 400, N: 800, PacketLen: 512,
			FileLen: 200_000, Seed: -7, BaseRate: 512, SPInterval: 8, FileHash: 0xCD, InterleaveK: 50},
	}
	got, err := ParseCatalog(MarshalCatalog(infos))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(infos) {
		t.Fatalf("got %d entries", len(got))
	}
	for i := range infos {
		if got[i] != infos[i] {
			t.Fatalf("entry %d: got %+v want %+v", i, got[i], infos[i])
		}
	}
	if empty, err := ParseCatalog(MarshalCatalog(nil)); err != nil || len(empty) != 0 {
		t.Fatalf("empty catalog: %v %v", empty, err)
	}
	if _, err := ParseCatalog(MarshalCatalog(infos)[:20]); err == nil {
		t.Fatal("truncated catalog parsed")
	}
	if _, err := ParseCatalog([]byte("junk")); err == nil {
		t.Fatal("junk parsed as catalog")
	}
}

func TestCatalogClampedToDatagram(t *testing.T) {
	infos := make([]SessionInfo, MaxCatalogEntries+50)
	for i := range infos {
		infos[i] = SessionInfo{Session: uint16(i), K: 1, N: 2, PacketLen: 16}
	}
	msg := MarshalCatalog(infos)
	if len(msg) > 65507 {
		t.Fatalf("catalog datagram %d bytes exceeds UDP payload limit", len(msg))
	}
	got, err := ParseCatalog(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != MaxCatalogEntries {
		t.Fatalf("got %d entries, want clamp at %d", len(got), MaxCatalogEntries)
	}
	if got[0].Session != 0 || got[len(got)-1].Session != uint16(MaxCatalogEntries-1) {
		t.Fatal("clamp did not keep the leading prefix")
	}
}

func TestStatsRoundTrip(t *testing.T) {
	want := StatsSnapshot{
		Sessions: 3, Shards: 4,
		PacketsSent: 1_000_001, BytesSent: 512_000_512, SendErrors: 7,
		RoundsEmitted: 9999, CatchupRounds: 12, DebtDropped: 2,
		Draining:  1,
		CacheUsed: 1 << 20, CachePeak: 1 << 21, CacheLookups: 5000,
		CacheHits: 4800, CacheMisses: 200, CacheEvictions: 17,
		Subscribers: 250_000, TxPackets: 1 << 40, TxBytes: 1 << 50,
	}
	buf := want.Marshal()
	if len(buf) != statsLen {
		t.Fatalf("stats message is %d bytes, want %d", len(buf), statsLen)
	}
	got, err := ParseStats(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round-trip diverged:\n got %+v\nwant %+v", got, want)
	}
	if _, err := ParseStats(buf[:statsLen-1]); err == nil {
		t.Fatal("truncated stats message accepted")
	}
	if _, err := ParseStats(MarshalHello()); err == nil {
		t.Fatal("hello parsed as stats message")
	}
}

func TestStatsRequest(t *testing.T) {
	req := MarshalStatsRequest()
	if !IsStatsRequest(req) {
		t.Fatal("request does not self-identify")
	}
	if IsStatsRequest(MarshalHello()) || IsStatsRequest(MarshalCatalogRequest()) {
		t.Fatal("other control messages identified as stats requests")
	}
	if IsHello(req) || IsCatalogRequest(req) {
		t.Fatal("stats request confused with other requests")
	}
	if _, _, ok := HelloSession(req); ok {
		t.Fatal("stats request parsed as hello")
	}
}

func TestNakRoundTrip(t *testing.T) {
	id, ok := ParseNak(MarshalNak(0xDF99))
	if !ok || id != 0xDF99 {
		t.Fatalf("nak parsed as (%#x, %v)", id, ok)
	}
	if _, ok := ParseNak(MarshalHello()); ok {
		t.Fatal("hello parsed as nak")
	}
	if _, ok := ParseNak([]byte("x")); ok {
		t.Fatal("garbage parsed as nak")
	}
	if IsHello(MarshalNak(1)) || IsCatalogRequest(MarshalNak(1)) {
		t.Fatal("nak confused with requests")
	}
}
