package proto

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestHeaderRoundTrip(t *testing.T) {
	err := quick.Check(func(index, serial uint32, group, flags uint8, session uint16) bool {
		h := Header{Index: index, Serial: serial, Group: group, Flags: flags, Session: session}
		buf := h.Marshal(nil)
		if len(buf) != HeaderLen {
			return false
		}
		got, payload, err := ParseHeader(append(buf, 0xAB, 0xCD))
		if err != nil {
			return false
		}
		return got == h && bytes.Equal(payload, []byte{0xAB, 0xCD})
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestHeaderLenIs12(t *testing.T) {
	// The paper tags packets with exactly 12 bytes (§7.3).
	if HeaderLen != 12 {
		t.Fatalf("HeaderLen = %d, want 12", HeaderLen)
	}
	if got := len(Header{}.Marshal(nil)); got != 12 {
		t.Fatalf("marshalled header is %d bytes, want 12", got)
	}
}

func TestParseHeaderShort(t *testing.T) {
	if _, _, err := ParseHeader(make([]byte, 11)); err != ErrShortPacket {
		t.Fatalf("err = %v, want ErrShortPacket", err)
	}
}

func TestHeaderMarshalAppends(t *testing.T) {
	prefix := []byte{1, 2, 3}
	out := (Header{Index: 7}).Marshal(prefix)
	if len(out) != 3+HeaderLen || !bytes.Equal(out[:3], prefix) {
		t.Fatal("Marshal does not append")
	}
}

func TestSessionInfoRoundTrip(t *testing.T) {
	err := quick.Check(func(session uint16, codec, layers uint8, k, n, pl, rate, spi uint32, fl, hash uint64, seed int64) bool {
		s := SessionInfo{
			Session: session, Codec: codec % 5, Layers: layers,
			K: k, N: n, PacketLen: pl, FileLen: fl, Seed: seed,
			BaseRate: rate, SPInterval: spi, FileHash: hash,
			InterleaveK: k % 97,
		}
		got, err := ParseSessionInfo(s.Marshal())
		return err == nil && got == s
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParseSessionInfoErrors(t *testing.T) {
	if _, err := ParseSessionInfo(make([]byte, 10)); err == nil {
		t.Fatal("short buffer accepted")
	}
	good := SessionInfo{}.Marshal()
	good[0] = 0x00
	if _, err := ParseSessionInfo(good); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestHello(t *testing.T) {
	if !IsHello(MarshalHello()) {
		t.Fatal("hello does not parse")
	}
	if IsHello([]byte{1, 2}) || IsHello(SessionInfo{}.Marshal()) {
		t.Fatal("false positive hello")
	}
}

func TestFNV64a(t *testing.T) {
	// Known FNV-64a test vectors.
	if got := FNV64a(nil); got != 14695981039346656037 {
		t.Fatalf("FNV64a(\"\") = %d", got)
	}
	if got := FNV64a([]byte("a")); got != 0xaf63dc4c8601ec8c {
		t.Fatalf("FNV64a(\"a\") = %#x", got)
	}
	if FNV64a([]byte("abc")) == FNV64a([]byte("acb")) {
		t.Fatal("order-insensitive hash")
	}
}
