package proto

import (
	"bytes"
	"math/rand"
	"testing"
)

// randInfo draws an arbitrary descriptor so the differential encoders are
// exercised across the whole field space, not just handpicked values.
func randInfo(rng *rand.Rand) SessionInfo {
	return SessionInfo{
		Session:      uint16(rng.Uint32()),
		Codec:        uint8(rng.Intn(7)),
		Layers:       uint8(1 + rng.Intn(16)),
		K:            rng.Uint32(),
		N:            rng.Uint32(),
		PacketLen:    rng.Uint32(),
		FileLen:      rng.Uint64(),
		Seed:         rng.Int63() - rng.Int63(),
		BaseRate:     rng.Uint32(),
		SPInterval:   rng.Uint32(),
		FileHash:     rng.Uint64(),
		InterleaveK:  rng.Uint32(),
		Phase:        rng.Uint32(),
		LTCMicro:     rng.Uint32(),
		LTDeltaMicro: rng.Uint32(),
		RaptorS:      rng.Uint32(),
		RaptorMaxD:   rng.Uint32(),
	}
}

// TestAppendEncodersMatchMarshal: every Append* encoder must produce
// byte-identical output to its Marshal* counterpart, both onto a nil
// buffer and appended after existing bytes (the pooled-buffer shape).
func TestAppendEncodersMatchMarshal(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	prefix := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	check := func(name string, marshal []byte, appendFn func(dst []byte) []byte) {
		t.Helper()
		if got := appendFn(nil); !bytes.Equal(got, marshal) {
			t.Fatalf("%s: append-to-nil %x != marshal %x", name, got, marshal)
		}
		got := appendFn(append([]byte(nil), prefix...))
		if !bytes.Equal(got[:len(prefix)], prefix) {
			t.Fatalf("%s: append clobbered the prefix", name)
		}
		if !bytes.Equal(got[len(prefix):], marshal) {
			t.Fatalf("%s: append-after-prefix %x != marshal %x", name, got[len(prefix):], marshal)
		}
	}

	check("hello", MarshalHello(), AppendHello)
	check("catalog-request", MarshalCatalogRequest(), AppendCatalogRequest)
	for trial := 0; trial < 200; trial++ {
		id := uint16(rng.Uint32())
		check("hello-for", MarshalHelloFor(id), func(dst []byte) []byte {
			return AppendHelloFor(dst, id)
		})
		check("nak", MarshalNak(id), func(dst []byte) []byte {
			return AppendNak(dst, id)
		})
		info := randInfo(rng)
		check("session-info", info.Marshal(), info.Append)
		infos := make([]SessionInfo, rng.Intn(5))
		for i := range infos {
			infos[i] = randInfo(rng)
		}
		check("catalog", MarshalCatalog(infos), func(dst []byte) []byte {
			return AppendCatalog(dst, infos)
		})
	}
}

// TestAppendCatalogTruncates: the append form must apply the same
// MaxCatalogEntries truncation as the allocating form.
func TestAppendCatalogTruncates(t *testing.T) {
	infos := make([]SessionInfo, MaxCatalogEntries+7)
	for i := range infos {
		infos[i] = SessionInfo{Session: uint16(i), K: 1, N: 2, PacketLen: 16}
	}
	a, m := AppendCatalog(nil, infos), MarshalCatalog(infos)
	if !bytes.Equal(a, m) {
		t.Fatalf("truncated catalogs differ: %d vs %d bytes", len(a), len(m))
	}
	parsed, err := ParseCatalog(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != MaxCatalogEntries {
		t.Fatalf("parsed %d entries, want %d", len(parsed), MaxCatalogEntries)
	}
}

// TestAppendNoAlloc: appending into a buffer with capacity must not
// allocate — this is the property the zero-copy control path leans on.
func TestAppendNoAlloc(t *testing.T) {
	info := SessionInfo{Session: 7, Codec: CodecTornadoA, Layers: 4, K: 100,
		N: 200, PacketLen: 512, FileLen: 50_000, Seed: 1998, FileHash: 0xAB}
	buf := make([]byte, 0, 4*sessionInfoLen)
	allocs := testing.AllocsPerRun(100, func() {
		buf = info.Append(buf[:0])
	})
	if allocs != 0 {
		t.Fatalf("SessionInfo.Append allocates %.1f times per call", allocs)
	}
	h := Header{Index: 1, Serial: 2, Group: 3, Session: 4}
	allocs = testing.AllocsPerRun(100, func() {
		buf = h.Marshal(buf[:0])
	})
	if allocs != 0 {
		t.Fatalf("Header.Marshal into capacity allocates %.1f times per call", allocs)
	}
}
