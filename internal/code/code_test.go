package code

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSplitJoinRoundTrip(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(1000)
		data := make([]byte, n)
		rng.Read(data)
		packetLen := 1 + rng.Intn(64)
		k := PacketsFor(n, packetLen)
		if k == 0 {
			k = 1
		}
		pkts, err := Split(data, k, packetLen)
		if err != nil {
			return false
		}
		if len(pkts) != k {
			return false
		}
		back, err := Join(pkts, n)
		if err != nil {
			return false
		}
		return bytes.Equal(back, data)
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitPadsWithZeros(t *testing.T) {
	pkts, err := Split([]byte{1, 2, 3}, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pkts[0], []byte{1, 2, 3, 0}) || !bytes.Equal(pkts[1], []byte{0, 0, 0, 0}) {
		t.Fatalf("padding wrong: %v", pkts)
	}
}

func TestSplitErrors(t *testing.T) {
	if _, err := Split(make([]byte, 10), 2, 4); err == nil {
		t.Fatal("overflow accepted")
	}
	if _, err := Split(nil, 0, 4); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Split(nil, 2, 0); err == nil {
		t.Fatal("packetLen=0 accepted")
	}
}

func TestJoinErrors(t *testing.T) {
	if _, err := Join([][]byte{{1, 2}}, 5); err == nil {
		t.Fatal("origLen beyond data accepted")
	}
	if _, err := Join(nil, -1); err == nil {
		t.Fatal("negative origLen accepted")
	}
}

func TestPacketsFor(t *testing.T) {
	cases := []struct{ length, pl, want int }{
		{0, 4, 0}, {1, 4, 1}, {4, 4, 1}, {5, 4, 2}, {100, 0, 0},
	}
	for _, c := range cases {
		if got := PacketsFor(c.length, c.pl); got != c.want {
			t.Errorf("PacketsFor(%d,%d) = %d, want %d", c.length, c.pl, got, c.want)
		}
	}
}

func TestCheckSrc(t *testing.T) {
	good := [][]byte{{1, 2}, {3, 4}}
	if err := CheckSrc(good, 2, 2); err != nil {
		t.Fatal(err)
	}
	if err := CheckSrc(good, 3, 2); err == nil {
		t.Fatal("wrong k accepted")
	}
	if err := CheckSrc([][]byte{{1}, {3, 4}}, 2, 2); err == nil {
		t.Fatal("short packet accepted")
	}
}

func TestCheckPacket(t *testing.T) {
	if err := CheckPacket(0, []byte{1, 2}, 4, 2); err != nil {
		t.Fatal(err)
	}
	if err := CheckPacket(-1, []byte{1, 2}, 4, 2); err == nil {
		t.Fatal("negative index accepted")
	}
	if err := CheckPacket(4, []byte{1, 2}, 4, 2); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if err := CheckPacket(1, []byte{1}, 4, 2); err == nil {
		t.Fatal("short packet accepted")
	}
}
