package code

import (
	"runtime"
	"sync"
)

// ParallelChunks splits the index range [0, n) into contiguous chunks and
// runs fn(lo, hi) for each chunk, fanning out across up to GOMAXPROCS
// goroutines. Chunks never overlap and cover the range exactly, so fn may
// write to per-index state without synchronization; any state shared across
// chunks must be read-only or internally synchronized. With one worker (or
// a trivially small n) it runs inline on the calling goroutine.
//
// The RS codecs use this to generate repair packets concurrently: each
// output packet is independent, and the chunked shape lets a worker allocate
// its per-row scratch once instead of per packet.
func ParallelChunks(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
