// Package code defines the erasure-code abstraction shared by every codec
// in this repository (Tornado, Reed-Solomon Vandermonde, Reed-Solomon
// Cauchy, interleaved block codes, and the rateless LT code), plus payload
// split/join helpers.
//
// The fixed-rate codecs are systematic: k source packets are stretched
// into n encoding packets whose first k entries are the source packets
// themselves (the paper fixes the stretch factor n/k = 2 throughout).
// Rateless codecs (LT) instead expose an effectively unbounded index space
// — N() returns the UnboundedN sentinel and every encoding packet is
// derived independently from its index — realizing the paper's ideal
// digital fountain (§3) that the fixed-rate codes only approximate.
package code

import (
	"errors"
	"fmt"
)

// Codec is a systematic erasure code over equal-length packets.
type Codec interface {
	// Name identifies the codec in experiment output (e.g. "tornado-a").
	Name() string
	// K returns the number of source packets.
	K() int
	// N returns the total number of encoding packets (stretch = N/K).
	N() int
	// PacketLen returns the packet length in bytes.
	PacketLen() int
	// Encode produces the full encoding of the k source packets: a slice
	// of n packets whose first k entries alias src. Each src packet must
	// have length PacketLen.
	Encode(src [][]byte) ([][]byte, error)
	// NewDecoder returns a fresh decoder for one reception session.
	// Decoders are independent; the codec itself is immutable and safe
	// for concurrent use once constructed.
	NewDecoder() Decoder
}

// RangeEncoder is an optional Codec capability: codecs whose encoding
// packets are mutually independent (the Reed-Solomon and interleaved
// codes — every output row is its own inner product) can produce any
// contiguous index range of the encoding on demand, without materializing
// the other n - (hi-lo) packets.
//
// A fountain server uses this to keep many large sessions resident at
// once: instead of holding the full stretch-factor-n encoding per file, it
// encodes blocks of packet indices on first touch behind a bounded cache
// (see core.BlockCache). Tornado codes do not implement RangeEncoder —
// their cascade checks are computed jointly — and fall back to eager
// encoding.
type RangeEncoder interface {
	// EncodeRange returns encoding packets [lo, hi). Entries that are
	// source packets alias src; repair entries are freshly allocated.
	// src must be the full k source packets.
	EncodeRange(src [][]byte, lo, hi int) ([][]byte, error)
}

// UnboundedN is the N() sentinel of a rateless codec: 2^31 - 1, the
// largest index count that fits an int on every platform (and the uint32
// wire field). Any index below it is a valid encoding packet; the index
// space is never exhausted in practice — a two-billion-packet stream is
// weeks of continuous transmission — so the carousel streams monotonically
// increasing indices instead of cycling, wrapping harmlessly onto
// long-consumed indices if a session outlives the space.
const UnboundedN = 1<<31 - 1

// Rateless is an optional Codec capability marking codecs whose encoding
// is unbounded: N() returns UnboundedN, Encode is unavailable (there is no
// "full encoding" to materialize), and every packet must be produced
// through EncodeRange. A rateless codec always implements RangeEncoder —
// packet i's content is a pure function of (codec parameters, i).
type Rateless interface {
	// RatelessCode is a marker; implementations return no value.
	RatelessCode()
}

// IsRateless reports whether the codec's encoding is unbounded.
func IsRateless(c Codec) bool {
	_, ok := c.(Rateless)
	return ok
}

// Decoder incrementally consumes encoding packets until the source data is
// recoverable. This mirrors the paper's receiver: packets arrive in
// arbitrary order (carousel position, loss, layering), and the decoder
// "can detect when it has received enough encoding packets to reconstruct"
// (§5.1).
type Decoder interface {
	// Add supplies encoding packet i. It reports whether the source is
	// now recoverable. Duplicates and packets received after completion
	// are ignored (without error). The decoder may retain data.
	Add(i int, data []byte) (done bool, err error)
	// Done reports whether the source is recoverable.
	Done() bool
	// Received returns the number of distinct packets accepted so far.
	Received() int
	// Source recovers and returns the k source packets. It returns an
	// error if the decoder is not Done.
	Source() ([][]byte, error)
}

// ErrNotReady is returned by Source when not enough packets have arrived.
var ErrNotReady = errors.New("code: not enough packets received to decode")

// ReleaseCounter is an optional Decoder capability counting symbol-release
// work: how many coded symbols the decoder has XOR-combined to expose a
// source or intermediate value. A systematic decoder fed a lossless stream
// reports zero — every packet was stored verbatim — which is the property
// differential tests pin down and traces surface per receiver.
type ReleaseCounter interface {
	// Released returns the count of release operations performed so far.
	Released() int
}

// CheckSrc validates an Encode argument.
func CheckSrc(src [][]byte, k, packetLen int) error {
	if len(src) != k {
		return fmt.Errorf("code: got %d source packets, want %d", len(src), k)
	}
	for i, p := range src {
		if len(p) != packetLen {
			return fmt.Errorf("code: source packet %d has length %d, want %d", i, len(p), packetLen)
		}
	}
	return nil
}

// CheckPacket validates a Decoder.Add argument.
func CheckPacket(i int, data []byte, n, packetLen int) error {
	if i < 0 || i >= n {
		return fmt.Errorf("code: packet index %d out of range [0,%d)", i, n)
	}
	if len(data) != packetLen {
		return fmt.Errorf("code: packet %d has length %d, want %d", i, len(data), packetLen)
	}
	return nil
}

// Split partitions data into k packets of packetLen bytes, zero-padding the
// tail. It returns an error if data does not fit.
func Split(data []byte, k, packetLen int) ([][]byte, error) {
	if k <= 0 || packetLen <= 0 {
		return nil, fmt.Errorf("code: invalid split k=%d packetLen=%d", k, packetLen)
	}
	if len(data) > k*packetLen {
		return nil, fmt.Errorf("code: %d bytes do not fit in %d packets of %d bytes", len(data), k, packetLen)
	}
	buf := make([]byte, k*packetLen)
	copy(buf, data)
	out := make([][]byte, k)
	for i := range out {
		out[i] = buf[i*packetLen : (i+1)*packetLen]
	}
	return out, nil
}

// Join reassembles packets into a byte slice of the original length.
func Join(pkts [][]byte, origLen int) ([]byte, error) {
	total := 0
	for _, p := range pkts {
		total += len(p)
	}
	if origLen < 0 || origLen > total {
		return nil, fmt.Errorf("code: original length %d exceeds packet data %d", origLen, total)
	}
	out := make([]byte, 0, total)
	for _, p := range pkts {
		out = append(out, p...)
	}
	return out[:origLen], nil
}

// PacketsFor returns the number of packets of size packetLen needed to
// carry length bytes.
func PacketsFor(length, packetLen int) int {
	if packetLen <= 0 {
		return 0
	}
	return (length + packetLen - 1) / packetLen
}
