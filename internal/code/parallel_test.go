package code

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestParallelChunksCoversRangeExactly(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 64, 1000} {
		hits := make([]int32, n)
		ParallelChunks(n, func(lo, hi int) {
			if lo < 0 || hi > n || lo > hi {
				t.Errorf("n=%d: bad chunk [%d,%d)", n, lo, hi)
				return
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times, want 1", n, i, h)
			}
		}
	}
}

func TestParallelChunksUsesMultipleWorkers(t *testing.T) {
	if runtime.GOMAXPROCS(0) == 1 {
		t.Skip("single-proc environment: pool runs inline")
	}
	var workers int32
	ParallelChunks(1000, func(lo, hi int) {
		atomic.AddInt32(&workers, 1)
	})
	if workers < 2 {
		t.Fatalf("expected multiple chunks, got %d", workers)
	}
}
