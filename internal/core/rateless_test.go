package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/code"
	"repro/internal/proto"
)

func ltConfig(layers int) Config {
	cfg := DefaultConfig()
	cfg.Codec = proto.CodecLT
	cfg.Layers = layers
	cfg.PacketLen = 64
	cfg.Stretch = 0 // ignored for rateless codecs
	return cfg
}

func TestRatelessSessionProperties(t *testing.T) {
	data := make([]byte, 5000)
	rand.New(rand.NewSource(1)).Read(data)
	sess, err := NewSession(data, ltConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if !sess.Rateless() || !sess.Lazy() {
		t.Fatalf("Rateless=%v Lazy=%v, want true/true", sess.Rateless(), sess.Lazy())
	}
	info := sess.Info()
	if info.N != code.UnboundedN {
		t.Fatalf("info.N = %d, want the unbounded sentinel", info.N)
	}
	if info.LTCMicro == 0 || info.LTDeltaMicro == 0 {
		t.Fatalf("LT params missing from descriptor: c=%d delta=%d", info.LTCMicro, info.LTDeltaMicro)
	}
}

// TestRatelessCarouselMonotone: a rateless carousel must stream fresh,
// strictly increasing indices — 2^(g-1) per round split across layers with
// the schedule's slot counts — and a phase-shifted carousel must start
// exactly phase*2^(g-1) indices downstream.
func TestRatelessCarouselMonotone(t *testing.T) {
	data := make([]byte, 3000)
	rand.New(rand.NewSource(2)).Read(data)
	sess, err := NewSession(data, ltConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	perRound := 1 << 3 // 2^(g-1) for g=4
	collect := func(car *Carousel, rounds int) []uint32 {
		var idxs []uint32
		perLayer := map[int]int{}
		for r := 0; r < rounds; r++ {
			err := car.NextRound(func(layer int, pkt []byte) error {
				h, _, err := proto.ParseHeader(pkt)
				if err != nil {
					return err
				}
				idxs = append(idxs, h.Index)
				perLayer[layer]++
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		// Schedule slot counts: 1, 1, 2, 4 per round for g=4.
		want := map[int]int{0: rounds, 1: rounds, 2: 2 * rounds, 3: 4 * rounds}
		for l, n := range want {
			if perLayer[l] != n {
				t.Fatalf("layer %d emitted %d packets over %d rounds, want %d", l, perLayer[l], rounds, n)
			}
		}
		return idxs
	}
	idxs := collect(NewCarousel(sess), 16)
	if len(idxs) != 16*perRound {
		t.Fatalf("%d indices over 16 rounds, want %d", len(idxs), 16*perRound)
	}
	for i, idx := range idxs {
		if int(idx) != i {
			t.Fatalf("emission %d carries index %d; the stream must be monotone from 0", i, idx)
		}
	}
	shifted := collect(NewCarouselAt(sess, 1000), 4)
	if int(shifted[0]) != 1000*perRound {
		t.Fatalf("phase-1000 carousel starts at index %d, want %d", shifted[0], 1000*perRound)
	}
}

// TestRatelessEndToEnd drives the full wire path — session info marshalled
// and re-parsed as a client would learn it, carousel packets through
// Receiver.HandleRaw — at both layer counts.
func TestRatelessEndToEnd(t *testing.T) {
	for _, layers := range []int{1, 4} {
		data := make([]byte, 20_000)
		rand.New(rand.NewSource(int64(layers))).Read(data)
		sess, err := NewSession(data, ltConfig(layers))
		if err != nil {
			t.Fatal(err)
		}
		parsed, err := proto.ParseSessionInfo(sess.Info().Marshal())
		if err != nil {
			t.Fatal(err)
		}
		rcv, err := NewReceiver(parsed)
		if err != nil {
			t.Fatal(err)
		}
		car := NewCarouselAt(sess, 12345) // arbitrary uncoordinated start
		for rounds := 0; !rcv.Done(); rounds++ {
			if rounds > 8*sess.Codec().K() {
				t.Fatalf("layers=%d: no decode after %d rounds", layers, rounds)
			}
			err := car.NextRound(func(layer int, pkt []byte) error {
				_, err := rcv.HandleRaw(pkt)
				return err
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		got, err := rcv.File()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("layers=%d: reconstructed file differs", layers)
		}
		total, distinct, k := rcv.Stats()
		t.Logf("layers=%d k=%d total=%d distinct=%d overhead=%.3f",
			layers, k, total, distinct, float64(distinct)/float64(k))
	}
}
