package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/code"
	"repro/internal/proto"
)

func raptorConfig(layers int) Config {
	cfg := DefaultConfig()
	cfg.Codec = proto.CodecRaptor
	cfg.Layers = layers
	cfg.PacketLen = 64
	cfg.Stretch = 0 // ignored for rateless codecs
	return cfg
}

// TestRaptorSessionProperties: a raptor session is rateless and lazy like
// an LT one, and its descriptor carries the resolved precode geometry —
// not the config's zeros — so a receiver rebuilds the identical code.
func TestRaptorSessionProperties(t *testing.T) {
	data := make([]byte, 5000)
	rand.New(rand.NewSource(1)).Read(data)
	sess, err := NewSession(data, raptorConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if !sess.Rateless() || !sess.Lazy() {
		t.Fatalf("Rateless=%v Lazy=%v, want true/true", sess.Rateless(), sess.Lazy())
	}
	info := sess.Info()
	if info.N != code.UnboundedN {
		t.Fatalf("info.N = %d, want the unbounded sentinel", info.N)
	}
	if info.LTCMicro == 0 || info.LTDeltaMicro == 0 {
		t.Fatalf("inner params missing from descriptor: c=%d delta=%d", info.LTCMicro, info.LTDeltaMicro)
	}
	if info.RaptorS == 0 || info.RaptorMaxD == 0 {
		t.Fatalf("precode geometry missing from descriptor: s=%d maxD=%d", info.RaptorS, info.RaptorMaxD)
	}
	// The descriptor must survive the wire byte-exactly.
	parsed, err := proto.ParseSessionInfo(info.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != info {
		t.Fatalf("descriptor changed across the wire:\n got %+v\nwant %+v", parsed, info)
	}
}

// TestRaptorSystematicZeroLoss: a carousel started at stream position 0
// over a lossless channel delivers the source packets verbatim — the
// receiver completes at exactly k packets with zero symbol-release XOR
// work and a bit-identical file.
func TestRaptorSystematicZeroLoss(t *testing.T) {
	data := make([]byte, 20_000)
	rand.New(rand.NewSource(7)).Read(data)
	sess, err := NewSession(data, raptorConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := NewReceiver(sess.Info())
	if err != nil {
		t.Fatal(err)
	}
	car := NewCarousel(sess)
	for !rcv.Done() {
		if err := car.NextRound(func(layer int, pkt []byte) error {
			_, err := rcv.HandleRaw(pkt)
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	total, distinct, k := rcv.Stats()
	if total != k || distinct != k {
		t.Fatalf("lossless systematic intake took total=%d distinct=%d, want exactly k=%d", total, distinct, k)
	}
	if rel := rcv.Released(); rel != 0 {
		t.Fatalf("lossless systematic decode performed %d symbol releases, want 0", rel)
	}
	got, err := rcv.File()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("reconstructed file differs")
	}
}

// TestRaptorEndToEnd drives the full wire path — descriptor marshalled and
// re-parsed as a client would learn it, carousel packets through
// Receiver.HandleRaw — from an uncoordinated (repair-region) stream start,
// at both layer counts.
func TestRaptorEndToEnd(t *testing.T) {
	for _, layers := range []int{1, 4} {
		data := make([]byte, 20_000)
		rand.New(rand.NewSource(int64(layers))).Read(data)
		sess, err := NewSession(data, raptorConfig(layers))
		if err != nil {
			t.Fatal(err)
		}
		parsed, err := proto.ParseSessionInfo(sess.Info().Marshal())
		if err != nil {
			t.Fatal(err)
		}
		rcv, err := NewReceiver(parsed)
		if err != nil {
			t.Fatal(err)
		}
		car := NewCarouselAt(sess, 123456) // arbitrary uncoordinated start
		for rounds := 0; !rcv.Done(); rounds++ {
			if rounds > 8*sess.Codec().K() {
				t.Fatalf("layers=%d: no decode after %d rounds", layers, rounds)
			}
			err := car.NextRound(func(layer int, pkt []byte) error {
				_, err := rcv.HandleRaw(pkt)
				return err
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		got, err := rcv.File()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("layers=%d: reconstructed file differs", layers)
		}
		total, distinct, k := rcv.Stats()
		t.Logf("layers=%d k=%d total=%d distinct=%d overhead=%.3f released=%d",
			layers, k, total, distinct, float64(distinct)/float64(k), rcv.Released())
	}
}
