// Package core implements the digital fountain itself (§3-§4): a Session
// wraps a file encoded once with an erasure codec and metered out as an
// endless carousel of encoding packets, and a Receiver drinks from that
// stream — in any order, with any losses — until its decoder reports that
// the source is reconstructable.
//
// The server side iterates the carousel either as a seeded random
// permutation on a single group (§6 simulations) or via the layered
// reverse-binary schedule of §7.1.2 across g groups; packets carry the
// 12-byte header of §7.3 including SP and burst markers for the layered
// congestion-control scheme.
package core

import (
	"crypto/sha256"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/code"
	"repro/internal/interleave"
	"repro/internal/lt"
	"repro/internal/proto"
	"repro/internal/raptor"
	"repro/internal/rs"
	"repro/internal/sched"
	"repro/internal/tornado"
)

// Config selects the code and framing of a session.
type Config struct {
	Codec      uint8 // proto.CodecTornadoA, ...
	PacketLen  int   // payload bytes per packet (header excluded)
	Stretch    int   // n/k, the paper uses 2
	Layers     int   // multicast groups g (1 = single-layer protocol)
	Seed       int64 // graph/permutation seed
	SPInterval int   // rounds between synchronization points (0 = 16)
	Session    uint16
	// InterleaveBlockK is the per-block k when Codec is CodecInterleaved.
	InterleaveBlockK int
	// LazyBlock is the number of encoding packets per lazily encoded cache
	// block when the session is built with NewSessionCached (0 = 64). It
	// has no effect on eager sessions.
	LazyBlock int
	// LTC and LTDelta tune the robust soliton degree distribution when
	// Codec is CodecLT (<= 0 selects the lt package defaults). They are
	// quantized to millionths for the wire, and the session builds its
	// codec from the quantized values so sender and receivers derive the
	// identical distribution. Stretch is ignored for CodecLT — a rateless
	// code has no stretch factor. For CodecRaptor they tune the weakened
	// inner distribution instead (<= 0 selects the raptor defaults).
	LTC     float64
	LTDelta float64
	// RaptorChecks and RaptorMaxD pin a CodecRaptor session's precode
	// check count and inner-code degree truncation (<= 0 selects the
	// raptor package's k-dependent defaults). The resolved values travel
	// in the descriptor, so receivers rebuild the identical code without
	// re-deriving the defaults. Stretch is ignored, as for CodecLT.
	RaptorChecks int
	RaptorMaxD   int
}

// DefaultConfig mirrors the prototype in §7.3: Tornado A, 500-byte
// payloads (+12-byte header = 512), stretch factor 2, 4 layers.
func DefaultConfig() Config {
	return Config{
		Codec:     proto.CodecTornadoA,
		PacketLen: 500,
		Stretch:   2,
		Layers:    4,
		Seed:      1998,
		Session:   0xDF98,
	}
}

// Session is an encoded file ready for fountain transmission. It is
// immutable after creation and safe for concurrent readers.
//
// A session is either eager — the full stretch-factor-n encoding is
// materialized at construction, as the one-session prototype did — or lazy:
// only the k source packets are resident, and repair blocks are encoded on
// first touch behind a shared bounded BlockCache (NewSessionCached). Lazy
// sessions require the codec to implement code.RangeEncoder; codecs that
// cannot (Tornado's cascade checks are computed jointly) fall back to eager
// encoding.
type Session struct {
	cfg      Config
	codec    code.Codec
	enc      [][]byte // full encoding; nil when lazy
	fileLen  int
	fileHash uint64
	digest   [32]byte // SHA-256 of the file, advertised for end-to-end verification
	sched    *sched.Schedule
	perm     []int // randomized carousel order for single-layer mode (nil when rateless)

	// rateless marks sessions whose codec has an unbounded index space
	// (code.Rateless). Their carousels stream monotonically increasing
	// fresh indices instead of cycling a permutation, and payloads are
	// generated per emission — each index is transmitted at most once, so
	// nothing is worth caching.
	rateless bool

	// Lazy-encoding state (nil/zero for eager sessions).
	src       [][]byte      // the k source packets, aliasing one buffer
	srcAt     []int32       // encoding idx -> source packet index, -1 for repairs
	srcHeads  map[*byte]int // first-byte identity of each source packet
	ranger    code.RangeEncoder
	cache     *BlockCache
	blockPkts int
	nBlocks   int

	// filled marks blocks that have been range-encoded in full once.
	// After a block is evicted, re-misses encode only the requested
	// packet: under cache pressure the carousel's randomized order gives
	// blocks no locality, and re-encoding 64 packets to emit one would
	// amplify encode work ~64x. With this bound, total lazy encode work
	// is at most one full materialization plus one packet per post-
	// eviction miss.
	fillMu sync.Mutex
	filled []bool
}

// buildCodec constructs the codec named by cfg for k source packets.
// Packet lengths are padded to the codec's alignment requirement.
func buildCodec(cfg Config, k int) (code.Codec, error) {
	n := k * cfg.Stretch
	switch cfg.Codec {
	case proto.CodecTornadoA:
		return tornado.New(tornado.A(), k, n, cfg.PacketLen, cfg.Seed)
	case proto.CodecTornadoB:
		return tornado.New(tornado.B(), k, n, cfg.PacketLen, cfg.Seed)
	case proto.CodecVandermonde:
		return rs.NewVandermonde(k, n, cfg.PacketLen)
	case proto.CodecCauchy:
		return rs.NewCauchy(k, n, cfg.PacketLen)
	case proto.CodecInterleaved:
		bk := cfg.InterleaveBlockK
		if bk <= 0 {
			bk = 50
		}
		return interleave.NewForFile(k, bk, cfg.Stretch, cfg.PacketLen)
	case proto.CodecLT:
		cMicro, dMicro := ltWireParams(cfg)
		return lt.New(k, cfg.PacketLen, cfg.Seed, float64(cMicro)/1e6, float64(dMicro)/1e6)
	case proto.CodecRaptor:
		cMicro, dMicro := raptorWireParams(cfg)
		return raptor.New(k, cfg.PacketLen, cfg.Seed, float64(cMicro)/1e6, float64(dMicro)/1e6,
			cfg.RaptorChecks, cfg.RaptorMaxD)
	default:
		return nil, fmt.Errorf("core: unknown codec %d", cfg.Codec)
	}
}

// ltWireParams resolves and quantizes a config's robust-soliton parameters
// to the wire's millionth units. Both the sender's session and the
// receiver's reconstructed codec pass through this quantization, so the
// degree distributions match bit for bit.
func ltWireParams(cfg Config) (cMicro, deltaMicro uint32) {
	c, d := cfg.LTC, cfg.LTDelta
	if c <= 0 {
		c = lt.DefaultC
	}
	if d <= 0 || d >= 1 {
		d = lt.DefaultDelta
	}
	return uint32(math.Round(c * 1e6)), uint32(math.Round(d * 1e6))
}

// raptorWireParams is ltWireParams with the raptor package's (c, δ)
// defaults — the weakened inner distribution runs a smaller spike than a
// plain LT code.
func raptorWireParams(cfg Config) (cMicro, deltaMicro uint32) {
	c, d := cfg.LTC, cfg.LTDelta
	if c <= 0 {
		c = raptor.DefaultC
	}
	if d <= 0 || d >= 1 {
		d = raptor.DefaultDelta
	}
	return uint32(math.Round(c * 1e6)), uint32(math.Round(d * 1e6))
}

// PadPacketLen rounds a payload length up to the alignment the codec
// needs (16 bytes covers the Cauchy bit-matrix sub-blocking and the
// 16-bit symbols of Vandermonde).
func PadPacketLen(pl int) int {
	if pl%16 == 0 {
		return pl
	}
	return pl + 16 - pl%16
}

// NewSession encodes data for fountain distribution, materializing the
// full encoding eagerly (the memory/latency profile of the one-session
// prototype). Servers holding many files should use NewSessionCached.
func NewSession(data []byte, cfg Config) (*Session, error) {
	return NewSessionCached(data, cfg, nil)
}

// NewSessionCached builds a session whose repair packets are encoded
// lazily, per block, on first carousel touch, with the encoded blocks held
// in the given shared BlockCache. Pass the same cache to every session of a
// service so the total repair-packet memory stays under one budget.
//
// A nil cache, or a codec that does not implement code.RangeEncoder,
// degrades to eager encoding (full materialization at construction).
func NewSessionCached(data []byte, cfg Config, cache *BlockCache) (*Session, error) {
	if cfg.Stretch < 2 && cfg.Codec != proto.CodecLT && cfg.Codec != proto.CodecRaptor {
		return nil, fmt.Errorf("core: stretch %d < 2", cfg.Stretch)
	}
	if cfg.Layers < 1 || cfg.Layers > 16 {
		return nil, fmt.Errorf("core: layer count %d out of range", cfg.Layers)
	}
	cfg.PacketLen = PadPacketLen(cfg.PacketLen)
	if cfg.SPInterval <= 0 {
		cfg.SPInterval = 16
	}
	if cfg.LazyBlock <= 0 {
		cfg.LazyBlock = 64
	}
	k := code.PacketsFor(len(data), cfg.PacketLen)
	if k == 0 {
		k = 1
	}
	codec, err := buildCodec(cfg, k)
	if err != nil {
		return nil, err
	}
	// Interleaved codecs round k up to a whole number of blocks; split
	// with the codec's actual k (the tail packets are zero padding).
	src, err := code.Split(data, codec.K(), cfg.PacketLen)
	if err != nil {
		return nil, err
	}
	sc, err := sched.New(cfg.Layers)
	if err != nil {
		return nil, err
	}
	s := &Session{
		cfg:      cfg,
		codec:    codec,
		fileLen:  len(data),
		fileHash: proto.FNV64a(data),
		digest:   sha256.Sum256(data),
		sched:    sc,
	}
	if code.IsRateless(codec) {
		// Rateless session: only the k source packets are resident, ever.
		// The monotone carousel emits each index once, so there is no
		// reuse for the block cache to exploit — payloads are generated
		// per emission and dropped, and memory stays bounded at the
		// source buffer regardless of how long the fountain runs.
		s.rateless = true
		s.src = src
		s.ranger = codec.(code.RangeEncoder)
		return s, nil
	}
	s.perm = rand.New(rand.NewSource(cfg.Seed ^ 0x5eed)).Perm(codec.N())
	if ranger, ok := codec.(code.RangeEncoder); ok && cache != nil {
		s.src = src
		s.ranger = ranger
		s.cache = cache
		s.blockPkts = cfg.LazyBlock
		s.nBlocks = (codec.N() + cfg.LazyBlock - 1) / cfg.LazyBlock
		s.filled = make([]bool, s.nBlocks)
		s.srcHeads = make(map[*byte]int, len(src))
		for i, p := range src {
			s.srcHeads[&p[0]] = i
		}
		// Source packets are always resident, so their sends must not
		// touch the shared cache (the only cross-session lock on the data
		// path). Codecs that are systematic via a mapping rather than a
		// prefix (the interleaved code) expose SourceIndex.
		s.srcAt = make([]int32, codec.N())
		for i := range s.srcAt {
			s.srcAt[i] = -1
		}
		if si, ok := codec.(interface{ SourceIndex(int) int }); ok {
			for f := 0; f < codec.K(); f++ {
				s.srcAt[si.SourceIndex(f)] = int32(f)
			}
		} else {
			for f := 0; f < codec.K(); f++ {
				s.srcAt[f] = int32(f)
			}
		}
		return s, nil
	}
	enc, err := codec.Encode(src)
	if err != nil {
		return nil, err
	}
	s.enc = enc
	return s, nil
}

// Lazy reports whether the session encodes repair blocks on demand.
func (s *Session) Lazy() bool { return s.enc == nil }

// Rateless reports whether the session's codec has an unbounded index
// space: its carousel streams fresh monotone indices instead of cycling.
func (s *Session) Rateless() bool { return s.rateless }

// Payload returns the payload bytes of encoding packet idx. Eager sessions
// index the materialized encoding; lazy sessions consult the shared block
// cache, encoding on a miss — the containing block on its first-ever
// touch, just the single packet after an eviction. The returned slice is
// shared and must not be modified.
func (s *Session) Payload(idx int) []byte {
	if s.enc != nil {
		return s.enc[idx]
	}
	if s.rateless {
		// Each index of the monotone stream is emitted at most once;
		// generate and forget — no cache, no cross-session lock traffic.
		return s.encodeRange(idx, idx+1)[0]
	}
	if f := s.srcAt[idx]; f >= 0 {
		return s.src[f] // always resident; no cache traffic
	}
	block := idx / s.blockPkts
	lo := block * s.blockPkts
	// Single-packet refill entries live in the key space above the block
	// ids; one lookup probes both so the hit/miss counters see one event.
	if pkts, full := s.cache.get2(s, block, s.nBlocks+idx); pkts != nil {
		if full {
			return pkts[idx-lo]
		}
		return pkts[0]
	}
	if s.firstFillDone(block) {
		pkts := s.encodeRange(idx, idx+1)
		return s.cachePut(s.nBlocks+idx, pkts)[0]
	}
	hi := min(lo+s.blockPkts, s.codec.N())
	pkts := s.encodeRange(lo, hi)
	return s.cachePut(block, pkts)[idx-lo]
}

// firstFillDone reports whether the block was already range-encoded in
// full once, marking it if not (the caller then performs that first fill).
func (s *Session) firstFillDone(block int) bool {
	s.fillMu.Lock()
	defer s.fillMu.Unlock()
	if s.filled[block] {
		return true
	}
	s.filled[block] = true
	return false
}

func (s *Session) encodeRange(lo, hi int) [][]byte {
	pkts, err := s.ranger.EncodeRange(s.src, lo, hi)
	if err != nil {
		// The inputs were validated at construction; a range-encode failure
		// here is a codec contract violation, not a runtime condition.
		panic(fmt.Sprintf("core: lazy encode of [%d,%d) failed: %v", lo, hi, err))
	}
	return pkts
}

// cachePut inserts an encoded run under key, charging only bytes that do
// not alias the source buffer.
func (s *Session) cachePut(key int, pkts [][]byte) [][]byte {
	var charged int64
	for _, p := range pkts {
		if _, aliased := s.srcHeads[&p[0]]; !aliased {
			charged += int64(len(p))
		}
	}
	return s.cache.put(s, key, pkts, charged)
}

// Codec exposes the session's erasure codec.
func (s *Session) Codec() code.Codec { return s.codec }

// Config returns the session configuration (with padded packet length).
func (s *Session) Config() Config { return s.cfg }

// Info returns the control-channel descriptor of the session.
func (s *Session) Info() proto.SessionInfo {
	info := proto.SessionInfo{
		Session:    s.cfg.Session,
		Codec:      s.cfg.Codec,
		Layers:     uint8(s.cfg.Layers),
		K:          uint32(s.codec.K()),
		N:          uint32(s.codec.N()),
		PacketLen:  uint32(s.cfg.PacketLen),
		FileLen:    uint64(s.fileLen),
		Seed:       s.cfg.Seed,
		SPInterval: uint32(s.cfg.SPInterval),
		FileHash:   s.fileHash,
		Digest:     s.digest,
	}
	if s.cfg.Codec == proto.CodecInterleaved {
		bk := s.cfg.InterleaveBlockK
		if bk <= 0 {
			bk = 50
		}
		info.InterleaveK = uint32(bk)
	}
	if s.cfg.Codec == proto.CodecLT {
		info.LTCMicro, info.LTDeltaMicro = ltWireParams(s.cfg)
	}
	if s.cfg.Codec == proto.CodecRaptor {
		info.LTCMicro, info.LTDeltaMicro = raptorWireParams(s.cfg)
		// Publish the resolved precode geometry, not the config's zeros:
		// receivers must not re-derive defaults that could drift.
		rc := s.codec.(*raptor.Codec)
		info.RaptorS = uint32(rc.Checks())
		info.RaptorMaxD = uint32(rc.MaxDegree())
	}
	return info
}

// Packet returns the wire form (header + payload) of encoding packet idx
// for the given layer/serial/flags, in a freshly allocated buffer.
func (s *Session) Packet(idx int, layer uint8, serial uint32, flags uint8) []byte {
	return s.AppendPacket(make([]byte, 0, s.WireLen()), idx, layer, serial, flags)
}

// AppendPacket appends the wire form (header + payload + integrity
// trailer) of encoding packet idx to dst and returns the extended slice —
// the zero-copy form of Packet for senders that build packets in pooled
// buffers. With cap(dst) >= WireLen() and an eagerly encoded (or
// cache-resident) payload, the call allocates nothing: the CRC32C trailer
// is a hardware checksum plus four appended bytes.
func (s *Session) AppendPacket(dst []byte, idx int, layer uint8, serial uint32, flags uint8) []byte {
	h := proto.Header{
		Index:   uint32(idx),
		Serial:  serial,
		Group:   layer,
		Flags:   flags,
		Session: s.cfg.Session,
	}
	base := len(dst)
	dst = h.Marshal(dst)
	dst = append(dst, s.Payload(idx)...)
	sum := proto.Tag(dst[base:])
	return append(dst, byte(sum>>24), byte(sum>>16), byte(sum>>8), byte(sum))
}

// WireLen returns the on-the-wire size of every packet of the session:
// the 12-byte header plus the (padded) payload length plus the 4-byte
// integrity trailer. Senders size their packet buffers with it.
func (s *Session) WireLen() int { return proto.HeaderLen + s.cfg.PacketLen + proto.TagLen }

// CarouselIndices returns the encoding indices transmitted on `layer`
// during `round`. In single-layer mode this walks the seeded random
// permutation (the randomized carousel of §6); in layered mode it follows
// the reverse-binary schedule (§7.1.2), which guarantees the One Level
// Property.
//
// Rateless sessions never cycle: round r emits the next fresh slice of the
// unbounded index stream — one index per round on a single layer, or
// 2^(g-1) consecutive indices per round split across g layers with the
// fixed-rate schedule's per-layer slot counts (1, 1, 2, 4, ...). Every
// index is emitted at most once per stream, so the One Level Property
// holds trivially, and mirrors starting at different rounds draw from
// disjoint index regions without any cycle arithmetic.
func (s *Session) CarouselIndices(layer, round int) []int {
	return s.AppendCarouselIndices(nil, layer, round)
}

// AppendCarouselIndices is the allocation-free form of CarouselIndices:
// the indices are appended to dst, so a carousel can walk the schedule
// through one reused scratch slice.
func (s *Session) AppendCarouselIndices(dst []int, layer, round int) []int {
	if s.rateless {
		if s.cfg.Layers == 1 {
			return append(dst, ratelessIndex(uint64(round)))
		}
		per := s.sched.SlotsPerRound(layer)
		off := 0
		if layer > 0 {
			// Slots below this layer: the schedule's cumulative count.
			off = s.sched.CumulativeSlotsPerRound(layer - 1)
		}
		// The slot counts sum to the block size 2^(g-1) = indices per
		// round.
		base := uint64(round)*uint64(s.sched.BlockSize()) + uint64(off)
		for i := 0; i < per; i++ {
			dst = append(dst, ratelessIndex(base+uint64(i)))
		}
		return dst
	}
	n := s.codec.N()
	if s.cfg.Layers == 1 {
		i := round % n
		return append(dst, s.perm[i])
	}
	return s.sched.AppendPacketIndices(dst, layer, round, n)
}

// ratelessIndex folds an unbounded stream position into the valid index
// range [0, code.UnboundedN): a stream that outlives the space wraps onto
// long-consumed indices (harmless duplicates eons after their first
// emission) instead of ever emitting the out-of-range sentinel itself,
// which every bounds check in the stack rightly rejects.
func ratelessIndex(pos uint64) int {
	return int(pos % code.UnboundedN)
}

// IsSP reports whether the given round carries a synchronization point
// marker on this layer. SPs are more frequent on lower layers ("the rate
// at which SPs are sent is inversely proportional to the bandwidth").
func (s *Session) IsSP(layer, round int) bool {
	interval := s.cfg.SPInterval << uint(layer)
	return round%interval == 0
}

// BurstRound reports whether the given round is part of a sender burst
// (one round of doubled rate preceding each SP, §7.1.1).
func (s *Session) BurstRound(layer, round int) bool {
	interval := s.cfg.SPInterval << uint(layer)
	return round%interval == interval-1
}

// Receiver consumes fountain packets and reconstructs the file, keeping
// the efficiency accounting of §7.3: η = k/total, ηc = k/distinct,
// ηd = distinct/total.
type Receiver struct {
	info    proto.SessionInfo
	dec     code.Decoder
	total   int // packets accepted (right session, parseable)
	done    bool
	fileBuf []byte
}

// NewReceiver builds a receiver from the control descriptor. The receiver
// reconstructs the codec locally from the descriptor's parameters — no
// further server state is needed (the "advance agreement" of §5.1).
func NewReceiver(info proto.SessionInfo) (*Receiver, error) {
	cfg := Config{
		Codec:            info.Codec,
		PacketLen:        int(info.PacketLen),
		Stretch:          int(info.N / info.K),
		Layers:           int(info.Layers),
		Seed:             info.Seed,
		Session:          info.Session,
		InterleaveBlockK: int(info.InterleaveK),
		LTC:              float64(info.LTCMicro) / 1e6,
		LTDelta:          float64(info.LTDeltaMicro) / 1e6,
		RaptorChecks:     int(info.RaptorS),
		RaptorMaxD:       int(info.RaptorMaxD),
	}
	codec, err := buildCodec(cfg, int(info.K))
	if err != nil {
		return nil, err
	}
	if codec.N() != int(info.N) {
		return nil, fmt.Errorf("core: codec produced n=%d, descriptor says %d", codec.N(), info.N)
	}
	return &Receiver{info: info, dec: codec.NewDecoder()}, nil
}

// HandleRaw ingests one wire packet (header + payload + integrity
// trailer). Corrupted packets (proto.ErrBadTag), packets from other
// sessions, and malformed headers are rejected with an error before any
// byte reaches the decoder; duplicates are counted but ignored. It reports
// whether the file is now decodable.
func (r *Receiver) HandleRaw(pkt []byte) (bool, error) {
	h, payload, err := proto.ParsePacket(pkt)
	if err != nil {
		return r.done, err
	}
	if h.Session != r.info.Session {
		return r.done, fmt.Errorf("core: packet from session %#x, want %#x", h.Session, r.info.Session)
	}
	return r.Handle(int(h.Index), payload)
}

// Handle ingests a packet already stripped to (index, payload).
func (r *Receiver) Handle(idx int, payload []byte) (bool, error) {
	if r.done {
		return true, nil
	}
	r.total++
	done, err := r.dec.Add(idx, payload)
	if err != nil {
		r.total--
		return r.done, err
	}
	if done {
		r.done = true
	}
	return r.done, nil
}

// Done reports whether the file can be reconstructed.
func (r *Receiver) Done() bool { return r.done }

// File reassembles and verifies the file.
func (r *Receiver) File() ([]byte, error) {
	if r.fileBuf != nil {
		return r.fileBuf, nil
	}
	src, err := r.dec.Source()
	if err != nil {
		return nil, err
	}
	data, err := code.Join(src, int(r.info.FileLen))
	if err != nil {
		return nil, err
	}
	if got := proto.FNV64a(data); got != r.info.FileHash {
		return nil, fmt.Errorf("core: file hash mismatch: got %#x want %#x", got, r.info.FileHash)
	}
	// End-to-end proof: the reassembled bytes must match the catalog's
	// SHA-256 digest. A zero digest means the descriptor did not advertise
	// one (legacy or hand-built descriptors) and only the FNV check applies.
	if r.info.Digest != ([32]byte{}) {
		if got := sha256.Sum256(data); got != r.info.Digest {
			return nil, fmt.Errorf("core: file digest mismatch: got %x want %x", got, r.info.Digest)
		}
	}
	r.fileBuf = data
	return data, nil
}

// Released returns the decoder's symbol-release XOR count, or -1 when the
// decoder does not count releases (code.ReleaseCounter). A systematic
// rateless session on a lossless channel reports 0: every packet was
// stored verbatim, no decode work happened at all.
func (r *Receiver) Released() int {
	if rc, ok := r.dec.(code.ReleaseCounter); ok {
		return rc.Released()
	}
	return -1
}

// Stats returns (total received, distinct, k) for efficiency computation.
func (r *Receiver) Stats() (total, distinct, k int) {
	return r.total, r.dec.Received(), int(r.info.K)
}

// Efficiency returns the reception efficiency triple of §7.3.
func (r *Receiver) Efficiency() (eta, etaC, etaD float64) {
	total, distinct, k := r.Stats()
	if total == 0 || distinct == 0 {
		return 0, 0, 0
	}
	eta = float64(k) / float64(total)
	etaC = float64(k) / float64(distinct)
	etaD = float64(distinct) / float64(total)
	return
}
