package core

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/proto"
)

func lazySessionForCache(t *testing.T, cache *BlockCache, seed int64) (*Session, *Session) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, 60_000)
	rng.Read(data)
	cfg := DefaultConfig()
	cfg.Codec = proto.CodecCauchy
	cfg.Layers = 1
	cfg.PacketLen = 500
	cfg.LazyBlock = 8
	cfg.Seed = seed
	lazy, err := NewSessionCached(data, cfg, cache)
	if err != nil {
		t.Fatal(err)
	}
	if !lazy.Lazy() {
		t.Fatal("Cauchy session did not take the lazy path")
	}
	eager, err := NewSession(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return lazy, eager
}

// TestBlockCacheBudgetUnderConcurrency: with many goroutines hammering
// Get/Put through Session.Payload on two sessions sharing one cache, the
// charged byte count observable from outside must never exceed the budget
// (eviction runs inside the same critical section as the insert), and the
// recorded peak may overshoot by at most one in-flight block.
func TestBlockCacheBudgetUnderConcurrency(t *testing.T) {
	blockBytes := int64(8 * PadPacketLen(500))
	capBytes := 4 * blockBytes
	cache := NewBlockCache(capBytes)
	s1, e1 := lazySessionForCache(t, cache, 101)
	s2, e2 := lazySessionForCache(t, cache, 102)

	stop := make(chan struct{})
	violation := make(chan int64, 1)
	var monWG sync.WaitGroup
	monWG.Add(1)
	go func() {
		defer monWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if used := cache.Used(); used > capBytes {
				select {
				case violation <- used:
				default:
				}
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 400; i++ {
				sess, eager := s1, e1
				if g%2 == 1 {
					sess, eager = s2, e2
				}
				// Repair region only: the source prefix never touches the
				// cache by design.
				idx := sess.Codec().K() + rng.Intn(sess.Codec().N()-sess.Codec().K())
				if !bytes.Equal(sess.Payload(idx), eager.Payload(idx)) {
					t.Errorf("goroutine %d: lazy payload %d differs from eager", g, idx)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	monWG.Wait()
	select {
	case used := <-violation:
		t.Fatalf("cache used %d exceeded budget %d", used, capBytes)
	default:
	}
	if used := cache.Used(); used > capBytes {
		t.Fatalf("final used %d > cap %d", used, capBytes)
	}
	// Peak is recorded before the same-lock eviction, so it may exceed the
	// budget by at most one block insertion.
	if peak := cache.Peak(); peak > capBytes+blockBytes {
		t.Fatalf("peak %d blew past cap %d + one block %d", peak, capBytes, blockBytes)
	}
	hits, misses := cache.Stats()
	if hits == 0 || misses == 0 {
		t.Fatalf("degenerate traffic: hits=%d misses=%d", hits, misses)
	}
	// One combined probe = exactly one hit or one miss, even under
	// concurrency: the counts must tie out against the lookup count.
	st := cache.StatsSnapshot()
	if st.Hits+st.Misses != st.Lookups {
		t.Fatalf("probe accounting broken: hits %d + misses %d != lookups %d",
			st.Hits, st.Misses, st.Lookups)
	}
}

// TestBlockCacheLookupAndEvictionAccounting: a deterministic probe
// sequence against a one-block budget where every count is known in
// advance — each Payload on the repair region is exactly one lookup and
// one hit-or-miss (a combined primary/secondary probe must never count as
// two events), and each new block insert past the first evicts exactly the
// previous resident.
func TestBlockCacheLookupAndEvictionAccounting(t *testing.T) {
	blockBytes := int64(8 * PadPacketLen(500))
	cache := NewBlockCache(blockBytes) // room for exactly one full block
	sess, eager := lazySessionForCache(t, cache, 104)
	k := sess.Codec().K()
	blockPkts := sess.Config().LazyBlock

	firstRepairBlock := (k + blockPkts - 1) / blockPkts // first all-repair block
	const nBlocks = 4
	probes := 0
	for round := 0; round < 2; round++ {
		for b := 0; b < nBlocks; b++ {
			idx := (firstRepairBlock + b) * blockPkts
			if !bytes.Equal(sess.Payload(idx), eager.Payload(idx)) {
				t.Fatalf("block %d payload mismatch", b)
			}
			probes++
		}
	}

	st := cache.StatsSnapshot()
	if st.Lookups != uint64(probes) {
		t.Fatalf("lookups = %d, want one per probe (%d)", st.Lookups, probes)
	}
	if st.Hits+st.Misses != st.Lookups {
		t.Fatalf("hits %d + misses %d != lookups %d", st.Hits, st.Misses, st.Lookups)
	}
	// Cycling 4 distinct blocks through a 1-block cache: every probe
	// misses (the block touched 4 probes ago is long evicted). Eviction
	// count is exact: round one's full-block fills each displace their
	// predecessor (3 evictions), round two's first re-touch is a
	// single-packet refill whose insert displaces the last full block
	// (1 more); the remaining refills fit inside the freed budget. So all
	// 4 full blocks — and nothing else — get evicted.
	if st.Misses != uint64(probes) || st.Hits != 0 {
		t.Fatalf("cycling working set should always miss: hits=%d misses=%d", st.Hits, st.Misses)
	}
	if st.Evictions != nBlocks {
		t.Fatalf("evictions = %d, want %d (each full block displaced exactly once)",
			st.Evictions, nBlocks)
	}
	if st.EvictedBytes != nBlocks*uint64(blockBytes) {
		t.Fatalf("evicted bytes = %d, want %d", st.EvictedBytes, nBlocks*uint64(blockBytes))
	}
	pkt := int64(PadPacketLen(500))
	if st.Entries != nBlocks || st.Used != nBlocks*pkt {
		t.Fatalf("resident = %d entries / %d bytes, want %d single-packet refills (%d bytes)",
			st.Entries, st.Used, nBlocks, nBlocks*pkt)
	}

	// An immediate re-touch of the resident block is the one guaranteed
	// hit; the counters must move by exactly (1 lookup, 1 hit, 0 misses).
	idx := (firstRepairBlock + nBlocks - 1) * blockPkts
	sess.Payload(idx)
	st2 := cache.StatsSnapshot()
	if st2.Lookups != st.Lookups+1 || st2.Hits != st.Hits+1 || st2.Misses != st.Misses {
		t.Fatalf("hit accounting: lookups %d→%d hits %d→%d misses %d→%d",
			st.Lookups, st2.Lookups, st.Hits, st2.Hits, st.Misses, st2.Misses)
	}
}

// TestBlockCacheSinglePacketRefill: after a block's first full fill is
// evicted, re-touching one of its packets must take the single-packet
// refill path (one packet encoded and cached, not the whole block), and an
// immediate second touch of that packet must hit the refill entry.
func TestBlockCacheSinglePacketRefill(t *testing.T) {
	blockBytes := int64(8 * PadPacketLen(500))
	cache := NewBlockCache(2 * blockBytes)
	sess, eager := lazySessionForCache(t, cache, 103)
	k, n := sess.Codec().K(), sess.Codec().N()
	blockPkts := sess.Config().LazyBlock

	// First touch of a repair block: full-block fill (one miss).
	first := k + (n-k)/2
	first -= first % blockPkts // block-aligned repair index
	if !bytes.Equal(sess.Payload(first), eager.Payload(first)) {
		t.Fatal("first fill returned wrong payload")
	}
	_, missesAfterFill := cache.Stats()

	// Evict it by filling the 2-block budget with later blocks.
	for idx := first + blockPkts; idx < n && idx < first+4*blockPkts; idx += blockPkts {
		sess.Payload(idx)
	}
	if used := cache.Used(); used > 2*blockBytes {
		t.Fatalf("used %d > cap %d", used, 2*blockBytes)
	}

	// Re-touch: the block was already filled once, so only this packet is
	// encoded (a miss), charged as a single-packet entry.
	usedBefore := cache.Used()
	if !bytes.Equal(sess.Payload(first), eager.Payload(first)) {
		t.Fatal("post-eviction refill returned wrong payload")
	}
	_, missesAfterRefill := cache.Stats()
	if missesAfterRefill != missesAfterFill+4 { // 3 evictor blocks + this refill
		t.Fatalf("miss count %d, want %d", missesAfterRefill, missesAfterFill+4)
	}
	// The refill charges one packet; the insert may evict an LRU full
	// block to stay under budget, so net growth is at most one packet
	// (and possibly negative).
	growth := cache.Used() - usedBefore
	pkt := int64(PadPacketLen(500))
	if growth > pkt {
		t.Fatalf("refill grew cache by %d bytes, want one packet (%d) at most — whole block re-encoded?", growth, pkt)
	}

	// Second touch must hit the single-packet entry: no new miss.
	hitsBefore, missesBefore := cache.Stats()
	if !bytes.Equal(sess.Payload(first), eager.Payload(first)) {
		t.Fatal("refill hit returned wrong payload")
	}
	hitsAfter, missesAfter := cache.Stats()
	if missesAfter != missesBefore || hitsAfter != hitsBefore+1 {
		t.Fatalf("refill entry not hit: hits %d→%d misses %d→%d",
			hitsBefore, hitsAfter, missesBefore, missesAfter)
	}
}
