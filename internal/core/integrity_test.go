package core

import (
	"math/rand"
	"testing"

	"repro/internal/proto"
)

// TestPacketIntegrityTag: every emitted packet carries a valid CRC32C
// trailer, the receiver rejects any single corrupted byte with
// proto.ErrBadTag before the decoder sees it, and the corrupted packet
// does not move the reception counters.
func TestPacketIntegrityTag(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data := randData(rng, 20_000)
	cfg := DefaultConfig()
	cfg.Layers = 1
	s, err := NewSession(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReceiver(s.Info())
	if err != nil {
		t.Fatal(err)
	}
	pkt := s.Packet(0, 0, 1, 0)
	if len(pkt) != s.WireLen() {
		t.Fatalf("packet %d bytes, WireLen %d", len(pkt), s.WireLen())
	}
	if _, err := proto.VerifyPacket(pkt); err != nil {
		t.Fatalf("fresh packet fails verification: %v", err)
	}
	for _, pos := range []int{0, proto.HeaderLen, len(pkt) / 2, len(pkt) - 1} {
		bad := append([]byte(nil), pkt...)
		bad[pos] ^= 0x01
		if _, err := r.HandleRaw(bad); err != proto.ErrBadTag {
			t.Fatalf("flip at byte %d: err = %v, want ErrBadTag", pos, err)
		}
	}
	if total, _, _ := r.Stats(); total != 0 {
		t.Fatalf("corrupted packets reached the decoder: total = %d", total)
	}
	if _, err := r.HandleRaw(pkt); err != nil {
		t.Fatalf("intact packet rejected: %v", err)
	}
}

// TestCorruptedCatalogDigestRejected: a receiver whose catalog descriptor
// advertises a different SHA-256 digest — a poisoned catalog, or a mirror
// serving different bytes under the same session id — must refuse to hand
// the reassembled file over, even though the decode itself succeeded.
func TestCorruptedCatalogDigestRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	data := randData(rng, 20_000)
	cfg := DefaultConfig()
	cfg.Layers = 1
	s, err := NewSession(data, cfg)
	if err != nil {
		t.Fatal(err)
	}

	decodeAll := func(info proto.SessionInfo) *Receiver {
		r, err := NewReceiver(info)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; !r.Done(); round++ {
			for _, idx := range s.CarouselIndices(0, round) {
				if _, err := r.HandleRaw(s.Packet(idx, 0, uint32(round), 0)); err != nil {
					t.Fatal(err)
				}
			}
			if round > 10*s.Codec().N() {
				t.Fatal("decode never finished")
			}
		}
		return r
	}

	info := s.Info()
	if info.Digest == ([32]byte{}) {
		t.Fatal("session advertises no digest")
	}
	good := decodeAll(info)
	if _, err := good.File(); err != nil {
		t.Fatalf("honest digest rejected: %v", err)
	}

	info.Digest[7] ^= 0x80 // the catalog lied about the file
	bad := decodeAll(info)
	if _, err := bad.File(); err == nil {
		t.Fatal("file accepted against a corrupted catalog digest")
	}

	// The FNV hash alone (zero digest) keeps working for legacy
	// descriptors.
	legacy := s.Info()
	legacy.Digest = [32]byte{}
	if _, err := decodeAll(legacy).File(); err != nil {
		t.Fatalf("legacy descriptor (no digest) rejected: %v", err)
	}
}
