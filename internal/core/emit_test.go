package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/proto"
)

// poolEmitter is a minimal pooled RoundEmitter: one reused buffer per
// packet slot, so any divergence from fresh-allocation emission (buffer
// aliasing, stale bytes) surfaces as a packet mismatch.
type poolEmitter struct {
	free [][]byte
	out  []capturedPkt
}

type capturedPkt struct {
	layer int
	data  []byte
}

func (p *poolEmitter) PacketBuf(size int) []byte {
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free = p.free[:n-1]
		if cap(b) >= size {
			return b[:0]
		}
	}
	return make([]byte, 0, size)
}

func (p *poolEmitter) Emit(layer int, pkt []byte) error {
	// Copy out (the pooled buffer is recycled), then recycle.
	p.out = append(p.out, capturedPkt{layer, append([]byte(nil), pkt...)})
	p.free = append(p.free, pkt[:0])
	return nil
}

// TestNextRoundToMatchesNextRound: for every session shape — layered,
// single-layer, and rateless — emission through a pooled RoundEmitter must
// be bit-identical, packet for packet and layer for layer, to the
// fresh-allocation NextRound path.
func TestNextRoundToMatchesNextRound(t *testing.T) {
	data := make([]byte, 40_000)
	rand.New(rand.NewSource(9)).Read(data)
	shapes := []struct {
		name string
		mod  func(*Config)
	}{
		{"layered-tornado", func(c *Config) {}},
		{"single-layer", func(c *Config) { c.Layers = 1 }},
		{"rateless-lt", func(c *Config) { c.Codec = proto.CodecLT }},
		{"rateless-layered", func(c *Config) { c.Codec = proto.CodecLT; c.Layers = 4 }},
	}
	for _, shape := range shapes {
		t.Run(shape.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.SPInterval = 4 // exercise SP and burst flags within the window
			shape.mod(&cfg)
			sess, err := NewSession(data, cfg)
			if err != nil {
				t.Fatal(err)
			}
			const phase, rounds = 3, 40
			ref := NewCarouselAt(sess, phase)
			var want []capturedPkt
			for r := 0; r < rounds; r++ {
				err := ref.NextRound(func(layer int, pkt []byte) error {
					want = append(want, capturedPkt{layer, pkt})
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			}
			pooled := NewCarouselAt(sess, phase)
			em := &poolEmitter{}
			for r := 0; r < rounds; r++ {
				if err := pooled.NextRoundTo(em); err != nil {
					t.Fatal(err)
				}
			}
			if len(em.out) != len(want) {
				t.Fatalf("pooled path emitted %d packets, want %d", len(em.out), len(want))
			}
			for i := range want {
				if em.out[i].layer != want[i].layer || !bytes.Equal(em.out[i].data, want[i].data) {
					t.Fatalf("packet %d diverges (layer %d vs %d)", i, em.out[i].layer, want[i].layer)
				}
			}
			if pooled.Sent() != ref.Sent() || pooled.Round() != ref.Round() {
				t.Fatalf("carousel counters diverge: sent %d/%d round %d/%d",
					pooled.Sent(), ref.Sent(), pooled.Round(), ref.Round())
			}
		})
	}
}

// TestAppendPacketMatchesPacket: the append form over a capacity buffer
// must produce the same bytes as the allocating form.
func TestAppendPacketMatchesPacket(t *testing.T) {
	cfg := DefaultConfig()
	sess, err := NewSession(bytes.Repeat([]byte{7}, 9_000), cfg)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 0, sess.WireLen())
	for idx := 0; idx < sess.Codec().N(); idx += 5 {
		want := sess.Packet(idx, 2, uint32(idx+1), proto.FlagSP)
		got := sess.AppendPacket(buf[:0], idx, 2, uint32(idx+1), proto.FlagSP)
		if !bytes.Equal(got, want) {
			t.Fatalf("AppendPacket(%d) diverges from Packet", idx)
		}
		if len(want) != sess.WireLen() {
			t.Fatalf("packet length %d, WireLen %d", len(want), sess.WireLen())
		}
	}
}
