package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/proto"
)

func randData(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestSessionRoundTripAllCodecs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := randData(rng, 50_000)
	for _, codec := range []uint8{proto.CodecTornadoA, proto.CodecTornadoB, proto.CodecVandermonde, proto.CodecCauchy, proto.CodecInterleaved} {
		cfg := DefaultConfig()
		cfg.Codec = codec
		cfg.Layers = 1
		cfg.InterleaveBlockK = 20
		s, err := NewSession(data, cfg)
		if err != nil {
			t.Fatalf("codec %d: %v", codec, err)
		}
		r, err := NewReceiver(s.Info())
		if err != nil {
			t.Fatalf("codec %d: %v", codec, err)
		}
		for round := 0; !r.Done(); round++ {
			for _, idx := range s.CarouselIndices(0, round) {
				if _, err := r.HandleRaw(s.Packet(idx, 0, uint32(round), 0)); err != nil {
					t.Fatalf("codec %d: %v", codec, err)
				}
			}
			if round > 10*s.Codec().N() {
				t.Fatalf("codec %d: never finished", codec)
			}
		}
		got, err := r.File()
		if err != nil {
			t.Fatalf("codec %d: %v", codec, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("codec %d: file corrupted", codec)
		}
	}
}

func TestReceiverWithLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := randData(rng, 30_000)
	cfg := DefaultConfig()
	cfg.Layers = 1
	s, err := NewSession(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := NewReceiver(s.Info())
	round := 0
	for !r.Done() {
		for _, idx := range s.CarouselIndices(0, round) {
			if rng.Float64() < 0.5 { // 50% loss
				continue
			}
			r.HandleRaw(s.Packet(idx, 0, uint32(round), 0))
		}
		round++
		if round > 100*s.Codec().N() {
			t.Fatal("never finished under 50% loss")
		}
	}
	got, err := r.File()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("file corrupted")
	}
	eta, etaC, etaD := r.Efficiency()
	if eta <= 0 || eta > 1 || etaC <= 0 || etaC > 1.01 || etaD <= 0 || etaD > 1 {
		t.Fatalf("implausible efficiencies: %v %v %v", eta, etaC, etaD)
	}
}

func TestLayeredCarouselOneLevelProperty(t *testing.T) {
	// A receiver at a fixed level over one cumulative period must see no
	// duplicate indices (One Level Property at the session level).
	rng := rand.New(rand.NewSource(3))
	data := randData(rng, 64_000)
	cfg := DefaultConfig()
	cfg.Layers = 4
	s, err := NewSession(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := s.Codec().N()
	for level := 0; level < 4; level++ {
		seen := make(map[int]bool)
		period := 1 << (3 - level) // CumulativePeriod for g=4
		for round := 0; round < period; round++ {
			for layer := 0; layer <= level; layer++ {
				for _, idx := range s.CarouselIndices(layer, round) {
					if seen[idx] {
						t.Fatalf("level %d: duplicate index %d within one period", level, idx)
					}
					seen[idx] = true
				}
			}
		}
		if len(seen) != n {
			t.Fatalf("level %d: period covers %d of %d packets", level, len(seen), n)
		}
	}
}

func TestSessionRejectsWrongSession(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := randData(rng, 5000)
	cfg := DefaultConfig()
	s, _ := NewSession(data, cfg)
	r, _ := NewReceiver(s.Info())
	pkt := s.Packet(0, 0, 0, 0)
	pkt[10] ^= 0xFF // corrupt session id
	if _, err := r.HandleRaw(pkt); err == nil {
		t.Fatal("wrong-session packet accepted")
	}
	if _, err := r.HandleRaw([]byte{1, 2}); err == nil {
		t.Fatal("short packet accepted")
	}
	total, _, _ := r.Stats()
	if total != 0 {
		t.Fatal("rejected packets counted")
	}
}

func TestFileHashVerification(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := randData(rng, 5000)
	cfg := DefaultConfig()
	cfg.Layers = 1
	s, _ := NewSession(data, cfg)
	info := s.Info()
	info.FileHash ^= 1 // sabotage
	r, _ := NewReceiver(info)
	for round := 0; !r.Done(); round++ {
		for _, idx := range s.CarouselIndices(0, round) {
			r.HandleRaw(s.Packet(idx, 0, uint32(round), 0))
		}
	}
	if _, err := r.File(); err == nil {
		t.Fatal("hash mismatch not detected")
	}
}

func TestSPAndBurstCadence(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cfg := DefaultConfig()
	cfg.SPInterval = 4
	s, _ := NewSession(randData(rng, 10000), cfg)
	// Layer 0 SPs every 4 rounds, layer 1 every 8.
	if !s.IsSP(0, 0) || !s.IsSP(0, 4) || s.IsSP(0, 2) {
		t.Fatal("layer 0 SP cadence wrong")
	}
	if !s.IsSP(1, 8) || s.IsSP(1, 4) {
		t.Fatal("layer 1 SP cadence wrong")
	}
	if !s.BurstRound(0, 3) || s.BurstRound(0, 0) {
		t.Fatal("burst cadence wrong")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewSession([]byte{1}, Config{Stretch: 1, Layers: 1, PacketLen: 16}); err == nil {
		t.Fatal("stretch 1 accepted")
	}
	if _, err := NewSession([]byte{1}, Config{Stretch: 2, Layers: 0, PacketLen: 16}); err == nil {
		t.Fatal("0 layers accepted")
	}
	if _, err := NewSession([]byte{1}, Config{Stretch: 2, Layers: 1, PacketLen: 16, Codec: 99}); err == nil {
		t.Fatal("unknown codec accepted")
	}
}

func TestPadPacketLen(t *testing.T) {
	if PadPacketLen(500) != 512 || PadPacketLen(512) != 512 || PadPacketLen(1) != 16 {
		t.Fatal("padding wrong")
	}
}

func TestEmptyishFile(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Layers = 1
	s, err := NewSession([]byte{42}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := NewReceiver(s.Info())
	for round := 0; !r.Done(); round++ {
		for _, idx := range s.CarouselIndices(0, round) {
			r.HandleRaw(s.Packet(idx, 0, 0, 0))
		}
	}
	got, err := r.File()
	if err != nil || len(got) != 1 || got[0] != 42 {
		t.Fatalf("tiny file: %v %v", got, err)
	}
}
