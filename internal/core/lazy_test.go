package core

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/proto"
)

func lazyTestConfig(codec uint8) Config {
	cfg := DefaultConfig()
	cfg.Codec = codec
	cfg.Layers = 1
	cfg.LazyBlock = 16
	return cfg
}

// TestLazyMatchesEager: every packet of a lazy session must be byte-identical
// to the eager session's, for every range-encodable codec.
func TestLazyMatchesEager(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	data := make([]byte, 60_000)
	rng.Read(data)
	for _, codec := range []uint8{proto.CodecCauchy, proto.CodecVandermonde, proto.CodecInterleaved} {
		cfg := lazyTestConfig(codec)
		eager, err := NewSession(data, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cache := NewBlockCache(1 << 30) // effectively unbounded
		lazy, err := NewSessionCached(data, cfg, cache)
		if err != nil {
			t.Fatal(err)
		}
		if !lazy.Lazy() {
			t.Fatalf("codec %d: session not lazy", codec)
		}
		if eager.Lazy() {
			t.Fatal("eager session claims lazy")
		}
		n := eager.Codec().N()
		// Touch out of order to exercise block-boundary arithmetic.
		order := rng.Perm(n)
		for _, i := range order {
			if !bytes.Equal(lazy.Payload(i), eager.Payload(i)) {
				t.Fatalf("codec %d: payload %d differs between lazy and eager", codec, i)
			}
		}
		// Wire packets must agree too (header + payload).
		for _, i := range []int{0, 1, n / 2, n - 1} {
			if !bytes.Equal(lazy.Packet(i, 0, 7, 0), eager.Packet(i, 0, 7, 0)) {
				t.Fatalf("codec %d: packet %d differs", codec, i)
			}
		}
	}
}

// TestLazyCacheBounded: with a cap far below full materialization, walking
// the whole carousel repeatedly must keep the cache's peak within one block
// of the cap — the memory-bounded property the multi-session service relies
// on.
func TestLazyCacheBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	data := make([]byte, 120_000)
	rng.Read(data)
	cfg := lazyTestConfig(proto.CodecCauchy)
	cache := NewBlockCache(16 << 10) // 16 KiB; repair region is ~120 KB
	sess, err := NewSessionCached(data, cfg, cache)
	if err != nil {
		t.Fatal(err)
	}
	n := sess.Codec().N()
	k := sess.Codec().K()
	blockBytes := int64(cfg.LazyBlock * PadPacketLen(cfg.PacketLen))
	fullRepair := int64(n-k) * int64(PadPacketLen(cfg.PacketLen))
	if cache.Cap()+blockBytes >= fullRepair {
		t.Fatalf("test misconfigured: cap %d not clearly below full materialization %d", cache.Cap(), fullRepair)
	}
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < n; i++ {
			sess.Payload(i)
		}
	}
	if peak := cache.Peak(); peak > cache.Cap()+blockBytes {
		t.Fatalf("cache peak %d exceeds cap %d + one block %d", peak, cache.Cap(), blockBytes)
	}
	if used := cache.Used(); used > cache.Cap() {
		t.Fatalf("steady-state cache use %d exceeds cap %d", used, cache.Cap())
	}
	hits, misses := cache.Stats()
	if hits == 0 || misses == 0 {
		t.Fatalf("expected both hits and misses, got %d/%d", hits, misses)
	}
}

// TestLazySourceBytesNotCharged: blocks that lie entirely in the systematic
// prefix alias the file buffer and must not consume cache budget.
func TestLazySourceBytesNotCharged(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	data := make([]byte, 60_000)
	rng.Read(data)
	cfg := lazyTestConfig(proto.CodecCauchy)
	cache := NewBlockCache(1 << 30)
	sess, err := NewSessionCached(data, cfg, cache)
	if err != nil {
		t.Fatal(err)
	}
	k := sess.Codec().K()
	// Touch only source-prefix blocks.
	for i := 0; i < k-cfg.LazyBlock; i += cfg.LazyBlock {
		sess.Payload(i)
	}
	if used := cache.Used(); used != 0 {
		t.Fatalf("source-only touches charged %d bytes", used)
	}
}

// TestLazyTornadoFallsBackToEager: Tornado cannot range-encode; a cached
// construction must still work, just eagerly.
func TestLazyTornadoFallsBackToEager(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	data := make([]byte, 30_000)
	rng.Read(data)
	cfg := lazyTestConfig(proto.CodecTornadoA)
	cache := NewBlockCache(1 << 20)
	sess, err := NewSessionCached(data, cfg, cache)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Lazy() {
		t.Fatal("tornado session claims lazy encoding")
	}
	if used := cache.Used(); used != 0 {
		t.Fatalf("eager fallback touched the cache: %d bytes", used)
	}
	sess.Payload(sess.Codec().N() - 1) // must not panic
}

// TestLazyConcurrentReaders: many goroutines hammering Payload through a
// tiny cache must agree with the eager encoding (run under -race).
func TestLazyConcurrentReaders(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	data := make([]byte, 40_000)
	rng.Read(data)
	cfg := lazyTestConfig(proto.CodecVandermonde)
	eager, err := NewSession(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewBlockCache(8 << 10)
	lazy, err := NewSessionCached(data, cfg, cache)
	if err != nil {
		t.Fatal(err)
	}
	n := lazy.Codec().N()
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 400; i++ {
				idx := r.Intn(n)
				if !bytes.Equal(lazy.Payload(idx), eager.Payload(idx)) {
					select {
					case errs <- "payload mismatch under concurrency":
					default:
					}
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
}
