package core

import (
	"container/list"
	"sync"
)

// BlockCache is a shared, byte-bounded LRU cache of lazily encoded packet
// blocks. One cache serves many sessions: a fountain service hands the same
// BlockCache to every NewSessionCached call, so the total memory spent on
// repair packets across all resident files stays under one budget instead
// of each session materializing its full stretch-factor-n encoding.
//
// Only bytes that are not aliases of a session's source packets are charged
// against the budget (source entries returned by EncodeRange alias the
// session's file buffer and cost nothing extra). The budget is a high-water
// mark for charged bytes: eviction runs at insert time, and the one block
// being inserted is always retained even if it alone exceeds the cap.
//
// All methods are safe for concurrent use. Racing fills of the same block
// may encode it twice; the loser's work is discarded (the schedules are
// deterministic, so both copies are identical).
type BlockCache struct {
	mu           sync.Mutex
	cap          int64
	used         int64
	peak         int64
	lookups      uint64 // combined get2 probes; invariant: hits + misses == lookups
	hits         uint64
	misses       uint64
	evictions    uint64     // entries removed to restore the budget (not Drop)
	evictedBytes uint64     // charged bytes reclaimed by those evictions
	ll           *list.List // front = most recently used
	entries      map[cacheKey]*list.Element
}

type cacheKey struct {
	owner *Session
	block int
}

type cacheEntry struct {
	key   cacheKey
	pkts  [][]byte
	bytes int64 // charged (non-aliased) bytes
}

// NewBlockCache creates a cache with the given byte budget. capBytes <= 0
// means "cache nothing beyond the block currently in use" (every insert
// immediately evicts everything else) — still correct, maximally frugal.
func NewBlockCache(capBytes int64) *BlockCache {
	return &BlockCache{cap: capBytes, ll: list.New(), entries: make(map[cacheKey]*list.Element)}
}

// Cap returns the configured byte budget.
func (c *BlockCache) Cap() int64 { return c.cap }

// Used returns the currently charged bytes.
func (c *BlockCache) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Peak returns the high-water mark of charged bytes over the cache's life.
func (c *BlockCache) Peak() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.peak
}

// Stats returns (hits, misses) of block lookups.
func (c *BlockCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// CacheStats is a consistent snapshot of the cache's accounting, read under
// one lock acquisition so the invariant Hits+Misses == Lookups holds in
// every snapshot even while other goroutines probe concurrently.
type CacheStats struct {
	Lookups      uint64 // combined get2 probes (one per Payload cache path)
	Hits         uint64
	Misses       uint64
	Evictions    uint64 // entries evicted to restore the byte budget
	EvictedBytes uint64 // charged bytes reclaimed by those evictions
	Used         int64  // currently charged bytes
	Peak         int64  // high-water mark of charged bytes
	Cap          int64  // configured budget
	Entries      int    // resident blocks
}

// StatsSnapshot returns the full accounting picture. Each lookup counts
// exactly one hit or one miss — a combined primary/secondary probe is one
// lookup, never two — so Hits+Misses == Lookups always.
func (c *BlockCache) StatsSnapshot() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Lookups:      c.lookups,
		Hits:         c.hits,
		Misses:       c.misses,
		Evictions:    c.evictions,
		EvictedBytes: c.evictedBytes,
		Used:         c.used,
		Peak:         c.peak,
		Cap:          c.cap,
		Entries:      c.ll.Len(),
	}
}

// get2 returns the cached run under the primary key, else the secondary
// key (fromPrimary reports which), else nil — counting exactly one hit or
// miss for the combined probe.
func (c *BlockCache) get2(owner *Session, primary, secondary int) (pkts [][]byte, fromPrimary bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lookups++
	if el, ok := c.entries[cacheKey{owner, primary}]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry).pkts, true
	}
	if el, ok := c.entries[cacheKey{owner, secondary}]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry).pkts, false
	}
	c.misses++
	return nil, false
}

// put inserts a filled block and evicts least-recently-used blocks until the
// budget holds (never evicting the block just inserted). If a racing fill
// already inserted the same key, the existing entry wins and is returned.
func (c *BlockCache) put(owner *Session, block int, pkts [][]byte, bytes int64) [][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := cacheKey{owner, block}
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry).pkts
	}
	el := c.ll.PushFront(&cacheEntry{key: key, pkts: pkts, bytes: bytes})
	c.entries[key] = el
	c.used += bytes
	if c.used > c.peak {
		c.peak = c.used
	}
	for c.used > c.cap && c.ll.Len() > 1 {
		back := c.ll.Back()
		ent := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.entries, ent.key)
		c.used -= ent.bytes
		c.evictions++
		c.evictedBytes += uint64(ent.bytes)
	}
	return pkts
}

// Drop removes every block owned by the session (used when a service
// unregisters a session).
func (c *BlockCache) Drop(owner *Session) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		ent := el.Value.(*cacheEntry)
		if ent.key.owner == owner {
			c.ll.Remove(el)
			delete(c.entries, ent.key)
			c.used -= ent.bytes
		}
		el = next
	}
}
