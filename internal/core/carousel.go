package core

import "repro/internal/proto"

// Carousel walks a session's transmission schedule as a stream of wire
// packets: it tracks the round counter and the per-layer serial numbers,
// stamps headers (SP and burst markers per §7.1.1, serials for loss
// measurement), and hands each packet to an emit callback. It holds all the
// mutable transmission state, so the Session itself stays immutable and one
// session can feed any number of independent carousels (one per service
// sender goroutine, one per simulated run, ...).
//
// A Carousel is not safe for concurrent use; give each goroutine its own.
type Carousel struct {
	sess    *Session
	serials []uint32
	phase   int
	round   int
	sent    int
	idxBuf  []int // per-round index scratch, reused so emission is alloc-free
}

// NewCarousel starts a fresh carousel over the session (round 0, all
// serials at 0).
func NewCarousel(sess *Session) *Carousel {
	return NewCarouselAt(sess, 0)
}

// NewCarouselAt starts a carousel whose first emitted round is `phase`
// (serials still start at 0 — they are a property of this sender's stream,
// not of the schedule position). Mirrors sharing a session seed start at
// staggered phases so a multi-source receiver sees mostly-disjoint packets
// early in the download (§8). A negative phase is treated as 0.
func NewCarouselAt(sess *Session, phase int) *Carousel {
	if phase < 0 {
		phase = 0
	}
	return &Carousel{
		sess:    sess,
		serials: make([]uint32, sess.Config().Layers),
		phase:   phase,
		round:   phase,
	}
}

// Session returns the session the carousel transmits.
func (c *Carousel) Session() *Session { return c.sess }

// Phase returns the round the carousel started at.
func (c *Carousel) Phase() int { return c.phase }

// Round returns the next round number to be sent.
func (c *Carousel) Round() int { return c.round }

// Rounds returns the number of rounds emitted so far (Round minus the
// starting phase).
func (c *Carousel) Rounds() int { return c.round - c.phase }

// Sent returns the total number of packets emitted so far.
func (c *Carousel) Sent() int { return c.sent }

// RoundEmitter receives one round's packets from NextRoundTo. PacketBuf
// supplies the buffer each packet is built into (length 0, capacity at
// least size — pooled senders hand out reusable buffers, so steady-state
// emission allocates nothing); Emit receives the filled packet, in
// schedule order, layer by layer. A packet handed to Emit aliases the
// PacketBuf buffer that preceded it.
type RoundEmitter interface {
	PacketBuf(size int) []byte
	Emit(layer int, pkt []byte) error
}

// funcEmitter adapts a plain emit callback to RoundEmitter, preserving
// NextRound's historical behavior: every packet in a fresh allocation.
type funcEmitter struct {
	emit func(layer int, pkt []byte) error
}

func (f *funcEmitter) PacketBuf(size int) []byte { return make([]byte, 0, size) }

func (f *funcEmitter) Emit(layer int, pkt []byte) error { return f.emit(layer, pkt) }

// NextRound emits one full round across all layers and advances the round
// counter, handing each packet to emit in a freshly allocated buffer. The
// first packet of an SP round carries the SP flag; packets of a burst
// round carry the burst flag (the doubled instantaneous rate of §7.1.1 is
// applied by the caller's pacing, not by duplicating content). Emission
// stops at the first emit error, which is returned.
func (c *Carousel) NextRound(emit func(layer int, pkt []byte) error) error {
	fe := funcEmitter{emit: emit}
	return c.NextRoundTo(&fe)
}

// NextRoundTo is NextRound over a RoundEmitter: packets are built in
// emitter-supplied buffers, so a pooled emitter makes steady-state
// emission allocation-free. Packet bytes and emission order are identical
// to NextRound's — the emitter only changes where the bytes live.
func (c *Carousel) NextRoundTo(em RoundEmitter) error {
	round := c.round
	c.round++
	layers := c.sess.Config().Layers
	size := c.sess.WireLen()
	for layer := 0; layer < layers; layer++ {
		c.idxBuf = c.sess.AppendCarouselIndices(c.idxBuf[:0], layer, round)
		var flags uint8
		if c.sess.IsSP(layer, round) {
			flags |= proto.FlagSP
		}
		if c.sess.BurstRound(layer, round) {
			flags |= proto.FlagBurst
		}
		for pi, idx := range c.idxBuf {
			f := flags
			if pi > 0 {
				f &^= proto.FlagSP // SP marks only the round's first packet
			}
			c.serials[layer]++
			pkt := c.sess.AppendPacket(em.PacketBuf(size), idx, uint8(layer), c.serials[layer], f)
			if err := em.Emit(layer, pkt); err != nil {
				return err
			}
			c.sent++
		}
	}
	return nil
}

// BurstNext reports whether the upcoming round is a burst round on the base
// layer — the pacing hint a real-time sender uses to send it back-to-back
// with its predecessor (double instantaneous rate).
func (c *Carousel) BurstNext() bool { return c.sess.BurstRound(0, c.round) }
