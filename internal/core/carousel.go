package core

import "repro/internal/proto"

// Carousel walks a session's transmission schedule as a stream of wire
// packets: it tracks the round counter and the per-layer serial numbers,
// stamps headers (SP and burst markers per §7.1.1, serials for loss
// measurement), and hands each packet to an emit callback. It holds all the
// mutable transmission state, so the Session itself stays immutable and one
// session can feed any number of independent carousels (one per service
// sender goroutine, one per simulated run, ...).
//
// A Carousel is not safe for concurrent use; give each goroutine its own.
type Carousel struct {
	sess    *Session
	serials []uint32
	phase   int
	round   int
	sent    int
}

// NewCarousel starts a fresh carousel over the session (round 0, all
// serials at 0).
func NewCarousel(sess *Session) *Carousel {
	return NewCarouselAt(sess, 0)
}

// NewCarouselAt starts a carousel whose first emitted round is `phase`
// (serials still start at 0 — they are a property of this sender's stream,
// not of the schedule position). Mirrors sharing a session seed start at
// staggered phases so a multi-source receiver sees mostly-disjoint packets
// early in the download (§8). A negative phase is treated as 0.
func NewCarouselAt(sess *Session, phase int) *Carousel {
	if phase < 0 {
		phase = 0
	}
	return &Carousel{
		sess:    sess,
		serials: make([]uint32, sess.Config().Layers),
		phase:   phase,
		round:   phase,
	}
}

// Session returns the session the carousel transmits.
func (c *Carousel) Session() *Session { return c.sess }

// Phase returns the round the carousel started at.
func (c *Carousel) Phase() int { return c.phase }

// Round returns the next round number to be sent.
func (c *Carousel) Round() int { return c.round }

// Rounds returns the number of rounds emitted so far (Round minus the
// starting phase).
func (c *Carousel) Rounds() int { return c.round - c.phase }

// Sent returns the total number of packets emitted so far.
func (c *Carousel) Sent() int { return c.sent }

// NextRound emits one full round across all layers and advances the round
// counter. The first packet of an SP round carries the SP flag; packets of
// a burst round carry the burst flag (the doubled instantaneous rate of
// §7.1.1 is applied by the caller's pacing, not by duplicating content).
// Emission stops at the first emit error, which is returned.
func (c *Carousel) NextRound(emit func(layer int, pkt []byte) error) error {
	round := c.round
	c.round++
	layers := c.sess.Config().Layers
	for layer := 0; layer < layers; layer++ {
		idxs := c.sess.CarouselIndices(layer, round)
		var flags uint8
		if c.sess.IsSP(layer, round) {
			flags |= proto.FlagSP
		}
		if c.sess.BurstRound(layer, round) {
			flags |= proto.FlagBurst
		}
		for pi, idx := range idxs {
			f := flags
			if pi > 0 {
				f &^= proto.FlagSP // SP marks only the round's first packet
			}
			c.serials[layer]++
			pkt := c.sess.Packet(idx, uint8(layer), c.serials[layer], f)
			if err := emit(layer, pkt); err != nil {
				return err
			}
			c.sent++
		}
	}
	return nil
}

// BurstNext reports whether the upcoming round is a burst round on the base
// layer — the pacing hint a real-time sender uses to send it back-to-back
// with its predecessor (double instantaneous rate).
func (c *Carousel) BurstNext() bool { return c.sess.BurstRound(0, c.round) }
