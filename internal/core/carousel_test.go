package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/proto"
)

func carouselSession(t *testing.T, layers int) *Session {
	t.Helper()
	rng := rand.New(rand.NewSource(51))
	data := make([]byte, 30_000)
	rng.Read(data)
	cfg := DefaultConfig()
	cfg.Layers = layers
	cfg.SPInterval = 4
	s, err := NewSession(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCarouselSerialsAndFlags: the extracted carousel must stamp dense
// per-layer serials, carry SP only on a round's first packet, and count
// rounds/sent like the engine it replaced.
func TestCarouselSerialsAndFlags(t *testing.T) {
	sess := carouselSession(t, 4)
	car := NewCarousel(sess)
	next := map[int]uint32{}
	spPerRound := 0
	for round := 0; round < 8; round++ {
		spThisRound := map[int]int{}
		err := car.NextRound(func(layer int, pkt []byte) error {
			h, _, err := proto.ParseHeader(pkt)
			if err != nil {
				return err
			}
			if int(h.Group) != layer {
				t.Fatalf("group %d on layer %d", h.Group, layer)
			}
			next[layer]++
			if h.Serial != next[layer] {
				t.Fatalf("layer %d serial %d, want %d", layer, h.Serial, next[layer])
			}
			if h.Flags&proto.FlagSP != 0 {
				spThisRound[layer]++
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for layer, n := range spThisRound {
			if n > 1 {
				t.Fatalf("round %d layer %d carried %d SPs", round, layer, n)
			}
			spPerRound++
		}
	}
	if car.Round() != 8 {
		t.Fatalf("round = %d, want 8", car.Round())
	}
	sent := 0
	for _, n := range next {
		sent += int(n)
	}
	if car.Sent() != sent {
		t.Fatalf("sent = %d, delivered %d", car.Sent(), sent)
	}
	if spPerRound == 0 {
		t.Fatal("no SPs observed")
	}
}

// TestCarouselIndependentStreams: two carousels over one session are
// independent — same schedule, separate serial state — which is what lets a
// service restart a session's sender without disturbing the session.
func TestCarouselIndependentStreams(t *testing.T) {
	sess := carouselSession(t, 2)
	a, b := NewCarousel(sess), NewCarousel(sess)
	var pa, pb [][]byte
	collect := func(dst *[][]byte) func(int, []byte) error {
		return func(_ int, pkt []byte) error {
			cp := make([]byte, len(pkt))
			copy(cp, pkt)
			*dst = append(*dst, cp)
			return nil
		}
	}
	for i := 0; i < 6; i++ {
		if err := a.NextRound(collect(&pa)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		if err := b.NextRound(collect(&pb)); err != nil {
			t.Fatal(err)
		}
	}
	if len(pa) == 0 || len(pa) != len(pb) {
		t.Fatalf("stream lengths differ: %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if !bytes.Equal(pa[i], pb[i]) {
			t.Fatalf("packet %d differs between equivalent carousels", i)
		}
	}
}

// TestCarouselEmitError: an emit failure must propagate out of NextRound.
func TestCarouselEmitError(t *testing.T) {
	sess := carouselSession(t, 1)
	car := NewCarousel(sess)
	boom := bytes.ErrTooLarge
	if err := car.NextRound(func(int, []byte) error { return boom }); err != boom {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

// TestCarouselPhaseOffset: a phased carousel must emit exactly the packet
// stream of an unphased one fast-forwarded by `phase` rounds — same
// indices, same SP/burst flags — while stamping its own serials from 1
// (serials belong to the sender's stream, not the schedule position).
func TestCarouselPhaseOffset(t *testing.T) {
	for _, layers := range []int{1, 4} {
		sess := carouselSession(t, layers)
		const phase = 5
		ref, phased := NewCarousel(sess), NewCarouselAt(sess, phase)
		if phased.Phase() != phase || phased.Round() != phase || phased.Rounds() != 0 {
			t.Fatalf("phase accessors: %d %d %d", phased.Phase(), phased.Round(), phased.Rounds())
		}
		type emission struct {
			layer int
			idx   uint32
			flags uint8
		}
		collect := func(car *Carousel, rounds int) []emission {
			var out []emission
			for i := 0; i < rounds; i++ {
				if err := car.NextRound(func(layer int, pkt []byte) error {
					h, _, err := proto.ParseHeader(pkt)
					if err != nil {
						return err
					}
					out = append(out, emission{layer, h.Index, h.Flags})
					return nil
				}); err != nil {
					t.Fatal(err)
				}
			}
			return out
		}
		refEm := collect(ref, phase+3)
		gotEm := collect(phased, 3)
		if phased.Rounds() != 3 {
			t.Fatalf("Rounds() = %d after 3 rounds", phased.Rounds())
		}
		// Locate where the phased stream should start inside the reference:
		// skip the first `phase` rounds' emissions.
		skip := 0
		{
			probe := NewCarousel(sess)
			for i := 0; i < phase; i++ {
				probe.NextRound(func(int, []byte) error { return nil })
			}
			skip = probe.Sent()
		}
		want := refEm[skip:]
		if len(gotEm) != len(want) {
			t.Fatalf("layers=%d: %d emissions, want %d", layers, len(gotEm), len(want))
		}
		for i := range want {
			if gotEm[i] != want[i] {
				t.Fatalf("layers=%d emission %d: %+v, want %+v", layers, i, gotEm[i], want[i])
			}
		}
	}
}

// TestCarouselNegativePhaseClamped: a negative phase behaves as 0.
func TestCarouselNegativePhaseClamped(t *testing.T) {
	sess := carouselSession(t, 1)
	car := NewCarouselAt(sess, -3)
	if car.Phase() != 0 || car.Round() != 0 {
		t.Fatalf("negative phase not clamped: %d/%d", car.Phase(), car.Round())
	}
}
