package gf

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// Differential tests pinning the word-wide kernels to the scalar reference
// implementations across odd lengths, unaligned offsets, and the special
// coefficients 0 and 1.

// unaligned returns a length-n slice whose backing array starts at the given
// byte offset, so the word kernels exercise genuinely unaligned loads.
func unaligned(n, off int, rng *rand.Rand) []byte {
	buf := make([]byte, n+off+8)
	rng.Read(buf)
	return buf[off : off+n]
}

func TestMulSliceAddTab16MatchesScalar(t *testing.T) {
	f := New16()
	rng := rand.New(rand.NewSource(11))
	coeffs := []uint32{2, 3, 0x8000, 0xFFFF}
	for i := 0; i < 64; i++ {
		coeffs = append(coeffs, uint32(1+rng.Intn(f.n-1)))
	}
	for _, n := range []int{0, 2, 4, 6, 8, 10, 14, 16, 30, 62, 66, 126, 1022, 1024} {
		for _, off := range []int{0, 1, 3, 7} {
			for _, c := range coeffs {
				tab := f.MulTab(c)
				src := unaligned(n, off, rng)
				dst := unaligned(n, off, rng)
				want := make([]byte, n)
				copy(want, dst)
				mulSliceAddTab16Scalar(tab, want, src)
				mulSliceAddTab16(tab, dst, src)
				if !bytes.Equal(dst, want) {
					t.Fatalf("n=%d off=%d c=%#x: word kernel diverges from scalar", n, off, c)
				}
			}
		}
	}
}

func TestMulSlice16MatchesScalar(t *testing.T) {
	f := New16()
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{0, 2, 6, 8, 14, 62, 66, 1024} {
		for _, off := range []int{0, 1, 5} {
			for i := 0; i < 32; i++ {
				c := uint32(2 + rng.Intn(f.n-2))
				tab := f.MulTab(c)
				src := unaligned(n, off, rng)
				dst := unaligned(n, off, rng)
				want := make([]byte, n)
				mulSlice16Scalar(tab, want, src)
				f.MulSlice16(c, dst, src)
				if !bytes.Equal(dst, want) {
					t.Fatalf("n=%d off=%d c=%#x: MulSlice16 diverges from scalar", n, off, c)
				}
			}
		}
	}
}

func TestMulSliceAddSpecialCoefficients(t *testing.T) {
	// c==0 must be a no-op; c==1 must be plain XOR — on both kernels.
	f := New16()
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{0, 2, 8, 10, 100} {
		src := unaligned(n, 1, rng)
		dst := unaligned(n, 1, rng)
		orig := make([]byte, n)
		copy(orig, dst)

		f.MulSliceAdd16(0, dst, src)
		if !bytes.Equal(dst, orig) {
			t.Fatalf("n=%d: c=0 modified dst", n)
		}
		f.MulSliceAdd16(1, dst, src)
		want := make([]byte, n)
		copy(want, orig)
		xorSliceScalar(want, src)
		if !bytes.Equal(dst, want) {
			t.Fatalf("n=%d: c=1 is not plain XOR", n)
		}
	}
}

func TestXORKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, n := range []int{0, 1, 3, 7, 8, 9, 15, 16, 31, 63, 64, 65, 127, 128, 129, 1024} {
		for _, off := range []int{0, 1, 2, 7} {
			src := unaligned(n, off, rng)
			dstA := unaligned(n, off, rng)
			dstB := make([]byte, n)
			copy(dstB, dstA)
			dstC := make([]byte, n)
			copy(dstC, dstA)
			xorSliceScalar(dstA, src)
			XORWords(dstB, src)
			XORSlice(dstC, src)
			if !bytes.Equal(dstB, dstA) {
				t.Fatalf("n=%d off=%d: XORWords diverges from scalar", n, off)
			}
			if !bytes.Equal(dstC, dstA) {
				t.Fatalf("n=%d off=%d: XORSlice diverges from scalar", n, off)
			}
		}
	}
	// Mismatched lengths: shorter dst governs.
	a := []byte{1, 2}
	XORWords(a, []byte{1, 1, 1})
	if a[0] != 0 || a[1] != 3 {
		t.Fatalf("XORWords length clamp wrong: %v", a)
	}
}

func TestMulTabCached(t *testing.T) {
	f := New16()
	if f.MulTab(0x1234) != f.MulTab(0x1234) {
		t.Fatal("MulTab did not return the cached table")
	}
	// Cached table contents must match a fresh build.
	fresh := f.buildMulTab(0x1234)
	if *f.MulTab(0x1234) != *fresh {
		t.Fatal("cached table differs from fresh build")
	}
}

func TestMulTabConcurrent(t *testing.T) {
	// Hammer the lazy cache from many goroutines; run under -race in CI.
	f := New16()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 2000; i++ {
				c := uint32(rng.Intn(1 << 16))
				tab := f.MulTab(c)
				x := uint32(rng.Intn(1 << 16))
				if got := uint32(tab.Hi[x>>8] ^ tab.Lo[x&0xff]); got != f.Mul(c, x) {
					t.Errorf("c=%#x x=%#x: cached table product %#x want %#x", c, x, got, f.Mul(c, x))
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestExpNegative(t *testing.T) {
	for _, f := range []*Field{New8(), New16()} {
		ord := f.Size() - 1
		for _, i := range []int{1, 2, 5, ord - 1, ord, ord + 3} {
			pos := f.Exp(i)
			neg := f.Exp(-i)
			if f.Mul(pos, neg) != 1 {
				t.Fatalf("w=%d: Exp(%d)*Exp(-%d) = %d, want 1", f.Width(), i, i, f.Mul(pos, neg))
			}
		}
		if f.Exp(-ord) != 1 || f.Exp(0) != 1 {
			t.Fatalf("w=%d: Exp at multiples of group order != 1", f.Width())
		}
	}
}

func BenchmarkMulSliceAddTab16Kernels(b *testing.B) {
	f := New16()
	tab := f.MulTab(0x1234)
	for _, n := range []int{64, 1024, 65536} {
		src := make([]byte, n)
		dst := make([]byte, n)
		rand.New(rand.NewSource(5)).Read(src)
		b.Run(fmt.Sprintf("word/%d", n), func(b *testing.B) {
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				mulSliceAddTab16(tab, dst, src)
			}
		})
		b.Run(fmt.Sprintf("scalar/%d", n), func(b *testing.B) {
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				mulSliceAddTab16Scalar(tab, dst, src)
			}
		})
	}
}

func BenchmarkXORKernels(b *testing.B) {
	for _, n := range []int{16, 64, 128, 1024, 65536} {
		src := make([]byte, n)
		dst := make([]byte, n)
		rand.New(rand.NewSource(6)).Read(src)
		b.Run(fmt.Sprintf("words/%d", n), func(b *testing.B) {
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				XORWords(dst, src)
			}
		})
		b.Run(fmt.Sprintf("dispatch/%d", n), func(b *testing.B) {
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				XORSlice(dst, src)
			}
		})
		b.Run(fmt.Sprintf("scalar/%d", n), func(b *testing.B) {
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				xorSliceScalar(dst, src)
			}
		})
	}
}

func BenchmarkMulTabCached(b *testing.B) {
	f := New16()
	b.Run("cached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f.MulTab(uint32(i&0xFF + 2))
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f.buildMulTab(uint32(i&0xFF + 2))
		}
	})
}
