// Package gf implements arithmetic over the binary Galois fields GF(2^8)
// and GF(2^16) using logarithm/antilogarithm tables.
//
// The Reed-Solomon erasure codes in internal/rs (the paper's baselines:
// Rizzo-style Vandermonde codes and Blömer-style Cauchy codes) perform all
// symbol arithmetic through this package. GF(2^16) is required because the
// paper's largest configuration (a 16 MB file in 1 KB packets with stretch
// factor 2) needs k+l = 32768 distinct code symbols, which exceeds GF(2^8).
package gf

import (
	"fmt"
	"sync/atomic"
)

// Standard primitive polynomials. These match the polynomials used by the
// reference implementations the paper benchmarks (Rizzo's fec uses 0x1100B
// for GF(2^16); 0x11D is the usual choice for GF(2^8)).
const (
	Poly8  = 0x11D   // x^8 + x^4 + x^3 + x^2 + 1
	Poly16 = 0x1100B // x^16 + x^12 + x^3 + x + 1
)

// Field is a binary extension field GF(2^w) for w <= 16. The zero Field is
// not usable; construct with New8, New16 or NewField.
type Field struct {
	w    uint   // symbol width in bits
	n    int    // field size, 1 << w
	mask uint32 // n - 1
	poly uint32

	// log[x] is the discrete log of x (undefined for x=0).
	// exp has length 2n so that exp[log[a]+log[b]] avoids a modulo.
	log []uint32
	exp []uint32

	// tabs memoizes the split multiplication tables of GF(2^16), one entry
	// per coefficient, built lazily on first use (see MulTab). Rebuilding a
	// table costs about as much as multiplying a whole packet, so the
	// Reed-Solomon codecs — which revisit the same matrix coefficients for
	// every packet — would otherwise spend half their time here. nil for
	// widths other than 16. Worst-case footprint is 64 MiB (65536 tables of
	// 1 KiB), reached only if every field element is ever used as a
	// coefficient; the fields are process-wide singletons, so the cache is
	// shared by all codecs.
	tabs []atomic.Pointer[MulTab16]
}

var (
	field8  = mustNewField(8, Poly8)
	field16 = mustNewField(16, Poly16)
)

// New8 returns the shared GF(2^8) field.
func New8() *Field { return field8 }

// New16 returns the shared GF(2^16) field.
func New16() *Field { return field16 }

// NewField constructs GF(2^w) with the given primitive polynomial.
// w must be in [2, 16]. It returns an error if the polynomial does not
// generate the full multiplicative group (i.e. is not primitive).
func NewField(w uint, poly uint32) (*Field, error) {
	if w < 2 || w > 16 {
		return nil, fmt.Errorf("gf: unsupported width %d (want 2..16)", w)
	}
	f := &Field{
		w:    w,
		n:    1 << w,
		mask: uint32(1<<w) - 1,
		poly: poly,
		log:  make([]uint32, 1<<w),
		exp:  make([]uint32, 2<<w),
	}
	x := uint32(1)
	for i := 0; i < f.n-1; i++ {
		if x == 1 && i > 0 {
			return nil, fmt.Errorf("gf: polynomial %#x is not primitive for width %d", poly, w)
		}
		f.exp[i] = x
		f.log[x] = uint32(i)
		x <<= 1
		if x&uint32(f.n) != 0 {
			x ^= poly
		}
	}
	// Duplicate the exp table so exp[i+j] is valid for i,j < n-1.
	for i := f.n - 1; i < 2*f.n; i++ {
		f.exp[i] = f.exp[i-(f.n-1)]
	}
	if w == 16 {
		f.tabs = make([]atomic.Pointer[MulTab16], f.n)
	}
	return f, nil
}

func mustNewField(w uint, poly uint32) *Field {
	f, err := NewField(w, poly)
	if err != nil {
		panic(err)
	}
	return f
}

// Width returns the symbol width in bits.
func (f *Field) Width() uint { return f.w }

// Size returns the number of field elements, 2^w.
func (f *Field) Size() int { return f.n }

// Add returns a + b (which equals a - b in characteristic 2).
func (f *Field) Add(a, b uint32) uint32 { return a ^ b }

// Mul returns the product a*b.
func (f *Field) Mul(a, b uint32) uint32 {
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[f.log[a]+f.log[b]]
}

// Div returns a/b. It panics if b == 0.
func (f *Field) Div(a, b uint32) uint32 {
	if b == 0 {
		panic("gf: division by zero")
	}
	if a == 0 {
		return 0
	}
	la, lb := f.log[a], f.log[b]
	if la < lb {
		la += uint32(f.n) - 1
	}
	return f.exp[la-lb]
}

// Inv returns the multiplicative inverse of a. It panics if a == 0.
func (f *Field) Inv(a uint32) uint32 {
	if a == 0 {
		panic("gf: inverse of zero")
	}
	return f.exp[uint32(f.n)-1-f.log[a]]
}

// Exp returns the generator raised to the power i. Negative exponents are
// interpreted in the multiplicative group: Exp(-i) == Inv(Exp(i)).
func (f *Field) Exp(i int) uint32 {
	m := i % (f.n - 1)
	if m < 0 {
		m += f.n - 1
	}
	return f.exp[m]
}

// Log returns the discrete logarithm of a. It panics if a == 0.
func (f *Field) Log(a uint32) uint32 {
	if a == 0 {
		panic("gf: log of zero")
	}
	return f.log[a]
}

// Pow returns a raised to the power e (e >= 0).
func (f *Field) Pow(a uint32, e int) uint32 {
	if e == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	l := (int(f.log[a]) * e) % (f.n - 1)
	return f.exp[l]
}
