package gf

import (
	"crypto/subtle"
	"encoding/binary"
)

// This file contains the bulk-data kernels used by the Reed-Solomon codecs:
// packet payloads are interpreted as vectors of field symbols and
// multiplied/accumulated in place. For GF(2^16) a fixed multiplicand c is
// expanded into two 256-entry split tables (product with the high byte and
// with the low byte of each symbol), so the inner loop is two lookups and
// two XORs per symbol. This is the standard technique used by fast software
// RS implementations and keeps the Vandermonde/Cauchy baselines honest.
//
// The hot loops process payloads a uint64 word (four symbols) at a time via
// encoding/binary unaligned loads, with a scalar tail for the last bytes.
// The pure-scalar versions are kept (suffix "Scalar") as the reference
// implementations the differential tests pin the word kernels against.

// MulTab16 holds split multiplication tables for a fixed multiplicand in
// GF(2^16): Product(x) = Hi[x>>8] ^ Lo[x&0xff].
type MulTab16 struct {
	Hi [256]uint16
	Lo [256]uint16
}

// MulTab returns the split tables for multiplication by c in GF(2^16),
// memoized on the field: the first call for a coefficient builds the table,
// later calls (from any goroutine) return the cached copy. It panics if the
// field is not GF(2^16). The returned table is shared and must not be
// modified.
func (f *Field) MulTab(c uint32) *MulTab16 {
	if f.w != 16 {
		panic("gf: MulTab requires GF(2^16)")
	}
	c &= f.mask
	if t := f.tabs[c].Load(); t != nil {
		return t
	}
	t := f.buildMulTab(c)
	// Concurrent builders may race here; both build identical tables, and
	// whichever Store wins is the one future loads observe.
	f.tabs[c].Store(t)
	return t
}

// buildMulTab constructs the split tables for c without touching the cache.
func (f *Field) buildMulTab(c uint32) *MulTab16 {
	t := new(MulTab16)
	f.MulTabInto(c, t)
	return t
}

// MulTabInto fills t with the split tables for multiplication by c,
// bypassing the memoizing cache. Callers whose coefficients do not repeat
// (e.g. Gauss-Jordan elimination over random matrices) use this with their
// own scratch table so one-shot coefficients never pin cache memory.
func (f *Field) MulTabInto(c uint32, t *MulTab16) {
	if f.w != 16 {
		panic("gf: MulTabInto requires GF(2^16)")
	}
	c &= f.mask
	if c == 0 {
		*t = MulTab16{}
		return
	}
	lc := f.log[c]
	t.Lo[0], t.Hi[0] = 0, 0
	for b := 1; b < 256; b++ {
		t.Lo[b] = uint16(f.exp[lc+f.log[b]])
		t.Hi[b] = uint16(f.exp[lc+f.log[b<<8]])
	}
}

// MulSliceAdd16 computes dst ^= c * src where dst and src are byte slices
// interpreted as big-endian 16-bit symbols. len(src) must be even and
// len(dst) >= len(src). c==0 is a no-op; c==1 is a plain XOR.
func (f *Field) MulSliceAdd16(c uint32, dst, src []byte) {
	if len(src)%2 != 0 {
		panic("gf: MulSliceAdd16 requires even-length src")
	}
	switch c {
	case 0:
		return
	case 1:
		subtle.XORBytes(dst[:len(src)], dst[:len(src)], src)
		return
	}
	t := f.MulTab(c)
	mulSliceAddTab16(t, dst, src)
}

// MulSliceAddTab16 computes dst ^= c*src using precomputed split tables.
// Fetching the table once per matrix coefficient and reusing it across
// the packet amortizes table construction.
func MulSliceAddTab16(t *MulTab16, dst, src []byte) {
	mulSliceAddTab16(t, dst, src)
}

// mulWord multiplies the four big-endian 16-bit symbols packed in s through
// the split tables. Shared by the word-wide kernels; inlined by the
// compiler.
func mulWord(t *MulTab16, s uint64) uint64 {
	return uint64(t.Hi[s>>56]^t.Lo[s>>48&0xff])<<48 |
		uint64(t.Hi[s>>40&0xff]^t.Lo[s>>32&0xff])<<32 |
		uint64(t.Hi[s>>24&0xff]^t.Lo[s>>16&0xff])<<16 |
		uint64(t.Hi[s>>8&0xff]^t.Lo[s&0xff])
}

// mulSliceAddTab16 is the word-wide kernel: four symbols per iteration via
// unaligned uint64 loads, scalar tail for the last <8 bytes.
func mulSliceAddTab16(t *MulTab16, dst, src []byte) {
	n := len(src) &^ 1
	dst = dst[:n]
	src = src[:n]
	i := 0
	for ; i+8 <= n; i += 8 {
		p := mulWord(t, binary.BigEndian.Uint64(src[i:]))
		binary.BigEndian.PutUint64(dst[i:], binary.BigEndian.Uint64(dst[i:])^p)
	}
	for ; i < n; i += 2 {
		p := t.Hi[src[i]] ^ t.Lo[src[i+1]]
		dst[i] ^= byte(p >> 8)
		dst[i+1] ^= byte(p)
	}
}

// mulSliceAddTab16Scalar is the reference implementation: one symbol at a
// time, no word tricks. The differential tests pin mulSliceAddTab16 to it.
func mulSliceAddTab16Scalar(t *MulTab16, dst, src []byte) {
	n := len(src) &^ 1
	_ = dst[:n]
	for i := 0; i < n; i += 2 {
		p := t.Hi[src[i]] ^ t.Lo[src[i+1]]
		dst[i] ^= byte(p >> 8)
		dst[i+1] ^= byte(p)
	}
}

// MulSlice16 computes dst = c * src (overwriting dst).
func (f *Field) MulSlice16(c uint32, dst, src []byte) {
	if len(src)%2 != 0 {
		panic("gf: MulSlice16 requires even-length src")
	}
	switch c {
	case 0:
		clear(dst[:len(src)])
		return
	case 1:
		copy(dst, src)
		return
	}
	t := f.MulTab(c)
	n := len(src)
	dst = dst[:n]
	i := 0
	for ; i+8 <= n; i += 8 {
		binary.BigEndian.PutUint64(dst[i:], mulWord(t, binary.BigEndian.Uint64(src[i:])))
	}
	for ; i < n; i += 2 {
		p := t.Hi[src[i]] ^ t.Lo[src[i+1]]
		dst[i] = byte(p >> 8)
		dst[i+1] = byte(p)
	}
}

// mulSlice16Scalar is the scalar reference for MulSlice16 (c > 1 path).
func mulSlice16Scalar(t *MulTab16, dst, src []byte) {
	n := len(src) &^ 1
	_ = dst[:n]
	for i := 0; i < n; i += 2 {
		p := t.Hi[src[i]] ^ t.Lo[src[i+1]]
		dst[i] = byte(p >> 8)
		dst[i+1] = byte(p)
	}
}

// XORSlice computes dst ^= src for the overlapping length. It dispatches to
// crypto/subtle's vectorized XOR for long slices and to the uint64 word loop
// below for short ones, where subtle's call overhead dominates (see the
// DESIGN.md kernel ablation).
func XORSlice(dst, src []byte) {
	n := len(src)
	if len(dst) < n {
		n = len(dst)
	}
	if n >= xorSubtleMin {
		subtle.XORBytes(dst[:n], dst[:n], src[:n])
		return
	}
	XORWords(dst[:n], src[:n])
}

// xorSubtleMin is the slice length above which subtle.XORBytes beats the
// word loop (measured; the crossover is where SIMD width pays for the extra
// call bookkeeping — see the DESIGN.md kernel ablation).
const xorSubtleMin = 32

// XORWords computes dst ^= src for the overlapping length, one uint64 word
// at a time with a scalar tail — no function-call or SIMD setup overhead,
// which makes it the right kernel for the sub-packet blocks of Cauchy
// bit-matrix coding.
func XORWords(dst, src []byte) {
	n := len(src)
	if len(dst) < n {
		n = len(dst)
	}
	dst = dst[:n]
	src = src[:n]
	i := 0
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// xorSliceScalar is the byte-loop reference for the XOR kernels.
func xorSliceScalar(dst, src []byte) {
	n := len(src)
	if len(dst) < n {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] ^= src[i]
	}
}
