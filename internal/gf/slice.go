package gf

import "crypto/subtle"

// This file contains the bulk-data kernels used by the Reed-Solomon codecs:
// packet payloads are interpreted as vectors of field symbols and
// multiplied/accumulated in place. For GF(2^16) a fixed multiplicand c is
// expanded into two 256-entry split tables (product with the high byte and
// with the low byte of each symbol), so the inner loop is two lookups and
// two XORs per symbol. This is the standard technique used by fast software
// RS implementations and keeps the Vandermonde/Cauchy baselines honest.

// MulTab16 holds split multiplication tables for a fixed multiplicand in
// GF(2^16): Product(x) = Hi[x>>8] ^ Lo[x&0xff].
type MulTab16 struct {
	Hi [256]uint16
	Lo [256]uint16
}

// MulTab returns the split tables for multiplication by c in GF(2^16).
// It panics if the field is not GF(2^16).
func (f *Field) MulTab(c uint32) *MulTab16 {
	if f.w != 16 {
		panic("gf: MulTab requires GF(2^16)")
	}
	var t MulTab16
	if c == 0 {
		return &t
	}
	lc := f.log[c]
	for b := 1; b < 256; b++ {
		t.Lo[b] = uint16(f.exp[lc+f.log[b]])
		t.Hi[b] = uint16(f.exp[lc+f.log[b<<8]])
	}
	return &t
}

// MulSliceAdd16 computes dst ^= c * src where dst and src are byte slices
// interpreted as big-endian 16-bit symbols. len(src) must be even and
// len(dst) >= len(src). c==0 is a no-op; c==1 is a plain XOR.
func (f *Field) MulSliceAdd16(c uint32, dst, src []byte) {
	if len(src)%2 != 0 {
		panic("gf: MulSliceAdd16 requires even-length src")
	}
	switch c {
	case 0:
		return
	case 1:
		subtle.XORBytes(dst[:len(src)], dst[:len(src)], src)
		return
	}
	t := f.MulTab(c)
	mulSliceAddTab16(t, dst, src)
}

// MulSliceAddTab16 computes dst ^= c*src using precomputed split tables.
// Precomputing the table once per matrix coefficient and reusing it across
// the packet amortizes table construction.
func MulSliceAddTab16(t *MulTab16, dst, src []byte) {
	mulSliceAddTab16(t, dst, src)
}

func mulSliceAddTab16(t *MulTab16, dst, src []byte) {
	n := len(src) &^ 1
	_ = dst[:n]
	for i := 0; i < n; i += 2 {
		p := t.Hi[src[i]] ^ t.Lo[src[i+1]]
		dst[i] ^= byte(p >> 8)
		dst[i+1] ^= byte(p)
	}
}

// MulSlice16 computes dst = c * src (overwriting dst).
func (f *Field) MulSlice16(c uint32, dst, src []byte) {
	if len(src)%2 != 0 {
		panic("gf: MulSlice16 requires even-length src")
	}
	switch c {
	case 0:
		for i := range dst[:len(src)] {
			dst[i] = 0
		}
		return
	case 1:
		copy(dst, src)
		return
	}
	t := f.MulTab(c)
	n := len(src)
	for i := 0; i < n; i += 2 {
		p := t.Hi[src[i]] ^ t.Lo[src[i+1]]
		dst[i] = byte(p >> 8)
		dst[i+1] = byte(p)
	}
}

// XORSlice computes dst ^= src for the overlapping length.
func XORSlice(dst, src []byte) {
	n := len(src)
	if len(dst) < n {
		n = len(dst)
	}
	subtle.XORBytes(dst[:n], dst[:n], src[:n])
}
