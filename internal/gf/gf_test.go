package gf

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewFieldRejectsBadWidth(t *testing.T) {
	if _, err := NewField(1, 0x3); err == nil {
		t.Fatal("width 1 accepted")
	}
	if _, err := NewField(17, 0x3); err == nil {
		t.Fatal("width 17 accepted")
	}
}

func TestNewFieldRejectsNonPrimitive(t *testing.T) {
	// x^8 + 1 is not primitive over GF(2).
	if _, err := NewField(8, 0x101); err == nil {
		t.Fatal("non-primitive polynomial accepted")
	}
}

func TestFieldSizes(t *testing.T) {
	if New8().Size() != 256 || New8().Width() != 8 {
		t.Fatalf("GF(2^8) size/width wrong: %d/%d", New8().Size(), New8().Width())
	}
	if New16().Size() != 65536 || New16().Width() != 16 {
		t.Fatalf("GF(2^16) size/width wrong: %d/%d", New16().Size(), New16().Width())
	}
}

func TestExpLogRoundTrip(t *testing.T) {
	for _, f := range []*Field{New8(), New16()} {
		for i := 0; i < f.n-1; i++ {
			x := f.exp[i]
			if f.log[x] != uint32(i) {
				t.Fatalf("w=%d: log(exp(%d)) = %d", f.w, i, f.log[x])
			}
		}
	}
}

func TestMulExhaustive8(t *testing.T) {
	f := New8()
	// Verify against carry-less multiplication with reduction.
	slowMul := func(a, b uint32) uint32 {
		var p uint32
		for b > 0 {
			if b&1 != 0 {
				p ^= a
			}
			a <<= 1
			if a&0x100 != 0 {
				a ^= Poly8
			}
			b >>= 1
		}
		return p
	}
	for a := uint32(0); a < 256; a++ {
		for b := uint32(0); b < 256; b++ {
			if got, want := f.Mul(a, b), slowMul(a, b); got != want {
				t.Fatalf("Mul(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestFieldAxiomsQuick(t *testing.T) {
	for _, f := range []*Field{New8(), New16()} {
		mask := f.mask
		// Commutativity and associativity of multiplication; distributivity.
		err := quick.Check(func(a, b, c uint32) bool {
			a, b, c = a&mask, b&mask, c&mask
			if f.Mul(a, b) != f.Mul(b, a) {
				return false
			}
			if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
				return false
			}
			return f.Mul(a, f.Add(b, c)) == f.Add(f.Mul(a, b), f.Mul(a, c))
		}, nil)
		if err != nil {
			t.Fatalf("w=%d: %v", f.w, err)
		}
		// Inverses.
		err = quick.Check(func(a uint32) bool {
			a &= mask
			if a == 0 {
				return true
			}
			return f.Mul(a, f.Inv(a)) == 1 && f.Div(1, a) == f.Inv(a)
		}, nil)
		if err != nil {
			t.Fatalf("w=%d inverse: %v", f.w, err)
		}
	}
}

func TestDivMulRoundTrip(t *testing.T) {
	f := New16()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		a := uint32(rng.Intn(f.n))
		b := uint32(1 + rng.Intn(f.n-1))
		if f.Mul(f.Div(a, b), b) != a {
			t.Fatalf("(%d/%d)*%d != %d", a, b, b, a)
		}
	}
}

func TestPow(t *testing.T) {
	f := New16()
	for _, a := range []uint32{0, 1, 2, 3, 0x1234, 0xFFFF} {
		want := uint32(1)
		for e := 0; e < 50; e++ {
			if got := f.Pow(a, e); got != want {
				t.Fatalf("Pow(%d,%d) = %d, want %d", a, e, got, want)
			}
			want = f.Mul(want, a)
		}
	}
	if f.Pow(0, 0) != 1 {
		t.Fatal("0^0 != 1")
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on division by zero")
		}
	}()
	New8().Div(1, 0)
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on Inv(0)")
		}
	}()
	New16().Inv(0)
}

func TestMulTabMatchesMul(t *testing.T) {
	f := New16()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		c := uint32(rng.Intn(f.n))
		tab := f.MulTab(c)
		for j := 0; j < 200; j++ {
			x := uint32(rng.Intn(f.n))
			got := uint32(tab.Hi[x>>8] ^ tab.Lo[x&0xff])
			if got != f.Mul(c, x) {
				t.Fatalf("tab product c=%d x=%d: got %d want %d", c, x, got, f.Mul(c, x))
			}
		}
	}
}

func TestMulSliceAdd16(t *testing.T) {
	f := New16()
	rng := rand.New(rand.NewSource(3))
	src := make([]byte, 64)
	rng.Read(src)
	for _, c := range []uint32{0, 1, 2, 0x8000, 0xFFFF} {
		dst := make([]byte, 64)
		rng.Read(dst)
		want := make([]byte, 64)
		copy(want, dst)
		for i := 0; i < 64; i += 2 {
			x := uint32(src[i])<<8 | uint32(src[i+1])
			p := f.Mul(c, x)
			want[i] ^= byte(p >> 8)
			want[i+1] ^= byte(p)
		}
		f.MulSliceAdd16(c, dst, src)
		if !bytes.Equal(dst, want) {
			t.Fatalf("c=%d: MulSliceAdd16 mismatch", c)
		}
	}
}

func TestMulSlice16(t *testing.T) {
	f := New16()
	rng := rand.New(rand.NewSource(4))
	src := make([]byte, 32)
	rng.Read(src)
	for _, c := range []uint32{0, 1, 7, 0xABCD} {
		dst := make([]byte, 32)
		rng.Read(dst) // ensure overwrite
		f.MulSlice16(c, dst, src)
		for i := 0; i < 32; i += 2 {
			x := uint32(src[i])<<8 | uint32(src[i+1])
			p := f.Mul(c, x)
			if dst[i] != byte(p>>8) || dst[i+1] != byte(p) {
				t.Fatalf("c=%d i=%d: got %x%x want %x", c, i, dst[i], dst[i+1], p)
			}
		}
	}
}

func TestMulSliceLinearity(t *testing.T) {
	// (c1+c2)*src == c1*src ^ c2*src applied via MulSliceAdd16.
	f := New16()
	err := quick.Check(func(c1, c2 uint32, seed int64) bool {
		c1 &= 0xFFFF
		c2 &= 0xFFFF
		rng := rand.New(rand.NewSource(seed))
		src := make([]byte, 48)
		rng.Read(src)
		a := make([]byte, 48)
		f.MulSliceAdd16(c1, a, src)
		f.MulSliceAdd16(c2, a, src)
		b := make([]byte, 48)
		f.MulSliceAdd16(c1^c2, b, src)
		return bytes.Equal(a, b)
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestXORSlice(t *testing.T) {
	a := []byte{1, 2, 3, 4}
	b := []byte{4, 3}
	XORSlice(a, b)
	if a[0] != 5 || a[1] != 1 || a[2] != 3 || a[3] != 4 {
		t.Fatalf("XORSlice wrong: %v", a)
	}
}

func TestMulSliceAddOddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on odd src length")
		}
	}()
	New16().MulSliceAdd16(3, make([]byte, 3), make([]byte, 3))
}

func BenchmarkMulSliceAdd16(b *testing.B) {
	f := New16()
	src := make([]byte, 1024)
	dst := make([]byte, 1024)
	rand.New(rand.NewSource(5)).Read(src)
	tab := f.MulTab(0x1234)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulSliceAddTab16(tab, dst, src)
	}
}
