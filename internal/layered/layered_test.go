package layered

import "testing"

func TestJoinOnCleanBurst(t *testing.T) {
	c := New(3)
	// Clean epoch with a burst and no loss -> level up at the SP.
	serial := uint32(0)
	for i := 0; i < 10; i++ {
		serial++
		c.OnPacket(0, serial, false, i >= 8) // last two are burst packets
	}
	serial++
	if lvl := c.OnPacket(0, serial, true, false); lvl != 1 {
		t.Fatalf("level = %d after clean burst epoch, want 1", lvl)
	}
}

func TestNoJoinWithoutBurst(t *testing.T) {
	c := New(3)
	serial := uint32(0)
	for i := 0; i < 10; i++ {
		serial++
		c.OnPacket(0, serial, false, false)
	}
	serial++
	if lvl := c.OnPacket(0, serial, true, false); lvl != 0 {
		t.Fatalf("level = %d without burst evidence, want 0", lvl)
	}
}

func TestDropOnLoss(t *testing.T) {
	c := New(3)
	c.SetLevel(2)
	// Epoch with 50% loss (serial gaps).
	serial := uint32(0)
	for i := 0; i < 10; i++ {
		serial += 2 // every other packet lost
		c.OnPacket(0, serial, false, false)
	}
	serial++
	if lvl := c.OnPacket(0, serial, true, false); lvl != 1 {
		t.Fatalf("level = %d after lossy epoch, want 1", lvl)
	}
}

func TestBurstLossPreventsJoin(t *testing.T) {
	c := New(3)
	serial := uint32(0)
	for i := 0; i < 12; i++ {
		if i == 9 {
			serial += 2 // a loss inside the burst
		} else {
			serial++
		}
		c.OnPacket(0, serial, false, i >= 8)
	}
	serial++
	if lvl := c.OnPacket(0, serial, true, false); lvl != 0 {
		t.Fatalf("level = %d despite burst loss, want 0", lvl)
	}
}

func TestChangesOnlyAtSP(t *testing.T) {
	c := New(3)
	serial := uint32(0)
	for i := 0; i < 50; i++ {
		serial += 3 // heavy loss, but no SP yet
		if lvl := c.OnPacket(0, serial, false, false); lvl != 0 {
			t.Fatalf("level changed between SPs")
		}
	}
	c.SetLevel(2)
	serial += 3
	if lvl := c.OnPacket(0, serial, true, false); lvl != 1 {
		t.Fatalf("no drop at SP: %d", lvl)
	}
}

func TestMinSamplesGuard(t *testing.T) {
	c := New(3)
	c.SetLevel(1)
	// Tiny epoch: no decision even with loss.
	c.OnPacket(0, 5, false, false) // implicit gap unknown (first packet)
	if lvl := c.OnPacket(0, 6, true, false); lvl != 1 {
		t.Fatalf("decision taken below MinSamples: %d", lvl)
	}
}

func TestSilenceDropsLevel(t *testing.T) {
	c := New(3)
	c.SetLevel(3)
	if lvl := c.OnSilence(); lvl != 2 {
		t.Fatalf("silence: %d, want 2", lvl)
	}
	c.SetLevel(0)
	if lvl := c.OnSilence(); lvl != 0 {
		t.Fatalf("silence at 0: %d", lvl)
	}
}

func TestLevelClamping(t *testing.T) {
	c := New(2)
	c.SetLevel(99)
	if c.Level() != 2 {
		t.Fatal("no clamp high")
	}
	c.SetLevel(-1)
	if c.Level() != 0 {
		t.Fatal("no clamp low")
	}
}

func TestPerLayerSerials(t *testing.T) {
	// Serial gaps are tracked per layer; interleaved arrivals across
	// layers must not count as loss.
	c := New(3)
	c.SetLevel(1)
	for i := uint32(1); i <= 20; i++ {
		c.OnPacket(0, i, false, false)
		c.OnPacket(1, i, false, false)
	}
	if _, lost := c.EpochStats(); lost != 0 {
		t.Fatalf("cross-layer serials counted as loss: %d", lost)
	}
}
