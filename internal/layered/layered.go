// Package layered implements the receiver-side congestion control of
// §7.1.1, following the sender-driven scheme of Vicisano, Rizzo and
// Crowcroft [19] that the paper builds on:
//
//   - the sender marks synchronization points (SPs) and generates periodic
//     bursts at double rate on each layer;
//   - a receiver may move UP one subscription level only immediately after
//     an SP, and only if it experienced no loss during the preceding burst
//     (the burst emulates the congestion a join would cause);
//   - a receiver moves DOWN whenever loss since the last SP exceeds a
//     threshold (congestion signal).
//
// No feedback ever flows to the sender — receivers act on local loss
// measurements only, preserving the feedback-free property of the digital
// fountain.
package layered

// Controller tracks loss per epoch and decides subscription moves.
// It is a pure state machine: the transport layer feeds it packet arrivals
// (with serial numbers and flags) and it answers with the level to
// subscribe to. Not safe for concurrent use.
type Controller struct {
	maxLevel int
	level    int

	// DropThreshold is the loss fraction since the last SP above which
	// the receiver drops a level (default 0.20).
	DropThreshold float64
	// MinSamples is the minimum number of packets in an epoch before a
	// decision is taken (default 8).
	MinSamples int

	// Per-epoch accounting (reset at each SP).
	received  int
	lost      int
	burstSeen bool
	burstLost bool

	// Per-layer serial tracking for gap-based loss detection.
	lastSerial map[uint8]uint32
	haveSerial map[uint8]bool
}

// New constructs a controller starting at level 0 with maxLevel the
// highest subscription level (layers-1).
func New(maxLevel int) *Controller {
	return &Controller{
		maxLevel:      maxLevel,
		DropThreshold: 0.20,
		MinSamples:    8,
		lastSerial:    make(map[uint8]uint32),
		haveSerial:    make(map[uint8]bool),
	}
}

// Level returns the current subscription level (subscribe to layers
// 0..Level inclusive).
func (c *Controller) Level() int { return c.level }

// SetLevel forces the level (used by tests and by single-layer clients).
func (c *Controller) SetLevel(l int) {
	if l < 0 {
		l = 0
	}
	if l > c.maxLevel {
		l = c.maxLevel
	}
	c.level = l
}

// OnPacket feeds one received packet's header fields to the controller:
// the layer it arrived on, its per-layer serial, and its flags. It returns
// the (possibly changed) subscription level — changes only happen on SP
// packets, per the protocol.
func (c *Controller) OnPacket(layer uint8, serial uint32, isSP, isBurst bool) int {
	// Gap-based loss detection per layer.
	if c.haveSerial[layer] {
		prev := c.lastSerial[layer]
		if serial > prev {
			gap := int(serial - prev - 1)
			c.lost += gap
			if isBurst && gap > 0 {
				c.burstLost = true
			}
		}
	}
	c.lastSerial[layer] = serial
	c.haveSerial[layer] = true
	c.received++
	if isBurst {
		c.burstSeen = true
	}
	if isSP && layer == 0 {
		c.decide()
	}
	return c.level
}

// OnSilence signals that a subscribed layer has been silent for a full
// epoch (e.g. all packets lost): treated as maximal congestion.
func (c *Controller) OnSilence() int {
	if c.level > 0 {
		c.level--
	}
	c.reset()
	return c.level
}

func (c *Controller) decide() {
	total := c.received + c.lost
	if total < c.MinSamples {
		c.reset()
		return
	}
	lossRate := float64(c.lost) / float64(total)
	switch {
	case lossRate > c.DropThreshold && c.level > 0:
		c.level--
	case lossRate == 0 && c.burstSeen && !c.burstLost && c.level < c.maxLevel:
		// The doubled-rate burst caused no loss: there is headroom for
		// the next layer, whose rate equals the current cumulative rate.
		c.level++
	}
	c.reset()
}

func (c *Controller) reset() {
	c.received = 0
	c.lost = 0
	c.burstSeen = false
	c.burstLost = false
}

// EpochStats exposes the current epoch's counters (for instrumentation).
func (c *Controller) EpochStats() (received, lost int) {
	return c.received, c.lost
}
