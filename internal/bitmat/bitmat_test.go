package bitmat

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gf"
)

func TestSetGet(t *testing.T) {
	m := New(3, 130) // force multi-word rows
	m.Set(1, 0, true)
	m.Set(1, 64, true)
	m.Set(2, 129, true)
	if !m.Get(1, 0) || !m.Get(1, 64) || !m.Get(2, 129) {
		t.Fatal("set bits not readable")
	}
	if m.Get(0, 0) || m.Get(1, 1) {
		t.Fatal("unset bits read as set")
	}
	m.Set(1, 64, false)
	if m.Get(1, 64) {
		t.Fatal("clear failed")
	}
}

func TestRowWeightAndXor(t *testing.T) {
	m := New(2, 100)
	for _, c := range []int{0, 5, 63, 64, 99} {
		m.Set(0, c, true)
	}
	if m.RowWeight(0) != 5 {
		t.Fatalf("weight = %d, want 5", m.RowWeight(0))
	}
	m.Set(1, 5, true)
	m.XorRow(0, 1)
	if m.Get(0, 5) || m.RowWeight(0) != 4 {
		t.Fatal("XorRow wrong")
	}
}

func TestRankIdentityAndSingular(t *testing.T) {
	m := New(4, 4)
	for i := 0; i < 4; i++ {
		m.Set(i, i, true)
	}
	if m.Rank() != 4 {
		t.Fatalf("identity rank = %d", m.Rank())
	}
	// Duplicate row -> rank 3.
	m2 := m.Clone()
	r0, r3 := m2.Row(0), m2.Row(3)
	copy(r3, r0)
	if m2.Rank() != 3 {
		t.Fatalf("rank = %d, want 3", m2.Rank())
	}
	// Rank must not destroy the matrix.
	if !m.Get(0, 0) || m.Get(0, 1) {
		t.Fatal("Rank modified receiver")
	}
}

func TestFirstSetFrom(t *testing.T) {
	m := New(1, 200)
	m.Set(0, 70, true)
	m.Set(0, 150, true)
	if got := m.firstSetFrom(0, 0); got != 70 {
		t.Fatalf("firstSetFrom(0) = %d", got)
	}
	if got := m.firstSetFrom(0, 71); got != 150 {
		t.Fatalf("firstSetFrom(71) = %d", got)
	}
	if got := m.firstSetFrom(0, 151); got != -1 {
		t.Fatalf("firstSetFrom(151) = %d", got)
	}
}

// TestSolveRecoversRandomSystems builds u (unknown payloads), a random
// full-rank A, computes rhs = A·u, and checks Solve returns u.
func TestSolveRecoversRandomSystems(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nu := 1 + rng.Intn(20)        // unknowns
		nr := nu + rng.Intn(10)       // equations (>= unknowns)
		payload := 8 + 2*rng.Intn(12) // payload size
		u := make([][]byte, nu)
		for i := range u {
			u[i] = make([]byte, payload)
			rng.Read(u[i])
		}
		a := New(nr, nu)
		rhs := make([][]byte, nr)
		for r := 0; r < nr; r++ {
			rhs[r] = make([]byte, payload)
			for c := 0; c < nu; c++ {
				if rng.Intn(2) == 1 {
					a.Set(r, c, true)
					gf.XORSlice(rhs[r], u[c])
				}
			}
		}
		if a.Rank() < nu {
			return true // under-determined by chance; Solve must error
		}
		got, err := Solve(a, rhs)
		if err != nil {
			return false
		}
		for c := 0; c < nu; c++ {
			if !bytes.Equal(got[c], u[c]) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSolveUnderDetermined(t *testing.T) {
	a := New(2, 3)
	a.Set(0, 0, true)
	a.Set(1, 1, true)
	_, err := Solve(a, [][]byte{make([]byte, 4), make([]byte, 4)})
	if err == nil {
		t.Fatal("under-determined system solved")
	}
}

func TestSolveRhsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("rhs length mismatch accepted")
		}
	}()
	a := New(2, 2)
	Solve(a, [][]byte{make([]byte, 4)})
}

func TestTrySolveRank(t *testing.T) {
	// 3 unknowns, equations only over the first two -> rank 2, not ok.
	a := New(3, 3)
	a.Set(0, 0, true)
	a.Set(1, 1, true)
	a.Set(2, 0, true)
	a.Set(2, 1, true)
	rhs := [][]byte{make([]byte, 2), make([]byte, 2), make([]byte, 2)}
	_, rank, ok := TrySolve(a, rhs)
	if ok || rank != 2 {
		t.Fatalf("got ok=%v rank=%d, want false/2", ok, rank)
	}
}

func TestMulBitsMatchesFieldMul(t *testing.T) {
	for _, f := range []*gf.Field{gf.New8(), gf.New16()} {
		rng := rand.New(rand.NewSource(9))
		w := int(f.Width())
		for trial := 0; trial < 50; trial++ {
			e := uint32(rng.Intn(f.Size()))
			x := uint32(rng.Intn(f.Size()))
			m := MulBits(f, e)
			// Apply m to bits of x.
			var y uint32
			for i := 0; i < w; i++ {
				var bit uint32
				for j := 0; j < w; j++ {
					if m.Get(i, j) && x&(1<<uint(j)) != 0 {
						bit ^= 1
					}
				}
				y |= bit << uint(i)
			}
			if y != f.Mul(e, x) {
				t.Fatalf("w=%d: bitmat mul %d*%d = %d, want %d", w, e, x, y, f.Mul(e, x))
			}
		}
	}
}

func TestNegativeDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(-1, 2)
}
