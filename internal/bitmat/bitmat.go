// Package bitmat implements dense matrices over GF(2) stored as packed
// 64-bit words, plus Gaussian elimination for linear systems whose
// right-hand sides are packet payloads (byte slices combined by XOR).
//
// Two users: the dense random code that terminates a Tornado cascade (the
// paper's codes are XOR-only, so the final "conventional" code is a random
// binary code solved by elimination), and the bit-matrix form of Cauchy
// Reed-Solomon coding.
package bitmat

import (
	"fmt"
	"math/bits"

	"repro/internal/gf"
)

// Matrix is a rows x cols matrix over GF(2), each row packed into uint64
// words, least-significant bit first.
type Matrix struct {
	RowsN int
	ColsN int
	words int // words per row
	data  []uint64
}

// New returns a zero rows x cols bit matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("bitmat: negative dimension")
	}
	w := (cols + 63) / 64
	return &Matrix{RowsN: rows, ColsN: cols, words: w, data: make([]uint64, rows*w)}
}

// Row returns the packed words of row r (a live view, not a copy).
func (m *Matrix) Row(r int) []uint64 { return m.data[r*m.words : (r+1)*m.words] }

// Reset reshapes m to a zero rows x cols matrix, reusing the backing
// storage when it is large enough. It lets hot paths (the Tornado decoder's
// repeated elimination attempts) rebuild systems without allocating.
func (m *Matrix) Reset(rows, cols int) {
	if rows < 0 || cols < 0 {
		panic("bitmat: negative dimension")
	}
	w := (cols + 63) / 64
	n := rows * w
	if cap(m.data) < n {
		m.data = make([]uint64, n)
	} else {
		m.data = m.data[:n]
		clear(m.data)
	}
	m.RowsN, m.ColsN, m.words = rows, cols, w
}

// CopyFrom makes m an exact copy of src, reusing m's backing storage when
// possible.
func (m *Matrix) CopyFrom(src *Matrix) {
	m.Reset(src.RowsN, src.ColsN)
	copy(m.data, src.data)
}

// RankDestructive computes the rank of m, destroying its contents in the
// process. Unlike Rank it performs no allocation, which is what the
// Tornado decoder's rank precheck needs: it tests solvability on a scratch
// copy before committing the payload right-hand sides to an in-place
// elimination.
func (m *Matrix) RankDestructive() int {
	return rankFrom(m, 0, 0)
}

// Get reports bit (r, c).
func (m *Matrix) Get(r, c int) bool {
	return m.data[r*m.words+c/64]&(1<<(uint(c)%64)) != 0
}

// Set sets bit (r, c) to v.
func (m *Matrix) Set(r, c int, v bool) {
	idx := r*m.words + c/64
	bit := uint64(1) << (uint(c) % 64)
	if v {
		m.data[idx] |= bit
	} else {
		m.data[idx] &^= bit
	}
}

// XorRow adds (XORs) row src into row dst.
func (m *Matrix) XorRow(dst, src int) {
	d := m.Row(dst)
	s := m.Row(src)
	for i := range d {
		d[i] ^= s[i]
	}
}

// SwapRows exchanges two rows.
func (m *Matrix) SwapRows(a, b int) {
	ra, rb := m.Row(a), m.Row(b)
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}

// RowWeight returns the number of set bits in row r.
func (m *Matrix) RowWeight(r int) int {
	n := 0
	for _, w := range m.Row(r) {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.RowsN, m.ColsN)
	copy(c.data, m.data)
	return c
}

// firstSetFrom returns the index of the first set bit at or after column c
// in row r, or -1.
func (m *Matrix) firstSetFrom(r, c int) int {
	row := m.Row(r)
	wi := c / 64
	if wi >= m.words {
		return -1
	}
	w := row[wi] >> (uint(c) % 64)
	if w != 0 {
		return c + bits.TrailingZeros64(w)
	}
	for i := wi + 1; i < m.words; i++ {
		if row[i] != 0 {
			return i*64 + bits.TrailingZeros64(row[i])
		}
	}
	return -1
}

// Rank computes the rank of the matrix (destroys a copy, not m).
func (m *Matrix) Rank() int {
	a := m.Clone()
	rank := 0
	for col := 0; col < a.ColsN && rank < a.RowsN; col++ {
		pivot := -1
		for r := rank; r < a.RowsN; r++ {
			if a.Get(r, col) {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		a.SwapRows(pivot, rank)
		for r := 0; r < a.RowsN; r++ {
			if r != rank && a.Get(r, col) {
				a.XorRow(r, rank)
			}
		}
		rank++
	}
	return rank
}

// Solve performs Gauss-Jordan elimination on the system A·u = rhs where the
// right-hand sides are packet payloads: every row operation on A is
// mirrored by an XOR of the corresponding payload buffers. On success it
// returns one payload per unknown (column). rhs payloads are modified in
// place; pass copies if the caller still needs them.
//
// It returns an error if the system is under-determined (rank < cols).
// Extra consistent rows are allowed and simply reduce to zero.
func Solve(a *Matrix, rhs [][]byte) ([][]byte, error) {
	sol, rank, ok := TrySolve(a, rhs)
	if !ok {
		return nil, fmt.Errorf("bitmat: under-determined system (rank %d < %d unknowns)", rank, a.ColsN)
	}
	return sol, nil
}

// TrySolve is Solve that additionally reports the achieved rank when the
// system is under-determined, letting callers (the Tornado decoder) know
// how many more independent equations they must wait for before retrying.
func TrySolve(a *Matrix, rhs [][]byte) (sol [][]byte, rank int, ok bool) {
	if len(rhs) != a.RowsN {
		panic(fmt.Sprintf("bitmat: %d rhs payloads for %d rows", len(rhs), a.RowsN))
	}
	for col := 0; col < a.ColsN; col++ {
		pivot := -1
		for r := rank; r < a.RowsN; r++ {
			if a.Get(r, col) {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			// Count remaining independent columns for an accurate rank.
			return nil, rankFrom(a, rank, col), false
		}
		if pivot != rank {
			a.SwapRows(pivot, rank)
			rhs[pivot], rhs[rank] = rhs[rank], rhs[pivot]
		}
		for r := 0; r < a.RowsN; r++ {
			if r != rank && a.Get(r, col) {
				a.XorRow(r, rank)
				gf.XORSlice(rhs[r], rhs[rank])
			}
		}
		rank++
	}
	out := make([][]byte, a.ColsN)
	for c := 0; c < a.ColsN; c++ {
		out[c] = rhs[c]
	}
	return out, rank, true
}

// rankFrom continues elimination (matrix only) from a partially reduced
// state to compute the true rank after a pivot failure at column col.
func rankFrom(a *Matrix, rank, col int) int {
	for ; col < a.ColsN && rank < a.RowsN; col++ {
		pivot := -1
		for r := rank; r < a.RowsN; r++ {
			if a.Get(r, col) {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		a.SwapRows(pivot, rank)
		for r := rank + 1; r < a.RowsN; r++ {
			if a.Get(r, col) {
				a.XorRow(r, rank)
			}
		}
		rank++
	}
	return rank
}

// MulBits returns the bit-matrix of multiplication by e in GF(2^w):
// a w x w matrix M (packed into a single []uint64 per the row count) with
// M[i][j] = bit i of e·2^j. Applying M to the bit-decomposition of x yields
// the bit-decomposition of e·x. This is the expansion Cauchy Reed-Solomon
// codes use to turn field multiplications into pure XORs of sub-packets.
func MulBits(f *gf.Field, e uint32) *Matrix {
	w := int(f.Width())
	m := New(w, w)
	for j := 0; j < w; j++ {
		col := f.Mul(e, 1<<uint(j))
		for i := 0; i < w; i++ {
			if col&(1<<uint(i)) != 0 {
				m.Set(i, j, true)
			}
		}
	}
	return m
}
