// Package trace generates, serializes and replays packet-loss traces in
// the style of the Yajnik/Kurose/Towsley MBone measurements the paper uses
// in §6.4. The original traces are not redistributable (and the MBone is
// long gone), so we synthesize the documented characteristics: per-receiver
// loss rates from under 1% to over 30% with a population mean near 18%,
// bursty losses from a two-state Gilbert-Elliott process, and hour-long
// sessions (§6.4; see DESIGN.md for the substitution rationale).
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"

	"repro/internal/netsim"
)

// Trace is one receiver's packet-fate sequence: Lost[i] reports whether
// the i-th packet transmitted during the session was lost.
type Trace struct {
	Receiver string
	Lost     []bool
}

// LossRate returns the fraction of lost packets.
func (t *Trace) LossRate() float64 {
	if len(t.Lost) == 0 {
		return 0
	}
	n := 0
	for _, l := range t.Lost {
		if l {
			n++
		}
	}
	return float64(n) / float64(len(t.Lost))
}

// Replay returns a netsim.LossProcess that walks the trace cyclically
// starting at `offset` (the paper samples traces from random initial
// points, §6.4).
func (t *Trace) Replay(offset int) netsim.LossProcess {
	if len(t.Lost) == 0 {
		return &constLoss{}
	}
	return &replay{t: t, pos: offset % len(t.Lost)}
}

type constLoss struct{}

func (*constLoss) Lose() bool { return false }

type replay struct {
	t   *Trace
	pos int
}

func (r *replay) Lose() bool {
	l := r.t.Lost[r.pos]
	r.pos++
	if r.pos == len(r.t.Lost) {
		r.pos = 0
	}
	return l
}

// GenParams controls synthetic trace generation.
type GenParams struct {
	Receivers int     // number of receivers (the paper uses 120)
	Length    int     // packets per trace (an hour at ~8 pkt/s ≈ 28800)
	MeanLoss  float64 // target population mean loss (paper ≈ 0.18)
	Seed      int64
}

// DefaultGenParams mirrors the §6.4 population.
func DefaultGenParams() GenParams {
	return GenParams{Receivers: 120, Length: 28800, MeanLoss: 0.18, Seed: 1998}
}

// Generate synthesizes a heterogeneous population of bursty traces. Each
// receiver draws a base loss rate from a skewed distribution spanning
// <1%..35%+ (rescaled to hit the target mean), then runs a Gilbert-Elliott
// chain whose bad state carries most of the loss in bursts.
func Generate(p GenParams) []*Trace {
	if p.Receivers <= 0 || p.Length <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(p.Seed))
	rates := make([]float64, p.Receivers)
	sum := 0.0
	for i := range rates {
		// Skewed draw: many low-loss receivers, a tail of very lossy ones
		// ("some clients experience large bursts of loss ... over
		// significant periods of time", §6.4).
		r := rng.Float64()
		rates[i] = 0.005 + 0.40*r*r
		sum += rates[i]
	}
	scale := p.MeanLoss * float64(p.Receivers) / sum
	out := make([]*Trace, p.Receivers)
	for i, base := range rates {
		rate := base * scale
		if rate > 0.9 {
			rate = 0.9
		}
		// Gilbert-Elliott with bad-state loss 0.7, residual good-state
		// loss 20% of the target; solve for the stationary bad fraction.
		lossBad := 0.7
		lossGood := 0.2 * rate
		pBad := (rate - lossGood) / (lossBad - lossGood)
		if pBad < 0 {
			pBad = 0
		}
		// Mean bad-burst length ~12 packets.
		pbg := 1.0 / 12
		pgb := pbg * pBad / (1 - pBad)
		g := &netsim.GilbertElliott{
			PGB: pgb, PBG: pbg, LossGood: lossGood, LossBad: lossBad,
			Rng: netsim.NewRNG(uint64(p.Seed + int64(i)*7919)),
		}
		tr := &Trace{Receiver: fmt.Sprintf("r%03d", i), Lost: make([]bool, p.Length)}
		for j := range tr.Lost {
			tr.Lost[j] = g.Lose()
		}
		out[i] = tr
	}
	return out
}

// MeanLoss returns the average loss rate of a trace set.
func MeanLoss(traces []*Trace) float64 {
	if len(traces) == 0 {
		return 0
	}
	sum := 0.0
	for _, t := range traces {
		sum += t.LossRate()
	}
	return sum / float64(len(traces))
}

// File format: magic "DFTR", u32 count, then per trace: u16 name length,
// name bytes, u32 packet count, packed loss bitmap.
var magic = [4]byte{'D', 'F', 'T', 'R'}

// Write serializes traces.
func Write(w io.Writer, traces []*Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.BigEndian, uint32(len(traces))); err != nil {
		return err
	}
	for _, t := range traces {
		if len(t.Receiver) > 65535 {
			return fmt.Errorf("trace: receiver name too long")
		}
		if err := binary.Write(bw, binary.BigEndian, uint16(len(t.Receiver))); err != nil {
			return err
		}
		if _, err := bw.WriteString(t.Receiver); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.BigEndian, uint32(len(t.Lost))); err != nil {
			return err
		}
		buf := make([]byte, (len(t.Lost)+7)/8)
		for i, l := range t.Lost {
			if l {
				buf[i/8] |= 1 << (uint(i) % 8)
			}
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes traces written by Write.
func Read(r io.Reader) ([]*Trace, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, err
	}
	if m != magic {
		return nil, fmt.Errorf("trace: bad magic %q", m)
	}
	var count uint32
	if err := binary.Read(br, binary.BigEndian, &count); err != nil {
		return nil, err
	}
	if count > 1<<20 {
		return nil, fmt.Errorf("trace: implausible trace count %d", count)
	}
	out := make([]*Trace, 0, count)
	for i := uint32(0); i < count; i++ {
		var nameLen uint16
		if err := binary.Read(br, binary.BigEndian, &nameLen); err != nil {
			return nil, err
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, err
		}
		var pkts uint32
		if err := binary.Read(br, binary.BigEndian, &pkts); err != nil {
			return nil, err
		}
		if pkts > 1<<28 {
			return nil, fmt.Errorf("trace: implausible packet count %d", pkts)
		}
		buf := make([]byte, (pkts+7)/8)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, err
		}
		t := &Trace{Receiver: string(name), Lost: make([]bool, pkts)}
		for j := range t.Lost {
			t.Lost[j] = buf[j/8]&(1<<(uint(j)%8)) != 0
		}
		out = append(out, t)
	}
	return out, nil
}
