package trace

import (
	"bytes"
	"math"
	"testing"
)

func TestGenerateStatistics(t *testing.T) {
	p := DefaultGenParams()
	p.Length = 8000 // keep the test fast
	traces := Generate(p)
	if len(traces) != 120 {
		t.Fatalf("got %d traces", len(traces))
	}
	mean := MeanLoss(traces)
	if math.Abs(mean-0.18) > 0.03 {
		t.Fatalf("population mean loss %v, want ≈ 0.18", mean)
	}
	// Heterogeneity: some receivers < 5%, some > 30% (§6.4: "less than 1%
	// to over 30%").
	low, high := 0, 0
	for _, tr := range traces {
		r := tr.LossRate()
		if r < 0.05 {
			low++
		}
		if r > 0.30 {
			high++
		}
	}
	if low == 0 || high == 0 {
		t.Fatalf("population not heterogeneous: %d low, %d high", low, high)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := DefaultGenParams()
	p.Length = 500
	a := Generate(p)
	b := Generate(p)
	for i := range a {
		for j := range a[i].Lost {
			if a[i].Lost[j] != b[i].Lost[j] {
				t.Fatal("generation not deterministic")
			}
		}
	}
	p2 := p
	p2.Seed++
	c := Generate(p2)
	same := true
	for j := range a[0].Lost {
		if a[0].Lost[j] != c[0].Lost[j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical trace")
	}
}

func TestReplayCyclesAndOffsets(t *testing.T) {
	tr := &Trace{Receiver: "x", Lost: []bool{true, false, false}}
	r := tr.Replay(1)
	want := []bool{false, false, true, false, false, true}
	for i, w := range want {
		if got := r.Lose(); got != w {
			t.Fatalf("step %d: got %v want %v", i, got, w)
		}
	}
	// Empty trace replays as lossless.
	e := (&Trace{}).Replay(0)
	if e.Lose() {
		t.Fatal("empty trace lost a packet")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	p := DefaultGenParams()
	p.Receivers = 7
	p.Length = 1000
	traces := Generate(p)
	var buf bytes.Buffer
	if err := Write(&buf, traces); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(traces) {
		t.Fatalf("got %d traces back", len(back))
	}
	for i := range traces {
		if back[i].Receiver != traces[i].Receiver {
			t.Fatalf("name mismatch at %d", i)
		}
		if len(back[i].Lost) != len(traces[i].Lost) {
			t.Fatalf("length mismatch at %d", i)
		}
		for j := range traces[i].Lost {
			if back[i].Lost[j] != traces[i].Lost[j] {
				t.Fatalf("bit mismatch at %d/%d", i, j)
			}
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestGenerateEmpty(t *testing.T) {
	if Generate(GenParams{}) != nil {
		t.Fatal("zero params should produce nil")
	}
}

func TestLossRate(t *testing.T) {
	tr := &Trace{Lost: []bool{true, true, false, false}}
	if tr.LossRate() != 0.5 {
		t.Fatal("loss rate wrong")
	}
	if (&Trace{}).LossRate() != 0 {
		t.Fatal("empty loss rate wrong")
	}
}
