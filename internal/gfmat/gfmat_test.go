package gfmat

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gf"
)

func randomInvertible(t *testing.T, f *gf.Field, n int, rng *rand.Rand) *Matrix {
	t.Helper()
	for tries := 0; tries < 20; tries++ {
		m := New(f, n, n)
		for i := range m.Data {
			m.Data[i] = uint32(rng.Intn(f.Size()))
		}
		if _, err := m.Invert(); err == nil {
			return m
		}
	}
	t.Fatal("could not build a random invertible matrix")
	return nil
}

func isIdentity(m *Matrix) bool {
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			want := uint32(0)
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				return false
			}
		}
	}
	return true
}

func TestIdentityMul(t *testing.T) {
	f := gf.New16()
	rng := rand.New(rand.NewSource(1))
	m := randomInvertible(t, f, 8, rng)
	if !isIdentity(Identity(f, 8).Mul(m).Mul(mustInvert(t, m))) {
		t.Fatal("I*M*M^-1 != I")
	}
}

func mustInvert(t *testing.T, m *Matrix) *Matrix {
	t.Helper()
	inv, err := m.Invert()
	if err != nil {
		t.Fatal(err)
	}
	return inv
}

func TestInvertProperty(t *testing.T) {
	f := gf.New16()
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		m := New(f, n, n)
		for i := range m.Data {
			m.Data[i] = uint32(rng.Intn(f.Size()))
		}
		inv, err := m.Invert()
		if err != nil {
			return true // singular is fine; nothing to check
		}
		return isIdentity(m.Mul(inv)) && isIdentity(inv.Mul(m))
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInvertSingular(t *testing.T) {
	f := gf.New8()
	m := New(f, 3, 3)
	// Two equal rows -> singular.
	for j := 0; j < 3; j++ {
		m.Set(0, j, uint32(j+1))
		m.Set(1, j, uint32(j+1))
		m.Set(2, j, uint32(7*j+2))
	}
	if _, err := m.Invert(); err == nil {
		t.Fatal("singular matrix inverted")
	}
}

func TestInvertNonSquare(t *testing.T) {
	if _, err := New(gf.New8(), 2, 3).Invert(); err == nil {
		t.Fatal("non-square inverted")
	}
}

func TestVandermondeShapeAndFirstRows(t *testing.T) {
	f := gf.New16()
	v := Vandermonde(f, 5, 3)
	// Row for x=0 must be [1, 0, 0].
	if v.At(0, 0) != 1 || v.At(0, 1) != 0 || v.At(0, 2) != 0 {
		t.Fatalf("x=0 row wrong: %v", v.Row(0))
	}
	// Row for x=1 must be all ones.
	for j := 0; j < 3; j++ {
		if v.At(1, j) != 1 {
			t.Fatalf("x=1 row wrong: %v", v.Row(1))
		}
	}
	// General rows: entry (i,j) == i^j in the field.
	for i := 2; i < 5; i++ {
		for j := 0; j < 3; j++ {
			if v.At(i, j) != f.Pow(uint32(i), j) {
				t.Fatalf("entry (%d,%d) = %d, want %d", i, j, v.At(i, j), f.Pow(uint32(i), j))
			}
		}
	}
}

func TestCauchyEntries(t *testing.T) {
	f := gf.New16()
	c := Cauchy(f, 4, 6)
	for i := 0; i < 4; i++ {
		for j := 0; j < 6; j++ {
			want := f.Inv(uint32(i+6) ^ uint32(j))
			if c.At(i, j) != want {
				t.Fatalf("cauchy (%d,%d) = %d want %d", i, j, c.At(i, j), want)
			}
		}
	}
}

func TestCauchySquareSubmatricesInvertible(t *testing.T) {
	f := gf.New16()
	c := Cauchy(f, 6, 6)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(6)
		rows := rng.Perm(6)[:n]
		sub := New(f, n, n)
		cols := rng.Perm(6)[:n]
		for i, r := range rows {
			for j, cc := range cols {
				sub.Set(i, j, c.At(r, cc))
			}
		}
		if _, err := sub.Invert(); err != nil {
			t.Fatalf("cauchy %dx%d submatrix singular: rows=%v cols=%v", n, n, rows, cols)
		}
	}
}

func TestCauchyInverseMatchesGaussian(t *testing.T) {
	f := gf.New16()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(10)
		// Distinct x and y points, disjoint sets.
		perm := rng.Perm(200)
		x := make([]uint32, n)
		y := make([]uint32, n)
		for i := 0; i < n; i++ {
			x[i] = uint32(perm[i])
			y[i] = uint32(perm[n+i])
		}
		c := New(f, n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				c.Set(i, j, f.Inv(x[i]^y[j]))
			}
		}
		want := mustInvert(t, c)
		got, err := CauchyInverse(f, x, y)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Data {
			if want.Data[i] != got.Data[i] {
				t.Fatalf("trial %d: closed-form inverse disagrees with Gaussian at %d", trial, i)
			}
		}
	}
}

func TestCauchyInverseErrors(t *testing.T) {
	f := gf.New16()
	if _, err := CauchyInverse(f, []uint32{1, 2}, []uint32{3}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := CauchyInverse(f, []uint32{1, 1}, []uint32{3, 4}); err == nil {
		t.Fatal("duplicate x accepted")
	}
	if _, err := CauchyInverse(f, []uint32{1, 2}, []uint32{2, 4}); err == nil {
		t.Fatal("intersecting x/y accepted")
	}
}

func TestSubMatrixRows(t *testing.T) {
	f := gf.New8()
	m := Vandermonde(f, 6, 3)
	sub := m.SubMatrixRows([]int{4, 1})
	for j := 0; j < 3; j++ {
		if sub.At(0, j) != m.At(4, j) || sub.At(1, j) != m.At(1, j) {
			t.Fatal("SubMatrixRows content wrong")
		}
	}
}

func TestMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on shape mismatch")
		}
	}()
	New(gf.New8(), 2, 3).Mul(New(gf.New8(), 2, 3))
}
