// Package gfmat provides dense matrices over the binary extension fields in
// internal/gf, with the operations the Reed-Solomon baselines need:
// Vandermonde and Cauchy construction, Gaussian elimination, inversion, and
// the systematic transform used by Rizzo-style erasure codes.
package gfmat

import (
	"fmt"

	"repro/internal/gf"
)

// Matrix is a dense row-major matrix over a field.
type Matrix struct {
	F    *gf.Field
	Rows int
	Cols int
	Data []uint32 // len Rows*Cols
}

// New returns a zero matrix of the given shape.
func New(f *gf.Field, rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("gfmat: negative dimension")
	}
	return &Matrix{F: f, Rows: rows, Cols: cols, Data: make([]uint32, rows*cols)}
}

// Identity returns the n x n identity matrix.
func Identity(f *gf.Field, n int) *Matrix {
	m := New(f, n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) uint32 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v uint32) { m.Data[r*m.Cols+c] = v }

// Row returns a view of row r (not a copy).
func (m *Matrix) Row(r int) []uint32 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.F, m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Mul returns m * other.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.Cols != other.Rows {
		panic(fmt.Sprintf("gfmat: shape mismatch %dx%d * %dx%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	out := New(m.F, m.Rows, other.Cols)
	f := m.F
	for i := 0; i < m.Rows; i++ {
		ri := m.Row(i)
		ro := out.Row(i)
		for l, a := range ri {
			if a == 0 {
				continue
			}
			rb := other.Row(l)
			for j, b := range rb {
				if b != 0 {
					ro[j] ^= f.Mul(a, b)
				}
			}
		}
	}
	return out
}

// Vandermonde returns the rows x cols matrix with entry (i, j) = α_i^j where
// α_i is the i-th field element in generator-power order (α_0 = 0 gives the
// row [1,0,0,...]; using distinct evaluation points keeps every square
// submatrix of the systematic construction invertible).
func Vandermonde(f *gf.Field, rows, cols int) *Matrix {
	if rows > f.Size() {
		panic("gfmat: too many Vandermonde rows for field")
	}
	m := New(f, rows, cols)
	for i := 0; i < rows; i++ {
		x := uint32(i) // distinct field elements 0,1,2,...
		v := uint32(1)
		for j := 0; j < cols; j++ {
			m.Set(i, j, v)
			v = f.Mul(v, x)
			if x == 0 && j == 0 {
				// row for x=0 is [1, 0, 0, ...]; v already 0 after Mul
				v = 0
			}
		}
	}
	return m
}

// Cauchy returns the rows x cols Cauchy matrix with entry
// (i, j) = 1 / (x_i + y_j) where x_i = i + cols and y_j = j; the x and y
// sets are disjoint so every denominator is nonzero, and rows+cols must not
// exceed the field size. Every square submatrix of a Cauchy matrix is
// invertible, which is what makes it an MDS erasure code generator.
func Cauchy(f *gf.Field, rows, cols int) *Matrix {
	if rows+cols > f.Size() {
		panic("gfmat: rows+cols exceeds field size for Cauchy matrix")
	}
	m := New(f, rows, cols)
	for i := 0; i < rows; i++ {
		xi := uint32(i + cols)
		row := m.Row(i)
		for j := 0; j < cols; j++ {
			row[j] = f.Inv(xi ^ uint32(j))
		}
	}
	return m
}

// Invert returns the inverse of a square matrix using Gauss-Jordan
// elimination, or an error if the matrix is singular.
func (m *Matrix) Invert() (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("gfmat: cannot invert %dx%d matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	f := m.F
	a := m.Clone()
	inv := Identity(f, n)
	// Elimination coefficients are essentially one-shot (random pivots and
	// factors), so over GF(2^16) the row ops build split tables into this
	// scratch instead of the field's permanent memoizing cache — caching
	// them would pin up to 64 MiB of tables that are never reused.
	var tab *gf.MulTab16
	if f.Width() == 16 {
		tab = new(gf.MulTab16)
	}
	for col := 0; col < n; col++ {
		// Find pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if a.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, fmt.Errorf("gfmat: singular matrix (column %d)", col)
		}
		if pivot != col {
			swapRows(a, pivot, col)
			swapRows(inv, pivot, col)
		}
		// Normalize pivot row.
		pv := a.At(col, col)
		if pv != 1 {
			ipv := f.Inv(pv)
			if tab != nil {
				f.MulTabInto(ipv, tab)
			}
			scaleRow(f, tab, a.Row(col), ipv)
			scaleRow(f, tab, inv.Row(col), ipv)
		}
		// Eliminate the column from every other row.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			c := a.At(r, col)
			if c == 0 {
				continue
			}
			if tab != nil {
				f.MulTabInto(c, tab)
			}
			addScaledRow(f, tab, a.Row(r), a.Row(col), c)
			addScaledRow(f, tab, inv.Row(r), inv.Row(col), c)
		}
	}
	return inv, nil
}

// SubMatrixRows returns a new matrix consisting of the given rows of m.
func (m *Matrix) SubMatrixRows(rows []int) *Matrix {
	out := New(m.F, len(rows), m.Cols)
	for i, r := range rows {
		copy(out.Row(i), m.Row(r))
	}
	return out
}

func swapRows(m *Matrix, a, b int) {
	ra, rb := m.Row(a), m.Row(b)
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}

// scaleRow multiplies a row by the constant c. Over GF(2^16) the caller
// passes the coefficient's split tables (built into reusable scratch, see
// Invert) so the table is reused across the whole row — the same
// coefficient-major shape the packet kernels use — which lowers the
// constant of the (deliberately) O(k^3) Vandermonde decode. t is nil for
// other widths.
func scaleRow(f *gf.Field, t *gf.MulTab16, row []uint32, c uint32) {
	if t != nil {
		for i, v := range row {
			if v != 0 {
				row[i] = uint32(t.Hi[v>>8] ^ t.Lo[v&0xff])
			}
		}
		return
	}
	for i, v := range row {
		if v != 0 {
			row[i] = f.Mul(v, c)
		}
	}
}

// addScaledRow computes dst ^= c * src elementwise, with the same
// caller-scratch split-table fast path as scaleRow.
func addScaledRow(f *gf.Field, t *gf.MulTab16, dst, src []uint32, c uint32) {
	if t != nil {
		for i, v := range src {
			if v != 0 {
				dst[i] ^= uint32(t.Hi[v>>8] ^ t.Lo[v&0xff])
			}
		}
		return
	}
	for i, v := range src {
		if v != 0 {
			dst[i] ^= f.Mul(v, c)
		}
	}
}

// CauchyInverse inverts a square Cauchy-form matrix given its defining point
// sets: entry (i,j) = 1/(x[i] + y[j]). It runs in O(n^2) time using the
// classical closed-form inverse, which is why the paper's Cauchy baseline
// decodes markedly faster than Vandermonde's O(n^3) elimination.
//
// The returned matrix is the inverse of C where C[i][j] = 1/(x[i]^y[j]).
func CauchyInverse(f *gf.Field, x, y []uint32) (*Matrix, error) {
	n := len(x)
	if len(y) != n {
		return nil, fmt.Errorf("gfmat: cauchy inverse needs |x| == |y|, got %d, %d", n, len(y))
	}
	// Precompute products:
	//   A[i] = prod_{j != i} (x[i]+x[j])   B[i] = prod_j (x[i]+y[j])
	//   Cp[j] = prod_i (y[j]+x[i])         D[j] = prod_{i != j} (y[j]+y[i])
	// Inverse entry (j,i) = B[i]*Cp[j] / ((x[i]+y[j]) * A[i] * D[j]).
	A := make([]uint32, n)
	B := make([]uint32, n)
	Cp := make([]uint32, n)
	D := make([]uint32, n)
	for i := 0; i < n; i++ {
		a := uint32(1)
		b := uint32(1)
		for j := 0; j < n; j++ {
			if j != i {
				t := x[i] ^ x[j]
				if t == 0 {
					return nil, fmt.Errorf("gfmat: duplicate x point %d", x[i])
				}
				a = f.Mul(a, t)
			}
			t := x[i] ^ y[j]
			if t == 0 {
				return nil, fmt.Errorf("gfmat: x and y sets intersect at %d", x[i])
			}
			b = f.Mul(b, t)
		}
		A[i], B[i] = a, b
	}
	for j := 0; j < n; j++ {
		c := uint32(1)
		d := uint32(1)
		for i := 0; i < n; i++ {
			c = f.Mul(c, y[j]^x[i])
			if i != j {
				t := y[j] ^ y[i]
				if t == 0 {
					return nil, fmt.Errorf("gfmat: duplicate y point %d", y[j])
				}
				d = f.Mul(d, t)
			}
		}
		Cp[j], D[j] = c, d
	}
	inv := New(f, n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			num := f.Mul(B[i], Cp[j])
			den := f.Mul(x[i]^y[j], f.Mul(A[i], D[j]))
			inv.Set(j, i, f.Div(num, den))
		}
	}
	return inv, nil
}
