package harness

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/proto"
)

func ltSessionConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Codec = proto.CodecLT
	cfg.Layers = 1
	cfg.PacketLen = 16
	cfg.Session = 0x17DF
	cfg.Seed = 77
	return cfg
}

// TestLTUnstaggeredMirrors is the rateless acceptance scenario (ISSUE 4):
// three mirrors of one LT session, each starting at an arbitrary
// UNcoordinated stream position (no phase trick — no cycle arithmetic, no
// knowledge of the mirror count), 10-20% injected loss per path, k=10000.
// The fountain property alone must keep duplicate waste near zero: every
// mirror draws fresh indices from the unbounded space, so, unlike the
// fixed-rate carousels that §8 phase-staggers, the feeds cannot collide
// within a download horizon. Asserts the two ISSUE acceptance bars:
// reception overhead ≤ 1.15·k and < 2% duplicates among consumed packets.
func TestLTUnstaggeredMirrors(t *testing.T) {
	data := testData(3, 160_000) // k = 160000/16 = 10000 source packets
	lossRates := []float64{0.10, 0.15, 0.20}

	tb, err := New(Config{
		Mirrors: 3,
		Data:    data,
		Session: ltSessionConfig(),
		Rate:    100,
		// Phases nil: rateless sessions get uncoordinated pseudorandom
		// starts, the deterministic analogue of mirrors booted at
		// arbitrary times.
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	if !tb.sess.Rateless() {
		t.Fatal("session should be rateless")
	}
	for i, m := range tb.Mirrors {
		t.Logf("mirror %d advertises stream start %d", i, m.Info.Phase)
	}

	r, err := tb.AddReceiver(0, func(mirror, layer int) netsim.LossProcess {
		return &netsim.Bernoulli{P: lossRates[mirror], Rng: netsim.ReceiverRNG(41, mirror)}
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Run(30_000); err != nil {
		t.Fatal(err)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if !r.Done() {
		t.Fatal("receiver never decoded")
	}
	got, err := r.File()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("reconstructed file differs")
	}

	total, distinct, k := r.Engine.Stats()
	overhead := float64(total) / float64(k)
	dups := 0
	for _, src := range r.Engine.Sources() {
		st := r.Engine.SourceStats(src)
		dups += st.Duplicate
		t.Logf("mirror %d: recv=%d distinct=%d dup=%d loss=%.1f%%",
			src, st.Received, st.Distinct, st.Duplicate, 100*st.Loss)
	}
	dupRate := float64(dups) / float64(total)
	t.Logf("k=%d total=%d distinct=%d overhead=%.4f dupRate=%.4f%% rounds=%d",
		k, total, distinct, overhead, 100*dupRate, r.RoundsToDecode())
	if overhead > 1.15 {
		t.Fatalf("reception overhead %.4f exceeds 1.15", overhead)
	}
	if dupRate >= 0.02 {
		t.Fatalf("duplicate rate %.4f%% not below 2%%", 100*dupRate)
	}
}

// TestLTLayeredMirrors runs the same fountain over the 4-layer schedule to
// cover the layered rateless carousel (slot counts 1,1,2,4 per round,
// monotone indices split across groups) through the full service →
// transport → multi-source client path.
func TestLTLayeredMirrors(t *testing.T) {
	cfg := ltSessionConfig()
	cfg.Layers = 4
	cfg.Session = 0x17E0
	data := testData(9, 48_000) // k = 3000

	tb, err := New(Config{Mirrors: 3, Data: data, Session: cfg, Rate: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	r, err := tb.AddReceiver(3, func(mirror, layer int) netsim.LossProcess {
		return &netsim.Bernoulli{P: 0.12, Rng: netsim.ReceiverRNG(55, mirror*8+layer)}
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Run(30_000); err != nil {
		t.Fatal(err)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if !r.Done() {
		t.Fatal("receiver never decoded")
	}
	got, err := r.File()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("reconstructed file differs")
	}
	total, _, k := r.Engine.Stats()
	dups := 0
	for _, src := range r.Engine.Sources() {
		dups += r.Engine.SourceStats(src).Duplicate
	}
	t.Logf("layered: k=%d total=%d overhead=%.4f dups=%d", k, total, float64(total)/float64(k), dups)
	if float64(dups)/float64(total) >= 0.02 {
		t.Fatalf("duplicate rate %.4f not below 2%%", float64(dups)/float64(total))
	}
}
