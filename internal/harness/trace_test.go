package harness

import (
	"bytes"
	"testing"

	"repro/internal/evtrace"
	"repro/internal/netsim"
)

// tracedMatrixRun executes the PR 6 full fault matrix — loss, corruption,
// duplication, reordering, duty-cycling, a mirror crash/restart, the
// rejoin watchdog — with a flight recorder attached, and returns the
// recorder plus the harness's own accounting for reconciliation.
type tracedOutcome struct {
	rec        *evtrace.Recorder
	rounds     int   // harness RoundsToDecode
	doneRounds []int // per-mirror rounds at completion
	total      int   // Engine.Stats() total
	distinct   int
	k          int
	corrupt    int
	faults     []evtrace.ChannelStats // per mirror, from BusClient ground truth
}

func tracedMatrixRun(t *testing.T) tracedOutcome {
	t.Helper()
	data := testData(43, 60_000)
	// One shard: every event of the single-goroutine pump lands in one ring
	// in causal order. Sized generously — the completeness assertions below
	// require zero overwrites.
	rec := evtrace.New(evtrace.Config{Shards: 1, ShardSize: 1 << 19})
	rec.Enable()
	tb, err := New(Config{Mirrors: 3, Data: data, Session: singleLayerConfig(), Rate: 100, Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	mk := mirrorLoss(5500, 0, []float64{0.08, 0.10, 0.12})
	r, err := tb.AddReceiverWith(ReceiverOpts{
		Loss:           func(mirror, layer int) netsim.LossProcess { return mk(mirror) },
		Corrupt:        func(mirror int) netsim.LossProcess { return bern(0.05, 5600, mirror) },
		Dup:            func(mirror int) netsim.LossProcess { return bern(0.10, 5700, mirror) },
		ReorderDepth:   16,
		ReorderSeed:    7,
		WakeFor:        0.5,
		SleepFor:       0.2,
		RejoinInterval: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.At(0.35, func() { tb.Mirrors[2].Crash() })
	tb.At(1.10, func() { tb.Mirrors[2].Restart() })
	if _, err := tb.Run(80 * tb.sess.Codec().N()); err != nil {
		t.Fatal(err)
	}
	if !r.Done() || r.Err() != nil {
		t.Fatalf("never decoded under the full matrix: %v", r.Err())
	}
	rec.Disable()
	o := tracedOutcome{
		rec:        rec,
		rounds:     r.RoundsToDecode(),
		doneRounds: append([]int(nil), r.doneRounds...),
		corrupt:    r.Engine.Corrupt(),
	}
	o.total, o.distinct, o.k = r.Engine.Stats()
	for mi := range tb.Mirrors {
		fs := r.FaultStats(mi)
		o.faults = append(o.faults, evtrace.ChannelStats{
			Delivered: fs.Delivered, Lost: fs.Lost,
			Corrupted: fs.Corrupted, Duplicated: fs.Duplicated,
		})
	}
	return o
}

// TestTraceBitIdentical: the deterministic fault-matrix scenario, traced in
// virtual time, must produce byte-for-byte identical binary dumps across
// two independent runs — the acceptance property that makes traces diffable
// artifacts rather than one-off observations.
func TestTraceBitIdentical(t *testing.T) {
	a, b := tracedMatrixRun(t), tracedMatrixRun(t)
	if n := a.rec.Dropped(); n != 0 {
		t.Fatalf("run A overwrote %d events — ring too small for completeness", n)
	}
	if n := b.rec.Dropped(); n != 0 {
		t.Fatalf("run B overwrote %d events", n)
	}
	var da, db bytes.Buffer
	if err := evtrace.WriteBinary(&da, a.rec.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := evtrace.WriteBinary(&db, b.rec.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if da.Len() <= 16 {
		t.Fatal("trace is empty")
	}
	if !bytes.Equal(da.Bytes(), db.Bytes()) {
		t.Fatalf("traces diverged: %d vs %d bytes", da.Len(), db.Len())
	}
}

// TestTraceReproducesHarnessAccounting: analyzing the trace alone must
// reproduce the harness's own numbers exactly — per-mirror rounds at the
// receiver's completion (and so rounds-to-decode), the decoder's
// total/distinct/k (and so reception overhead), the integrity-drop count,
// and the channel fault pipeline's ground truth.
func TestTraceReproducesHarnessAccounting(t *testing.T) {
	o := tracedMatrixRun(t)

	// Round-trip through the dump format: the analyzer input is what a
	// fountain-trace user would read back from disk.
	var dump bytes.Buffer
	if err := evtrace.WriteBinary(&dump, o.rec.Snapshot()); err != nil {
		t.Fatal(err)
	}
	events, err := evtrace.ReadBinary(&dump)
	if err != nil {
		t.Fatal(err)
	}
	an := evtrace.Analyze(events)
	sa := an.Sessions[singleLayerConfig().Session]
	if sa == nil {
		t.Fatal("session missing from trace")
	}
	if len(sa.Mirrors) != 3 || len(sa.Receivers) != 1 {
		t.Fatalf("trace shows %d mirrors, %d receivers", len(sa.Mirrors), len(sa.Receivers))
	}
	r := sa.Receivers[0]
	if !r.Done {
		t.Fatal("trace shows no completion")
	}
	for mi, want := range o.doneRounds {
		if got := r.RoundsAtDone[uint16(mi)]; got != uint64(want) {
			t.Errorf("mirror %d rounds at completion: trace %d, harness %d", mi, got, want)
		}
	}
	if got := r.RoundsToDecode(); got != o.rounds {
		t.Errorf("rounds-to-decode: trace %d, harness %d", got, o.rounds)
	}
	if int(r.DoneTotal) != o.total || int(r.DoneDist) != o.distinct || int(r.K) != o.k {
		t.Errorf("decode accounting: trace total=%d dist=%d k=%d, harness %d/%d/%d",
			r.DoneTotal, r.DoneDist, r.K, o.total, o.distinct, o.k)
	}
	wantOverhead := float64(o.total) / float64(o.k)
	if got := r.Overhead(); got != wantOverhead {
		t.Errorf("overhead: trace %v, harness %v", got, wantOverhead)
	}
	if int(r.CorruptDrops) != o.corrupt {
		t.Errorf("integrity drops: trace %d, engine %d", r.CorruptDrops, o.corrupt)
	}
	for mi, want := range o.faults {
		got := r.Channel[uint16(mi)]
		if got == nil {
			t.Fatalf("mirror %d channel missing from trace", mi)
		}
		if *got != want {
			t.Errorf("mirror %d channel stats: trace %+v, bus ground truth %+v", mi, *got, want)
		}
	}
	// The send side must reconcile too: every mirror traced at least the
	// rounds the harness counted (mirrors keep emitting until the pump's
	// done-check, so the trace may hold a few more).
	for mi := range o.doneRounds {
		m := sa.Mirrors[uint16(mi)]
		if m == nil {
			t.Fatalf("mirror %d missing from trace", mi)
		}
		if m.Rounds < uint64(o.doneRounds[mi]) {
			t.Errorf("mirror %d: trace holds %d rounds, harness counted %d at completion",
				mi, m.Rounds, o.doneRounds[mi])
		}
		if m.Batches == 0 || m.Packets == 0 {
			t.Errorf("mirror %d traced no tx batches", mi)
		}
	}
}
