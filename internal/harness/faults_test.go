package harness

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/netsim"
)

// bern builds a deterministic Bernoulli process for one fault feed.
func bern(p float64, seed int64, id int) netsim.LossProcess {
	if p <= 0 {
		return nil
	}
	return &netsim.Bernoulli{P: p, Rng: netsim.ReceiverRNG(seed, id)}
}

// TestCorruptionDroppedBeforeDecode: a receiver whose mirror feeds corrupt
// 2-25% of deliveries must still reconstruct the file bit-exactly — every
// corrupted packet is caught by the CRC32C tag before the decoder sees it,
// counted per source, and (because its serial never arrives) registers as
// loss on that source, so the worst-source harvesting rule of PR 3 sees a
// corrupting mirror exactly like a lossy one.
func TestCorruptionDroppedBeforeDecode(t *testing.T) {
	data := testData(23, 60_000)
	tb, err := New(Config{Mirrors: 3, Data: data, Session: singleLayerConfig(), Rate: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	rates := []float64{0.02, 0.05, 0.25} // mirror 2 is the dirty path
	r, err := tb.AddReceiverWith(ReceiverOpts{
		Corrupt: func(mirror int) netsim.LossProcess { return bern(rates[mirror], 5100, mirror) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Run(60 * tb.sess.Codec().N()); err != nil {
		t.Fatal(err)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("corrupted packet surfaced as an error: %v", err)
	}
	if !r.Done() {
		t.Fatal("never decoded under corruption")
	}
	got, err := r.File()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("corrupted bytes reached the decoder: file mismatch")
	}
	total := r.Engine.Corrupt()
	if total == 0 {
		t.Fatal("no corruption recorded — faults not injected")
	}
	sum := 0
	perSource := make([]int, 3)
	for _, id := range r.Engine.Sources() {
		st := r.Engine.SourceStats(id)
		sum += st.Corrupt
		perSource[id] = st.Corrupt
	}
	if sum != total {
		t.Fatalf("per-source corrupt counts sum to %d, aggregate %d", sum, total)
	}
	if perSource[2] <= perSource[0] {
		t.Fatalf("dirty mirror counted %d corruptions, clean mirror %d", perSource[2], perSource[0])
	}
	// Corruption-induced serial gaps must feed the loss estimator: the
	// worst source is the corrupting mirror, just as PR 3's rule requires.
	if st := r.Engine.SourceStats(2); st.Lost == 0 {
		t.Fatal("corrupted packets left no serial gaps on the dirty mirror")
	}
	if worst, _ := r.Engine.WorstSource(); worst != 2 {
		t.Fatalf("worst source %d, want the corrupting mirror 2", worst)
	}
}

// TestDuplicationAbsorbed: 30% of deliveries arriving twice must cost
// duplicate-packet bookkeeping, never correctness.
func TestDuplicationAbsorbed(t *testing.T) {
	data := testData(29, 50_000)
	tb, err := New(Config{Mirrors: 2, Data: data, Session: singleLayerConfig(), Rate: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	r, err := tb.AddReceiverWith(ReceiverOpts{
		Dup: func(mirror int) netsim.LossProcess { return bern(0.30, 5200, mirror) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Run(40 * tb.sess.Codec().N()); err != nil {
		t.Fatal(err)
	}
	if !r.Done() || r.Err() != nil {
		t.Fatalf("never decoded under duplication: %v", r.Err())
	}
	got, err := r.File()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("file mismatch under duplication")
	}
	dups := 0
	for _, id := range r.Engine.Sources() {
		dups += r.Engine.SourceStats(id).Duplicate
	}
	if dups == 0 {
		t.Fatal("no duplicates recorded — faults not injected")
	}
}

// TestReorderingStorm: a depth-48 shuffle buffer on every feed plus 10%
// loss. The decoder is order-oblivious, so the download must complete with
// a bit-exact file, and — PR 3's refund window at work — the storm must not
// masquerade as heavy loss to the estimator.
func TestReorderingStorm(t *testing.T) {
	data := testData(31, 60_000)
	tb, err := New(Config{Mirrors: 2, Data: data, Session: singleLayerConfig(), Rate: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	mk := mirrorLoss(5300, 0, []float64{0.10, 0.10})
	r, err := tb.AddReceiverWith(ReceiverOpts{
		Loss:         func(mirror, layer int) netsim.LossProcess { return mk(mirror) },
		ReorderDepth: 48,
		ReorderSeed:  99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Run(60 * tb.sess.Codec().N()); err != nil {
		t.Fatal(err)
	}
	if !r.Done() || r.Err() != nil {
		t.Fatalf("never decoded under reordering: %v", r.Err())
	}
	got, err := r.File()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("file mismatch under reordering")
	}
	if loss := r.Engine.MeasuredLoss(); loss > 0.5 {
		t.Fatalf("reordering inflated measured loss to %.2f (injected 0.10)", loss)
	}
}

// TestDutyCycledReceiver: a client that sleeps half of every 0.6s period
// misses every packet sent while deaf, yet still completes — just in more
// carousel rounds than an always-on peer in the same testbed. This is the
// paper's interrupted-download property with the interruption pattern
// pushed to a 50% duty cycle.
func TestDutyCycledReceiver(t *testing.T) {
	data := testData(37, 50_000)
	tb, err := New(Config{Mirrors: 2, Data: data, Session: singleLayerConfig(), Rate: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	always, err := tb.AddReceiver(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	duty, err := tb.AddReceiverWith(ReceiverOpts{WakeFor: 0.3, SleepFor: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Run(60 * tb.sess.Codec().N()); err != nil {
		t.Fatal(err)
	}
	for name, r := range map[string]*Receiver{"always-on": always, "duty-cycled": duty} {
		if !r.Done() || r.Err() != nil {
			t.Fatalf("%s receiver never decoded: %v", name, r.Err())
		}
		got, err := r.File()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%s: file mismatch", name)
		}
	}
	if duty.RoundsToDecode() <= always.RoundsToDecode() {
		t.Fatalf("duty-cycled receiver decoded in %d rounds, always-on needed %d",
			duty.RoundsToDecode(), always.RoundsToDecode())
	}
}

// TestMirrorCrashRestartRejoin: a mirror crashes mid-download, losing its
// membership table; its carousel halts. After restart the receiver's rejoin
// watchdog notices the silent source and re-subscribes, and harvesting from
// that mirror resumes — automatically, no manual intervention.
func TestMirrorCrashRestartRejoin(t *testing.T) {
	data := testData(41, 60_000)
	mk := mirrorLoss(5400, 0, []float64{0.10, 0.10})

	t.Run("restart", func(t *testing.T) {
		tb, err := New(Config{Mirrors: 2, Data: data, Session: singleLayerConfig(), Rate: 100})
		if err != nil {
			t.Fatal(err)
		}
		defer tb.Close()
		rejoined := 0
		r, err := tb.AddReceiverWith(ReceiverOpts{
			Loss:           func(mirror, layer int) netsim.LossProcess { return mk(mirror) },
			RejoinInterval: 0.25,
			Rejoined:       &rejoined,
		})
		if err != nil {
			t.Fatal(err)
		}
		var roundsAtCrash, roundsAtRestart int
		var gotAtRestart uint64
		tb.At(0.15, func() {
			roundsAtCrash = tb.Mirrors[1].Rounds()
			tb.Mirrors[1].Crash()
		})
		tb.At(0.80, func() {
			roundsAtRestart = tb.Mirrors[1].Rounds()
			gotAtRestart = r.got[1]
			tb.Mirrors[1].Restart()
		})
		if _, err := tb.Run(60 * tb.sess.Codec().N()); err != nil {
			t.Fatal(err)
		}
		if !r.Done() || r.Err() != nil {
			t.Fatalf("never decoded across the crash: %v", r.Err())
		}
		got, err := r.File()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("file mismatch across the crash")
		}
		if roundsAtRestart != roundsAtCrash {
			t.Fatalf("crashed mirror kept emitting: %d rounds at crash, %d at restart",
				roundsAtCrash, roundsAtRestart)
		}
		if rejoined == 0 {
			t.Fatal("watchdog never rejoined the silent mirror")
		}
		if r.got[1] <= gotAtRestart {
			t.Fatalf("no packets harvested from the restarted mirror (%d at restart, %d final)",
				gotAtRestart, r.got[1])
		}
	})

	t.Run("crash-forever", func(t *testing.T) {
		// The mirror never comes back: the fountain property means the
		// surviving mirror alone completes the download.
		tb, err := New(Config{Mirrors: 2, Data: data, Session: singleLayerConfig(), Rate: 100})
		if err != nil {
			t.Fatal(err)
		}
		defer tb.Close()
		rejoined := 0
		r, err := tb.AddReceiverWith(ReceiverOpts{
			Loss:           func(mirror, layer int) netsim.LossProcess { return mk(mirror) },
			RejoinInterval: 0.25,
			Rejoined:       &rejoined,
		})
		if err != nil {
			t.Fatal(err)
		}
		tb.At(0.15, func() { tb.Mirrors[1].Crash() })
		if _, err := tb.Run(60 * tb.sess.Codec().N()); err != nil {
			t.Fatal(err)
		}
		if !r.Done() || r.Err() != nil {
			t.Fatalf("surviving mirror did not carry the download: %v", r.Err())
		}
		got, err := r.File()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("file mismatch")
		}
	})
}

// TestHostileChannelDeterministic: the full fault matrix — loss,
// corruption, duplication, reordering, a duty-cycled radio, a mirror
// crash/restart, and the rejoin watchdog — produces bit-identical outcomes
// on every run. This is the property that lets the hostile-channel tests
// assert exact counts instead of timing margins.
func TestHostileChannelDeterministic(t *testing.T) {
	data := testData(43, 60_000)
	type outcome struct {
		rounds   int
		corrupt  int
		rejoined int
		stats    []string
	}
	once := func() outcome {
		t.Helper()
		tb, err := New(Config{Mirrors: 3, Data: data, Session: singleLayerConfig(), Rate: 100})
		if err != nil {
			t.Fatal(err)
		}
		defer tb.Close()
		mk := mirrorLoss(5500, 0, []float64{0.08, 0.10, 0.12})
		rejoined := 0
		r, err := tb.AddReceiverWith(ReceiverOpts{
			Loss:           func(mirror, layer int) netsim.LossProcess { return mk(mirror) },
			Corrupt:        func(mirror int) netsim.LossProcess { return bern(0.05, 5600, mirror) },
			Dup:            func(mirror int) netsim.LossProcess { return bern(0.10, 5700, mirror) },
			ReorderDepth:   16,
			ReorderSeed:    7,
			WakeFor:        0.5,
			SleepFor:       0.2,
			RejoinInterval: 0.9,
			Rejoined:       &rejoined,
		})
		if err != nil {
			t.Fatal(err)
		}
		tb.At(0.35, func() { tb.Mirrors[2].Crash() })
		tb.At(1.10, func() { tb.Mirrors[2].Restart() })
		if _, err := tb.Run(80 * tb.sess.Codec().N()); err != nil {
			t.Fatal(err)
		}
		if !r.Done() || r.Err() != nil {
			t.Fatalf("never decoded under the full matrix: %v", r.Err())
		}
		got, err := r.File()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("file mismatch under the full matrix")
		}
		o := outcome{rounds: r.RoundsToDecode(), corrupt: r.Engine.Corrupt(), rejoined: rejoined}
		for _, id := range r.Engine.Sources() {
			o.stats = append(o.stats, fmt.Sprintf("%+v", r.Engine.SourceStats(id)))
		}
		return o
	}
	a, b := once(), once()
	if a.rounds != b.rounds || a.corrupt != b.corrupt || a.rejoined != b.rejoined {
		t.Fatalf("runs diverged: %+v vs %+v", a, b)
	}
	for i := range a.stats {
		if a.stats[i] != b.stats[i] {
			t.Fatalf("source %d stats diverged:\n%s\n%s", i, a.stats[i], b.stats[i])
		}
	}
	if a.corrupt == 0 {
		t.Fatal("matrix scenario recorded no corruption")
	}
}
