package harness

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/proto"
)

func testData(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func singleLayerConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Layers = 1
	cfg.Session = 0x5001
	cfg.Seed = 42
	return cfg
}

// mirrorLoss builds a per-(receiver, mirror) Bernoulli loss process whose
// randomness is derived only from (seed, receiver, mirror) — the same
// mirror feed gets the identical loss sequence whether it runs inside a
// multi-source testbed or alone, which is what makes the speedup
// comparison below apples-to-apples.
func mirrorLoss(seed int64, rcv int, rates []float64) func(mirror int) netsim.LossProcess {
	return func(mirror int) netsim.LossProcess {
		return &netsim.Bernoulli{P: rates[mirror], Rng: netsim.ReceiverRNG(seed, rcv*64+mirror)}
	}
}

// TestMultiSourceBeatsSingleMirror is the acceptance scenario: a client
// harvesting from 3 staggered mirrors under 10-20% injected loss must
// decode the file in measurably fewer carousel rounds than it needs from
// any one of those mirrors alone (same loss processes, same seeds). The
// whole round-trip — service registry, control descriptor with phase,
// carousel, bus, source-aware client, decoder — runs on the virtual clock:
// no sockets, no sleeps, deterministic.
func TestMultiSourceBeatsSingleMirror(t *testing.T) {
	data := testData(7, 120_000)
	lossRates := []float64{0.10, 0.15, 0.20} // every path ≥10% loss
	const seed = 900

	run := func(mirrors int, pick int) int {
		t.Helper()
		cfg := Config{Data: data, Session: singleLayerConfig(), Rate: 100}
		mk := mirrorLoss(seed, 0, lossRates)
		if mirrors == 1 {
			cfg.Mirrors = 1
			cfg.Phases = []int{0}
		} else {
			cfg.Mirrors = mirrors
		}
		tb, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer tb.Close()
		r, err := tb.AddReceiver(0, func(mirror, layer int) netsim.LossProcess {
			if mirrors == 1 {
				return mk(pick) // the lone mirror gets mirror `pick`'s path
			}
			return mk(mirror)
		})
		if err != nil {
			t.Fatal(err)
		}
		n := tb.sess.Codec().N()
		if _, err := tb.Run(40 * n); err != nil {
			t.Fatal(err)
		}
		if err := r.Err(); err != nil {
			t.Fatal(err)
		}
		if !r.Done() {
			t.Fatalf("mirrors=%d pick=%d: never decoded", mirrors, pick)
		}
		got, err := r.File()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("mirrors=%d pick=%d: corrupted file", mirrors, pick)
		}
		return r.RoundsToDecode()
	}

	multi := run(3, -1)
	bestSingle := -1
	for m := range lossRates {
		single := run(1, m)
		t.Logf("single mirror %d (%.0f%% loss): %d rounds", m, 100*lossRates[m], single)
		if bestSingle < 0 || single < bestSingle {
			bestSingle = single
		}
	}
	t.Logf("3 staggered mirrors: %d rounds (best single %d)", multi, bestSingle)
	if multi*2 > bestSingle {
		t.Fatalf("multi-source %d rounds not measurably better than best single mirror %d", multi, bestSingle)
	}
}

// TestHarnessDeterministic: the fixed-seed testbed must be bit-reproducible
// — identical rounds-to-decode, packet counts, and per-source accounting on
// every run. This is the property every future scenario test builds on.
func TestHarnessDeterministic(t *testing.T) {
	data := testData(11, 60_000)
	type outcome struct {
		rounds  int
		eta     float64
		sources []int
		stats   []string
	}
	once := func() outcome {
		t.Helper()
		tb, err := New(Config{Mirrors: 3, Data: data, Session: singleLayerConfig(), Rate: 100})
		if err != nil {
			t.Fatal(err)
		}
		defer tb.Close()
		mk := mirrorLoss(77, 0, []float64{0.12, 0.12, 0.12})
		r, err := tb.AddReceiver(0, func(mirror, layer int) netsim.LossProcess { return mk(mirror) })
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tb.Run(40 * tb.sess.Codec().N()); err != nil {
			t.Fatal(err)
		}
		if !r.Done() || r.Err() != nil {
			t.Fatalf("did not decode: %v", r.Err())
		}
		o := outcome{rounds: r.RoundsToDecode(), sources: r.Engine.Sources()}
		o.eta, _, _ = r.Engine.Efficiency()
		for _, id := range o.sources {
			o.stats = append(o.stats, fmt.Sprintf("%+v", r.Engine.SourceStats(id)))
		}
		return o
	}
	a, b := once(), once()
	if a.rounds != b.rounds || a.eta != b.eta {
		t.Fatalf("runs diverged: %d/%v vs %d/%v", a.rounds, a.eta, b.rounds, b.eta)
	}
	for i := range a.stats {
		if a.stats[i] != b.stats[i] {
			t.Fatalf("source %d stats diverged:\n%s\n%s", a.sources[i], a.stats[i], b.stats[i])
		}
	}
	if len(a.sources) != 3 {
		t.Fatalf("sources = %v, want 3", a.sources)
	}
}

// TestPhasesAdvertisedAndStaggered: the control path must carry each
// mirror's phase (HELLO answer via the service registry), the default
// stagger must spread mirrors across one carousel cycle, and the phases
// must actually shift the carousels.
func TestPhasesAdvertisedAndStaggered(t *testing.T) {
	data := testData(13, 40_000)
	tb, err := New(Config{Mirrors: 3, Data: data, Session: singleLayerConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	cycle := CyclePeriod(tb.sess)
	seen := map[uint32]bool{}
	for i, m := range tb.Mirrors {
		want := uint32(cycle * i / 3)
		if m.Info.Phase != want {
			t.Fatalf("mirror %d advertises phase %d, want %d", i, m.Info.Phase, want)
		}
		if got := m.Carousel.Phase(); got != int(want) {
			t.Fatalf("mirror %d carousel phase %d, want %d", i, got, want)
		}
		if seen[m.Info.Phase] {
			t.Fatalf("duplicate phase %d", m.Info.Phase)
		}
		seen[m.Info.Phase] = true
		if m.Info.Session != tb.sess.Config().Session {
			t.Fatalf("mirror %d advertises session %#x", i, m.Info.Session)
		}
	}
	// Phase staggering is the §8 duplicate-minimizer: a lossless receiver
	// must see zero cross-mirror duplicates until the carousels wrap into
	// each other's start positions.
	r, err := tb.AddReceiver(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	probe := cycle / 3 // rounds until mirror 0 reaches mirror 1's phase
	if _, err := tb.Run(probe - 1); err != nil {
		t.Fatal(err)
	}
	dup := 0
	for _, id := range r.Engine.Sources() {
		dup += r.Engine.SourceStats(id).Duplicate
	}
	if dup != 0 {
		t.Fatalf("%d duplicates before the staggered carousels overlapped", dup)
	}
}

// TestSoakGilbertElliott is the end-to-end soak of the harness: 3 mirrors,
// 8 receivers, bursty Gilbert-Elliott loss (mean ≈12%) injected per
// (receiver, mirror, layer) on the 4-layer protocol. Every receiver must
// reconstruct its file bit-exactly and keep the duplicate-efficiency ηd
// and reception efficiency η within bounds. Runs under -race in CI like
// every other test; the harness itself is single-threaded and
// deterministic.
func TestSoakGilbertElliott(t *testing.T) {
	data := testData(17, 90_000)
	cfg := core.DefaultConfig()
	cfg.Layers = 4
	cfg.SPInterval = 8
	cfg.Session = 0x5002
	cfg.Seed = 43
	tb, err := New(Config{Mirrors: 3, Data: data, Session: cfg, Rate: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	const receivers = 8
	rs := make([]*Receiver, receivers)
	for i := 0; i < receivers; i++ {
		rcv := i
		rs[i], err = tb.AddReceiver(1, func(mirror, layer int) netsim.LossProcess {
			rng := netsim.ReceiverRNG(3000+int64(rcv), mirror*8+layer)
			return &netsim.GilbertElliott{
				PGB: 0.05, PBG: 0.25, LossGood: 0.05, LossBad: 0.55, Rng: rng,
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	ge := &netsim.GilbertElliott{PGB: 0.05, PBG: 0.25, LossGood: 0.05, LossBad: 0.55}
	if mean := ge.MeanLoss(); mean < 0.10 || mean > 0.20 {
		t.Fatalf("soak loss model mean %.3f outside the 10-20%% band", mean)
	}
	if _, err := tb.Run(60 * tb.sess.Codec().N()); err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		if err := r.Err(); err != nil {
			t.Fatalf("receiver %d: %v", i, err)
		}
		if !r.Done() {
			t.Fatalf("receiver %d never decoded", i)
		}
		got, err := r.File()
		if err != nil {
			t.Fatalf("receiver %d: %v", i, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("receiver %d: corrupted file", i)
		}
		eta, _, etaD := r.Engine.Efficiency()
		if eta <= 0.10 || eta > 1.01 {
			t.Fatalf("receiver %d: η=%.3f out of bounds", i, eta)
		}
		if etaD < 0.40 {
			t.Fatalf("receiver %d: duplicate efficiency ηd=%.3f below bound", i, etaD)
		}
		// Per-source bookkeeping must cover all three mirrors and add up
		// to the aggregate the decoder saw.
		total, distinct := 0, 0
		for _, id := range r.Engine.Sources() {
			st := r.Engine.SourceStats(id)
			total += st.Received
			distinct += st.Distinct
		}
		rTotal, rDistinct, _ := r.Engine.Stats()
		if total != rTotal || distinct != rDistinct {
			t.Fatalf("receiver %d: per-source sums (%d, %d) != receiver (%d, %d)",
				i, total, distinct, rTotal, rDistinct)
		}
	}
}

// TestHelloDescriptorDecodes: a receiver built purely from the descriptor
// the mirror's control path returned (not from the session object) must
// decode — proving the HELLO advertisement carries everything needed,
// phase included.
func TestHelloDescriptorDecodes(t *testing.T) {
	data := testData(19, 30_000)
	tb, err := New(Config{Mirrors: 2, Data: data, Session: singleLayerConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	for i, m := range tb.Mirrors {
		reparsed, err := proto.ParseSessionInfo(m.Info.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		if reparsed != m.Info {
			t.Fatalf("mirror %d descriptor does not round-trip", i)
		}
	}
	r, err := tb.AddReceiver(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Run(10 * tb.sess.Codec().N()); err != nil {
		t.Fatal(err)
	}
	if !r.Done() {
		t.Fatal("lossless receiver never decoded")
	}
	got, err := r.File()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("corrupted file")
	}
}
