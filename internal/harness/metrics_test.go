package harness

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/service"
	"repro/internal/transport"
)

// scraped reads one series value from a registry snapshot (fails the test
// if the series is absent). Values in this file are small integers, so the
// float64 round-trip is exact.
func scraped(t *testing.T, reg *metrics.Registry, name string) uint64 {
	t.Helper()
	for _, s := range reg.Snapshot() {
		if s.Name == name {
			return uint64(s.Value)
		}
	}
	t.Fatalf("series %q not in registry snapshot", name)
	return 0
}

// TestMetricsMatchChannelGroundTruth is the "metrics that can't lie"
// acceptance test: a deterministic fault matrix runs the full
// service→transport→client path, and every observability readout — the
// service's metrics registry, its Stats snapshot, and the control-plane
// stats message — must agree exactly with what the channel verifiably did
// (the BusClient fault-pipeline counts and the carousel's own emission
// count). No sampling, no estimation: exact equalities.
func TestMetricsMatchChannelGroundTruth(t *testing.T) {
	type row struct {
		name                string
		loss, corrupt, dup  float64
		rounds              int
		runToCompletion     bool
		reconcileEngineView bool // requires the decoder NOT to finish
	}
	rows := []row{
		// A clean channel: every emitted packet arrives exactly once.
		{name: "clean", rounds: 0, runToCompletion: true},
		// Heavy loss, too few rounds to decode: the engine sees exactly
		// the surviving packets.
		{name: "loss", loss: 0.5, rounds: 20, reconcileEngineView: true},
		// Corruption only: everything arrives, flipped copies are counted
		// once by the channel and once by the CRC check.
		{name: "corrupt", corrupt: 0.25, rounds: 20, reconcileEngineView: true},
		// Duplication only: extra copies, same serials.
		{name: "dup", dup: 0.3, rounds: 20, reconcileEngineView: true},
		// Everything at once: the conservation identity must still hold.
		{name: "mixed", loss: 0.2, corrupt: 0.1, dup: 0.2, rounds: 20},
	}
	for _, rw := range rows {
		rw := rw
		t.Run(rw.name, func(t *testing.T) {
			data := testData(77, 20_000)
			tb, err := New(Config{Mirrors: 1, Data: data, Session: singleLayerConfig(), Rate: 100})
			if err != nil {
				t.Fatal(err)
			}
			defer tb.Close()
			opts := ReceiverOpts{}
			if rw.loss > 0 {
				opts.Loss = func(mirror, layer int) netsim.LossProcess { return bern(rw.loss, 7100, mirror) }
			}
			if rw.corrupt > 0 {
				opts.Corrupt = func(mirror int) netsim.LossProcess { return bern(rw.corrupt, 7200, mirror) }
			}
			if rw.dup > 0 {
				opts.Dup = func(mirror int) netsim.LossProcess { return bern(rw.dup, 7300, mirror) }
			}
			r, err := tb.AddReceiverWith(opts)
			if err != nil {
				t.Fatal(err)
			}
			rounds := rw.rounds
			if rw.runToCompletion {
				rounds = 60 * tb.sess.Codec().N()
			}
			if _, err := tb.Run(rounds); err != nil {
				t.Fatal(err)
			}
			if err := r.Err(); err != nil {
				t.Fatal(err)
			}
			if rw.runToCompletion {
				if !r.Done() {
					t.Fatal("clean channel never decoded")
				}
				got, err := r.File()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, data) {
					t.Fatal("file mismatch on clean channel")
				}
			}
			if rw.reconcileEngineView && r.Done() {
				t.Fatal("test premise broken: decoder completed, engine counts stop tracking the channel; reduce rounds")
			}

			m := tb.Mirrors[0]
			emitted := uint64(m.Carousel.Sent()) // the channel's own emission count
			fs := r.FaultStats(0)
			st := m.Service.Stats()

			// Conservation: every emitted packet was delivered, lost, or
			// delivered extra times by duplication — nothing else.
			if fs.Delivered != emitted-fs.Lost+fs.Duplicated {
				t.Fatalf("channel books don't balance: delivered=%d, emitted=%d lost=%d dup=%d",
					fs.Delivered, emitted, fs.Lost, fs.Duplicated)
			}
			// The harness's independent per-feed delivery count agrees.
			if r.got[0] != fs.Delivered {
				t.Fatalf("harness counted %d deliveries, channel %d", r.got[0], fs.Delivered)
			}
			// The service counter and the metrics registry report exactly
			// the carousel's emission count.
			if st.PacketsSent != emitted {
				t.Fatalf("service says %d packets sent, carousel emitted %d", st.PacketsSent, emitted)
			}
			if v := scraped(t, m.Service.Metrics(), "fountain_packets_sent_total"); v != emitted {
				t.Fatalf("registry says %d packets sent, carousel emitted %d", v, emitted)
			}
			// EmitRound runs the scheduler's own emission path, so manual
			// rounds land in the same round counter — it must match the
			// carousel exactly, and no catch-up activity may be invented.
			if v := scraped(t, m.Service.Metrics(), "fountain_sched_rounds_total"); v != uint64(m.Carousel.Rounds()) {
				t.Fatalf("registry counted %d rounds, carousel emitted %d", v, m.Carousel.Rounds())
			}
			if v := scraped(t, m.Service.Metrics(), "fountain_sched_catchup_rounds_total"); v != 0 {
				t.Fatalf("catch-up rounds %d on a virtual-time harness", v)
			}

			// The control-plane stats message carries the same numbers.
			snap, err := proto.ParseStats(m.Service.HandleControl(proto.MarshalStatsRequest()))
			if err != nil {
				t.Fatal(err)
			}
			if snap.PacketsSent != emitted || snap.BytesSent != st.BytesSent {
				t.Fatalf("control stats (pkts=%d bytes=%d) disagree with service (pkts=%d bytes=%d)",
					snap.PacketsSent, snap.BytesSent, emitted, st.BytesSent)
			}
			if snap.Sessions != 1 || snap.Subscribers != 1 || snap.Draining != 0 {
				t.Fatalf("control stats shape: %+v", snap)
			}

			// Fault-specific equalities against the channel's ground truth.
			es := r.Engine.SourceStats(0)
			if rw.name == "clean" && (fs.Lost != 0 || fs.Corrupted != 0 || fs.Duplicated != 0) {
				t.Fatalf("faults on a clean channel: %+v", fs)
			}
			if rw.loss > 0 && fs.Lost == 0 {
				t.Fatal("loss configured but channel dropped nothing")
			}
			if rw.reconcileEngineView {
				// Every delivery reached the engine: valid packets were
				// counted received, flipped ones corrupt.
				if got := uint64(es.Received) + uint64(es.Corrupt); got != fs.Delivered {
					t.Fatalf("engine saw %d packets (recv=%d corrupt=%d), channel delivered %d",
						got, es.Received, es.Corrupt, fs.Delivered)
				}
				switch rw.name {
				case "corrupt":
					if fs.Corrupted == 0 || uint64(es.Corrupt) != fs.Corrupted {
						t.Fatalf("engine counted %d corrupt, channel flipped %d", es.Corrupt, fs.Corrupted)
					}
				case "dup":
					if fs.Duplicated == 0 || uint64(es.Duplicate) != fs.Duplicated {
						t.Fatalf("engine counted %d duplicates, channel duplicated %d", es.Duplicate, fs.Duplicated)
					}
				}
				// The client's per-source counters are themselves exported
				// series; the registry view must match the engine view.
				reg := metrics.NewRegistry()
				r.Engine.RegisterMetrics(reg)
				if v := scraped(t, reg, `fountain_client_corrupt_total{source="0"}`); v != uint64(es.Corrupt) {
					t.Fatalf("client registry corrupt=%d, engine %d", v, es.Corrupt)
				}
				if v := scraped(t, reg, `fountain_client_received_total{source="0"}`); v != uint64(es.Received) {
					t.Fatalf("client registry received=%d, engine %d", v, es.Received)
				}
			}
		})
	}
}

// TestCacheEvictionMetricsGroundTruth drives a lazily encoded session
// through a cache far too small for its working set and checks that every
// eviction the cache performed is visible — identically — through the
// service Stats snapshot, the metrics registry, and the control-plane
// stats message, and that the lookup ledger balances.
func TestCacheEvictionMetricsGroundTruth(t *testing.T) {
	data := testData(88, 60_000)
	cfg := core.DefaultConfig()
	cfg.Codec = proto.CodecCauchy
	cfg.Layers = 1
	cfg.PacketLen = 500
	cfg.LazyBlock = 8
	cfg.Seed = 88
	cfg.Session = 0x6001

	bus := transport.NewBus(cfg.Layers)
	blockBytes := int64(8 * core.PadPacketLen(500))
	svc := service.New(bus, service.Config{BaseRate: 100, CacheBytes: 2 * blockBytes})
	defer svc.Close()
	sess, err := core.NewSessionCached(data, cfg, svc.Cache())
	if err != nil {
		t.Fatal(err)
	}
	if !sess.Lazy() {
		t.Fatal("Cauchy session did not take the lazy path")
	}
	car, err := svc.AddManual(sess, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Emit enough rounds to sweep the repair range several times through a
	// two-block cache: evictions are guaranteed.
	for i := 0; i < 3*sess.Codec().N(); i++ {
		if err := svc.EmitRound(car); err != nil {
			t.Fatal(err)
		}
	}

	cs := svc.Cache().StatsSnapshot()
	if cs.Evictions == 0 {
		t.Fatal("no evictions under a two-block budget — working set never exceeded the cache")
	}
	if cs.Hits+cs.Misses != cs.Lookups {
		t.Fatalf("lookup ledger broken: hits=%d misses=%d lookups=%d", cs.Hits, cs.Misses, cs.Lookups)
	}
	st := svc.Stats()
	if st.CacheEvictions != cs.Evictions || st.CacheLookups != cs.Lookups {
		t.Fatalf("Stats (evict=%d lookups=%d) disagrees with cache (evict=%d lookups=%d)",
			st.CacheEvictions, st.CacheLookups, cs.Evictions, cs.Lookups)
	}
	if v := scraped(t, svc.Metrics(), "fountain_cache_evictions_total"); v != cs.Evictions {
		t.Fatalf("registry evictions %d, cache %d", v, cs.Evictions)
	}
	if v := scraped(t, svc.Metrics(), "fountain_cache_lookups_total"); v != cs.Lookups {
		t.Fatalf("registry lookups %d, cache %d", v, cs.Lookups)
	}
	snap, err := proto.ParseStats(svc.HandleControl(proto.MarshalStatsRequest()))
	if err != nil {
		t.Fatal(err)
	}
	if snap.CacheEvictions != cs.Evictions || snap.CacheMisses != cs.Misses {
		t.Fatalf("control stats (evict=%d miss=%d) disagree with cache (evict=%d miss=%d)",
			snap.CacheEvictions, snap.CacheMisses, cs.Evictions, cs.Misses)
	}
}
