package harness

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/evtrace"
	"repro/internal/netsim"
	"repro/internal/proto"
)

func raptorSessionConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Codec = proto.CodecRaptor
	cfg.Layers = 1
	cfg.PacketLen = 16
	cfg.Session = 0x12A7
	cfg.Seed = 77
	return cfg
}

// raptorMirrorRun executes the uncoordinated-mirrors scenario once and
// returns its observables: the reconstructed file, the reception counters,
// and the decode round count. The scenario is fully seeded, so two calls
// must produce identical values — the bit-determinism half of the
// acceptance bar.
func raptorMirrorRun(t *testing.T, data []byte) (file []byte, total, distinct, dups, rounds int) {
	t.Helper()
	lossRates := []float64{0.10, 0.15, 0.20}
	tb, err := New(Config{
		Mirrors: 3,
		Data:    data,
		Session: raptorSessionConfig(),
		Rate:    100,
		// Phases nil: rateless sessions get uncoordinated pseudorandom
		// starts — with this seed all three land deep in the repair
		// region, millions of indices apart.
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	if !tb.sess.Rateless() {
		t.Fatal("session should be rateless")
	}
	r, err := tb.AddReceiver(0, func(mirror, layer int) netsim.LossProcess {
		return &netsim.Bernoulli{P: lossRates[mirror], Rng: netsim.ReceiverRNG(41, mirror)}
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Run(30_000); err != nil {
		t.Fatal(err)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if !r.Done() {
		t.Fatal("receiver never decoded")
	}
	file, err = r.File()
	if err != nil {
		t.Fatal(err)
	}
	total, distinct, _ = r.Engine.Stats()
	for _, src := range r.Engine.Sources() {
		st := r.Engine.SourceStats(src)
		dups += st.Duplicate
		t.Logf("mirror %d: recv=%d distinct=%d dup=%d loss=%.1f%%",
			src, st.Received, st.Distinct, st.Duplicate, 100*st.Loss)
	}
	return file, total, distinct, dups, r.RoundsToDecode()
}

// TestRaptorUnstaggeredMirrors is the raptor acceptance scenario: three
// mirrors of one precoded systematic session, each starting at an
// arbitrary uncoordinated stream position (no phase trick, no knowledge of
// the mirror count), 10-20% injected loss per path, k = 10000. Every
// mirror draws from a disjoint region of the unbounded repair space, so
// the receiver aggregates pure fresh rank. Acceptance bars: reception
// overhead ≤ 1.03·k, exactly zero duplicates among consumed packets, and
// a bit-deterministic outcome — the file matches the source and a repeated
// run reproduces every counter exactly.
func TestRaptorUnstaggeredMirrors(t *testing.T) {
	data := testData(3, 160_000) // k = 160000/16 = 10000 source packets

	got, total, distinct, dups, rounds := raptorMirrorRun(t, data)
	if !bytes.Equal(got, data) {
		t.Fatal("reconstructed file differs")
	}
	k := 10000
	overhead := float64(total) / float64(k)
	t.Logf("k=%d total=%d distinct=%d overhead=%.4f dups=%d rounds=%d",
		k, total, distinct, overhead, dups, rounds)
	if overhead > 1.03 {
		t.Fatalf("reception overhead %.4f exceeds 1.03", overhead)
	}
	if dups != 0 {
		t.Fatalf("%d duplicates consumed, want exactly 0 (disjoint repair regions)", dups)
	}

	got2, total2, distinct2, dups2, rounds2 := raptorMirrorRun(t, data)
	if !bytes.Equal(got2, got) {
		t.Fatal("repeated run reconstructed different bytes")
	}
	if total2 != total || distinct2 != distinct || dups2 != dups || rounds2 != rounds {
		t.Fatalf("repeated run diverged: total %d/%d distinct %d/%d dups %d/%d rounds %d/%d",
			total, total2, distinct, distinct2, dups, dups2, rounds, rounds2)
	}
}

// TestRaptorZeroLossZeroXORTraced is the systematic differential scenario:
// one mirror started at stream position 0 over a lossless channel delivers
// the k source packets verbatim. The receiver must reconstruct the file
// bit-identically from exactly k packets while performing zero
// symbol-release XOR work — pinned through the flight recorder: the trace
// carries k EvSymbol events and not a single EvRelease.
func TestRaptorZeroLossZeroXORTraced(t *testing.T) {
	cfg := raptorSessionConfig()
	cfg.Session = 0x12A8
	data := testData(5, 48_000) // k = 3000

	rec := evtrace.New(evtrace.Config{Shards: 1, ShardSize: 1 << 16})
	rec.Enable()
	tb, err := New(Config{
		Mirrors: 1,
		Data:    data,
		Session: cfg,
		Rate:    100,
		Phases:  []int{0}, // systematic start: indices 0,1,2,...
		Trace:   rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	r, err := tb.AddReceiver(0, nil) // lossless
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if !r.Done() {
		t.Fatal("receiver never decoded")
	}
	got, err := r.File()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("reconstructed file differs")
	}
	total, distinct, k := r.Engine.Stats()
	if total != k || distinct != k {
		t.Fatalf("lossless systematic intake total=%d distinct=%d, want exactly k=%d", total, distinct, k)
	}

	symbols, releases := 0, 0
	for _, ev := range rec.Snapshot() {
		switch ev.Type {
		case evtrace.EvSymbol:
			symbols++
		case evtrace.EvRelease:
			releases++
		}
	}
	if symbols != k {
		t.Fatalf("trace carries %d EvSymbol events, want k=%d (was the recorder attached?)", symbols, k)
	}
	if releases != 0 {
		t.Fatalf("trace carries %d EvRelease events, want 0: a lossless systematic decode must do no XOR work", releases)
	}
}
