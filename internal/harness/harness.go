// Package harness wires a complete, deterministic multi-source fountain
// testbed: N mirror services (one core.Session each under a real
// service.Service registry, staggered carousel phases advertised over the
// control path), each transmitting onto its own in-process lossy
// transport.Bus, pumped on a shared virtual clock, into any number of
// source-aware client engines with per-source, per-layer loss injection.
//
// The whole server→service→transport→client→decode round-trip runs without
// sockets, sleeps, or wall-clock pacing, so a scenario with 5-20% injected
// loss across three mirrors executes in milliseconds and produces
// bit-identical packet interleavings on every run — the in-process
// equivalent of the paper's inter-campus testbed (§7.3) extended to the §8
// mirrored-server application. Scenario tests assert on exact round counts
// instead of timing margins.
package harness

import (
	"fmt"
	"sync/atomic"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/evtrace"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/service"
	"repro/internal/transport"
)

// LossFunc builds the loss process of one (mirror, layer) feed of a
// receiver. Return nil for a lossless feed. Implementations draw their
// randomness from a per-receiver RNG (netsim.ReceiverRNG) to keep the
// testbed deterministic.
type LossFunc func(mirror, layer int) netsim.LossProcess

// Config describes a testbed.
type Config struct {
	// Mirrors is the number of mirror servers (default 1).
	Mirrors int
	// Data is the file every mirror carries.
	Data []byte
	// Session is the shared session configuration; all mirrors use the
	// same codec, seed and session id, so their encodings are identical
	// and their packets interchangeable (§8).
	Session core.Config
	// Rate is each mirror's carousel speed in rounds per virtual second
	// (default 100). All mirrors run at the same rate; relative speed
	// differences belong in scenario-specific pumps.
	Rate int
	// Phases are the per-mirror carousel start rounds. nil = stagger
	// mirrors evenly across one full carousel cycle, the §8 prescription
	// for minimizing early duplicates.
	Phases []int
	// Trace attaches a flight recorder to the whole testbed: mirror i's
	// send path is tagged Src=i, receiver j's intake and channel events
	// Actor=j, and the recorder's clock is switched to the pump's virtual
	// time (nanoseconds). Everything — all mirrors, channels and receivers
	// run on the single pump goroutine — emits through shard 0, so the
	// merged stream preserves causal emission order and a deterministic
	// scenario's trace is bit-identical across runs.
	Trace *evtrace.Recorder
}

// Mirror is one mirror server of the testbed.
type Mirror struct {
	Service  *service.Service
	Bus      *transport.Bus
	Carousel *core.Carousel
	// Info is the descriptor obtained over the mirror's control path
	// (service.HandleControl), phase included — exactly what a real
	// client would learn from a HELLO.
	Info proto.SessionInfo
	down atomic.Bool
}

// Rounds returns the number of carousel rounds this mirror has emitted.
func (m *Mirror) Rounds() int { return m.Carousel.Rounds() }

// Crash takes the mirror down hard: its carousel stops emitting and —
// like a real server restart — its membership table is gone, so even
// after Restart no packets flow until a client re-subscribes (the
// receiver's rejoin watchdog, or an explicit Reattach).
func (m *Mirror) Crash() {
	m.down.Store(true)
	m.Bus.DropAll()
}

// Restart brings a crashed mirror back. The carousel resumes from where
// it stopped with an empty membership table.
func (m *Mirror) Restart() { m.down.Store(false) }

// Down reports whether the mirror is crashed.
func (m *Mirror) Down() bool { return m.down.Load() }

// Testbed is a wired set of mirrors and receivers on one virtual clock.
type Testbed struct {
	Mirrors   []*Mirror
	Receivers []*Receiver
	cfg       Config
	sess      *core.Session
	pump      *transport.Pump
}

// CyclePeriod returns the number of rounds after which a full-subscription
// receiver has seen the entire encoding once: n for the single-layer
// randomized carousel, the reverse-binary block size 2^(g-1) for g layers.
// A rateless session has no cycle — CyclePeriod returns 0 and phase
// staggering is replaced by uncoordinated starts (see New).
func CyclePeriod(sess *core.Session) int {
	if sess.Rateless() {
		return 0
	}
	if g := sess.Config().Layers; g > 1 {
		return 1 << uint(g-1)
	}
	return sess.Codec().N()
}

// uncoordinatedStart returns mirror i's default start round for a rateless
// session: a pseudorandom draw from a 2^26-round range, the deterministic
// stand-in for "this mirror has been running for an arbitrary, unknown
// time". Unlike the fixed-rate phase trick, nothing about the cycle length
// or the mirror count enters the computation — distinct arbitrary starts
// are all the fountain property needs, and two mirrors whose index streams
// would overlap within a download horizon are improbable rather than
// engineered away.
func uncoordinatedStart(seed int64, mirror int) int {
	z := uint64(seed) ^ (uint64(mirror)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int((z ^ (z >> 31)) & (1<<26 - 1))
}

// New builds the mirrors: one session encoding shared by all (identical by
// construction — same data, codec and seed), one service + bus per mirror,
// phases staggered unless overridden, and one pump source per mirror
// stepping its carousel through the service's counting sender.
func New(cfg Config) (*Testbed, error) {
	if cfg.Mirrors < 1 {
		cfg.Mirrors = 1
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 100
	}
	sess, err := core.NewSession(cfg.Data, cfg.Session)
	if err != nil {
		return nil, err
	}
	if cfg.Phases == nil {
		if sess.Rateless() {
			// No cycle to stagger across: every mirror simply starts at an
			// arbitrary, uncoordinated stream position.
			for i := 0; i < cfg.Mirrors; i++ {
				cfg.Phases = append(cfg.Phases, uncoordinatedStart(cfg.Session.Seed, i))
			}
		} else {
			cycle := CyclePeriod(sess)
			for i := 0; i < cfg.Mirrors; i++ {
				cfg.Phases = append(cfg.Phases, cycle*i/cfg.Mirrors)
			}
		}
	}
	if len(cfg.Phases) != cfg.Mirrors {
		return nil, fmt.Errorf("harness: %d phases for %d mirrors", len(cfg.Phases), cfg.Mirrors)
	}
	tb := &Testbed{cfg: cfg, sess: sess, pump: transport.NewPump()}
	if cfg.Trace != nil {
		// Virtual-time stamps: the trace of a deterministic scenario becomes
		// a pure function of its seeds.
		pump := tb.pump
		cfg.Trace.SetClock(func() int64 { return int64(pump.Now() * 1e9) })
	}
	id := cfg.Session.Session
	for i := 0; i < cfg.Mirrors; i++ {
		bus := transport.NewBus(sess.Config().Layers)
		svc := service.New(bus, service.Config{BaseRate: cfg.Rate, Trace: cfg.Trace, TraceID: uint16(i)})
		car, err := svc.AddManual(sess, cfg.Rate, cfg.Phases[i])
		if err != nil {
			svc.Close()
			tb.Close()
			return nil, err
		}
		info, err := proto.ParseSessionInfo(svc.HandleControl(proto.MarshalHelloFor(id)))
		if err != nil {
			svc.Close()
			tb.Close()
			return nil, fmt.Errorf("harness: mirror %d control: %w", i, err)
		}
		m := &Mirror{Service: svc, Bus: bus, Carousel: car, Info: info}
		tb.Mirrors = append(tb.Mirrors, m)
		// EmitRound is the scheduler's own pooled, batched emission code:
		// the harness pumps it on a virtual clock, so every deterministic
		// scenario test doubles as an oracle that the zero-copy send path
		// emits bit-identical packets in identical order.
		tb.pump.Add(0, 1/float64(cfg.Rate), func() error {
			if m.down.Load() {
				return nil
			}
			return m.Service.EmitRound(m.Carousel)
		})
	}
	return tb, nil
}

// Receiver is one source-aware client attached to every mirror.
type Receiver struct {
	Engine  *client.Engine
	clients []*transport.BusClient
	tb      *Testbed
	err     error
	// doneRounds[m] is mirror m's emitted-round count at the moment this
	// receiver's decoder completed (-1 while incomplete).
	doneRounds []int
	complete   bool
	doneTime   float64 // virtual time of completion
	// got[m] counts packets delivered by mirror m's feed (post-loss,
	// pre-decode) — the rejoin watchdog's liveness signal.
	got []uint64
}

// AddReceiver attaches a receiver subscribed at startLevel on every
// mirror, with loss (may be nil) building each (mirror, layer) feed's loss
// process. The engine's effective level (worst-source rule) drives all
// subscriptions together.
func (tb *Testbed) AddReceiver(startLevel int, loss LossFunc) (*Receiver, error) {
	return tb.AddReceiverWith(ReceiverOpts{StartLevel: startLevel, Loss: loss})
}

// ReceiverOpts configures a receiver's hostile-channel conditions beyond
// plain loss. Every knob is deterministic: same options, same seeds, same
// delivery sequence on every run.
type ReceiverOpts struct {
	// StartLevel is the initial subscription level on every mirror.
	StartLevel int
	// Loss builds each (mirror, layer) feed's loss process (may be nil).
	Loss LossFunc
	// Corrupt builds a per-mirror corruption process: each "lost" draw
	// instead flips one byte of the delivered copy, exercising the CRC32C
	// integrity check end to end (nil = no corruption).
	Corrupt func(mirror int) netsim.LossProcess
	// Dup builds a per-mirror duplication process: each "lost" draw
	// delivers the packet twice (nil = no duplication).
	Dup func(mirror int) netsim.LossProcess
	// ReorderDepth > 0 inserts a reordering buffer of that depth on every
	// mirror feed, releasing packets in a seed-determined shuffle.
	ReorderDepth int
	ReorderSeed  int64
	// WakeFor/SleepFor > 0 duty-cycle the receiver: awake for WakeFor
	// virtual seconds, then deaf for SleepFor, repeating — the §7.2
	// sleep/resume client. Packets sent while asleep are gone (UDP).
	WakeFor, SleepFor float64
	// RejoinInterval > 0 arms a watchdog that fires every interval of
	// virtual time and re-subscribes to any mirror that delivered nothing
	// since the previous check — the in-process model of the client's
	// control-plane rejoin after a mirror crash/restart wiped its
	// membership table.
	RejoinInterval float64
	// Rejoined, if non-nil, is incremented each time the watchdog
	// re-subscribes to a silent mirror (observability for tests).
	Rejoined *int
}

// AddReceiverWith attaches a receiver with full hostile-channel options.
func (tb *Testbed) AddReceiverWith(opts ReceiverOpts) (*Receiver, error) {
	r := &Receiver{tb: tb}
	r.doneRounds = make([]int, len(tb.Mirrors))
	for i := range r.doneRounds {
		r.doneRounds[i] = -1
	}
	eng, err := client.NewMultiSource(tb.Mirrors[0].Info, len(tb.Mirrors), opts.StartLevel, func(level int) {
		for _, bc := range r.clients {
			bc.SetLevel(level)
		}
	})
	if err != nil {
		return nil, err
	}
	r.Engine = eng
	actor := uint16(len(tb.Receivers))
	eng.SetTrace(tb.cfg.Trace.Shard(0), actor)
	r.got = make([]uint64, len(tb.Mirrors))
	lastGot := make([]uint64, len(tb.Mirrors))
	for mi, m := range tb.Mirrors {
		src := mi
		bc := m.Bus.NewClient(opts.StartLevel, nil, func(layer int, pkt []byte) {
			r.got[src]++
			if r.err != nil || r.Engine.Done() {
				return
			}
			done, err := r.Engine.HandlePacketFrom(src, pkt)
			if err != nil {
				r.err = err
				return
			}
			if done {
				r.markDone()
			}
		})
		if opts.Loss != nil {
			for layer := 0; layer < tb.sess.Config().Layers; layer++ {
				bc.SetLayerLoss(layer, opts.Loss(src, layer))
			}
		}
		if opts.Corrupt != nil {
			bc.SetCorruption(opts.Corrupt(src))
		}
		if opts.Dup != nil {
			bc.SetDuplication(opts.Dup(src))
		}
		if opts.ReorderDepth > 0 {
			bc.SetReorder(opts.ReorderDepth, opts.ReorderSeed+int64(src))
		}
		bc.SetTrace(tb.cfg.Trace.Shard(0), tb.cfg.Session.Session, uint16(src), actor)
		r.clients = append(r.clients, bc)
	}
	if opts.WakeFor > 0 && opts.SleepFor > 0 {
		period := opts.WakeFor + opts.SleepFor
		tb.pump.Add(opts.WakeFor, period, func() error {
			for _, bc := range r.clients {
				bc.SetAsleep(true)
			}
			return nil
		})
		tb.pump.Add(period, period, func() error {
			for _, bc := range r.clients {
				bc.SetAsleep(false)
			}
			return nil
		})
	}
	if opts.RejoinInterval > 0 {
		tb.pump.Add(opts.RejoinInterval, opts.RejoinInterval, func() error {
			if r.Engine.Done() || r.err != nil {
				return nil
			}
			for i, bc := range r.clients {
				if r.got[i] == lastGot[i] {
					bc.Reattach()
					if opts.Rejoined != nil {
						*opts.Rejoined++
					}
				}
				lastGot[i] = r.got[i]
			}
			return nil
		})
	}
	tb.Receivers = append(tb.Receivers, r)
	return r, nil
}

func (r *Receiver) markDone() {
	r.complete = true
	r.doneTime = r.tb.pump.Now()
	for i, m := range r.tb.Mirrors {
		r.doneRounds[i] = m.Rounds()
	}
}

// FaultStats returns the ground-truth fault accounting of this receiver's
// feed from one mirror: what the in-process channel verifiably delivered,
// dropped, corrupted, and duplicated. Acceptance tests reconcile metrics
// registries and client counters against these.
func (r *Receiver) FaultStats(mirror int) transport.FaultStats {
	return r.clients[mirror].FaultStats()
}

// Done reports whether the receiver's decoder completed.
func (r *Receiver) Done() bool { return r.Engine.Done() }

// Err returns the first packet-handling error, if any.
func (r *Receiver) Err() error { return r.err }

// RoundsToDecode returns the largest per-mirror emitted-round count at the
// moment the decoder completed — the "carousel rounds" cost of the
// download, comparable across testbeds with different mirror counts
// (mirrors run at equal rates, so this is proportional to virtual time).
// It returns -1 while incomplete.
func (r *Receiver) RoundsToDecode() int {
	if !r.complete {
		return -1
	}
	max := 0
	for _, n := range r.doneRounds {
		if n > max {
			max = n
		}
	}
	return max
}

// TimeToDecode returns the virtual time at which the decoder completed
// (-1 while incomplete).
func (r *Receiver) TimeToDecode() float64 {
	if !r.complete {
		return -1
	}
	return r.doneTime
}

// File reassembles and verifies the receiver's download.
func (r *Receiver) File() ([]byte, error) { return r.Engine.File() }

// At schedules fn to run once at virtual time t — scenario scripting for
// crash/restart and similar one-shot events.
func (tb *Testbed) At(t float64, fn func()) {
	fired := false
	tb.pump.Add(t, 1e18, func() error {
		if !fired {
			fired = true
			fn()
		}
		return nil
	})
}

// Run pumps the mirrors' carousels in virtual-time order until every
// receiver has decoded (or errored), or maxRounds rounds have been emitted
// per mirror. It returns the total pump steps executed.
func (tb *Testbed) Run(maxRounds int) (steps int, err error) {
	total := maxRounds * len(tb.Mirrors)
	return tb.pump.Run(total, func() bool {
		for _, r := range tb.Receivers {
			if !r.Engine.Done() && r.err == nil {
				return false
			}
		}
		return true
	})
}

// Close tears the mirrors down (services, registries, caches).
func (tb *Testbed) Close() {
	for _, m := range tb.Mirrors {
		m.Service.Close()
	}
	for _, r := range tb.Receivers {
		for _, bc := range r.clients {
			bc.Close()
		}
	}
}
