// Package harness wires a complete, deterministic multi-source fountain
// testbed: N mirror services (one core.Session each under a real
// service.Service registry, staggered carousel phases advertised over the
// control path), each transmitting onto its own in-process lossy
// transport.Bus, pumped on a shared virtual clock, into any number of
// source-aware client engines with per-source, per-layer loss injection.
//
// The whole server→service→transport→client→decode round-trip runs without
// sockets, sleeps, or wall-clock pacing, so a scenario with 5-20% injected
// loss across three mirrors executes in milliseconds and produces
// bit-identical packet interleavings on every run — the in-process
// equivalent of the paper's inter-campus testbed (§7.3) extended to the §8
// mirrored-server application. Scenario tests assert on exact round counts
// instead of timing margins.
package harness

import (
	"fmt"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/service"
	"repro/internal/transport"
)

// LossFunc builds the loss process of one (mirror, layer) feed of a
// receiver. Return nil for a lossless feed. Implementations draw their
// randomness from a per-receiver RNG (netsim.ReceiverRNG) to keep the
// testbed deterministic.
type LossFunc func(mirror, layer int) netsim.LossProcess

// Config describes a testbed.
type Config struct {
	// Mirrors is the number of mirror servers (default 1).
	Mirrors int
	// Data is the file every mirror carries.
	Data []byte
	// Session is the shared session configuration; all mirrors use the
	// same codec, seed and session id, so their encodings are identical
	// and their packets interchangeable (§8).
	Session core.Config
	// Rate is each mirror's carousel speed in rounds per virtual second
	// (default 100). All mirrors run at the same rate; relative speed
	// differences belong in scenario-specific pumps.
	Rate int
	// Phases are the per-mirror carousel start rounds. nil = stagger
	// mirrors evenly across one full carousel cycle, the §8 prescription
	// for minimizing early duplicates.
	Phases []int
}

// Mirror is one mirror server of the testbed.
type Mirror struct {
	Service  *service.Service
	Bus      *transport.Bus
	Carousel *core.Carousel
	// Info is the descriptor obtained over the mirror's control path
	// (service.HandleControl), phase included — exactly what a real
	// client would learn from a HELLO.
	Info proto.SessionInfo
}

// Rounds returns the number of carousel rounds this mirror has emitted.
func (m *Mirror) Rounds() int { return m.Carousel.Rounds() }

// Testbed is a wired set of mirrors and receivers on one virtual clock.
type Testbed struct {
	Mirrors   []*Mirror
	Receivers []*Receiver
	cfg       Config
	sess      *core.Session
	pump      *transport.Pump
}

// CyclePeriod returns the number of rounds after which a full-subscription
// receiver has seen the entire encoding once: n for the single-layer
// randomized carousel, the reverse-binary block size 2^(g-1) for g layers.
// A rateless session has no cycle — CyclePeriod returns 0 and phase
// staggering is replaced by uncoordinated starts (see New).
func CyclePeriod(sess *core.Session) int {
	if sess.Rateless() {
		return 0
	}
	if g := sess.Config().Layers; g > 1 {
		return 1 << uint(g-1)
	}
	return sess.Codec().N()
}

// uncoordinatedStart returns mirror i's default start round for a rateless
// session: a pseudorandom draw from a 2^26-round range, the deterministic
// stand-in for "this mirror has been running for an arbitrary, unknown
// time". Unlike the fixed-rate phase trick, nothing about the cycle length
// or the mirror count enters the computation — distinct arbitrary starts
// are all the fountain property needs, and two mirrors whose index streams
// would overlap within a download horizon are improbable rather than
// engineered away.
func uncoordinatedStart(seed int64, mirror int) int {
	z := uint64(seed) ^ (uint64(mirror)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int((z ^ (z >> 31)) & (1<<26 - 1))
}

// New builds the mirrors: one session encoding shared by all (identical by
// construction — same data, codec and seed), one service + bus per mirror,
// phases staggered unless overridden, and one pump source per mirror
// stepping its carousel through the service's counting sender.
func New(cfg Config) (*Testbed, error) {
	if cfg.Mirrors < 1 {
		cfg.Mirrors = 1
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 100
	}
	sess, err := core.NewSession(cfg.Data, cfg.Session)
	if err != nil {
		return nil, err
	}
	if cfg.Phases == nil {
		if sess.Rateless() {
			// No cycle to stagger across: every mirror simply starts at an
			// arbitrary, uncoordinated stream position.
			for i := 0; i < cfg.Mirrors; i++ {
				cfg.Phases = append(cfg.Phases, uncoordinatedStart(cfg.Session.Seed, i))
			}
		} else {
			cycle := CyclePeriod(sess)
			for i := 0; i < cfg.Mirrors; i++ {
				cfg.Phases = append(cfg.Phases, cycle*i/cfg.Mirrors)
			}
		}
	}
	if len(cfg.Phases) != cfg.Mirrors {
		return nil, fmt.Errorf("harness: %d phases for %d mirrors", len(cfg.Phases), cfg.Mirrors)
	}
	tb := &Testbed{cfg: cfg, sess: sess, pump: transport.NewPump()}
	id := cfg.Session.Session
	for i := 0; i < cfg.Mirrors; i++ {
		bus := transport.NewBus(sess.Config().Layers)
		svc := service.New(bus, service.Config{BaseRate: cfg.Rate})
		car, err := svc.AddManual(sess, cfg.Rate, cfg.Phases[i])
		if err != nil {
			svc.Close()
			tb.Close()
			return nil, err
		}
		info, err := proto.ParseSessionInfo(svc.HandleControl(proto.MarshalHelloFor(id)))
		if err != nil {
			svc.Close()
			tb.Close()
			return nil, fmt.Errorf("harness: mirror %d control: %w", i, err)
		}
		m := &Mirror{Service: svc, Bus: bus, Carousel: car, Info: info}
		tb.Mirrors = append(tb.Mirrors, m)
		// EmitRound is the scheduler's own pooled, batched emission code:
		// the harness pumps it on a virtual clock, so every deterministic
		// scenario test doubles as an oracle that the zero-copy send path
		// emits bit-identical packets in identical order.
		tb.pump.Add(0, 1/float64(cfg.Rate), func() error {
			return m.Service.EmitRound(m.Carousel)
		})
	}
	return tb, nil
}

// Receiver is one source-aware client attached to every mirror.
type Receiver struct {
	Engine  *client.Engine
	clients []*transport.BusClient
	tb      *Testbed
	err     error
	// doneRounds[m] is mirror m's emitted-round count at the moment this
	// receiver's decoder completed (-1 while incomplete).
	doneRounds []int
	complete   bool
	doneTime   float64 // virtual time of completion
}

// AddReceiver attaches a receiver subscribed at startLevel on every
// mirror, with loss (may be nil) building each (mirror, layer) feed's loss
// process. The engine's effective level (worst-source rule) drives all
// subscriptions together.
func (tb *Testbed) AddReceiver(startLevel int, loss LossFunc) (*Receiver, error) {
	r := &Receiver{tb: tb}
	r.doneRounds = make([]int, len(tb.Mirrors))
	for i := range r.doneRounds {
		r.doneRounds[i] = -1
	}
	eng, err := client.NewMultiSource(tb.Mirrors[0].Info, len(tb.Mirrors), startLevel, func(level int) {
		for _, bc := range r.clients {
			bc.SetLevel(level)
		}
	})
	if err != nil {
		return nil, err
	}
	r.Engine = eng
	for mi, m := range tb.Mirrors {
		src := mi
		bc := m.Bus.NewClient(startLevel, nil, func(layer int, pkt []byte) {
			if r.err != nil || r.Engine.Done() {
				return
			}
			done, err := r.Engine.HandlePacketFrom(src, pkt)
			if err != nil {
				r.err = err
				return
			}
			if done {
				r.markDone()
			}
		})
		if loss != nil {
			for layer := 0; layer < tb.sess.Config().Layers; layer++ {
				bc.SetLayerLoss(layer, loss(src, layer))
			}
		}
		r.clients = append(r.clients, bc)
	}
	tb.Receivers = append(tb.Receivers, r)
	return r, nil
}

func (r *Receiver) markDone() {
	r.complete = true
	r.doneTime = r.tb.pump.Now()
	for i, m := range r.tb.Mirrors {
		r.doneRounds[i] = m.Rounds()
	}
}

// Done reports whether the receiver's decoder completed.
func (r *Receiver) Done() bool { return r.Engine.Done() }

// Err returns the first packet-handling error, if any.
func (r *Receiver) Err() error { return r.err }

// RoundsToDecode returns the largest per-mirror emitted-round count at the
// moment the decoder completed — the "carousel rounds" cost of the
// download, comparable across testbeds with different mirror counts
// (mirrors run at equal rates, so this is proportional to virtual time).
// It returns -1 while incomplete.
func (r *Receiver) RoundsToDecode() int {
	if !r.complete {
		return -1
	}
	max := 0
	for _, n := range r.doneRounds {
		if n > max {
			max = n
		}
	}
	return max
}

// TimeToDecode returns the virtual time at which the decoder completed
// (-1 while incomplete).
func (r *Receiver) TimeToDecode() float64 {
	if !r.complete {
		return -1
	}
	return r.doneTime
}

// File reassembles and verifies the receiver's download.
func (r *Receiver) File() ([]byte, error) { return r.Engine.File() }

// Run pumps the mirrors' carousels in virtual-time order until every
// receiver has decoded (or errored), or maxRounds rounds have been emitted
// per mirror. It returns the total pump steps executed.
func (tb *Testbed) Run(maxRounds int) (steps int, err error) {
	total := maxRounds * len(tb.Mirrors)
	return tb.pump.Run(total, func() bool {
		for _, r := range tb.Receivers {
			if !r.Engine.Done() && r.err == nil {
				return false
			}
		}
		return true
	})
}

// Close tears the mirrors down (services, registries, caches).
func (tb *Testbed) Close() {
	for _, m := range tb.Mirrors {
		m.Service.Close()
	}
	for _, r := range tb.Receivers {
		for _, bc := range r.clients {
			bc.Close()
		}
	}
}
