// Package lp implements a small dense-simplex linear-program solver:
// maximize c·x subject to A·x <= b, x >= 0.
//
// It exists to design Tornado degree distributions the same way the
// original authors did — "the degree sequences were found using linear
// programming" — by maximizing the And-Or iteration margin subject to the
// rate constraint (see internal/tornado/design.go). Problems are tiny
// (tens of variables and constraints), so a textbook two-phase tableau
// simplex with Bland's rule is entirely adequate.
package lp

import (
	"errors"
	"math"
)

// Errors returned by Solve.
var (
	ErrInfeasible = errors.New("lp: infeasible")
	ErrUnbounded  = errors.New("lp: unbounded")
)

const eps = 1e-9

// Problem is max c·x s.t. A x <= b, x >= 0. Rows of A must all have
// len(c) entries. Equality constraints can be encoded as two opposing
// inequalities.
type Problem struct {
	C []float64   // objective coefficients, length n
	A [][]float64 // m rows of length n
	B []float64   // m right-hand sides (may be negative)
}

// Solve returns an optimal x and the objective value.
func Solve(p Problem) (x []float64, obj float64, err error) {
	n := len(p.C)
	m := len(p.A)
	if len(p.B) != m {
		return nil, 0, errors.New("lp: |B| != rows of A")
	}
	for _, row := range p.A {
		if len(row) != n {
			return nil, 0, errors.New("lp: row length != |C|")
		}
	}
	// Standard form with slacks: A x + s = b. Negative b rows are negated
	// (flipping the slack sign), which then require artificial variables.
	// Phase 1 minimizes the sum of artificials; phase 2 optimizes c.
	type tableau struct {
		a     [][]float64 // m x (n + m + artCount)
		b     []float64
		basis []int
	}
	art := []int{} // rows needing artificial variables
	a := make([][]float64, m)
	b := make([]float64, m)
	for i := 0; i < m; i++ {
		row := make([]float64, n+m)
		copy(row, p.A[i])
		bi := p.B[i]
		slackSign := 1.0
		if bi < 0 {
			for j := range row {
				row[j] = -row[j]
			}
			bi = -bi
			slackSign = -1.0
		}
		row[n+i] = slackSign
		a[i] = row
		b[i] = bi
		if slackSign < 0 {
			art = append(art, i)
		}
	}
	total := n + m + len(art)
	t := tableau{a: make([][]float64, m), b: b, basis: make([]int, m)}
	artCol := n + m
	artOf := make(map[int]int) // row -> artificial column
	for _, r := range art {
		artOf[r] = artCol
		artCol++
	}
	for i := 0; i < m; i++ {
		row := make([]float64, total)
		copy(row, a[i])
		if c, ok := artOf[i]; ok {
			row[c] = 1
			t.basis[i] = c
		} else {
			t.basis[i] = n + i
		}
		t.a[i] = row
	}

	pivot := func(obj []float64, objVal *float64, maxCol int) error {
		const pivTol = 1e-7 // refuse numerically tiny pivots
		for iter := 0; iter < 20000; iter++ {
			// Entering column: Dantzig's rule (most positive reduced cost)
			// for speed and numerical quality; fall back to Bland's rule
			// after many iterations to guarantee termination.
			col := -1
			if iter < 15000 {
				best := eps
				for j := 0; j < maxCol; j++ {
					if obj[j] > best {
						best = obj[j]
						col = j
					}
				}
			} else {
				for j := 0; j < maxCol; j++ {
					if obj[j] > eps {
						col = j
						break
					}
				}
			}
			if col < 0 {
				return nil // optimal
			}
			// Ratio test; among near-ties prefer the largest pivot element
			// to keep the tableau well conditioned.
			row := -1
			best := math.Inf(1)
			for i := 0; i < m; i++ {
				if t.a[i][col] > pivTol {
					r := t.b[i] / t.a[i][col]
					switch {
					case r < best-1e-12:
						best = r
						row = i
					case r < best+1e-12 && row >= 0 && t.a[i][col] > t.a[row][col]:
						row = i
					}
				}
			}
			if row < 0 {
				return ErrUnbounded
			}
			// Pivot on (row, col).
			pv := t.a[row][col]
			for j := 0; j < total; j++ {
				t.a[row][j] /= pv
			}
			t.b[row] /= pv
			for i := 0; i < m; i++ {
				if i != row && math.Abs(t.a[i][col]) > eps {
					f := t.a[i][col]
					for j := 0; j < total; j++ {
						t.a[i][j] -= f * t.a[row][j]
					}
					t.b[i] -= f * t.b[row]
				}
			}
			if math.Abs(obj[col]) > eps {
				f := obj[col]
				for j := 0; j < total; j++ {
					obj[j] -= f * t.a[row][j]
				}
				*objVal -= f * t.b[row]
			}
			t.basis[row] = col
		}
		return errors.New("lp: iteration limit")
	}

	// Phase 1.
	if len(art) > 0 {
		obj1 := make([]float64, total)
		val1 := 0.0
		// minimize sum of artificials == maximize -sum; express reduced costs.
		for _, c := range artOf {
			obj1[c] = -1
		}
		// Make reduced costs consistent with the starting basis (artificials
		// are basic, so eliminate their columns from the objective).
		for i, c := range t.basis {
			if obj1[c] != 0 {
				f := obj1[c]
				for j := 0; j < total; j++ {
					obj1[j] -= f * t.a[i][j]
				}
				val1 -= f * t.b[i]
			}
		}
		if err := pivot(obj1, &val1, total); err != nil {
			return nil, 0, err
		}
		// val1 tracks the negative of the phase-1 objective (-sum of
		// artificials); a strictly positive residue means infeasible.
		if val1 > 1e-6 {
			return nil, 0, ErrInfeasible
		}
		// Drive any remaining (degenerate, value-0) artificial variables
		// out of the basis; rows where that is impossible are redundant
		// constraints and are dropped.
		for i := 0; i < m; i++ {
			if t.basis[i] < n+m {
				continue
			}
			driven := false
			for j := 0; j < n+m; j++ {
				if math.Abs(t.a[i][j]) > eps {
					pv := t.a[i][j]
					for jj := 0; jj < total; jj++ {
						t.a[i][jj] /= pv
					}
					t.b[i] /= pv
					for ii := 0; ii < m; ii++ {
						if ii != i && math.Abs(t.a[ii][j]) > eps {
							f := t.a[ii][j]
							for jj := 0; jj < total; jj++ {
								t.a[ii][jj] -= f * t.a[i][jj]
							}
							t.b[ii] -= f * t.b[i]
						}
					}
					t.basis[i] = j
					driven = true
					break
				}
			}
			if !driven {
				// Redundant row: remove it.
				t.a[i] = t.a[m-1]
				t.b[i] = t.b[m-1]
				t.basis[i] = t.basis[m-1]
				t.a = t.a[:m-1]
				t.b = t.b[:m-1]
				t.basis = t.basis[:m-1]
				m--
				i--
			}
		}
	}

	// Phase 2: artificial columns are excluded from entering (maxCol).
	obj2 := make([]float64, total)
	val2 := 0.0
	copy(obj2, p.C)
	for i, c := range t.basis {
		if math.Abs(obj2[c]) > eps {
			f := obj2[c]
			for j := 0; j < total; j++ {
				obj2[j] -= f * t.a[i][j]
			}
			val2 -= f * t.b[i]
		}
	}
	if err := pivot(obj2, &val2, n+m); err != nil {
		return nil, 0, err
	}
	x = make([]float64, n)
	for i, c := range t.basis {
		if c < n {
			x[c] = t.b[i]
		}
	}
	for j, cj := range p.C {
		obj += cj * x[j]
	}
	return x, obj, nil
}
