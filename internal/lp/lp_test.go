package lp

import (
	"math"
	"math/rand"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSimple2D(t *testing.T) {
	// max x+y s.t. x <= 2, y <= 3, x+y <= 4 -> obj 4.
	x, obj, err := Solve(Problem{
		C: []float64{1, 1},
		A: [][]float64{{1, 0}, {0, 1}, {1, 1}},
		B: []float64{2, 3, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(obj, 4) {
		t.Fatalf("obj = %v, want 4 (x=%v)", obj, x)
	}
}

func TestEqualityViaPairs(t *testing.T) {
	// max 3x+2y s.t. x+y == 1 (as <= and >=), x,y >= 0 -> x=1, obj 3.
	x, obj, err := Solve(Problem{
		C: []float64{3, 2},
		A: [][]float64{{1, 1}, {-1, -1}},
		B: []float64{1, -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(obj, 3) || !approx(x[0], 1) {
		t.Fatalf("got x=%v obj=%v", x, obj)
	}
}

func TestInfeasible(t *testing.T) {
	// x <= 1 and x >= 2.
	_, _, err := Solve(Problem{
		C: []float64{1},
		A: [][]float64{{1}, {-1}},
		B: []float64{1, -2},
	})
	if err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestUnbounded(t *testing.T) {
	_, _, err := Solve(Problem{
		C: []float64{1},
		A: [][]float64{{-1}},
		B: []float64{0},
	})
	if err != ErrUnbounded {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestDegenerate(t *testing.T) {
	// Degenerate vertex (redundant constraints) must still terminate
	// (Bland's rule prevents cycling).
	_, obj, err := Solve(Problem{
		C: []float64{1, 1},
		A: [][]float64{{1, 0}, {1, 0}, {0, 1}, {1, 1}},
		B: []float64{1, 1, 1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(obj, 2) {
		t.Fatalf("obj = %v, want 2", obj)
	}
}

func TestZeroObjectiveFeasibility(t *testing.T) {
	// Pure feasibility check: C = 0.
	x, obj, err := Solve(Problem{
		C: []float64{0, 0},
		A: [][]float64{{1, 1}, {-1, -1}},
		B: []float64{1, -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(obj, 0) || !approx(x[0]+x[1], 1) {
		t.Fatalf("x=%v obj=%v", x, obj)
	}
}

// TestAgainstBruteForce cross-checks random small LPs against vertex
// enumeration on a box domain.
func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 2
		// Box 0 <= x_i <= u_i plus one random coupling constraint.
		u := []float64{1 + rng.Float64()*3, 1 + rng.Float64()*3}
		a1, a2 := rng.Float64()*2, rng.Float64()*2
		bb := 0.5 + rng.Float64()*4
		c := []float64{rng.Float64()*4 - 1, rng.Float64()*4 - 1}
		prob := Problem{
			C: c,
			A: [][]float64{{1, 0}, {0, 1}, {a1, a2}},
			B: []float64{u[0], u[1], bb},
		}
		x, obj, err := Solve(prob)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Brute force on a fine grid.
		best := math.Inf(-1)
		steps := 200
		for i := 0; i <= steps; i++ {
			for j := 0; j <= steps; j++ {
				xx := u[0] * float64(i) / float64(steps)
				yy := u[1] * float64(j) / float64(steps)
				if a1*xx+a2*yy <= bb+1e-12 {
					v := c[0]*xx + c[1]*yy
					if v > best {
						best = v
					}
				}
			}
		}
		if obj < best-0.05 {
			t.Fatalf("trial %d: simplex obj %v worse than grid %v (x=%v)", trial, obj, best, x)
		}
		// Solution must be feasible.
		if x[0] < -1e-9 || x[1] < -1e-9 || x[0] > u[0]+1e-6 || x[1] > u[1]+1e-6 || a1*x[0]+a2*x[1] > bb+1e-6 {
			t.Fatalf("trial %d: infeasible solution %v", trial, x)
		}
		_ = n
	}
}

// TestSolutionsAreFeasible: whatever Solve returns must satisfy every
// constraint. Random instances with equality pairs (the degree-design
// shape) exercise the artificial-variable paths.
func TestSolutionsAreFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(8)
		m := 2 + rng.Intn(12)
		prob := Problem{C: make([]float64, n)}
		for j := range prob.C {
			prob.C[j] = rng.Float64()*2 - 1
		}
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = rng.Float64()*2 - 1
			}
			prob.A = append(prob.A, row)
			prob.B = append(prob.B, rng.Float64()*2-0.5)
		}
		// Add an equality pair sum(x) == 1.
		one := make([]float64, n)
		neg := make([]float64, n)
		for j := range one {
			one[j] = 1
			neg[j] = -1
		}
		prob.A = append(prob.A, one, neg)
		prob.B = append(prob.B, 1, -1)
		x, _, err := Solve(prob)
		if err != nil {
			continue // infeasible/unbounded is fine
		}
		for i, row := range prob.A {
			lhs := 0.0
			for j := range row {
				lhs += row[j] * x[j]
			}
			if lhs > prob.B[i]+1e-5 {
				t.Fatalf("trial %d: constraint %d violated: %.6f > %.6f (x=%v)", trial, i, lhs, prob.B[i], x)
			}
		}
		for j, v := range x {
			if v < -1e-7 {
				t.Fatalf("trial %d: x[%d] = %v negative", trial, j, v)
			}
		}
	}
}
