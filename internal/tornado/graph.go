package tornado

import (
	"math/rand"
	"sort"
)

// bigraph is a random bipartite graph between `left` value nodes and
// `right` check nodes. neighbors[c] lists the left indices (0-based within
// the layer) feeding check c. The construction is deterministic given the
// rng state, so a sender and receiver sharing the session seed derive
// identical graphs.
type bigraph struct {
	left, right int
	neighbors   [][]int32
}

// newBigraph builds the irregular graph of Luby et al. [8]: left node
// degrees follow the truncated heavy-tail distribution, and each left node
// of degree >= 3 connects to distinct uniformly random checks, which makes
// the right degrees binomial ≈ Poisson — the heavy-tail/Poisson pair is the
// capacity-approaching combination whose iterative-decoding threshold sits
// within O(1/MaxDegree) of optimal, i.e. reception overhead ε ≈ 1/D.
//
// Degree-2 left nodes get special treatment: node t is wired to the
// consecutive checks (π(t), π(t+1)) of a random check permutation π, so the
// subgraph induced by degree-2 nodes is a simple path — cycle-free. Without
// this, pairs of degree-2 nodes sharing both checks (4-cycles) appear with
// constant probability per graph and each one is an unrecoverable two-packet
// core: the decoder would stall until one of a handful of specific packets
// arrives, which is exactly the bimodal overhead blow-up we must avoid (the
// same device caps the number of degree-2 nodes at right-1 and promotes the
// excess to degree 3, keeping the stability condition strictly satisfied).
func newBigraph(left, right int, counts map[int]int, rng *rand.Rand) *bigraph {
	if left <= 0 || right <= 0 {
		panic("tornado: empty graph side")
	}
	// Copy: the degree-2 cap below must not mutate the caller's map.
	cp := make(map[int]int, len(counts))
	for d, c := range counts {
		cp[d] = c
	}
	counts = cp
	if right >= 2 && counts[2] > right-1 {
		counts[3] += counts[2] - (right - 1)
		counts[2] = right - 1
	}
	degs := make([]int, 0, len(counts))
	for d := range counts {
		degs = append(degs, d)
	}
	sort.Ints(degs)
	// Assign degrees to left nodes in a shuffled order so degree classes
	// are spread uniformly.
	leftDeg := make([]int, left)
	pos := 0
	for _, d := range degs {
		for i := 0; i < counts[d]; i++ {
			leftDeg[pos] = d
			pos++
		}
	}
	rng.Shuffle(left, func(i, j int) { leftDeg[i], leftDeg[j] = leftDeg[j], leftDeg[i] })

	// Random check ordering for the degree-2 path.
	perm := rng.Perm(right)
	next2 := 0

	g := &bigraph{left: left, right: right, neighbors: make([][]int32, right)}
	var scratch []int32
	for i, d := range leftDeg {
		if d == 2 && right >= 2 {
			a, b := perm[next2], perm[next2+1]
			next2++
			g.neighbors[a] = append(g.neighbors[a], int32(i))
			g.neighbors[b] = append(g.neighbors[b], int32(i))
			continue
		}
		if d > right {
			d = right
		}
		// Sample d distinct checks by rejection (d << right in practice).
		scratch = scratch[:0]
	pick:
		for len(scratch) < d {
			c := int32(rng.Intn(right))
			for _, prev := range scratch {
				if prev == c {
					continue pick
				}
			}
			scratch = append(scratch, c)
		}
		for _, c := range scratch {
			g.neighbors[c] = append(g.neighbors[c], int32(i))
		}
	}
	return g
}

// edgeCount returns the total number of edges (after duplicate repair).
func (g *bigraph) edgeCount() int {
	n := 0
	for _, ns := range g.neighbors {
		n += len(ns)
	}
	return n
}
