package tornado

import (
	"math/rand"
	"os"
	"testing"
	"time"
)

// TestTuningReport prints overhead and decode-time statistics for both
// variants across k. It is the measurement loop used to tune the A/B
// parameter sets toward the paper's published overhead distributions
// (Figure 2: A mean .0548 max .085 σ .0052; B mean .0306 max .055 σ .0031).
// Run with: go test ./internal/tornado -run TestTuningReport -v -tuning
func TestTuningReport(t *testing.T) {
	if testing.Short() || !tuningEnabled() {
		t.Skip("tuning report disabled (set TORNADO_TUNING=1)")
	}
	rng := rand.New(rand.NewSource(1))
	for _, p := range []Params{A(), B()} {
		for _, k := range []int{256, 1024, 4096, 16384} {
			c, err := New(p, k, 2*k, 16, 7)
			if err != nil {
				t.Fatal(err)
			}
			src := randSource(rng, k, 16)
			enc, _ := c.Encode(src)
			trials := 60
			var sum, sumSq, max float64
			var decTotal time.Duration
			for trial := 0; trial < trials; trial++ {
				d := c.NewDecoder()
				order := rng.Perm(c.N())
				used := 0
				start := time.Now()
				for _, i := range order {
					used++
					if done, _ := d.Add(i, enc[i]); done {
						break
					}
				}
				decTotal += time.Since(start)
				eps := float64(used)/float64(k) - 1
				sum += eps
				sumSq += eps * eps
				if eps > max {
					max = eps
				}
			}
			mean := sum / float64(trials)
			std := sumSq/float64(trials) - mean*mean
			if std < 0 {
				std = 0
			}
			t.Logf("%s k=%-6d levels=%v dense=%v edges=%d: eps mean=%.4f max=%.4f sd=%.4f dec=%v",
				p.Variant, k, c.Levels(), sliceOfDense(c), c.Edges(),
				mean, max, sqrt(std), decTotal/time.Duration(trials))
		}
	}
}

func sliceOfDense(c *Codec) [2]int {
	in, rows := c.DenseSize()
	return [2]int{in, rows}
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

func tuningEnabled() bool {
	return tuningEnv
}

var tuningEnv = func() bool {
	return os.Getenv("TORNADO_TUNING") == "1"
}()
