package tornado

import (
	"repro/internal/bitmat"
	"repro/internal/code"
	"repro/internal/gf"
)

// decoder is the incremental Tornado decoder. It runs the two-rule
// propagation after every packet and falls back to Gaussian elimination on
// the dense tail when propagation stalls, so Done() flips exactly at the
// packet that makes the source recoverable — the property the paper uses
// to let a receiver leave the multicast session as early as possible.
//
// Memory discipline: every packet-sized buffer comes from a slab arena and
// is recycled through a free list, mirroring Encode's one-allocation store.
// Each check carries at most ONE buffer — the residual rhs[ci] = value of
// the check (once known) XOR the sum of its known neighbors — instead of
// the classic value+accumulator pair. The residual is exactly the payload
// of the check's last unknown neighbor once cnt reaches 1, so rule (a)
// recoveries transfer buffer ownership instead of allocating, and the
// elimination fallback solves in place on the live residuals (after a
// matrix-only rank precheck) so its solutions are transfers too. Steady
// state decoding therefore allocates nothing per packet and nothing per
// elimination retry.
type decoder struct {
	c *Codec

	data      [][]byte // per value id; nil while unknown (arena-owned)
	gotPacket []bool   // per packet index, for duplicate suppression
	received  int
	srcLeft   int
	knownVals int // total known values, for cheap residual gating

	// Per-check state. Invariant: rhs[ci] != nil iff valKnown[ci] &&
	// !dead[ci] && cnt[ci] > 0. A dead check's equation has been consumed
	// (its last unknown recovered, its residual transferred to a value, or
	// its value confirmed redundant) and is skipped everywhere.
	rhs      [][]byte // residual: check value ^ XOR of known neighbors
	valKnown []bool   // check value known (packet received or cascade value set)
	cnt      []int32  // number of unknown neighbors
	dead     []bool   // equation consumed; rhs recycled

	queue []int32

	// Elimination bookkeeping: after a failed attempt in a scope, the
	// retry is deferred by a number of received packets proportional to
	// the information shortfall, which bounds wasted eliminations while
	// reacting quickly once a core becomes solvable.
	retryAt     []int // per scope, in units of received packets
	residualCap int

	// Buffer arena: packet-sized allocations carved from slabs, recycled
	// via free.
	slab []byte
	free [][]byte

	// trySolve scratch, reused across attempts so elimination retries
	// allocate nothing.
	unknownsBuf []int32
	eqsBuf      []int32
	colBuf      []int32 // scope-relative column map; kept all -1 at rest
	matA, matB  bitmat.Matrix
	solveRHS    [][]byte
}

func newDecoder(c *Codec) *decoder {
	// The cap bounds the cubic elimination cost while still covering the
	// stalled-core sizes observed when large graphs run at 90-95% of
	// capacity (up to ~40% of an 8k layer). A larger dense tail (the B
	// variant) shifts the cap up, which is part of why B decodes more
	// slowly in exchange for lower overhead.
	cap := 2*c.params.denseTarget() + 512
	if cap < c.denseInputs+256 {
		cap = c.denseInputs + 256
	}
	d := &decoder{
		c:           c,
		data:        make([][]byte, c.numValues),
		gotPacket:   make([]bool, c.n),
		srcLeft:     c.k,
		rhs:         make([][]byte, len(c.checkNeighbors)),
		valKnown:    make([]bool, len(c.checkNeighbors)),
		cnt:         make([]int32, len(c.checkNeighbors)),
		dead:        make([]bool, len(c.checkNeighbors)),
		retryAt:     make([]int, len(c.scopes)),
		residualCap: cap,
	}
	for ci, ns := range c.checkNeighbors {
		d.cnt[ci] = int32(len(ns))
	}
	return d
}

// alloc hands out one packet-sized buffer from the free list or the current
// slab (growing the slab when exhausted). Buffers may hold stale bytes:
// every use either copies into them first or clears them explicitly.
func (d *decoder) alloc() []byte {
	if n := len(d.free); n > 0 {
		b := d.free[n-1]
		d.free = d.free[:n-1]
		return b
	}
	pl := d.c.packetLen
	if len(d.slab) < pl {
		n := 16 * pl
		const minSlab = 16 << 10
		if n < minSlab {
			n = (minSlab + pl - 1) / pl * pl
		}
		d.slab = make([]byte, n)
	}
	b := d.slab[:pl:pl]
	d.slab = d.slab[pl:]
	return b
}

// release returns an arena buffer to the free list.
func (d *decoder) release(b []byte) { d.free = append(d.free, b) }

// Add implements code.Decoder.
func (d *decoder) Add(i int, data []byte) (bool, error) {
	if err := code.CheckPacket(i, data, d.c.n, d.c.packetLen); err != nil {
		return d.Done(), err
	}
	if d.Done() {
		return true, nil
	}
	if d.gotPacket[i] {
		return false, nil
	}
	d.gotPacket[i] = true
	d.received++
	if i < d.c.numValues {
		if d.data[i] == nil {
			buf := d.alloc()
			copy(buf, data)
			d.setValue(int32(i), buf)
		}
	} else {
		ci := d.c.denseStart + (i - d.c.numValues)
		d.checkValArrived(ci, data)
	}
	d.drain()
	d.sweepScopes()
	return d.Done(), nil
}

// checkValArrived records that check ci's value is val (copied, not
// retained): the residual starts as the value and has every already-known
// neighbor folded in. A check whose neighbors are all known carries no
// information and dies immediately.
func (d *decoder) checkValArrived(ci int, val []byte) {
	if d.dead[ci] || d.valKnown[ci] {
		return
	}
	d.valKnown[ci] = true
	if d.cnt[ci] == 0 {
		d.dead[ci] = true
		return
	}
	buf := d.alloc()
	copy(buf, val)
	for _, v := range d.c.checkNeighbors[ci] {
		if p := d.data[v]; p != nil {
			gf.XORSlice(buf, p)
		}
	}
	d.rhs[ci] = buf
	if d.cnt[ci] == 1 {
		d.queue = append(d.queue, int32(ci))
	}
}

// sweepScopes repeatedly attempts per-level eliminations, deepest scope
// first, until no scope makes progress. Solving a deep level unblocks
// propagation in the level above, so the sweep loops while anything moves.
func (d *decoder) sweepScopes() {
	for progress := true; progress && !d.Done(); {
		progress = false
		for si := len(d.c.scopes) - 1; si >= 0 && !d.Done(); si-- {
			if d.trySolve(si) {
				progress = true
			}
		}
	}
}

// Done implements code.Decoder.
func (d *decoder) Done() bool { return d.srcLeft == 0 }

// Received implements code.Decoder.
func (d *decoder) Received() int { return d.received }

// Source implements code.Decoder.
func (d *decoder) Source() ([][]byte, error) {
	if !d.Done() {
		return nil, code.ErrNotReady
	}
	return d.data[:d.c.k], nil
}

// setValue marks value v known with the arena-owned payload buf (ownership
// transfers to the decoder) and folds it into every check that uses it.
func (d *decoder) setValue(v int32, buf []byte) {
	if d.data[v] != nil {
		d.release(buf)
		return
	}
	d.data[v] = buf
	d.knownVals++
	if int(v) < d.c.k {
		d.srcLeft--
	}
	// The value is itself the output of a cascade check: that check's value
	// is now known.
	if int(v) >= d.c.k {
		d.checkValArrived(int(v)-d.c.k, buf)
	}
	for _, ci := range d.c.valueChecks[v] {
		if d.dead[ci] {
			continue
		}
		d.cnt[ci]--
		if d.valKnown[ci] {
			gf.XORSlice(d.rhs[ci], buf)
			if d.cnt[ci] == 0 {
				// Residual is now zero: the equation is spent.
				d.release(d.rhs[ci])
				d.rhs[ci] = nil
				d.dead[ci] = true
			} else if d.cnt[ci] == 1 {
				d.queue = append(d.queue, ci)
			}
		} else if d.cnt[ci] == 0 {
			if own := d.c.checkOwn[ci]; own >= 0 && d.data[own] == nil {
				d.queue = append(d.queue, ci)
			} else {
				d.dead[ci] = true
			}
		}
	}
}

// drain runs the two propagation rules to a fixed point.
func (d *decoder) drain() {
	for len(d.queue) > 0 && !d.Done() {
		ci := d.queue[len(d.queue)-1]
		d.queue = d.queue[:len(d.queue)-1]
		if d.dead[ci] {
			continue
		}
		switch {
		case d.valKnown[ci] && d.cnt[ci] == 1:
			// Rule (a): the residual IS the single unknown neighbor's
			// payload — hand the buffer over instead of copying.
			var unknown int32 = -1
			for _, v := range d.c.checkNeighbors[ci] {
				if d.data[v] == nil {
					unknown = v
					break
				}
			}
			if unknown < 0 {
				continue // stale queue entry
			}
			buf := d.rhs[ci]
			d.rhs[ci] = nil
			d.dead[ci] = true
			d.setValue(unknown, buf)
		case !d.valKnown[ci] && d.cnt[ci] == 0:
			// Rule (b): all inputs known; the check's value is their XOR,
			// which is also the cascade value it computes.
			own := d.c.checkOwn[ci]
			d.valKnown[ci] = true
			d.dead[ci] = true
			if own >= 0 && d.data[own] == nil {
				buf := d.alloc()
				ns := d.c.checkNeighbors[ci]
				if len(ns) == 0 {
					clear(buf)
				} else {
					copy(buf, d.data[ns[0]])
					for _, v := range ns[1:] {
						gf.XORSlice(buf, d.data[v])
					}
				}
				d.setValue(own, buf)
			}
		}
	}
}

// trySolve attempts Gaussian elimination on one level's stalled subsystem
// (scope si): the unknown values of that level's input layer against the
// checks computed from it. This is what bootstraps bottom-up decoding (the
// dense tail is the deepest scope) and what dissolves the small residual
// cores propagation leaves when the graphs run near capacity — without it
// a stalled deep level starves every level above (§5 decoding).
//
// The attempt is skipped while the unknown count exceeds residualCap
// (bounding elimination cost) and, after a rank-deficient attempt, until
// enough new information has arrived to plausibly close the rank gap.
// Solvability is established first on a matrix-only scratch copy (no
// payload work); only a certain success eliminates in place on the live
// residuals, whose buffers then BECOME the recovered values. All scratch
// is reused across attempts. It reports whether it recovered anything.
func (d *decoder) trySolve(si int) bool {
	if d.received < d.retryAt[si] {
		return false
	}
	c := d.c
	sc := c.scopes[si]
	unknowns := d.unknownsBuf[:0]
	for v := sc.valOff; v < sc.valOff+sc.valLen; v++ {
		if d.data[v] == nil {
			unknowns = append(unknowns, int32(v))
		}
	}
	d.unknownsBuf = unknowns
	if len(unknowns) == 0 {
		d.retryAt[si] = d.received + 1
		return false
	}
	if len(unknowns) > d.residualCap {
		d.retryAt[si] = d.received + (len(unknowns)-d.residualCap+3)/4
		return false
	}
	eqs := d.eqsBuf[:0]
	for ci := sc.checkOff; ci < sc.checkOff+sc.checkLen; ci++ {
		if d.valKnown[ci] && !d.dead[ci] && d.cnt[ci] > 0 {
			eqs = append(eqs, int32(ci))
		}
	}
	d.eqsBuf = eqs
	if len(eqs) < len(unknowns) {
		d.retryAt[si] = d.received + (len(unknowns)-len(eqs)+3)/4
		return false
	}
	// A modest equation surplus suffices for full rank with overwhelming
	// probability; keeping the system small bounds elimination cost.
	maxEqs := len(unknowns) + 64
	if len(eqs) > maxEqs {
		eqs = eqs[:maxEqs]
	}
	// Scope-relative column map (kept all -1 at rest, restored below).
	if len(d.colBuf) < sc.valLen {
		d.colBuf = make([]int32, sc.valLen)
		for i := range d.colBuf {
			d.colBuf[i] = -1
		}
	}
	col := d.colBuf
	for j, v := range unknowns {
		col[int(v)-sc.valOff] = int32(j)
	}
	d.matA.Reset(len(eqs), len(unknowns))
	for r, ci := range eqs {
		for _, v := range c.checkNeighbors[ci] {
			rel := int(v) - sc.valOff
			if rel >= 0 && rel < sc.valLen && col[rel] >= 0 {
				d.matA.Set(r, int(col[rel]), true)
			}
		}
	}
	for _, v := range unknowns {
		col[int(v)-sc.valOff] = -1
	}
	// Matrix-only rank precheck on a scratch copy: a failed attempt costs
	// no payload XORs and leaves the live residuals untouched.
	d.matB.CopyFrom(&d.matA)
	if rank := d.matB.RankDestructive(); rank < len(unknowns) {
		gap := (len(unknowns) - rank + 3) / 4
		if gap < 1 {
			gap = 1
		}
		d.retryAt[si] = d.received + gap
		return false
	}
	// Full rank is certain: eliminate in place on the live residuals. The
	// used equations are consumed wholesale (every scope value they touch
	// is about to become known), so retire them and transfer their buffers.
	rhs := d.solveRHS[:0]
	for _, ci := range eqs {
		rhs = append(rhs, d.rhs[ci])
		d.rhs[ci] = nil
		d.dead[ci] = true
	}
	d.solveRHS = rhs
	sol, _, ok := bitmat.TrySolve(&d.matA, rhs)
	if !ok {
		panic("tornado: elimination failed after full-rank precheck")
	}
	for _, b := range rhs[len(unknowns):] {
		d.release(b)
	}
	for i, v := range unknowns {
		d.setValue(v, sol[i])
	}
	d.drain()
	return true
}
