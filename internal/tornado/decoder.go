package tornado

import (
	"repro/internal/bitmat"
	"repro/internal/code"
	"repro/internal/gf"
)

// decoder is the incremental Tornado decoder. It runs the two-rule
// propagation after every packet and falls back to Gaussian elimination on
// the dense tail when propagation stalls, so Done() flips exactly at the
// packet that makes the source recoverable — the property the paper uses
// to let a receiver leave the multicast session as early as possible.
type decoder struct {
	c *Codec

	data      [][]byte // per value id; nil while unknown
	gotPacket []bool   // per packet index, for duplicate suppression
	received  int
	srcLeft   int
	knownVals int // total known values, for cheap residual gating

	// Per-check state.
	acc []([]byte) // XOR of known neighbors (nil until first contribution)
	cnt []int32    // number of unknown neighbors
	val [][]byte   // check value; nil while unknown

	queue []int32

	// Elimination bookkeeping: after a failed attempt in a scope, the
	// retry is deferred by a number of received packets proportional to
	// the information shortfall, which bounds wasted eliminations while
	// reacting quickly once a core becomes solvable.
	retryAt     []int // per scope, in units of received packets
	residualCap int
}

func newDecoder(c *Codec) *decoder {
	// The cap bounds the cubic elimination cost while still covering the
	// stalled-core sizes observed when large graphs run at 90-95% of
	// capacity (up to ~40% of an 8k layer). A larger dense tail (the B
	// variant) shifts the cap up, which is part of why B decodes more
	// slowly in exchange for lower overhead.
	cap := 2*c.params.denseTarget() + 512
	if cap < c.denseInputs+256 {
		cap = c.denseInputs + 256
	}
	d := &decoder{
		c:           c,
		data:        make([][]byte, c.numValues),
		gotPacket:   make([]bool, c.n),
		srcLeft:     c.k,
		acc:         make([][]byte, len(c.checkNeighbors)),
		cnt:         make([]int32, len(c.checkNeighbors)),
		val:         make([][]byte, len(c.checkNeighbors)),
		retryAt:     make([]int, len(c.scopes)),
		residualCap: cap,
	}
	for ci, ns := range c.checkNeighbors {
		d.cnt[ci] = int32(len(ns))
	}
	return d
}

// Add implements code.Decoder.
func (d *decoder) Add(i int, data []byte) (bool, error) {
	if err := code.CheckPacket(i, data, d.c.n, d.c.packetLen); err != nil {
		return d.Done(), err
	}
	if d.Done() {
		return true, nil
	}
	if d.gotPacket[i] {
		return false, nil
	}
	d.gotPacket[i] = true
	d.received++
	buf := make([]byte, len(data))
	copy(buf, data)
	if i < d.c.numValues {
		d.setValue(int32(i), buf)
	} else {
		ci := d.c.denseStart + (i - d.c.numValues)
		if d.val[ci] == nil {
			d.val[ci] = buf
			d.queue = append(d.queue, int32(ci))
		}
	}
	d.drain()
	d.sweepScopes()
	return d.Done(), nil
}

// sweepScopes repeatedly attempts per-level eliminations, deepest scope
// first, until no scope makes progress. Solving a deep level unblocks
// propagation in the level above, so the sweep loops while anything moves.
func (d *decoder) sweepScopes() {
	for progress := true; progress && !d.Done(); {
		progress = false
		for si := len(d.c.scopes) - 1; si >= 0 && !d.Done(); si-- {
			if d.trySolve(si) {
				progress = true
			}
		}
	}
}

// Done implements code.Decoder.
func (d *decoder) Done() bool { return d.srcLeft == 0 }

// Received implements code.Decoder.
func (d *decoder) Received() int { return d.received }

// Source implements code.Decoder.
func (d *decoder) Source() ([][]byte, error) {
	if !d.Done() {
		return nil, code.ErrNotReady
	}
	return d.data[:d.c.k], nil
}

// setValue marks value v known with payload buf (ownership transfers) and
// propagates it into every check that uses it.
func (d *decoder) setValue(v int32, buf []byte) {
	if d.data[v] != nil {
		return
	}
	d.data[v] = buf
	d.knownVals++
	if int(v) < d.c.k {
		d.srcLeft--
	}
	// The value is itself the output of a cascade check: its check now has
	// a known value.
	if int(v) >= d.c.k {
		ci := int32(int(v) - d.c.k)
		if d.val[ci] == nil {
			d.val[ci] = buf
			d.queue = append(d.queue, ci)
		}
	}
	for _, ci := range d.c.valueChecks[v] {
		if d.acc[ci] == nil {
			d.acc[ci] = make([]byte, d.c.packetLen)
		}
		gf.XORSlice(d.acc[ci], buf)
		d.cnt[ci]--
		d.queue = append(d.queue, ci)
	}
}

// drain runs the two propagation rules to a fixed point.
func (d *decoder) drain() {
	for len(d.queue) > 0 && !d.Done() {
		ci := d.queue[len(d.queue)-1]
		d.queue = d.queue[:len(d.queue)-1]
		switch {
		case d.cnt[ci] == 1 && d.val[ci] != nil:
			// Rule (a): recover the single unknown neighbor.
			var unknown int32 = -1
			for _, v := range d.c.checkNeighbors[ci] {
				if d.data[v] == nil {
					unknown = v
					break
				}
			}
			if unknown < 0 {
				continue // stale queue entry
			}
			buf := make([]byte, d.c.packetLen)
			copy(buf, d.val[ci])
			if d.acc[ci] != nil {
				gf.XORSlice(buf, d.acc[ci])
			}
			d.setValue(unknown, buf)
		case d.cnt[ci] == 0 && d.val[ci] == nil:
			// Rule (b): all inputs known; the check's value is acc.
			v := d.acc[ci]
			if v == nil {
				v = make([]byte, d.c.packetLen) // zero-degree check
			}
			d.val[ci] = v
			if own := d.c.checkOwn[ci]; own >= 0 && d.data[own] == nil {
				d.setValue(own, v)
			}
		}
	}
}

// trySolve attempts Gaussian elimination on one level's stalled subsystem
// (scope si): the unknown values of that level's input layer against the
// checks computed from it. This is what bootstraps bottom-up decoding (the
// dense tail is the deepest scope) and what dissolves the small residual
// cores propagation leaves when the graphs run near capacity — without it
// a stalled deep level starves every level above (§5 decoding).
//
// The attempt is skipped while the unknown count exceeds residualCap
// (bounding elimination cost) and, after a rank-deficient attempt, until
// enough new information has arrived to plausibly close the rank gap.
// It reports whether it recovered anything.
func (d *decoder) trySolve(si int) bool {
	if d.received < d.retryAt[si] {
		return false
	}
	c := d.c
	sc := c.scopes[si]
	var unknowns []int32
	for v := sc.valOff; v < sc.valOff+sc.valLen; v++ {
		if d.data[v] == nil {
			unknowns = append(unknowns, int32(v))
		}
	}
	if len(unknowns) == 0 {
		d.retryAt[si] = d.received + 1
		return false
	}
	if len(unknowns) > d.residualCap {
		d.retryAt[si] = d.received + (len(unknowns)-d.residualCap+3)/4
		return false
	}
	var eqs []int
	for ci := sc.checkOff; ci < sc.checkOff+sc.checkLen; ci++ {
		if d.val[ci] != nil && d.cnt[ci] > 0 {
			eqs = append(eqs, ci)
		}
	}
	if len(eqs) < len(unknowns) {
		d.retryAt[si] = d.received + (len(unknowns)-len(eqs)+3)/4
		return false
	}
	// A modest equation surplus suffices for full rank with overwhelming
	// probability; keeping the system small bounds elimination cost.
	maxEqs := len(unknowns) + 64
	if len(eqs) > maxEqs {
		eqs = eqs[:maxEqs]
	}
	col := make(map[int32]int, len(unknowns))
	for i, v := range unknowns {
		col[v] = i
	}
	a := bitmat.New(len(eqs), len(unknowns))
	rhs := make([][]byte, len(eqs))
	for r, ci := range eqs {
		buf := make([]byte, c.packetLen)
		copy(buf, d.val[ci])
		if d.acc[ci] != nil {
			gf.XORSlice(buf, d.acc[ci])
		}
		rhs[r] = buf
		for _, v := range c.checkNeighbors[ci] {
			if j, ok := col[v]; ok {
				a.Set(r, j, true)
			}
		}
	}
	sol, rank, ok := bitmat.TrySolve(a, rhs)
	if !ok {
		gap := (len(unknowns) - rank + 3) / 4
		if gap < 1 {
			gap = 1
		}
		d.retryAt[si] = d.received + gap
		return false
	}
	for i, v := range unknowns {
		d.setValue(v, sol[i])
	}
	d.drain()
	return true
}
