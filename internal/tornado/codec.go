package tornado

import (
	"fmt"
	"math/rand"

	"repro/internal/code"
	"repro/internal/gf"
)

// Codec is an immutable Tornado code instance for a fixed (k, n, packetLen,
// seed). Construction materializes the cascade graphs; Encode and decoders
// share them read-only, so one Codec can serve many concurrent sessions
// (the digital fountain server encodes once; every receiver decodes with
// the same graphs, derived from the seed carried in the session descriptor).
type Codec struct {
	params    Params
	k, n      int
	packetLen int
	seed      int64

	// Value nodes: ids [0, numValues). Ids [0,k) are source packets;
	// the rest are cascade check layers in order. Packet index i < numValues
	// delivers value i; packet indices [numValues, n) deliver dense checks.
	numValues int

	// Global check list: cascade checks first (check c computes value
	// checkOwn[c]), then dense rows (checkOwn = -1).
	checkNeighbors [][]int32 // value ids feeding each check
	checkOwn       []int32   // value id computed by the check, -1 for dense rows
	valueChecks    [][]int32 // value id -> checks it feeds (reverse adjacency)

	levels      []int   // cascade layer sizes, outermost first
	denseInputs int     // size of the layer covered by the dense tail
	denseStart  int     // first check id of the dense tail
	edges       int     // total edge count, for instrumentation
	design      *design // LP-optimized left degree distribution (nil if no cascade)

	// scopes lists the per-level elimination subsystems for the decoder,
	// deepest last: scope i recovers a contiguous value range from a
	// contiguous check range. The final scope is the dense tail.
	scopes []solveScope
}

// solveScope identifies one level's linear subsystem: the values of the
// input layer and the checks computed from them.
type solveScope struct {
	valOff, valLen     int // unknowns: value ids [valOff, valOff+valLen)
	checkOff, checkLen int // equations: check ids [checkOff, checkOff+checkLen)
}

// planCascade computes the cascade layer sizes for a check budget l over a
// source of size k: halve the remaining budget until it fits the dense
// tail, never letting a layer exceed half its input layer.
func planCascade(k, l, denseTarget int) (sizes []int, dense int) {
	rem := l
	prev := k
	for rem > denseTarget && rem >= 8 && prev >= 4 {
		s := rem / 2
		if s > prev/2 {
			s = prev / 2
		}
		if s < 1 {
			break
		}
		sizes = append(sizes, s)
		rem -= s
		prev = s
	}
	return sizes, rem
}

// New constructs a Tornado codec. n must exceed k (the paper always uses
// n = 2k); packetLen is arbitrary positive. The seed determines the random
// graphs: sender and receivers must agree on it (it travels in the session
// descriptor, like the "graph structure agreed in advance" of §5.1).
func New(p Params, k, n, packetLen int, seed int64) (*Codec, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if k <= 0 || n <= k {
		return nil, fmt.Errorf("tornado: invalid k=%d n=%d", k, n)
	}
	if packetLen <= 0 {
		return nil, fmt.Errorf("tornado: invalid packetLen %d", packetLen)
	}
	c := &Codec{params: p, k: k, n: n, packetLen: packetLen, seed: seed}
	sizes, dense := planCascade(k, n-k, p.denseTarget())
	c.levels = sizes

	// LP-design the left degree distribution for the loss fraction a
	// receiver of (1+ε)k out of n uniformly sampled packets presents.
	delta := 1 - (1+p.targetOverhead())*float64(k)/float64(n)
	if delta < 0.05 {
		delta = 0.05
	}
	var counts map[int]int
	if len(sizes) > 0 {
		dd, err := designDistribution(delta, 0.5, p.MaxDegree)
		if err != nil {
			return nil, err
		}
		c.design = dd
		counts = dd.nodeCounts(k) // re-quantized per level below
	}

	// Allocate value ids and build cascade graphs.
	c.numValues = k
	for _, s := range sizes {
		c.numValues += s
	}
	c.n = n
	totalChecks := (c.numValues - k) + dense
	c.checkNeighbors = make([][]int32, 0, totalChecks)
	c.checkOwn = make([]int32, 0, totalChecks)

	layerOff := 0 // value id of first node in the input layer
	layerSize := k
	valOff := k // value id of first node in the layer being created
	for li, s := range sizes {
		if layerSize != k {
			counts = c.design.nodeCounts(layerSize)
		}
		g := newBigraph(layerSize, s, counts, rand.New(rand.NewSource(mix(seed, int64(li+1)))))
		c.scopes = append(c.scopes, solveScope{
			valOff: layerOff, valLen: layerSize,
			checkOff: len(c.checkNeighbors), checkLen: s,
		})
		for ci := 0; ci < s; ci++ {
			ns := make([]int32, len(g.neighbors[ci]))
			for i, v := range g.neighbors[ci] {
				ns[i] = v + int32(layerOff)
			}
			c.checkNeighbors = append(c.checkNeighbors, ns)
			c.checkOwn = append(c.checkOwn, int32(valOff+ci))
			c.edges += len(ns)
		}
		layerOff = valOff
		layerSize = s
		valOff += s
	}

	// Dense tail over the last layer (or directly over the source when the
	// cascade is empty, which happens for small k).
	c.denseStart = len(c.checkNeighbors)
	c.denseInputs = layerSize
	c.scopes = append(c.scopes, solveScope{
		valOff: layerOff, valLen: layerSize,
		checkOff: c.denseStart, checkLen: dense,
	})
	weight := p.DenseRowWeight
	if weight == 0 {
		weight = autoDenseWeight(layerSize)
	}
	if weight > layerSize {
		weight = layerSize
	}
	drng := rand.New(rand.NewSource(mix(seed, -7)))
	perm := make([]int, layerSize)
	for r := 0; r < dense; r++ {
		for i := range perm {
			perm[i] = i
		}
		// Partial Fisher-Yates: first `weight` entries are a uniform sample
		// without replacement.
		for i := 0; i < weight; i++ {
			j := i + drng.Intn(layerSize-i)
			perm[i], perm[j] = perm[j], perm[i]
		}
		ns := make([]int32, weight)
		for i := 0; i < weight; i++ {
			ns[i] = int32(layerOff + perm[i])
		}
		c.checkNeighbors = append(c.checkNeighbors, ns)
		c.checkOwn = append(c.checkOwn, -1)
		c.edges += weight
	}

	// Reverse adjacency.
	c.valueChecks = make([][]int32, c.numValues)
	deg := make([]int32, c.numValues)
	for _, ns := range c.checkNeighbors {
		for _, v := range ns {
			deg[v]++
		}
	}
	for v := range c.valueChecks {
		c.valueChecks[v] = make([]int32, 0, deg[v])
	}
	for ci, ns := range c.checkNeighbors {
		for _, v := range ns {
			c.valueChecks[v] = append(c.valueChecks[v], int32(ci))
		}
	}
	return c, nil
}

// autoDenseWeight picks the per-row weight of the dense tail: 8 + 2·log2 of
// the input count, enough for the random binary matrix to be full rank with
// overwhelming probability while keeping maintenance cost low.
func autoDenseWeight(inputs int) int {
	lg := 0
	for s := inputs; s > 1; s >>= 1 {
		lg++
	}
	w := 8 + 2*lg
	if w < 8 {
		w = 8
	}
	return w
}

// mix derives a sub-seed; splitmix64-style so levels are decorrelated.
func mix(seed, salt int64) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(salt+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Name implements code.Codec.
func (c *Codec) Name() string { return c.params.Variant }

// K implements code.Codec.
func (c *Codec) K() int { return c.k }

// N implements code.Codec.
func (c *Codec) N() int { return c.n }

// PacketLen implements code.Codec.
func (c *Codec) PacketLen() int { return c.packetLen }

// Seed returns the graph seed (carried in the session descriptor).
func (c *Codec) Seed() int64 { return c.seed }

// Edges returns the total number of graph edges; coding cost is
// proportional to Edges() * PacketLen().
func (c *Codec) Edges() int { return c.edges }

// Levels returns the cascade layer sizes (excluding the dense tail) for
// instrumentation and tests. The returned slice must not be modified.
func (c *Codec) Levels() []int { return c.levels }

// DenseSize returns (inputs, rows) of the dense tail.
func (c *Codec) DenseSize() (inputs, rows int) {
	return c.denseInputs, len(c.checkNeighbors) - c.denseStart
}

// Encode implements code.Codec: it computes every cascade layer and the
// dense tail. The first k output packets alias src.
func (c *Codec) Encode(src [][]byte) ([][]byte, error) {
	if err := code.CheckSrc(src, c.k, c.packetLen); err != nil {
		return nil, err
	}
	vals := make([][]byte, c.numValues)
	copy(vals, src)
	out := make([][]byte, c.n)
	copy(out, src)
	// Backing store for all produced packets, one allocation.
	store := make([]byte, (c.n-c.k)*c.packetLen)
	next := 0
	alloc := func() []byte {
		p := store[next*c.packetLen : (next+1)*c.packetLen]
		next++
		return p
	}
	for ci, ns := range c.checkNeighbors {
		p := alloc()
		for _, v := range ns {
			gf.XORSlice(p, vals[v])
		}
		own := c.checkOwn[ci]
		if own >= 0 {
			vals[own] = p
			out[own] = p
		} else {
			out[c.numValues+(ci-c.denseStart)] = p
		}
	}
	return out, nil
}

// NewDecoder implements code.Codec.
func (c *Codec) NewDecoder() code.Decoder { return newDecoder(c) }
