package tornado

import (
	"math/rand"
	"os"
	"testing"
)

// TestDiagStall feeds 1.3k packets and dumps per-layer unknown counts and
// equation availability — a debugging aid for the decoder's fixed point.
// Enable with TORNADO_TUNING=1.
func TestDiagStall(t *testing.T) {
	if os.Getenv("TORNADO_TUNING") != "1" {
		t.Skip("diagnostic")
	}
	k := 16384
	c, err := New(A(), k, 2*k, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	src := randSource(rng, k, 4)
	enc, _ := c.Encode(src)
	var d *decoder
	fed := 0
	for seed := int64(0); seed < 20; seed++ {
		trng := rand.New(rand.NewSource(seed))
		d = newDecoder(c)
		order := trng.Perm(c.N())
		fed = 0
		for _, i := range order {
			fed++
			if done, _ := d.Add(i, enc[i]); done {
				break
			}
			if fed >= int(1.06*float64(k)) {
				break
			}
		}
		t.Logf("seed=%d fed=%d done=%v srcLeft=%d knownVals=%d/%d", seed, fed, d.Done(), d.srcLeft, d.knownVals, c.numValues)
		if !d.Done() {
			break
		}
	}
	for si, sc := range c.scopes {
		unk := 0
		for v := sc.valOff; v < sc.valOff+sc.valLen; v++ {
			if d.data[v] == nil {
				unk++
			}
		}
		eqAvail, eqUsable := 0, 0
		minCnt, maxCnt := int32(1<<30), int32(-1)
		for ci := sc.checkOff; ci < sc.checkOff+sc.checkLen; ci++ {
			if d.valKnown[ci] {
				eqAvail++
				if !d.dead[ci] && d.cnt[ci] > 0 {
					eqUsable++
				}
			}
			if d.cnt[ci] < minCnt {
				minCnt = d.cnt[ci]
			}
			if d.cnt[ci] > maxCnt {
				maxCnt = d.cnt[ci]
			}
		}
		t.Logf("scope %d: vals[%d+%d] unknown=%d checks[%d+%d] valKnown=%d usable=%d cnt=[%d..%d] retryAt=%d received=%d",
			si, sc.valOff, sc.valLen, unk, sc.checkOff, sc.checkLen, eqAvail, eqUsable, minCnt, maxCnt, d.retryAt[si], d.received)
	}
}
