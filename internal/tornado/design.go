package tornado

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/lp"
)

// This file designs the left (value-side) degree distributions of the
// cascade graphs by linear programming, following the original authors'
// methodology ("the degree sequences were found using linear programming",
// Luby et al.). The plain heavy-tail/Poisson pair is capacity-achieving but
// only marginally stable: its And-Or recursion converges with vanishing
// margin, so finite graphs stall in bulk well below the asymptotic
// threshold. Maximizing the convergence margin instead buys geometric
// convergence that finite graphs can actually follow.
//
// The graph builder wires every degree-2 left node onto a path over the
// checks (see newBigraph), so a check of mean total degree α has exactly 2
// path edges plus Poisson(α-2) random edges. The matching edge-perspective
// right polynomial is
//
//	ρ(z) = (2z + (α-2)·z²) · e^((α-2)(z-1)) / α,
//
// and the iterative decoder succeeds (asymptotically) iff
//
//	δ · λ(1 - ρ(1-x)) < x   for all x in (0, δ],
//
// where λ(y) = Σ_j λ_j y^(j-1) is the edge-perspective left degree
// polynomial. We maximize s subject to
//
//	δ · Σ_j λ_j y_t^(j-1) ≤ (1-s)·x_t        (grid points x_t, y_t = 1-ρ(1-x_t))
//	δ · ρ'(1) · λ_2 ≤ 1 - s                   (stability at x → 0)
//	Σ_j λ_j = 1,   Σ_j λ_j / j = 1/(α·β)      (normalization, rate)
//
// and grid-search α. The result is cached per (δ, β, D) since it is
// independent of the graph size.

// design is an LP-optimized left degree distribution.
type design struct {
	Lambda []float64 // edge fractions indexed by degree (Lambda[j], j>=2)
	Alpha  float64   // Poisson right mean the distribution was designed for
	Margin float64   // achieved And-Or margin s
	Delta  float64   // loss fraction actually designed for (≤ requested)
}

type designKey struct {
	delta float64
	beta  float64
	maxD  int
}

var (
	designMu    sync.Mutex
	designCache = map[designKey]*design{}
)

// designDistribution returns the margin-maximizing left distribution for
// recovering a δ fraction of losses on a bipartite graph with right/left
// ratio β and maximum left degree maxD. If the requested δ is infeasible
// even with zero margin, δ is backed off in 0.005 steps.
func designDistribution(delta, beta float64, maxD int) (*design, error) {
	if delta <= 0 || delta >= 1 || beta <= 0 || beta >= 1 || maxD < 3 {
		return nil, fmt.Errorf("tornado: bad design request δ=%v β=%v D=%d", delta, beta, maxD)
	}
	key := designKey{delta, beta, maxD}
	designMu.Lock()
	cached := designCache[key]
	designMu.Unlock()
	if cached != nil {
		return cached, nil
	}
	var best *design
	for d := delta; d > 0.25; d -= 0.005 {
		for alpha := 6.0; alpha <= 14.01; alpha += 1.0 {
			dd := solveDesign(d, beta, maxD, alpha)
			if dd == nil {
				continue
			}
			if best == nil || dd.Margin > best.Margin {
				best = dd
			}
		}
		if best != nil && best.Margin > 0.01 {
			break
		}
	}
	if best == nil {
		return nil, fmt.Errorf("tornado: no feasible degree design for δ=%v β=%v D=%d", delta, beta, maxD)
	}
	designMu.Lock()
	designCache[key] = best
	designMu.Unlock()
	return best, nil
}

// solveDesign runs one LP for fixed (δ, β, D, α). Variables are
// x = [λ_2 .. λ_D, s]; returns nil if infeasible.
func solveDesign(delta, beta float64, maxD int, alpha float64) *design {
	nl := maxD - 1 // λ_2..λ_maxD
	nv := nl + 1   // plus margin s
	si := nl       // index of s

	var A [][]float64
	var B []float64
	row := func() []float64 { return make([]float64, nv) }

	// Grid constraints: δ·Σ λ_j y^(j-1) + x·s <= x.
	// Mixed linear + logarithmic grid covers both the bulk and the x→0 tail.
	var grid []float64
	for t := 1; t <= 60; t++ {
		grid = append(grid, delta*float64(t)/60)
	}
	for _, f := range []float64{0.001, 0.002, 0.004, 0.008} {
		grid = append(grid, delta*f)
	}
	// Edge-perspective right polynomial for checks with 2 path edges plus
	// Poisson(α-2) random edges.
	rho := func(z float64) float64 {
		return (2*z + (alpha-2)*z*z) * math.Exp((alpha-2)*(z-1)) / alpha
	}
	for _, x := range grid {
		y := 1 - rho(1-x)
		r := row()
		p := y
		for j := 2; j <= maxD; j++ {
			r[j-2] = delta * p
			p *= y
		}
		r[si] = x
		// Scale the row so its largest coefficient is 1: the raw rows mix
		// magnitudes from y^(D-1) (down to 1e-16 at small x) with O(1)
		// entries, which destabilizes the simplex pivoting.
		scale := 0.0
		for _, v := range r {
			if math.Abs(v) > scale {
				scale = math.Abs(v)
			}
		}
		if scale == 0 {
			continue
		}
		for j := range r {
			r[j] /= scale
			if math.Abs(r[j]) < 1e-12 {
				r[j] = 0
			}
		}
		A = append(A, r)
		B = append(B, x/scale)
	}
	// Stability: δ·ρ'(1)·λ_2 + s <= 1, with ρ'(1) = (α²-2)/α for the
	// path-plus-Poisson right distribution.
	st := row()
	st[0] = delta * (alpha*alpha - 2) / alpha
	st[si] = 1
	A = append(A, st)
	B = append(B, 1)
	// Σ λ_j = 1 (two inequalities).
	eq1 := row()
	for j := 0; j < nl; j++ {
		eq1[j] = 1
	}
	neg1 := row()
	for j := 0; j < nl; j++ {
		neg1[j] = -1
	}
	A = append(A, eq1, neg1)
	B = append(B, 1, -1)
	// Rate: Σ λ_j / j = 1/(α·β).
	rate := 1 / (alpha * beta)
	eq2 := row()
	neg2 := row()
	for j := 2; j <= maxD; j++ {
		eq2[j-2] = 1 / float64(j)
		neg2[j-2] = -1 / float64(j)
	}
	A = append(A, eq2, neg2)
	B = append(B, rate, -rate)
	// s <= 1 for sanity.
	sc := row()
	sc[si] = 1
	A = append(A, sc)
	B = append(B, 1)

	C := row()
	C[si] = 1 // maximize margin
	x, obj, err := lp.Solve(lp.Problem{C: C, A: A, B: B})
	if err != nil {
		return nil
	}
	lam := make([]float64, maxD+1)
	for j := 2; j <= maxD; j++ {
		lam[j] = x[j-2]
	}
	return &design{Lambda: lam, Alpha: alpha, Margin: obj, Delta: delta}
}

// nodeCounts quantizes the edge-perspective distribution onto `nodes` left
// nodes: node fractions are proportional to λ_j / j, rounded by largest
// remainder. Degrees with negligible mass are dropped.
func (d *design) nodeCounts(nodes int) map[int]int {
	type frac struct {
		deg  int
		want float64
	}
	var fracs []frac
	total := 0.0
	for j := 2; j < len(d.Lambda); j++ {
		if d.Lambda[j] < 1e-9 {
			continue
		}
		w := d.Lambda[j] / float64(j)
		fracs = append(fracs, frac{j, w})
		total += w
	}
	counts := make(map[int]int, len(fracs))
	if len(fracs) == 0 {
		counts[2] = nodes
		return counts
	}
	assigned := 0
	for i := range fracs {
		fracs[i].want = fracs[i].want / total * float64(nodes)
		c := int(fracs[i].want)
		counts[fracs[i].deg] = c
		assigned += c
	}
	for assigned < nodes {
		best, bestRem := -1, -1.0
		for _, f := range fracs {
			rem := f.want - float64(counts[f.deg])
			if rem > bestRem {
				bestRem, best = rem, f.deg
			}
		}
		counts[best]++
		assigned++
	}
	return counts
}
