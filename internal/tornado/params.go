// Package tornado implements Tornado codes, the paper's core contribution
// (§5): systematic erasure codes built from a cascade of sparse random
// bipartite graphs whose encoding and decoding use only XOR, trading a
// small reception overhead ε for encoding/decoding in time proportional to
// (k+l)·ln(1/ε)·P instead of Reed-Solomon's quadratic behaviour.
//
// Structure (Figure 1 of the paper, following Luby et al. [8]):
//
//	layer 0:  k source packets
//	layer i:  c_i check packets, each the XOR of its neighbors in layer
//	          i-1 under a random irregular bipartite graph (heavy-tail
//	          left degrees, near-regular right degrees)
//	tail:     a low-density random GF(2) code over the last layer, solved
//	          by Gaussian elimination (still XOR-only)
//
// Decoding is the incremental two-rule process described in DESIGN.md:
// a check with a known value and exactly one unknown neighbor recovers
// that neighbor; a check whose neighbors are all known recovers its own
// value; when propagation stalls the dense tail is solved by elimination.
// The decoder detects completion packet-by-packet, which is what lets the
// receiver of a digital fountain disconnect as soon as it has "enough".
package tornado

import "fmt"

// Params selects a Tornado code variant. The paper's Tornado A and
// Tornado B are characterized by their reception-overhead distributions
// (Figure 2: A averages 5.5% with fast decoding, B averages 3.1% and
// decodes more slowly); the knobs below reproduce that trade-off.
type Params struct {
	// Variant is the display name ("tornado-a", "tornado-b").
	Variant string
	// MaxDegree caps the left degree of the LP-designed distributions.
	// Larger values let the optimizer push the decoding threshold closer
	// to capacity (lower overhead) at the cost of more edges, hence
	// slower coding — this is the A/B axis.
	MaxDegree int
	// TargetOverhead ε is the reception overhead the graphs are designed
	// for: the degree LP optimizes the And-Or margin at the loss fraction
	// seen by a receiver holding (1+ε)k of the n packets. 0 means 0.055.
	TargetOverhead float64
	// DenseTarget is the size the final dense layer aims for: the cascade
	// halves the check budget until the remainder is at most this value.
	// The dense code runs at capacity (it recovers its inputs as soon as
	// received inputs + received checks reach the input count), so it must
	// be large enough that binomial reception fluctuations — relative
	// σ ≈ 0.7/sqrt(target) — stay inside the overhead margin ε. A larger
	// tail also shifts decode work from propagation to Gaussian
	// elimination (slower decode, lower overhead): the B variant uses a
	// bigger tail. 0 means 1024.
	DenseTarget int
	// DenseRowWeight is the number of inputs XORed into each dense-tail
	// check (sampled without replacement). 0 means automatic
	// (8 + 2·log2(tail size)).
	DenseRowWeight int
}

// A returns the parameters for Tornado A, the fast variant with average
// reception overhead ≈ 0.05 (tuned; see EXPERIMENTS.md).
func A() Params {
	return Params{Variant: "tornado-a", MaxDegree: 24, TargetOverhead: 0.055, DenseTarget: 1024}
}

// B returns the parameters for Tornado B, the slower-decoding variant with
// average reception overhead ≈ 0.03: higher-degree graphs decode closer to
// capacity, and a larger dense tail absorbs more loss variance at the cost
// of a bigger Gaussian elimination.
func B() Params {
	return Params{Variant: "tornado-b", MaxDegree: 64, TargetOverhead: 0.032, DenseTarget: 2048}
}

func (p Params) validate() error {
	if p.MaxDegree < 3 {
		return fmt.Errorf("tornado: MaxDegree %d too small (want >= 3)", p.MaxDegree)
	}
	if p.DenseTarget < 0 {
		return fmt.Errorf("tornado: negative DenseTarget")
	}
	if p.DenseRowWeight < 0 {
		return fmt.Errorf("tornado: negative DenseRowWeight")
	}
	return nil
}

// denseTarget returns the dense-tail size the cascade aims for.
func (p Params) denseTarget() int {
	if p.DenseTarget == 0 {
		return 1024
	}
	return p.DenseTarget
}

// targetOverhead returns the design overhead ε.
func (p Params) targetOverhead() float64 {
	if p.TargetOverhead == 0 {
		return 0.055
	}
	return p.TargetOverhead
}

// heavyTailCounts quantizes the heavy-tail node-degree distribution
// P(d) ∝ 1/(d(d-1)), d in [2, D], onto nodes left nodes using
// largest-remainder rounding, so graph construction is deterministic
// given (nodes, D). It returns counts[d] = number of nodes of degree d.
func heavyTailCounts(nodes, maxDegree int) map[int]int {
	d := maxDegree
	if d > nodes {
		d = nodes // degree cannot exceed the right side meaningfully; keep sane for tiny layers
	}
	if d < 2 {
		d = 2
	}
	// Normalizer: sum_{i=2..D} 1/(i(i-1)) = 1 - 1/D.
	total := 1.0 - 1.0/float64(d)
	type frac struct {
		deg  int
		want float64
	}
	fracs := make([]frac, 0, d-1)
	for i := 2; i <= d; i++ {
		p := (1.0 / (float64(i) * float64(i-1))) / total
		fracs = append(fracs, frac{deg: i, want: p * float64(nodes)})
	}
	counts := make(map[int]int, len(fracs))
	assigned := 0
	for _, f := range fracs {
		c := int(f.want)
		counts[f.deg] = c
		assigned += c
	}
	// Largest remainder: hand out the leftovers to the degrees that lost
	// the most in truncation (ties broken by smaller degree for stability).
	for assigned < nodes {
		best := -1
		bestRem := -1.0
		for _, f := range fracs {
			rem := f.want - float64(counts[f.deg])
			if rem > bestRem {
				bestRem = rem
				best = f.deg
			}
		}
		counts[best]++
		assigned++
	}
	return counts
}
