package tornado

import "math/rand"

// PrecodeGraph builds the single sparse bipartite layer a Raptor-style
// precode uses: sources left nodes with heavy-tail degrees (truncated at
// maxDegree) wired to checks right nodes, the same capacity-approaching
// construction the Tornado cascade stacks (newBigraph), exposed as plain
// check→source adjacency. The graph is deterministic in
// (sources, checks, maxDegree, seed), so sender and receivers rebuild
// identical matrices from the session descriptor.
//
// Returned slice: adj[c] lists the source indices XORed into check c.
// Each source appears in at least two checks (heavy-tail minimum degree),
// every entry is in [0, sources), and no check lists a source twice.
func PrecodeGraph(sources, checks, maxDegree int, seed int64) [][]int32 {
	counts := heavyTailCounts(sources, maxDegree)
	g := newBigraph(sources, checks, counts, rand.New(rand.NewSource(seed)))
	return g.neighbors
}
