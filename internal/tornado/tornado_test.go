package tornado

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/code"
)

var _ code.Codec = (*Codec)(nil)

func randSource(rng *rand.Rand, k, packetLen int) [][]byte {
	src := make([][]byte, k)
	for i := range src {
		src[i] = make([]byte, packetLen)
		rng.Read(src[i])
	}
	return src
}

// decodeRandomOrder feeds the encoding in a random order until Done and
// returns the number of distinct packets consumed.
func decodeRandomOrder(t *testing.T, c *Codec, enc [][]byte, src [][]byte, rng *rand.Rand) int {
	t.Helper()
	d := c.NewDecoder()
	order := rng.Perm(c.N())
	used := 0
	for _, i := range order {
		done, err := d.Add(i, enc[i])
		if err != nil {
			t.Fatalf("Add(%d): %v", i, err)
		}
		used++
		if done {
			break
		}
	}
	if !d.Done() {
		t.Fatalf("decoder not done after all %d packets", c.N())
	}
	got, err := d.Source()
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if !bytes.Equal(got[i], src[i]) {
			t.Fatalf("source packet %d differs", i)
		}
	}
	return used
}

func TestRoundTripVariousK(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range []int{1, 2, 3, 8, 50, 256, 1000} {
		c, err := New(A(), k, 2*k+1, 64, 42)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		src := randSource(rng, k, 64)
		enc, err := c.Encode(src)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(enc) != c.N() {
			t.Fatalf("k=%d: got %d packets, want %d", k, len(enc), c.N())
		}
		for i := 0; i < k; i++ {
			if !bytes.Equal(enc[i], src[i]) {
				t.Fatalf("k=%d: not systematic at %d", k, i)
			}
		}
		decodeRandomOrder(t, c, enc, src, rng)
	}
}

func TestRoundTripPropertyQuick(t *testing.T) {
	err := quick.Check(func(seed int64, kRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + int(kRaw)%200
		pl := 2 + 2*rng.Intn(16)
		c, err := New(A(), k, 2*k, pl, seed)
		if err != nil {
			return false
		}
		src := randSource(rng, k, pl)
		enc, err := c.Encode(src)
		if err != nil {
			return false
		}
		d := c.NewDecoder()
		for _, i := range rng.Perm(c.N()) {
			if done, err := d.Add(i, enc[i]); err != nil {
				return false
			} else if done {
				break
			}
		}
		if !d.Done() {
			return false
		}
		got, err := d.Source()
		if err != nil {
			return false
		}
		for i := range src {
			if !bytes.Equal(got[i], src[i]) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicEncoding(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := randSource(rng, 128, 32)
	c1, _ := New(A(), 128, 256, 32, 99)
	c2, _ := New(A(), 128, 256, 32, 99)
	e1, _ := c1.Encode(src)
	e2, _ := c2.Encode(src)
	for i := range e1 {
		if !bytes.Equal(e1[i], e2[i]) {
			t.Fatalf("same seed produced different packet %d", i)
		}
	}
	c3, _ := New(A(), 128, 256, 32, 100)
	e3, _ := c3.Encode(src)
	same := 0
	for i := 128; i < 256; i++ {
		if bytes.Equal(e1[i], e3[i]) {
			same++
		}
	}
	if same == 128 {
		t.Fatal("different seeds produced identical check packets")
	}
}

func TestOverheadReasonable(t *testing.T) {
	// Smoke bound; the precise distribution is measured by the Figure 2
	// experiment. At k=1024 the average overhead should already be well
	// under 15% for both variants.
	rng := rand.New(rand.NewSource(4))
	for _, p := range []Params{A(), B()} {
		k := 1024
		c, err := New(p, k, 2*k, 16, 7)
		if err != nil {
			t.Fatal(err)
		}
		src := randSource(rng, k, 16)
		enc, _ := c.Encode(src)
		totalOverhead := 0.0
		trials := 20
		for trial := 0; trial < trials; trial++ {
			used := decodeRandomOrder(t, c, enc, src, rng)
			totalOverhead += float64(used)/float64(k) - 1
		}
		avg := totalOverhead / float64(trials)
		t.Logf("%s k=%d: avg overhead %.4f", p.Variant, k, avg)
		if avg > 0.15 {
			t.Errorf("%s: average overhead %.3f too high", p.Variant, avg)
		}
	}
}

func TestIncrementalDoneDetection(t *testing.T) {
	// Done must flip exactly when decodable: after Done, adding more
	// packets changes nothing; before Done, Source errors.
	rng := rand.New(rand.NewSource(5))
	k := 64
	c, _ := New(A(), k, 2*k, 16, 11)
	src := randSource(rng, k, 16)
	enc, _ := c.Encode(src)
	d := c.NewDecoder()
	doneAt := -1
	for step, i := range rng.Perm(c.N()) {
		if doneAt < 0 {
			if _, err := d.Source(); err == nil {
				t.Fatal("Source succeeded before done")
			}
		}
		done, err := d.Add(i, enc[i])
		if err != nil {
			t.Fatal(err)
		}
		if done && doneAt < 0 {
			doneAt = step
		}
		if doneAt >= 0 && !done {
			t.Fatal("done went back to false")
		}
	}
	if doneAt < 0 {
		t.Fatal("never done")
	}
	recAtDone := d.Received()
	if recAtDone > c.N() {
		t.Fatal("received more than n")
	}
}

func TestDuplicatesAndJunk(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	k := 32
	c, _ := New(A(), k, 2*k, 16, 12)
	src := randSource(rng, k, 16)
	enc, _ := c.Encode(src)
	d := c.NewDecoder()
	// Duplicates must not advance Received.
	d.Add(0, enc[0])
	d.Add(0, enc[0])
	if d.Received() != 1 {
		t.Fatalf("Received = %d, want 1", d.Received())
	}
	// Bad index and bad length must error without corrupting state.
	if _, err := d.Add(-1, enc[0]); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := d.Add(1, enc[1][:8]); err == nil {
		t.Fatal("short packet accepted")
	}
	for _, i := range rng.Perm(c.N()) {
		if done, _ := d.Add(i, enc[i]); done {
			break
		}
	}
	got, err := d.Source()
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if !bytes.Equal(got[i], src[i]) {
			t.Fatalf("packet %d differs", i)
		}
	}
}

func TestDecoderDataCopied(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	k := 16
	c, _ := New(A(), k, 2*k, 16, 13)
	src := randSource(rng, k, 16)
	enc, _ := c.Encode(src)
	d := c.NewDecoder()
	buf := make([]byte, 16)
	for _, i := range rng.Perm(c.N()) {
		copy(buf, enc[i])
		done, _ := d.Add(i, buf)
		for j := range buf {
			buf[j] = 0xAA
		}
		if done {
			break
		}
	}
	got, err := d.Source()
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if !bytes.Equal(got[i], src[i]) {
			t.Fatalf("decoder aliased caller buffer (packet %d)", i)
		}
	}
}

func TestCascadeStructure(t *testing.T) {
	c, err := New(A(), 16384, 32768, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	levels := c.Levels()
	if len(levels) == 0 {
		t.Fatal("no cascade levels for large k")
	}
	sum := 0
	prev := 16384
	for _, s := range levels {
		if s > prev/2 {
			t.Fatalf("level %d larger than half its input %d", s, prev)
		}
		sum += s
		prev = s
	}
	din, drows := c.DenseSize()
	if sum+drows != 16384 {
		t.Fatalf("checks %d + dense %d != l", sum, drows)
	}
	if din != levels[len(levels)-1] {
		t.Fatalf("dense inputs %d != last level %d", din, levels[len(levels)-1])
	}
	if target := A().denseTarget(); drows > 2*target {
		t.Fatalf("dense rows %d far exceed target %d", drows, target)
	}
}

func TestParamValidation(t *testing.T) {
	if _, err := New(Params{Variant: "x", MaxDegree: 2, DenseTarget: 64}, 8, 16, 4, 1); err == nil {
		t.Fatal("MaxDegree 2 accepted")
	}
	if _, err := New(A(), 0, 8, 4, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := New(A(), 8, 8, 4, 1); err == nil {
		t.Fatal("n=k accepted")
	}
	if _, err := New(A(), 8, 16, 0, 1); err == nil {
		t.Fatal("packetLen=0 accepted")
	}
}

func TestHeavyTailCounts(t *testing.T) {
	for _, nodes := range []int{10, 100, 1000} {
		counts := heavyTailCounts(nodes, 20)
		total := 0
		for d, c := range counts {
			if d < 2 || d > 20 {
				t.Fatalf("degree %d out of range", d)
			}
			if c < 0 {
				t.Fatalf("negative count for degree %d", d)
			}
			total += c
		}
		if total != nodes {
			t.Fatalf("counts sum to %d, want %d", total, nodes)
		}
	}
	// Degree 2 should dominate: P(2) = (1/2)/(1-1/D) ≈ 0.53.
	counts := heavyTailCounts(1000, 20)
	if counts[2] < 450 || counts[2] > 600 {
		t.Fatalf("degree-2 count %d outside expected band", counts[2])
	}
}

func TestBigraphShape(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := newBigraph(1000, 500, heavyTailCounts(1000, 20), rng)
	if g.left != 1000 || g.right != 500 {
		t.Fatal("wrong dims")
	}
	// No duplicate neighbors within a check.
	for c, ns := range g.neighbors {
		seen := map[int32]bool{}
		for _, v := range ns {
			if v < 0 || v >= 1000 {
				t.Fatalf("neighbor %d out of range", v)
			}
			if seen[v] {
				t.Fatalf("check %d has duplicate neighbor %d", c, v)
			}
			seen[v] = true
		}
	}
	// Edge count should be close to 1000 * H(20)/(1-1/20) ≈ 3786.
	e := g.edgeCount()
	if e < 3000 || e > 4500 {
		t.Fatalf("edge count %d outside expected band", e)
	}
}

func TestEncodeValidatesSource(t *testing.T) {
	c, _ := New(A(), 8, 16, 16, 1)
	if _, err := c.Encode(make([][]byte, 7)); err == nil {
		t.Fatal("wrong source count accepted")
	}
}
