package interleave

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/code"
)

var _ code.Codec = (*Codec)(nil)

func randSource(rng *rand.Rand, k, packetLen int) [][]byte {
	src := make([][]byte, k)
	for i := range src {
		src[i] = make([]byte, packetLen)
		rng.Read(src[i])
	}
	return src
}

func TestRoundTripRandomOrder(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		blockK := 1 + rng.Intn(8)
		blocks := 1 + rng.Intn(6)
		c, err := New(blockK, 2*blockK, blocks, 32)
		if err != nil {
			return false
		}
		src := randSource(rng, c.K(), 32)
		enc, err := c.Encode(src)
		if err != nil {
			return false
		}
		d := c.NewDecoder()
		for _, i := range rng.Perm(c.N()) {
			if done, err := d.Add(i, enc[i]); err != nil {
				return false
			} else if done {
				break
			}
		}
		if !d.Done() {
			return false
		}
		got, err := d.Source()
		if err != nil {
			return false
		}
		for i := range src {
			if !bytes.Equal(got[i], src[i]) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSystematicMapping(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c, err := New(4, 8, 3, 32)
	if err != nil {
		t.Fatal(err)
	}
	src := randSource(rng, 12, 32)
	enc, err := c.Encode(src)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 12; f++ {
		if !bytes.Equal(enc[c.SourceIndex(f)], src[f]) {
			t.Fatalf("source packet %d not at SourceIndex %d", f, c.SourceIndex(f))
		}
	}
}

func TestCarouselOrderInterleavesBlocks(t *testing.T) {
	c, err := New(5, 10, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	// Consecutive carousel indices must rotate through blocks 0,1,2,3.
	for i := 0; i < c.N(); i++ {
		b, _ := c.position(i)
		if b != i%4 {
			t.Fatalf("index %d in block %d, want %d", i, b, i%4)
		}
	}
	// A full round of B packets covers each block exactly once.
	seen := map[int]int{}
	for i := 0; i < 4; i++ {
		b, _ := c.position(i)
		seen[b]++
	}
	for b := 0; b < 4; b++ {
		if seen[b] != 1 {
			t.Fatalf("block %d seen %d times in one round", b, seen[b])
		}
	}
}

// TestBlockFillRequirement verifies the coupon-collector behaviour: the
// decoder is done exactly when every block has blockK distinct packets.
func TestBlockFillRequirement(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c, err := New(3, 6, 2, 32)
	if err != nil {
		t.Fatal(err)
	}
	src := randSource(rng, c.K(), 32)
	enc, _ := c.Encode(src)
	d := c.NewDecoder()
	// Fill block 0 entirely: packets at indices 0, 2, 4 (inner 0..2, block 0).
	for inner := 0; inner < 3; inner++ {
		done, err := d.Add(inner*2, enc[inner*2])
		if err != nil {
			t.Fatal(err)
		}
		if done {
			t.Fatal("done with only block 0 filled")
		}
	}
	// Two packets of block 1: still not done.
	d.Add(1, enc[1])
	if done, _ := d.Add(3, enc[3]); done {
		t.Fatal("done with block 1 underfilled")
	}
	// Third distinct packet of block 1 completes.
	if done, _ := d.Add(5, enc[5]); !done {
		t.Fatal("not done though every block is filled")
	}
	got, err := d.Source()
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if !bytes.Equal(got[i], src[i]) {
			t.Fatalf("packet %d differs", i)
		}
	}
}

func TestDuplicatesDoNotFillBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c, _ := New(2, 4, 1, 32)
	src := randSource(rng, 2, 32)
	enc, _ := c.Encode(src)
	d := c.NewDecoder()
	d.Add(0, enc[0])
	d.Add(0, enc[0])
	if d.Received() != 1 {
		t.Fatalf("Received = %d, want 1", d.Received())
	}
	if d.Done() {
		t.Fatal("done from duplicates")
	}
}

func TestNewForFile(t *testing.T) {
	c, err := NewForFile(1000, 50, 2, 32)
	if err != nil {
		t.Fatal(err)
	}
	if c.Blocks() != 20 || c.BlockK() != 50 || c.K() != 1000 || c.N() != 2000 {
		t.Fatalf("unexpected sizing: B=%d k=%d K=%d N=%d", c.Blocks(), c.BlockK(), c.K(), c.N())
	}
	// Block larger than the file collapses to one block.
	c2, err := NewForFile(10, 50, 2, 32)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Blocks() != 1 || c2.BlockK() != 10 {
		t.Fatalf("collapse failed: B=%d k=%d", c2.Blocks(), c2.BlockK())
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := New(4, 8, 0, 32); err == nil {
		t.Fatal("0 blocks accepted")
	}
	if _, err := New(0, 8, 2, 32); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := New(4, 8, 2, 24); err == nil {
		t.Fatal("packetLen not multiple of 16 accepted")
	}
	if _, err := NewForFile(0, 50, 2, 32); err == nil {
		t.Fatal("totalK=0 accepted")
	}
}

func TestAddErrors(t *testing.T) {
	c, _ := New(2, 4, 2, 32)
	d := c.NewDecoder()
	if _, err := d.Add(8, make([]byte, 32)); err == nil {
		t.Fatal("out-of-range accepted")
	}
	if _, err := d.Add(0, make([]byte, 16)); err == nil {
		t.Fatal("short packet accepted")
	}
	if _, err := d.Source(); err == nil {
		t.Fatal("Source before done")
	}
}

// TestEncodeRangeMatchesEncode: carousel-order windows of the interleaved
// encoding must match the full encoding, with source entries aliased.
func TestEncodeRangeMatchesEncode(t *testing.T) {
	c, err := NewForFile(40, 10, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	src := make([][]byte, c.K())
	for i := range src {
		src[i] = make([]byte, 64)
		rng.Read(src[i])
	}
	full, err := c.Encode(src)
	if err != nil {
		t.Fatal(err)
	}
	n := c.N()
	for _, win := range [][2]int{{0, n}, {0, 7}, {n - 9, n}, {n/2 - 3, n/2 + 3}} {
		got, err := c.EncodeRange(src, win[0], win[1])
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range got {
			if !bytes.Equal(p, full[win[0]+i]) {
				t.Fatalf("packet %d differs from full encoding", win[0]+i)
			}
		}
	}
	si := c.SourceIndex(0)
	got, err := c.EncodeRange(src, si, si+1)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0][0] != &src[0][0] {
		t.Fatal("source packet copied, want alias")
	}
}
