// Package interleave implements the interleaved block-coding baseline of
// §6: K source packets are partitioned into B = K/k blocks of k packets,
// each block is stretched to k+l packets with a standard Reed-Solomon
// (Cauchy) erasure code, and the carousel transmits one packet from each
// block in turn ("the encoding consists of sequences of B packets, each of
// which consist of exactly one packet from each block").
//
// The receiver must fill every block — k distinct packets per block — so
// reception efficiency decays with the number of blocks (the coupon
// collector effect of Figure 3), which is the phenomenon Figures 4-6 and
// Table 4 quantify against Tornado codes.
package interleave

import (
	"fmt"

	"repro/internal/code"
	"repro/internal/rs"
)

// Codec is the interleaved block code. It satisfies code.Codec with
// K() = total source packets and N() = total encoding packets.
//
// Packet indexing is carousel order: index i corresponds to block i % B,
// within-block packet i / B. This matches the interleaved transmission
// order, so a carousel that cycles 0..N-1 sends one packet of each block
// per round.
type Codec struct {
	blockK    int // k: source packets per block
	blockN    int // k + l: encoding packets per block
	blocks    int // B
	packetLen int
	inner     *rs.Cauchy
}

// New constructs an interleaved codec over `blocks` blocks of `blockK`
// source packets, each stretched to `blockN` encoding packets.
func New(blockK, blockN, blocks, packetLen int) (*Codec, error) {
	if blocks <= 0 {
		return nil, fmt.Errorf("interleave: invalid block count %d", blocks)
	}
	inner, err := rs.NewCauchy(blockK, blockN, packetLen)
	if err != nil {
		return nil, err
	}
	return &Codec{blockK: blockK, blockN: blockN, blocks: blocks, packetLen: packetLen, inner: inner}, nil
}

// NewForFile sizes an interleaved codec for K total source packets split
// into blocks of at most blockK packets, with stretch factor
// stretch = blockN/blockK. K is rounded up to a multiple of the block size.
func NewForFile(totalK, blockK, stretch, packetLen int) (*Codec, error) {
	if blockK <= 0 || totalK <= 0 {
		return nil, fmt.Errorf("interleave: invalid sizes totalK=%d blockK=%d", totalK, blockK)
	}
	if blockK > totalK {
		blockK = totalK
	}
	blocks := (totalK + blockK - 1) / blockK
	return New(blockK, blockK*stretch, blocks, packetLen)
}

// Name implements code.Codec.
func (c *Codec) Name() string { return fmt.Sprintf("interleaved-k%d", c.blockK) }

// K implements code.Codec.
func (c *Codec) K() int { return c.blockK * c.blocks }

// N implements code.Codec.
func (c *Codec) N() int { return c.blockN * c.blocks }

// PacketLen implements code.Codec.
func (c *Codec) PacketLen() int { return c.packetLen }

// Blocks returns the number of interleaved blocks B.
func (c *Codec) Blocks() int { return c.blocks }

// BlockK returns the per-block source packet count k.
func (c *Codec) BlockK() int { return c.blockK }

// position maps an encoding packet index to (block, within-block index).
func (c *Codec) position(i int) (block, inner int) {
	return i % c.blocks, i / c.blocks
}

// index maps (block, within-block index) to an encoding packet index.
func (c *Codec) index(block, inner int) int {
	return inner*c.blocks + block
}

// Encode implements code.Codec. src is in file order (block-major: packets
// 0..k-1 form block 0); the returned encoding is in carousel order, so the
// code is systematic via the SourceIndex mapping rather than a prefix:
// out[SourceIndex(f)] aliases src[f].
func (c *Codec) Encode(src [][]byte) ([][]byte, error) {
	if err := code.CheckSrc(src, c.K(), c.packetLen); err != nil {
		return nil, err
	}
	out := make([][]byte, c.N())
	blockSrc := make([][]byte, c.blockK)
	for b := 0; b < c.blocks; b++ {
		for j := 0; j < c.blockK; j++ {
			blockSrc[j] = src[b*c.blockK+j]
		}
		enc, err := c.inner.Encode(blockSrc)
		if err != nil {
			return nil, err
		}
		for j := 0; j < c.blockN; j++ {
			out[c.index(b, j)] = enc[j]
		}
	}
	return out, nil
}

// EncodeRange implements code.RangeEncoder: packet i lives in block i % B,
// and within a block every Cauchy repair packet is independent, so any
// carousel-order index window can be produced block by block. src is in
// file order (as for Encode); source entries alias src.
func (c *Codec) EncodeRange(src [][]byte, lo, hi int) ([][]byte, error) {
	if err := code.CheckSrc(src, c.K(), c.packetLen); err != nil {
		return nil, err
	}
	if lo < 0 || hi < lo || hi > c.N() {
		return nil, fmt.Errorf("interleave: encode range [%d,%d) out of [0,%d)", lo, hi, c.N())
	}
	out := make([][]byte, hi-lo)
	blockSrc := make([][]byte, c.blockK)
	for i := lo; i < hi; i++ {
		b, inner := c.position(i)
		if inner < c.blockK {
			out[i-lo] = src[b*c.blockK+inner]
			continue
		}
		for j := 0; j < c.blockK; j++ {
			blockSrc[j] = src[b*c.blockK+j]
		}
		one, err := c.inner.EncodeRange(blockSrc, inner, inner+1)
		if err != nil {
			return nil, err
		}
		out[i-lo] = one[0]
	}
	return out, nil
}

// SourceIndex returns the encoding index of file source packet f (file
// order: block-major, i.e. packets 0..k-1 are block 0).
func (c *Codec) SourceIndex(f int) int {
	block := f / c.blockK
	inner := f % c.blockK
	return c.index(block, inner)
}

// NewDecoder implements code.Codec.
func (c *Codec) NewDecoder() code.Decoder {
	d := &decoder{c: c, blocks: make([]code.Decoder, c.blocks)}
	for b := range d.blocks {
		d.blocks[b] = c.inner.NewDecoder()
	}
	d.pending = c.blocks
	return d
}

type decoder struct {
	c        *Codec
	blocks   []code.Decoder
	pending  int // blocks not yet decodable
	received int
}

func (d *decoder) Add(i int, data []byte) (bool, error) {
	if err := code.CheckPacket(i, data, d.c.N(), d.c.packetLen); err != nil {
		return d.Done(), err
	}
	if d.Done() {
		return true, nil
	}
	b, inner := d.c.position(i)
	bd := d.blocks[b]
	wasDone := bd.Done()
	before := bd.Received()
	done, err := bd.Add(inner, data)
	if err != nil {
		return d.Done(), err
	}
	if bd.Received() > before {
		d.received++
	}
	if done && !wasDone {
		d.pending--
	}
	return d.Done(), nil
}

func (d *decoder) Done() bool { return d.pending == 0 }

func (d *decoder) Received() int { return d.received }

// Source returns the file's source packets in file order (block-major).
func (d *decoder) Source() ([][]byte, error) {
	if !d.Done() {
		return nil, code.ErrNotReady
	}
	out := make([][]byte, 0, d.c.K())
	for b := 0; b < d.c.blocks; b++ {
		src, err := d.blocks[b].Source()
		if err != nil {
			return nil, err
		}
		out = append(out, src...)
	}
	return out, nil
}
