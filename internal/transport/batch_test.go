package transport

import (
	"bytes"
	"fmt"
	"net/netip"
	"testing"
	"time"

	"repro/internal/proto"
)

func testPacket(session uint16, layer uint8, serial uint32, payload []byte) []byte {
	return append(proto.Header{
		Index: serial, Serial: serial, Group: layer, Session: session,
	}.Marshal(nil), payload...)
}

// subscribeDirect injects a subscription without the SUB datagram
// round-trip, so fan-out tests need no socket timing.
func subscribeDirect(s *UDPServer, session uint16, layer uint8, addr netip.AddrPort) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := subKey{session, layer}
	set := s.subs[key]
	if set == nil {
		set = make(map[netip.AddrPort]struct{})
		s.subs[key] = set
	}
	set[addr] = struct{}{}
}

// TestSendFanoutBufferIdentity is the encode-once/write-many regression
// test: across the whole fan-out of Send and SendBatch — every subscriber,
// every packet — the byte slice handed to the write layer must be the very
// buffer the caller passed in (same backing array, same length). One
// encode, N writes, zero copies.
func TestSendFanoutBufferIdentity(t *testing.T) {
	s, err := NewUDPServer("127.0.0.1:0", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	subs := []netip.AddrPort{
		netip.MustParseAddrPort("127.0.0.1:19001"),
		netip.MustParseAddrPort("127.0.0.1:19002"),
		netip.MustParseAddrPort("127.0.0.1:19003"),
	}
	for _, a := range subs {
		subscribeDirect(s, 0xDF98, 1, a)
	}
	type write struct {
		head *byte
		n    int
	}
	var writes []write
	s.batchPortable = true // route the batch path through writeOne
	s.writeOne = func(pkt []byte, to netip.AddrPort) error {
		writes = append(writes, write{&pkt[0], len(pkt)})
		return nil
	}

	pkt := testPacket(0xDF98, 1, 1, []byte("payload"))
	if err := s.Send(1, pkt); err != nil {
		t.Fatal(err)
	}
	if len(writes) != len(subs) {
		t.Fatalf("Send fanned out %d writes, want %d", len(writes), len(subs))
	}
	for i, w := range writes {
		if w.head != &pkt[0] || w.n != len(pkt) {
			t.Fatalf("Send write %d used a different buffer (copied or re-encoded)", i)
		}
	}

	writes = writes[:0]
	batch := [][]byte{
		pkt,
		testPacket(0xDF98, 1, 2, []byte("payload2")),
		testPacket(0xDF98, 1, 3, []byte("payload3")),
	}
	if err := s.SendBatch(1, batch); err != nil {
		t.Fatal(err)
	}
	if want := len(subs) * len(batch); len(writes) != want {
		t.Fatalf("SendBatch fanned out %d writes, want %d", len(writes), want)
	}
	// Per-subscriber coalescing: each subscriber sees the whole batch in
	// order, and every write reuses the caller's exact buffers.
	for wi, w := range writes {
		want := batch[wi%len(batch)]
		if w.head != &want[0] || w.n != len(want) {
			t.Fatalf("SendBatch write %d used a different buffer (copied or re-encoded)", wi)
		}
	}
}

// TestSendBatchRoutesSessionRuns: a batch mixing session ids must route
// each run to its own subscriber set.
func TestSendBatchRoutesSessionRuns(t *testing.T) {
	s, err := NewUDPServer("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	aAddr := netip.MustParseAddrPort("127.0.0.1:19011")
	bAddr := netip.MustParseAddrPort("127.0.0.1:19012")
	subscribeDirect(s, 0xAAAA, 0, aAddr)
	subscribeDirect(s, 0xBBBB, 0, bAddr)
	got := map[netip.AddrPort]int{}
	s.batchPortable = true
	s.writeOne = func(pkt []byte, to netip.AddrPort) error {
		got[to]++
		return nil
	}
	batch := [][]byte{
		testPacket(0xAAAA, 0, 1, nil),
		testPacket(0xAAAA, 0, 2, nil),
		testPacket(0xBBBB, 0, 1, nil),
	}
	if err := s.SendBatch(0, batch); err != nil {
		t.Fatal(err)
	}
	if got[aAddr] != 2 || got[bAddr] != 1 {
		t.Fatalf("session runs misrouted: %v", got)
	}
}

// TestUDPSendBatchLoopback sends a batch large enough to cross the
// sendmmsg chunk boundary through the real socket path and verifies a
// subscribed client receives every packet in order.
func TestUDPSendBatchLoopback(t *testing.T) {
	s, err := NewUDPServer("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := NewUDPClientSession(s.Addr(), 0xDF98, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for s.SessionSubscribers(0xDF98, 0) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscription never registered")
		}
		time.Sleep(time.Millisecond)
	}
	const n = 150 // > 2 * mmsgChunk: exercises chunking on Linux
	batch := make([][]byte, n)
	for i := range batch {
		batch[i] = testPacket(0xDF98, 0, uint32(i+1), []byte(fmt.Sprintf("p%03d", i)))
	}
	if err := s.SendBatch(0, batch); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		pkt, ok := c.Recv(5 * time.Second)
		if !ok {
			t.Fatalf("receive timed out after %d of %d packets", i, n)
		}
		if !bytes.Equal(pkt, batch[i]) {
			t.Fatalf("packet %d differs (reordered or corrupted)", i)
		}
	}
}

// TestSendBatchIsolatesSubscriberErrors: one broken destination must not
// starve the other subscribers of the batch, and the error must still
// surface to the caller.
func TestSendBatchIsolatesSubscriberErrors(t *testing.T) {
	s, err := NewUDPServer("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	bad := netip.MustParseAddrPort("127.0.0.1:19021")
	good := netip.MustParseAddrPort("127.0.0.1:19022")
	subscribeDirect(s, 0xDF98, 0, bad)
	subscribeDirect(s, 0xDF98, 0, good)
	goodGot := 0
	s.batchPortable = true
	s.writeOne = func(pkt []byte, to netip.AddrPort) error {
		if to == bad {
			return fmt.Errorf("destination unreachable")
		}
		goodGot++
		return nil
	}
	batch := [][]byte{
		testPacket(0xDF98, 0, 1, nil),
		testPacket(0xDF98, 0, 2, nil),
		testPacket(0xDF98, 0, 3, nil),
	}
	if err := s.SendBatch(0, batch); err == nil {
		t.Fatal("subscriber write failure not surfaced")
	}
	if goodGot != len(batch) {
		t.Fatalf("healthy subscriber got %d of %d packets", goodGot, len(batch))
	}
	// The per-packet path must isolate the same way.
	goodGot = 0
	if err := s.Send(0, batch[0]); err == nil {
		t.Fatal("Send: subscriber write failure not surfaced")
	}
	if goodGot != 1 {
		t.Fatalf("Send: healthy subscriber got %d of 1 packets", goodGot)
	}
}

// TestSendBatchEmptyPackets: headerless and empty packets are documented
// valid input (they route to wildcard subscribers); the kernel batch path
// must carry them without panicking.
func TestSendBatchEmptyPackets(t *testing.T) {
	s, err := NewUDPServer("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := NewUDPClient(s.Addr(), 0) // wildcard subscription
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for s.Subscribers(0) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscription never registered")
		}
		time.Sleep(time.Millisecond)
	}
	batch := [][]byte{{}, []byte("short"), {}}
	if err := s.SendBatch(0, batch); err != nil {
		t.Fatal(err)
	}
	for i, want := range batch {
		pkt, ok := c.Recv(5 * time.Second)
		if !ok {
			t.Fatalf("receive timed out at packet %d", i)
		}
		if !bytes.Equal(pkt, want) {
			t.Fatalf("packet %d: got %q want %q", i, pkt, want)
		}
	}
}

// TestBusSendBatch: the in-proc bus must deliver a batch in Send-identical
// order, and Send/SendBatch must be interchangeable.
func TestBusSendBatch(t *testing.T) {
	b := NewBus(2)
	var got []uint32
	cl := b.NewClient(1, nil, func(layer int, pkt []byte) {
		h, _, err := proto.ParseHeader(pkt)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, h.Serial)
	})
	defer cl.Close()
	batch := [][]byte{
		testPacket(1, 0, 10, nil),
		testPacket(1, 0, 11, nil),
		testPacket(1, 0, 12, nil),
	}
	if err := b.SendBatch(0, batch); err != nil {
		t.Fatal(err)
	}
	if err := b.SendBatch(5, batch); err == nil {
		t.Fatal("out-of-range layer accepted")
	}
	if err := b.Send(0, testPacket(1, 0, 13, nil)); err != nil {
		t.Fatal(err)
	}
	want := []uint32{10, 11, 12, 13}
	if len(got) != len(want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivered %v, want %v", got, want)
		}
	}
}

// sendOnly is a PacketSender that is deliberately not batch-capable.
type sendOnly struct{ calls [][]byte }

func (s *sendOnly) Send(layer int, pkt []byte) error { s.calls = append(s.calls, pkt); return nil }

// TestAsSender: batch-capable senders pass through untouched; bare
// PacketSenders gain a SendBatch loop preserving order.
func TestAsSender(t *testing.T) {
	bus := NewBus(1)
	if AsSender(bus) != Sender(bus) {
		t.Fatal("batch-capable sender was wrapped")
	}
	so := &sendOnly{}
	up := AsSender(so)
	batch := [][]byte{{1}, {2}, {3}}
	if err := up.SendBatch(0, batch); err != nil {
		t.Fatal(err)
	}
	if len(so.calls) != 3 || &so.calls[0][0] != &batch[0][0] || &so.calls[2][0] != &batch[2][0] {
		t.Fatal("fallback loop dropped or copied packets")
	}
}

// TestBufPool: buffers are reused, grow to the largest requested size,
// and Get after Put returns zero-length slices ready to append into.
func TestBufPool(t *testing.T) {
	p := NewBufPool()
	b := p.Get(64)
	if len(b.B) != 0 || cap(b.B) < 64 {
		t.Fatalf("Get(64): len=%d cap=%d", len(b.B), cap(b.B))
	}
	b.B = append(b.B, bytes.Repeat([]byte{0xAB}, 64)...)
	p.Put(b)
	b2 := p.Get(32)
	if len(b2.B) != 0 {
		t.Fatalf("recycled buffer has len %d, want 0", len(b2.B))
	}
	b2.B = append(b2.B, 1)
	p.Put(b2)
	big := p.Get(4096)
	if cap(big.B) < 4096 {
		t.Fatalf("Get(4096) returned cap %d", cap(big.B))
	}
	p.Put(big)
	allocs := testing.AllocsPerRun(1000, func() {
		b := p.Get(4096)
		b.B = append(b.B, 0xFF)
		p.Put(b)
	})
	// sync.Pool may shed entries across GC cycles; steady state must be
	// essentially allocation-free.
	if allocs > 0.1 {
		t.Fatalf("pooled Get/Put allocates %.2f times per cycle", allocs)
	}
}
