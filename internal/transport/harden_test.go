package transport

import (
	"errors"
	"net"
	"net/netip"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/proto"
)

func waitSubs(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestUDPEvictsFailingSubscriber: a subscriber whose writes persistently
// fail is evicted after the configured error streak — logged exactly once,
// barred from rejoining during the cooldown, welcome back afterwards — and
// the healthy subscriber next to it never misses a packet.
func TestUDPEvictsFailingSubscriber(t *testing.T) {
	srv, err := NewUDPServer("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var logs atomic.Int32
	srv.SetLimits(UDPLimits{
		EvictAfter:    3,
		EvictCooldown: 150 * time.Millisecond,
		Log:           func(string, ...any) { logs.Add(1) },
	})

	victim, err := NewUDPClient(srv.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Close()
	healthy, err := NewUDPClient(srv.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	waitSubs(t, func() bool { return srv.Subscribers(0) == 2 }, "both subscriptions")

	victimAddr := victim.conn.LocalAddr().(*net.UDPAddr).AddrPort()
	victimAddr = netip.AddrPortFrom(victimAddr.Addr().Unmap(), victimAddr.Port())
	realWrite := srv.writeOne
	srv.writeOne = func(pkt []byte, to netip.AddrPort) error {
		if to == victimAddr {
			return errors.New("synthetic broken path")
		}
		return realWrite(pkt, to)
	}

	// Each Send is one delivery attempt per subscriber; three failures
	// trip the eviction.
	var healthyGot sync.WaitGroup
	healthyGot.Add(1)
	go func() {
		defer healthyGot.Done()
		for i := 0; i < 5; i++ {
			if _, ok := healthy.Recv(2 * time.Second); !ok {
				return
			}
		}
	}()
	time.Sleep(20 * time.Millisecond)
	for i := 0; i < 5; i++ {
		srv.Send(0, []byte("pkt"))
	}
	if got := srv.Hardening().Evictions; got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if got := srv.Subscribers(0); got != 1 {
		t.Fatalf("subscribers after eviction = %d, want 1", got)
	}
	if got := logs.Load(); got != 1 {
		t.Fatalf("eviction logged %d times, want once", got)
	}
	healthyGot.Wait() // the healthy subscriber kept receiving throughout

	// Rejoin during the cooldown is refused.
	if err := victim.Resubscribe(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if got := srv.Subscribers(0); got != 1 {
		t.Fatalf("evicted subscriber rejoined inside the cooldown (subs = %d)", got)
	}
	if srv.Hardening().RefusedJoins == 0 {
		t.Fatal("penalty-box refusal not counted")
	}

	// After the cooldown the address is welcome again (and writes work:
	// restore the real path).
	srv.writeOne = realWrite
	time.Sleep(150 * time.Millisecond)
	if err := victim.Resubscribe(); err != nil {
		t.Fatal(err)
	}
	waitSubs(t, func() bool { return srv.Subscribers(0) == 2 }, "post-cooldown rejoin")
}

// TestUDPMaxSubscribers: joins beyond the admission cap are refused;
// leaving frees a slot.
func TestUDPMaxSubscribers(t *testing.T) {
	srv, err := NewUDPServer("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.SetLimits(UDPLimits{MaxSubscribers: 1})

	first, err := NewUDPClient(srv.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	waitSubs(t, func() bool { return srv.Subscribers(0) == 1 }, "first subscription")

	second, err := NewUDPClient(srv.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	time.Sleep(50 * time.Millisecond)
	if got := srv.Subscribers(0); got != 1 {
		t.Fatalf("cap ignored: %d subscribers", got)
	}
	if srv.Hardening().RefusedJoins == 0 {
		t.Fatal("refused join not counted")
	}

	// An established subscriber is unaffected by the cap (its re-joins
	// keep working), and a departure frees the slot.
	if err := first.Resubscribe(); err != nil {
		t.Fatal(err)
	}
	first.Close()
	waitSubs(t, func() bool { return srv.Subscribers(0) == 0 }, "first departure")
	if err := second.Resubscribe(); err != nil {
		t.Fatal(err)
	}
	waitSubs(t, func() bool { return srv.Subscribers(0) == 1 }, "second admitted after departure")
}

// TestUDPRateCap: a per-subscriber packets-per-second cap truncates what
// one subscriber receives from a burst without touching the uncapped
// accounting — to the client the excess is ordinary path loss, which the
// fountain absorbs by design.
func TestUDPRateCap(t *testing.T) {
	srv, err := NewUDPServer("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	const cap = 50
	srv.SetLimits(UDPLimits{MaxPPS: cap})

	cli, err := NewUDPClient(srv.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	waitSubs(t, func() bool { return srv.Subscribers(0) == 1 }, "subscription")

	// One big batch: the bucket holds one second's depth, so at most cap
	// packets pass and the rest are counted as rate-dropped.
	pkts := make([][]byte, 4*cap)
	for i := range pkts {
		pkts[i] = []byte{byte(i)}
	}
	if err := srv.SendBatch(0, pkts); err != nil {
		t.Fatal(err)
	}
	dropped := srv.Hardening().RateDropped
	if want := uint64(len(pkts) - cap); dropped != want {
		t.Fatalf("rate-dropped %d packets, want %d", dropped, want)
	}
	got := 0
	for {
		if _, ok := cli.Recv(100 * time.Millisecond); !ok {
			break
		}
		got++
	}
	if got > cap {
		t.Fatalf("subscriber received %d packets past a %d pps cap", got, cap)
	}
}

// TestUDPResubscribeAfterRestart: a server that crashed and came back on
// the same port has an empty membership table; the client's Resubscribe
// datagram restores delivery with no other recovery action.
func TestUDPResubscribeAfterRestart(t *testing.T) {
	srv, err := NewUDPServer("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := NewUDPClient(srv.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	waitSubs(t, func() bool { return srv.Subscribers(0) == 1 }, "subscription")

	// Simulate the restart: the membership table is gone.
	srv.mu.Lock()
	srv.subs = make(map[subKey]map[netip.AddrPort]struct{})
	srv.addrRef = make(map[netip.AddrPort]int)
	srv.mu.Unlock()
	if got := srv.Subscribers(0); got != 0 {
		t.Fatalf("membership survived the simulated restart: %d", got)
	}

	if err := cli.Resubscribe(); err != nil {
		t.Fatal(err)
	}
	waitSubs(t, func() bool { return srv.Subscribers(0) == 1 }, "resubscription")
}

// TestRequestSessionInfoRetry: the bounded retry loop fails fast against a
// dead address, and succeeds once the control plane answers — even when
// the first attempts are met with silence, the crashed-mirror shape.
func TestRequestSessionInfoRetry(t *testing.T) {
	// A dead port: every attempt times out, the loop must stop at the
	// bound and report the attempt count.
	dead := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 1}
	policy := RetryPolicy{Attempts: 3, Timeout: 50 * time.Millisecond,
		Backoff: 10 * time.Millisecond, MaxBackoff: 20 * time.Millisecond, Seed: 1}
	start := time.Now()
	if _, err := RequestSessionInfoRetry(dead, proto.MarshalHello(), policy); err == nil {
		t.Fatal("request against a dead port succeeded")
	} else if want := "after 3 attempts"; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not name the attempt bound", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("bounded retry ran %v", elapsed)
	}

	// A control server that stays silent for the first two requests —
	// the restarting mirror — must be reached by a later attempt.
	var calls atomic.Int32
	reply := proto.SessionInfo{Session: 7, K: 10, N: 20, PacketLen: 32}.Marshal()
	addr, stop, err := ServeControlFunc("127.0.0.1:0", func(req []byte) []byte {
		if calls.Add(1) <= 2 {
			return nil // silence: the request times out
		}
		return reply
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	got, err := RequestSessionInfoRetry(addr, proto.MarshalHelloFor(7), policy)
	if err != nil {
		t.Fatalf("retry never reached the recovered control plane: %v", err)
	}
	info, err := proto.ParseSessionInfo(got)
	if err != nil || info.Session != 7 {
		t.Fatalf("bad descriptor after retry: %v %+v", err, info)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("control handler saw %d requests, want 3", n)
	}
}

// TestMultiClientRejoin: Rejoin(src) re-subscribes exactly that source.
func TestMultiClientRejoin(t *testing.T) {
	srvs := make([]*UDPServer, 2)
	addrs := make([]*net.UDPAddr, 2)
	for i := range srvs {
		s, err := NewUDPServer("127.0.0.1:0", 1)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		srvs[i] = s
		addrs[i] = s.Addr()
	}
	const session = 0xD0D0
	mc, err := NewMultiClient(addrs, session, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	waitSubs(t, func() bool {
		return srvs[0].SessionSubscribers(session, 0) == 1 &&
			srvs[1].SessionSubscribers(session, 0) == 1
	}, "both subscriptions")

	// Mirror 1 restarts and loses its table; Rejoin(1) restores it.
	srvs[1].mu.Lock()
	srvs[1].subs = make(map[subKey]map[netip.AddrPort]struct{})
	srvs[1].addrRef = make(map[netip.AddrPort]int)
	srvs[1].mu.Unlock()
	if err := mc.Rejoin(1); err != nil {
		t.Fatal(err)
	}
	waitSubs(t, func() bool { return srvs[1].SessionSubscribers(session, 0) == 1 }, "rejoin")
	if err := mc.Rejoin(9); err == nil {
		t.Fatal("rejoin of an unknown source accepted")
	}
}
