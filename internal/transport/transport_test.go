package transport

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/proto"
)

func TestBusDeliveryAndLevels(t *testing.T) {
	b := NewBus(4)
	var got []int
	c := b.NewClient(1, nil, func(layer int, pkt []byte) {
		got = append(got, layer)
	})
	for l := 0; l < 4; l++ {
		b.Send(l, []byte{byte(l)})
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("level-1 client got layers %v", got)
	}
	c.SetLevel(3)
	got = nil
	b.Send(3, []byte{3})
	if len(got) != 1 {
		t.Fatal("level change not applied")
	}
	c.Close()
	got = nil
	b.Send(0, []byte{0})
	if len(got) != 0 {
		t.Fatal("closed client still receives")
	}
}

func TestBusLossInjection(t *testing.T) {
	b := NewBus(1)
	rng := rand.New(rand.NewSource(1))
	n := 0
	b.NewClient(0, &netsim.Bernoulli{P: 0.5, Rng: rng}, func(int, []byte) { n++ })
	for i := 0; i < 10000; i++ {
		b.Send(0, []byte{1})
	}
	if n < 4500 || n > 5500 {
		t.Fatalf("delivered %d of 10000 at p=0.5", n)
	}
}

func TestBusBadLayer(t *testing.T) {
	b := NewBus(2)
	if err := b.Send(2, nil); err == nil {
		t.Fatal("bad layer accepted")
	}
}

func TestUDPSubscribeAndDeliver(t *testing.T) {
	srv, err := NewUDPServer("127.0.0.1:0", 3)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := NewUDPClient(srv.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	// Wait for membership to register.
	deadline := time.Now().Add(2 * time.Second)
	for srv.Subscribers(0) == 0 || srv.Subscribers(1) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscriptions never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if srv.Subscribers(2) != 0 {
		t.Fatal("unexpected layer-2 subscription")
	}
	payload := []byte("hello fountain")
	var wg sync.WaitGroup
	wg.Add(1)
	var got []byte
	go func() {
		defer wg.Done()
		pkt, ok := cli.Recv(2 * time.Second)
		if ok {
			got = pkt
		}
	}()
	time.Sleep(20 * time.Millisecond)
	if err := srv.Send(1, payload); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %q", got)
	}
}

func TestUDPUnsubscribe(t *testing.T) {
	srv, err := NewUDPServer("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := NewUDPClient(srv.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	deadline := time.Now().Add(2 * time.Second)
	for srv.Subscribers(1) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("never subscribed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cli.SetLevel(0)
	for srv.Subscribers(1) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("never unsubscribed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if srv.Subscribers(0) != 1 {
		t.Fatal("layer 0 dropped too")
	}
}

func TestControlRoundTrip(t *testing.T) {
	reply := []byte{9, 9, 9}
	addr, stop, err := ServeControl("127.0.0.1:0", func(b []byte) bool { return len(b) == 1 && b[0] == 7 }, reply)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	got, err := RequestSessionInfo(addr, []byte{7}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, reply) {
		t.Fatalf("got %v", got)
	}
}

// TestUDPSessionMux: one socket, two sessions, session-specific clients —
// each client must receive only its session's packets, while a wildcard
// client sees both.
func TestUDPSessionMux(t *testing.T) {
	srv, err := NewUDPServer("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	mkPkt := func(session uint16, payload byte) []byte {
		h := proto.Header{Index: 1, Serial: 1, Group: 0, Session: session}
		return append(h.Marshal(nil), payload)
	}
	cliA, err := NewUDPClientSession(srv.Addr(), 0xAAAA, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cliA.Close()
	cliB, err := NewUDPClientSession(srv.Addr(), 0xBBBB, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cliB.Close()
	cliAny, err := NewUDPClient(srv.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cliAny.Close()
	deadline := time.Now().Add(2 * time.Second)
	for srv.SessionSubscribers(0xAAAA, 0) == 0 || srv.SessionSubscribers(0xBBBB, 0) == 0 ||
		srv.SessionSubscribers(SessionAny, 0) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscriptions never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := srv.Subscribers(0); got != 3 {
		t.Fatalf("layer-0 subscriber union = %d, want 3", got)
	}
	for i := 0; i < 5; i++ {
		if err := srv.Send(0, mkPkt(0xAAAA, 'a')); err != nil {
			t.Fatal(err)
		}
		if err := srv.Send(0, mkPkt(0xBBBB, 'b')); err != nil {
			t.Fatal(err)
		}
	}
	recvSessions := func(cli *UDPClient, n int) map[uint16]int {
		got := map[uint16]int{}
		for i := 0; i < n; i++ {
			pkt, ok := cli.Recv(time.Second)
			if !ok {
				break
			}
			h, _, err := proto.ParseHeader(pkt)
			if err != nil {
				t.Fatal(err)
			}
			got[h.Session]++
		}
		return got
	}
	gotA := recvSessions(cliA, 5)
	if gotA[0xAAAA] == 0 || gotA[0xBBBB] != 0 {
		t.Fatalf("session-A client saw %v", gotA)
	}
	gotB := recvSessions(cliB, 5)
	if gotB[0xBBBB] == 0 || gotB[0xAAAA] != 0 {
		t.Fatalf("session-B client saw %v", gotB)
	}
	gotAny := recvSessions(cliAny, 10)
	if gotAny[0xAAAA] == 0 || gotAny[0xBBBB] == 0 {
		t.Fatalf("wildcard client saw %v", gotAny)
	}
}

// TestUDPServerCloseJoinsLoop: Close must not return before the membership
// goroutine has exited (teardown race / goroutine leak under -race). The
// concurrent subscriber traffic makes a non-joined loop's socket reads
// visible to the race detector.
func TestUDPServerCloseJoinsLoop(t *testing.T) {
	for i := 0; i < 20; i++ {
		srv, err := NewUDPServer("127.0.0.1:0", 2)
		if err != nil {
			t.Fatal(err)
		}
		cli, err := NewUDPClient(srv.Addr(), 1)
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			for j := 0; j < 50; j++ {
				cli.SetLevel(j % 2)
			}
		}()
		time.Sleep(time.Millisecond)
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
		if err := srv.Close(); err != nil { // idempotent
			t.Fatal(err)
		}
		select {
		case <-srv.loopDone:
		default:
			t.Fatal("Close returned before membershipLoop exited")
		}
		<-done
		cli.Close()
		if err := cli.SetLevel(1); err == nil {
			t.Fatal("SetLevel succeeded on closed client")
		}
	}
}

// TestServeControlFuncStopJoins: stop must wait for the control read loop.
func TestServeControlFuncStopJoins(t *testing.T) {
	calls := 0
	addr, stop, err := ServeControlFunc("127.0.0.1:0", func(req []byte) []byte {
		calls++
		if len(req) == 1 && req[0] == 7 {
			return []byte{8}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RequestSessionInfo(addr, []byte{7}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 8 {
		t.Fatalf("reply %v", got)
	}
	stop()
	stop() // idempotent
}
