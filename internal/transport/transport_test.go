package transport

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/netsim"
)

func TestBusDeliveryAndLevels(t *testing.T) {
	b := NewBus(4)
	var got []int
	c := b.NewClient(1, nil, func(layer int, pkt []byte) {
		got = append(got, layer)
	})
	for l := 0; l < 4; l++ {
		b.Send(l, []byte{byte(l)})
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("level-1 client got layers %v", got)
	}
	c.SetLevel(3)
	got = nil
	b.Send(3, []byte{3})
	if len(got) != 1 {
		t.Fatal("level change not applied")
	}
	c.Close()
	got = nil
	b.Send(0, []byte{0})
	if len(got) != 0 {
		t.Fatal("closed client still receives")
	}
}

func TestBusLossInjection(t *testing.T) {
	b := NewBus(1)
	rng := rand.New(rand.NewSource(1))
	n := 0
	b.NewClient(0, &netsim.Bernoulli{P: 0.5, Rng: rng}, func(int, []byte) { n++ })
	for i := 0; i < 10000; i++ {
		b.Send(0, []byte{1})
	}
	if n < 4500 || n > 5500 {
		t.Fatalf("delivered %d of 10000 at p=0.5", n)
	}
}

func TestBusBadLayer(t *testing.T) {
	b := NewBus(2)
	if err := b.Send(2, nil); err == nil {
		t.Fatal("bad layer accepted")
	}
}

func TestUDPSubscribeAndDeliver(t *testing.T) {
	srv, err := NewUDPServer("127.0.0.1:0", 3)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := NewUDPClient(srv.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	// Wait for membership to register.
	deadline := time.Now().Add(2 * time.Second)
	for srv.Subscribers(0) == 0 || srv.Subscribers(1) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscriptions never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if srv.Subscribers(2) != 0 {
		t.Fatal("unexpected layer-2 subscription")
	}
	payload := []byte("hello fountain")
	var wg sync.WaitGroup
	wg.Add(1)
	var got []byte
	go func() {
		defer wg.Done()
		pkt, ok := cli.Recv(2 * time.Second)
		if ok {
			got = pkt
		}
	}()
	time.Sleep(20 * time.Millisecond)
	if err := srv.Send(1, payload); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %q", got)
	}
}

func TestUDPUnsubscribe(t *testing.T) {
	srv, err := NewUDPServer("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := NewUDPClient(srv.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	deadline := time.Now().Add(2 * time.Second)
	for srv.Subscribers(1) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("never subscribed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cli.SetLevel(0)
	for srv.Subscribers(1) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("never unsubscribed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if srv.Subscribers(0) != 1 {
		t.Fatal("layer 0 dropped too")
	}
}

func TestControlRoundTrip(t *testing.T) {
	reply := []byte{9, 9, 9}
	addr, stop, err := ServeControl("127.0.0.1:0", func(b []byte) bool { return len(b) == 1 && b[0] == 7 }, reply)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	got, err := RequestSessionInfo(addr, []byte{7}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, reply) {
		t.Fatalf("got %v", got)
	}
}
