package transport

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/proto"
)

func TestBusDeliveryAndLevels(t *testing.T) {
	b := NewBus(4)
	var got []int
	c := b.NewClient(1, nil, func(layer int, pkt []byte) {
		got = append(got, layer)
	})
	for l := 0; l < 4; l++ {
		b.Send(l, []byte{byte(l)})
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("level-1 client got layers %v", got)
	}
	c.SetLevel(3)
	got = nil
	b.Send(3, []byte{3})
	if len(got) != 1 {
		t.Fatal("level change not applied")
	}
	c.Close()
	got = nil
	b.Send(0, []byte{0})
	if len(got) != 0 {
		t.Fatal("closed client still receives")
	}
}

func TestBusLossInjection(t *testing.T) {
	b := NewBus(1)
	rng := netsim.NewRNG(1)
	n := 0
	b.NewClient(0, &netsim.Bernoulli{P: 0.5, Rng: rng}, func(int, []byte) { n++ })
	for i := 0; i < 10000; i++ {
		b.Send(0, []byte{1})
	}
	if n < 4500 || n > 5500 {
		t.Fatalf("delivered %d of 10000 at p=0.5", n)
	}
}

func TestBusBadLayer(t *testing.T) {
	b := NewBus(2)
	if err := b.Send(2, nil); err == nil {
		t.Fatal("bad layer accepted")
	}
}

func TestUDPSubscribeAndDeliver(t *testing.T) {
	srv, err := NewUDPServer("127.0.0.1:0", 3)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := NewUDPClient(srv.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	// Wait for membership to register.
	deadline := time.Now().Add(2 * time.Second)
	for srv.Subscribers(0) == 0 || srv.Subscribers(1) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscriptions never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if srv.Subscribers(2) != 0 {
		t.Fatal("unexpected layer-2 subscription")
	}
	payload := []byte("hello fountain")
	var wg sync.WaitGroup
	wg.Add(1)
	var got []byte
	go func() {
		defer wg.Done()
		pkt, ok := cli.Recv(2 * time.Second)
		if ok {
			got = pkt
		}
	}()
	time.Sleep(20 * time.Millisecond)
	if err := srv.Send(1, payload); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %q", got)
	}
}

func TestUDPUnsubscribe(t *testing.T) {
	srv, err := NewUDPServer("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := NewUDPClient(srv.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	deadline := time.Now().Add(2 * time.Second)
	for srv.Subscribers(1) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("never subscribed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cli.SetLevel(0)
	for srv.Subscribers(1) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("never unsubscribed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if srv.Subscribers(0) != 1 {
		t.Fatal("layer 0 dropped too")
	}
}

func TestControlRoundTrip(t *testing.T) {
	reply := []byte{9, 9, 9}
	addr, stop, err := ServeControl("127.0.0.1:0", func(b []byte) bool { return len(b) == 1 && b[0] == 7 }, reply)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	got, err := RequestSessionInfo(addr, []byte{7}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, reply) {
		t.Fatalf("got %v", got)
	}
}

// TestUDPSessionMux: one socket, two sessions, session-specific clients —
// each client must receive only its session's packets, while a wildcard
// client sees both.
func TestUDPSessionMux(t *testing.T) {
	srv, err := NewUDPServer("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	mkPkt := func(session uint16, payload byte) []byte {
		h := proto.Header{Index: 1, Serial: 1, Group: 0, Session: session}
		return append(h.Marshal(nil), payload)
	}
	cliA, err := NewUDPClientSession(srv.Addr(), 0xAAAA, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cliA.Close()
	cliB, err := NewUDPClientSession(srv.Addr(), 0xBBBB, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cliB.Close()
	cliAny, err := NewUDPClient(srv.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cliAny.Close()
	deadline := time.Now().Add(2 * time.Second)
	for srv.SessionSubscribers(0xAAAA, 0) == 0 || srv.SessionSubscribers(0xBBBB, 0) == 0 ||
		srv.SessionSubscribers(SessionAny, 0) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscriptions never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := srv.Subscribers(0); got != 3 {
		t.Fatalf("layer-0 subscriber union = %d, want 3", got)
	}
	for i := 0; i < 5; i++ {
		if err := srv.Send(0, mkPkt(0xAAAA, 'a')); err != nil {
			t.Fatal(err)
		}
		if err := srv.Send(0, mkPkt(0xBBBB, 'b')); err != nil {
			t.Fatal(err)
		}
	}
	recvSessions := func(cli *UDPClient, n int) map[uint16]int {
		got := map[uint16]int{}
		for i := 0; i < n; i++ {
			pkt, ok := cli.Recv(time.Second)
			if !ok {
				break
			}
			h, _, err := proto.ParseHeader(pkt)
			if err != nil {
				t.Fatal(err)
			}
			got[h.Session]++
		}
		return got
	}
	gotA := recvSessions(cliA, 5)
	if gotA[0xAAAA] == 0 || gotA[0xBBBB] != 0 {
		t.Fatalf("session-A client saw %v", gotA)
	}
	gotB := recvSessions(cliB, 5)
	if gotB[0xBBBB] == 0 || gotB[0xAAAA] != 0 {
		t.Fatalf("session-B client saw %v", gotB)
	}
	gotAny := recvSessions(cliAny, 10)
	if gotAny[0xAAAA] == 0 || gotAny[0xBBBB] == 0 {
		t.Fatalf("wildcard client saw %v", gotAny)
	}
}

// TestUDPServerCloseJoinsLoop: Close must not return before the membership
// goroutine has exited (teardown race / goroutine leak under -race). The
// concurrent subscriber traffic makes a non-joined loop's socket reads
// visible to the race detector.
func TestUDPServerCloseJoinsLoop(t *testing.T) {
	for i := 0; i < 20; i++ {
		srv, err := NewUDPServer("127.0.0.1:0", 2)
		if err != nil {
			t.Fatal(err)
		}
		cli, err := NewUDPClient(srv.Addr(), 1)
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			for j := 0; j < 50; j++ {
				cli.SetLevel(j % 2)
			}
		}()
		time.Sleep(time.Millisecond)
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
		if err := srv.Close(); err != nil { // idempotent
			t.Fatal(err)
		}
		select {
		case <-srv.loopDone:
		default:
			t.Fatal("Close returned before membershipLoop exited")
		}
		<-done
		cli.Close()
		if err := cli.SetLevel(1); err == nil {
			t.Fatal("SetLevel succeeded on closed client")
		}
	}
}

// TestServeControlFuncStopJoins: stop must wait for the control read loop.
func TestServeControlFuncStopJoins(t *testing.T) {
	calls := 0
	addr, stop, err := ServeControlFunc("127.0.0.1:0", func(req []byte) []byte {
		calls++
		if len(req) == 1 && req[0] == 7 {
			return []byte{8}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RequestSessionInfo(addr, []byte{7}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 8 {
		t.Fatalf("reply %v", got)
	}
	stop()
	stop() // idempotent
}

// TestPumpOrderingDeterministic: sources fire in virtual-time order with
// registration-order tie-breaking, so the interleaving is reproducible.
func TestPumpOrderingDeterministic(t *testing.T) {
	run := func() []int {
		p := NewPump()
		var order []int
		p.Add(0, 1.0, func() error { order = append(order, 0); return nil })
		p.Add(0, 1.0, func() error { order = append(order, 1); return nil })
		p.Add(0, 0.5, func() error { order = append(order, 2); return nil })
		if _, err := p.Run(12, nil); err != nil {
			t.Fatal(err)
		}
		return order
	}
	a, b := run(), run()
	if len(a) != 12 {
		t.Fatalf("ran %d steps, want 12", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("interleavings diverge at %d: %v vs %v", i, a, b)
		}
	}
	// The double-rate source must fire twice as often as each unit-rate one.
	count := map[int]int{}
	for _, s := range a {
		count[s]++
	}
	if count[2] != count[0]+count[1] {
		t.Fatalf("rate weighting wrong: %v", count)
	}
}

// TestPumpStopsOnDoneAndError: done() halts the pump between steps; a step
// error propagates with the step counted.
func TestPumpStopsOnDoneAndError(t *testing.T) {
	p := NewPump()
	n := 0
	p.Add(0, 1, func() error { n++; return nil })
	steps, err := p.Run(100, func() bool { return n >= 5 })
	if err != nil || steps != 5 || n != 5 {
		t.Fatalf("steps=%d n=%d err=%v", steps, n, err)
	}
	boom := errForTest{}
	p2 := NewPump()
	p2.Add(0, 1, func() error { return boom })
	if steps, err := p2.Run(100, nil); err != boom || steps != 1 {
		t.Fatalf("steps=%d err=%v", steps, err)
	}
	if steps, err := NewPump().Run(100, nil); steps != 0 || err != nil {
		t.Fatalf("empty pump ran %d steps, err=%v", steps, err)
	}
}

type errForTest struct{}

func (errForTest) Error() string { return "boom" }

// TestBusPerLayerLoss: a per-layer override must shadow the client-wide
// process on its layer only.
func TestBusPerLayerLoss(t *testing.T) {
	b := NewBus(2)
	got := map[int]int{}
	c := b.NewClient(1, nil, func(layer int, pkt []byte) { got[layer]++ })
	defer c.Close()
	c.SetLayerLoss(1, &alwaysLose{})
	for i := 0; i < 50; i++ {
		b.Send(0, []byte{0})
		b.Send(1, []byte{1})
	}
	if got[0] != 50 || got[1] != 0 {
		t.Fatalf("deliveries %v, want layer 0 = 50, layer 1 = 0", got)
	}
	c.SetLayerLoss(1, nil) // restore default (lossless)
	b.Send(1, []byte{1})
	if got[1] != 1 {
		t.Fatal("clearing the override did not restore delivery")
	}
}

type alwaysLose struct{}

func (alwaysLose) Lose() bool { return true }

// TestMultiClientHarvestsAllSources: a MultiClient joined to two UDP
// servers must deliver both servers' packets tagged with the right source
// index, and SetLevel must fan out to every source.
func TestMultiClientHarvestsAllSources(t *testing.T) {
	const session = 0xCAFE
	srvs := make([]*UDPServer, 2)
	for i := range srvs {
		s, err := NewUDPServer("127.0.0.1:0", 2)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		srvs[i] = s
	}
	mc, err := NewMultiClient([]*net.UDPAddr{srvs[0].Addr(), srvs[1].Addr()}, session, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	if mc.Sources() != 2 {
		t.Fatalf("sources = %d", mc.Sources())
	}
	deadline := time.Now().Add(2 * time.Second)
	for srvs[0].SessionSubscribers(session, 0) == 0 || srvs[1].SessionSubscribers(session, 0) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscriptions never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	mkPkt := func(src byte) []byte {
		h := proto.Header{Index: uint32(src), Serial: 1, Session: session}
		return append(h.Marshal(nil), src)
	}
	for i := 0; i < 5; i++ {
		if err := srvs[0].Send(0, mkPkt(0)); err != nil {
			t.Fatal(err)
		}
		if err := srvs[1].Send(0, mkPkt(1)); err != nil {
			t.Fatal(err)
		}
	}
	bySource := map[int]int{}
	for len(bySource) < 2 {
		src, pkt, ok := mc.Recv(2 * time.Second)
		if !ok {
			t.Fatalf("timed out with sources %v", bySource)
		}
		h, payload, err := proto.ParseHeader(pkt)
		if err != nil {
			t.Fatal(err)
		}
		if int(h.Index) != src || int(payload[0]) != src {
			t.Fatalf("packet from server %d delivered as source %d", h.Index, src)
		}
		bySource[src]++
	}
	// Level fan-out: raising to 1 must join layer 1 on both servers.
	if err := mc.SetLevel(1); err != nil {
		t.Fatal(err)
	}
	if mc.Level() != 1 {
		t.Fatalf("level = %d", mc.Level())
	}
	deadline = time.Now().Add(2 * time.Second) // fresh budget: Recvs above may have eaten the first
	for srvs[0].SessionSubscribers(session, 1) == 0 || srvs[1].SessionSubscribers(session, 1) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("layer-1 joins never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := mc.Close(); err != nil { // idempotent double close
		t.Fatal(err)
	}
	if _, _, ok := mc.Recv(50 * time.Millisecond); ok {
		t.Fatal("Recv succeeded after Close")
	}
}
