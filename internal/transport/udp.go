package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// The UDP substrate emulates per-group multicast membership with explicit
// subscribe/unsubscribe datagrams (a stand-in for IGMP): a client sends
// "SUB\x01<layer>" / "SUB\x00<layer>" to the server's data port, and the
// server unicasts each layer's packets to the addresses subscribed to it.

// UDPServer owns the data socket and the per-layer subscriber sets.
type UDPServer struct {
	conn   *net.UDPConn
	layers int
	mu     sync.Mutex
	subs   []map[string]*net.UDPAddr // per layer
	done   chan struct{}
}

// NewUDPServer listens on addr (e.g. "127.0.0.1:0") and serves `layers`
// groups.
func NewUDPServer(addr string, layers int) (*UDPServer, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	s := &UDPServer{conn: conn, layers: layers, done: make(chan struct{})}
	s.subs = make([]map[string]*net.UDPAddr, layers)
	for i := range s.subs {
		s.subs[i] = make(map[string]*net.UDPAddr)
	}
	go s.membershipLoop()
	return s, nil
}

// Addr returns the data socket address.
func (s *UDPServer) Addr() *net.UDPAddr { return s.conn.LocalAddr().(*net.UDPAddr) }

func (s *UDPServer) membershipLoop() {
	buf := make([]byte, 64)
	for {
		n, from, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				continue
			}
		}
		if n >= 5 && string(buf[:3]) == "SUB" {
			join := buf[3] == 1
			layer := int(buf[4])
			if layer < 0 || layer >= s.layers {
				continue
			}
			s.mu.Lock()
			if join {
				s.subs[layer][from.String()] = from
			} else {
				delete(s.subs[layer], from.String())
			}
			s.mu.Unlock()
		}
	}
}

// Send unicasts pkt to every subscriber of the layer.
func (s *UDPServer) Send(layer int, pkt []byte) error {
	if layer < 0 || layer >= s.layers {
		return fmt.Errorf("transport: layer %d out of range", layer)
	}
	s.mu.Lock()
	addrs := make([]*net.UDPAddr, 0, len(s.subs[layer]))
	for _, a := range s.subs[layer] {
		addrs = append(addrs, a)
	}
	s.mu.Unlock()
	for _, a := range addrs {
		if _, err := s.conn.WriteToUDP(pkt, a); err != nil {
			return err
		}
	}
	return nil
}

// Subscribers returns the subscriber count of a layer.
func (s *UDPServer) Subscribers(layer int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if layer < 0 || layer >= s.layers {
		return 0
	}
	return len(s.subs[layer])
}

// Close shuts the socket down.
func (s *UDPServer) Close() error {
	close(s.done)
	return s.conn.Close()
}

// UDPClient is the receiver side of the UDP substrate.
type UDPClient struct {
	conn   *net.UDPConn
	server *net.UDPAddr
	mu     sync.Mutex
	level  int
	closed bool
}

// NewUDPClient dials the server's data port and subscribes to layers
// 0..level.
func NewUDPClient(server *net.UDPAddr, level int) (*UDPClient, error) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, err
	}
	c := &UDPClient{conn: conn, server: server, level: -1}
	if err := c.SetLevel(level); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

func (c *UDPClient) sendSub(layer int, join bool) error {
	b := []byte{'S', 'U', 'B', 0, byte(layer)}
	if join {
		b[3] = 1
	}
	_, err := c.conn.WriteToUDP(b, c.server)
	return err
}

// SetLevel adjusts the cumulative subscription (joins/leaves the delta).
func (c *UDPClient) SetLevel(level int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for l := c.level + 1; l <= level; l++ {
		if err := c.sendSub(l, true); err != nil {
			return err
		}
	}
	for l := c.level; l > level; l-- {
		if err := c.sendSub(l, false); err != nil {
			return err
		}
	}
	c.level = level
	return nil
}

// Level returns the current subscription level.
func (c *UDPClient) Level() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.level
}

// Recv blocks for the next packet (with timeout). ok=false on timeout or
// close.
func (c *UDPClient) Recv(timeout time.Duration) (pkt []byte, ok bool) {
	c.conn.SetReadDeadline(time.Now().Add(timeout))
	buf := make([]byte, 65536)
	n, _, err := c.conn.ReadFromUDP(buf)
	if err != nil {
		return nil, false
	}
	return buf[:n], true
}

// Close leaves all groups and closes the socket.
func (c *UDPClient) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	level := c.level
	c.mu.Unlock()
	for l := 0; l <= level; l++ {
		c.sendSub(l, false)
	}
	return c.conn.Close()
}

// RequestSessionInfo sends a hello to a control address and waits for the
// session descriptor datagram.
func RequestSessionInfo(control *net.UDPAddr, hello []byte, timeout time.Duration) ([]byte, error) {
	conn, err := net.DialUDP("udp", nil, control)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if _, err := conn.Write(hello); err != nil {
		return nil, err
	}
	conn.SetReadDeadline(time.Now().Add(timeout))
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		return nil, errors.New("transport: control request timed out")
	}
	return buf[:n], nil
}

// ServeControl answers hello datagrams on addr with the given payload
// until the returned stop function is called.
func ServeControl(addr string, isHello func([]byte) bool, reply []byte) (local *net.UDPAddr, stop func(), err error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, nil, err
	}
	done := make(chan struct{})
	go func() {
		buf := make([]byte, 256)
		for {
			n, from, err := conn.ReadFromUDP(buf)
			if err != nil {
				select {
				case <-done:
					return
				default:
					continue
				}
			}
			if isHello(buf[:n]) {
				conn.WriteToUDP(reply, from)
			}
		}
	}()
	return conn.LocalAddr().(*net.UDPAddr), func() { close(done); conn.Close() }, nil
}
