package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/proto"
)

// The UDP substrate emulates per-group multicast membership with explicit
// subscribe/unsubscribe datagrams (a stand-in for IGMP). One server socket
// multiplexes any number of fountain sessions: a subscription names a
// (session, layer) pair, and Send routes each packet to the subscribers of
// the session id carried in its 12-byte header. The wire format is
//
//	"SUB" <join:1> <layer:1>                     legacy: all sessions
//	"SUB" <join:1> <layer:1> <session:2 BE>      one session
//
// sent to the server's data port. SessionAny (0xFFFF) in the long form also
// means "all sessions".

// SessionAny is the wildcard session id: a subscription carrying it
// receives the named layer of every session the socket serves. Real session
// ids must not use this value.
const SessionAny uint16 = 0xFFFF

type subKey struct {
	session uint16
	layer   uint8
}

// UDPServer owns the data socket and the per-(session, layer) subscriber
// sets. It satisfies server.Sender: Send(layer, pkt) parses the session id
// out of the packet header and unicasts to that session's subscribers plus
// any wildcard subscribers — so one socket serves a whole multi-session
// service with no per-session sockets.
type UDPServer struct {
	conn     *net.UDPConn
	layers   int
	mu       sync.Mutex
	subs     map[subKey]map[string]*net.UDPAddr
	done     chan struct{}
	loopDone chan struct{}
	closing  sync.Once
	closeErr error
}

// NewUDPServer listens on addr (e.g. "127.0.0.1:0") and serves `layers`
// groups.
func NewUDPServer(addr string, layers int) (*UDPServer, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	s := &UDPServer{
		conn:     conn,
		layers:   layers,
		subs:     make(map[subKey]map[string]*net.UDPAddr),
		done:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	go s.membershipLoop()
	return s, nil
}

// Addr returns the data socket address.
func (s *UDPServer) Addr() *net.UDPAddr { return s.conn.LocalAddr().(*net.UDPAddr) }

func (s *UDPServer) membershipLoop() {
	defer close(s.loopDone)
	buf := make([]byte, 64)
	for {
		n, from, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				continue
			}
		}
		if n >= 5 && string(buf[:3]) == "SUB" {
			join := buf[3] == 1
			layer := int(buf[4])
			if layer < 0 || layer >= s.layers {
				continue
			}
			session := SessionAny
			if n >= 7 {
				session = uint16(buf[5])<<8 | uint16(buf[6])
			}
			key := subKey{session, uint8(layer)}
			s.mu.Lock()
			if join {
				set := s.subs[key]
				if set == nil {
					set = make(map[string]*net.UDPAddr)
					s.subs[key] = set
				}
				set[from.String()] = from
			} else if set := s.subs[key]; set != nil {
				delete(set, from.String())
				if len(set) == 0 {
					delete(s.subs, key)
				}
			}
			s.mu.Unlock()
		}
	}
}

// Send unicasts pkt to every subscriber of the packet's (session, layer):
// the session id is read from the proto header, and wildcard subscribers of
// the layer receive every session. Packets too short to carry a header go
// to wildcard subscribers only.
func (s *UDPServer) Send(layer int, pkt []byte) error {
	if layer < 0 || layer >= s.layers {
		return fmt.Errorf("transport: layer %d out of range", layer)
	}
	session := SessionAny
	if h, _, err := proto.ParseHeader(pkt); err == nil {
		session = h.Session
	}
	s.mu.Lock()
	wild := s.subs[subKey{SessionAny, uint8(layer)}]
	var specific map[string]*net.UDPAddr
	if session != SessionAny {
		specific = s.subs[subKey{session, uint8(layer)}]
	}
	addrs := make([]*net.UDPAddr, 0, len(wild)+len(specific))
	for _, ua := range wild {
		addrs = append(addrs, ua)
	}
	for a, ua := range specific {
		// Dedup against wildcard only when both sets are live (rare).
		if len(wild) > 0 {
			if _, dup := wild[a]; dup {
				continue
			}
		}
		addrs = append(addrs, ua)
	}
	s.mu.Unlock()
	for _, a := range addrs {
		if _, err := s.conn.WriteToUDP(pkt, a); err != nil {
			return err
		}
	}
	return nil
}

// Subscribers returns the number of distinct addresses subscribed to a
// layer across all sessions (including wildcard subscriptions).
func (s *UDPServer) Subscribers(layer int) int {
	if layer < 0 || layer >= s.layers {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := make(map[string]struct{})
	for key, set := range s.subs {
		if key.layer == uint8(layer) {
			for a := range set {
				seen[a] = struct{}{}
			}
		}
	}
	return len(seen)
}

// SessionSubscribers returns the subscriber count of one (session, layer)
// pair (wildcard subscribers are not counted; pass SessionAny for those).
func (s *UDPServer) SessionSubscribers(session uint16, layer int) int {
	if layer < 0 || layer >= s.layers {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs[subKey{session, uint8(layer)}])
}

// Close shuts the socket down and waits for the membership goroutine to
// exit, so no reads race a caller that frees resources after Close.
func (s *UDPServer) Close() error {
	s.closing.Do(func() {
		close(s.done)
		s.closeErr = s.conn.Close()
		<-s.loopDone
	})
	return s.closeErr
}

// UDPClient is the receiver side of the UDP substrate, subscribed to one
// session (or SessionAny for the legacy single-session behaviour).
type UDPClient struct {
	conn    *net.UDPConn
	server  *net.UDPAddr
	session uint16
	mu      sync.Mutex
	level   int
	closed  bool
}

// NewUDPClient dials the server's data port and subscribes to layers
// 0..level of every session the server carries (wildcard).
func NewUDPClient(server *net.UDPAddr, level int) (*UDPClient, error) {
	return NewUDPClientSession(server, SessionAny, level)
}

// NewUDPClientSession dials the server's data port and subscribes to layers
// 0..level of one session.
func NewUDPClientSession(server *net.UDPAddr, session uint16, level int) (*UDPClient, error) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, err
	}
	c := &UDPClient{conn: conn, server: server, session: session, level: -1}
	if err := c.SetLevel(level); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Session returns the session id the client subscribes to (SessionAny for
// wildcard clients).
func (c *UDPClient) Session() uint16 { return c.session }

func (c *UDPClient) sendSub(layer int, join bool) error {
	b := []byte{'S', 'U', 'B', 0, byte(layer), byte(c.session >> 8), byte(c.session)}
	if join {
		b[3] = 1
	}
	if c.session == SessionAny {
		b = b[:5] // legacy short form
	}
	_, err := c.conn.WriteToUDP(b, c.server)
	return err
}

// SetLevel adjusts the cumulative subscription (joins/leaves the delta).
func (c *UDPClient) SetLevel(level int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return errors.New("transport: client closed")
	}
	for l := c.level + 1; l <= level; l++ {
		if err := c.sendSub(l, true); err != nil {
			return err
		}
	}
	for l := c.level; l > level; l-- {
		if err := c.sendSub(l, false); err != nil {
			return err
		}
	}
	c.level = level
	return nil
}

// Level returns the current subscription level.
func (c *UDPClient) Level() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.level
}

// Recv blocks for the next packet (with timeout). ok=false on timeout or
// close.
func (c *UDPClient) Recv(timeout time.Duration) (pkt []byte, ok bool) {
	c.conn.SetReadDeadline(time.Now().Add(timeout))
	buf := make([]byte, 65536)
	n, _, err := c.conn.ReadFromUDP(buf)
	if err != nil {
		return nil, false
	}
	return buf[:n], true
}

// Close leaves all groups and closes the socket. The client runs no
// background goroutine, so — unlike UDPServer.Close — there is nothing to
// join; a concurrent Recv simply returns ok=false once the socket closes.
func (c *UDPClient) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	level := c.level
	for l := 0; l <= level; l++ {
		c.sendSub(l, false)
	}
	c.mu.Unlock()
	return c.conn.Close()
}

// RequestSessionInfo sends a hello to a control address and waits for the
// session descriptor datagram.
func RequestSessionInfo(control *net.UDPAddr, hello []byte, timeout time.Duration) ([]byte, error) {
	conn, err := net.DialUDP("udp", nil, control)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if _, err := conn.Write(hello); err != nil {
		return nil, err
	}
	conn.SetReadDeadline(time.Now().Add(timeout))
	buf := make([]byte, 65536)
	n, err := conn.Read(buf)
	if err != nil {
		return nil, errors.New("transport: control request timed out")
	}
	return buf[:n], nil
}

// ServeControlFunc answers control datagrams on addr: every received
// datagram is passed to handle, and a non-nil reply is sent back to the
// requester. stop closes the socket and waits for the read loop to exit.
func ServeControlFunc(addr string, handle func(req []byte) []byte) (local *net.UDPAddr, stop func(), err error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, nil, err
	}
	done := make(chan struct{})
	loopDone := make(chan struct{})
	go func() {
		defer close(loopDone)
		buf := make([]byte, 4096)
		for {
			n, from, err := conn.ReadFromUDP(buf)
			if err != nil {
				select {
				case <-done:
					return
				default:
					continue
				}
			}
			if reply := handle(buf[:n]); reply != nil {
				conn.WriteToUDP(reply, from)
			}
		}
	}()
	var once sync.Once
	stop = func() {
		once.Do(func() {
			close(done)
			conn.Close()
			<-loopDone
		})
	}
	return conn.LocalAddr().(*net.UDPAddr), stop, nil
}

// ServeControl answers hello datagrams on addr with a fixed payload until
// the returned stop function is called (the single-session legacy shape of
// ServeControlFunc).
func ServeControl(addr string, isHello func([]byte) bool, reply []byte) (local *net.UDPAddr, stop func(), err error) {
	return ServeControlFunc(addr, func(req []byte) []byte {
		if isHello(req) {
			return reply
		}
		return nil
	})
}
