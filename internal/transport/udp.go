package transport

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/metrics"
	"repro/internal/proto"
)

// The UDP substrate emulates per-group multicast membership with explicit
// subscribe/unsubscribe datagrams (a stand-in for IGMP). One server socket
// multiplexes any number of fountain sessions: a subscription names a
// (session, layer) pair, and Send routes each packet to the subscribers of
// the session id carried in its 12-byte header. The wire format is
//
//	"SUB" <join:1> <layer:1>                     legacy: all sessions
//	"SUB" <join:1> <layer:1> <session:2 BE>      one session
//
// sent to the server's data port. SessionAny (0xFFFF) in the long form also
// means "all sessions".

// SessionAny is the wildcard session id: a subscription carrying it
// receives the named layer of every session the socket serves. Real session
// ids must not use this value.
const SessionAny uint16 = 0xFFFF

type subKey struct {
	session uint16
	layer   uint8
}

// UDPLimits hardens a UDPServer against broken or hostile subscribers. The
// zero value of each field selects a default (eviction) or disables the
// limit (admission cap, rate cap).
type UDPLimits struct {
	// MaxSubscribers caps the number of distinct subscriber addresses in
	// the membership table; joins beyond the cap are refused (0 = no cap).
	MaxSubscribers int
	// EvictAfter is the consecutive-write-error streak at which a
	// subscriber is evicted from every group (0 = 8). A fountain receiver
	// loses nothing it can't recover, and the server stops burning send
	// syscalls on a dead address.
	EvictAfter int
	// EvictCooldown is the penalty box: an evicted address cannot rejoin
	// until it elapses (0 = 1s).
	EvictCooldown time.Duration
	// MaxPPS caps each subscriber's delivery rate in packets/second,
	// enforced with a per-address token bucket of one second's depth
	// (0 = uncapped). Excess packets are dropped for that subscriber only —
	// to a fountain client that is indistinguishable from path loss.
	MaxPPS int
	// Log, when non-nil, receives one line per newly evicted subscriber
	// and one line the first time the admission cap refuses a join.
	Log func(format string, args ...any)
}

// UDPHardening is a snapshot of the server's defensive counters.
type UDPHardening struct {
	Evictions    uint64 // subscribers evicted for persistent write errors
	RefusedJoins uint64 // joins refused by the admission cap or penalty box
	RateDropped  uint64 // packets dropped by per-subscriber rate caps
}

// subState is the server's per-subscriber-address defensive state.
type subState struct {
	errStreak    int
	evictedUntil time.Time
	tokens       float64
	lastRefill   time.Time
	logged       bool // eviction for this address already logged once
}

// UDPServer owns the data socket and the per-(session, layer) subscriber
// sets. It satisfies the unified transport.Sender: Send(layer, pkt) parses
// the session id out of the packet header and unicasts to that session's
// subscribers plus any wildcard subscribers — so one socket serves a whole
// multi-session service with no per-session sockets. SendBatch fans a
// per-layer batch out with one routing pass and per-subscriber write
// coalescing (sendmmsg on Linux, a portable write loop elsewhere).
//
// Every packet buffer is encoded exactly once and the same bytes are
// handed to the kernel for every subscriber; nothing on the fan-out path
// copies packet data.
type UDPServer struct {
	conn   *net.UDPConn
	layers int
	mu     sync.Mutex
	subs   map[subKey]map[netip.AddrPort]struct{}
	// addrRef counts how many (session, layer) sets each subscriber
	// address appears in — the admission cap's distinct-address count.
	addrRef map[netip.AddrPort]int
	state   map[netip.AddrPort]*subState
	limits  UDPLimits
	// hardening counters; guarded by mu.
	evictions, refusedJoins, rateDropped uint64
	loggedCap                            bool
	done                                 chan struct{}
	loopDone                             chan struct{}
	closing                              sync.Once
	closeErr                             error

	// sendMu serializes the fan-out scratch below. Writes on one UDP
	// socket serialize in the kernel anyway, so this costs no parallelism
	// and keeps steady-state sends allocation-free.
	sendMu   sync.Mutex
	addrBuf  []netip.AddrPort
	v4Socket bool            // data socket is AF_INET: the sendmmsg fast path applies
	rawConn  syscall.RawConn // cached once: SyscallConn allocates per call

	// writeOne is the single-datagram write, overridable by tests to
	// observe the exact buffers handed to the kernel (see the buffer
	// identity regression test). batchPortable forces the portable write
	// loop even where a kernel batch syscall is available.
	writeOne      func(pkt []byte, to netip.AddrPort) error
	batchPortable bool

	// Traffic accounting: datagram writes handed to the kernel (attempted,
	// per destination — one packet fanned out to N subscribers counts N)
	// and the per-subscriber batch-size distribution. Lock-free atomics and
	// a fixed-bucket histogram, so the zero-alloc send path stays that way;
	// RegisterMetrics exposes them on a scrape registry.
	txPackets atomic.Uint64
	txBytes   atomic.Uint64
	txBatch   *metrics.Histogram
}

// NewUDPServer listens on addr (e.g. "127.0.0.1:0") and serves `layers`
// groups.
func NewUDPServer(addr string, layers int) (*UDPServer, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	s := &UDPServer{
		conn:     conn,
		layers:   layers,
		subs:     make(map[subKey]map[netip.AddrPort]struct{}),
		addrRef:  make(map[netip.AddrPort]int),
		state:    make(map[netip.AddrPort]*subState),
		limits:   UDPLimits{EvictAfter: 8, EvictCooldown: time.Second},
		done:     make(chan struct{}),
		loopDone: make(chan struct{}),
		v4Socket: conn.LocalAddr().(*net.UDPAddr).IP.To4() != nil,
		txBatch:  metrics.NewHistogram(batchSizeBounds...),
	}
	s.writeOne = func(pkt []byte, to netip.AddrPort) error {
		_, err := s.conn.WriteToUDPAddrPort(pkt, to)
		return err
	}
	// A nil rawConn (a SyscallConn failure) just disables the kernel
	// batch fast path; the portable loop covers everything.
	s.rawConn, _ = conn.SyscallConn()
	go s.membershipLoop()
	return s, nil
}

// Addr returns the data socket address.
func (s *UDPServer) Addr() *net.UDPAddr { return s.conn.LocalAddr().(*net.UDPAddr) }

func (s *UDPServer) membershipLoop() {
	defer close(s.loopDone)
	buf := make([]byte, 64)
	for {
		n, from, err := s.conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				continue
			}
		}
		if n >= 5 && string(buf[:3]) == "SUB" {
			join := buf[3] == 1
			layer := int(buf[4])
			if layer < 0 || layer >= s.layers {
				continue
			}
			session := SessionAny
			if n >= 7 {
				session = uint16(buf[5])<<8 | uint16(buf[6])
			}
			// Unmap 4-in-6 forms so one client always keys identically.
			addr := netip.AddrPortFrom(from.Addr().Unmap(), from.Port())
			key := subKey{session, uint8(layer)}
			s.mu.Lock()
			if join {
				if !s.admitJoinLocked(addr) {
					s.mu.Unlock()
					continue
				}
				set := s.subs[key]
				if set == nil {
					set = make(map[netip.AddrPort]struct{})
					s.subs[key] = set
				}
				if _, dup := set[addr]; !dup {
					set[addr] = struct{}{}
					s.addrRef[addr]++
				}
			} else if set := s.subs[key]; set != nil {
				if _, had := set[addr]; had {
					delete(set, addr)
					if len(set) == 0 {
						delete(s.subs, key)
					}
					if s.addrRef[addr]--; s.addrRef[addr] <= 0 {
						delete(s.addrRef, addr)
					}
				}
			}
			s.mu.Unlock()
		}
	}
}

// SetLimits replaces the server's hardening limits. Zero-valued fields
// fall back to the construction defaults (EvictAfter 8, EvictCooldown 1s);
// MaxSubscribers and MaxPPS stay disabled when zero.
func (s *UDPServer) SetLimits(l UDPLimits) {
	if l.EvictAfter <= 0 {
		l.EvictAfter = 8
	}
	if l.EvictCooldown <= 0 {
		l.EvictCooldown = time.Second
	}
	s.mu.Lock()
	s.limits = l
	s.mu.Unlock()
}

// Hardening returns a snapshot of the defensive counters.
func (s *UDPServer) Hardening() UDPHardening {
	s.mu.Lock()
	defer s.mu.Unlock()
	return UDPHardening{
		Evictions:    s.evictions,
		RefusedJoins: s.refusedJoins,
		RateDropped:  s.rateDropped,
	}
}

// admitJoinLocked decides whether a join from addr is allowed: refused
// while the address sits in the eviction penalty box, and refused for new
// addresses beyond the MaxSubscribers cap. Callers hold s.mu.
func (s *UDPServer) admitJoinLocked(addr netip.AddrPort) bool {
	if st := s.state[addr]; st != nil && time.Now().Before(st.evictedUntil) {
		s.refusedJoins++
		return false
	}
	if s.limits.MaxSubscribers > 0 && s.addrRef[addr] == 0 &&
		len(s.addrRef) >= s.limits.MaxSubscribers {
		s.refusedJoins++
		if s.limits.Log != nil && !s.loggedCap {
			s.loggedCap = true
			s.limits.Log("transport: subscriber cap %d reached, refusing new joins",
				s.limits.MaxSubscribers)
		}
		return false
	}
	return true
}

// admitWrites consults addr's token bucket for a want-packet delivery and
// returns how many packets may actually be written (want when uncapped).
// The bucket holds one second's worth of the cap, so a subscriber may
// burst up to MaxPPS packets and then sustains MaxPPS.
func (s *UDPServer) admitWrites(addr netip.AddrPort, want int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st := s.state[addr]; st != nil && time.Now().Before(st.evictedUntil) {
		return 0 // raced an eviction: the penalty box wins
	}
	cap := s.limits.MaxPPS
	if cap <= 0 {
		return want
	}
	st := s.state[addr]
	if st == nil {
		st = &subState{}
		s.state[addr] = st
	}
	now := time.Now()
	if st.lastRefill.IsZero() {
		st.tokens = float64(cap)
	} else {
		st.tokens += now.Sub(st.lastRefill).Seconds() * float64(cap)
		if st.tokens > float64(cap) {
			st.tokens = float64(cap)
		}
	}
	st.lastRefill = now
	n := want
	if st.tokens < float64(n) {
		n = int(st.tokens)
	}
	st.tokens -= float64(n)
	if n < want {
		s.rateDropped += uint64(want - n)
	}
	return n
}

// noteResult records one delivery attempt's outcome for addr: success
// clears the error streak, failure extends it, and a streak of EvictAfter
// evicts the subscriber from every group — with a cooldown penalty box and
// a single log line — so a dead or firewalled address stops consuming send
// syscalls on every round.
func (s *UDPServer) noteResult(addr netip.AddrPort, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.state[addr]
	if err == nil {
		if st != nil {
			st.errStreak = 0
		}
		return
	}
	if st == nil {
		st = &subState{}
		s.state[addr] = st
	}
	st.errStreak++
	if st.errStreak < s.limits.EvictAfter {
		return
	}
	for key, set := range s.subs {
		if _, ok := set[addr]; ok {
			delete(set, addr)
			if len(set) == 0 {
				delete(s.subs, key)
			}
		}
	}
	delete(s.addrRef, addr)
	st.errStreak = 0
	st.evictedUntil = time.Now().Add(s.limits.EvictCooldown)
	s.evictions++
	if s.limits.Log != nil && !st.logged {
		st.logged = true
		s.limits.Log("transport: evicted subscriber %s after %d consecutive write errors (cooldown %v)",
			addr, s.limits.EvictAfter, s.limits.EvictCooldown)
	}
}

// gatherAddrs collects the destination set of one (session, layer) into
// dst: that session's subscribers plus the layer's wildcard subscribers,
// deduplicated. Callers hold s.sendMu (dst is the server's scratch).
func (s *UDPServer) gatherAddrs(dst []netip.AddrPort, session uint16, layer int) []netip.AddrPort {
	s.mu.Lock()
	wild := s.subs[subKey{SessionAny, uint8(layer)}]
	var specific map[netip.AddrPort]struct{}
	if session != SessionAny {
		specific = s.subs[subKey{session, uint8(layer)}]
	}
	for a := range wild {
		dst = append(dst, a)
	}
	for a := range specific {
		// Dedup against wildcard only when both sets are live (rare).
		if len(wild) > 0 {
			if _, dup := wild[a]; dup {
				continue
			}
		}
		dst = append(dst, a)
	}
	s.mu.Unlock()
	return dst
}

// packetSession reads the routing session id out of a packet: packets too
// short to carry a header route to wildcard subscribers only.
func packetSession(pkt []byte) uint16 {
	if h, _, err := proto.ParseHeader(pkt); err == nil {
		return h.Session
	}
	return SessionAny
}

// Send unicasts pkt to every subscriber of the packet's (session, layer):
// the session id is read from the proto header, and wildcard subscribers of
// the layer receive every session. The packet is encoded once; the same
// buffer is written to each subscriber. As in SendBatch, errors are
// isolated per subscriber — every destination is attempted, the first
// error is returned afterwards.
func (s *UDPServer) Send(layer int, pkt []byte) error {
	if layer < 0 || layer >= s.layers {
		return fmt.Errorf("transport: layer %d out of range", layer)
	}
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	addrs := s.gatherAddrs(s.addrBuf[:0], packetSession(pkt), layer)
	s.addrBuf = addrs[:0]
	var first error
	for _, a := range addrs {
		if s.admitWrites(a, 1) == 0 {
			continue
		}
		err := s.writeOne(pkt, a)
		s.noteResult(a, err)
		s.txPackets.Add(1)
		s.txBytes.Add(uint64(len(pkt)))
		s.txBatch.Observe(1)
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}

// SendBatch unicasts a batch of packets on one layer: the batch is routed
// in runs of identical session ids (one subscriber-set gather per run —
// a carousel round's batch is a single run), and each subscriber's writes
// are coalesced (sendmmsg where available, a portable loop elsewhere).
// Buffers are handed to the kernel as-is: one encode, many writes, no
// copies; they may be reused as soon as SendBatch returns.
//
// Errors are isolated per subscriber: a broken destination (firewalled,
// buffer-exhausted) forfeits at most its own remainder of the batch,
// every other subscriber still receives everything, and the first error
// is returned at the end — so one bad receiver cannot starve the rest of
// the fan-out.
func (s *UDPServer) SendBatch(layer int, pkts [][]byte) error {
	if layer < 0 || layer >= s.layers {
		return fmt.Errorf("transport: layer %d out of range", layer)
	}
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	var first error
	for lo := 0; lo < len(pkts); {
		session := packetSession(pkts[lo])
		hi := lo + 1
		for hi < len(pkts) && packetSession(pkts[hi]) == session {
			hi++
		}
		addrs := s.gatherAddrs(s.addrBuf[:0], session, layer)
		s.addrBuf = addrs[:0]
		for _, a := range addrs {
			n := s.admitWrites(a, hi-lo)
			if n == 0 {
				continue
			}
			err := s.writeBatchTo(pkts[lo:lo+n], a)
			s.noteResult(a, err)
			var nb uint64
			for _, p := range pkts[lo : lo+n] {
				nb += uint64(len(p))
			}
			s.txPackets.Add(uint64(n))
			s.txBytes.Add(nb)
			s.txBatch.Observe(int64(n))
			if err != nil && first == nil {
				first = err
			}
		}
		lo = hi
	}
	return first
}

// writePortable is the substrate-independent per-subscriber batch write.
// Per-packet errors are isolated (every packet is attempted; the first
// error is returned), matching the pre-batching per-packet send path.
func (s *UDPServer) writePortable(pkts [][]byte, to netip.AddrPort) error {
	var first error
	for _, pkt := range pkts {
		if err := s.writeOne(pkt, to); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Subscribers returns the number of distinct addresses subscribed to a
// layer across all sessions (including wildcard subscriptions).
func (s *UDPServer) Subscribers(layer int) int {
	if layer < 0 || layer >= s.layers {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := make(map[netip.AddrPort]struct{})
	for key, set := range s.subs {
		if key.layer == uint8(layer) {
			for a := range set {
				seen[a] = struct{}{}
			}
		}
	}
	return len(seen)
}

// SubscriberTotal returns the number of distinct subscriber addresses
// across all sessions and layers.
func (s *UDPServer) SubscriberTotal() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.addrRef)
}

// Traffic returns the datagram writes handed to the kernel so far: packets
// (per destination — one packet fanned out to N subscribers counts N) and
// their total bytes.
func (s *UDPServer) Traffic() (packets, bytes uint64) {
	return s.txPackets.Load(), s.txBytes.Load()
}

// SessionSubscribers returns the subscriber count of one (session, layer)
// pair (wildcard subscribers are not counted; pass SessionAny for those).
func (s *UDPServer) SessionSubscribers(session uint16, layer int) int {
	if layer < 0 || layer >= s.layers {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs[subKey{session, uint8(layer)}])
}

// Close shuts the socket down and waits for the membership goroutine to
// exit, so no reads race a caller that frees resources after Close.
func (s *UDPServer) Close() error {
	s.closing.Do(func() {
		close(s.done)
		s.closeErr = s.conn.Close()
		<-s.loopDone
	})
	return s.closeErr
}

// UDPClient is the receiver side of the UDP substrate, subscribed to one
// session (or SessionAny for the legacy single-session behaviour).
//
// Receive calls (Recv, RecvOne, RecvBatch) are single-reader: run one
// receive loop per client. SetLevel/Resubscribe/Close may be called
// concurrently with it.
type UDPClient struct {
	conn    *net.UDPConn
	server  *net.UDPAddr
	session uint16
	raw     syscall.RawConn // cached once: SyscallConn allocates per call
	mu      sync.Mutex
	level   int
	closed  bool

	recvSize int        // per-datagram receive buffer capacity
	recvBuf  *Buf       // Recv/RecvOne's pooled reusable buffer
	rmmsg    *recvState // reusable kernel batch-read state (single-reader)

	// Traffic accounting mirroring the server's send side: datagrams and
	// bytes taken off the socket, and the kernel-visit batch-size
	// distribution. Lock-free; see RegisterMetrics.
	rxPackets atomic.Uint64
	rxBytes   atomic.Uint64
	rxBatch   *metrics.Histogram
}

// NewUDPClient dials the server's data port and subscribes to layers
// 0..level of every session the server carries (wildcard).
func NewUDPClient(server *net.UDPAddr, level int) (*UDPClient, error) {
	return NewUDPClientSession(server, SessionAny, level)
}

// NewUDPClientSession dials the server's data port and subscribes to layers
// 0..level of one session.
func NewUDPClientSession(server *net.UDPAddr, session uint16, level int) (*UDPClient, error) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, err
	}
	c := &UDPClient{conn: conn, server: server, session: session, level: -1,
		recvSize: defaultRecvSize, rxBatch: metrics.NewHistogram(batchSizeBounds...)}
	// A nil raw conn just disables the kernel batch read; the portable
	// single-read path covers everything.
	c.raw, _ = conn.SyscallConn()
	if err := c.SetLevel(level); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Session returns the session id the client subscribes to (SessionAny for
// wildcard clients).
func (c *UDPClient) Session() uint16 { return c.session }

func (c *UDPClient) sendSub(layer int, join bool) error {
	b := []byte{'S', 'U', 'B', 0, byte(layer), byte(c.session >> 8), byte(c.session)}
	if join {
		b[3] = 1
	}
	if c.session == SessionAny {
		b = b[:5] // legacy short form
	}
	_, err := c.conn.WriteToUDP(b, c.server)
	return err
}

// SetLevel adjusts the cumulative subscription (joins/leaves the delta).
func (c *UDPClient) SetLevel(level int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return errors.New("transport: client closed")
	}
	for l := c.level + 1; l <= level; l++ {
		if err := c.sendSub(l, true); err != nil {
			return err
		}
	}
	for l := c.level; l > level; l-- {
		if err := c.sendSub(l, false); err != nil {
			return err
		}
	}
	c.level = level
	return nil
}

// Level returns the current subscription level.
func (c *UDPClient) Level() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.level
}

// Resubscribe re-sends the join datagram for every currently subscribed
// layer. Joins are idempotent on the server, so this is the client's
// recovery action whenever the server may have lost its membership table —
// a crash/restart, or an eviction whose cooldown has passed.
func (c *UDPClient) Resubscribe() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return errors.New("transport: client closed")
	}
	for l := 0; l <= c.level; l++ {
		if err := c.sendSub(l, true); err != nil {
			return err
		}
	}
	return nil
}

// Recv blocks for the next packet (with timeout). ok=false on timeout or
// close; use RecvOne (or Closed) when the two must be distinguished. The
// returned slice is a view into the client's pooled buffer, valid only
// until the next Recv/RecvOne call on this client — callers that keep
// packet bytes must copy them (every decoder in this repository copies on
// Add).
func (c *UDPClient) Recv(timeout time.Duration) (pkt []byte, ok bool) {
	pkt, err := c.RecvOne(timeout)
	return pkt, err == nil
}

// Close leaves all groups and closes the socket. The client runs no
// background goroutine, so — unlike UDPServer.Close — there is nothing to
// join; a concurrent Recv simply returns ok=false once the socket closes.
func (c *UDPClient) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	level := c.level
	for l := 0; l <= level; l++ {
		c.sendSub(l, false)
	}
	c.mu.Unlock()
	return c.conn.Close()
}

// controlReplySize bounds a control reply: a full catalog can run to
// ~65000 bytes (proto.MaxCatalogEntries), so control reads keep the 64 KiB
// buffer — but pooled and shared across requests instead of allocated per
// call.
const controlReplySize = 65536

// RequestSessionInfo sends a hello to a control address and waits for the
// session descriptor datagram. The reply is returned in a fresh
// exact-sized slice the caller owns; the 64 KiB read buffer itself is
// pooled and reused across requests.
//
// Errors are classified: ErrTimeout when the reply deadline elapsed (the
// server may just be slow — retrying is sensible), ErrClosed when the
// socket died (retrying the same conn is pointless), anything else passed
// through. Both sentinels match with errors.Is.
func RequestSessionInfo(control *net.UDPAddr, hello []byte, timeout time.Duration) ([]byte, error) {
	conn, err := net.DialUDP("udp", nil, control)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	return requestOnConn(conn, hello, timeout)
}

// requestOnConn is one control round-trip on an existing connected socket.
// Every socket-layer failure is surfaced and classified — the old form
// discarded the SetReadDeadline error and folded every read failure into a
// constant "timed out" string, so a closed socket (or an ICMP port
// unreachable) sent callers into a futile timeout-retry loop instead of
// failing fast with ErrClosed.
func requestOnConn(conn *net.UDPConn, hello []byte, timeout time.Duration) ([]byte, error) {
	if _, err := conn.Write(hello); err != nil {
		return nil, fmt.Errorf("transport: control request: %w", classifyRecvErr(err))
	}
	if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return nil, fmt.Errorf("transport: control deadline: %w", classifyRecvErr(err))
	}
	b := recvPool.Get(controlReplySize)
	defer recvPool.Put(b)
	buf := b.B[:cap(b.B)]
	n, err := conn.Read(buf)
	if err != nil {
		return nil, fmt.Errorf("transport: control request: %w", classifyRecvErr(err))
	}
	reply := make([]byte, n)
	copy(reply, buf[:n])
	return reply, nil
}

// ServeControlFunc answers control datagrams on addr: every received
// datagram is passed to handle, and a non-nil reply is sent back to the
// requester. stop closes the socket and waits for the read loop to exit.
func ServeControlFunc(addr string, handle func(req []byte) []byte) (local *net.UDPAddr, stop func(), err error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, nil, err
	}
	done := make(chan struct{})
	loopDone := make(chan struct{})
	go func() {
		defer close(loopDone)
		buf := make([]byte, 4096)
		for {
			n, from, err := conn.ReadFromUDP(buf)
			if err != nil {
				select {
				case <-done:
					return
				default:
					continue
				}
			}
			if reply := handle(buf[:n]); reply != nil {
				conn.WriteToUDP(reply, from)
			}
		}
	}()
	var once sync.Once
	stop = func() {
		once.Do(func() {
			close(done)
			conn.Close()
			<-loopDone
		})
	}
	return conn.LocalAddr().(*net.UDPAddr), stop, nil
}

// ServeControl answers hello datagrams on addr with a fixed payload until
// the returned stop function is called (the single-session legacy shape of
// ServeControlFunc).
func ServeControl(addr string, isHello func([]byte) bool, reply []byte) (local *net.UDPAddr, stop func(), err error) {
	return ServeControlFunc(addr, func(req []byte) []byte {
		if isHello(req) {
			return reply
		}
		return nil
	})
}
