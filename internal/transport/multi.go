package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// MultiClient joins the same session on several fountain servers at once —
// the receiver half of the §8 mirrored-server application. Each source is
// an independent UDPClient (own socket, own subscription state); one
// goroutine per source funnels arriving datagrams, tagged with their source
// index, into a single queue the caller drains with Recv. Because fountain
// packets from mirrors of one encoding are interchangeable, no coordination
// between the sources is needed: the client engine simply decodes the
// union.
type MultiClient struct {
	clients []*UDPClient
	ch      chan sourcedPacket
	done    chan struct{}
	wg      sync.WaitGroup
	closing sync.Once

	mu    sync.Mutex
	level int
}

type sourcedPacket struct {
	src int
	pkt []byte
}

// NewMultiClient dials every server's data port and subscribes each to
// layers 0..level of the given session. Source indices in Recv correspond
// to positions in servers. On any error the already-opened sockets are
// closed.
func NewMultiClient(servers []*net.UDPAddr, session uint16, level int) (*MultiClient, error) {
	if len(servers) == 0 {
		return nil, errors.New("transport: multi-client needs at least one server")
	}
	m := &MultiClient{
		ch:    make(chan sourcedPacket, 1024),
		done:  make(chan struct{}),
		level: level,
	}
	for i, addr := range servers {
		c, err := NewUDPClientSession(addr, session, level)
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("transport: source %d (%s): %w", i, addr, err)
		}
		m.clients = append(m.clients, c)
	}
	for i, c := range m.clients {
		m.wg.Add(1)
		go m.pull(i, c)
	}
	return m, nil
}

// pull is one source's read loop: socket → tagged queue.
func (m *MultiClient) pull(src int, c *UDPClient) {
	defer m.wg.Done()
	for {
		select {
		case <-m.done:
			return
		default:
		}
		// A short read deadline doubles as the shutdown poll interval.
		pkt, ok := c.Recv(250 * time.Millisecond)
		if !ok {
			continue // timeout or closing socket; the done check decides
		}
		select {
		case m.ch <- sourcedPacket{src: src, pkt: pkt}:
		case <-m.done:
			return
		}
	}
}

// Sources returns the number of joined servers.
func (m *MultiClient) Sources() int { return len(m.clients) }

// Recv blocks for the next packet from any source (with timeout),
// returning the index of the server that sent it. ok=false on timeout or
// close.
func (m *MultiClient) Recv(timeout time.Duration) (src int, pkt []byte, ok bool) {
	select {
	case <-m.done:
		return 0, nil, false // closed: don't drain stale buffered packets
	default:
	}
	// Fast path: a buffered packet needs no timer — on a busy stream this
	// keeps the per-packet cost to one channel receive.
	select {
	case sp := <-m.ch:
		return sp.src, sp.pkt, true
	default:
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case sp := <-m.ch:
		return sp.src, sp.pkt, true
	case <-m.done:
		return 0, nil, false
	case <-t.C:
		return 0, nil, false
	}
}

// SetLevel adjusts the cumulative subscription level on every source — the
// worst-source congestion rule yields one effective level, and all mirrors
// are (un)subscribed together. The first error is returned, but every
// source is attempted.
func (m *MultiClient) SetLevel(level int) error {
	m.mu.Lock()
	m.level = level
	m.mu.Unlock()
	var first error
	for _, c := range m.clients {
		if err := c.SetLevel(level); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Level returns the last level requested via SetLevel (or the initial
// one).
func (m *MultiClient) Level() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.level
}

// Rejoin re-sends the subscription joins of one source — the recovery
// action when that mirror went silent because it crashed and came back
// with an empty membership table. Joins are idempotent, so rejoining a
// healthy mirror is harmless.
func (m *MultiClient) Rejoin(src int) error {
	if src < 0 || src >= len(m.clients) {
		return fmt.Errorf("transport: no source %d", src)
	}
	return m.clients[src].Resubscribe()
}

// Close unsubscribes and closes every source socket and waits for the
// funnel goroutines to exit.
func (m *MultiClient) Close() error {
	var first error
	m.closing.Do(func() {
		close(m.done)
		for _, c := range m.clients {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
		m.wg.Wait()
	})
	return first
}
