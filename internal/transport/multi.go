package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// MultiClient joins the same session on several fountain servers at once —
// the receiver half of the §8 mirrored-server application. Each source is
// an independent UDPClient (own socket, own subscription state); one
// goroutine per source drains its socket in batches (RecvBatch — recvmmsg
// on linux/amd64) and hands whole batches, tagged with their source index,
// to the consumer through a fixed set of recycled batch carriers. Because
// fountain packets from mirrors of one encoding are interchangeable, no
// coordination between the sources is needed: the client engine simply
// decodes the union.
//
// The handoff is allocation-free in steady state: a bounded ring of
// sourcedBatch carriers cycles between a free channel and the delivery
// channel, each carrying its own pooled receive buffers. Compared to the
// old per-packet channel sends, a 32-datagram burst costs one channel
// round-trip instead of 32.
type MultiClient struct {
	clients []*UDPClient
	ch      chan *sourcedBatch // filled batches, pull → consumer
	free    chan *sourcedBatch // empty carriers, consumer → pull
	done    chan struct{}
	wg      sync.WaitGroup
	closing sync.Once

	mu    sync.Mutex
	level int

	// Consumer-side cursor over the batch being drained. Recv* calls are
	// single-consumer (like UDPClient receives): run one receive loop per
	// MultiClient.
	cur     *sourcedBatch
	curNext int
}

// sourcedBatch is one batch handoff carrier: a receive batch plus the
// index of the source that filled it.
type sourcedBatch struct {
	src int
	rb  RecvBatch
}

// NewMultiClient dials every server's data port and subscribes each to
// layers 0..level of the given session. Source indices in Recv correspond
// to positions in servers. On any error the already-opened sockets are
// closed.
func NewMultiClient(servers []*net.UDPAddr, session uint16, level int) (*MultiClient, error) {
	if len(servers) == 0 {
		return nil, errors.New("transport: multi-client needs at least one server")
	}
	// Carrier count: one in flight per source, one being drained by the
	// consumer, and slack so a source never stalls waiting for a carrier
	// while the consumer holds one.
	carriers := 2*len(servers) + 2
	m := &MultiClient{
		ch:    make(chan *sourcedBatch, carriers),
		free:  make(chan *sourcedBatch, carriers),
		done:  make(chan struct{}),
		level: level,
	}
	for i := 0; i < carriers; i++ {
		m.free <- &sourcedBatch{}
	}
	for i, addr := range servers {
		c, err := NewUDPClientSession(addr, session, level)
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("transport: source %d (%s): %w", i, addr, err)
		}
		m.clients = append(m.clients, c)
	}
	for i, c := range m.clients {
		m.wg.Add(1)
		go m.pull(i, c)
	}
	return m, nil
}

// SetRecvSize sets the per-datagram receive buffer capacity on every
// source (see UDPClient.SetRecvSize). Call before the first packets flow.
func (m *MultiClient) SetRecvSize(n int) {
	for _, c := range m.clients {
		c.SetRecvSize(n)
	}
}

// pull is one source's read loop: socket → batch → tagged handoff.
func (m *MultiClient) pull(src int, c *UDPClient) {
	defer m.wg.Done()
	for {
		var sb *sourcedBatch
		select {
		case sb = <-m.free:
		case <-m.done:
			return
		}
		// A short read deadline doubles as the shutdown poll interval.
		_, err := c.RecvBatch(&sb.rb, 250*time.Millisecond)
		if err != nil {
			m.free <- sb
			if err == ErrClosed {
				return // socket is gone for good: stop polling it
			}
			select {
			case <-m.done:
				return
			default:
				continue // timeout (or transient error): poll again
			}
		}
		sb.src = src
		select {
		case m.ch <- sb:
		case <-m.done:
			m.free <- sb
			return
		}
	}
}

// Sources returns the number of joined servers.
func (m *MultiClient) Sources() int { return len(m.clients) }

// recycle hands the consumer's current batch carrier back to the pull
// loops and clears the cursor.
func (m *MultiClient) recycle() {
	if m.cur != nil {
		m.free <- m.cur
		m.cur = nil
		m.curNext = 0
	}
}

// nextBatch recycles the current carrier and blocks up to timeout for the
// next filled one. Errors: ErrTimeout, ErrClosed.
func (m *MultiClient) nextBatch(timeout time.Duration) (*sourcedBatch, error) {
	m.recycle()
	select {
	case <-m.done:
		return nil, ErrClosed // closed: don't drain stale buffered batches
	default:
	}
	// Fast path: a buffered batch needs no timer — on a busy stream this
	// keeps the per-batch cost to one channel receive.
	select {
	case sb := <-m.ch:
		m.cur = sb
		return sb, nil
	default:
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case sb := <-m.ch:
		m.cur = sb
		return sb, nil
	case <-m.done:
		return nil, ErrClosed
	case <-t.C:
		return nil, ErrTimeout
	}
}

// RecvBatchFrom blocks up to timeout for the next batch of packets from
// any source and returns the packets with the index of the server that
// sent them. If a batch partially drained by RecvFrom is pending, its
// remainder is returned first, so the two call styles mix without losing
// packets. The returned views are valid until the next Recv/RecvFrom/
// RecvBatchFrom call on this client (which recycles the carrier). Errors:
// ErrTimeout, ErrClosed.
func (m *MultiClient) RecvBatchFrom(timeout time.Duration) (src int, pkts [][]byte, err error) {
	if m.cur != nil && m.curNext < len(m.cur.rb.pkts) {
		pkts = m.cur.rb.pkts[m.curNext:]
		m.curNext = len(m.cur.rb.pkts)
		return m.cur.src, pkts, nil
	}
	sb, err := m.nextBatch(timeout)
	if err != nil {
		return 0, nil, err
	}
	m.curNext = len(sb.rb.pkts) // the whole batch is handed out at once
	return sb.src, sb.rb.pkts, nil
}

// RecvFrom blocks up to timeout for the next packet from any source,
// returning the index of the server that sent it. The packet view is
// valid until its batch is exhausted and a further Recv* call recycles
// it — copy to keep (decoders in this repository copy on Add). Errors:
// ErrTimeout, ErrClosed.
func (m *MultiClient) RecvFrom(timeout time.Duration) (src int, pkt []byte, err error) {
	if m.cur != nil && m.curNext < len(m.cur.rb.pkts) {
		pkt = m.cur.rb.pkts[m.curNext]
		m.curNext++
		return m.cur.src, pkt, nil
	}
	sb, err := m.nextBatch(timeout)
	if err != nil {
		return 0, nil, err
	}
	m.curNext = 1
	return sb.src, sb.rb.pkts[0], nil
}

// Recv blocks for the next packet from any source (with timeout),
// returning the index of the server that sent it. ok=false on timeout or
// close; use RecvFrom when the two must be distinguished.
func (m *MultiClient) Recv(timeout time.Duration) (src int, pkt []byte, ok bool) {
	src, pkt, err := m.RecvFrom(timeout)
	return src, pkt, err == nil
}

// SetLevel adjusts the cumulative subscription level on every source — the
// worst-source congestion rule yields one effective level, and all mirrors
// are (un)subscribed together. The first error is returned, but every
// source is attempted.
func (m *MultiClient) SetLevel(level int) error {
	m.mu.Lock()
	m.level = level
	m.mu.Unlock()
	var first error
	for _, c := range m.clients {
		if err := c.SetLevel(level); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Level returns the last level requested via SetLevel (or the initial
// one).
func (m *MultiClient) Level() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.level
}

// Rejoin re-sends the subscription joins of one source — the recovery
// action when that mirror went silent because it crashed and came back
// with an empty membership table. Joins are idempotent, so rejoining a
// healthy mirror is harmless.
func (m *MultiClient) Rejoin(src int) error {
	if src < 0 || src >= len(m.clients) {
		return fmt.Errorf("transport: no source %d", src)
	}
	return m.clients[src].Resubscribe()
}

// Closed reports whether Close has been called.
func (m *MultiClient) Closed() bool {
	select {
	case <-m.done:
		return true
	default:
		return false
	}
}

// Close unsubscribes and closes every source socket, waits for the funnel
// goroutines to exit, and releases the pooled receive buffers held by the
// batch carriers.
func (m *MultiClient) Close() error {
	var first error
	m.closing.Do(func() {
		close(m.done)
		for _, c := range m.clients {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
		m.wg.Wait()
		// All producers are gone: drain both channels and the consumer's
		// cursor, returning buffer memory to the shared pool.
		if m.cur != nil {
			m.cur.rb.Free()
			m.cur = nil
		}
		for {
			select {
			case sb := <-m.ch:
				sb.rb.Free()
			case sb := <-m.free:
				sb.rb.Free()
			default:
				return
			}
		}
	})
	return first
}
