package transport

import "sync"

// PacketSender is the minimal transmit side of a transport: one packet per
// call. Custom test sinks usually implement just this.
type PacketSender interface {
	Send(layer int, pkt []byte) error
}

// Sender is the unified transmit side of a transport. Send emits one
// packet; SendBatch emits a whole per-layer batch in one call, letting the
// transport amortize routing and syscalls across the batch (the UDP
// substrate coalesces each subscriber's writes, the in-process Bus
// snapshots its subscriber set once). Bus and UDPServer both satisfy it.
//
// Buffer ownership: a caller that builds packets in pooled buffers may
// reuse them as soon as Send/SendBatch returns — transports (and Bus
// handlers) must copy anything they keep. All decoders in this repository
// copy payloads on Add, so the contract holds end to end.
type Sender interface {
	PacketSender
	SendBatch(layer int, pkts [][]byte) error
}

// sendAdapter upgrades a PacketSender with a SendBatch fallback loop so
// batch-first callers (the service's pacing scheduler) can drive any sink.
// Errors are isolated per packet: every packet of the batch is attempted,
// and the first error (if any) is returned afterwards — one congested
// packet must not discard the rest of a layer's round.
type sendAdapter struct {
	PacketSender
}

func (a sendAdapter) SendBatch(layer int, pkts [][]byte) error {
	var first error
	for _, pkt := range pkts {
		if err := a.Send(layer, pkt); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// AsSender returns s itself when it already supports batching, or wraps it
// with a portable per-packet fallback loop. Either way the caller gets the
// unified Sender interface, so one send path serves real transports and
// plain test sinks alike.
func AsSender(s PacketSender) Sender {
	if bs, ok := s.(Sender); ok {
		return bs
	}
	return sendAdapter{s}
}

// Buf is one pooled packet buffer. Build the packet in B (starting from
// B[:0]), keep the filled slice in B, and hand the Buf back to its pool
// once the transport is done with it.
type Buf struct {
	B []byte
}

// BufPool is a sync.Pool-backed pool of packet buffers for the zero-alloc
// send path: a paced sender Gets a buffer per packet, appends header and
// payload into it, and Puts it back after the batch is sent. Buffers grow
// to the largest requested capacity and are reused indefinitely, so
// steady-state emission allocates nothing.
type BufPool struct {
	pool sync.Pool
}

// NewBufPool creates an empty pool.
func NewBufPool() *BufPool {
	p := &BufPool{}
	p.pool.New = func() any { return &Buf{} }
	return p
}

// Get returns a buffer whose B has length 0 and capacity at least size.
func (p *BufPool) Get(size int) *Buf {
	b := p.pool.Get().(*Buf)
	if cap(b.B) < size {
		b.B = make([]byte, 0, size)
	} else {
		b.B = b.B[:0]
	}
	return b
}

// Put releases a buffer back to the pool. The caller must not touch b (or
// any slice of b.B) afterwards.
func (p *BufPool) Put(b *Buf) {
	p.pool.Put(b)
}

// freeListCap bounds a FreeList's private cache; beyond it, buffers
// overflow to the shared pool so an idle emitter cannot strand memory.
const freeListCap = 256

// FreeList is a single-goroutine buffer cache in front of a shared
// BufPool. A paced emitter turns over the same few dozen buffers every
// round; recycling them through a private stack costs two slice ops
// instead of sync.Pool's per-P machinery (which profiles at ~40% of the
// send path at high packet rates). Get falls through to the pool when the
// stack is empty, Put overflows to it when the stack is full — so memory
// still belongs to (and is reclaimed through) the shared pool.
//
// A FreeList is not safe for concurrent use; give each emitter its own.
type FreeList struct {
	pool *BufPool
	free []*Buf
}

// NewFreeList creates an empty free list backed by the shared pool.
func NewFreeList(pool *BufPool) *FreeList {
	return &FreeList{pool: pool}
}

// Get returns a buffer whose B has length 0 and capacity at least size.
func (f *FreeList) Get(size int) *Buf {
	if n := len(f.free); n > 0 {
		b := f.free[n-1]
		f.free[n-1] = nil
		f.free = f.free[:n-1]
		if cap(b.B) >= size {
			b.B = b.B[:0]
			return b
		}
		b.B = make([]byte, 0, size)
		return b
	}
	return f.pool.Get(size)
}

// Put releases a buffer back to the free list (or the shared pool once
// the list is full). The caller must not touch b afterwards.
func (f *FreeList) Put(b *Buf) {
	if len(f.free) < freeListCap {
		f.free = append(f.free, b)
		return
	}
	f.pool.Put(b)
}
