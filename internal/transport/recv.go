package transport

import (
	"errors"
	"net"
	"time"
)

// The batched receive path mirrors the send side: where SendBatch coalesces
// a carousel round into sendmmsg calls, RecvBatch drains the socket into a
// reusable set of pooled buffers with recvmmsg (linux/amd64; a portable
// one-read fallback elsewhere), so a busy receiver pays one syscall and
// zero allocations for a whole burst of datagrams instead of one syscall
// and one 64 KiB allocation per packet.

// ErrClosed is returned by the receive calls once the client (or its
// socket) has been closed. Callers distinguish it from ErrTimeout to stop
// polling instead of burning a retry budget against a dead socket.
var ErrClosed = errors.New("transport: client closed")

// ErrTimeout is returned by the receive calls when the timeout elapses
// with no datagram. The client is still healthy; polling may continue.
var ErrTimeout = errors.New("transport: receive timed out")

// recvChunk is the most datagrams one RecvBatch call returns — the size of
// a batch's buffer set. 32 bounds a batch's pooled memory to ~64 KiB at
// the default buffer size while amortizing the wakeup ~30x on busy
// sockets.
const recvChunk = 32

// defaultRecvSize is the per-datagram receive buffer capacity. Wire
// packets are header + payload + tag; every codec in this repository pads
// payloads to at most 1024 bytes, so 2 KiB covers them with slack for
// future growth. SetRecvSize raises it for jumbo deployments.
const defaultRecvSize = 2048

// recvPool is the shared pool behind all receive buffers (clients come and
// go; their buffer memory is reclaimed through here). The send side keeps
// its own pools — receive buffers live much longer per fill, so mixing
// them would let slow receivers pin send-sized buffers.
var recvPool = NewBufPool()

// classifyRecvErr folds the socket error zoo into the two conditions
// receive loops act on: ErrClosed (stop) and ErrTimeout (poll again).
// Anything else is passed through.
func classifyRecvErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, net.ErrClosed):
		return ErrClosed
	default:
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			return ErrTimeout
		}
		return err
	}
}

// RecvBatch is a reusable receive batch: a set of pooled buffers a client
// fills with one RecvBatch call each time. The zero value is ready to use;
// buffers are drawn from the shared pool on first use and kept attached
// across calls, so a steady-state receive loop allocates nothing. Call
// Free when the batch is retired for good.
//
// A RecvBatch belongs to one receive loop at a time — it is not safe for
// concurrent use.
type RecvBatch struct {
	bufs []*Buf
	pkts [][]byte
}

// ensure readies the batch for a fill: chunk buffers of at least size
// capacity each, packet views cleared.
func (rb *RecvBatch) ensure(chunk, size int) {
	for len(rb.bufs) < chunk {
		rb.bufs = append(rb.bufs, recvPool.Get(size))
	}
	for i, b := range rb.bufs {
		if cap(b.B) < size {
			recvPool.Put(b)
			rb.bufs[i] = recvPool.Get(size)
		}
	}
	if rb.pkts == nil {
		rb.pkts = make([][]byte, 0, chunk)
	}
	rb.pkts = rb.pkts[:0]
}

// Packets returns the datagrams of the last fill, one slice per datagram,
// in arrival order. The views (and the packets a caller got from Recv*)
// stay valid only until the next fill of this batch.
func (rb *RecvBatch) Packets() [][]byte { return rb.pkts }

// Len returns the number of datagrams in the last fill.
func (rb *RecvBatch) Len() int { return len(rb.pkts) }

// Free returns the batch's buffers to the shared pool. The batch may be
// reused afterwards (it will draw fresh buffers), but any previously
// returned packet views are dead.
func (rb *RecvBatch) Free() {
	for i, b := range rb.bufs {
		recvPool.Put(b)
		rb.bufs[i] = nil
	}
	rb.bufs = rb.bufs[:0]
	rb.pkts = rb.pkts[:0]
}

// SetRecvSize sets the per-datagram receive buffer capacity for this
// client (default 2048). Datagrams longer than the buffer are truncated by
// the kernel, so deployments with jumbo packets should raise it to at
// least header + payload + tag before the first receive call.
func (c *UDPClient) SetRecvSize(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n < 256 {
		n = 256
	}
	c.recvSize = n
}

// Closed reports whether Close has been called. Receive loops use it (or
// the ErrClosed return) to stop polling a dead client.
func (c *UDPClient) Closed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// RecvBatch fills rb with as many queued datagrams as one kernel visit
// yields (up to the batch's capacity), blocking up to timeout for the
// first one. It returns the number received; rb.Packets() holds the data.
// On linux/amd64 a whole backlog drains with one recvmmsg(2) call;
// elsewhere one datagram is read per call. The previous fill's packet
// views are invalidated.
//
// Errors: ErrTimeout when nothing arrived in time, ErrClosed once the
// client is closed. Like Recv, RecvBatch is a single-reader call — run one
// receive loop per client.
func (c *UDPClient) RecvBatch(rb *RecvBatch, timeout time.Duration) (int, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, ErrClosed
	}
	size := c.recvSize
	c.mu.Unlock()
	rb.ensure(recvChunk, size)
	c.conn.SetReadDeadline(time.Now().Add(timeout))
	n, err := c.readBatch(rb)
	if err != nil {
		return 0, classifyRecvErr(err)
	}
	var nb uint64
	for _, p := range rb.pkts {
		nb += uint64(len(p))
	}
	c.rxPackets.Add(uint64(n))
	c.rxBytes.Add(nb)
	c.rxBatch.Observe(int64(n))
	return n, nil
}

// readBatchPortable reads one datagram into the batch's first buffer —
// the fallback fill when no kernel batch syscall is usable.
func (c *UDPClient) readBatchPortable(rb *RecvBatch) (int, error) {
	buf := rb.bufs[0].B[:cap(rb.bufs[0].B)]
	n, _, err := c.conn.ReadFromUDPAddrPort(buf)
	if err != nil {
		return 0, err
	}
	rb.pkts = append(rb.pkts, buf[:n])
	return 1, nil
}

// RecvOne blocks for the next datagram (up to timeout) and returns a view
// into the client's own pooled buffer — valid only until the next
// Recv/RecvOne call on this client. Errors as in RecvBatch.
func (c *UDPClient) RecvOne(timeout time.Duration) ([]byte, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	size := c.recvSize
	if c.recvBuf == nil || cap(c.recvBuf.B) < size {
		if c.recvBuf != nil {
			recvPool.Put(c.recvBuf)
		}
		c.recvBuf = recvPool.Get(size)
	}
	buf := c.recvBuf.B[:cap(c.recvBuf.B)]
	c.mu.Unlock()
	c.conn.SetReadDeadline(time.Now().Add(timeout))
	n, _, err := c.conn.ReadFromUDPAddrPort(buf)
	if err != nil {
		return nil, classifyRecvErr(err)
	}
	c.rxPackets.Add(1)
	c.rxBytes.Add(uint64(n))
	c.rxBatch.Observe(1)
	return buf[:n], nil
}
