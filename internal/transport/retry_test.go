package transport

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"
)

// TestControlTimeoutClassified: a silent server (socket bound, nobody
// answering) must surface as ErrTimeout — the retryable condition — not as
// an opaque string.
func TestControlTimeoutClassified(t *testing.T) {
	silent, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()
	_, err = RequestSessionInfo(silent.LocalAddr().(*net.UDPAddr), []byte{7}, 30*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("silent server: err = %v, want ErrTimeout", err)
	}
	if errors.Is(err, ErrClosed) {
		t.Fatalf("timeout misclassified as closed: %v", err)
	}
}

// TestControlClosedClassified: a request over a dead socket must surface
// as ErrClosed, not masquerade as a timeout. The old code folded every
// failure — including this one — into a constant "timed out" error, which
// sent RequestSessionInfoRetry into a full backoff schedule against a
// socket that could never answer.
func TestControlClosedClassified(t *testing.T) {
	silent, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()
	conn, err := net.DialUDP("udp", nil, silent.LocalAddr().(*net.UDPAddr))
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	_, err = requestOnConn(conn, []byte{7}, 30*time.Millisecond)
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("closed socket: err = %v, want ErrClosed", err)
	}
	if errors.Is(err, ErrTimeout) {
		t.Fatalf("closed socket misclassified as timeout: %v", err)
	}
}

// TestRequestRetryTimeoutKeepsProbing: timeouts burn the whole attempt
// budget (the reply may just be lost), and a late success short-circuits
// the rest of the schedule.
func TestRequestRetryTimeoutKeepsProbing(t *testing.T) {
	p := RetryPolicy{Attempts: 4, Timeout: time.Millisecond,
		Backoff: time.Microsecond, MaxBackoff: time.Microsecond}
	calls := 0
	_, err := requestRetry(p, func(timeout time.Duration) ([]byte, error) {
		if timeout != time.Millisecond {
			t.Fatalf("attempt timeout = %v, want policy timeout 1ms", timeout)
		}
		calls++
		return nil, fmt.Errorf("transport: control request: %w", ErrTimeout)
	})
	if calls != 4 {
		t.Fatalf("timeout attempts = %d, want all 4", calls)
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want wrapped ErrTimeout", err)
	}

	calls = 0
	reply, err := requestRetry(p, func(time.Duration) ([]byte, error) {
		calls++
		if calls < 3 {
			return nil, ErrTimeout
		}
		return []byte{42}, nil
	})
	if err != nil || len(reply) != 1 || reply[0] != 42 {
		t.Fatalf("late success: reply=%v err=%v", reply, err)
	}
	if calls != 3 {
		t.Fatalf("late success took %d attempts, want 3", calls)
	}
}

// TestRequestRetryClosedShortCircuits: ErrClosed means the socket is gone
// — the loop must stop after that attempt instead of sleeping through the
// remaining backoff schedule.
func TestRequestRetryClosedShortCircuits(t *testing.T) {
	p := RetryPolicy{Attempts: 5, Timeout: time.Millisecond,
		Backoff: time.Microsecond, MaxBackoff: time.Microsecond}
	calls := 0
	start := time.Now()
	_, err := requestRetry(p, func(time.Duration) ([]byte, error) {
		calls++
		return nil, fmt.Errorf("transport: control request: %w", ErrClosed)
	})
	if calls != 1 {
		t.Fatalf("closed socket burned %d attempts, want 1", calls)
	}
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want wrapped ErrClosed", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("short-circuit still slept %v", elapsed)
	}
}

// TestRequestSessionInfoRetryClosedEndToEnd: the public retry entry point
// inherits the classification — a dialed-then-killed local endpoint with a
// generous attempt budget must fail in one attempt once the error is
// ErrClosed, exercising the real socket path.
func TestRequestSessionInfoRetryClosedEndToEnd(t *testing.T) {
	// An address nobody listens on: on Linux the connected UDP socket gets
	// ICMP port-unreachable, surfacing as a non-timeout error — which must
	// pass through unclassified (neither swallowed nor renamed "timeout").
	dead, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	addr := dead.LocalAddr().(*net.UDPAddr)
	dead.Close()
	p := RetryPolicy{Attempts: 2, Timeout: 50 * time.Millisecond,
		Backoff: time.Millisecond, MaxBackoff: time.Millisecond}
	_, err = RequestSessionInfoRetry(addr, []byte{7}, p)
	if err == nil {
		t.Fatal("request to dead port succeeded")
	}
	if errs := err.Error(); errs == "transport: control request timed out" {
		t.Fatalf("classification regressed to the old constant error: %v", err)
	}
}
