//go:build !(linux && amd64)

package transport

// recvState exists only on platforms with a kernel batch-receive syscall;
// elsewhere the client's rmmsg field stays nil and empty.
type recvState struct{}

// readBatch without a kernel batch syscall: the portable one-read
// fallback. Each call delivers a single datagram into the batch's first
// pooled buffer — same API, same pooling, one syscall per packet.
func (c *UDPClient) readBatch(rb *RecvBatch) (int, error) {
	return c.readBatchPortable(rb)
}
