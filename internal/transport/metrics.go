package transport

import (
	"strconv"

	"repro/internal/metrics"
)

// batchSizeBounds are the histogram buckets shared by the send- and
// receive-side batch-size distributions. Power-of-two bounds up to the
// send batch cap (service.maxBatch = 128; recvmmsg chunks are 32) — a
// scrape of these histograms answers "is the batching actually
// amortizing syscalls, and by how much" directly.
var batchSizeBounds = []int64{1, 2, 4, 8, 16, 32, 64, 128}

// RegisterMetrics exposes the server's traffic and hardening counters on a
// scrape registry. The counters themselves are always maintained (they are
// lock-free atomics on the send path); registration only wires them to the
// scraper, so it can happen any time after construction — typically right
// after NewUDPServer, alongside service wiring.
func (s *UDPServer) RegisterMetrics(r *metrics.Registry) {
	r.CounterFunc("fountain_udp_tx_packets_total",
		"datagram writes handed to the kernel (per destination)", s.txPackets.Load)
	r.CounterFunc("fountain_udp_tx_bytes_total",
		"bytes handed to the kernel (per destination)", s.txBytes.Load)
	r.AddHistogram("fountain_udp_send_batch_size",
		"datagrams per per-subscriber kernel batch write", s.txBatch)
	r.GaugeFunc("fountain_udp_subscribers",
		"distinct subscriber addresses across all sessions and layers",
		func() float64 {
			s.mu.Lock()
			n := len(s.addrRef)
			s.mu.Unlock()
			return float64(n)
		})
	r.CounterFunc("fountain_udp_evictions_total",
		"subscribers evicted for persistent write errors",
		func() uint64 { return s.Hardening().Evictions })
	r.CounterFunc("fountain_udp_refused_joins_total",
		"joins refused by the admission cap or penalty box",
		func() uint64 { return s.Hardening().RefusedJoins })
	r.CounterFunc("fountain_udp_rate_dropped_total",
		"packets dropped by per-subscriber rate caps",
		func() uint64 { return s.Hardening().RateDropped })
}

// RegisterMetrics exposes the client's receive-side traffic counters on a
// scrape registry, under a source label so multi-source clients can
// register each mirror connection distinctly (src < 0 omits the label).
func (c *UDPClient) RegisterMetrics(r *metrics.Registry, src int) {
	name := func(base string) string {
		if src < 0 {
			return base
		}
		return metrics.Label(base, "source", strconv.Itoa(src))
	}
	r.CounterFunc(name("fountain_udp_rx_packets_total"),
		"datagrams taken off the client socket", c.rxPackets.Load)
	r.CounterFunc(name("fountain_udp_rx_bytes_total"),
		"bytes taken off the client socket", c.rxBytes.Load)
	if src < 0 {
		r.AddHistogram("fountain_udp_recv_batch_size",
			"datagrams per kernel receive visit", c.rxBatch)
	}
}
