//go:build linux && amd64

package transport

import (
	"net/netip"
	"syscall"
	"unsafe"
)

// The per-subscriber batch write on Linux uses sendmmsg(2) directly — the
// same coalescing golang.org/x/net's ipv4.PacketConn.WriteBatch performs,
// done via the standard library so the repository stays dependency-free.
// One syscall carries up to mmsgChunk datagrams, so a 128-packet carousel
// round costs a subscriber 2 syscalls instead of 128.

// mmsgChunk is the most datagrams one sendmmsg call carries. 64 keeps the
// on-stack header/iovec arrays a few KiB while amortizing the syscall ~60x.
const mmsgChunk = 64

// sysSendmmsg is the linux/amd64 sendmmsg(2) syscall number (the syscall
// package's frozen table predates it). The build tag pins the arch.
const sysSendmmsg = 307

// mmsghdr mirrors struct mmsghdr: a msghdr plus the kernel-written count
// of bytes sent for that message. Go pads the struct to the msghdr
// alignment, matching the kernel's array stride.
type mmsghdr struct {
	hdr   syscall.Msghdr
	nsent uint32
}

// writeBatchTo coalesces the batch into sendmmsg calls when the socket and
// destination are plain IPv4 (the substrate's common case); other
// combinations take the portable per-datagram loop. Packet buffers are
// handed to the kernel in place — no copies on the fan-out path.
func (s *UDPServer) writeBatchTo(pkts [][]byte, to netip.AddrPort) error {
	rc := s.rawConn
	if rc == nil || s.batchPortable || !s.v4Socket || !to.Addr().Is4() || len(pkts) == 1 {
		return s.writePortable(pkts, to)
	}
	var sa syscall.RawSockaddrInet4
	sa.Family = syscall.AF_INET
	port := to.Port()
	sa.Port = port<<8 | port>>8 // network byte order
	sa.Addr = to.Addr().As4()
	var iovs [mmsgChunk]syscall.Iovec
	var msgs [mmsgChunk]mmsghdr
	for lo := 0; lo < len(pkts); lo += mmsgChunk {
		n := min(mmsgChunk, len(pkts)-lo)
		for i := 0; i < n; i++ {
			pkt := pkts[lo+i]
			var base *byte
			if len(pkt) > 0 {
				base = &pkt[0] // nil base + zero len = valid empty datagram
			}
			iovs[i] = syscall.Iovec{Base: base, Len: uint64(len(pkt))}
			msgs[i] = mmsghdr{hdr: syscall.Msghdr{
				Name:    (*byte)(unsafe.Pointer(&sa)),
				Namelen: uint32(unsafe.Sizeof(sa)),
				Iov:     &iovs[i],
				Iovlen:  1,
			}}
		}
		sent := 0
		var opErr error
		werr := rc.Write(func(fd uintptr) bool {
			for sent < n {
				r1, _, errno := syscall.Syscall6(sysSendmmsg, fd,
					uintptr(unsafe.Pointer(&msgs[sent])), uintptr(n-sent), 0, 0, 0)
				if errno == syscall.EAGAIN {
					return false // socket buffer full: wait for writability
				}
				if errno == syscall.EINTR {
					continue
				}
				if errno != 0 {
					opErr = errno
					return true
				}
				if r1 == 0 {
					// Defensive: a zero-progress success would loop forever.
					opErr = syscall.EIO
					return true
				}
				// nsent is per-message byte counts written by the kernel; a
				// UDP datagram sends whole or not at all, so only the
				// message count r1 advances the cursor.
				_ = msgs[sent].nsent
				sent += int(r1)
			}
			return true
		})
		if werr != nil {
			return werr
		}
		if opErr != nil {
			return opErr
		}
	}
	return nil
}
