package transport

import (
	"errors"
	"fmt"
	"net"
	"time"
)

// RetryPolicy bounds a control-plane request loop: a fixed number of
// attempts, a per-attempt reply timeout, and a jittered exponential
// backoff between attempts. The zero value selects sane client defaults
// (5 attempts, 500ms timeout, 100ms base backoff capped at 2s).
//
// Control requests are tiny idempotent datagrams, so retrying is always
// safe; the jitter keeps a fleet of clients from re-probing a restarted
// mirror in lockstep.
type RetryPolicy struct {
	Attempts   int           // total attempts (0 = 5)
	Timeout    time.Duration // per-attempt reply timeout (0 = 500ms)
	Backoff    time.Duration // delay before the second attempt (0 = 100ms), doubling
	MaxBackoff time.Duration // backoff ceiling (0 = 2s)
	Seed       int64         // jitter seed; fixed seeds make retry schedules reproducible
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 5
	}
	if p.Timeout <= 0 {
		p.Timeout = 500 * time.Millisecond
	}
	if p.Backoff <= 0 {
		p.Backoff = 100 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 2 * time.Second
	}
	return p
}

// delay returns the jittered backoff before attempt i+1 (i counting from
// 0): the exponential base scaled by a deterministic factor in [0.5, 1.5).
func (p RetryPolicy) delay(i int) time.Duration {
	d := p.Backoff << uint(i)
	if d > p.MaxBackoff || d <= 0 {
		d = p.MaxBackoff
	}
	j := splitmix64(uint64(p.Seed) ^ uint64(i) + 0x5DEECE66D)
	frac := 0.5 + float64(j>>11)/float64(1<<53) // [0.5, 1.5)
	return time.Duration(float64(d) * frac)
}

// RequestSessionInfoRetry is RequestSessionInfo wrapped in a bounded,
// jittered retry loop: a client starting against a mirror that is slow,
// restarting, or momentarily unreachable keeps probing instead of dying on
// the first lost datagram — and still fails fast (with the last error)
// when the server is truly gone, instead of hanging forever.
//
// Errors are classified per attempt: ErrTimeout means the reply was lost
// or late and another probe is worthwhile; ErrClosed means the socket
// itself died, so the loop stops immediately instead of sleeping through
// the remaining backoff schedule against a dead endpoint.
func RequestSessionInfoRetry(control *net.UDPAddr, hello []byte, p RetryPolicy) ([]byte, error) {
	return requestRetry(p, func(timeout time.Duration) ([]byte, error) {
		return RequestSessionInfo(control, hello, timeout)
	})
}

// requestRetry runs one control-request attempt function under the policy.
// Factored from RequestSessionInfoRetry so the retry/classification logic
// is testable without a live socket.
func requestRetry(p RetryPolicy, attempt func(timeout time.Duration) ([]byte, error)) ([]byte, error) {
	p = p.withDefaults()
	var lastErr error
	for i := 0; i < p.Attempts; i++ {
		if i > 0 {
			time.Sleep(p.delay(i - 1))
		}
		reply, err := attempt(p.Timeout)
		if err == nil {
			return reply, nil
		}
		lastErr = err
		if errors.Is(err, ErrClosed) {
			return nil, fmt.Errorf("transport: control request failed after %d attempts: %w",
				i+1, lastErr)
		}
	}
	return nil, fmt.Errorf("transport: control request failed after %d attempts: %w",
		p.Attempts, lastErr)
}
