package transport

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/proto"
)

// TestRecvBatchLoopback drives enough packets through the real socket path
// to force multiple fills (and, on linux/amd64, multi-datagram recvmmsg
// fills) and checks that every packet arrives intact and in order.
func TestRecvBatchLoopback(t *testing.T) {
	s, err := NewUDPServer("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := NewUDPClientSession(s.Addr(), 0xBA7C, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for s.SessionSubscribers(0xBA7C, 0) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscription never registered")
		}
		time.Sleep(time.Millisecond)
	}
	const n = 150 // > 4 * recvChunk: several fills even if each drains a full chunk
	batch := make([][]byte, n)
	for i := range batch {
		batch[i] = testPacket(0xBA7C, 0, uint32(i+1), []byte(fmt.Sprintf("r%03d", i)))
	}
	if err := s.SendBatch(0, batch); err != nil {
		t.Fatal(err)
	}
	var rb RecvBatch
	defer rb.Free()
	got := 0
	fills := 0
	for got < n {
		k, err := c.RecvBatch(&rb, 5*time.Second)
		if err != nil {
			t.Fatalf("fill %d after %d packets: %v", fills, got, err)
		}
		if k != rb.Len() || k < 1 || k > recvChunk {
			t.Fatalf("fill %d: n=%d, Len=%d", fills, k, rb.Len())
		}
		for _, pkt := range rb.Packets() {
			if !bytes.Equal(pkt, batch[got]) {
				t.Fatalf("packet %d differs (reordered or corrupted)", got)
			}
			got++
		}
		fills++
	}
	if fills > n {
		t.Fatalf("%d fills for %d packets", fills, n)
	}
	t.Logf("%d packets in %d fills", n, fills)
}

// TestRecvClosedVsTimeout pins satellite 2's contract on UDPClient: an idle
// socket yields ErrTimeout (keep polling), a closed one yields ErrClosed
// immediately (stop polling), and Closed() flips accordingly.
func TestRecvClosedVsTimeout(t *testing.T) {
	s, err := NewUDPServer("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := NewUDPClientSession(s.Addr(), 0xBA7D, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Closed() {
		t.Fatal("Closed() true before Close")
	}
	if _, err := c.RecvOne(20 * time.Millisecond); err != ErrTimeout {
		t.Fatalf("RecvOne on idle socket: %v, want ErrTimeout", err)
	}
	var rb RecvBatch
	defer rb.Free()
	if _, err := c.RecvBatch(&rb, 20*time.Millisecond); err != ErrTimeout {
		t.Fatalf("RecvBatch on idle socket: %v, want ErrTimeout", err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if !c.Closed() {
		t.Fatal("Closed() false after Close")
	}
	// Both the early-exit path (closed flag) and the socket path must
	// classify as ErrClosed, and fast: a receive loop must not spin.
	start := time.Now()
	if _, err := c.RecvOne(5 * time.Second); err != ErrClosed {
		t.Fatalf("RecvOne after Close: %v, want ErrClosed", err)
	}
	if _, err := c.RecvBatch(&rb, 5*time.Second); err != ErrClosed {
		t.Fatalf("RecvBatch after Close: %v, want ErrClosed", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("closed receives blocked for %v", elapsed)
	}
}

// TestSetRecvSize: datagrams larger than the default buffer are truncated
// by the kernel, so a raised receive size must round-trip a jumbo packet
// intact.
func TestSetRecvSize(t *testing.T) {
	s, err := NewUDPServer("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := NewUDPClientSession(s.Addr(), 0xBA7E, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetRecvSize(8192)
	deadline := time.Now().Add(5 * time.Second)
	for s.SessionSubscribers(0xBA7E, 0) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscription never registered")
		}
		time.Sleep(time.Millisecond)
	}
	jumbo := testPacket(0xBA7E, 0, 1, bytes.Repeat([]byte{0xAB}, 4000))
	if err := s.Send(0, jumbo); err != nil {
		t.Fatal(err)
	}
	var rb RecvBatch
	defer rb.Free()
	if _, err := c.RecvBatch(&rb, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rb.Packets()[0], jumbo) {
		t.Fatalf("jumbo packet truncated: got %d bytes, want %d", len(rb.Packets()[0]), len(jumbo))
	}
}

// TestMultiClientBatchFunnel exercises the batch handoff end to end: two
// servers blast batches concurrently, RecvBatchFrom hands out whole
// source-tagged batches, and every packet is delivered exactly once.
func TestMultiClientBatchFunnel(t *testing.T) {
	const session = 0xF411
	srvs := make([]*UDPServer, 2)
	for i := range srvs {
		s, err := NewUDPServer("127.0.0.1:0", 1)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		srvs[i] = s
	}
	mc, err := NewMultiClient([]*net.UDPAddr{srvs[0].Addr(), srvs[1].Addr()}, session, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	deadline := time.Now().Add(5 * time.Second)
	for srvs[0].SessionSubscribers(session, 0) == 0 || srvs[1].SessionSubscribers(session, 0) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscriptions never registered")
		}
		time.Sleep(time.Millisecond)
	}
	const perSrc = 80
	for src, s := range srvs {
		batch := make([][]byte, perSrc)
		for i := range batch {
			h := proto.Header{Index: uint32(src), Serial: uint32(i + 1), Session: session}
			batch[i] = append(h.Marshal(nil), byte(src), byte(i))
		}
		if err := s.SendBatch(0, batch); err != nil {
			t.Fatal(err)
		}
	}
	seen := [2]map[uint32]bool{{}, {}}
	for seen[0][perSrc] == false || seen[1][perSrc] == false {
		src, pkts, err := mc.RecvBatchFrom(5 * time.Second)
		if err != nil {
			t.Fatalf("with %d+%d packets seen: %v", len(seen[0]), len(seen[1]), err)
		}
		if len(pkts) == 0 {
			t.Fatal("empty batch handed out")
		}
		for _, pkt := range pkts {
			h, payload, err := proto.ParseHeader(pkt)
			if err != nil {
				t.Fatal(err)
			}
			if int(h.Index) != src || int(payload[0]) != src {
				t.Fatalf("packet from server %d delivered as source %d", h.Index, src)
			}
			if seen[src][h.Serial] {
				t.Fatalf("source %d serial %d delivered twice", src, h.Serial)
			}
			seen[src][h.Serial] = true
		}
		// Mixing the cursor API with the batch API must not double-deliver:
		// the batch above was handed out whole, so RecvFrom pulls a new one.
		if len(seen[0]) < perSrc || len(seen[1]) < perSrc {
			if src2, pkt, err := mc.RecvFrom(5 * time.Second); err == nil {
				h, _, perr := proto.ParseHeader(pkt)
				if perr != nil {
					t.Fatal(perr)
				}
				if seen[src2][h.Serial] {
					t.Fatalf("RecvFrom re-delivered source %d serial %d", src2, h.Serial)
				}
				seen[src2][h.Serial] = true
			}
		}
	}
	if len(seen[0]) != perSrc || len(seen[1]) != perSrc {
		t.Fatalf("delivered %d+%d packets, want %d each", len(seen[0]), len(seen[1]), perSrc)
	}
}

// TestMultiClientClosedVsTimeout pins satellite 2's contract on the funnel:
// ErrTimeout while idle, ErrClosed after Close — promptly, so download
// loops stop spinning once the client is torn down.
func TestMultiClientClosedVsTimeout(t *testing.T) {
	s, err := NewUDPServer("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mc, err := NewMultiClient([]*net.UDPAddr{s.Addr()}, 0xF412, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Closed() {
		t.Fatal("Closed() true before Close")
	}
	if _, _, err := mc.RecvFrom(20 * time.Millisecond); err != ErrTimeout {
		t.Fatalf("RecvFrom on idle funnel: %v, want ErrTimeout", err)
	}
	if _, _, err := mc.RecvBatchFrom(20 * time.Millisecond); err != ErrTimeout {
		t.Fatalf("RecvBatchFrom on idle funnel: %v, want ErrTimeout", err)
	}
	if err := mc.Close(); err != nil {
		t.Fatal(err)
	}
	if !mc.Closed() {
		t.Fatal("Closed() false after Close")
	}
	start := time.Now()
	if _, _, err := mc.RecvFrom(5 * time.Second); err != ErrClosed {
		t.Fatalf("RecvFrom after Close: %v, want ErrClosed", err)
	}
	if _, _, err := mc.RecvBatchFrom(5 * time.Second); err != ErrClosed {
		t.Fatalf("RecvBatchFrom after Close: %v, want ErrClosed", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("closed receives blocked for %v", elapsed)
	}
	// Close is idempotent.
	if err := mc.Close(); err != nil {
		t.Fatal(err)
	}
}
