//go:build !(linux && amd64)

package transport

import "net/netip"

// writeBatchTo without a kernel batch syscall: the portable per-datagram
// write loop. The buffers are still encoded once and written as-is.
func (s *UDPServer) writeBatchTo(pkts [][]byte, to netip.AddrPort) error {
	return s.writePortable(pkts, to)
}
