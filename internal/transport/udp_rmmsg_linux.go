//go:build linux && amd64

package transport

import (
	"syscall"
	"unsafe"
)

// The batched read on Linux uses recvmmsg(2) directly, mirroring the send
// side's sendmmsg: one syscall drains up to recvChunk queued datagrams
// into the batch's pooled buffers. Done via the standard library's
// RawConn so the repository stays dependency-free and the netpoller still
// handles blocking, deadlines (os.ErrDeadlineExceeded) and close
// (net.ErrClosed).

// sysRecvmmsg is the linux/amd64 recvmmsg(2) syscall number (the syscall
// package's frozen table predates it). The build tag pins the arch.
const sysRecvmmsg = 299

// recvState is the reusable recvmmsg machinery of one client: the iovec
// and mmsghdr arrays handed to the kernel and the RawConn callback. All of
// it would escape to the heap if declared per call (the callback is an
// interface argument), so one readBatch would cost ~3 allocations; hoisted
// here and built once, the steady-state batch read allocates nothing.
// Guarded by the client's single-reader receive discipline.
type recvState struct {
	iovs  [recvChunk]syscall.Iovec
	msgs  [recvChunk]mmsghdr
	n     int
	got   int
	opErr error
	fn    func(fd uintptr) bool
}

func newRecvState() *recvState {
	st := &recvState{}
	st.fn = func(fd uintptr) bool {
		for {
			r1, _, errno := syscall.Syscall6(sysRecvmmsg, fd,
				uintptr(unsafe.Pointer(&st.msgs[0])), uintptr(st.n), 0, 0, 0)
			if errno == syscall.EAGAIN {
				return false // nothing queued: wait for readability
			}
			if errno == syscall.EINTR {
				continue
			}
			if errno != 0 {
				st.opErr = errno
				return true
			}
			st.got = int(r1)
			return true
		}
	}
	return st
}

// readBatch fills rb with up to recvChunk datagrams in one recvmmsg call,
// waiting on the netpoller until at least one datagram (or the read
// deadline) arrives. Buffers are filled in place — no copies on the
// receive path. The source address is not collected: a client socket is
// connected to one server's traffic by its subscription, and the packet
// header carries everything routing needs.
func (c *UDPClient) readBatch(rb *RecvBatch) (int, error) {
	rc := c.raw
	if rc == nil {
		return c.readBatchPortable(rb)
	}
	st := c.rmmsg
	if st == nil {
		st = newRecvState()
		c.rmmsg = st
	}
	n := len(rb.bufs)
	if n > recvChunk {
		n = recvChunk
	}
	for i := 0; i < n; i++ {
		buf := rb.bufs[i].B[:cap(rb.bufs[i].B)]
		st.iovs[i] = syscall.Iovec{Base: &buf[0], Len: uint64(len(buf))}
		st.msgs[i] = mmsghdr{hdr: syscall.Msghdr{Iov: &st.iovs[i], Iovlen: 1}}
	}
	st.n, st.got, st.opErr = n, 0, nil
	rerr := rc.Read(st.fn)
	if rerr != nil {
		return 0, rerr
	}
	if st.opErr != nil {
		return 0, st.opErr
	}
	for i := 0; i < st.got; i++ {
		// nsent is the kernel-written datagram length (msg_len).
		rb.pkts = append(rb.pkts, rb.bufs[i].B[:cap(rb.bufs[i].B)][:st.msgs[i].nsent])
	}
	return st.got, nil
}
