// Package transport carries fountain packets from a server to clients over
// two interchangeable substrates:
//
//   - Bus: an in-process multicast channel with per-client loss injection.
//     Delivery is synchronous, so experiments (Figure 8) run with a virtual
//     clock at full CPU speed and perfectly reproducibly — this substitutes
//     for the paper's Berkeley/CMU/Cornell testbed (see DESIGN.md).
//   - UDP: real sockets. Clients register per-layer subscriptions with the
//     server over a tiny datagram protocol standing in for IGMP joins, and
//     the server unicasts each layer's packets to its subscribers; the
//     control channel (session info over UDP unicast) matches §7.3.
package transport

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/evtrace"
	"repro/internal/netsim"
)

// Handler consumes packets delivered on a subscribed layer. pkt is only
// valid for the duration of the call: senders on the zero-alloc send path
// reuse their pooled buffers as soon as Send/SendBatch returns, so a
// handler that keeps packet bytes must copy them (every decoder in this
// repository already copies on Add).
type Handler func(layer int, pkt []byte)

// Bus is the in-process lossy multicast substrate.
type Bus struct {
	layers int
	mu     sync.Mutex
	subs   map[*BusClient]struct{}
	// snap is a copy-on-write snapshot of subs, rebuilt on subscription
	// changes and never mutated afterwards: senders read it without
	// allocating, so the batched send path stays zero-alloc end to end.
	snap []*BusClient
}

// NewBus creates a bus with the given number of layers (groups).
func NewBus(layers int) *Bus {
	return &Bus{layers: layers, subs: make(map[*BusClient]struct{})}
}

// resnap rebuilds the immutable subscriber snapshot; callers hold b.mu.
func (b *Bus) resnap() {
	snap := make([]*BusClient, 0, len(b.subs))
	for c := range b.subs {
		snap = append(snap, c)
	}
	b.snap = snap
}

// Layers returns the group count.
func (b *Bus) Layers() int { return b.layers }

// SubscriberTotal returns the number of attached clients (the Bus analogue
// of UDPServer.SubscriberTotal, so stats snapshots work over either
// substrate).
func (b *Bus) SubscriberTotal() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// DropAll detaches every subscriber without closing them — the membership
// table a crashed-and-restarted server would have lost. Clients stop
// receiving until they Reattach (the in-process analogue of re-sending
// their subscriptions to the restarted server).
func (b *Bus) DropAll() {
	b.mu.Lock()
	for c := range b.subs {
		delete(b.subs, c)
	}
	b.resnap()
	b.mu.Unlock()
}

// Send delivers pkt on a layer to every subscribed client, applying each
// client's loss process. Delivery is synchronous (the handler runs on the
// caller's goroutine).
func (b *Bus) Send(layer int, pkt []byte) error {
	if layer < 0 || layer >= b.layers {
		return fmt.Errorf("transport: layer %d out of range", layer)
	}
	b.mu.Lock()
	clients := b.snap
	b.mu.Unlock()
	for _, c := range clients {
		c.deliver(layer, pkt)
	}
	return nil
}

// SendBatch delivers a batch of packets on a layer, in order, to every
// subscribed client — one subscriber-set snapshot for the whole batch.
// Delivery order is identical to calling Send per packet, so the batched
// and per-packet paths are interchangeable for deterministic experiments.
func (b *Bus) SendBatch(layer int, pkts [][]byte) error {
	if layer < 0 || layer >= b.layers {
		return fmt.Errorf("transport: layer %d out of range", layer)
	}
	b.mu.Lock()
	clients := b.snap
	b.mu.Unlock()
	for _, pkt := range pkts {
		for _, c := range clients {
			c.deliver(layer, pkt)
		}
	}
	return nil
}

// BusClient is one receiver attached to a Bus.
//
// Beyond the loss process, a client can inject the other faults of a
// hostile channel, each driven by a deterministic process so scenarios
// reproduce bit for bit: corruption (a delivered packet has one byte
// flipped — the integrity tag must catch it), duplication (a packet is
// delivered twice), reordering (packets pass through a bounded shuffle
// buffer), and duty-cycling (an asleep client misses everything, the
// radio-off state of wireless receivers).
type BusClient struct {
	bus     *Bus
	mu      sync.Mutex
	level   int // subscribed to layers 0..level
	loss    netsim.LossProcess
	byLayer []netsim.LossProcess // optional per-layer override
	handler Handler
	closed  bool
	asleep  bool

	corrupt netsim.LossProcess // fires = flip one byte of the delivery
	dup     netsim.LossProcess // fires = deliver the packet twice
	faultN  uint64             // deterministic corruption-position walk
	scratch []byte             // corrupted copy (the shared buffer must stay intact)

	reorderDepth int // > 0 enables the shuffle buffer
	reorderSeed  uint64
	reorderN     uint64
	rq           []queuedPacket

	// Fault-pipeline ground truth: every decision the pipeline takes is
	// counted at the moment it is taken, so a harness can assert a
	// receiver's (or a metrics registry's) view against what the channel
	// verifiably did. Atomics — incremented under c.mu but read lock-free
	// by FaultStats during live traffic.
	nDelivered  atomic.Uint64 // handler invocations (duplicate copies included)
	nLost       atomic.Uint64 // drops by the loss process (not sleep/level filtering)
	nCorrupted  atomic.Uint64 // deliveries with the one-byte flip applied
	nDuplicated atomic.Uint64 // extra copies delivered by the duplication process

	// Flight-recorder handle and identity: every ground-truth count above
	// has a matching trace event, emitted at the same decision point, so a
	// trace's channel accounting reconciles exactly against FaultStats.
	tr                     *evtrace.Shard
	trSess, trSrc, trActor uint16
}

// FaultStats is a BusClient's ground-truth fault accounting: what the
// in-process channel actually did to this client's traffic.
type FaultStats struct {
	Delivered  uint64 // handler invocations, duplicate copies included
	Lost       uint64 // packets dropped by the loss process
	Corrupted  uint64 // packets delivered with a flipped byte
	Duplicated uint64 // extra copies delivered by the duplication process
}

// FaultStats returns the client's fault-pipeline counts. Packets still
// held by the reorder buffer are in none of the counts — flush with
// SetReorder(0, 0) before reconciling exact totals.
func (c *BusClient) FaultStats() FaultStats {
	return FaultStats{
		Delivered:  c.nDelivered.Load(),
		Lost:       c.nLost.Load(),
		Corrupted:  c.nCorrupted.Load(),
		Duplicated: c.nDuplicated.Load(),
	}
}

type queuedPacket struct {
	layer int
	pkt   []byte
}

// splitmix64 is the mixing function behind every deterministic draw in the
// fault layer.
func splitmix64(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// NewClient attaches a client subscribed to layers 0..level with the given
// loss process (nil = lossless) and delivery handler.
func (b *Bus) NewClient(level int, loss netsim.LossProcess, h Handler) *BusClient {
	c := &BusClient{bus: b, level: level, loss: loss, handler: h}
	b.mu.Lock()
	b.subs[c] = struct{}{}
	b.resnap()
	b.mu.Unlock()
	return c
}

// SetLayerLoss overrides the client's loss process for one layer: that
// layer's deliveries consult lp instead of the client-wide process (nil
// restores the default). Heterogeneous per-layer loss is how the harness
// models paths whose congestion hits the high-rate layers first.
func (c *BusClient) SetLayerLoss(layer int, lp netsim.LossProcess) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if layer < 0 || layer >= c.bus.layers {
		return
	}
	if c.byLayer == nil {
		c.byLayer = make([]netsim.LossProcess, c.bus.layers)
	}
	c.byLayer[layer] = lp
}

// SetCorruption sets the client's corruption process: each delivery for
// which lp fires arrives with one byte flipped (position walks the packet
// deterministically), in a private copy — other subscribers of the same
// send still receive the intact bytes. nil disables corruption.
func (c *BusClient) SetCorruption(lp netsim.LossProcess) {
	c.mu.Lock()
	c.corrupt = lp
	c.mu.Unlock()
}

// SetDuplication sets the client's duplication process: each delivery for
// which lp fires is handed to the handler twice back-to-back (the
// duplicated delivery repeats the corrupted bytes if corruption also
// fired). nil disables duplication.
func (c *BusClient) SetDuplication(lp netsim.LossProcess) {
	c.mu.Lock()
	c.dup = lp
	c.mu.Unlock()
}

// SetReorder routes deliveries through a depth-d shuffle buffer: each
// arriving packet is queued (copied — the sender reuses its buffers), and
// once the buffer holds more than depth packets a pseudorandomly chosen
// one (seeded, deterministic) is released. Sustained traffic therefore
// arrives in a storm-reordered but reproducible order. depth <= 0 disables
// reordering and flushes anything still queued, in queue order.
func (c *BusClient) SetReorder(depth int, seed int64) {
	c.mu.Lock()
	c.reorderDepth = depth
	c.reorderSeed = uint64(seed)
	c.reorderN = 0
	var flush []queuedPacket
	if depth <= 0 && len(c.rq) > 0 {
		flush = c.rq
		c.rq = nil
	}
	h := c.handler
	closed := c.closed
	tr, sess, src, actor := c.tr, c.trSess, c.trSrc, c.trActor
	c.mu.Unlock()
	if closed || h == nil {
		return
	}
	for _, q := range flush {
		c.nDelivered.Add(1)
		if tr.On() {
			tr.Emit(evtrace.EvChDeliver, sess, src, actor, uint8(q.layer), uint64(len(q.pkt)), 0)
		}
		h(q.layer, q.pkt)
	}
}

// SetTrace attaches a flight-recorder shard and the identity (session,
// source, receiver) stamped on this client's channel events. Call before
// traffic flows; nil detaches. The fault pipeline then emits one event per
// ground-truth count — deliver/loss/corrupt/duplicate — at the moment the
// decision is taken.
func (c *BusClient) SetTrace(sh *evtrace.Shard, sess, src, actor uint16) {
	c.mu.Lock()
	c.tr, c.trSess, c.trSrc, c.trActor = sh, sess, src, actor
	c.mu.Unlock()
}

// SetAsleep pauses (true) or resumes (false) the client: an asleep client
// misses every delivery, the duty-cycled radio-off state of wireless
// receivers. Packets sent while asleep are simply gone — on resume the
// receiver sees serial gaps, exactly as after a real sleep.
func (c *BusClient) SetAsleep(asleep bool) {
	c.mu.Lock()
	c.asleep = asleep
	c.mu.Unlock()
}

// Reattach re-registers a detached client with its bus (a no-op while
// already attached; closed clients stay closed). This is the in-process
// analogue of re-sending a SUB datagram to a server that crashed and came
// back with an empty membership table.
func (c *BusClient) Reattach() {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return
	}
	c.bus.mu.Lock()
	c.bus.subs[c] = struct{}{}
	c.bus.resnap()
	c.bus.mu.Unlock()
}

// SetLevel changes the client's cumulative subscription level.
func (c *BusClient) SetLevel(level int) {
	c.mu.Lock()
	c.level = level
	c.mu.Unlock()
}

// Level returns the current subscription level.
func (c *BusClient) Level() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.level
}

// Close detaches the client from the bus.
func (c *BusClient) Close() {
	c.bus.mu.Lock()
	delete(c.bus.subs, c)
	c.bus.resnap()
	c.bus.mu.Unlock()
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
}

// deliver applies the client's fault pipeline to one sent packet: drop
// (asleep, loss process), corrupt (byte flip in a private copy), reorder
// (bounded shuffle buffer), duplicate. All fault decisions draw from
// deterministic processes under the client lock, so a scenario's delivery
// sequence is a pure function of its seeds.
func (c *BusClient) deliver(layer int, pkt []byte) {
	c.mu.Lock()
	if c.closed || c.asleep || layer > c.level {
		c.mu.Unlock()
		return
	}
	lp := c.loss
	if c.byLayer != nil && c.byLayer[layer] != nil {
		lp = c.byLayer[layer]
	}
	if lp != nil && lp.Lose() {
		c.nLost.Add(1)
		if c.tr.On() {
			c.tr.Emit(evtrace.EvChLoss, c.trSess, c.trSrc, c.trActor, uint8(layer), uint64(len(pkt)), 0)
		}
		c.mu.Unlock()
		return
	}
	h := c.handler
	out := pkt
	if c.corrupt != nil && c.corrupt.Lose() && len(pkt) > 0 {
		// Flip one byte in a private copy: the sender's (pooled, shared)
		// buffer must reach every other subscriber intact.
		c.scratch = append(c.scratch[:0], pkt...)
		c.scratch[int(c.faultN%uint64(len(c.scratch)))] ^= 0x55
		out = c.scratch
		c.nCorrupted.Add(1)
		if c.tr.On() {
			c.tr.Emit(evtrace.EvChCorrupt, c.trSess, c.trSrc, c.trActor, uint8(layer), uint64(len(pkt)), 0)
		}
	}
	c.faultN++
	dup := c.dup != nil && c.dup.Lose()
	tr, sess, src, actor := c.tr, c.trSess, c.trSrc, c.trActor
	if c.reorderDepth > 0 {
		// Queue a copy (the caller reuses pkt as soon as Send returns) and
		// release a pseudorandom queued packet once the buffer is full.
		c.rq = append(c.rq, queuedPacket{layer: layer, pkt: append([]byte(nil), out...)})
		if len(c.rq) <= c.reorderDepth {
			c.mu.Unlock()
			return
		}
		i := int(splitmix64(c.reorderSeed^c.reorderN) % uint64(len(c.rq)))
		c.reorderN++
		rel := c.rq[i]
		last := len(c.rq) - 1
		c.rq[i] = c.rq[last]
		c.rq[last] = queuedPacket{}
		c.rq = c.rq[:last]
		c.mu.Unlock()
		if h == nil {
			return
		}
		c.nDelivered.Add(1)
		if tr.On() {
			tr.Emit(evtrace.EvChDeliver, sess, src, actor, uint8(rel.layer), uint64(len(rel.pkt)), 0)
		}
		h(rel.layer, rel.pkt)
		if dup {
			c.nDuplicated.Add(1)
			c.nDelivered.Add(1)
			if tr.On() {
				tr.Emit(evtrace.EvChDup, sess, src, actor, uint8(rel.layer), uint64(len(rel.pkt)), 0)
				tr.Emit(evtrace.EvChDeliver, sess, src, actor, uint8(rel.layer), uint64(len(rel.pkt)), 0)
			}
			h(rel.layer, rel.pkt)
		}
		return
	}
	c.mu.Unlock()
	if h == nil {
		return
	}
	c.nDelivered.Add(1)
	if tr.On() {
		tr.Emit(evtrace.EvChDeliver, sess, src, actor, uint8(layer), uint64(len(out)), 0)
	}
	h(layer, out)
	if dup {
		c.nDuplicated.Add(1)
		c.nDelivered.Add(1)
		if tr.On() {
			tr.Emit(evtrace.EvChDup, sess, src, actor, uint8(layer), uint64(len(out)), 0)
			tr.Emit(evtrace.EvChDeliver, sess, src, actor, uint8(layer), uint64(len(out)), 0)
		}
		h(layer, out)
	}
}

// Pump is a deterministic virtual-clock scheduler for bus-based testbeds:
// each registered source (a mirror's carousel, a background traffic
// generator, ...) fires at a fixed virtual-time interval, and Run advances
// the clock from event to event — no sleeps, no goroutines, bit-identical
// across runs. Ties fire in registration order, so interleaving is
// reproducible even for sources at identical rates.
//
// This substitutes wall-clock pacing (server.Engine.Run) in tests: a full
// multi-mirror round-trip over lossy buses executes at CPU speed with a
// stable packet interleaving, which is what makes loss-injection scenarios
// assertable down to exact packet counts.
type Pump struct {
	now  float64
	srcs []*pumpSource
}

type pumpSource struct {
	interval float64
	next     float64
	step     func() error
}

// NewPump creates an empty pump at virtual time 0.
func NewPump() *Pump { return &Pump{} }

// Add registers a source firing every `interval` virtual seconds, first at
// `start`. Typical use: one source per mirror with interval = 1/rate.
func (p *Pump) Add(start, interval float64, step func() error) {
	if interval <= 0 {
		interval = 1
	}
	p.srcs = append(p.srcs, &pumpSource{interval: interval, next: start, step: step})
}

// Now returns the current virtual time.
func (p *Pump) Now() float64 { return p.now }

// Run fires sources in virtual-time order until done() reports true
// (checked after every step), maxSteps steps have run, or a step fails. It
// returns the number of steps executed and the first step error, if any.
func (p *Pump) Run(maxSteps int, done func() bool) (steps int, err error) {
	if len(p.srcs) == 0 {
		return 0, nil
	}
	for steps = 0; steps < maxSteps; steps++ {
		if done != nil && done() {
			return steps, nil
		}
		src := p.srcs[0]
		for _, s := range p.srcs[1:] {
			if s.next < src.next {
				src = s
			}
		}
		if src.next > p.now {
			p.now = src.next
		}
		src.next += src.interval
		if err := src.step(); err != nil {
			return steps + 1, err
		}
	}
	return steps, nil
}
