// Package transport carries fountain packets from a server to clients over
// two interchangeable substrates:
//
//   - Bus: an in-process multicast channel with per-client loss injection.
//     Delivery is synchronous, so experiments (Figure 8) run with a virtual
//     clock at full CPU speed and perfectly reproducibly — this substitutes
//     for the paper's Berkeley/CMU/Cornell testbed (see DESIGN.md).
//   - UDP: real sockets. Clients register per-layer subscriptions with the
//     server over a tiny datagram protocol standing in for IGMP joins, and
//     the server unicasts each layer's packets to its subscribers; the
//     control channel (session info over UDP unicast) matches §7.3.
package transport

import (
	"fmt"
	"sync"

	"repro/internal/netsim"
)

// Handler consumes packets delivered on a subscribed layer.
type Handler func(layer int, pkt []byte)

// Bus is the in-process lossy multicast substrate.
type Bus struct {
	layers int
	mu     sync.Mutex
	subs   map[*BusClient]struct{}
}

// NewBus creates a bus with the given number of layers (groups).
func NewBus(layers int) *Bus {
	return &Bus{layers: layers, subs: make(map[*BusClient]struct{})}
}

// Layers returns the group count.
func (b *Bus) Layers() int { return b.layers }

// Send delivers pkt on a layer to every subscribed client, applying each
// client's loss process. Delivery is synchronous (the handler runs on the
// caller's goroutine).
func (b *Bus) Send(layer int, pkt []byte) error {
	if layer < 0 || layer >= b.layers {
		return fmt.Errorf("transport: layer %d out of range", layer)
	}
	b.mu.Lock()
	clients := make([]*BusClient, 0, len(b.subs))
	for c := range b.subs {
		clients = append(clients, c)
	}
	b.mu.Unlock()
	for _, c := range clients {
		c.deliver(layer, pkt)
	}
	return nil
}

// BusClient is one receiver attached to a Bus.
type BusClient struct {
	bus     *Bus
	mu      sync.Mutex
	level   int // subscribed to layers 0..level
	loss    netsim.LossProcess
	handler Handler
	closed  bool
}

// NewClient attaches a client subscribed to layers 0..level with the given
// loss process (nil = lossless) and delivery handler.
func (b *Bus) NewClient(level int, loss netsim.LossProcess, h Handler) *BusClient {
	c := &BusClient{bus: b, level: level, loss: loss, handler: h}
	b.mu.Lock()
	b.subs[c] = struct{}{}
	b.mu.Unlock()
	return c
}

// SetLevel changes the client's cumulative subscription level.
func (c *BusClient) SetLevel(level int) {
	c.mu.Lock()
	c.level = level
	c.mu.Unlock()
}

// Level returns the current subscription level.
func (c *BusClient) Level() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.level
}

// Close detaches the client from the bus.
func (c *BusClient) Close() {
	c.bus.mu.Lock()
	delete(c.bus.subs, c)
	c.bus.mu.Unlock()
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
}

func (c *BusClient) deliver(layer int, pkt []byte) {
	c.mu.Lock()
	if c.closed || layer > c.level {
		c.mu.Unlock()
		return
	}
	lost := c.loss != nil && c.loss.Lose()
	h := c.handler
	c.mu.Unlock()
	if lost || h == nil {
		return
	}
	h(layer, pkt)
}
