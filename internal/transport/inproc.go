// Package transport carries fountain packets from a server to clients over
// two interchangeable substrates:
//
//   - Bus: an in-process multicast channel with per-client loss injection.
//     Delivery is synchronous, so experiments (Figure 8) run with a virtual
//     clock at full CPU speed and perfectly reproducibly — this substitutes
//     for the paper's Berkeley/CMU/Cornell testbed (see DESIGN.md).
//   - UDP: real sockets. Clients register per-layer subscriptions with the
//     server over a tiny datagram protocol standing in for IGMP joins, and
//     the server unicasts each layer's packets to its subscribers; the
//     control channel (session info over UDP unicast) matches §7.3.
package transport

import (
	"fmt"
	"sync"

	"repro/internal/netsim"
)

// Handler consumes packets delivered on a subscribed layer. pkt is only
// valid for the duration of the call: senders on the zero-alloc send path
// reuse their pooled buffers as soon as Send/SendBatch returns, so a
// handler that keeps packet bytes must copy them (every decoder in this
// repository already copies on Add).
type Handler func(layer int, pkt []byte)

// Bus is the in-process lossy multicast substrate.
type Bus struct {
	layers int
	mu     sync.Mutex
	subs   map[*BusClient]struct{}
	// snap is a copy-on-write snapshot of subs, rebuilt on subscription
	// changes and never mutated afterwards: senders read it without
	// allocating, so the batched send path stays zero-alloc end to end.
	snap []*BusClient
}

// NewBus creates a bus with the given number of layers (groups).
func NewBus(layers int) *Bus {
	return &Bus{layers: layers, subs: make(map[*BusClient]struct{})}
}

// resnap rebuilds the immutable subscriber snapshot; callers hold b.mu.
func (b *Bus) resnap() {
	snap := make([]*BusClient, 0, len(b.subs))
	for c := range b.subs {
		snap = append(snap, c)
	}
	b.snap = snap
}

// Layers returns the group count.
func (b *Bus) Layers() int { return b.layers }

// Send delivers pkt on a layer to every subscribed client, applying each
// client's loss process. Delivery is synchronous (the handler runs on the
// caller's goroutine).
func (b *Bus) Send(layer int, pkt []byte) error {
	if layer < 0 || layer >= b.layers {
		return fmt.Errorf("transport: layer %d out of range", layer)
	}
	b.mu.Lock()
	clients := b.snap
	b.mu.Unlock()
	for _, c := range clients {
		c.deliver(layer, pkt)
	}
	return nil
}

// SendBatch delivers a batch of packets on a layer, in order, to every
// subscribed client — one subscriber-set snapshot for the whole batch.
// Delivery order is identical to calling Send per packet, so the batched
// and per-packet paths are interchangeable for deterministic experiments.
func (b *Bus) SendBatch(layer int, pkts [][]byte) error {
	if layer < 0 || layer >= b.layers {
		return fmt.Errorf("transport: layer %d out of range", layer)
	}
	b.mu.Lock()
	clients := b.snap
	b.mu.Unlock()
	for _, pkt := range pkts {
		for _, c := range clients {
			c.deliver(layer, pkt)
		}
	}
	return nil
}

// BusClient is one receiver attached to a Bus.
type BusClient struct {
	bus     *Bus
	mu      sync.Mutex
	level   int // subscribed to layers 0..level
	loss    netsim.LossProcess
	byLayer []netsim.LossProcess // optional per-layer override
	handler Handler
	closed  bool
}

// NewClient attaches a client subscribed to layers 0..level with the given
// loss process (nil = lossless) and delivery handler.
func (b *Bus) NewClient(level int, loss netsim.LossProcess, h Handler) *BusClient {
	c := &BusClient{bus: b, level: level, loss: loss, handler: h}
	b.mu.Lock()
	b.subs[c] = struct{}{}
	b.resnap()
	b.mu.Unlock()
	return c
}

// SetLayerLoss overrides the client's loss process for one layer: that
// layer's deliveries consult lp instead of the client-wide process (nil
// restores the default). Heterogeneous per-layer loss is how the harness
// models paths whose congestion hits the high-rate layers first.
func (c *BusClient) SetLayerLoss(layer int, lp netsim.LossProcess) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if layer < 0 || layer >= c.bus.layers {
		return
	}
	if c.byLayer == nil {
		c.byLayer = make([]netsim.LossProcess, c.bus.layers)
	}
	c.byLayer[layer] = lp
}

// SetLevel changes the client's cumulative subscription level.
func (c *BusClient) SetLevel(level int) {
	c.mu.Lock()
	c.level = level
	c.mu.Unlock()
}

// Level returns the current subscription level.
func (c *BusClient) Level() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.level
}

// Close detaches the client from the bus.
func (c *BusClient) Close() {
	c.bus.mu.Lock()
	delete(c.bus.subs, c)
	c.bus.resnap()
	c.bus.mu.Unlock()
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
}

func (c *BusClient) deliver(layer int, pkt []byte) {
	c.mu.Lock()
	if c.closed || layer > c.level {
		c.mu.Unlock()
		return
	}
	lp := c.loss
	if c.byLayer != nil && c.byLayer[layer] != nil {
		lp = c.byLayer[layer]
	}
	lost := lp != nil && lp.Lose()
	h := c.handler
	c.mu.Unlock()
	if lost || h == nil {
		return
	}
	h(layer, pkt)
}

// Pump is a deterministic virtual-clock scheduler for bus-based testbeds:
// each registered source (a mirror's carousel, a background traffic
// generator, ...) fires at a fixed virtual-time interval, and Run advances
// the clock from event to event — no sleeps, no goroutines, bit-identical
// across runs. Ties fire in registration order, so interleaving is
// reproducible even for sources at identical rates.
//
// This substitutes wall-clock pacing (server.Engine.Run) in tests: a full
// multi-mirror round-trip over lossy buses executes at CPU speed with a
// stable packet interleaving, which is what makes loss-injection scenarios
// assertable down to exact packet counts.
type Pump struct {
	now  float64
	srcs []*pumpSource
}

type pumpSource struct {
	interval float64
	next     float64
	step     func() error
}

// NewPump creates an empty pump at virtual time 0.
func NewPump() *Pump { return &Pump{} }

// Add registers a source firing every `interval` virtual seconds, first at
// `start`. Typical use: one source per mirror with interval = 1/rate.
func (p *Pump) Add(start, interval float64, step func() error) {
	if interval <= 0 {
		interval = 1
	}
	p.srcs = append(p.srcs, &pumpSource{interval: interval, next: start, step: step})
}

// Now returns the current virtual time.
func (p *Pump) Now() float64 { return p.now }

// Run fires sources in virtual-time order until done() reports true
// (checked after every step), maxSteps steps have run, or a step fails. It
// returns the number of steps executed and the first step error, if any.
func (p *Pump) Run(maxSteps int, done func() bool) (steps int, err error) {
	if len(p.srcs) == 0 {
		return 0, nil
	}
	for steps = 0; steps < maxSteps; steps++ {
		if done != nil && done() {
			return steps, nil
		}
		src := p.srcs[0]
		for _, s := range p.srcs[1:] {
			if s.next < src.next {
				src = s
			}
		}
		if src.next > p.now {
			p.now = src.next
		}
		src.next += src.interval
		if err := src.step(); err != nil {
			return steps + 1, err
		}
	}
	return steps, nil
}
