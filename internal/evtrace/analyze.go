package evtrace

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Analysis is the latency decomposition of one event stream: per-session,
// per-mirror emission accounting and pacing jitter, per-receiver intake
// and decode accounting, and the time-to-decode distribution across the
// receiver population. It is computed from the trace alone — the
// acceptance tests require its rounds/overhead figures to match the
// harness's own accounting exactly.
type Analysis struct {
	Sessions map[uint16]*SessionAnalysis
}

// SessionAnalysis groups one wire session's mirrors and receivers.
type SessionAnalysis struct {
	Session   uint16
	Mirrors   map[uint16]*MirrorStats
	Receivers map[uint16]*ReceiverStats
}

// MirrorStats is the emission-side accounting of one source/mirror.
type MirrorStats struct {
	Src      uint16
	Rounds   uint64 // EvRound events (rounds begun)
	Batches  uint64 // EvTxBatch events
	Packets  uint64 // packets across flushed batches
	Bytes    uint64 // payload bytes across flushed batches
	Jitter   JitterStats
	Sched    uint64 // EvSlotScheduled events
	FirstTS  int64
	LastTS   int64
	anyEvent bool
}

// JitterStats summarizes scheduled-vs-actual slot emission times (the
// pacing jitter of EvSlotFired events), in nanoseconds.
type JitterStats struct {
	Count   uint64
	Max     int64
	sum     int64
	Buckets [len(jitterBounds) + 1]uint64 // histogram; +Inf last
}

// jitterBounds are the jitter histogram's upper bounds in nanoseconds:
// 10µs .. 100ms in decade-and-a-half steps, wide enough to show both a
// quiet scheduler and one drowning in debt.
var jitterBounds = [...]int64{
	10_000, 50_000, 100_000, 500_000, 1_000_000, 5_000_000, 10_000_000, 50_000_000, 100_000_000,
}

// JitterBounds returns the histogram's bucket upper bounds (ns).
func JitterBounds() []int64 { return append([]int64(nil), jitterBounds[:]...) }

func (j *JitterStats) observe(ns int64) {
	j.Count++
	j.sum += ns
	if ns > j.Max {
		j.Max = ns
	}
	i := 0
	for i < len(jitterBounds) && ns > jitterBounds[i] {
		i++
	}
	j.Buckets[i]++
}

// Mean returns the mean jitter in nanoseconds.
func (j *JitterStats) Mean() float64 {
	if j.Count == 0 {
		return 0
	}
	return float64(j.sum) / float64(j.Count)
}

// ChannelStats mirrors the transport fault pipeline's ground truth for one
// (receiver, mirror) feed.
type ChannelStats struct {
	Delivered, Lost, Corrupted, Duplicated uint64
}

// ReceiverStats is the intake-side accounting of one receiver.
type ReceiverStats struct {
	Actor        uint16
	Received     uint64 // EvIntake events (accepted packets)
	CorruptDrops uint64 // EvIntakeDrop events
	Distinct     uint64 // EvSymbol events
	Channel      map[uint16]*ChannelStats

	// Decode completion, from the EvDone record.
	Done      bool
	DoneTotal uint64 // packets accepted at completion
	DoneDist  uint64 // distinct symbols at completion
	K         uint64
	FirstTS   int64 // first intake timestamp
	DoneTS    int64
	// RoundsAtDone[src] counts that mirror's EvRound events preceding this
	// receiver's EvDone in stream order — the trace twin of the harness's
	// doneRounds snapshot.
	RoundsAtDone map[uint16]uint64

	// Release latency: intake→release per released symbol, measurable when
	// intake and symbol events interleave (ns). For threshold decoders a
	// release follows its intake immediately; LT-style lazy release shows
	// up as nonzero latency.
	ReleaseLat LatencyStats

	hasFirst bool
}

// LatencyStats accumulates a simple latency population.
type LatencyStats struct {
	Count uint64
	Max   int64
	sum   int64
}

func (l *LatencyStats) observe(ns int64) {
	l.Count++
	l.sum += ns
	if ns > l.Max {
		l.Max = ns
	}
}

// Mean returns the mean latency in nanoseconds.
func (l *LatencyStats) Mean() float64 {
	if l.Count == 0 {
		return 0
	}
	return float64(l.sum) / float64(l.Count)
}

// RoundsToDecode returns the max per-mirror round count at completion —
// the harness's RoundsToDecode — or -1 while incomplete.
func (r *ReceiverStats) RoundsToDecode() int {
	if !r.Done {
		return -1
	}
	max := uint64(0)
	for _, n := range r.RoundsAtDone {
		if n > max {
			max = n
		}
	}
	return int(max)
}

// Overhead returns total-accepted / k at completion (reception overhead;
// 1/η in the paper's terms), or 0 while incomplete.
func (r *ReceiverStats) Overhead() float64 {
	if !r.Done || r.K == 0 {
		return 0
	}
	return float64(r.DoneTotal) / float64(r.K)
}

// TimeToDecode returns DoneTS - FirstTS in nanoseconds, or -1 while
// incomplete.
func (r *ReceiverStats) TimeToDecode() int64 {
	if !r.Done || !r.hasFirst {
		return -1
	}
	return r.DoneTS - r.FirstTS
}

func (a *Analysis) session(id uint16) *SessionAnalysis {
	sa := a.Sessions[id]
	if sa == nil {
		sa = &SessionAnalysis{
			Session:   id,
			Mirrors:   make(map[uint16]*MirrorStats),
			Receivers: make(map[uint16]*ReceiverStats),
		}
		a.Sessions[id] = sa
	}
	return sa
}

func (sa *SessionAnalysis) mirror(src uint16) *MirrorStats {
	m := sa.Mirrors[src]
	if m == nil {
		m = &MirrorStats{Src: src}
		sa.Mirrors[src] = m
	}
	return m
}

func (sa *SessionAnalysis) receiver(actor uint16) *ReceiverStats {
	r := sa.Receivers[actor]
	if r == nil {
		r = &ReceiverStats{
			Actor:        actor,
			Channel:      make(map[uint16]*ChannelStats),
			RoundsAtDone: make(map[uint16]uint64),
		}
		sa.Receivers[actor] = r
	}
	return r
}

func (r *ReceiverStats) channel(src uint16) *ChannelStats {
	c := r.Channel[src]
	if c == nil {
		c = &ChannelStats{}
		r.Channel[src] = c
	}
	return c
}

// Analyze folds an ordered event stream (Snapshot or ReadBinary output)
// into an Analysis. Stream order matters for RoundsAtDone: the stream must
// preserve emission order within each (mirror, receiver) — Snapshot of a
// single-shard recorder guarantees it globally.
func Analyze(events []Event) *Analysis {
	a := &Analysis{Sessions: make(map[uint16]*SessionAnalysis)}
	// pendingIntake tracks, per (session, actor), the timestamp of the most
	// recent intake whose release has not been observed: a following
	// EvSymbol resolves to intake→release latency.
	type key struct {
		sess, actor uint16
	}
	pending := make(map[key]int64)
	for _, ev := range events {
		sa := a.session(ev.Sess)
		switch ev.Type {
		case EvSlotScheduled:
			m := sa.mirror(ev.Src)
			m.Sched++
			m.touch(ev.TS)
		case EvSlotFired:
			m := sa.mirror(ev.Src)
			if ev.B >= ev.A {
				m.Jitter.observe(int64(ev.B - ev.A))
			}
			m.touch(ev.TS)
		case EvRound:
			m := sa.mirror(ev.Src)
			m.Rounds++
			m.touch(ev.TS)
		case EvTxBatch:
			m := sa.mirror(ev.Src)
			m.Batches++
			m.Packets += ev.A
			m.Bytes += ev.B
			m.touch(ev.TS)
		case EvChDeliver:
			sa.receiver(ev.Actor).channel(ev.Src).Delivered++
		case EvChLoss:
			sa.receiver(ev.Actor).channel(ev.Src).Lost++
		case EvChCorrupt:
			sa.receiver(ev.Actor).channel(ev.Src).Corrupted++
		case EvChDup:
			sa.receiver(ev.Actor).channel(ev.Src).Duplicated++
		case EvIntake:
			r := sa.receiver(ev.Actor)
			r.Received++
			if !r.hasFirst {
				r.hasFirst, r.FirstTS = true, ev.TS
			}
			pending[key{ev.Sess, ev.Actor}] = ev.TS
		case EvIntakeDrop:
			sa.receiver(ev.Actor).CorruptDrops++
		case EvSymbol:
			r := sa.receiver(ev.Actor)
			r.Distinct++
			if ts, ok := pending[key{ev.Sess, ev.Actor}]; ok {
				r.ReleaseLat.observe(ev.TS - ts)
			}
		case EvDone:
			r := sa.receiver(ev.Actor)
			if !r.Done {
				r.Done = true
				r.DoneTS = ev.TS
				r.DoneTotal = ev.A
				r.DoneDist = ev.B & 0xFFFFFFFF
				r.K = ev.B >> 32
				for src, m := range sa.Mirrors {
					r.RoundsAtDone[src] = m.Rounds
				}
			}
		}
	}
	return a
}

func (m *MirrorStats) touch(ts int64) {
	if !m.anyEvent || ts < m.FirstTS {
		m.FirstTS = ts
	}
	if !m.anyEvent || ts > m.LastTS {
		m.LastTS = ts
	}
	m.anyEvent = true
}

// sortedMirrors returns the session's mirrors in src order.
func (sa *SessionAnalysis) sortedMirrors() []*MirrorStats {
	out := make([]*MirrorStats, 0, len(sa.Mirrors))
	for _, m := range sa.Mirrors {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Src < out[j].Src })
	return out
}

// sortedReceivers returns the session's receivers in actor order.
func (sa *SessionAnalysis) sortedReceivers() []*ReceiverStats {
	out := make([]*ReceiverStats, 0, len(sa.Receivers))
	for _, r := range sa.Receivers {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Actor < out[j].Actor })
	return out
}

// TTDQuantiles returns the given quantiles (0..1) of the session's
// time-to-decode population in nanoseconds (completed receivers only;
// nil when none completed).
func (sa *SessionAnalysis) TTDQuantiles(qs ...float64) []int64 {
	var ttds []int64
	for _, r := range sa.Receivers {
		if t := r.TimeToDecode(); t >= 0 {
			ttds = append(ttds, t)
		}
	}
	if len(ttds) == 0 {
		return nil
	}
	sort.Slice(ttds, func(i, j int) bool { return ttds[i] < ttds[j] })
	out := make([]int64, len(qs))
	for i, q := range qs {
		idx := int(math.Ceil(q*float64(len(ttds)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(ttds) {
			idx = len(ttds) - 1
		}
		out[i] = ttds[idx]
	}
	return out
}

// fmtNS renders nanoseconds human-first (µs/ms/s as magnitude warrants).
func fmtNS(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.3fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.3fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

// WriteSummary renders the analysis as an operator-facing text report:
// per-mirror emission and pacing jitter, per-receiver decode accounting,
// and the time-to-decode distribution.
func (a *Analysis) WriteSummary(w io.Writer) error {
	ids := make([]int, 0, len(a.Sessions))
	for id := range a.Sessions {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		sa := a.Sessions[uint16(id)]
		fmt.Fprintf(w, "session %#04x: %d mirrors, %d receivers\n", sa.Session, len(sa.Mirrors), len(sa.Receivers))
		for _, m := range sa.sortedMirrors() {
			fmt.Fprintf(w, "  mirror %d: rounds=%d batches=%d packets=%d bytes=%d",
				m.Src, m.Rounds, m.Batches, m.Packets, m.Bytes)
			if m.Jitter.Count > 0 {
				fmt.Fprintf(w, " jitter mean=%s max=%s (%d slots)",
					fmtNS(int64(m.Jitter.Mean())), fmtNS(m.Jitter.Max), m.Jitter.Count)
			}
			fmt.Fprintln(w)
			if m.Jitter.Count > 0 {
				fmt.Fprintf(w, "    jitter histogram:")
				for i, b := range m.Jitter.Buckets {
					if b == 0 {
						continue
					}
					le := "+Inf"
					if i < len(jitterBounds) {
						le = fmtNS(jitterBounds[i])
					}
					fmt.Fprintf(w, " le=%s:%d", le, b)
				}
				fmt.Fprintln(w)
			}
		}
		for _, r := range sa.sortedReceivers() {
			fmt.Fprintf(w, "  receiver %d: received=%d distinct=%d corrupt-drops=%d",
				r.Actor, r.Received, r.Distinct, r.CorruptDrops)
			if r.Done {
				fmt.Fprintf(w, " done: k=%d total=%d overhead=%.4f rounds=%d ttd=%s",
					r.K, r.DoneTotal, r.Overhead(), r.RoundsToDecode(), fmtNS(r.TimeToDecode()))
			}
			fmt.Fprintln(w)
			if r.ReleaseLat.Count > 0 && r.ReleaseLat.Max > 0 {
				fmt.Fprintf(w, "    intake→release: mean=%s max=%s over %d releases\n",
					fmtNS(int64(r.ReleaseLat.Mean())), fmtNS(r.ReleaseLat.Max), r.ReleaseLat.Count)
			}
			srcs := make([]int, 0, len(r.Channel))
			for src := range r.Channel {
				srcs = append(srcs, int(src))
			}
			sort.Ints(srcs)
			for _, src := range srcs {
				c := r.Channel[uint16(src)]
				fmt.Fprintf(w, "    channel from mirror %d: delivered=%d lost=%d corrupted=%d duplicated=%d\n",
					src, c.Delivered, c.Lost, c.Corrupted, c.Duplicated)
			}
		}
		if qs := sa.TTDQuantiles(0.10, 0.50, 0.90, 0.99); qs != nil {
			fmt.Fprintf(w, "  time-to-decode CDF: p10=%s p50=%s p90=%s p99=%s\n",
				fmtNS(qs[0]), fmtNS(qs[1]), fmtNS(qs[2]), fmtNS(qs[3]))
		}
	}
	return nil
}

// WriteTable renders the analysis as an EXPERIMENTS.md-style markdown
// table, one row per (session, receiver) — the trace-derived twin of the
// tables the harness scenarios print.
func (a *Analysis) WriteTable(w io.Writer) error {
	fmt.Fprintln(w, "| session | receiver | mirrors | received | distinct | k | overhead | rounds | time-to-decode |")
	fmt.Fprintln(w, "|---|---|---|---|---|---|---|---|---|")
	ids := make([]int, 0, len(a.Sessions))
	for id := range a.Sessions {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		sa := a.Sessions[uint16(id)]
		for _, r := range sa.sortedReceivers() {
			rounds, overhead, ttd := "-", "-", "-"
			if r.Done {
				rounds = fmt.Sprintf("%d", r.RoundsToDecode())
				overhead = fmt.Sprintf("%.4f", r.Overhead())
				ttd = fmtNS(r.TimeToDecode())
			}
			fmt.Fprintf(w, "| %#04x | %d | %d | %d | %d | %d | %s | %s | %s |\n",
				sa.Session, r.Actor, len(sa.Mirrors), r.Received, r.Distinct, r.K, overhead, rounds, ttd)
		}
	}
	return nil
}
