package evtrace

import (
	"strings"
	"testing"
)

// stream builds a small synthetic scenario: one session, two mirrors, one
// receiver that completes after mirror 0 has begun 3 rounds and mirror 1
// has begun 2.
func analyzerStream() []Event {
	const sess = 0x2A
	return []Event{
		{TS: 0, Type: EvSlotScheduled, Sess: sess, Src: 0, A: 100},
		{TS: 100, Type: EvSlotFired, Sess: sess, Src: 0, A: 100, B: 150},
		{TS: 100, Type: EvRound, Sess: sess, Src: 0, A: 1},
		{TS: 110, Type: EvTxBatch, Sess: sess, Src: 0, A: 4, B: 4096},
		{TS: 120, Type: EvChDeliver, Sess: sess, Src: 0, Actor: 1, A: 1024},
		{TS: 121, Type: EvIntake, Sess: sess, Src: 0, Actor: 1, A: 1, B: 9},
		{TS: 122, Type: EvSymbol, Sess: sess, Src: 0, Actor: 1, A: 9, B: 1},
		{TS: 200, Type: EvRound, Sess: sess, Src: 1, A: 1},
		{TS: 210, Type: EvTxBatch, Sess: sess, Src: 1, A: 4, B: 4096},
		{TS: 220, Type: EvChLoss, Sess: sess, Src: 1, Actor: 1, A: 1024},
		{TS: 300, Type: EvRound, Sess: sess, Src: 0, A: 2},
		{TS: 320, Type: EvChCorrupt, Sess: sess, Src: 0, Actor: 1, A: 1024},
		{TS: 321, Type: EvIntakeDrop, Sess: sess, Src: 0, Actor: 1},
		{TS: 400, Type: EvRound, Sess: sess, Src: 1, A: 2},
		{TS: 420, Type: EvChDup, Sess: sess, Src: 1, Actor: 1, A: 1024},
		{TS: 421, Type: EvIntake, Sess: sess, Src: 1, Actor: 1, A: 2, B: 5},
		{TS: 430, Type: EvSymbol, Sess: sess, Src: 1, Actor: 1, A: 5, B: 2},
		{TS: 500, Type: EvRound, Sess: sess, Src: 0, A: 3},
		{TS: 520, Type: EvChDeliver, Sess: sess, Src: 0, Actor: 1, A: 1024},
		{TS: 521, Type: EvIntake, Sess: sess, Src: 0, Actor: 1, A: 3, B: 7},
		{TS: 522, Type: EvSymbol, Sess: sess, Src: 0, Actor: 1, A: 7, B: 3},
		{TS: 522, Type: EvDone, Sess: sess, Src: 0, Actor: 1, A: 3, B: 2<<32 | 3},
	}
}

func TestAnalyzeAccounting(t *testing.T) {
	a := Analyze(analyzerStream())
	sa := a.Sessions[0x2A]
	if sa == nil {
		t.Fatal("session missing")
	}
	m0, m1 := sa.Mirrors[0], sa.Mirrors[1]
	if m0.Rounds != 3 || m1.Rounds != 2 {
		t.Fatalf("rounds = %d,%d want 3,2", m0.Rounds, m1.Rounds)
	}
	if m0.Batches != 1 || m0.Packets != 4 || m0.Bytes != 4096 {
		t.Fatalf("mirror 0 batches=%d packets=%d bytes=%d", m0.Batches, m0.Packets, m0.Bytes)
	}
	if m0.Jitter.Count != 1 || m0.Jitter.Max != 50 {
		t.Fatalf("mirror 0 jitter count=%d max=%d", m0.Jitter.Count, m0.Jitter.Max)
	}

	r := sa.Receivers[1]
	if r == nil {
		t.Fatal("receiver missing")
	}
	if r.Received != 3 || r.Distinct != 3 || r.CorruptDrops != 1 {
		t.Fatalf("received=%d distinct=%d drops=%d", r.Received, r.Distinct, r.CorruptDrops)
	}
	if !r.Done || r.K != 2 || r.DoneTotal != 3 || r.DoneDist != 3 {
		t.Fatalf("done=%v k=%d total=%d dist=%d", r.Done, r.K, r.DoneTotal, r.DoneDist)
	}
	// At EvDone, mirror 0 had begun 3 rounds and mirror 1 had begun 2:
	// rounds-to-decode is the max.
	if got := r.RoundsToDecode(); got != 3 {
		t.Fatalf("RoundsToDecode = %d, want 3", got)
	}
	if got := r.Overhead(); got != 1.5 {
		t.Fatalf("Overhead = %v, want 1.5", got)
	}
	if got := r.TimeToDecode(); got != 522-121 {
		t.Fatalf("TimeToDecode = %d, want %d", got, 522-121)
	}

	c0 := r.Channel[0]
	if c0.Delivered != 2 || c0.Corrupted != 1 || c0.Lost != 0 {
		t.Fatalf("channel 0: %+v", c0)
	}
	c1 := r.Channel[1]
	if c1.Lost != 1 || c1.Duplicated != 1 {
		t.Fatalf("channel 1: %+v", c1)
	}
}

func TestAnalyzeIncompleteReceiver(t *testing.T) {
	a := Analyze([]Event{
		{TS: 1, Type: EvIntake, Sess: 1, Actor: 0, A: 1},
	})
	r := a.Sessions[1].Receivers[0]
	if r.Done {
		t.Fatal("receiver should not be done")
	}
	if r.RoundsToDecode() != -1 || r.Overhead() != 0 || r.TimeToDecode() != -1 {
		t.Fatal("incomplete receiver should report sentinel values")
	}
}

func TestTTDQuantiles(t *testing.T) {
	sa := &SessionAnalysis{Receivers: map[uint16]*ReceiverStats{}}
	for i := 0; i < 10; i++ {
		sa.Receivers[uint16(i)] = &ReceiverStats{
			Actor: uint16(i), Done: true, hasFirst: true,
			FirstTS: 0, DoneTS: int64((i + 1) * 100),
		}
	}
	qs := sa.TTDQuantiles(0.10, 0.50, 1.0)
	if qs[0] != 100 || qs[1] != 500 || qs[2] != 1000 {
		t.Fatalf("quantiles = %v", qs)
	}
	empty := &SessionAnalysis{Receivers: map[uint16]*ReceiverStats{}}
	if empty.TTDQuantiles(0.5) != nil {
		t.Fatal("empty population should return nil")
	}
}

func TestWriteSummaryAndTable(t *testing.T) {
	a := Analyze(analyzerStream())
	var sum strings.Builder
	if err := a.WriteSummary(&sum); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"session 0x002a", "mirror 0", "rounds=3", "receiver 1", "overhead=1.5000", "delivered=2"} {
		if !strings.Contains(sum.String(), want) {
			t.Fatalf("summary missing %q:\n%s", want, sum.String())
		}
	}
	var tbl strings.Builder
	if err := a.WriteTable(&tbl); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "| 0x002a | 1 | 2 | 3 | 3 | 2 | 1.5000 | 3 |") {
		t.Fatalf("table row missing:\n%s", tbl.String())
	}
}

func TestJitterHistogramBuckets(t *testing.T) {
	var j JitterStats
	j.observe(5_000)       // le=10µs
	j.observe(70_000)      // le=100µs
	j.observe(200_000_000) // +Inf
	if j.Buckets[0] != 1 {
		t.Fatalf("bucket 0 = %d", j.Buckets[0])
	}
	if j.Buckets[2] != 1 {
		t.Fatalf("bucket le=100µs = %d", j.Buckets[2])
	}
	if j.Buckets[len(jitterBounds)] != 1 {
		t.Fatalf("+Inf bucket = %d", j.Buckets[len(jitterBounds)])
	}
	if j.Max != 200_000_000 || j.Count != 3 {
		t.Fatalf("max=%d count=%d", j.Max, j.Count)
	}
	if mean := j.Mean(); mean < 66_000_000 || mean > 67_000_000 {
		t.Fatalf("mean = %v", mean)
	}
}
