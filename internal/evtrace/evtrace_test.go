package evtrace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"unsafe"
)

func TestEventSize(t *testing.T) {
	if got := unsafe.Sizeof(Event{}); got != EventSize {
		t.Fatalf("Event is %d bytes in memory, want %d", got, EventSize)
	}
}

func TestDisabledEmitRecordsNothing(t *testing.T) {
	r := New(Config{Shards: 1, ShardSize: 16})
	sh := r.Shard(0)
	if sh.On() {
		t.Fatal("new recorder should start disabled")
	}
	sh.Emit(EvIntake, 1, 2, 3, 0, 4, 5)
	if evs := r.Snapshot(); len(evs) != 0 {
		t.Fatalf("disabled Emit recorded %d events", len(evs))
	}
}

func TestNilShardIsSafe(t *testing.T) {
	var sh *Shard
	if sh.On() {
		t.Fatal("nil shard reports On")
	}
	sh.Emit(EvIntake, 1, 2, 3, 0, 4, 5) // must not panic
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports Enabled")
	}
	if r.Shard(0) != nil {
		t.Fatal("nil recorder returned a shard")
	}
}

func TestEmitToggleAndSnapshot(t *testing.T) {
	var now int64
	r := New(Config{Shards: 1, ShardSize: 16, Clock: func() int64 { now += 10; return now }})
	sh := r.Shard(0)
	r.Enable()
	sh.Emit(EvRound, 7, 1, 0, 2, 3, 4)
	r.Disable()
	sh.Emit(EvRound, 7, 1, 0, 2, 5, 6) // dropped: disabled
	r.Enable()
	sh.Emit(EvDone, 7, 0, 9, 0, 100, 200)
	evs := r.Snapshot()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Type != EvRound || evs[0].TS != 10 || evs[0].Sess != 7 || evs[0].Layer != 2 || evs[0].A != 3 {
		t.Fatalf("unexpected first event %+v", evs[0])
	}
	if evs[1].Type != EvDone || evs[1].Actor != 9 || evs[1].B != 200 {
		t.Fatalf("unexpected second event %+v", evs[1])
	}
	if r.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", r.Dropped())
	}
}

func TestRingOverwriteAndDropped(t *testing.T) {
	r := New(Config{Shards: 1, ShardSize: 8})
	r.Enable()
	sh := r.Shard(0)
	for i := 0; i < 20; i++ {
		sh.Emit(EvIntake, 0, 0, 0, 0, uint64(i), 0)
	}
	evs := r.Snapshot()
	if len(evs) != 8 {
		t.Fatalf("retained %d events, want ring size 8", len(evs))
	}
	// The oldest retained event is #12 (20 emitted - 8 capacity).
	for i, ev := range evs {
		if want := uint64(12 + i); ev.A != want {
			t.Fatalf("event %d has A=%d, want %d", i, ev.A, want)
		}
	}
	if r.Dropped() != 12 {
		t.Fatalf("Dropped = %d, want 12", r.Dropped())
	}
	r.Reset()
	if len(r.Snapshot()) != 0 || r.Dropped() != 0 {
		t.Fatal("Reset did not clear the ring")
	}
}

func TestShardSizeRoundsToPowerOfTwo(t *testing.T) {
	r := New(Config{Shards: 1, ShardSize: 9})
	r.Enable()
	sh := r.Shard(0)
	for i := 0; i < 16; i++ {
		sh.Emit(EvIntake, 0, 0, 0, 0, uint64(i), 0)
	}
	if got := len(r.Snapshot()); got != 16 {
		t.Fatalf("ring retained %d, want 16 (9 rounded up)", got)
	}
}

func TestSnapshotMergeOrder(t *testing.T) {
	var now int64
	r := New(Config{Shards: 2, ShardSize: 16, Clock: func() int64 { return now }})
	r.Enable()
	// Same timestamp on both shards: order must be shard 0 first, then
	// within a shard, emission order.
	now = 5
	r.Shard(1).Emit(EvIntake, 0, 0, 0, 0, 10, 0)
	r.Shard(0).Emit(EvIntake, 0, 0, 0, 0, 20, 0)
	r.Shard(0).Emit(EvIntake, 0, 0, 0, 0, 21, 0)
	now = 1
	r.Shard(1).Emit(EvIntake, 0, 0, 0, 0, 30, 0)
	evs := r.Snapshot()
	want := []uint64{30, 20, 21, 10}
	if len(evs) != len(want) {
		t.Fatalf("got %d events, want %d", len(evs), len(want))
	}
	for i, ev := range evs {
		if ev.A != want[i] {
			t.Fatalf("position %d: A=%d, want %d", i, ev.A, want[i])
		}
	}
}

func TestEmitZeroAlloc(t *testing.T) {
	r := New(Config{Shards: 1, ShardSize: 1 << 10})
	r.Enable()
	sh := r.Shard(0)
	if n := testing.AllocsPerRun(1000, func() {
		sh.Emit(EvIntake, 1, 2, 3, 0, 4, 5)
	}); n != 0 {
		t.Fatalf("enabled Emit allocates %.2f/op, want 0", n)
	}
	r.Disable()
	if n := testing.AllocsPerRun(1000, func() {
		sh.Emit(EvIntake, 1, 2, 3, 0, 4, 5)
	}); n != 0 {
		t.Fatalf("disabled Emit allocates %.2f/op, want 0", n)
	}
}

func TestConcurrentEmit(t *testing.T) {
	r := New(Config{Shards: 4, ShardSize: 1 << 12})
	r.Enable()
	var wg sync.WaitGroup
	const perG = 2000
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sh := r.Shard(g)
			for i := 0; i < perG; i++ {
				sh.Emit(EvIntake, uint16(g), 0, 0, 0, uint64(i), 0)
			}
		}(g)
	}
	wg.Wait()
	r.Disable()
	if got := len(r.Snapshot()); got != 4*perG {
		t.Fatalf("retained %d events, want %d", got, 4*perG)
	}
	if r.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", r.Dropped())
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	in := []Event{
		{TS: -5, A: 1, B: 2, Sess: 3, Src: 4, Actor: 5, Type: EvSlotFired, Layer: 6},
		{TS: 1 << 40, A: ^uint64(0), B: 0, Sess: 0xFFFF, Src: 0, Actor: 0xABCD, Type: EvDone, Layer: 255},
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, in); err != nil {
		t.Fatal(err)
	}
	if want := 16 + len(in)*EventSize; buf.Len() != want {
		t.Fatalf("dump is %d bytes, want %d", buf.Len(), want)
	}
	out, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d events, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("event %d: %+v != %+v", i, in[i], out[i])
		}
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("NOTATRACE0000000")); err == nil {
		t.Fatal("bad magic accepted")
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, []Event{{Type: EvIntake}}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-4]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated dump accepted")
	}
}

func TestWriteChromeValidJSON(t *testing.T) {
	evs := []Event{
		{TS: 1000, Type: EvSlotScheduled, Sess: 1, Src: 0, A: 5000},
		{TS: 6000, Type: EvSlotFired, Sess: 1, Src: 0, A: 5000, B: 6000},
		{TS: 7000, Type: EvIntake, Sess: 1, Src: 0, Actor: 2, A: 9, B: 3},
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, evs); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) != 3 {
		t.Fatalf("got %d trace events, want 3", len(parsed.TraceEvents))
	}
	// The fired slot renders as a complete event spanning the jitter.
	fired := parsed.TraceEvents[1]
	if fired["ph"] != "X" {
		t.Fatalf("slot_fired phase = %v, want X", fired["ph"])
	}
	if fired["dur"].(float64) != 1.0 { // (6000-5000) ns = 1 µs
		t.Fatalf("slot_fired dur = %v µs, want 1", fired["dur"])
	}
	// Client-side events land on the receiver thread band.
	if parsed.TraceEvents[2]["tid"].(float64) != 1002 {
		t.Fatalf("intake tid = %v, want 1002", parsed.TraceEvents[2]["tid"])
	}
}

func TestTypeString(t *testing.T) {
	if EvIntake.String() != "intake" || EvDone.String() != "done" {
		t.Fatal("type names wrong")
	}
	if got := Type(200).String(); got != "type(200)" {
		t.Fatalf("unknown type renders %q", got)
	}
}
