// Package evtrace is the stack's flight recorder: an always-compiled,
// runtime-togglable event tracer that captures the life of every packet —
// scheduler slot scheduled and fired, carousel round emitted, transport
// batch flushed, channel fault decision, client intake, decoder symbol
// release, decode completion — as fixed-size binary records in per-shard
// overwriting ring buffers.
//
// The metrics registry (internal/metrics) answers *how many*; the flight
// recorder answers *when* and *in what order*, which is what the paper's
// temporal claims (time-to-decode vs. loss, §6.2-§6.4) and production
// latency triage both need. The design constraints mirror the metrics
// package's:
//
//   - Disabled cost is one predictable branch: every instrumentation site
//     guards on Shard.On() (a nil check plus one atomic bool load) before
//     computing anything, so the proven 0 allocs/packet send and receive
//     paths are untouched when tracing is off.
//   - Enabled cost is bounded and allocation-free: a clock read, one
//     atomic counter increment, and a 32-byte store into a preallocated
//     ring. No locks, no formatting, no growth. Rendering cost (merging,
//     JSON) is paid by the exporter, never the hot path.
//   - Timestamps come from a pluggable clock. Real servers stamp wall
//     (monotonic) nanoseconds; the deterministic harness stamps virtual
//     time, so a scenario's trace is a pure function of its seeds and two
//     runs produce bit-identical byte streams.
//
// Rings overwrite: a recorder holds the last ShardSize events per shard
// (flight-recorder semantics) and counts what it dropped. Size the rings
// to the scenario when completeness matters (the harness tests do).
package evtrace

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// Type discriminates event records.
type Type uint8

const (
	// EvNone is the zero type; decoders treat it as padding/invalid.
	EvNone Type = iota
	// EvSlotScheduled: the pacing scheduler (re)armed a session's next
	// emission deadline. A = deadline in ns on the scheduler's epoch clock.
	EvSlotScheduled
	// EvSlotFired: a due slot was popped and its round is about to emit.
	// A = scheduled deadline ns, B = actual pop time ns (same epoch clock);
	// B-A is the pacing jitter the slot experienced.
	EvSlotFired
	// EvRound: a carousel round began emitting (service send path).
	// A = round number, B = packets emitted by this carousel so far.
	EvRound
	// EvTxBatch: the emitter flushed one per-layer batch to the transport.
	// A = packets in the batch, B = payload bytes in the batch.
	EvTxBatch
	// EvChDeliver: the channel delivered a packet to a receiver. A = wire
	// length.
	EvChDeliver
	// EvChLoss: the channel's loss process dropped a packet. A = wire
	// length.
	EvChLoss
	// EvChCorrupt: the channel delivered a packet with a flipped byte.
	// A = wire length.
	EvChCorrupt
	// EvChDup: the channel delivered an extra duplicate copy. A = wire
	// length.
	EvChDup
	// EvIntake: the client engine accepted a wire packet (tag verified,
	// header parsed, accounting done). A = serial, B = encoding index.
	EvIntake
	// EvIntakeDrop: the client engine dropped a packet for a failed
	// integrity tag before any byte reached accounting or the decoder.
	EvIntakeDrop
	// EvSymbol: the decoder released a new distinct symbol (the packet was
	// new to the decode, not a duplicate). A = encoding index, B = distinct
	// symbols held after the release.
	EvSymbol
	// EvDone: the session's decode completed at this receiver. A = total
	// packets accepted, B = k<<32 | distinct.
	EvDone
	// EvRelease: the decoder performed symbol-release XOR work while
	// ingesting a packet (only emitted for decoders that count it —
	// code.ReleaseCounter). A = encoding index of the triggering packet,
	// B = release operations performed during its ingestion. A systematic
	// codec on a lossless channel emits none of these.
	EvRelease
)

// typeNames is indexed by Type for exporters and the analyzer.
var typeNames = [...]string{
	EvNone:          "none",
	EvSlotScheduled: "slot_scheduled",
	EvSlotFired:     "slot_fired",
	EvRound:         "round",
	EvTxBatch:       "tx_batch",
	EvChDeliver:     "ch_deliver",
	EvChLoss:        "ch_loss",
	EvChCorrupt:     "ch_corrupt",
	EvChDup:         "ch_dup",
	EvIntake:        "intake",
	EvIntakeDrop:    "intake_drop",
	EvSymbol:        "symbol",
	EvDone:          "done",
	EvRelease:       "release",
}

// String names the type for human-facing output.
func (t Type) String() string {
	if int(t) < len(typeNames) && typeNames[t] != "" {
		return typeNames[t]
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Event is one fixed-size trace record: 32 bytes, no pointers, so a ring
// of them is one flat allocation and a dump is a straight memory copy.
//
// Field use is per Type (see the constants); the identity fields are:
// Sess the wire session id, Src the mirror/source id (or scheduler shard
// for slot events), Actor the receiver id on client-side events (0 on
// server-side ones), Layer the multicast layer.
type Event struct {
	TS    int64  // nanoseconds on the recorder's clock
	A, B  uint64 // type-specific arguments
	Sess  uint16
	Src   uint16
	Actor uint16
	Type  Type
	Layer uint8
}

// EventSize is the on-the-wire size of one encoded event.
const EventSize = 32

// Config sizes a Recorder.
type Config struct {
	// Shards is the number of independent rings (0 = 8). Components that
	// emit from distinct goroutines should use distinct shards; components
	// sharing a goroutine may share one (the deterministic harness routes
	// everything through shard 0 so stream order equals emission order).
	Shards int
	// ShardSize is the ring capacity per shard in events, rounded up to a
	// power of two (0 = 1<<14). When a ring wraps the oldest events are
	// overwritten and counted in Dropped.
	ShardSize int
	// Clock supplies event timestamps in nanoseconds (nil = monotonic wall
	// time since New). Deterministic testbeds install their virtual clock;
	// the clock must be safe for concurrent use if shards emit concurrently.
	Clock func() int64
}

// Shard is an emission handle onto one of the recorder's rings. A nil
// *Shard is a valid, permanently-off handle, so components can hold one
// unconditionally and pay a single branch when tracing is not wired.
type Shard struct {
	rec  *Recorder
	pos  atomic.Uint64 // next sequence number; slot = pos & mask
	ring []Event
	mask uint64
	_    [24]byte // keep adjacent shards off one cache line
}

// Recorder owns the shards and the toggle.
type Recorder struct {
	on     atomic.Bool
	clock  func() int64
	shards []*Shard
	epoch  time.Time
}

// New builds a recorder (disabled until Enable).
func New(cfg Config) *Recorder {
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	if cfg.ShardSize <= 0 {
		cfg.ShardSize = 1 << 14
	}
	size := 1
	for size < cfg.ShardSize {
		size <<= 1
	}
	r := &Recorder{epoch: time.Now()}
	r.clock = cfg.Clock
	if r.clock == nil {
		epoch := r.epoch
		r.clock = func() int64 { return int64(time.Since(epoch)) }
	}
	for i := 0; i < cfg.Shards; i++ {
		r.shards = append(r.shards, &Shard{
			rec:  r,
			ring: make([]Event, size),
			mask: uint64(size - 1),
		})
	}
	return r
}

// SetClock replaces the timestamp source. Call before Enable; swapping
// clocks mid-recording interleaves incomparable timestamps.
func (r *Recorder) SetClock(fn func() int64) {
	if fn != nil {
		r.clock = fn
	}
}

// Now reads the recorder's clock.
func (r *Recorder) Now() int64 { return r.clock() }

// Enable starts recording. Safe to toggle at runtime.
func (r *Recorder) Enable() { r.on.Store(true) }

// Disable stops recording; rings keep their contents for dumping.
func (r *Recorder) Disable() { r.on.Store(false) }

// Enabled reports the toggle state.
func (r *Recorder) Enabled() bool { return r != nil && r.on.Load() }

// Shard returns emission handle i (mod the shard count). Handles are
// stable for the life of the recorder.
func (r *Recorder) Shard(i int) *Shard {
	if r == nil {
		return nil
	}
	if i < 0 {
		i = -i
	}
	return r.shards[i%len(r.shards)]
}

// On reports whether an emission through this handle would record — the
// one predictable branch instrumentation sites pay when tracing is off.
// Use it to guard any work needed only to compute event arguments.
func (sh *Shard) On() bool { return sh != nil && sh.rec.on.Load() }

// Emit records one event. It never allocates and never blocks: one clock
// read, one atomic increment, one 32-byte store. When the ring wraps the
// oldest event is overwritten. Callers should guard with On() when the
// arguments themselves cost anything to compute.
func (sh *Shard) Emit(typ Type, sess, src, actor uint16, layer uint8, a, b uint64) {
	if sh == nil || !sh.rec.on.Load() {
		return
	}
	seq := sh.pos.Add(1) - 1
	sh.ring[seq&sh.mask] = Event{
		TS:    sh.rec.clock(),
		A:     a,
		B:     b,
		Sess:  sess,
		Src:   src,
		Actor: actor,
		Type:  typ,
		Layer: layer,
	}
}

// Dropped returns the number of events lost to ring overwrites so far.
// Completeness-sensitive consumers (the harness acceptance tests) assert
// it is zero.
func (r *Recorder) Dropped() uint64 {
	var n uint64
	for _, sh := range r.shards {
		if pos := sh.pos.Load(); pos > uint64(len(sh.ring)) {
			n += pos - uint64(len(sh.ring))
		}
	}
	return n
}

// Reset discards all recorded events (the toggle state is unchanged).
// Not safe concurrently with Emit.
func (r *Recorder) Reset() {
	for _, sh := range r.shards {
		sh.pos.Store(0)
		for i := range sh.ring {
			sh.ring[i] = Event{}
		}
	}
}

// Snapshot copies the retained events out of every ring and merges them
// into one stream ordered by (TS, shard, ring sequence). Within a shard
// the order is exactly emission order, so single-goroutine testbeds that
// route all events through one shard get a causally ordered stream; across
// shards, simultaneous timestamps order by shard index — deterministic,
// though not causal.
//
// Snapshot is safe while recording continues, with flight-recorder
// caveats: an event being overwritten concurrently with the copy may be
// torn. Quiesce (Disable, or stop traffic) before dumps that must be
// exact; the deterministic tests do.
func (r *Recorder) Snapshot() []Event {
	type tagged struct {
		ev    Event
		shard int
		seq   uint64
	}
	var all []tagged
	for si, sh := range r.shards {
		pos := sh.pos.Load()
		n := pos
		if n > uint64(len(sh.ring)) {
			n = uint64(len(sh.ring))
		}
		first := pos - n // sequence number of the oldest retained event
		for seq := first; seq < pos; seq++ {
			ev := sh.ring[seq&sh.mask]
			if ev.Type == EvNone {
				continue // padding or a torn slot mid-write
			}
			all = append(all, tagged{ev: ev, shard: si, seq: seq})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].ev.TS != all[j].ev.TS {
			return all[i].ev.TS < all[j].ev.TS
		}
		if all[i].shard != all[j].shard {
			return all[i].shard < all[j].shard
		}
		return all[i].seq < all[j].seq
	})
	out := make([]Event, len(all))
	for i := range all {
		out[i] = all[i].ev
	}
	return out
}
