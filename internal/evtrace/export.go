package evtrace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// The binary dump format is a fixed 16-byte header followed by raw
// little-endian 32-byte events:
//
//	offset 0  [8]byte  magic "EVTRACE1"
//	offset 8  uint64   event count
//	offset 16 ...      count * 32-byte events
//
// Each event encodes as TS(int64) A(uint64) B(uint64) Sess(uint16)
// Src(uint16) Actor(uint16) Type(uint8) Layer(uint8), little-endian.
// The format is deliberately dumb: a dump of a deterministic scenario is a
// pure function of the event stream, so bit-identical traces compare with
// bytes.Equal and survive being diffed.

// binaryMagic identifies a dump and its version.
var binaryMagic = [8]byte{'E', 'V', 'T', 'R', 'A', 'C', 'E', '1'}

// EncodeEvent appends the 32-byte wire form of ev to dst.
func EncodeEvent(dst []byte, ev Event) []byte {
	var buf [EventSize]byte
	binary.LittleEndian.PutUint64(buf[0:8], uint64(ev.TS))
	binary.LittleEndian.PutUint64(buf[8:16], ev.A)
	binary.LittleEndian.PutUint64(buf[16:24], ev.B)
	binary.LittleEndian.PutUint16(buf[24:26], ev.Sess)
	binary.LittleEndian.PutUint16(buf[26:28], ev.Src)
	binary.LittleEndian.PutUint16(buf[28:30], ev.Actor)
	buf[30] = uint8(ev.Type)
	buf[31] = ev.Layer
	return append(dst, buf[:]...)
}

// DecodeEvent parses one 32-byte wire event.
func DecodeEvent(b []byte) (Event, error) {
	if len(b) < EventSize {
		return Event{}, fmt.Errorf("evtrace: short event: %d bytes", len(b))
	}
	return Event{
		TS:    int64(binary.LittleEndian.Uint64(b[0:8])),
		A:     binary.LittleEndian.Uint64(b[8:16]),
		B:     binary.LittleEndian.Uint64(b[16:24]),
		Sess:  binary.LittleEndian.Uint16(b[24:26]),
		Src:   binary.LittleEndian.Uint16(b[26:28]),
		Actor: binary.LittleEndian.Uint16(b[28:30]),
		Type:  Type(b[30]),
		Layer: b[31],
	}, nil
}

// WriteBinary writes the events as a binary dump.
func WriteBinary(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(events)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, 0, EventSize)
	for _, ev := range events {
		buf = EncodeEvent(buf[:0], ev)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses a binary dump back into events.
func ReadBinary(r io.Reader) ([]Event, error) {
	br := bufio.NewReader(r)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("evtrace: reading dump header: %w", err)
	}
	if [8]byte(hdr[:8]) != binaryMagic {
		return nil, fmt.Errorf("evtrace: bad magic %q", hdr[:8])
	}
	count := binary.LittleEndian.Uint64(hdr[8:16])
	const maxEvents = 1 << 30 // refuse absurd headers before allocating
	if count > maxEvents {
		return nil, fmt.Errorf("evtrace: dump claims %d events", count)
	}
	events := make([]Event, 0, count)
	buf := make([]byte, EventSize)
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("evtrace: truncated dump at event %d: %w", i, err)
		}
		ev, err := DecodeEvent(buf)
		if err != nil {
			return nil, err
		}
		events = append(events, ev)
	}
	return events, nil
}

// chromeEvent is one record of the Chrome trace-event JSON format
// (about://tracing, Perfetto): instant events for lifecycle points,
// complete ("X") events for fired slots so pacing jitter renders as a
// visible duration.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	Dur   float64        `json:"dur,omitempty"`
	PID   uint64         `json:"pid"`
	TID   uint64         `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTID folds the event's origin into a stable thread id: server-side
// events (scheduler, round, batch) render per source/mirror; client-side
// events render per receiver, offset so the two groups never collide.
func chromeTID(ev Event) uint64 {
	switch ev.Type {
	case EvIntake, EvIntakeDrop, EvSymbol, EvDone, EvChDeliver, EvChLoss, EvChCorrupt, EvChDup:
		return 1000 + uint64(ev.Actor)
	default:
		return uint64(ev.Src)
	}
}

// WriteChrome renders the events as Chrome trace-event JSON: processes are
// sessions, threads are mirrors (server side) and receivers (client side,
// tid 1000+actor). Load the output in about://tracing or Perfetto.
func WriteChrome(w io.Writer, events []Event) error {
	type traceFile struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}
	out := traceFile{DisplayTimeUnit: "ns", TraceEvents: make([]chromeEvent, 0, len(events))}
	for _, ev := range events {
		ce := chromeEvent{
			Name:  ev.Type.String(),
			Phase: "i",
			Scope: "t",
			TS:    float64(ev.TS) / 1e3,
			PID:   uint64(ev.Sess),
			TID:   chromeTID(ev),
			Args: map[string]any{
				"a": ev.A, "b": ev.B, "layer": ev.Layer, "src": ev.Src, "actor": ev.Actor,
			},
		}
		if ev.Type == EvSlotFired && ev.B >= ev.A {
			// Render the slot's pacing jitter as a span from the scheduled
			// deadline to the actual pop.
			ce.Phase, ce.Scope = "X", ""
			ce.TS = float64(ev.A) / 1e3
			ce.Dur = float64(ev.B-ev.A) / 1e3
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
