package repro

import (
	"bytes"
	"strings"
	"testing"
)

// The experiment generators are exercised end-to-end at tiny scales: they
// must run, produce the expected row structure, and show the paper's
// qualitative relationships.

func tinyOptions() Options {
	return Options{Seed: 7, Trials: 30}
}

func TestTable1Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(&buf, tinyOptions()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "simple XOR") {
		t.Fatal("missing properties row")
	}
}

func TestTable2And3Run(t *testing.T) {
	o := tinyOptions()
	var buf bytes.Buffer
	if err := Table2(&buf, o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, s := range []string{"250 KB", "500 KB", "1 MB", "Tornado A"} {
		if !strings.Contains(out, s) {
			t.Fatalf("Table2 missing %q:\n%s", s, out)
		}
	}
	buf.Reset()
	if err := Table3(&buf, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Vandermonde") {
		t.Fatal("Table3 missing header")
	}
}

func TestFig2Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig2(&buf, tinyOptions()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "tornado-a") || !strings.Contains(out, "tornado-b") {
		t.Fatalf("Fig2 incomplete:\n%s", out)
	}
}

func TestTable4Runs(t *testing.T) {
	o := Options{Seed: 7, Trials: 30}
	var buf bytes.Buffer
	if err := Table4(&buf, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Speedup") {
		t.Fatal("Table4 missing header")
	}
}

func TestFig4ShowsTornadoAdvantage(t *testing.T) {
	o := Options{Seed: 7, Trials: 200}
	var buf bytes.Buffer
	if err := Fig4(&buf, o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Tornado A") || !strings.Contains(out, "Interleaved k=20") {
		t.Fatalf("Fig4 incomplete:\n%s", out)
	}
}

func TestFig5Runs(t *testing.T) {
	o := Options{Seed: 7, Trials: 120}
	var buf bytes.Buffer
	if err := Fig5(&buf, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "500 receivers") {
		t.Fatal("Fig5 missing header")
	}
}

func TestFig6Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig6(&buf, tinyOptions()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Trace-driven") {
		t.Fatal("Fig6 missing header")
	}
}

func TestTable5MatchesPaper(t *testing.T) {
	var buf bytes.Buffer
	if err := Table5(&buf, tinyOptions()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Spot-check distinctive cells from the paper's Table 5.
	for _, cell := range []string{"0-3", "4-7", "4-5", "6-7"} {
		if !strings.Contains(out, cell) {
			t.Fatalf("Table5 missing cell %q:\n%s", cell, out)
		}
	}
}

func TestFig8Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("fig8 runs the full prototype")
	}
	var buf bytes.Buffer
	o := Options{Seed: 7}
	if err := Fig8(&buf, o); err != nil {
		t.Fatalf("%v\noutput so far:\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "single layer") || !strings.Contains(out, "4 layers") {
		t.Fatalf("Fig8 incomplete:\n%s", out)
	}
}

func TestOverheadCDFCached(t *testing.T) {
	c1, err := overheadCDF(tornadoParamsA(), 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := overheadCDF(tornadoParamsA(), 256, 1)
	if c1 != c2 {
		t.Fatal("CDF not cached")
	}
}
