package repro

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/code"
)

// vandermondeLimitKB bounds the Vandermonde grid: beyond this the paper
// itself reports "not available" (their runs became intractable at 4MB;
// the O(k^2) setup plus O(k^3) decode do the same to us at larger k).
const vandermondeLimitKB = 2048

// Table1 prints the qualitative property comparison of Tornado vs
// Reed-Solomon codes, with measured evidence for the scaling claims.
func Table1(w io.Writer, o Options) error {
	fprintf(w, "Table 1: Properties of Tornado vs Reed-Solomon codes\n")
	fprintf(w, "%-22s %-28s %-28s\n", "", "Tornado", "Reed-Solomon")
	fprintf(w, "%-22s %-28s %-28s\n", "Reception overhead", "> 0 required (measured below)", "0")
	fprintf(w, "%-22s %-28s %-28s\n", "Encoding time", "(k+l)·ln(1/eps)·P", "k·(1+l)·P")
	fprintf(w, "%-22s %-28s %-28s\n", "Decoding time", "(k+l)·ln(1/eps)·P", "k·(1+x)·P")
	fprintf(w, "%-22s %-28s %-28s\n", "Basic operation", "simple XOR", "field operations")
	fprintf(w, "\nMeasured scaling (encode time ratio when k doubles; linear=2x, quadratic=4x):\n")
	rng := rand.New(rand.NewSource(o.Seed))
	var prevT, prevC time.Duration
	for _, kb := range []int{250, 500, 1000} {
		k := kb
		src := mkSource(rng, k, packetLen)
		ct, err := newCauchy(k)
		if err != nil {
			return err
		}
		tt, err := newTornadoA(k, o.Seed)
		if err != nil {
			return err
		}
		cDur, err := encodeTime(ct, src)
		if err != nil {
			return err
		}
		tDur, err := encodeTime(tt, src)
		if err != nil {
			return err
		}
		line := fmt.Sprintf("  k=%-6d tornado-a=%-10s cauchy=%-10s", k, fmtDur(tDur), fmtDur(cDur))
		if prevT > 0 {
			line += fmt.Sprintf("  growth: tornado %.1fx, cauchy %.1fx", float64(tDur)/float64(prevT), float64(cDur)/float64(prevC))
		}
		fprintf(w, "%s\n", line)
		prevT, prevC = tDur, cDur
	}
	return nil
}

// Table2 regenerates the encoding-time comparison: file sizes 250KB-16MB,
// P = 1KB, stretch factor 2, for Vandermonde, Cauchy, Tornado A and
// Tornado B.
func Table2(w io.Writer, o Options) error {
	fprintf(w, "Table 2: Encoding times (P=1KB, n=2k)\n")
	fprintf(w, "%-10s %-14s %-14s %-14s %-14s\n", "SIZE", "Vandermonde", "Cauchy", "Tornado A", "Tornado B")
	rng := rand.New(rand.NewSource(o.Seed))
	for _, kb := range o.sizesKB() {
		k := kb // kb KB / 1KB packets
		src := mkSource(rng, k, packetLen)
		row := fmt.Sprintf("%-10s", sizeName(kb))
		// Vandermonde
		if kb <= vandermondeLimitKB {
			c, err := newVandermonde(k)
			if err != nil {
				return err
			}
			d, err := encodeTime(c, src)
			if err != nil {
				return err
			}
			row += fmt.Sprintf(" %-14s", fmtDur(d))
		} else {
			row += fmt.Sprintf(" %-14s", "not available")
		}
		// Cauchy
		{
			c, err := newCauchy(k)
			if err != nil {
				return err
			}
			d, err := encodeTime(c, src)
			if err != nil {
				return err
			}
			row += fmt.Sprintf(" %-14s", fmtDur(d))
		}
		// Tornado A and B
		ca, err := newTornadoA(k, o.Seed)
		if err != nil {
			return err
		}
		da, err := encodeTime(ca, src)
		if err != nil {
			return err
		}
		cb, err := newTornadoB(k, o.Seed)
		if err != nil {
			return err
		}
		db, err := encodeTime(cb, src)
		if err != nil {
			return err
		}
		row += fmt.Sprintf(" %-14s %-14s", fmtDur(da), fmtDur(db))
		fprintf(w, "%s\n", row)
	}
	return nil
}

// Table3 regenerates the decoding-time comparison. RS codes decode from
// k/2 source + k/2 repair packets (the carousel expectation at stretch 2);
// Tornado decodes from a random packet stream until complete.
func Table3(w io.Writer, o Options) error {
	fprintf(w, "Table 3: Decoding times (P=1KB, n=2k; RS from k/2 source + k/2 repair)\n")
	fprintf(w, "%-10s %-14s %-14s %-14s %-14s\n", "SIZE", "Vandermonde", "Cauchy", "Tornado A", "Tornado B")
	rng := rand.New(rand.NewSource(o.Seed + 3))
	for _, kb := range o.sizesKB() {
		k := kb
		src := mkSource(rng, k, packetLen)
		row := fmt.Sprintf("%-10s", sizeName(kb))
		if kb <= vandermondeLimitKB {
			c, err := newVandermonde(k)
			if err != nil {
				return err
			}
			enc, err := c.Encode(src)
			if err != nil {
				return err
			}
			d, err := rsDecodeTime(c, enc, rng)
			if err != nil {
				return err
			}
			row += fmt.Sprintf(" %-14s", fmtDur(d))
		} else {
			row += fmt.Sprintf(" %-14s", "not available")
		}
		{
			c, err := newCauchy(k)
			if err != nil {
				return err
			}
			enc, err := c.Encode(src)
			if err != nil {
				return err
			}
			d, err := rsDecodeTime(c, enc, rng)
			if err != nil {
				return err
			}
			row += fmt.Sprintf(" %-14s", fmtDur(d))
		}
		for _, mk := range []func(int, int64) (code.Codec, error){newTornadoA, newTornadoB} {
			c, err := mk(k, o.Seed)
			if err != nil {
				return err
			}
			enc, err := c.Encode(src)
			if err != nil {
				return err
			}
			d, err := tornadoDecodeTime(c, enc, rng)
			if err != nil {
				return err
			}
			row += fmt.Sprintf(" %-14s", fmtDur(d))
		}
		fprintf(w, "%s\n", row)
	}
	return nil
}

func sizeName(kb int) string {
	if kb < 1024 {
		return fmt.Sprintf("%d KB", kb)
	}
	return fmt.Sprintf("%d MB", kb/1024)
}
