package repro

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/netsim"
	"repro/internal/stats"
	"repro/internal/tornado"
	"repro/internal/trace"
)

// Fig2 regenerates the reception-overhead distributions: many decode
// trials per variant, reporting the % of trials still unfinished at each
// overhead level plus mean/max/σ (paper: A mean .0548 max .0850 σ .0052;
// B mean .0306 max .0550 σ .0031, measured on ~2000-packet files).
func Fig2(w io.Writer, o Options) error {
	k := 2048 // a 2MB file in 1KB packets, matching the paper's prototype file scale
	trials := o.trials(400)
	if o.Full {
		trials = o.trials(10000)
	}
	for _, p := range []tornado.Params{tornado.A(), tornado.B()} {
		samples, err := overheadSamples(p, k, trials, o.Seed)
		if err != nil {
			return err
		}
		s := stats.Summarize(samples)
		cdf := stats.NewCDF(samples)
		fprintf(w, "Figure 2: %s, %d runs, k=%d\n", p.Variant, trials, k)
		fprintf(w, "  overhead: avg=%.4f max=%.4f sd=%.4f\n", s.Mean, s.Max, s.Std)
		fprintf(w, "  %% unfinished vs length overhead:\n")
		for _, eps := range []float64{0, 0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09} {
			unfinished := 100 * (1 - cdf.P(eps))
			fprintf(w, "    eps=%.2f  unfinished=%5.1f%%\n", eps, unfinished)
		}
	}
	return nil
}

// lossGrid is Table 4's erasure-probability grid.
var lossGrid = []float64{0.01, 0.05, 0.10, 0.20, 0.50}

// maxBlocksFor searches for the largest block count B such that an
// interleaved code over K packets keeps reception overhead below 0.07 in
// at least 99% of trials (the Table 4 criterion, matching Tornado A's
// overhead guarantee).
func maxBlocksFor(K int, p float64, trials int, rng *netsim.RNG) int {
	feasible := func(blocks int) bool {
		blockK := K / blocks
		if blockK < 1 {
			return false
		}
		n := 2 * blockK * blocks
		bad := 0
		allowed := trials / 100 // 1% of trials
		for t := 0; t < trials; t++ {
			dec := netsim.NewBlockDecoder(n, blocks, blockK)
			r := netsim.Carousel(dec, &netsim.Bernoulli{P: p, Rng: rng}, nil, rng, 0)
			overhead := float64(r.Received)/float64(blockK*blocks) - 1
			if !r.Done || overhead > 0.07 {
				bad++
				if bad > allowed {
					return false
				}
			}
		}
		return true
	}
	// Exponential probe then binary search on the block count.
	lo, hi := 1, 1
	for feasible(hi * 2) {
		hi *= 2
		if hi >= K {
			hi = K
			break
		}
	}
	if hi == 1 && !feasible(1) {
		return 1
	}
	lo = hi
	hi = hi * 2
	if hi > K {
		hi = K
	}
	for lo < hi-1 {
		mid := (lo + hi) / 2
		if feasible(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Table4 regenerates the speedup of Tornado A over interleaved codes with
// comparable reception efficiency: for each size and loss rate, the block
// count is maximized under the overhead guarantee, the interleaved decode
// time is blocks x (measured per-block Cauchy decode), and the ratio to
// Tornado A's measured decode time is reported.
func Table4(w io.Writer, o Options) error {
	fprintf(w, "Table 4: Speedup of Tornado A over interleaved codes with comparable efficiency\n")
	fprintf(w, "%-10s", "SIZE")
	for _, p := range lossGrid {
		fprintf(w, " p=%-10.2f", p)
	}
	fprintf(w, "\n")
	rng := rand.New(rand.NewSource(o.Seed + 4))
	simRng := netsim.NewRNG(uint64(o.Seed + 4))
	trials := o.trials(100)
	// Cache per-block Cauchy decode times by block size.
	blockDecode := map[int]time.Duration{}
	measureBlock := func(blockK int) (time.Duration, error) {
		if d, ok := blockDecode[blockK]; ok {
			return d, nil
		}
		c, err := newCauchy(blockK)
		if err != nil {
			return 0, err
		}
		src := mkSource(rng, blockK, packetLen)
		enc, err := c.Encode(src)
		if err != nil {
			return 0, err
		}
		d, err := rsDecodeTime(c, enc, rng)
		if err != nil {
			return 0, err
		}
		if d <= 0 {
			d = time.Microsecond
		}
		blockDecode[blockK] = d
		return d, nil
	}
	for _, kb := range o.sizesKB() {
		K := kb
		// Tornado A decode time at this size.
		ca, err := newTornadoA(K, o.Seed)
		if err != nil {
			return err
		}
		src := mkSource(rng, K, packetLen)
		enc, err := ca.Encode(src)
		if err != nil {
			return err
		}
		tDec, err := tornadoDecodeTime(ca, enc, rng)
		if err != nil {
			return err
		}
		if tDec <= 0 {
			tDec = time.Microsecond
		}
		fprintf(w, "%-10s", sizeName(kb))
		for _, p := range lossGrid {
			blocks := maxBlocksFor(K, p, trials, simRng)
			blockK := K / blocks
			bd, err := measureBlock(blockK)
			if err != nil {
				return err
			}
			interleaved := time.Duration(blocks) * bd
			fprintf(w, " %-12.1f", float64(interleaved)/float64(tDec))
		}
		fprintf(w, "   (blocks at p=0.5: %d)\n", maxBlocksFor(K, 0.5, trials, simRng))
	}
	return nil
}

// tornadoDecodability builds a per-receiver decodability factory for the
// population simulations: done when distinct receptions reach (1+eps)k
// with eps drawn from the variant's real measured overhead distribution.
func tornadoDecodability(p tornado.Params, k, n int, seed int64) (func(rng *netsim.RNG) netsim.Decodability, error) {
	cdf, err := overheadCDF(p, k, seed)
	if err != nil {
		return nil, err
	}
	return func(rng *netsim.RNG) netsim.Decodability {
		eps := cdf.Sample(rng.Float64())
		need := int(float64(k) * (1 + eps))
		if need > n {
			need = n
		}
		if need < 1 {
			need = 1
		}
		return &netsim.ThresholdDecoder{NTotal: n, Need: need}
	}, nil
}

// receiverCounts is Figure 4's x axis.
var receiverCounts = []int{1, 10, 100, 1000, 10000}

// Fig4 regenerates reception efficiency vs number of receivers for a 1MB
// file at p = 0.1 and 0.5: Tornado A vs interleaved block sizes 50 and 20.
// The average-case efficiency is the leftmost point; worst-of-R uses order
// statistics over an i.i.d. receiver sample (equivalent in expectation to
// the paper's average of 100 experiments per set size).
func Fig4(w io.Writer, o Options) error {
	k := 1024 // 1MB / 1KB
	n := 2 * k
	sample := o.trials(1000)
	tdFactory, err := tornadoDecodability(tornado.A(), k, n, o.Seed)
	if err != nil {
		return err
	}
	for _, p := range []float64{0.1, 0.5} {
		fprintf(w, "Figure 4: Reception efficiency, 1MB file, p = %.1f\n", p)
		type curve struct {
			name string
			mk   func(rng *netsim.RNG) netsim.Decodability
		}
		curves := []curve{
			{"Tornado A", tdFactory},
			{"Interleaved k=50", func(*netsim.RNG) netsim.Decodability {
				blocks := k / 50
				return netsim.NewBlockDecoder(2*50*blocks, blocks, 50)
			}},
			{"Interleaved k=20", func(*netsim.RNG) netsim.Decodability {
				blocks := k / 20
				return netsim.NewBlockDecoder(2*20*blocks, blocks, 20)
			}},
		}
		for _, c := range curves {
			effs := netsim.PopulationParallel(sample, k, c.mk, func(rng *netsim.RNG) netsim.LossProcess {
				return &netsim.Bernoulli{P: p, Rng: rng}
			}, nil, o.Seed+11)
			fprintf(w, "  %-18s avg=%.3f  worst-of-R:", c.name, stats.Summarize(effs).Mean)
			for _, r := range receiverCounts {
				fprintf(w, " R=%d:%.3f", r, netsim.WorstOfR(effs, r))
			}
			fprintf(w, "\n")
		}
	}
	return nil
}

// Fig5 regenerates reception efficiency vs file size with 500 receivers at
// p = 0.1 and 0.5 (average and minimum across the population).
func Fig5(w io.Writer, o Options) error {
	sizes := o.sizesKB()
	if !o.Full {
		sizes = []int{100, 250, 1024, 2048}
	} else {
		sizes = append([]int{100}, sizes...)
	}
	receivers := 500
	sample := o.trials(600)
	for _, p := range []float64{0.1, 0.5} {
		fprintf(w, "Figure 5: Reception efficiency vs file size, 500 receivers, p = %.1f\n", p)
		fprintf(w, "  %-10s %-22s %-22s %-22s\n", "SIZE", "TornadoA avg/min", "Intl k=50 avg/min", "Intl k=20 avg/min")
		for _, kb := range sizes {
			k := kb
			n := 2 * k
			td, err := tornadoDecodability(tornado.A(), k, n, o.Seed)
			if err != nil {
				return err
			}
			row := fmt.Sprintf("  %-10s", sizeName(kb))
			factories := []func(rng *netsim.RNG) netsim.Decodability{
				td,
				func(*netsim.RNG) netsim.Decodability {
					bk := 50
					if bk > k {
						bk = k
					}
					blocks := (k + bk - 1) / bk
					return netsim.NewBlockDecoder(2*bk*blocks, blocks, bk)
				},
				func(*netsim.RNG) netsim.Decodability {
					blocks := k / 20
					return netsim.NewBlockDecoder(2*20*blocks, blocks, 20)
				},
			}
			for _, mk := range factories {
				effs := netsim.PopulationParallel(sample, k, mk, func(rng *netsim.RNG) netsim.LossProcess {
					return &netsim.Bernoulli{P: p, Rng: rng}
				}, nil, o.Seed+13)
				row += fmt.Sprintf(" %8.3f/%-13.3f", stats.Summarize(effs).Mean, netsim.WorstOfR(effs, receivers))
			}
			fprintf(w, "%s\n", row)
		}
	}
	return nil
}

// Fig6 regenerates the trace-driven comparison: 120 receivers replaying
// synthetic MBone-style traces (mean loss ≈ 18%, bursty, heterogeneous;
// see DESIGN.md for the substitution), average reception efficiency vs
// file size.
func Fig6(w io.Writer, o Options) error {
	sizes := []int{100, 250, 1024, 2048}
	if o.Full {
		sizes = []int{100, 250, 1024, 4096, 16384}
	}
	gp := trace.DefaultGenParams()
	gp.Seed = o.Seed
	traces := trace.Generate(gp)
	fprintf(w, "Figure 6: Trace-driven reception efficiency (%d receivers, mean loss %.3f)\n",
		len(traces), trace.MeanLoss(traces))
	fprintf(w, "  %-10s %-12s %-12s %-12s\n", "SIZE", "TornadoA", "Intl k=50", "Intl k=20")
	rng := netsim.NewRNG(uint64(o.Seed + 17))
	for _, kb := range sizes {
		k := kb
		n := 2 * k
		td, err := tornadoDecodability(tornado.A(), k, n, o.Seed)
		if err != nil {
			return err
		}
		factories := []func(rng *netsim.RNG) netsim.Decodability{
			td,
			func(*netsim.RNG) netsim.Decodability {
				blocks := (k + 49) / 50
				return netsim.NewBlockDecoder(2*50*blocks, blocks, 50)
			},
			func(*netsim.RNG) netsim.Decodability {
				blocks := k / 20
				return netsim.NewBlockDecoder(2*20*blocks, blocks, 20)
			},
		}
		row := fmt.Sprintf("  %-10s", sizeName(kb))
		for _, mk := range factories {
			sum := 0.0
			for _, tr := range traces {
				dec := mk(rng)
				loss := tr.Replay(rng.Intn(len(tr.Lost)))
				r := netsim.Carousel(dec, loss, nil, rng, 0)
				sum += r.Efficiency(k)
			}
			row += fmt.Sprintf(" %-12.3f", sum/float64(len(traces)))
		}
		fprintf(w, "%s\n", row)
	}
	return nil
}
