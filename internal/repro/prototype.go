package repro

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/transport"
)

// Fig8 regenerates the prototype measurements: reception efficiency
// components (ηd distinctness, ηc coding, η total) versus packet loss, for
// the single-layer protocol and for the 4-layer layered protocol with
// congestion control. The paper ran this between Berkeley, CMU and Cornell;
// we run the same server and client engines over the in-process lossy
// multicast substrate (see DESIGN.md for the substitution).
func Fig8(w io.Writer, o Options) error {
	fileKB := 512
	if o.Full {
		fileKB = 2048 // the paper's ~2MB QuickTime clip
	}
	rng := rand.New(rand.NewSource(o.Seed + 19))
	data := make([]byte, fileKB*1024)
	rng.Read(data)
	lossRng := netsim.NewRNG(uint64(o.Seed + 19))

	run := func(layers int, p float64, startLevel int) (loss, eta, etaC, etaD float64, err error) {
		cfg := core.DefaultConfig()
		cfg.Layers = layers
		cfg.SPInterval = 16
		sess, err := core.NewSession(data, cfg)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		bus := transport.NewBus(layers)
		var bc *transport.BusClient
		eng, err := client.New(sess.Info(), startLevel, func(level int) { bc.SetLevel(level) })
		if err != nil {
			return 0, 0, 0, 0, err
		}
		bc = bus.NewClient(startLevel, &netsim.Bernoulli{P: p, Rng: lossRng}, func(_ int, pkt []byte) {
			eng.HandlePacket(pkt)
		})
		defer bc.Close()
		srv := server.New(sess, bus)
		maxSteps := 400 * sess.Codec().N()
		for steps := 0; !eng.Done(); steps++ {
			if err := srv.Step(); err != nil {
				return 0, 0, 0, 0, err
			}
			if steps > maxSteps {
				return 0, 0, 0, 0, fmt.Errorf("fig8: download did not complete at p=%.2f", p)
			}
		}
		if _, err := eng.File(); err != nil {
			return 0, 0, 0, 0, err
		}
		eta, etaC, etaD = eng.Efficiency()
		return eng.MeasuredLoss(), eta, etaC, etaD, nil
	}

	fprintf(w, "Figure 8 (single layer): file=%dKB\n", fileKB)
	fprintf(w, "  %-10s %-10s %-10s %-10s %-10s\n", "inj.loss", "meas.loss", "eta_d", "eta_c", "eta")
	for _, p := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7} {
		loss, eta, etaC, etaD, err := run(1, p, 0)
		if err != nil {
			return err
		}
		fprintf(w, "  %-10.2f %-10.3f %-10.3f %-10.3f %-10.3f\n", p, loss, etaD, etaC, eta)
	}

	fprintf(w, "Figure 8 (4 layers, congestion-controlled): file=%dKB\n", fileKB)
	fprintf(w, "  %-10s %-10s %-10s %-10s %-10s\n", "inj.loss", "meas.loss", "eta_d", "eta_c", "eta")
	for _, p := range []float64{0, 0.05, 0.13, 0.2, 0.3, 0.4, 0.5} {
		loss, eta, etaC, etaD, err := run(4, p, 2)
		if err != nil {
			return err
		}
		fprintf(w, "  %-10.2f %-10.3f %-10.3f %-10.3f %-10.3f\n", p, loss, etaD, etaC, eta)
	}
	return nil
}
