package repro

import (
	"fmt"
	"io"

	"repro/internal/sched"
)

// Table5 prints the packet transmission scheme for 4 layers over 8 rounds
// (the paper's Table 5) and the round-4 per-slot layer assignment of
// Figure 7. The unit tests in internal/sched verify this output matches
// the paper cell by cell, and that the One Level Property holds for every
// layer count.
func Table5(w io.Writer, o Options) error {
	s, err := sched.New(4)
	if err != nil {
		return err
	}
	fprintf(w, "Table 5: Packet transmission scheme for 4 layers (block-relative slots)\n")
	fprintf(w, "%-6s %-10s", "Layer", "BW/round")
	for rd := 1; rd <= 8; rd++ {
		fprintf(w, " Rd%-6d", rd)
	}
	fprintf(w, "\n")
	for layer := 3; layer >= 0; layer-- {
		fprintf(w, "%-6d %-10d", layer, s.SlotsPerRound(layer))
		for rd := 0; rd < 8; rd++ {
			slots := s.Slots(layer, rd)
			cell := ""
			if len(slots) == 1 {
				cell = fmt.Sprintf("%d", slots[0])
			} else {
				cell = fmt.Sprintf("%d-%d", slots[0], slots[len(slots)-1])
			}
			fprintf(w, " %-8s", cell)
		}
		fprintf(w, "\n")
	}
	fprintf(w, "\nFigure 7: round 4 send pattern (slot -> layer): ")
	owner := map[int]int{}
	for layer := 0; layer < 4; layer++ {
		for _, slot := range s.Slots(layer, 3) {
			owner[slot] = layer
		}
	}
	for slot := 0; slot < s.BlockSize(); slot++ {
		fprintf(w, "%d:%d ", slot, owner[slot])
	}
	fprintf(w, "\n")
	return nil
}
