// Package repro regenerates every table and figure of the paper's
// evaluation (Tables 1-5, Figures 2, 4-8). Each experiment prints the same
// rows or series the paper reports; EXPERIMENTS.md records paper-vs-measured
// values. Experiments accept an Options scale so the full grid (minutes to
// hours, like the original) and a quick CI-sized variant share one code
// path.
package repro

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/code"
	"repro/internal/rs"
	"repro/internal/stats"
	"repro/internal/tornado"
)

// Options scales the experiments.
type Options struct {
	// Full selects the paper's complete parameter grid; otherwise a
	// reduced grid keeps runtimes in seconds.
	Full bool
	// Seed makes every experiment deterministic.
	Seed int64
	// Trials overrides per-point trial counts (0 = experiment default).
	Trials int
}

// DefaultOptions returns the quick profile.
func DefaultOptions() Options { return Options{Seed: 1998} }

const packetLen = 1024 // the paper's P = 1KB for all code benchmarks

// sizesKB returns the file-size grid (in KB). The paper uses 250KB..16MB.
func (o Options) sizesKB() []int {
	if o.Full {
		return []int{250, 500, 1024, 2048, 4096, 8192, 16384}
	}
	return []int{250, 500, 1024}
}

func (o Options) trials(def int) int {
	if o.Trials > 0 {
		return o.Trials
	}
	return def
}

// mkSource builds k deterministic pseudo-random packets.
func mkSource(rng *rand.Rand, k, pl int) [][]byte {
	buf := make([]byte, k*pl)
	rng.Read(buf)
	out := make([][]byte, k)
	for i := range out {
		out[i] = buf[i*pl : (i+1)*pl]
	}
	return out
}

// overheadSamples measures the reception-overhead distribution of a
// Tornado codec with the real decoder: fraction of extra packets (beyond
// k) needed when packets arrive in a uniformly random order.
func overheadSamples(p tornado.Params, k, trials int, seed int64) ([]float64, error) {
	c, err := tornado.New(p, k, 2*k, 16, seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 1))
	src := mkSource(rng, k, 16)
	enc, err := c.Encode(src)
	if err != nil {
		return nil, err
	}
	out := make([]float64, trials)
	for t := 0; t < trials; t++ {
		d := c.NewDecoder()
		used := 0
		for _, i := range rng.Perm(c.N()) {
			used++
			if done, err := d.Add(i, enc[i]); err != nil {
				return nil, err
			} else if done {
				break
			}
		}
		out[t] = float64(used)/float64(k) - 1
	}
	return out, nil
}

// overheadCDF caches overhead distributions per (variant, k).
var overheadCache = map[string]*stats.CDF{}

func overheadCDF(p tornado.Params, k int, seed int64) (*stats.CDF, error) {
	key := fmt.Sprintf("%s/%d", p.Variant, k)
	if c, ok := overheadCache[key]; ok {
		return c, nil
	}
	// Fewer trials at large k keep the decoder sampling tractable; the
	// distributions are tight (see Figure 2), so modest samples suffice.
	trials := 1 << 21 / k
	if trials < 16 {
		trials = 16
	}
	if trials > 120 {
		trials = 120
	}
	samples, err := overheadSamples(p, k, trials, seed)
	if err != nil {
		return nil, err
	}
	c := stats.NewCDF(samples)
	overheadCache[key] = c
	return c, nil
}

// timeIt runs f once and returns the wall-clock duration.
func timeIt(f func() error) (time.Duration, error) {
	start := time.Now()
	err := f()
	return time.Since(start), err
}

// encodeTime measures one Encode call of a freshly built codec.
func encodeTime(c code.Codec, src [][]byte) (time.Duration, error) {
	return timeIt(func() error {
		_, err := c.Encode(src)
		return err
	})
}

// rsDecodeTime measures the Table 3 protocol for an RS codec: k/2 source
// packets and k/2 repair packets are received; the reconstruction of the
// missing half is timed.
func rsDecodeTime(c code.Codec, enc [][]byte, rng *rand.Rand) (time.Duration, error) {
	k := c.K()
	d := c.NewDecoder()
	srcIdx := rng.Perm(k)[: k/2 : k/2]
	repIdx := rng.Perm(c.N() - k)[: k-k/2 : k-k/2]
	for _, i := range srcIdx {
		if _, err := d.Add(i, enc[i]); err != nil {
			return 0, err
		}
	}
	for _, i := range repIdx {
		if _, err := d.Add(k+i, enc[k+i]); err != nil {
			return 0, err
		}
	}
	if !d.Done() {
		return 0, fmt.Errorf("repro: RS decoder not ready at k packets")
	}
	return timeIt(func() error {
		_, err := d.Source()
		return err
	})
}

// tornadoDecodeTime measures a Tornado decode: packets stream in random
// order and the full incremental decode (propagation + eliminations) is
// timed until completion.
func tornadoDecodeTime(c code.Codec, enc [][]byte, rng *rand.Rand) (time.Duration, error) {
	d := c.NewDecoder()
	order := rng.Perm(c.N())
	var dur time.Duration
	start := time.Now()
	for _, i := range order {
		done, err := d.Add(i, enc[i])
		if err != nil {
			return 0, err
		}
		if done {
			break
		}
	}
	dur = time.Since(start)
	if !d.Done() {
		return 0, fmt.Errorf("repro: tornado decode incomplete")
	}
	return dur, nil
}

func newTornadoA(k int, seed int64) (code.Codec, error) {
	return tornado.New(tornado.A(), k, 2*k, packetLen, seed)
}

func newTornadoB(k int, seed int64) (code.Codec, error) {
	return tornado.New(tornado.B(), k, 2*k, packetLen, seed)
}

func newCauchy(k int) (code.Codec, error) { return rs.NewCauchy(k, 2*k, packetLen) }

func newVandermonde(k int) (code.Codec, error) { return rs.NewVandermonde(k, 2*k, packetLen) }

func fmtDur(d time.Duration) string {
	switch {
	case d <= 0:
		return "-"
	case d < time.Millisecond:
		return fmt.Sprintf("%.3fms", float64(d.Microseconds())/1000)
	case d < time.Second:
		return fmt.Sprintf("%.0fms", float64(d.Milliseconds()))
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}

// tornadoParamsA is a test seam exposing the A parameter set.
func tornadoParamsA() tornado.Params { return tornado.A() }
