// Package service is the multi-session fountain server core: a registry of
// concurrent sessions keyed by the 12-byte-header session id, one shared
// pacing scheduler (a deadline min-heap per shard worker, GOMAXPROCS
// shards) driving every session's core.Carousel, a shared bounded cache
// for lazily encoded repair blocks, and the control handler that answers
// hello and catalog probes.
//
// This is the shape the paper argues for in §1/§7 — a fountain server is
// stateless per receiver, so one process can carry many files for many
// heterogeneous receiver populations at once; all per-receiver state lives
// at the receivers. The service adds only per-session state: a carousel
// position, a rate, and one heap entry in the scheduler — no per-session
// goroutine, so 1 and 10,000 sessions cost the same goroutine count.
//
// The send path is zero-copy: rounds are built packet-by-packet into
// pooled buffers (transport.BufPool), batched per layer, and handed to the
// unified transport.Sender batch interface — identical code whether the
// transport is the in-process Bus, the real UDP socket, or a test sink.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/evtrace"
	"repro/internal/metrics"
	"repro/internal/proto"
	"repro/internal/server"
	"repro/internal/transport"
)

// Config tunes a service instance.
type Config struct {
	// CacheBytes bounds the shared lazy-encoding block cache
	// (0 = 64 MiB). Sessions whose codec supports range encoding keep only
	// their source packets resident plus at most this many repair bytes in
	// total, instead of full stretch-factor-n materialization each.
	CacheBytes int64
	// BaseRate is the default base-layer pacing in packets/second for
	// sessions added without an explicit rate (0 = 512).
	BaseRate int
	// Shards is the number of scheduler worker goroutines sharing the
	// paced sessions (0 = GOMAXPROCS). The shard count bounds send-path
	// parallelism; it does not grow with the session count.
	Shards int
	// MaxSessions caps the registry (0 = unlimited): registrations beyond
	// the cap are refused with ErrSessionLimit. A fountain server's
	// per-session cost is small but not zero (a heap entry, cached blocks),
	// so an operator can bound it.
	MaxSessions int
	// Trace attaches a flight recorder to the send path: scheduler slot
	// events, round starts and tx-batch flushes are recorded through it
	// (nil = no tracing, at the cost of one predictable branch per site).
	// Scheduler shard i emits through recorder shard i; the manual-emission
	// path (EmitRound) emits through shard 0.
	Trace *evtrace.Recorder
	// TraceID is the source id stamped on this service's trace events
	// (Event.Src) — harnesses tag each mirror with its index; a standalone
	// server leaves it 0.
	TraceID uint16
}

// ErrSessionLimit is returned by Add/AddData when Config.MaxSessions is
// reached — admission control, not a fault.
var ErrSessionLimit = errors.New("service: session limit reached")

// ErrDraining is returned by Add/AddData after Drain began: a draining
// service finishes what it carries but admits nothing new.
var ErrDraining = errors.New("service: draining")

// Stats is a snapshot of the service counters.
type Stats struct {
	Sessions    int    // registered sessions
	Shards      int    // scheduler worker goroutines
	PacketsSent uint64 // data packets handed to the transport
	BytesSent   uint64 // data bytes handed to the transport
	// SendErrors counts transport send failures: dropped packets on the
	// per-packet path, failure events (at least one errored write in a
	// batch — batch transports isolate errors per subscriber, so the rest
	// of the fan-out was still attempted) on the batch path.
	SendErrors uint64
	// Scheduler health: total carousel rounds emitted, rounds emitted as
	// catch-up (the session was behind its pacing deadline), and times a
	// shard dropped remaining pacing debt after hitting the per-pop
	// catch-up cap. Rising catch-up/debt counts mean the configured rates
	// exceed what the shards can emit.
	RoundsEmitted  uint64
	CatchupRounds  uint64
	DebtDropped    uint64
	Draining       bool
	CacheUsed      int64 // bytes currently held by the shared block cache
	CachePeak      int64 // high-water mark of the shared block cache
	CacheLookups   uint64
	CacheHits      uint64
	CacheMisses    uint64
	CacheEvictions uint64
}

type entry struct {
	sess  *core.Session
	rate  int
	phase int
	car   *core.Carousel // the scheduler-driven carousel (nil for manual)
	ev    *schedEvent    // heap entry (nil for manual)

	// emitMu serializes this session's round emission against removal:
	// a worker holds it while emitting, Remove sets stopped under it.
	emitMu  sync.Mutex
	stopped bool
}

// Service runs any number of fountain sessions over one transport.
type Service struct {
	cfg Config
	tx  server.Sender // as handed in
	// txBatch is tx when it supports native batching (Bus, UDPServer),
	// nil otherwise — plain senders take the per-packet counting path,
	// which isolates and counts errors packet by packet.
	txBatch transport.Sender
	pool    *transport.BufPool
	cache   *core.BlockCache
	sched   *scheduler
	ctx     context.Context
	cancel  context.CancelFunc

	mu       sync.Mutex
	sessions map[uint16]*entry
	closed   bool

	// manualMu guards the emitter shared by EmitRound callers (manual
	// sessions are typically driven from one virtual-clock pump, so this
	// lock is uncontended).
	manualMu sync.Mutex
	manualEm emitter

	packets    atomic.Uint64
	bytes      atomic.Uint64
	sendErrors atomic.Uint64
	draining   atomic.Bool

	// Scheduler counters (see Stats); metrics.Counter so the registry can
	// expose them directly — one atomic add on the emit path each.
	rounds        metrics.Counter
	catchupRounds metrics.Counter
	debtDropped   metrics.Counter

	reg *metrics.Registry
}

// New creates a service transmitting on tx. Any Sender works; transports
// implementing transport.Sender (Bus, UDPServer) get whole per-layer
// batches per call, everything else gets a per-packet fallback loop.
// Close releases the service.
func New(tx server.Sender, cfg Config) *Service {
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 64 << 20
	}
	if cfg.BaseRate <= 0 {
		cfg.BaseRate = 512
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:      cfg,
		tx:       tx,
		pool:     transport.NewBufPool(),
		cache:    core.NewBlockCache(cfg.CacheBytes),
		ctx:      ctx,
		cancel:   cancel,
		sessions: make(map[uint16]*entry),
	}
	if bs, ok := tx.(transport.Sender); ok {
		s.txBatch = bs
	}
	s.manualEm = newEmitter(s, cfg.Trace.Shard(0))
	s.sched = newScheduler(s, ctx, cfg.Shards)
	s.reg = metrics.NewRegistry()
	s.registerMetrics(s.reg)
	return s
}

// Metrics returns the service's scrape registry: every series below plus
// whatever the caller registers on top (transport counters, build info).
// Mount Registry.Handler on an HTTP mux for a Prometheus /metrics endpoint.
func (s *Service) Metrics() *metrics.Registry { return s.reg }

// registerMetrics wires the service's existing counters to a registry as
// func-backed series — nothing on the emit path changes, the scraper reads
// the same atomics (or takes the same short locks Stats does).
func (s *Service) registerMetrics(r *metrics.Registry) {
	r.CounterFunc("fountain_packets_sent_total",
		"data packets handed to the transport", s.packets.Load)
	r.CounterFunc("fountain_bytes_sent_total",
		"data bytes handed to the transport", s.bytes.Load)
	r.CounterFunc("fountain_send_errors_total",
		"transport send failures (dropped packets or batch failure events)", s.sendErrors.Load)
	r.AddCounter("fountain_sched_rounds_total",
		"carousel rounds emitted", &s.rounds)
	r.AddCounter("fountain_sched_catchup_rounds_total",
		"rounds emitted while behind the pacing deadline", &s.catchupRounds)
	r.AddCounter("fountain_sched_debt_dropped_total",
		"times a shard dropped pacing debt at the per-pop catch-up cap", &s.debtDropped)
	r.GaugeFunc("fountain_sessions", "registered sessions", func() float64 {
		s.mu.Lock()
		n := len(s.sessions)
		s.mu.Unlock()
		return float64(n)
	})
	r.GaugeFunc("fountain_scheduler_shards", "scheduler worker goroutines",
		func() float64 { return float64(len(s.sched.shards)) })
	r.GaugeFunc("fountain_draining", "1 once Drain has begun", func() float64 {
		if s.draining.Load() {
			return 1
		}
		return 0
	})
	for i, sh := range s.sched.shards {
		sh := sh
		r.GaugeFunc(metrics.Label("fountain_sched_backlog", "shard", strconv.Itoa(i)),
			"paced sessions queued on the shard's deadline heap",
			func() float64 {
				sh.mu.Lock()
				n := len(sh.heap)
				sh.mu.Unlock()
				return float64(n)
			})
	}
	r.GaugeFunc("fountain_cache_used_bytes", "charged bytes resident in the block cache",
		func() float64 { return float64(s.cache.Used()) })
	r.GaugeFunc("fountain_cache_peak_bytes", "high-water mark of charged cache bytes",
		func() float64 { return float64(s.cache.Peak()) })
	r.GaugeFunc("fountain_cache_cap_bytes", "configured cache byte budget",
		func() float64 { return float64(s.cache.Cap()) })
	r.CounterFunc("fountain_cache_lookups_total", "combined block-cache probes",
		func() uint64 { return s.cache.StatsSnapshot().Lookups })
	r.CounterFunc("fountain_cache_hits_total", "block-cache hits",
		func() uint64 { return s.cache.StatsSnapshot().Hits })
	r.CounterFunc("fountain_cache_misses_total", "block-cache misses",
		func() uint64 { return s.cache.StatsSnapshot().Misses })
	r.CounterFunc("fountain_cache_evictions_total", "blocks evicted to hold the byte budget",
		func() uint64 { return s.cache.StatsSnapshot().Evictions })
	r.CounterFunc("fountain_cache_evicted_bytes_total", "charged bytes reclaimed by evictions",
		func() uint64 { return s.cache.StatsSnapshot().EvictedBytes })
}

// Cache exposes the shared block cache (for inspection and tests).
func (s *Service) Cache() *core.BlockCache { return s.cache }

// AddData encodes data under cfg — lazily, against the shared cache, when
// the codec supports it — registers the session under cfg.Session, and
// schedules its paced emission. rate <= 0 uses the service default.
func (s *Service) AddData(data []byte, cfg core.Config, rate int) (*core.Session, error) {
	return s.AddDataPhased(data, cfg, rate, 0)
}

// AddDataPhased is AddData with a carousel phase offset (see AddPhased).
func (s *Service) AddDataPhased(data []byte, cfg core.Config, rate, phase int) (*core.Session, error) {
	sess, err := core.NewSessionCached(data, cfg, s.cache)
	if err != nil {
		return nil, err
	}
	if err := s.AddPhased(sess, rate, phase); err != nil {
		return nil, err
	}
	return sess, nil
}

// Add registers an existing session and schedules its paced emission.
// The session id (Config().Session) must be unused and must not be the
// transport wildcard.
func (s *Service) Add(sess *core.Session, rate int) error {
	return s.AddPhased(sess, rate, 0)
}

// AddPhased is Add with a carousel phase offset: the session's carousel
// starts transmitting at the given round instead of round 0, and the phase
// is advertised in the session's control descriptor. Mirrors of a shared
// encoding register the same session at staggered phases (§8), so a
// multi-source receiver sees mostly-disjoint packets early on.
func (s *Service) AddPhased(sess *core.Session, rate, phase int) error {
	_, err := s.register(sess, rate, phase, false)
	return err
}

// AddManual registers a session — visible to control/catalog like any
// other, phase advertised — but schedules no emission: the caller drives
// the returned carousel (through EmitRound, which runs the same pooled
// batched send path the scheduler uses, or Sender() for per-packet
// emission). This is the virtual-time shape: deterministic experiments
// and the loss-injection harness step mirrors on a virtual clock instead
// of real pacing.
func (s *Service) AddManual(sess *core.Session, rate, phase int) (*core.Carousel, error) {
	if _, err := s.register(sess, rate, phase, true); err != nil {
		return nil, err
	}
	return core.NewCarouselAt(sess, phase), nil
}

// register validates and inserts a fully initialized registry entry, and
// (unless manual) schedules its paced emission. It holds the registry lock
// throughout so a concurrent Remove can never observe a half-built entry.
func (s *Service) register(sess *core.Session, rate, phase int, manual bool) (*entry, error) {
	if rate <= 0 {
		rate = s.cfg.BaseRate
	}
	if phase < 0 {
		phase = 0 // keep the advertised phase equal to the carousel's clamp
	}
	id := sess.Config().Session
	if id == transport.SessionAny {
		return nil, fmt.Errorf("service: session id %#x is the wildcard id", id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("service: closed")
	}
	if s.draining.Load() {
		return nil, ErrDraining
	}
	if s.cfg.MaxSessions > 0 && len(s.sessions) >= s.cfg.MaxSessions {
		return nil, ErrSessionLimit
	}
	if _, dup := s.sessions[id]; dup {
		return nil, fmt.Errorf("service: session id %#x already registered", id)
	}
	e := &entry{sess: sess, rate: rate, phase: phase}
	if !manual {
		e.car = core.NewCarouselAt(sess, phase)
		s.sched.add(e, server.PaceInterval(sess, rate))
	}
	s.sessions[id] = e
	return e, nil
}

// Sender returns the service's counting sender: packets emitted through it
// reach the service transport and move the Stats counters. It implements
// the unified transport.Sender, so manual-session drivers can emit per
// packet or per batch and account traffic the same way the scheduler does.
func (s *Service) Sender() server.Sender { return countingSender{s} }

// EmitRound emits one round of a manual session's carousel through the
// pooled, batched send path — byte-for-byte the code the scheduler's shard
// workers run, so virtual-time harnesses exercise the real emission
// machinery and their determinism tests oracle it.
func (s *Service) EmitRound(car *core.Carousel) error {
	s.manualMu.Lock()
	defer s.manualMu.Unlock()
	s.manualEm.emitRound(car)
	return nil
}

// countingSender forwards to the service transport, counting traffic.
// Transport errors are counted and the packets dropped — a fountain
// retransmits everything eventually, so a lost send is indistinguishable
// from network loss and must not kill the session's emission.
type countingSender struct{ s *Service }

func (c countingSender) Send(layer int, pkt []byte) error {
	if err := c.s.tx.Send(layer, pkt); err != nil {
		c.s.sendErrors.Add(1)
		return nil
	}
	c.s.packets.Add(1)
	c.s.bytes.Add(uint64(len(pkt)))
	return nil
}

func (c countingSender) SendBatch(layer int, pkts [][]byte) error {
	if c.s.txBatch == nil {
		// Plain per-packet transport: send, swallow and count errors
		// packet by packet, exactly as the per-goroutine sender did.
		for _, pkt := range pkts {
			c.Send(layer, pkt)
		}
		return nil
	}
	// Batch transports isolate errors internally (a failing subscriber
	// forfeits only its own writes — see transport.UDPServer.SendBatch)
	// and report only that *something* failed, so the whole batch counts
	// as handed to the transport and the error as one failure event.
	if err := c.s.txBatch.SendBatch(layer, pkts); err != nil {
		c.s.sendErrors.Add(1)
	}
	c.s.packets.Add(uint64(len(pkts)))
	var nb uint64
	for _, p := range pkts {
		nb += uint64(len(p))
	}
	c.s.bytes.Add(nb)
	return nil
}

// Remove stops a session's paced emission — waiting out any in-flight
// round — and drops the session's blocks from the shared cache.
func (s *Service) Remove(id uint16) error {
	s.mu.Lock()
	e, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("service: unknown session %#x", id)
	}
	s.sched.remove(e)
	s.cache.Drop(e.sess)
	return nil
}

// Lookup returns the control descriptor of one session.
func (s *Service) Lookup(id uint16) (proto.SessionInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.sessions[id]
	if !ok {
		return proto.SessionInfo{}, false
	}
	return s.describe(e), true
}

func (s *Service) describe(e *entry) proto.SessionInfo {
	info := e.sess.Info()
	info.BaseRate = uint32(e.rate)
	info.Phase = uint32(e.phase)
	return info
}

// Catalog returns the descriptors of all registered sessions, ordered by
// session id (deterministic announce order).
func (s *Service) Catalog() []proto.SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]proto.SessionInfo, 0, len(s.sessions))
	for _, e := range s.sessions {
		out = append(out, s.describe(e))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Session < out[j].Session })
	return out
}

// HandleControl answers one control datagram (nil = no reply), in the shape
// transport.ServeControlFunc expects: catalog requests get the announce
// message; a hello for a specific session gets that session's descriptor; a
// bare legacy hello gets the lowest-id session. A hello for a session the
// service does not carry gets a NAK, so clients can tell a wrong id from a
// dead server.
func (s *Service) HandleControl(req []byte) []byte {
	if proto.IsCatalogRequest(req) {
		return proto.MarshalCatalog(s.Catalog())
	}
	if proto.IsStatsRequest(req) {
		return s.StatsSnapshot().Marshal()
	}
	if id, specific, ok := proto.HelloSession(req); ok {
		if specific {
			if info, found := s.Lookup(id); found {
				return info.Marshal()
			}
			return proto.MarshalNak(id)
		}
		if cat := s.Catalog(); len(cat) > 0 {
			return cat[0].Marshal()
		}
		return proto.MarshalNak(transport.SessionAny)
	}
	return nil
}

// StatsSnapshot builds the wire-format stats answer served to
// proto.IsStatsRequest probes: the service counters plus whatever traffic
// accounting the underlying transport exposes (zero for transports that
// keep none).
func (s *Service) StatsSnapshot() proto.StatsSnapshot {
	st := s.Stats()
	snap := proto.StatsSnapshot{
		Sessions:       uint32(st.Sessions),
		Shards:         uint32(st.Shards),
		PacketsSent:    st.PacketsSent,
		BytesSent:      st.BytesSent,
		SendErrors:     st.SendErrors,
		RoundsEmitted:  st.RoundsEmitted,
		CatchupRounds:  st.CatchupRounds,
		DebtDropped:    st.DebtDropped,
		CacheUsed:      uint64(st.CacheUsed),
		CachePeak:      uint64(st.CachePeak),
		CacheLookups:   st.CacheLookups,
		CacheHits:      st.CacheHits,
		CacheMisses:    st.CacheMisses,
		CacheEvictions: st.CacheEvictions,
	}
	if st.Draining {
		snap.Draining = 1
	}
	if sc, ok := s.tx.(interface{ SubscriberTotal() int }); ok {
		snap.Subscribers = uint32(sc.SubscriberTotal())
	}
	if tc, ok := s.tx.(interface{ Traffic() (uint64, uint64) }); ok {
		snap.TxPackets, snap.TxBytes = tc.Traffic()
	}
	return snap
}

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	n := len(s.sessions)
	s.mu.Unlock()
	cs := s.cache.StatsSnapshot()
	return Stats{
		Sessions:       n,
		Shards:         len(s.sched.shards),
		PacketsSent:    s.packets.Load(),
		BytesSent:      s.bytes.Load(),
		SendErrors:     s.sendErrors.Load(),
		RoundsEmitted:  s.rounds.Load(),
		CatchupRounds:  s.catchupRounds.Load(),
		DebtDropped:    s.debtDropped.Load(),
		Draining:       s.draining.Load(),
		CacheUsed:      cs.Used,
		CachePeak:      cs.Peak,
		CacheLookups:   cs.Lookups,
		CacheHits:      cs.Hits,
		CacheMisses:    cs.Misses,
		CacheEvictions: cs.Evictions,
	}
}

// Drain retires the service gracefully: admission stops immediately
// (further Add/AddData calls return ErrDraining), every round already in
// flight on a shard worker finishes emitting, and all shard workers are
// joined before Drain returns. The registry and control plane stay up —
// clients mid-download can still resolve descriptors — but no further data
// packets are paced out. Drain is idempotent and safe to call concurrently
// with Add, Remove, Close, and itself (shard done channels are closed, so
// every waiter is released).
func (s *Service) Drain() {
	s.draining.Store(true)
	s.cancel()
	for _, sh := range s.sched.shards {
		<-sh.done
	}
}

// Draining reports whether Drain has begun.
func (s *Service) Draining() bool { return s.draining.Load() }

// Close stops the scheduler and waits for every shard worker to exit. The
// service cannot be reused afterwards.
func (s *Service) Close() {
	s.mu.Lock()
	s.closed = true
	for id := range s.sessions {
		delete(s.sessions, id)
	}
	s.mu.Unlock()
	s.cancel()
	for _, sh := range s.sched.shards {
		<-sh.done
	}
}
