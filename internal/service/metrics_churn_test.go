package service

import (
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/proto"
	"repro/internal/transport"
)

// counterSeries are the monotone series the churn test watches. Gauges
// (sessions, backlog, cache_used) legitimately move both ways and are
// excluded.
var counterSeries = []string{
	"fountain_packets_sent_total",
	"fountain_bytes_sent_total",
	"fountain_sched_rounds_total",
	"fountain_cache_lookups_total",
	"fountain_cache_evictions_total",
}

func snapshotMap(reg *metrics.Registry) map[string]float64 {
	out := make(map[string]float64)
	for _, s := range reg.Snapshot() {
		out[s.Name] = s.Value
	}
	return out
}

// TestMetricsConsistentUnderChurn scrapes the registry, the Stats
// snapshot, and the control-plane stats message continuously while
// sessions churn, subscribers attach and detach, and a drain lands in the
// middle — the -race scenario for the whole observability surface. Every
// counter must be monotone across consecutive scrapes (a torn or
// double-counted read would show up as a dip), the cache lookup ledger
// must balance in every single snapshot, and the text exposition must
// stay serveable throughout.
func TestMetricsConsistentUnderChurn(t *testing.T) {
	bus := transport.NewBus(4)
	svc := New(bus, Config{BaseRate: 5000, Shards: 2})
	defer svc.Close()

	data := randBytes(61, 30_000)
	for id := uint16(1); id <= 3; id++ {
		if _, err := svc.AddData(data, sessionConfig(proto.CodecCauchy, id, 61), 0); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for svc.Stats().PacketsSent == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no emission before churn")
		}
		time.Sleep(time.Millisecond)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	fail := make(chan string, 16)
	report := func(msg string) {
		select {
		case fail <- msg:
		default:
		}
	}

	// Scraper 1: programmatic registry snapshots. Counters must be
	// monotone scrape over scrape. (Cross-series identities like the cache
	// ledger are NOT asserted here: a registry scrape reads each series
	// atomically but not the set as a whole, the standard Prometheus
	// semantics — the ledger is checked below on the single-lock
	// snapshots, where it must hold exactly.)
	wg.Add(1)
	go func() {
		defer wg.Done()
		prev := snapshotMap(svc.Metrics())
		for !stop.Load() {
			cur := snapshotMap(svc.Metrics())
			for _, name := range counterSeries {
				if cur[name] < prev[name] {
					report(name + " went backwards")
				}
			}
			prev = cur
		}
	}()
	// Scraper 2: the text exposition endpoint and the Stats snapshot.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last Stats
		for !stop.Load() {
			if _, err := svc.Metrics().WriteTo(io.Discard); err != nil {
				report("WriteTo errored: " + err.Error())
			}
			st := svc.Stats()
			if st.PacketsSent < last.PacketsSent || st.RoundsEmitted < last.RoundsEmitted {
				report("Stats counters went backwards")
			}
			if st.CacheHits+st.CacheMisses != st.CacheLookups {
				report("cache ledger unbalanced in Stats")
			}
			last = st
		}
	}()
	// Scraper 3: the control-plane stats message.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last proto.StatsSnapshot
		for !stop.Load() {
			snap, err := proto.ParseStats(svc.HandleControl(proto.MarshalStatsRequest()))
			if err != nil {
				report("control stats unparseable: " + err.Error())
				return
			}
			if snap.PacketsSent < last.PacketsSent || snap.CacheLookups < last.CacheLookups {
				report("control stats went backwards")
			}
			if snap.CacheHits+snap.CacheMisses != snap.CacheLookups {
				report("cache ledger unbalanced in control stats")
			}
			last = snap
		}
	}()
	// Session churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint16(0); !stop.Load(); i++ {
			id := 100 + i%8
			if _, err := svc.AddData(data, sessionConfig(proto.CodecCauchy, id, 61), 0); err == nil {
				svc.Remove(id)
			}
		}
	}()
	// Subscriber churn on the bus.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			c := bus.NewClient(3, nil, func(int, []byte) {})
			bus.SubscriberTotal()
			c.Close()
		}
	}()

	time.Sleep(50 * time.Millisecond)
	svc.Drain() // the drain lands mid-scrape; scrapers keep running
	time.Sleep(50 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Error(msg)
	}

	st := svc.Stats()
	if !st.Draining {
		t.Fatal("Stats does not report the drain")
	}
	snap, err := proto.ParseStats(svc.HandleControl(proto.MarshalStatsRequest()))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Draining != 1 {
		t.Fatal("control stats do not report the drain")
	}
	if snap.PacketsSent != st.PacketsSent {
		t.Fatalf("post-drain control stats (%d) disagree with Stats (%d)", snap.PacketsSent, st.PacketsSent)
	}
}
