package service

import (
	"bytes"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/proto"
)

// batchCapture is a batch-capable sink that copies every packet (pooled
// buffers are recycled after SendBatch returns) keyed by (session, layer).
type batchCapture struct {
	mu  sync.Mutex
	seq map[[2]uint16][][]byte
}

func newBatchCapture() *batchCapture {
	return &batchCapture{seq: make(map[[2]uint16][][]byte)}
}

func (c *batchCapture) Send(layer int, pkt []byte) error {
	return c.SendBatch(layer, [][]byte{pkt})
}

func (c *batchCapture) SendBatch(layer int, pkts [][]byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, pkt := range pkts {
		h, _, err := proto.ParseHeader(pkt)
		if err != nil {
			return err
		}
		key := [2]uint16{h.Session, uint16(layer)}
		c.seq[key] = append(c.seq[key], append([]byte(nil), pkt...))
	}
	return nil
}

func (c *batchCapture) minLen(session uint16, layers int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := -1
	for l := 0; l < layers; l++ {
		n := len(c.seq[[2]uint16{session, uint16(l)}])
		if m < 0 || n < m {
			m = n
		}
	}
	return m
}

// TestSchedulerEmissionOrderMatchesCarousel: per (session, layer), the
// scheduler's pooled, batched emission must be bit-identical to driving
// the session's carousel directly with the pre-refactor per-packet
// NextRound — same packets, same order, SP/burst flags included.
func TestSchedulerEmissionOrderMatchesCarousel(t *testing.T) {
	capt := newBatchCapture()
	svc := New(capt, Config{BaseRate: 50000, Shards: 3})
	defer svc.Close()

	type ses struct {
		id    uint16
		phase int
		sess  *core.Session
	}
	var sessions []ses
	for i, phase := range []int{0, 5, 12} {
		id := uint16(0x41 + i)
		cfg := sessionConfig(proto.CodecTornadoA, id, int64(100+i))
		sess, err := core.NewSession(randBytes(int64(i), 15_000), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.AddPhased(sess, 0, phase); err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, ses{id, phase, sess})
	}

	const wantPerLayer = 120
	deadline := time.Now().Add(20 * time.Second)
	for {
		done := true
		for _, s := range sessions {
			if capt.minLen(s.id, 4) < wantPerLayer {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("scheduler too slow to emit the comparison window")
		}
		time.Sleep(5 * time.Millisecond)
	}
	svc.Close()

	for _, s := range sessions {
		// Reference: the pre-refactor emission path, packet-at-a-time.
		ref := make(map[int][][]byte)
		car := core.NewCarouselAt(s.sess, s.phase)
		for rounds := 0; rounds < 4*wantPerLayer; rounds++ {
			err := car.NextRound(func(layer int, pkt []byte) error {
				ref[layer] = append(ref[layer], append([]byte(nil), pkt...))
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		for layer := 0; layer < 4; layer++ {
			got := capt.seq[[2]uint16{s.id, uint16(layer)}]
			if len(got) < wantPerLayer {
				t.Fatalf("session %#x layer %d captured only %d packets", s.id, layer, len(got))
			}
			for i := 0; i < len(got) && i < len(ref[layer]); i++ {
				if !bytes.Equal(got[i], ref[layer][i]) {
					t.Fatalf("session %#x layer %d packet %d diverges from the carousel oracle",
						s.id, layer, i)
				}
			}
		}
	}
}

// nullBatchSink counts packets without retaining or allocating.
type nullBatchSink struct{ packets atomic.Uint64 }

func (n *nullBatchSink) Send(layer int, pkt []byte) error { n.packets.Add(1); return nil }

func (n *nullBatchSink) SendBatch(layer int, pkts [][]byte) error {
	n.packets.Add(uint64(len(pkts)))
	return nil
}

// TestConcurrentAddRemoveStats hammers the registry from many goroutines
// while the scheduler is emitting (run under -race in CI): concurrent
// Add/Remove/Stats/Lookup/Catalog must stay consistent, every Remove must
// win against in-flight emission, and Close must join all shard workers —
// observed as the packet counter freezing afterwards.
func TestConcurrentAddRemoveStats(t *testing.T) {
	sink := &nullBatchSink{}
	svc := New(sink, Config{BaseRate: 100000, Shards: 4})

	// A stable base session so emission never goes idle.
	baseCfg := sessionConfig(proto.CodecTornadoA, 0x1000, 1)
	base, err := core.NewSession(randBytes(1, 10_000), baseCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Add(base, 0); err != nil {
		t.Fatal(err)
	}

	const workers = 6
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			id := uint16(0x2000 + w)
			cfg := sessionConfig(proto.CodecTornadoA, id, int64(w+2))
			sess, err := core.NewSession(randBytes(int64(w+2), 8_000), cfg)
			if err != nil {
				t.Error(err)
				return
			}
			registered := false
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch rng.Intn(4) {
				case 0:
					if !registered {
						if err := svc.Add(sess, 1+rng.Intn(100000)); err != nil {
							t.Errorf("worker %d add: %v", w, err)
							return
						}
						registered = true
					}
				case 1:
					if registered {
						if err := svc.Remove(id); err != nil {
							t.Errorf("worker %d remove: %v", w, err)
							return
						}
						registered = false
					}
				case 2:
					st := svc.Stats()
					if st.Sessions < 1 || st.Shards != 4 {
						t.Errorf("stats inconsistent: %+v", st)
						return
					}
				case 3:
					svc.Lookup(id)
					svc.Catalog()
				}
			}
		}(w)
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	if svc.Stats().PacketsSent == 0 {
		t.Fatal("scheduler never emitted under churn")
	}

	closed := make(chan struct{})
	go func() { svc.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not join the shard workers")
	}
	after := sink.packets.Load()
	time.Sleep(50 * time.Millisecond)
	if got := sink.packets.Load(); got != after {
		t.Fatalf("emission continued after Close: %d -> %d", after, got)
	}
}

// TestRemoveStopsEmissionPromptly: after Remove returns, not one more
// packet of that session may reach the transport.
func TestRemoveStopsEmissionPromptly(t *testing.T) {
	capt := newBatchCapture()
	svc := New(capt, Config{BaseRate: 100000, Shards: 2})
	defer svc.Close()
	cfg := sessionConfig(proto.CodecTornadoA, 0x77, 7)
	sess, err := core.NewSession(randBytes(7, 10_000), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Add(sess, 0); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for capt.minLen(0x77, 1) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("session never emitted")
		}
	}
	if err := svc.Remove(0x77); err != nil {
		t.Fatal(err)
	}
	n := capt.minLen(0x77, 4)
	time.Sleep(50 * time.Millisecond)
	if got := capt.minLen(0x77, 4); got != n {
		t.Fatalf("emission continued after Remove: %d -> %d packets", n, got)
	}
}

// TestEmitRoundZeroAlloc: steady-state emission of an eagerly encoded
// session through the pooled, batched path must not allocate — the
// property the sender benchmark suite gates in CI.
func TestEmitRoundZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool instrumentation allocates; the sender bench gates this without -race")
	}
	sink := &nullBatchSink{}
	svc := New(sink, Config{})
	defer svc.Close()
	cfg := sessionConfig(proto.CodecTornadoA, 0x88, 8)
	sess, err := core.NewSession(randBytes(8, 30_000), cfg)
	if err != nil {
		t.Fatal(err)
	}
	car, err := svc.AddManual(sess, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the pool, the scratch slices and the carousel index buffer.
	for i := 0; i < 64; i++ {
		if err := svc.EmitRound(car); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := svc.EmitRound(car); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state EmitRound allocates %.2f times per round", allocs)
	}
}

// TestSchedulerPacing: a session registered at a modest rate must emit at
// roughly that rate, not at shard saturation speed — the heap deadline is
// real pacing, not a busy loop.
func TestSchedulerPacing(t *testing.T) {
	sink := &nullBatchSink{}
	svc := New(sink, Config{Shards: 2})
	defer svc.Close()
	cfg := sessionConfig(proto.CodecTornadoA, 0x99, 9)
	cfg.Layers = 1
	sess, err := core.NewSession(randBytes(9, 5_000), cfg)
	if err != nil {
		t.Fatal(err)
	}
	const rate = 500 // single layer: one packet per round
	if err := svc.Add(sess, rate); err != nil {
		t.Fatal(err)
	}
	time.Sleep(400 * time.Millisecond)
	got := svc.Stats().PacketsSent
	// 400 ms at 500 pps ≈ 200 packets; generous CI margins either way.
	if got < 50 || got > 800 {
		t.Fatalf("paced session emitted %d packets in 400ms at %d pps", got, rate)
	}
}

// TestManySessionsOneSchedulerGoroutineCount: registering hundreds of
// sessions must not add goroutines — the whole point of the shared
// scheduler. We observe it through the public surface: shard count stays
// fixed while sessions scale, and all sessions make progress.
func TestManySessionsShareShards(t *testing.T) {
	capt := newBatchCapture()
	svc := New(capt, Config{BaseRate: 20000, Shards: 2})
	defer svc.Close()
	const n = 100
	for i := 0; i < n; i++ {
		cfg := sessionConfig(proto.CodecTornadoA, uint16(0x3000+i), int64(i))
		cfg.Layers = 1
		sess, err := core.NewSession(randBytes(int64(i), 2_000), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.Add(sess, 0); err != nil {
			t.Fatal(err)
		}
	}
	if st := svc.Stats(); st.Sessions != n || st.Shards != 2 {
		t.Fatalf("stats = %+v, want %d sessions on 2 shards", svc.Stats(), n)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		stalled := 0
		for i := 0; i < n; i++ {
			if capt.minLen(uint16(0x3000+i), 1) < 3 {
				stalled++
			}
		}
		if stalled == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d of %d sessions made no progress", stalled, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
