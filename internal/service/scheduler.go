package service

import (
	"context"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/evtrace"
	"repro/internal/transport"
)

// The pacing scheduler replaces the one-goroutine-per-session sender of
// the earlier service: every paced session is an emission event on a
// min-heap keyed by its next deadline on a monotonic clock, and a fixed
// set of shard workers (GOMAXPROCS by default) pops due events, emits one
// carousel round each through pooled buffers and per-layer batches, and
// pushes the event back at deadline + interval. Registering 1 or 10,000
// sessions costs the same goroutine count; per-session cost is one heap
// entry.
//
// Emission content and order per (session, layer) are exactly the
// carousel's — the scheduler only decides *when* a session's next round
// runs, never *what* it contains.

// schedEvent is one paced session's place in a shard's deadline heap.
type schedEvent struct {
	e        *entry
	next     time.Duration // deadline, relative to the scheduler epoch
	interval time.Duration // carousel round spacing (server.PaceInterval)
	shard    *shard
	removed  bool // guarded by shard.mu; a removed event is never re-pushed
}

// shard is one worker: a deadline heap, a kick channel for heap changes,
// and a pooled emitter. Sessions are spread round-robin across shards.
type shard struct {
	svc   *Service
	epoch time.Time      // the deadline clock's zero, fixed at construction
	tr    *evtrace.Shard // flight-recorder handle (nil-safe, one branch when off)
	mu    sync.Mutex
	heap  []*schedEvent // min-heap by next
	kick  chan struct{}
	done  chan struct{}
}

// scheduler owns the shards and the epoch of the monotonic deadline clock.
type scheduler struct {
	svc    *Service
	epoch  time.Time
	shards []*shard
	nextSh int // round-robin assignment cursor; guarded by Service.mu
}

func newScheduler(svc *Service, ctx context.Context, shards int) *scheduler {
	sc := &scheduler{svc: svc, epoch: time.Now()}
	for i := 0; i < shards; i++ {
		sh := &shard{
			svc:   svc,
			epoch: sc.epoch,
			tr:    svc.cfg.Trace.Shard(i),
			kick:  make(chan struct{}, 1),
			done:  make(chan struct{}),
		}
		sc.shards = append(sc.shards, sh)
		go sh.run(ctx)
	}
	return sc
}

// add registers a paced entry: its first round fires immediately. The
// caller holds Service.mu (so add never races Close's closed check).
func (sc *scheduler) add(e *entry, interval time.Duration) {
	sh := sc.shards[sc.nextSh%len(sc.shards)]
	sc.nextSh++
	ev := &schedEvent{e: e, next: time.Since(sc.epoch), interval: interval, shard: sh}
	e.ev = ev
	if sh.tr.On() {
		sh.tr.Emit(evtrace.EvSlotScheduled, e.sess.Config().Session, sc.svc.cfg.TraceID, 0, 0,
			uint64(ev.next), 0)
	}
	sh.mu.Lock()
	sh.push(ev)
	sh.mu.Unlock()
	sh.wake()
}

// remove takes a paced entry out of its shard's schedule and guarantees,
// once it returns, that no further round of the entry will be emitted:
// the removed mark stops future pops and re-pushes, and acquiring the
// entry's emit lock waits out any round already in flight.
func (sc *scheduler) remove(e *entry) {
	ev := e.ev
	if ev == nil {
		return // manual session: never scheduled
	}
	ev.shard.mu.Lock()
	ev.removed = true
	ev.shard.mu.Unlock()
	e.emitMu.Lock()
	e.stopped = true
	e.emitMu.Unlock()
}

// wake nudges the shard's worker after a heap change; a pending nudge is
// enough, so the send never blocks.
func (sh *shard) wake() {
	select {
	case sh.kick <- struct{}{}:
	default:
	}
}

// run is the shard worker: sleep until the earliest deadline (or a heap
// change), emit that session's round, reschedule it. Steady-state
// emission — heap ops, pooled packet building, batched sends — allocates
// nothing.
func (sh *shard) run(ctx context.Context) {
	defer close(sh.done)
	em := newEmitter(sh.svc, sh.tr)
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		sh.mu.Lock()
		for len(sh.heap) > 0 && sh.heap[0].removed {
			sh.pop()
		}
		if len(sh.heap) == 0 {
			sh.mu.Unlock()
			select {
			case <-ctx.Done():
				return
			case <-sh.kick:
			}
			continue
		}
		ev := sh.heap[0]
		now := time.Since(sh.epoch)
		if d := ev.next - now; d > 0 {
			sh.mu.Unlock()
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(d)
			select {
			case <-ctx.Done():
				return
			case <-sh.kick:
			case <-timer.C:
			}
			continue
		}
		sh.pop()
		sh.mu.Unlock()

		sh.emitDue(ev, &em)
		if ctx.Err() != nil {
			return
		}

		sh.mu.Lock()
		if !ev.removed {
			sh.push(ev)
		}
		rearmed := !ev.removed
		sh.mu.Unlock()
		if rearmed && sh.tr.On() {
			sh.tr.Emit(evtrace.EvSlotScheduled, ev.e.sess.Config().Session, sh.svc.cfg.TraceID, 0, 0,
				uint64(ev.next), 0)
		}
	}
}

// maxRoundsPerPop caps how many catch-up rounds one pop may emit when the
// session is behind schedule. Batching a few rounds per pop amortizes the
// heap, clock and lock costs and reuses the session's encoding while it
// is cache-hot; the cap keeps co-scheduled sessions fair.
const maxRoundsPerPop = 4

// emitDue emits the event's due round — plus the back-to-back burst round
// of §7.1.1 when the next round is a burst, plus up to maxRoundsPerPop-1
// catch-up rounds while the session remains behind schedule — under the
// entry's emit lock so Remove can wait out in-flight rounds. It advances
// ev.next past now (dropping any remaining debt, the analogue of a ticker
// dropping missed ticks).
func (sh *shard) emitDue(ev *schedEvent, em *emitter) {
	e := ev.e
	e.emitMu.Lock()
	defer e.emitMu.Unlock()
	if sh.tr.On() {
		// Pacing jitter: the deadline the slot was armed for vs. when the
		// worker actually popped it.
		sh.tr.Emit(evtrace.EvSlotFired, e.sess.Config().Session, sh.svc.cfg.TraceID, 0, 0,
			uint64(ev.next), uint64(time.Since(sh.epoch)))
	}
	for rounds := 0; ; {
		if e.stopped {
			return
		}
		if rounds > 0 {
			sh.svc.catchupRounds.Inc()
		}
		em.emitRound(e.car)
		if e.car.BurstNext() {
			em.emitRound(e.car)
		}
		rounds++
		ev.next += ev.interval
		now := time.Since(sh.epoch)
		if ev.next > now {
			return
		}
		if rounds >= maxRoundsPerPop {
			sh.svc.debtDropped.Inc()
			ev.next = now // drop the rest of the debt
			return
		}
	}
}

// push inserts ev into the deadline heap; callers hold sh.mu.
func (sh *shard) push(ev *schedEvent) {
	sh.heap = append(sh.heap, ev)
	i := len(sh.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if sh.heap[parent].next <= sh.heap[i].next {
			break
		}
		sh.heap[parent], sh.heap[i] = sh.heap[i], sh.heap[parent]
		i = parent
	}
}

// pop removes and returns the earliest event; callers hold sh.mu.
func (sh *shard) pop() *schedEvent {
	h := sh.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = nil
	sh.heap = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && sh.heap[l].next < sh.heap[small].next {
			small = l
		}
		if r < last && sh.heap[r].next < sh.heap[small].next {
			small = r
		}
		if small == i {
			break
		}
		sh.heap[small], sh.heap[i] = sh.heap[i], sh.heap[small]
		i = small
	}
	return top
}

// emitter is the zero-alloc round emission sink: it implements
// core.RoundEmitter by building each packet in a pooled buffer, grouping
// consecutive same-layer packets into one batch, and handing each batch to
// the service's counting batch sender. Buffers are released back to the
// pool as soon as their batch is sent (transports and Bus handlers must
// not retain packet bytes — see transport.Sender).
type emitter struct {
	svc     *Service
	free    *transport.FreeList
	pending *transport.Buf   // buffer handed out by PacketBuf, not yet Emitted
	bufs    []*transport.Buf // pooled buffers of the in-progress batch
	batch   [][]byte         // packets of the in-progress batch
	layer   int
	tr      *evtrace.Shard // flight-recorder handle (nil-safe)
	sess    uint16         // session of the round in flight; set while tracing
}

func newEmitter(svc *Service, tr *evtrace.Shard) emitter {
	return emitter{svc: svc, free: transport.NewFreeList(svc.pool), tr: tr}
}

// PacketBuf implements core.RoundEmitter. The buffer joins the batch only
// at Emit time: a layer change flushes (and releases) the previous batch,
// and the packet being built must survive that release.
func (em *emitter) PacketBuf(size int) []byte {
	em.pending = em.free.Get(size)
	return em.pending.B
}

// maxBatch caps the packets (and so the pooled buffers) one batch may
// accumulate before flushing: large sessions emit thousands of packets
// per layer per round, and streaming them in bounded batches keeps peak
// send-path memory at maxBatch wire buffers per shard instead of a whole
// layer's worth. 128 spans two sendmmsg chunks.
const maxBatch = 128

// Emit implements core.RoundEmitter: consecutive packets of one layer
// accumulate into a batch; a layer change or a full batch flushes. The
// carousel emits layer by layer, so a round becomes one batch per layer
// per maxBatch packets, in emission order.
func (em *emitter) Emit(layer int, pkt []byte) error {
	if len(em.batch) > 0 && (layer != em.layer || len(em.batch) >= maxBatch) {
		em.flush()
	}
	em.layer = layer
	em.bufs = append(em.bufs, em.pending)
	em.pending = nil
	em.batch = append(em.batch, pkt)
	return nil
}

// flush sends the accumulated batch through the counting sender (which
// swallows transport errors — a fountain retransmits everything
// eventually) and releases the batch's buffers to the pool.
func (em *emitter) flush() {
	if len(em.batch) > 0 {
		if em.tr.On() {
			// Before SendBatch, so channel events of the batch's deliveries
			// follow their tx event in single-shard stream order.
			var nb uint64
			for _, p := range em.batch {
				nb += uint64(len(p))
			}
			em.tr.Emit(evtrace.EvTxBatch, em.sess, em.svc.cfg.TraceID, 0, uint8(em.layer),
				uint64(len(em.batch)), nb)
		}
		countingSender{em.svc}.SendBatch(em.layer, em.batch)
	}
	for i, b := range em.bufs {
		em.free.Put(b)
		em.bufs[i] = nil
	}
	em.bufs = em.bufs[:0]
	em.batch = em.batch[:0]
}

// emitRound emits one full carousel round through the emitter. The
// carousel can only fail on emit errors, and Emit never fails, so the
// round always completes; sends themselves are counted (and their errors
// swallowed) by the counting sender.
// The EvRound event fires at the start, before NextRoundTo advances the
// carousel's round counter: a trace consumer counting EvRound events per
// source therefore sees exactly Carousel.Rounds() at any downstream event
// of the same stream — including a receiver's completion mid-round, which
// is when the harness snapshots its rounds-to-decode.
func (em *emitter) emitRound(car *core.Carousel) {
	if em.tr.On() {
		em.sess = car.Session().Config().Session
		em.tr.Emit(evtrace.EvRound, em.sess, em.svc.cfg.TraceID, 0, 0,
			uint64(car.Rounds()), uint64(car.Sent()))
	}
	_ = car.NextRoundTo(em)
	em.flush()
	em.svc.rounds.Inc()
}
