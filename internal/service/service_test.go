package service

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/transport"
)

func randBytes(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func sessionConfig(codec uint8, id uint16, seed int64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Codec = codec
	cfg.Layers = 4
	cfg.SPInterval = 8
	cfg.Seed = seed
	cfg.Session = id
	cfg.LazyBlock = 16
	return cfg
}

// TestServiceSoak is the multi-session smoke the CI runs under -race: one
// service, one muxed UDP socket, three sessions of different codecs (one
// lazily encoded under a tight shared cache), and eight concurrent clients
// spread across the sessions. Every client must reconstruct its file, and
// the shared encoding cache must stay bounded.
func TestServiceSoak(t *testing.T) {
	const cacheBytes = 32 << 10
	udp, err := transport.NewUDPServer("127.0.0.1:0", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer udp.Close()
	svc := New(udp, Config{CacheBytes: cacheBytes, BaseRate: 2000})
	defer svc.Close()

	files := map[uint16][]byte{}
	type add struct {
		codec uint8
		id    uint16
		size  int
	}
	adds := []add{
		{proto.CodecCauchy, 0x0001, 45_000},      // lazy
		{proto.CodecTornadoA, 0x0002, 30_000},    // eager fallback
		{proto.CodecVandermonde, 0x0003, 25_000}, // lazy
	}
	for _, a := range adds {
		data := randBytes(int64(a.id), a.size)
		files[a.id] = data
		if _, err := svc.AddData(data, sessionConfig(a.codec, a.id, 100+int64(a.id)), 0); err != nil {
			t.Fatal(err)
		}
	}

	ctrl, stopCtrl, err := transport.ServeControlFunc("127.0.0.1:0", svc.HandleControl)
	if err != nil {
		t.Fatal(err)
	}
	defer stopCtrl()

	reply, err := transport.RequestSessionInfo(ctrl, proto.MarshalCatalogRequest(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	catalog, err := proto.ParseCatalog(reply)
	if err != nil {
		t.Fatal(err)
	}
	if len(catalog) != len(adds) {
		t.Fatalf("catalog has %d sessions, want %d", len(catalog), len(adds))
	}

	const clients = 8
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		info := catalog[ci%len(catalog)]
		wg.Add(1)
		go func(ci int, info proto.SessionInfo) {
			defer wg.Done()
			errCh <- fetch(ci, info, udp, files[info.Session])
		}(ci, info)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Error(err)
		}
	}

	st := svc.Stats()
	if st.Sessions != len(adds) {
		t.Fatalf("sessions = %d, want %d", st.Sessions, len(adds))
	}
	if st.PacketsSent == 0 || st.BytesSent == 0 {
		t.Fatalf("counters never moved: %+v", st)
	}
	// The lazy sessions' repair regions far exceed the cache budget; peak
	// may overshoot by at most one in-flight block per concurrent filler.
	blockBytes := int64(16 * core.PadPacketLen(500))
	if st.CachePeak == 0 {
		t.Fatal("lazy sessions never touched the cache")
	}
	if st.CachePeak > cacheBytes+2*blockBytes {
		t.Fatalf("cache peak %d blew past cap %d", st.CachePeak, cacheBytes)
	}
}

// fetch downloads one session as a subscribed client and verifies the file.
func fetch(ci int, info proto.SessionInfo, udp *transport.UDPServer, want []byte) error {
	level := int(info.Layers) - 1 // full rate: fastest completion
	uc, err := transport.NewUDPClientSession(udp.Addr(), info.Session, level)
	if err != nil {
		return err
	}
	defer uc.Close()
	eng, err := client.New(info, level, func(l int) { uc.SetLevel(l) })
	if err != nil {
		return err
	}
	deadline := time.Now().Add(30 * time.Second)
	for !eng.Done() {
		if time.Now().After(deadline) {
			return fmt.Errorf("client %d (session %#x): timed out", ci, info.Session)
		}
		pkt, ok := uc.Recv(time.Second)
		if !ok {
			continue
		}
		if _, err := eng.HandlePacket(pkt); err != nil {
			return fmt.Errorf("client %d (session %#x): foreign packet leaked through mux: %v", ci, info.Session, err)
		}
	}
	got, err := eng.File()
	if err != nil {
		return err
	}
	if !bytes.Equal(got, want) {
		return fmt.Errorf("client %d (session %#x): reconstructed file differs", ci, info.Session)
	}
	return nil
}

// recorder is a concurrency-safe Sender capturing every header.
type recorder struct {
	mu   sync.Mutex
	hdrs []proto.Header
}

func (r *recorder) Send(layer int, pkt []byte) error {
	h, _, err := proto.ParseHeader(pkt)
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.hdrs = append(r.hdrs, h)
	r.mu.Unlock()
	return nil
}

// TestPerSessionSerialsIndependent: each session's carousel must stamp its
// own dense serial space per layer, regardless of how the senders'
// schedules interleave on the shared transport.
func TestPerSessionSerialsIndependent(t *testing.T) {
	rec := &recorder{}
	svc := New(rec, Config{BaseRate: 20000})
	defer svc.Close()
	for id := uint16(1); id <= 2; id++ {
		cfg := sessionConfig(proto.CodecCauchy, id, int64(id))
		if _, err := svc.AddData(randBytes(int64(id), 20_000), cfg, 0); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		rec.mu.Lock()
		n := len(rec.hdrs)
		rec.mu.Unlock()
		if n >= 2000 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("senders too slow: %d packets", n)
		}
		time.Sleep(10 * time.Millisecond)
	}
	svc.Close() // stop senders before reading the capture
	next := map[[2]uint16]uint32{}
	sessions := map[uint16]bool{}
	for _, h := range rec.hdrs {
		sessions[h.Session] = true
		key := [2]uint16{h.Session, uint16(h.Group)}
		next[key]++
		if h.Serial != next[key] {
			t.Fatalf("session %#x layer %d serial %d, want %d (serial spaces not independent)",
				h.Session, h.Group, h.Serial, next[key])
		}
	}
	if len(sessions) != 2 {
		t.Fatalf("saw sessions %v, want both", sessions)
	}
}

func TestRegistryLifecycle(t *testing.T) {
	rec := &recorder{}
	svc := New(rec, Config{BaseRate: 1000})
	defer svc.Close()
	cfg := sessionConfig(proto.CodecCauchy, 7, 7)
	sess, err := svc.AddData(randBytes(7, 10_000), cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.AddData(randBytes(8, 10_000), cfg, 0); err == nil {
		t.Fatal("duplicate session id accepted")
	}
	badCfg := cfg
	badCfg.Session = transport.SessionAny
	if _, err := svc.AddData(randBytes(9, 10_000), badCfg, 0); err == nil {
		t.Fatal("wildcard session id accepted")
	}
	if _, ok := svc.Lookup(7); !ok {
		t.Fatal("registered session not found")
	}
	if info, ok := svc.Lookup(7); !ok || info.BaseRate != 1000 {
		t.Fatalf("descriptor rate = %d, want service default 1000", info.BaseRate)
	}
	// Force some cache residency, then Remove must reclaim it.
	sess.Payload(sess.Codec().N() - 1)
	if svc.Cache().Used() == 0 {
		t.Fatal("expected cached repair bytes")
	}
	if err := svc.Remove(7); err != nil {
		t.Fatal(err)
	}
	if err := svc.Remove(7); err == nil {
		t.Fatal("double remove succeeded")
	}
	if used := svc.Cache().Used(); used != 0 {
		t.Fatalf("cache still holds %d bytes after Remove", used)
	}
	if _, ok := svc.Lookup(7); ok {
		t.Fatal("removed session still listed")
	}
	if st := svc.Stats(); st.Sessions != 0 {
		t.Fatalf("sessions = %d after remove", st.Sessions)
	}
}

func TestHandleControl(t *testing.T) {
	rec := &recorder{}
	svc := New(rec, Config{})
	defer svc.Close()
	if id, nak := proto.ParseNak(svc.HandleControl(proto.MarshalHello())); !nak || id != transport.SessionAny {
		t.Fatal("empty service must NAK a bare hello")
	}
	for id := uint16(3); id >= 1; id-- { // insert descending: catalog must sort
		cfg := sessionConfig(proto.CodecTornadoA, id, int64(id))
		if _, err := svc.AddData(randBytes(int64(id), 5_000), cfg, 0); err != nil {
			t.Fatal(err)
		}
	}
	cat, err := proto.ParseCatalog(svc.HandleControl(proto.MarshalCatalogRequest()))
	if err != nil {
		t.Fatal(err)
	}
	if len(cat) != 3 || cat[0].Session != 1 || cat[2].Session != 3 {
		t.Fatalf("catalog wrong: %+v", cat)
	}
	info, err := proto.ParseSessionInfo(svc.HandleControl(proto.MarshalHelloFor(2)))
	if err != nil {
		t.Fatal(err)
	}
	if info.Session != 2 {
		t.Fatalf("hello-for-2 answered session %#x", info.Session)
	}
	if id, nak := proto.ParseNak(svc.HandleControl(proto.MarshalHelloFor(99))); !nak || id != 99 {
		t.Fatal("unknown session must be NAKed with its id")
	}
	info, err = proto.ParseSessionInfo(svc.HandleControl(proto.MarshalHello()))
	if err != nil {
		t.Fatal(err)
	}
	if info.Session != 1 {
		t.Fatalf("bare hello answered session %#x, want lowest id", info.Session)
	}
	if reply := svc.HandleControl([]byte("garbage")); reply != nil {
		t.Fatal("garbage answered")
	}
}

// TestPhasedAndManualSessions: AddPhased must advertise the phase in the
// control descriptor and start its carousel there; AddManual must register
// without a sender goroutine, count traffic through Sender(), and tear
// down cleanly via Remove/Close.
func TestPhasedAndManualSessions(t *testing.T) {
	rec := &recorder{}
	svc := New(rec, Config{BaseRate: 500})
	defer svc.Close()

	paced, err := core.NewSession(randBytes(21, 20_000), sessionConfig(proto.CodecCauchy, 0x21, 21))
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.AddPhased(paced, 0, 7); err != nil {
		t.Fatal(err)
	}
	info, ok := svc.Lookup(0x21)
	if !ok || info.Phase != 7 {
		t.Fatalf("phased descriptor = %+v, %v", info, ok)
	}

	manualSess, err := core.NewSession(randBytes(22, 20_000), sessionConfig(proto.CodecCauchy, 0x22, 22))
	if err != nil {
		t.Fatal(err)
	}
	car, err := svc.AddManual(manualSess, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if car.Phase() != 3 || car.Round() != 3 {
		t.Fatalf("manual carousel at %d/%d, want phase 3", car.Phase(), car.Round())
	}
	if info, ok := svc.Lookup(0x22); !ok || info.Phase != 3 {
		t.Fatalf("manual descriptor = %+v, %v", info, ok)
	}
	if _, err := svc.AddManual(manualSess, 0, 0); err == nil {
		t.Fatal("duplicate manual registration accepted")
	}

	// Manual stepping through the counting sender moves the stats.
	before := svc.Stats().PacketsSent
	if err := car.NextRound(svc.Sender().Send); err != nil {
		t.Fatal(err)
	}
	if got := svc.Stats().PacketsSent; got <= before {
		t.Fatalf("manual round not counted: %d -> %d", before, got)
	}
	// The manual round's packets carry the session id and phase-shifted
	// round position but still serials starting at 1.
	rec.mu.Lock()
	var manualHdrs []proto.Header
	for _, h := range rec.hdrs {
		if h.Session == 0x22 {
			manualHdrs = append(manualHdrs, h)
		}
	}
	rec.mu.Unlock()
	if len(manualHdrs) == 0 || manualHdrs[0].Serial != 1 {
		t.Fatalf("manual emission headers wrong: %+v", manualHdrs)
	}

	// Remove of a manual session must not hang (no goroutine to join).
	doneCh := make(chan error, 1)
	go func() { doneCh <- svc.Remove(0x22) }()
	select {
	case err := <-doneCh:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Remove of manual session hung")
	}
	if st := svc.Stats(); st.Sessions != 1 {
		t.Fatalf("sessions = %d after manual remove", st.Sessions)
	}
}

// TestCatalogCarriesPhases: a service mirroring the same encoding twice
// under different session ids (as one box backing two mirror identities
// would) must advertise each registration's own phase.
func TestCatalogCarriesPhases(t *testing.T) {
	rec := &recorder{}
	svc := New(rec, Config{BaseRate: 500})
	defer svc.Close()
	for i, phase := range []int{0, 11} {
		sess, err := core.NewSession(randBytes(31, 15_000), sessionConfig(proto.CodecCauchy, uint16(0x31+i), 31))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.AddManual(sess, 0, phase); err != nil {
			t.Fatal(err)
		}
	}
	cat, err := proto.ParseCatalog(svc.HandleControl(proto.MarshalCatalogRequest()))
	if err != nil {
		t.Fatal(err)
	}
	if len(cat) != 2 || cat[0].Phase != 0 || cat[1].Phase != 11 {
		t.Fatalf("catalog phases wrong: %+v", cat)
	}
}
