//go:build race

package service

// raceEnabled reports that the race detector instruments this build; its
// sync.Pool interception allocates on the otherwise alloc-free send path,
// so allocation-count assertions are skipped (CI gates allocs/op through
// the non-instrumented sender bench suite instead).
const raceEnabled = true
