//go:build !race

package service

// raceEnabled: see race_test.go.
const raceEnabled = false
