package service

import (
	"errors"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/proto"
	"repro/internal/transport"
)

// TestAdmissionControl: a service with MaxSessions refuses registrations
// beyond the cap with ErrSessionLimit, admits again once a slot frees, and
// refuses everything with ErrDraining once Drain begins.
func TestAdmissionControl(t *testing.T) {
	bus := transport.NewBus(4)
	svc := New(bus, Config{BaseRate: 500, MaxSessions: 2})
	defer svc.Close()

	data := randBytes(51, 20_000)
	if _, err := svc.AddData(data, sessionConfig(proto.CodecCauchy, 1, 51), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.AddData(data, sessionConfig(proto.CodecCauchy, 2, 51), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.AddData(data, sessionConfig(proto.CodecCauchy, 3, 51), 0); !errors.Is(err, ErrSessionLimit) {
		t.Fatalf("third session admitted past MaxSessions=2: err = %v", err)
	}
	if err := svc.Remove(1); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.AddData(data, sessionConfig(proto.CodecCauchy, 3, 51), 0); err != nil {
		t.Fatalf("admission after Remove freed a slot: %v", err)
	}

	svc.Drain()
	if _, err := svc.AddData(data, sessionConfig(proto.CodecCauchy, 4, 51), 0); !errors.Is(err, ErrDraining) {
		t.Fatalf("admission during drain: err = %v", err)
	}
	if !svc.Draining() {
		t.Fatal("Draining() false after Drain")
	}
}

// TestDrainGraceful exercises the drain path under contention (this is the
// scenario CI runs with -race): sessions are added and removed from
// several goroutines while other goroutines call Drain concurrently.
// Every Drain call must return with all shard workers joined, emission
// must have fully stopped, the registry must still answer control probes,
// and a subsequent Close must be a clean no-op.
func TestDrainGraceful(t *testing.T) {
	bus := transport.NewBus(4)
	svc := New(bus, Config{BaseRate: 5000, Shards: 4})
	defer svc.Close()

	data := randBytes(53, 30_000)
	for id := uint16(1); id <= 4; id++ {
		if _, err := svc.AddData(data, sessionConfig(proto.CodecCauchy, id, 53), 0); err != nil {
			t.Fatal(err)
		}
	}
	// Let the carousels emit for real before draining.
	deadline := time.Now().Add(2 * time.Second)
	for svc.Stats().PacketsSent == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no emission before drain")
		}
		time.Sleep(time.Millisecond)
	}

	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(2)
		base := uint16(100 + 10*g)
		go func() { // churn alongside the drain
			defer wg.Done()
			for i := uint16(0); i < 5; i++ {
				if _, err := svc.AddData(data, sessionConfig(proto.CodecCauchy, base+i, 53), 0); err == nil {
					svc.Remove(base + i)
				}
			}
		}()
		go func() { // concurrent drains must all return
			defer wg.Done()
			svc.Drain()
		}()
	}
	wg.Wait()

	// Emission has stopped for good: the counter is frozen.
	sent := svc.Stats().PacketsSent
	time.Sleep(20 * time.Millisecond)
	if now := svc.Stats().PacketsSent; now != sent {
		t.Fatalf("packets still flowing after drain: %d -> %d", sent, now)
	}
	// The control plane survives the drain: descriptors stay resolvable.
	if _, ok := svc.Lookup(1); !ok {
		t.Fatal("drained service lost its registry")
	}
	if reply := svc.HandleControl(proto.MarshalHelloFor(1)); reply == nil {
		t.Fatal("drained service stopped answering control probes")
	}
}

// TestSoakChurn is the long-haul churn soak (CI's scheduled job runs it
// with FOUNTAIN_SOAK_CYCLES raised): sessions continually registered and
// removed under an admission cap while subscribers join, download a
// little, and flap — half leaving cleanly, half vanishing mid-stream —
// with a drain-and-dispose epilogue. The assertions are the leak
// detectors: goroutine count and heap must return to baseline, because a
// production fountain server runs this churn for months.
func TestSoakChurn(t *testing.T) {
	cycles := 4
	if v := os.Getenv("FOUNTAIN_SOAK_CYCLES"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			cycles = n
		}
	}

	runtime.GC()
	baseGoroutines := runtime.NumGoroutine()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)

	for cycle := 0; cycle < cycles; cycle++ {
		udp, err := transport.NewUDPServer("127.0.0.1:0", 4)
		if err != nil {
			t.Fatal(err)
		}
		udp.SetLimits(transport.UDPLimits{MaxSubscribers: 64, EvictAfter: 4})
		svc := New(udp, Config{BaseRate: 4000, MaxSessions: 8, CacheBytes: 1 << 20})

		data := randBytes(int64(59+cycle), 25_000)
		ids := []uint16{}
		for i := 0; i < 12; i++ { // deliberately overshoots MaxSessions
			id := uint16(1 + i)
			_, err := svc.AddData(data, sessionConfig(proto.CodecCauchy, id, int64(59+cycle)), 0)
			switch {
			case err == nil:
				ids = append(ids, id)
			case errors.Is(err, ErrSessionLimit):
			default:
				t.Fatal(err)
			}
		}
		if len(ids) != 8 {
			t.Fatalf("cycle %d: admitted %d sessions under cap 8", cycle, len(ids))
		}

		var wg sync.WaitGroup
		for c := 0; c < 6; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				cl, err := transport.NewUDPClientSession(udp.Addr(), ids[c%len(ids)], 2)
				if err != nil {
					return
				}
				for i := 0; i < 10; i++ {
					cl.Recv(10 * time.Millisecond)
				}
				if c%2 == 0 {
					cl.Close() // clean leave
				} else {
					cl.Resubscribe() // flap: rejoin, then vanish without UNSUB
					cl.Close()
				}
			}(c)
		}
		// Session churn concurrent with the subscriber flapping.
		for i, id := range ids {
			if i%2 == 0 {
				if err := svc.Remove(id); err != nil {
					t.Fatal(err)
				}
				if _, err := svc.AddData(data, sessionConfig(proto.CodecCauchy, id, int64(59+cycle)), 0); err != nil {
					t.Fatalf("cycle %d: re-add after remove: %v", cycle, err)
				}
			}
		}
		wg.Wait()

		svc.Drain()
		if _, err := svc.AddData(data, sessionConfig(proto.CodecCauchy, 99, int64(59+cycle)), 0); !errors.Is(err, ErrDraining) {
			t.Fatalf("cycle %d: admission during drain: %v", cycle, err)
		}
		svc.Close()
		udp.Close()
	}

	// Leak detectors: everything spawned above must be gone. A couple of
	// runtime-internal goroutines (GC workers, timer scavenger) may have
	// started; allow a small fixed slack, never growth per cycle.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseGoroutines+3 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseGoroutines+3 {
		buf := make([]byte, 64<<10)
		t.Fatalf("goroutine leak: %d at start, %d after churn\n%s",
			baseGoroutines, g, buf[:runtime.Stack(buf, true)])
	}
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if after.HeapAlloc > base.HeapAlloc+32<<20 {
		t.Fatalf("heap leak: %d bytes at start, %d after churn", base.HeapAlloc, after.HeapAlloc)
	}
}
