package client

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

// mapWindow is the pre-ring missingWindow: a FIFO ring over a real map
// set, kept here as the reference oracle for the differential tests. Its
// semantics define the contract the allocation-free ring/bitset window
// must reproduce bit for bit.
type mapWindow struct {
	set  map[uint32]struct{}
	ring [maxTrackedMissing]uint32
	n    int
}

func newMapWindow() *mapWindow { return &mapWindow{set: make(map[uint32]struct{})} }

func (w *mapWindow) add(s uint32) {
	slot := w.n % maxTrackedMissing
	if w.n >= maxTrackedMissing {
		delete(w.set, w.ring[slot])
	}
	w.ring[slot] = s
	w.set[s] = struct{}{}
	w.n++
}

func (w *mapWindow) refund(s uint32) bool {
	if _, ok := w.set[s]; !ok {
		return false
	}
	delete(w.set, s)
	return true
}

// TestMissingWindowDifferentialVsMap drives the ring/bitset window and the
// map-based oracle through identical operation streams — gap inserts that
// overflow the window many times over, refunds of tracked, evicted, and
// never-tracked serials, and serial values straddling the uint32 wrap —
// and requires every refund decision to match.
func TestMissingWindowDifferentialVsMap(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		var w missingWindow
		ref := newMapWindow()
		// A monotonically advancing serial cursor (starting near the wrap
		// half the time) feeds gap serials exactly like the engine does:
		// strictly increasing, never repeating while tracked.
		cursor := uint32(rng.Uint64())
		if trial%2 == 0 {
			cursor = 0xFFFFFFFF - uint32(rng.Intn(2000))
		}
		var issued []uint32
		for op := 0; op < 4000; op++ {
			switch r := rng.Intn(10); {
			case r < 6: // a gap: insert 1..40 fresh serials
				n := 1 + rng.Intn(40)
				for i := 0; i < n; i++ {
					w.add(cursor)
					ref.add(cursor)
					issued = append(issued, cursor)
					cursor++
				}
				cursor++ // the received packet that revealed the gap
			case r < 9 && len(issued) > 0: // refund a previously issued serial
				s := issued[rng.Intn(len(issued))]
				got, want := w.refund(s), ref.refund(s)
				if got != want {
					t.Fatalf("trial %d op %d: refund(%d) = %v, oracle %v", trial, op, s, got, want)
				}
			default: // refund a serial that was never tracked
				s := cursor + 1000 + uint32(rng.Intn(1000))
				got, want := w.refund(s), ref.refund(s)
				if got != want {
					t.Fatalf("trial %d op %d: refund(untracked %d) = %v, oracle %v", trial, op, s, got, want)
				}
			}
		}
	}
}

// serialOracle replays the old map-based engine's serial-gap accounting
// (lastSerial map + mapWindow per layer) so whole traces can be pinned
// against the slice/ring engine.
type serialOracle struct {
	lastSerial map[uint8]uint32
	missing    map[uint8]*mapWindow
	lost       int
}

func newSerialOracle() *serialOracle {
	return &serialOracle{lastSerial: make(map[uint8]uint32), missing: make(map[uint8]*mapWindow)}
}

func (o *serialOracle) packet(group uint8, serial uint32) {
	if last, ok := o.lastSerial[group]; ok {
		switch delta := serial - last; {
		case delta == 0:
		case delta < 1<<31:
			o.lost += int(delta - 1)
			if delta > 1 {
				w := o.missing[group]
				if w == nil {
					w = newMapWindow()
					o.missing[group] = w
				}
				lo := last + 1
				if delta-1 > maxTrackedMissing {
					lo = serial - maxTrackedMissing
				}
				for ser := lo; ser != serial; ser++ {
					w.add(ser)
				}
			}
			o.lastSerial[group] = serial
		default:
			if w := o.missing[group]; w != nil && w.refund(serial) {
				o.lost--
			}
		}
	} else {
		o.lastSerial[group] = serial
	}
}

// TestEngineLossDifferentialVsMapOracle replays recorded fault-matrix
// style traces — per-layer serial streams with bursts of loss, reordered
// late arrivals, duplicates, and uint32 wrap — through the engine and
// through the map-based oracle, comparing the lost count after every
// single packet.
func TestEngineLossDifferentialVsMapOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	data := make([]byte, 40_000)
	rng.Read(data)
	cfg := core.DefaultConfig()
	cfg.Layers = 4
	sess, err := core.NewSession(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	type ev struct {
		group  uint8
		serial uint32
	}
	for trial := 0; trial < 8; trial++ {
		// Record a trace: per-layer monotone serial cursors with injected
		// gaps; a queue of reordered packets drains with random delay.
		var trace []ev
		cursors := [4]uint32{}
		if trial%2 == 1 {
			for l := range cursors {
				cursors[l] = 0xFFFFFFFF - uint32(rng.Intn(500)) // exercise wrap
			}
		}
		var delayed []ev
		for i := 0; i < 3000; i++ {
			g := uint8(rng.Intn(4))
			switch r := rng.Intn(20); {
			case r < 2: // burst loss: skip up to 700 serials (overflowing the window)
				cursors[g] += uint32(1 + rng.Intn(700))
			case r == 2: // reorder: this serial arrives later
				delayed = append(delayed, ev{g, cursors[g]})
				cursors[g]++
				continue
			case r == 3 && len(trace) > 0: // duplicate a recent packet
				trace = append(trace, trace[len(trace)-1])
			}
			trace = append(trace, ev{g, cursors[g]})
			cursors[g]++
			if len(delayed) > 0 && rng.Intn(4) == 0 {
				trace = append(trace, delayed[0])
				delayed = delayed[1:]
			}
		}
		eng, err := New(sess.Info(), 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		oracle := newSerialOracle()
		for i, e := range trace {
			if _, err := eng.HandlePacket(sess.Packet(0, e.group, e.serial, 0)); err != nil {
				t.Fatal(err)
			}
			oracle.packet(e.group, e.serial)
			if got := eng.SourceStats(0).Lost; got != oracle.lost {
				t.Fatalf("trial %d packet %d (g=%d s=%d): engine lost %d, oracle %d",
					trial, i, e.group, e.serial, got, oracle.lost)
			}
		}
	}
}

// TestRefundOnBatchBoundary pins the interaction of the ring window with
// batched intake: a gap opened by the last packet of one batch must be
// refundable by a late arrival that is the first packet of the next batch,
// and the refund must also work entirely inside one batch.
func TestRefundOnBatchBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	data := make([]byte, 20_000)
	rng.Read(data)
	cfg := core.DefaultConfig()
	cfg.Layers = 1
	sess, err := core.NewSession(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pkt := func(serial uint32) []byte { return sess.Packet(0, 0, serial, 0) }

	// Across a boundary: batch A ends by revealing a gap (2 and 3 lost),
	// batch B leads with the late serial 3.
	eng, err := New(sess.Info(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.HandleBatchFrom(0, [][]byte{pkt(1), pkt(4)}); err != nil {
		t.Fatal(err)
	}
	if got := eng.SourceStats(0).Lost; got != 2 {
		t.Fatalf("after batch A: lost = %d, want 2", got)
	}
	if _, err := eng.HandleBatchFrom(0, [][]byte{pkt(3), pkt(5)}); err != nil {
		t.Fatal(err)
	}
	if got := eng.SourceStats(0).Lost; got != 1 {
		t.Fatalf("refund across batch boundary: lost = %d, want 1", got)
	}

	// Entirely within one batch: gap and refund in the same HandleBatchFrom
	// call must land identically.
	eng2, err := New(sess.Info(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng2.HandleBatchFrom(0, [][]byte{pkt(1), pkt(4), pkt(3), pkt(5)}); err != nil {
		t.Fatal(err)
	}
	if got := eng2.SourceStats(0).Lost; got != 1 {
		t.Fatalf("refund within batch: lost = %d, want 1", got)
	}

	// The wrap boundary coinciding with a batch boundary: 0xFFFFFFFE then
	// a batch starting at 1 (gaps 0xFFFFFFFF and 0), refunded by a late
	// 0xFFFFFFFF opening the following batch.
	eng3, err := New(sess.Info(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng3.HandleBatchFrom(0, [][]byte{pkt(0xFFFFFFFE)}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng3.HandleBatchFrom(0, [][]byte{pkt(1), pkt(2)}); err != nil {
		t.Fatal(err)
	}
	if got := eng3.SourceStats(0).Lost; got != 2 {
		t.Fatalf("wrap gap: lost = %d, want 2", got)
	}
	if _, err := eng3.HandleBatchFrom(0, [][]byte{pkt(0xFFFFFFFF), pkt(3)}); err != nil {
		t.Fatal(err)
	}
	if got := eng3.SourceStats(0).Lost; got != 1 {
		t.Fatalf("wrap refund across batches: lost = %d, want 1", got)
	}
}

// TestHandleBatchFromStraysAndCompletion: stray datagrams inside a batch
// are skipped (first error reported, remaining packets processed), and the
// batch loop stops at decode completion.
func TestHandleBatchFromStraysAndCompletion(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	data := make([]byte, 8_000)
	rng.Read(data)
	cfg := core.DefaultConfig()
	cfg.Layers = 1
	sess, err := core.NewSession(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(sess.Info(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// One stray mid-batch: both neighbours must still be accounted.
	batch := [][]byte{
		sess.Packet(0, 0, 1, 0),
		{0xDE, 0xAD}, // stray
		sess.Packet(1, 0, 2, 0),
	}
	done, err := eng.HandleBatchFrom(0, batch)
	if err == nil {
		t.Fatal("stray datagram reported no error")
	}
	if done {
		t.Fatal("done after two packets")
	}
	if got := eng.SourceStats(0).Received; got != 2 {
		t.Fatalf("received = %d, want 2 (stray skipped, rest processed)", got)
	}
	// Feed everything until done through batches; the loop must stop at
	// completion and report done even with packets remaining in the batch.
	n := sess.Codec().N()
	var all [][]byte
	for i := 0; i < n; i++ {
		all = append(all, sess.Packet(i, 0, uint32(i+10), 0))
	}
	done, err = eng.HandleBatchFrom(0, all)
	if err != nil {
		t.Fatal(err)
	}
	if !done || !eng.Done() {
		t.Fatal("full batch did not complete the decode")
	}
	if _, err := eng.File(); err != nil {
		t.Fatal(err)
	}
}
