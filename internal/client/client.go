// Package client implements the receiver engine of the prototype (§7.2,
// §7.3): it consumes fountain packets from a transport, runs the layered
// congestion controller on the SP/burst markers, adjusts its subscription
// level, and feeds the decoder until the file is reconstructable, keeping
// the reception-efficiency accounting (η, ηc, ηd) the paper reports in
// Figure 8.
package client

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/layered"
	"repro/internal/proto"
)

// Leveler adjusts the transport subscription level (transport.BusClient
// and transport.UDPClient satisfy it modulo error handling).
type Leveler func(level int)

// Engine is one receiving client.
type Engine struct {
	rcv      *core.Receiver
	ctrl     *layered.Controller
	setLevel Leveler
	info     proto.SessionInfo

	// Loss accounting across the whole download (per layer serial gaps).
	lastSerial map[uint8]uint32
	missing    map[uint8]*missingWindow // serials counted lost, refundable on late arrival
	lost       int
	received   int
}

// maxTrackedMissing bounds the per-layer window of refundable lost serials:
// reordering windows are short, so only the most recent serials of a gap
// need tracking; anything older stays counted as lost.
const maxTrackedMissing = 512

// missingWindow remembers the most recent serials counted as lost, so a
// late (reordered) arrival refunds its provisional loss exactly once. It is
// a FIFO ring over a set: inserting past capacity evicts the oldest
// remembered serial, never blocking newer gaps from being tracked.
type missingWindow struct {
	set  map[uint32]struct{}
	ring [maxTrackedMissing]uint32
	n    int // total inserts
}

func (w *missingWindow) add(s uint32) {
	slot := w.n % maxTrackedMissing
	if w.n >= maxTrackedMissing {
		delete(w.set, w.ring[slot]) // evict oldest (no-op if already refunded)
	}
	w.ring[slot] = s
	w.set[s] = struct{}{}
	w.n++
}

// refund reports whether s was a tracked loss, forgetting it if so.
func (w *missingWindow) refund(s uint32) bool {
	if _, ok := w.set[s]; !ok {
		return false
	}
	delete(w.set, s)
	return true
}

// New builds a client engine from a session descriptor. setLevel is
// invoked whenever the congestion controller changes the subscription
// level (nil for single-layer sessions).
func New(info proto.SessionInfo, startLevel int, setLevel Leveler) (*Engine, error) {
	rcv, err := core.NewReceiver(info)
	if err != nil {
		return nil, err
	}
	ctrl := layered.New(int(info.Layers) - 1)
	ctrl.SetLevel(startLevel)
	return &Engine{
		rcv:        rcv,
		ctrl:       ctrl,
		setLevel:   setLevel,
		info:       info,
		lastSerial: make(map[uint8]uint32),
		missing:    make(map[uint8]*missingWindow),
	}, nil
}

// Controller exposes the congestion controller (for tests/tuning).
func (e *Engine) Controller() *layered.Controller { return e.ctrl }

// HandlePacket ingests one wire packet. It returns done=true once the file
// is decodable. Malformed or foreign packets return an error and are not
// counted.
func (e *Engine) HandlePacket(pkt []byte) (done bool, err error) {
	h, payload, err := proto.ParseHeader(pkt)
	if err != nil {
		return e.rcv.Done(), err
	}
	if h.Session != e.info.Session {
		return e.rcv.Done(), fmt.Errorf("client: foreign session %#x", h.Session)
	}
	// Whole-download loss measurement from serial gaps. Serial arithmetic
	// is modular: a long-lived carousel wraps the uint32 serial, so the
	// gap is the unsigned difference, with deltas in the upper half-range
	// treated as reordered/old packets rather than as astronomical gaps.
	// The serials of a gap are remembered (up to a bounded window), so a
	// late arrival refunds its provisional loss exactly once — duplicates
	// and genuinely foreign old serials refund nothing.
	if last, ok := e.lastSerial[h.Group]; ok {
		switch delta := h.Serial - last; {
		case delta == 0:
			// Duplicate serial: nothing to account.
		case delta < 1<<31:
			e.lost += int(delta - 1)
			if delta > 1 {
				w := e.missing[h.Group]
				if w == nil {
					w = &missingWindow{set: make(map[uint32]struct{})}
					e.missing[h.Group] = w
				}
				// Oldest-first so the window's FIFO eviction keeps the
				// newest serials; a huge gap only records its tail.
				lo := last + 1
				if delta-1 > maxTrackedMissing {
					lo = h.Serial - maxTrackedMissing
				}
				for s := lo; s != h.Serial; s++ {
					w.add(s)
				}
			}
			e.lastSerial[h.Group] = h.Serial
		default:
			// Late arrival from before lastSerial: refund its loss if it
			// is one we counted.
			if w := e.missing[h.Group]; w != nil && w.refund(h.Serial) {
				e.lost--
			}
		}
	} else {
		e.lastSerial[h.Group] = h.Serial
	}
	e.received++
	// Congestion control: only meaningful with multiple layers.
	if e.info.Layers > 1 {
		before := e.ctrl.Level()
		after := e.ctrl.OnPacket(h.Group, h.Serial, h.Flags&proto.FlagSP != 0, h.Flags&proto.FlagBurst != 0)
		if after != before && e.setLevel != nil {
			e.setLevel(after)
		}
	}
	return e.rcv.Handle(int(h.Index), payload)
}

// Done reports whether the file is decodable.
func (e *Engine) Done() bool { return e.rcv.Done() }

// File reassembles and verifies the download.
func (e *Engine) File() ([]byte, error) { return e.rcv.File() }

// Level returns the current subscription level.
func (e *Engine) Level() int { return e.ctrl.Level() }

// MeasuredLoss returns the packet loss rate observed over the download.
func (e *Engine) MeasuredLoss() float64 {
	total := e.received + e.lost
	if total == 0 {
		return 0
	}
	return float64(e.lost) / float64(total)
}

// Efficiency returns (η, ηc, ηd) as defined in §7.3.
func (e *Engine) Efficiency() (eta, etaC, etaD float64) { return e.rcv.Efficiency() }
