// Package client implements the receiver engine of the prototype (§7.2,
// §7.3): it consumes fountain packets from a transport, runs the layered
// congestion controller on the SP/burst markers, adjusts its subscription
// level, and feeds the decoder until the file is reconstructable, keeping
// the reception-efficiency accounting (η, ηc, ηd) the paper reports in
// Figure 8.
//
// The engine is source-aware (§8): packets may arrive from any number of
// independent mirrors of the same session, tagged with a caller-chosen
// source id. Serial-gap loss measurement runs per (source, layer) — each
// mirror stamps its own serial space — and each source drives its own
// layered controller; the subscription level actually requested from the
// transport is the minimum across sources (the worst-loss source rule: a
// level is only sustainable if every joined path sustains it). Duplicate
// vs. distinct contributions are tracked per source, so the receiver can
// report how much each mirror actually added to the decode.
package client

import (
	"fmt"
	"math/bits"
	"sort"
	"strconv"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/evtrace"
	"repro/internal/layered"
	"repro/internal/metrics"
	"repro/internal/proto"
)

// Leveler adjusts the transport subscription level (transport.BusClient
// and transport.UDPClient satisfy it modulo error handling).
type Leveler func(level int)

// SourceStats is the per-source accounting snapshot of one mirror feed.
type SourceStats struct {
	Received  int     // packets accepted from this source
	Lost      int     // packets counted lost from serial gaps on this source
	Corrupt   int     // packets dropped for a failed integrity tag on this source
	Distinct  int     // packets that were new to the decoder
	Duplicate int     // packets the decoder had already seen (from any source)
	Loss      float64 // Lost / (Received + Lost)
	Level     int     // this source's controller level (worst-source input)
}

// source is the per-mirror receive state: serial/loss accounting and a
// layered congestion controller fed only by this mirror's packets. All
// per-layer state is indexed by layer group in flat slices sized at
// registration — the steady-state intake path performs no map operations
// and no allocations.
type source struct {
	lastSerial []uint32 // per layer; valid only where haveSerial
	haveSerial []bool
	missing    []missingWindow // per layer: serials counted lost, refundable on late arrival
	ctrl       *layered.Controller
	// Accounting counters are atomics: intake is single-goroutine, but a
	// metrics scrape (RegisterMetrics) reads them from another goroutine
	// while packets flow. lost/received are signed — late arrivals refund
	// provisional losses, and a decode error rolls one reception back.
	received  atomic.Int64
	lost      atomic.Int64
	corrupt   atomic.Int64
	distinct  atomic.Int64
	duplicate atomic.Int64
}

// Engine is one receiving client, harvesting from one or more sources.
type Engine struct {
	rcv      *core.Receiver
	setLevel Leveler
	info     proto.SessionInfo

	sources map[int]*source
	ids     []int // registration order (stats iteration)
	level   int   // effective subscription level: min over source controllers

	// Flight recorder: intake, drop, symbol-release and completion events
	// stamped with this receiver's actor id. Nil-safe; one branch when off.
	tr        *evtrace.Shard
	trActor   uint16
	traceDone bool // EvDone emitted (once, at the done transition)
	relSeen   int  // decoder release count already traced (EvRelease deltas)
}

// maxTrackedMissing bounds the per-(source, layer) window of refundable
// lost serials: reordering windows are short, so only the most recent
// serials of a gap need tracking; anything older stays counted as lost.
// Must be a power of two (the ring masks instead of dividing).
const maxTrackedMissing = 512

// missingWindow remembers the most recent serials counted as lost, so a
// late (reordered) arrival refunds its provisional loss exactly once. It
// is a fixed ring plus a live-slot bitset: inserting past capacity
// overwrites (= evicts) the oldest remembered serial, refunding clears the
// slot's live bit. Behaviour is identical to a FIFO set — the serials of
// distinct gaps never repeat while tracked (the stream position only moves
// forward, so a serial can enter the window at most once before it would
// be evicted) — but there are no map operations and no allocations:
// the window embeds by value in the per-source state.
type missingWindow struct {
	ring [maxTrackedMissing]uint32
	live [maxTrackedMissing / 64]uint64
	n    int // total inserts
}

func (w *missingWindow) add(s uint32) {
	slot := w.n & (maxTrackedMissing - 1)
	w.ring[slot] = s // overwrite = evict oldest (no-op if already refunded)
	w.live[slot>>6] |= 1 << (slot & 63)
	w.n++
}

// refund reports whether s is a tracked loss, forgetting it if so. The
// scan touches only live slots (word-at-a-time over the bitset); refunds
// happen once per reordered late arrival, so this is off the hot path.
func (w *missingWindow) refund(s uint32) bool {
	for wi, word := range w.live {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << b
			slot := wi<<6 | b
			if w.ring[slot] == s {
				w.live[wi] &^= 1 << b
				return true
			}
		}
	}
	return false
}

// New builds a single-source client engine from a session descriptor.
// setLevel is invoked whenever the effective subscription level changes
// (nil for single-layer sessions).
func New(info proto.SessionInfo, startLevel int, setLevel Leveler) (*Engine, error) {
	return NewMultiSource(info, 1, startLevel, setLevel)
}

// NewMultiSource builds a client engine harvesting the session from
// `sources` independent mirrors (ids 0..sources-1 are pre-registered;
// further ids may still appear via HandlePacketFrom). Every source's
// controller starts at startLevel; setLevel is invoked with the effective
// (minimum-across-sources) level whenever it changes.
func NewMultiSource(info proto.SessionInfo, sources, startLevel int, setLevel Leveler) (*Engine, error) {
	rcv, err := core.NewReceiver(info)
	if err != nil {
		return nil, err
	}
	if sources < 1 {
		sources = 1
	}
	e := &Engine{
		rcv:      rcv,
		setLevel: setLevel,
		info:     info,
		sources:  make(map[int]*source, sources),
	}
	for id := 0; id < sources; id++ {
		e.addSource(id, startLevel)
	}
	e.level = e.minLevel()
	return e, nil
}

// addSource registers a source whose controller starts at level. The
// per-layer serial and refund state is sized eagerly: a few KiB per
// (source, layer) buys a steady-state intake with no allocation at all.
func (e *Engine) addSource(id, level int) *source {
	ctrl := layered.New(int(e.info.Layers) - 1)
	ctrl.SetLevel(level)
	layers := int(e.info.Layers)
	if layers < 1 {
		layers = 1
	}
	s := &source{
		lastSerial: make([]uint32, layers),
		haveSerial: make([]bool, layers),
		missing:    make([]missingWindow, layers),
		ctrl:       ctrl,
	}
	e.sources[id] = s
	e.ids = append(e.ids, id)
	return s
}

// minLevel computes the worst-source subscription level.
func (e *Engine) minLevel() int {
	min := int(e.info.Layers) - 1
	if min < 0 {
		min = 0
	}
	for _, s := range e.sources {
		if l := s.ctrl.Level(); l < min {
			min = l
		}
	}
	return min
}

// SetTrace attaches a flight-recorder shard and the actor (receiver) id
// stamped on this engine's events: packet intake, integrity drops, symbol
// releases, and the decode-completion transition. The engine is
// single-goroutine, so the shard may be shared with the delivering
// transport for causally ordered streams.
func (e *Engine) SetTrace(sh *evtrace.Shard, actor uint16) {
	e.tr, e.trActor = sh, actor
}

// Controller exposes source 0's congestion controller (for tests/tuning of
// single-source clients). A level forced through it is reflected by
// Level() immediately; the transport setLevel callback still fires only on
// the next packet that shifts the cross-source minimum.
func (e *Engine) Controller() *layered.Controller { return e.sources[0].ctrl }

// HandlePacket ingests one wire packet from source 0 (the single-pipe
// client shape). It returns done=true once the file is decodable.
func (e *Engine) HandlePacket(pkt []byte) (done bool, err error) {
	return e.HandlePacketFrom(0, pkt)
}

// HandlePacketFrom ingests one wire packet received from the given source.
// Unknown source ids are registered on first use (their controller starts
// at the current effective level). The integrity trailer is verified
// before anything else: a corrupted packet is dropped before any byte
// reaches serial accounting or the decoder, counted per source
// (SourceStats.Corrupt), and returns no error — on a hostile channel
// corruption is an expected condition, like loss, not a client failure.
// Malformed or foreign packets return an error and are not counted. It
// returns done=true once the file is decodable.
func (e *Engine) HandlePacketFrom(src int, pkt []byte) (done bool, err error) {
	body, err := proto.VerifyPacket(pkt)
	if err == proto.ErrBadTag {
		s := e.sources[src]
		if s == nil {
			s = e.addSource(src, e.level)
		}
		s.corrupt.Add(1)
		if e.tr.On() {
			e.tr.Emit(evtrace.EvIntakeDrop, e.info.Session, uint16(src), e.trActor, 0, uint64(len(pkt)), 0)
		}
		return e.rcv.Done(), nil
	}
	if err != nil {
		return e.rcv.Done(), err
	}
	h, payload, err := proto.ParseHeader(body)
	if err != nil {
		return e.rcv.Done(), err
	}
	if h.Session != e.info.Session {
		return e.rcv.Done(), fmt.Errorf("client: foreign session %#x", h.Session)
	}
	// Reject malformed packets before any accounting: these are the exact
	// conditions the decoder would error on, checked up front so a corrupt
	// datagram cannot leave half-updated serial/loss state behind.
	if h.Index >= e.info.N {
		return e.rcv.Done(), fmt.Errorf("client: packet index %d out of range [0,%d)", h.Index, e.info.N)
	}
	if len(payload) != int(e.info.PacketLen) {
		return e.rcv.Done(), fmt.Errorf("client: payload %d bytes, want %d", len(payload), e.info.PacketLen)
	}
	s := e.sources[src]
	if s == nil {
		s = e.addSource(src, e.level)
	}
	if int(h.Group) >= len(s.missing) {
		return e.rcv.Done(), fmt.Errorf("client: layer group %d out of range [0,%d)", h.Group, len(s.missing))
	}
	// Whole-download loss measurement from serial gaps, independently per
	// source: each mirror stamps its own dense serial space, so mixing them
	// would fabricate astronomical gaps. Serial arithmetic is modular: a
	// long-lived carousel wraps the uint32 serial, so the gap is the
	// unsigned difference, with deltas in the upper half-range treated as
	// reordered/old packets rather than as astronomical gaps. The serials
	// of a gap are remembered (up to a bounded window), so a late arrival
	// refunds its provisional loss exactly once — duplicates and genuinely
	// foreign old serials refund nothing.
	if s.haveSerial[h.Group] {
		switch delta := h.Serial - s.lastSerial[h.Group]; {
		case delta == 0:
			// Duplicate serial: nothing to account.
		case delta < 1<<31:
			s.lost.Add(int64(delta) - 1)
			if delta > 1 {
				w := &s.missing[h.Group]
				// Oldest-first so the window's FIFO eviction keeps the
				// newest serials; a huge gap only records its tail.
				lo := s.lastSerial[h.Group] + 1
				if delta-1 > maxTrackedMissing {
					lo = h.Serial - maxTrackedMissing
				}
				for ser := lo; ser != h.Serial; ser++ {
					w.add(ser)
				}
			}
			s.lastSerial[h.Group] = h.Serial
		default:
			// Late arrival from before lastSerial: refund its loss if it
			// is one we counted.
			if s.missing[h.Group].refund(h.Serial) {
				s.lost.Add(-1)
			}
		}
	} else {
		s.haveSerial[h.Group] = true
		s.lastSerial[h.Group] = h.Serial
	}
	s.received.Add(1)
	if e.tr.On() {
		e.tr.Emit(evtrace.EvIntake, e.info.Session, uint16(src), e.trActor, h.Group,
			uint64(h.Serial), uint64(h.Index))
	}
	// Congestion control: only meaningful with multiple layers. The packet
	// feeds its own source's controller; the level requested from the
	// transport is the minimum across all sources — the highest rate every
	// joined path can sustain.
	if e.info.Layers > 1 {
		before := s.ctrl.Level()
		after := s.ctrl.OnPacket(h.Group, h.Serial, h.Flags&proto.FlagSP != 0, h.Flags&proto.FlagBurst != 0)
		if after != before {
			if eff := e.minLevel(); eff != e.level {
				e.level = eff
				if e.setLevel != nil {
					e.setLevel(eff)
				}
			}
		}
	}
	_, d0, _ := e.rcv.Stats()
	done, err = e.rcv.Handle(int(h.Index), payload)
	if err != nil {
		// Unreachable for well-formed input (index and length were
		// validated above — the decoder's only error conditions); undo the
		// reception count so Received == Distinct + Duplicate still holds
		// if a codec ever grows new failure modes.
		s.received.Add(-1)
		return done, err
	}
	if _, d1, _ := e.rcv.Stats(); d1 > d0 {
		s.distinct.Add(1)
		if e.tr.On() {
			e.tr.Emit(evtrace.EvSymbol, e.info.Session, uint16(src), e.trActor, h.Group,
				uint64(h.Index), uint64(d1))
		}
	} else {
		s.duplicate.Add(1)
	}
	if e.tr.On() {
		// Decoders that count symbol-release XOR work get it surfaced per
		// packet: the delta since the last traced count. A systematic codec
		// on a lossless channel emits no EvRelease at all — the property the
		// zero-XOR differential tests assert through the trace.
		if rel := e.rcv.Released(); rel > e.relSeen {
			e.tr.Emit(evtrace.EvRelease, e.info.Session, uint16(src), e.trActor, h.Group,
				uint64(h.Index), uint64(rel-e.relSeen))
			e.relSeen = rel
		}
	}
	if done && !e.traceDone && e.tr.On() {
		e.traceDone = true
		total, distinct, k := e.rcv.Stats()
		e.tr.Emit(evtrace.EvDone, e.info.Session, uint16(src), e.trActor, 0,
			uint64(total), uint64(k)<<32|uint64(uint32(distinct)))
	}
	return done, nil
}

// HandleBatchFrom ingests a batch of wire packets received from one source
// (the shape transport.MultiClient.RecvBatchFrom delivers). Processing
// stops as soon as the file becomes decodable — trailing packets of the
// final batch are not accounted, matching the per-packet loop a caller
// would otherwise write. Stray datagrams (malformed, foreign session) are
// skipped, the remaining packets still processed; the first such error is
// returned for observability.
func (e *Engine) HandleBatchFrom(src int, pkts [][]byte) (done bool, err error) {
	for _, pkt := range pkts {
		d, herr := e.HandlePacketFrom(src, pkt)
		if herr != nil && err == nil {
			err = herr
		}
		if d {
			return true, err
		}
	}
	return e.rcv.Done(), err
}

// Done reports whether the file is decodable.
func (e *Engine) Done() bool { return e.rcv.Done() }

// File reassembles and verifies the download.
func (e *Engine) File() ([]byte, error) { return e.rcv.File() }

// Level returns the current effective subscription level (the minimum
// across source controllers), recomputed so externally forced controller
// levels (Controller().SetLevel) are observable without waiting for the
// next packet.
func (e *Engine) Level() int { return e.minLevel() }

// Sources returns the registered source ids, ascending.
func (e *Engine) Sources() []int {
	ids := append([]int(nil), e.ids...)
	sort.Ints(ids)
	return ids
}

// SourceStats returns the accounting snapshot of one source (zero value
// for unknown ids).
func (e *Engine) SourceStats(id int) SourceStats {
	s := e.sources[id]
	if s == nil {
		return SourceStats{}
	}
	st := SourceStats{
		Received:  int(s.received.Load()),
		Lost:      int(s.lost.Load()),
		Corrupt:   int(s.corrupt.Load()),
		Distinct:  int(s.distinct.Load()),
		Duplicate: int(s.duplicate.Load()),
		Level:     s.ctrl.Level(),
	}
	if total := st.Received + st.Lost; total > 0 {
		st.Loss = float64(st.Lost) / float64(total)
	}
	return st
}

// WorstSource returns the id and measured loss rate of the source with the
// highest observed loss (the one gating the subscription level). With no
// traffic it returns the first registered source and 0.
func (e *Engine) WorstSource() (id int, loss float64) {
	id = e.ids[0]
	for _, sid := range e.Sources() {
		if l := e.SourceStats(sid).Loss; l > loss {
			id, loss = sid, l
		}
	}
	return id, loss
}

// Corrupt returns the total number of packets dropped for failed
// integrity tags, aggregated across all sources.
func (e *Engine) Corrupt() int {
	var n int64
	for _, s := range e.sources {
		n += s.corrupt.Load()
	}
	return int(n)
}

// MeasuredLoss returns the packet loss rate observed over the download,
// aggregated across all sources.
func (e *Engine) MeasuredLoss() float64 {
	var received, lost int64
	for _, s := range e.sources {
		received += s.received.Load()
		lost += s.lost.Load()
	}
	total := received + lost
	if total == 0 {
		return 0
	}
	return float64(lost) / float64(total)
}

// RegisterMetrics exposes the engine's per-source accounting on a scrape
// registry, one labeled series set per source registered at call time
// (sources appearing later via HandlePacketFrom are not retroactively
// added — register after all mirrors are known). The scrape reads the
// same atomics the intake path updates, so it is safe while packets flow;
// everything else on the Engine remains single-goroutine.
func (e *Engine) RegisterMetrics(r *metrics.Registry) {
	for _, id := range e.Sources() {
		s := e.sources[id]
		src := strconv.Itoa(id)
		r.CounterFunc(metrics.Label("fountain_client_received_total", "source", src),
			"packets accepted from the source",
			func() uint64 { return uint64(s.received.Load()) })
		r.CounterFunc(metrics.Label("fountain_client_lost_total", "source", src),
			"packets counted lost from serial gaps (net of reorder refunds)",
			func() uint64 { return uint64(s.lost.Load()) })
		r.CounterFunc(metrics.Label("fountain_client_corrupt_total", "source", src),
			"packets dropped for a failed integrity tag",
			func() uint64 { return uint64(s.corrupt.Load()) })
		r.CounterFunc(metrics.Label("fountain_client_distinct_total", "source", src),
			"packets that were new to the decoder",
			func() uint64 { return uint64(s.distinct.Load()) })
		r.CounterFunc(metrics.Label("fountain_client_duplicate_total", "source", src),
			"packets the decoder had already seen",
			func() uint64 { return uint64(s.duplicate.Load()) })
	}
}

// Stats returns the decoder-side (total received, distinct, k) counters —
// the exact integers behind Efficiency.
func (e *Engine) Stats() (total, distinct, k int) { return e.rcv.Stats() }

// Efficiency returns (η, ηc, ηd) as defined in §7.3, over the aggregate
// reception from all sources.
func (e *Engine) Efficiency() (eta, etaC, etaD float64) { return e.rcv.Efficiency() }
