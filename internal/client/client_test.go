package client

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/server"
	"repro/internal/transport"
)

// TestEndToEndSingleLayer runs server -> lossy bus -> client at several
// loss rates and verifies file integrity and efficiency accounting.
func TestEndToEndSingleLayer(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 100_000)
	rng.Read(data)
	for _, p := range []float64{0, 0.2, 0.5} {
		cfg := core.DefaultConfig()
		cfg.Layers = 1
		sess, err := core.NewSession(data, cfg)
		if err != nil {
			t.Fatal(err)
		}
		bus := transport.NewBus(1)
		eng, err := New(sess.Info(), 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		bc := bus.NewClient(0, &netsim.Bernoulli{P: p, Rng: netsim.NewRNG(uint64(p * 1000))}, func(layer int, pkt []byte) {
			eng.HandlePacket(pkt)
		})
		defer bc.Close()
		srv := server.New(sess, bus)
		for steps := 0; !eng.Done(); steps++ {
			if err := srv.Step(); err != nil {
				t.Fatal(err)
			}
			if steps > 50*sess.Codec().N() {
				t.Fatalf("p=%v: never completed", p)
			}
		}
		got, err := eng.File()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("p=%v: corrupted file", p)
		}
		eta, etaC, etaD := eng.Efficiency()
		if p == 0 && (etaD < 0.999 || etaC < 0.85) {
			t.Fatalf("lossless efficiencies too low: ηc=%v ηd=%v", etaC, etaD)
		}
		if eta <= 0 || eta > 1.01 {
			t.Fatalf("p=%v: η=%v out of range", p, eta)
		}
		if p > 0 {
			ml := eng.MeasuredLoss()
			if ml < p-0.1 || ml > p+0.1 {
				t.Fatalf("measured loss %v, injected %v", ml, p)
			}
		}
	}
}

// TestEndToEndLayered exercises the 4-layer protocol with congestion
// control: a lossy client must still complete and stay at a sane level.
func TestEndToEndLayered(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := make([]byte, 60_000)
	rng.Read(data)
	cfg := core.DefaultConfig()
	cfg.Layers = 4
	cfg.SPInterval = 8
	sess, err := core.NewSession(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bus := transport.NewBus(4)
	var bc *transport.BusClient
	eng, err := New(sess.Info(), 1, func(level int) { bc.SetLevel(level) })
	if err != nil {
		t.Fatal(err)
	}
	bc = bus.NewClient(1, &netsim.Bernoulli{P: 0.1, Rng: netsim.NewRNG(2)}, func(layer int, pkt []byte) {
		eng.HandlePacket(pkt)
	})
	defer bc.Close()
	srv := server.New(sess, bus)
	for steps := 0; !eng.Done(); steps++ {
		if err := srv.Step(); err != nil {
			t.Fatal(err)
		}
		if steps > 100*sess.Codec().N() {
			t.Fatal("layered client never completed")
		}
	}
	got, err := eng.File()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("corrupted file")
	}
	if lvl := eng.Level(); lvl < 0 || lvl > 3 {
		t.Fatalf("level %d out of range", lvl)
	}
	eta, _, _ := eng.Efficiency()
	if eta <= 0.2 {
		t.Fatalf("layered efficiency suspiciously low: %v", eta)
	}
}

// TestLayeredAdaptsDown: a client subscribed high with heavy loss must
// drop levels.
func TestLayeredAdaptsDown(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := make([]byte, 40_000)
	rng.Read(data)
	cfg := core.DefaultConfig()
	cfg.Layers = 4
	cfg.SPInterval = 4
	sess, _ := core.NewSession(data, cfg)
	bus := transport.NewBus(4)
	var bc *transport.BusClient
	eng, _ := New(sess.Info(), 3, func(level int) { bc.SetLevel(level) })
	bc = bus.NewClient(3, &netsim.Bernoulli{P: 0.55, Rng: netsim.NewRNG(3)}, func(layer int, pkt []byte) {
		eng.HandlePacket(pkt)
	})
	defer bc.Close()
	srv := server.New(sess, bus)
	minLevel := 3
	// Keep stepping past completion: the point is the controller's
	// adaptation, which runs on every SP regardless of decode state.
	for steps := 0; steps < 400; steps++ {
		srv.Step()
		if eng.Level() < minLevel {
			minLevel = eng.Level()
		}
	}
	if minLevel == 3 {
		t.Fatal("controller never dropped under 55% loss")
	}
}

func TestRejectsForeignPackets(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := make([]byte, 5_000)
	rng.Read(data)
	cfg := core.DefaultConfig()
	cfg.Layers = 1
	sess, _ := core.NewSession(data, cfg)
	eng, _ := New(sess.Info(), 0, nil)
	// A foreign-session packet with a *valid* integrity tag: re-tag after
	// flipping the session id, so it is the session check that must reject.
	pkt := sess.Packet(0, 0, 1, 0)
	pkt[10] ^= 0x55
	pkt = proto.AppendTag(pkt[:len(pkt)-proto.TagLen])
	if _, err := eng.HandlePacket(pkt); err == nil {
		t.Fatal("foreign packet accepted")
	}
	if _, err := eng.HandlePacket([]byte{1}); err == nil {
		t.Fatal("short packet accepted")
	}
	// A corrupted packet (bad tag) is not an error — it is dropped before
	// any accounting and counted per source, like loss on a bad channel.
	bad := sess.Packet(0, 0, 2, 0)
	bad[proto.HeaderLen] ^= 0xFF
	if _, err := eng.HandlePacket(bad); err != nil {
		t.Fatalf("corrupted packet returned error: %v", err)
	}
	if got := eng.SourceStats(0).Corrupt; got != 1 {
		t.Fatalf("Corrupt = %d, want 1", got)
	}
	if total, _, _ := eng.Stats(); total != 0 {
		t.Fatalf("corrupted packet reached the decoder: total=%d", total)
	}
}

// TestLossAccountingWrapAndReorder: whole-download loss measurement must
// survive uint32 serial wraparound (a long-lived carousel) and not corrupt
// the estimate on reordered packets.
func TestLossAccountingWrapAndReorder(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := make([]byte, 5_000)
	rng.Read(data)
	cfg := core.DefaultConfig()
	cfg.Layers = 1
	sess, err := core.NewSession(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	feed := func(eng *Engine, serial uint32) {
		if _, err := eng.HandlePacket(sess.Packet(0, 0, serial, 0)); err != nil {
			t.Fatal(err)
		}
	}

	// Crossing the wrap boundary with one packet lost in the gap:
	// ..fffe, ..ffff, then 2 (0 and 1 were lost... no: ffff -> 2 skips 0
	// and 1, a gap of 2).
	eng, err := New(sess.Info(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	feed(eng, 0xFFFFFFFE)
	feed(eng, 0xFFFFFFFF)
	feed(eng, 2) // wraps: serials 0 and 1 lost
	if got, want := eng.MeasuredLoss(), 2.0/5.0; got != want {
		t.Fatalf("wrap loss = %v, want %v", got, want)
	}

	// A pre-fix client would compute h.Serial > last as false across the
	// wrap and silently miss the gap — worse, a huge spurious gap appears
	// when serials are compared the other way. Reordering: late arrival of
	// a previously-counted-lost packet must refund exactly one loss.
	eng2, err := New(sess.Info(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	feed(eng2, 1)
	feed(eng2, 4) // 2 and 3 presumed lost
	if got := eng2.MeasuredLoss(); got != 2.0/4.0 {
		t.Fatalf("gap loss = %v, want 0.5", got)
	}
	feed(eng2, 3) // late arrival: refund one
	if got, want := eng2.MeasuredLoss(), 1.0/4.0; got != want {
		t.Fatalf("post-reorder loss = %v, want %v", got, want)
	}
	// Duplicate serial: no change to the loss count.
	feed(eng2, 4)
	if got, want := eng2.MeasuredLoss(), 1.0/5.0; got != want {
		t.Fatalf("post-duplicate loss = %v, want %v", got, want)
	}
	// A duplicated *late* packet must not refund twice: serial 3 was
	// already refunded above, so this one changes only the receive count.
	feed(eng2, 3)
	if got, want := eng2.MeasuredLoss(), 1.0/6.0; got != want {
		t.Fatalf("double-refund guard: loss = %v, want %v", got, want)
	}
	// An old serial that was never counted lost (e.g. a stray from before
	// the first packet) must not refund anything either.
	feed(eng2, 1)
	if got, want := eng2.MeasuredLoss(), 1.0/7.0; got != want {
		t.Fatalf("uncounted-old-serial refund: loss = %v, want %v", got, want)
	}
}

// TestLossWindowDoesNotSaturate: after far more than maxTrackedMissing
// genuine losses, freshly lost serials must still be refundable — the
// window evicts oldest entries instead of refusing new ones.
func TestLossWindowDoesNotSaturate(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data := make([]byte, 5_000)
	rng.Read(data)
	cfg := core.DefaultConfig()
	cfg.Layers = 1
	sess, err := core.NewSession(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(sess.Info(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	feed := func(serial uint32) {
		if _, err := eng.HandlePacket(sess.Packet(0, 0, serial, 0)); err != nil {
			t.Fatal(err)
		}
	}
	// 2000 gaps of one serial each: every even serial received, odd lost.
	var serial uint32
	for i := 0; i < 2000; i++ {
		serial += 2
		feed(serial)
	}
	lostBefore := eng.SourceStats(0).Lost
	if lostBefore < 1999 {
		t.Fatalf("expected ~1999 provisional losses, got %d", lostBefore)
	}
	// The most recent odd serial must still be tracked and refundable.
	feed(serial - 1)
	if got := eng.SourceStats(0).Lost; got != lostBefore-1 {
		t.Fatalf("recent loss not refunded after long run: lost=%d want %d", got, lostBefore-1)
	}
	// An ancient one fell out of the window: no refund.
	feed(3)
	if got := eng.SourceStats(0).Lost; got != lostBefore-1 {
		t.Fatalf("ancient serial refunded: lost=%d", got)
	}
}

// TestTwoSourceWrapAndReorderStress is the missing-window refund path
// under multi-source fire: two mirrors whose serial spaces straddle
// ^uint32(0) at different offsets, with interleaved gaps, reordered late
// arrivals, and duplicates on both. Each source's accounting must stay
// fully independent — a refund on one source must never touch the other —
// and the aggregate must be the exact sum.
func TestTwoSourceWrapAndReorderStress(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 5_000)
	rng.Read(data)
	cfg := core.DefaultConfig()
	cfg.Layers = 1
	sess, err := core.NewSession(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewMultiSource(sess.Info(), 2, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	feed := func(src int, serial uint32) {
		t.Helper()
		if _, err := eng.HandlePacketFrom(src, sess.Packet(0, 0, serial, 0)); err != nil {
			t.Fatal(err)
		}
	}
	check := func(src, wantRecv, wantLost int) {
		t.Helper()
		st := eng.SourceStats(src)
		if st.Received != wantRecv || st.Lost != wantLost {
			t.Fatalf("source %d: received=%d lost=%d, want %d/%d",
				src, st.Received, st.Lost, wantRecv, wantLost)
		}
	}

	// Source 0 approaches the wrap from 0xFFFFFFF0; source 1 from
	// 0xFFFFFFFA. Interleave their streams: deltas straddle the boundary
	// independently.
	feed(0, 0xFFFFFFF0)
	feed(1, 0xFFFFFFFA)
	feed(0, 0xFFFFFFF3) // gap of 2 on source 0 (F1, F2 lost)
	feed(1, 0xFFFFFFFD) // gap of 2 on source 1 (FB, FC lost)
	check(0, 2, 2)
	check(1, 2, 2)

	// Both wrap, each skipping serials across the boundary.
	feed(0, 2) // F4..FF + 0,1 lost: 14 more on source 0
	feed(1, 1) // FE, FF, 0 lost: 3 more on source 1
	check(0, 3, 16)
	check(1, 3, 5)

	// Late arrivals from before the wrap: refund exactly one loss on the
	// right source only.
	feed(0, 0xFFFFFFF1)
	check(0, 4, 15)
	check(1, 3, 5) // untouched
	feed(1, 0xFFFFFFFF)
	check(0, 4, 15) // untouched
	check(1, 4, 4)

	// A duplicated late packet must not refund twice on its source.
	feed(0, 0xFFFFFFF1)
	check(0, 5, 15)
	// The same serial value on the *other* source was never lost there
	// (it's below source 1's first-seen serial and untracked): no refund.
	feed(1, 0xFFFFFFF1)
	check(1, 5, 4)

	// Same-serial duplicates of the current head: received only.
	feed(0, 2)
	feed(1, 1)
	check(0, 6, 15)
	check(1, 6, 4)

	// Aggregate loss is the exact per-source sum.
	if got, want := eng.MeasuredLoss(), float64(15+4)/float64(15+4+6+6); got != want {
		t.Fatalf("aggregate loss %v, want %v", got, want)
	}
}

// TestWorstSourceGovernsLevel: with two mirrors feeding the 4-layer
// protocol, a clean source must not raise the subscription while the other
// source is losing heavily — the effective level is the minimum across
// per-source controllers, and it must recover once the bad path heals.
func TestWorstSourceGovernsLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	data := make([]byte, 40_000)
	rng.Read(data)
	cfg := core.DefaultConfig()
	cfg.Layers = 4
	cfg.SPInterval = 4
	sess, err := core.NewSession(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var levels []int
	eng, err := NewMultiSource(sess.Info(), 2, 2, func(l int) { levels = append(levels, l) })
	if err != nil {
		t.Fatal(err)
	}
	if eng.Level() != 2 {
		t.Fatalf("start level %d, want 2", eng.Level())
	}

	// Drive both sources from independent carousels; source 1 loses 60%.
	carA, carB := core.NewCarousel(sess), core.NewCarouselAt(sess, 3)
	lossy := rand.New(rand.NewSource(99))
	for round := 0; round < 200; round++ {
		carA.NextRound(func(layer int, pkt []byte) error {
			if layer <= eng.Level() {
				eng.HandlePacketFrom(0, pkt)
			}
			return nil
		})
		carB.NextRound(func(layer int, pkt []byte) error {
			if layer <= eng.Level() && lossy.Float64() >= 0.6 {
				eng.HandlePacketFrom(1, pkt)
			}
			return nil
		})
	}
	if st := eng.SourceStats(0); st.Loss != 0 {
		t.Fatalf("clean source measured loss %v", st.Loss)
	}
	if st := eng.SourceStats(1); st.Loss < 0.3 {
		t.Fatalf("lossy source measured only %v", st.Loss)
	}
	if eng.Level() >= 2 {
		t.Fatalf("effective level %d did not drop despite 60%% loss on source 1", eng.Level())
	}
	if id, loss := eng.WorstSource(); id != 1 || loss < 0.3 {
		t.Fatalf("worst source (%d, %v), want source 1", id, loss)
	}
	// The clean source's own controller may sit higher: the minimum rule is
	// what gates the subscription.
	if s0 := eng.SourceStats(0).Level; s0 < eng.Level() {
		t.Fatalf("source 0 level %d below effective %d", s0, eng.Level())
	}
	if len(levels) == 0 {
		t.Fatal("setLevel never invoked")
	}

	// Heal source 1: with both paths clean the controller must climb again.
	floor := eng.Level()
	for round := 200; round < 600 && eng.Level() <= floor; round++ {
		carA.NextRound(func(layer int, pkt []byte) error {
			if layer <= eng.Level() {
				eng.HandlePacketFrom(0, pkt)
			}
			return nil
		})
		carB.NextRound(func(layer int, pkt []byte) error {
			if layer <= eng.Level() {
				eng.HandlePacketFrom(1, pkt)
			}
			return nil
		})
	}
	if eng.Level() <= floor {
		t.Fatalf("level stuck at %d after both paths healed", eng.Level())
	}
}

// TestPerSourceDuplicateBookkeeping: two lossless mirrors sending the same
// single-layer carousel in phase — every packet from the second-arriving
// source is a cross-source duplicate and must be charged to that source,
// while both sources' Received counts stay honest.
func TestPerSourceDuplicateBookkeeping(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	data := make([]byte, 20_000)
	rng.Read(data)
	cfg := core.DefaultConfig()
	cfg.Layers = 1
	sess, err := core.NewSession(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewMultiSource(sess.Info(), 2, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	carA, carB := core.NewCarousel(sess), core.NewCarousel(sess) // same phase!
	for round := 0; !eng.Done(); round++ {
		carA.NextRound(func(_ int, pkt []byte) error {
			eng.HandlePacketFrom(0, pkt)
			return nil
		})
		if eng.Done() {
			break
		}
		carB.NextRound(func(_ int, pkt []byte) error {
			eng.HandlePacketFrom(1, pkt)
			return nil
		})
		if round > 10*sess.Codec().N() {
			t.Fatal("never decoded")
		}
	}
	a, b := eng.SourceStats(0), eng.SourceStats(1)
	if a.Duplicate != 0 {
		t.Fatalf("first source charged %d duplicates", a.Duplicate)
	}
	if b.Distinct != 0 || b.Duplicate != b.Received {
		t.Fatalf("in-phase mirror not all-duplicate: %+v", b)
	}
	if a.Distinct != a.Received {
		t.Fatalf("first source not all-distinct: %+v", a)
	}
	if _, err := eng.File(); err != nil {
		t.Fatal(err)
	}
}
