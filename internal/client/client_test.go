package client

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/transport"
)

// TestEndToEndSingleLayer runs server -> lossy bus -> client at several
// loss rates and verifies file integrity and efficiency accounting.
func TestEndToEndSingleLayer(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 100_000)
	rng.Read(data)
	for _, p := range []float64{0, 0.2, 0.5} {
		cfg := core.DefaultConfig()
		cfg.Layers = 1
		sess, err := core.NewSession(data, cfg)
		if err != nil {
			t.Fatal(err)
		}
		bus := transport.NewBus(1)
		eng, err := New(sess.Info(), 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		bc := bus.NewClient(0, &netsim.Bernoulli{P: p, Rng: rng}, func(layer int, pkt []byte) {
			eng.HandlePacket(pkt)
		})
		defer bc.Close()
		srv := server.New(sess, bus)
		for steps := 0; !eng.Done(); steps++ {
			if err := srv.Step(); err != nil {
				t.Fatal(err)
			}
			if steps > 50*sess.Codec().N() {
				t.Fatalf("p=%v: never completed", p)
			}
		}
		got, err := eng.File()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("p=%v: corrupted file", p)
		}
		eta, etaC, etaD := eng.Efficiency()
		if p == 0 && (etaD < 0.999 || etaC < 0.85) {
			t.Fatalf("lossless efficiencies too low: ηc=%v ηd=%v", etaC, etaD)
		}
		if eta <= 0 || eta > 1.01 {
			t.Fatalf("p=%v: η=%v out of range", p, eta)
		}
		if p > 0 {
			ml := eng.MeasuredLoss()
			if ml < p-0.1 || ml > p+0.1 {
				t.Fatalf("measured loss %v, injected %v", ml, p)
			}
		}
	}
}

// TestEndToEndLayered exercises the 4-layer protocol with congestion
// control: a lossy client must still complete and stay at a sane level.
func TestEndToEndLayered(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := make([]byte, 60_000)
	rng.Read(data)
	cfg := core.DefaultConfig()
	cfg.Layers = 4
	cfg.SPInterval = 8
	sess, err := core.NewSession(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bus := transport.NewBus(4)
	var bc *transport.BusClient
	eng, err := New(sess.Info(), 1, func(level int) { bc.SetLevel(level) })
	if err != nil {
		t.Fatal(err)
	}
	bc = bus.NewClient(1, &netsim.Bernoulli{P: 0.1, Rng: rng}, func(layer int, pkt []byte) {
		eng.HandlePacket(pkt)
	})
	defer bc.Close()
	srv := server.New(sess, bus)
	for steps := 0; !eng.Done(); steps++ {
		if err := srv.Step(); err != nil {
			t.Fatal(err)
		}
		if steps > 100*sess.Codec().N() {
			t.Fatal("layered client never completed")
		}
	}
	got, err := eng.File()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("corrupted file")
	}
	if lvl := eng.Level(); lvl < 0 || lvl > 3 {
		t.Fatalf("level %d out of range", lvl)
	}
	eta, _, _ := eng.Efficiency()
	if eta <= 0.2 {
		t.Fatalf("layered efficiency suspiciously low: %v", eta)
	}
}

// TestLayeredAdaptsDown: a client subscribed high with heavy loss must
// drop levels.
func TestLayeredAdaptsDown(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := make([]byte, 40_000)
	rng.Read(data)
	cfg := core.DefaultConfig()
	cfg.Layers = 4
	cfg.SPInterval = 4
	sess, _ := core.NewSession(data, cfg)
	bus := transport.NewBus(4)
	var bc *transport.BusClient
	eng, _ := New(sess.Info(), 3, func(level int) { bc.SetLevel(level) })
	bc = bus.NewClient(3, &netsim.Bernoulli{P: 0.55, Rng: rng}, func(layer int, pkt []byte) {
		eng.HandlePacket(pkt)
	})
	defer bc.Close()
	srv := server.New(sess, bus)
	minLevel := 3
	// Keep stepping past completion: the point is the controller's
	// adaptation, which runs on every SP regardless of decode state.
	for steps := 0; steps < 400; steps++ {
		srv.Step()
		if eng.Level() < minLevel {
			minLevel = eng.Level()
		}
	}
	if minLevel == 3 {
		t.Fatal("controller never dropped under 55% loss")
	}
}

func TestRejectsForeignPackets(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := make([]byte, 5_000)
	rng.Read(data)
	cfg := core.DefaultConfig()
	cfg.Layers = 1
	sess, _ := core.NewSession(data, cfg)
	eng, _ := New(sess.Info(), 0, nil)
	pkt := sess.Packet(0, 0, 1, 0)
	pkt[10] ^= 0x55
	if _, err := eng.HandlePacket(pkt); err == nil {
		t.Fatal("foreign packet accepted")
	}
	if _, err := eng.HandlePacket([]byte{1}); err == nil {
		t.Fatal("short packet accepted")
	}
}

// TestLossAccountingWrapAndReorder: whole-download loss measurement must
// survive uint32 serial wraparound (a long-lived carousel) and not corrupt
// the estimate on reordered packets.
func TestLossAccountingWrapAndReorder(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := make([]byte, 5_000)
	rng.Read(data)
	cfg := core.DefaultConfig()
	cfg.Layers = 1
	sess, err := core.NewSession(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	feed := func(eng *Engine, serial uint32) {
		if _, err := eng.HandlePacket(sess.Packet(0, 0, serial, 0)); err != nil {
			t.Fatal(err)
		}
	}

	// Crossing the wrap boundary with one packet lost in the gap:
	// ..fffe, ..ffff, then 2 (0 and 1 were lost... no: ffff -> 2 skips 0
	// and 1, a gap of 2).
	eng, err := New(sess.Info(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	feed(eng, 0xFFFFFFFE)
	feed(eng, 0xFFFFFFFF)
	feed(eng, 2) // wraps: serials 0 and 1 lost
	if got, want := eng.MeasuredLoss(), 2.0/5.0; got != want {
		t.Fatalf("wrap loss = %v, want %v", got, want)
	}

	// A pre-fix client would compute h.Serial > last as false across the
	// wrap and silently miss the gap — worse, a huge spurious gap appears
	// when serials are compared the other way. Reordering: late arrival of
	// a previously-counted-lost packet must refund exactly one loss.
	eng2, err := New(sess.Info(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	feed(eng2, 1)
	feed(eng2, 4) // 2 and 3 presumed lost
	if got := eng2.MeasuredLoss(); got != 2.0/4.0 {
		t.Fatalf("gap loss = %v, want 0.5", got)
	}
	feed(eng2, 3) // late arrival: refund one
	if got, want := eng2.MeasuredLoss(), 1.0/4.0; got != want {
		t.Fatalf("post-reorder loss = %v, want %v", got, want)
	}
	// Duplicate serial: no change to the loss count.
	feed(eng2, 4)
	if got, want := eng2.MeasuredLoss(), 1.0/5.0; got != want {
		t.Fatalf("post-duplicate loss = %v, want %v", got, want)
	}
	// A duplicated *late* packet must not refund twice: serial 3 was
	// already refunded above, so this one changes only the receive count.
	feed(eng2, 3)
	if got, want := eng2.MeasuredLoss(), 1.0/6.0; got != want {
		t.Fatalf("double-refund guard: loss = %v, want %v", got, want)
	}
	// An old serial that was never counted lost (e.g. a stray from before
	// the first packet) must not refund anything either.
	feed(eng2, 1)
	if got, want := eng2.MeasuredLoss(), 1.0/7.0; got != want {
		t.Fatalf("uncounted-old-serial refund: loss = %v, want %v", got, want)
	}
}

// TestLossWindowDoesNotSaturate: after far more than maxTrackedMissing
// genuine losses, freshly lost serials must still be refundable — the
// window evicts oldest entries instead of refusing new ones.
func TestLossWindowDoesNotSaturate(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data := make([]byte, 5_000)
	rng.Read(data)
	cfg := core.DefaultConfig()
	cfg.Layers = 1
	sess, err := core.NewSession(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(sess.Info(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	feed := func(serial uint32) {
		if _, err := eng.HandlePacket(sess.Packet(0, 0, serial, 0)); err != nil {
			t.Fatal(err)
		}
	}
	// 2000 gaps of one serial each: every even serial received, odd lost.
	var serial uint32
	for i := 0; i < 2000; i++ {
		serial += 2
		feed(serial)
	}
	lostBefore := eng.lost
	if lostBefore < 1999 {
		t.Fatalf("expected ~1999 provisional losses, got %d", lostBefore)
	}
	// The most recent odd serial must still be tracked and refundable.
	feed(serial - 1)
	if eng.lost != lostBefore-1 {
		t.Fatalf("recent loss not refunded after long run: lost=%d want %d", eng.lost, lostBefore-1)
	}
	// An ancient one fell out of the window: no refund.
	feed(3)
	if eng.lost != lostBefore-1 {
		t.Fatalf("ancient serial refunded: lost=%d", eng.lost)
	}
}
