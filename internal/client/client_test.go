package client

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/transport"
)

// TestEndToEndSingleLayer runs server -> lossy bus -> client at several
// loss rates and verifies file integrity and efficiency accounting.
func TestEndToEndSingleLayer(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 100_000)
	rng.Read(data)
	for _, p := range []float64{0, 0.2, 0.5} {
		cfg := core.DefaultConfig()
		cfg.Layers = 1
		sess, err := core.NewSession(data, cfg)
		if err != nil {
			t.Fatal(err)
		}
		bus := transport.NewBus(1)
		eng, err := New(sess.Info(), 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		bc := bus.NewClient(0, &netsim.Bernoulli{P: p, Rng: rng}, func(layer int, pkt []byte) {
			eng.HandlePacket(pkt)
		})
		defer bc.Close()
		srv := server.New(sess, bus)
		for steps := 0; !eng.Done(); steps++ {
			if err := srv.Step(); err != nil {
				t.Fatal(err)
			}
			if steps > 50*sess.Codec().N() {
				t.Fatalf("p=%v: never completed", p)
			}
		}
		got, err := eng.File()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("p=%v: corrupted file", p)
		}
		eta, etaC, etaD := eng.Efficiency()
		if p == 0 && (etaD < 0.999 || etaC < 0.85) {
			t.Fatalf("lossless efficiencies too low: ηc=%v ηd=%v", etaC, etaD)
		}
		if eta <= 0 || eta > 1.01 {
			t.Fatalf("p=%v: η=%v out of range", p, eta)
		}
		if p > 0 {
			ml := eng.MeasuredLoss()
			if ml < p-0.1 || ml > p+0.1 {
				t.Fatalf("measured loss %v, injected %v", ml, p)
			}
		}
	}
}

// TestEndToEndLayered exercises the 4-layer protocol with congestion
// control: a lossy client must still complete and stay at a sane level.
func TestEndToEndLayered(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := make([]byte, 60_000)
	rng.Read(data)
	cfg := core.DefaultConfig()
	cfg.Layers = 4
	cfg.SPInterval = 8
	sess, err := core.NewSession(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bus := transport.NewBus(4)
	var bc *transport.BusClient
	eng, err := New(sess.Info(), 1, func(level int) { bc.SetLevel(level) })
	if err != nil {
		t.Fatal(err)
	}
	bc = bus.NewClient(1, &netsim.Bernoulli{P: 0.1, Rng: rng}, func(layer int, pkt []byte) {
		eng.HandlePacket(pkt)
	})
	defer bc.Close()
	srv := server.New(sess, bus)
	for steps := 0; !eng.Done(); steps++ {
		if err := srv.Step(); err != nil {
			t.Fatal(err)
		}
		if steps > 100*sess.Codec().N() {
			t.Fatal("layered client never completed")
		}
	}
	got, err := eng.File()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("corrupted file")
	}
	if lvl := eng.Level(); lvl < 0 || lvl > 3 {
		t.Fatalf("level %d out of range", lvl)
	}
	eta, _, _ := eng.Efficiency()
	if eta <= 0.2 {
		t.Fatalf("layered efficiency suspiciously low: %v", eta)
	}
}

// TestLayeredAdaptsDown: a client subscribed high with heavy loss must
// drop levels.
func TestLayeredAdaptsDown(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := make([]byte, 40_000)
	rng.Read(data)
	cfg := core.DefaultConfig()
	cfg.Layers = 4
	cfg.SPInterval = 4
	sess, _ := core.NewSession(data, cfg)
	bus := transport.NewBus(4)
	var bc *transport.BusClient
	eng, _ := New(sess.Info(), 3, func(level int) { bc.SetLevel(level) })
	bc = bus.NewClient(3, &netsim.Bernoulli{P: 0.55, Rng: rng}, func(layer int, pkt []byte) {
		eng.HandlePacket(pkt)
	})
	defer bc.Close()
	srv := server.New(sess, bus)
	minLevel := 3
	// Keep stepping past completion: the point is the controller's
	// adaptation, which runs on every SP regardless of decode state.
	for steps := 0; steps < 400; steps++ {
		srv.Step()
		if eng.Level() < minLevel {
			minLevel = eng.Level()
		}
	}
	if minLevel == 3 {
		t.Fatal("controller never dropped under 55% loss")
	}
}

func TestRejectsForeignPackets(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := make([]byte, 5_000)
	rng.Read(data)
	cfg := core.DefaultConfig()
	cfg.Layers = 1
	sess, _ := core.NewSession(data, cfg)
	eng, _ := New(sess.Info(), 0, nil)
	pkt := sess.Packet(0, 0, 1, 0)
	pkt[10] ^= 0x55
	if _, err := eng.HandlePacket(pkt); err == nil {
		t.Fatal("foreign packet accepted")
	}
	if _, err := eng.HandlePacket([]byte{1}); err == nil {
		t.Fatal("short packet accepted")
	}
}
