// Package benchproto holds the reception protocol of the paper's Table 2-3
// benchmarks, shared by the Go benchmarks (bench_test.go) and the JSON
// trajectory tool (cmd/bench) so the two always measure the same workload.
package benchproto

import "math/rand"

// Source returns k deterministic pseudo-random packets of pl bytes (the
// benchmark corpus; seed 1 matches the historical bench_test fixtures).
func Source(k, pl int) [][]byte {
	rng := rand.New(rand.NewSource(1))
	out := make([][]byte, k)
	for i := range out {
		out[i] = make([]byte, pl)
		rng.Read(out[i])
	}
	return out
}

// TornadoOrder is the Table 3 reception for Tornado codes: a uniformly
// random order over all n encoding packets (the decoder stops early at
// Done).
func TornadoOrder(rng *rand.Rand, n int) []int {
	return rng.Perm(n)
}

// RSOrder is the Table 3 reception for the MDS Reed-Solomon baselines:
// k/2 random source packets topped up to k with random repair packets
// (any k of n recover the source; works for odd k too).
func RSOrder(rng *rand.Rand, k int) []int {
	order := make([]int, 0, k)
	order = append(order, rng.Perm(k)[:k/2]...)
	for _, j := range rng.Perm(k)[:k-k/2] {
		order = append(order, k+j)
	}
	return order
}
