package raptor

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/code"
)

func testSrc(t testing.TB, k, packetLen int, seed int64) [][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	src := make([][]byte, k)
	for i := range src {
		src[i] = make([]byte, packetLen)
		rng.Read(src[i])
	}
	return src
}

func mustNew(t testing.TB, k, packetLen int, seed int64) *Codec {
	t.Helper()
	c, err := New(k, packetLen, seed, 0, 0, 0, 0)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func checkSource(t *testing.T, dec code.Decoder, src [][]byte) {
	t.Helper()
	got, err := dec.Source()
	if err != nil {
		t.Fatalf("Source: %v", err)
	}
	for i := range src {
		if !bytes.Equal(got[i], src[i]) {
			t.Fatalf("source packet %d mismatch", i)
		}
	}
}

// The systematic zero-loss path: the k source packets straight off the
// wire reconstruct bit-identically with zero XOR work and zero releases.
func TestSystematicZeroLossZeroXOR(t *testing.T) {
	const k, pl = 1000, 64
	c := mustNew(t, k, pl, 42)
	src := testSrc(t, k, pl, 1)
	enc, err := c.EncodeRange(src, 0, k)
	if err != nil {
		t.Fatalf("EncodeRange: %v", err)
	}
	for i := range enc {
		if &enc[i][0] != &src[i][0] {
			t.Fatalf("systematic packet %d does not alias src", i)
		}
	}
	dec := c.NewDecoder().(*decoder)
	for i := 0; i < k; i++ {
		done, err := dec.Add(i, enc[i])
		if err != nil {
			t.Fatalf("Add(%d): %v", i, err)
		}
		if done != (i == k-1) {
			t.Fatalf("done=%v at packet %d", done, i)
		}
	}
	if dec.Released() != 0 {
		t.Fatalf("Released() = %d, want 0", dec.Released())
	}
	if dec.XORs() != 0 {
		t.Fatalf("XORs() = %d, want 0", dec.XORs())
	}
	if dec.Received() != k {
		t.Fatalf("Received() = %d, want %d", dec.Received(), k)
	}
	checkSource(t, dec, src)
}

// Repair-only reception (an uncoordinated mirror's receiver that joined
// late sees no systematic packets) must still decode near k.
func TestRepairOnlyRoundTrip(t *testing.T) {
	const k, pl = 500, 48
	c := mustNew(t, k, pl, 7)
	src := testSrc(t, k, pl, 2)
	dec := c.NewDecoder()
	budget := k + k/4
	got := 0
	for i := k; i < k+budget; i++ {
		pkts, err := c.EncodeRange(src, i, i+1)
		if err != nil {
			t.Fatalf("EncodeRange(%d): %v", i, err)
		}
		got++
		done, err := dec.Add(i, pkts[0])
		if err != nil {
			t.Fatalf("Add(%d): %v", i, err)
		}
		if done {
			break
		}
	}
	if !dec.Done() {
		t.Fatalf("not done after %d repair packets (k=%d)", got, k)
	}
	checkSource(t, dec, src)
	t.Logf("repair-only: done after %d packets, overhead %.4f", got, float64(got)/float64(k))
}

// Mixed reception: a lossy receiver sees most systematic packets plus the
// repair stream.
func TestMixedLossRoundTrip(t *testing.T) {
	const k, pl = 1000, 32
	c := mustNew(t, k, pl, 11)
	src := testSrc(t, k, pl, 3)
	rng := rand.New(rand.NewSource(99))
	dec := c.NewDecoder()
	received := 0
	for i := 0; i < k && !dec.Done(); i++ {
		if rng.Float64() < 0.2 {
			continue // lost
		}
		pkts, err := c.EncodeRange(src, i, i+1)
		if err != nil {
			t.Fatalf("EncodeRange(%d): %v", i, err)
		}
		received++
		if _, err := dec.Add(i, pkts[0]); err != nil {
			t.Fatalf("Add(%d): %v", i, err)
		}
	}
	for i := k; i < 2*k && !dec.Done(); i++ {
		if rng.Float64() < 0.2 {
			continue
		}
		pkts, err := c.EncodeRange(src, i, i+1)
		if err != nil {
			t.Fatalf("EncodeRange(%d): %v", i, err)
		}
		received++
		if _, err := dec.Add(i, pkts[0]); err != nil {
			t.Fatalf("Add(%d): %v", i, err)
		}
	}
	if !dec.Done() {
		t.Fatalf("not done after %d packets (k=%d)", received, k)
	}
	checkSource(t, dec, src)
	t.Logf("mixed 20%% loss: done after %d received, overhead %.4f", received, float64(received)/float64(k))
}

// Reception overhead averaged over repair-only trials must stay within
// the Raptor design target.
func TestOverheadBound(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead measurement")
	}
	const pl, trials = 16, 5
	for _, tc := range []struct {
		k     int
		bound float64
	}{
		{1000, 1.04}, // tuned scale; the bench gate holds the seeded runs to 1.03
		{2000, 1.06}, // off-grid scale: defaults interpolate, bound is looser
	} {
		c := mustNew(t, tc.k, pl, 1234)
		src := testSrc(t, tc.k, pl, 4)
		total := 0
		for trial := 0; trial < trials; trial++ {
			dec := c.NewDecoder()
			start := tc.k + trial*50_000 // disjoint repair windows per trial
			n := 0
			for i := start; !dec.Done(); i++ {
				pkts, err := c.EncodeRange(src, i, i+1)
				if err != nil {
					t.Fatalf("EncodeRange(%d): %v", i, err)
				}
				n++
				if _, err := dec.Add(i, pkts[0]); err != nil {
					t.Fatalf("Add(%d): %v", i, err)
				}
				if n > tc.k+tc.k/2 {
					t.Fatalf("k=%d trial %d: no decode after %d packets", tc.k, trial, n)
				}
			}
			checkSource(t, dec, src)
			total += n
		}
		overhead := float64(total) / float64(trials*tc.k)
		t.Logf("k=%d avg overhead over %d trials: %.4f", tc.k, trials, overhead)
		if overhead > tc.bound {
			t.Fatalf("k=%d overhead %.4f exceeds %.4f", tc.k, overhead, tc.bound)
		}
	}
}

// Neighbor derivation is deterministic, in-range, and duplicate-free —
// the invariants FuzzRaptorNeighbors hammers.
func TestNeighborsDeterministicAndValid(t *testing.T) {
	c := mustNew(t, 300, 8, 77)
	c2 := mustNew(t, 300, 8, 77)
	var a, b []int
	for idx := uint32(0); idx < 2000; idx++ {
		a = c.NeighborsInto(idx, a)
		b = c2.NeighborsInto(idx, b)
		if len(a) != len(b) {
			t.Fatalf("index %d: len %d vs %d", idx, len(a), len(b))
		}
		seen := map[int]bool{}
		for i, nb := range a {
			if nb != b[i] {
				t.Fatalf("index %d: nondeterministic neighbor %d", idx, i)
			}
			if nb < 0 || nb >= c.Intermediates() {
				t.Fatalf("index %d: neighbor %d out of range [0,%d)", idx, nb, c.Intermediates())
			}
			if seen[nb] {
				t.Fatalf("index %d: duplicate neighbor %d", idx, nb)
			}
			seen[nb] = true
		}
		if idx < 300 && (len(a) != 1 || a[0] != int(idx)) {
			t.Fatalf("systematic index %d: neighbors %v", idx, a)
		}
		if d := c.Degree(idx); d != len(a) {
			t.Fatalf("index %d: Degree %d != len(neighbors) %d", idx, d, len(a))
		}
	}
}

// The precode graph invariants: every check lists in-range, duplicate-free
// sources, and the static reverse adjacency is consistent.
func TestPrecodeConsistency(t *testing.T) {
	for _, k := range []int{1, 2, 10, 1000} {
		c := mustNew(t, k, 8, int64(k))
		if c.Checks() < 2 {
			t.Fatalf("k=%d: checks %d < 2", k, c.Checks())
		}
		for j, srcs := range c.checkSrc {
			seen := map[int32]bool{}
			for _, s := range srcs {
				if s < 0 || int(s) >= k {
					t.Fatalf("k=%d check %d: source %d out of range", k, j, s)
				}
				if seen[s] {
					t.Fatalf("k=%d check %d: duplicate source %d", k, j, s)
				}
				seen[s] = true
			}
			if int(c.staticDeg[j]) != len(srcs)+1 {
				t.Fatalf("k=%d check %d: staticDeg %d != %d", k, j, c.staticDeg[j], len(srcs)+1)
			}
		}
	}
}

// Duplicates and post-completion packets are ignored without error.
func TestDuplicatesIgnored(t *testing.T) {
	const k, pl = 100, 16
	c := mustNew(t, k, pl, 5)
	src := testSrc(t, k, pl, 6)
	dec := c.NewDecoder()
	enc, err := c.EncodeRange(src, 0, k)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if _, err := dec.Add(i, enc[i]); err != nil {
			t.Fatal(err)
		}
		if _, err := dec.Add(i, enc[i]); err != nil {
			t.Fatal(err)
		}
	}
	if dec.Received() != k {
		t.Fatalf("Received() = %d, want %d", dec.Received(), k)
	}
	done, err := dec.Add(k+5, make([]byte, pl))
	if err != nil || !done {
		t.Fatalf("post-completion Add: done=%v err=%v", done, err)
	}
	checkSource(t, dec, src)
}

// Invalid arguments are rejected.
func TestBadInputs(t *testing.T) {
	if _, err := New(0, 16, 1, 0, 0, 0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := New(10, 0, 1, 0, 0, 0, 0); err == nil {
		t.Fatal("packetLen=0 accepted")
	}
	c := mustNew(t, 10, 16, 1)
	if _, err := c.Encode(nil); err == nil {
		t.Fatal("Encode should fail on a rateless codec")
	}
	dec := c.NewDecoder()
	if _, err := dec.Add(-1, make([]byte, 16)); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := dec.Add(0, make([]byte, 3)); err == nil {
		t.Fatal("short packet accepted")
	}
	if _, err := dec.Source(); err == nil {
		t.Fatal("Source before done")
	}
}
