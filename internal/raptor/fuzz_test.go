package raptor

import "testing"

// FuzzRaptorNeighbors: for arbitrary (seed, index, k), neighbor-set
// generation over the intermediate symbols must be deterministic (two
// invocations agree), in-range, duplicate-free, consistent with Degree,
// and — the systematic contract — the identity singleton {index} for every
// index below k. Encoder and decoder derive neighbor sets independently
// from the descriptor, so any divergence corrupts packets silently; the
// property is fuzzed rather than spot-checked.
func FuzzRaptorNeighbors(f *testing.F) {
	f.Add(int64(1998), uint32(0), uint16(100))
	f.Add(int64(-1), uint32(1<<31), uint16(1))
	f.Add(int64(0), uint32(4294967295), uint16(4095))
	f.Add(int64(7777), uint32(12345), uint16(2))
	f.Fuzz(func(t *testing.T, seed int64, index uint32, kRaw uint16) {
		k := int(kRaw)%4096 + 1 // arbitrary k, clamped to a valid, fast range
		c, err := New(k, 8, seed, 0, 0, 0, 0)
		if err != nil {
			t.Fatalf("New(k=%d): %v", k, err)
		}
		l := c.Intermediates()
		if l < k {
			t.Fatalf("l=%d below k=%d", l, k)
		}
		a := c.NeighborsInto(index, nil)
		b := c.NeighborsInto(index, make([]int, 0, len(a)))
		if len(a) != len(b) {
			t.Fatalf("nondeterministic degree: %d vs %d", len(a), len(b))
		}
		if d := c.Degree(index); d != len(a) {
			t.Fatalf("Degree=%d but %d neighbors", d, len(a))
		}
		if int(index) < k {
			if len(a) != 1 || a[0] != int(index) {
				t.Fatalf("systematic index %d has neighbors %v, want {%d}", index, a, index)
			}
			return
		}
		if len(a) < 1 || len(a) > l {
			t.Fatalf("degree %d out of [1,%d]", len(a), l)
		}
		seen := make(map[int]bool, len(a))
		for i, nb := range a {
			if nb != b[i] {
				t.Fatalf("nondeterministic neighbor %d: %d vs %d", i, nb, b[i])
			}
			if nb < 0 || nb >= l {
				t.Fatalf("neighbor %d out of [0,%d)", nb, l)
			}
			if seen[nb] {
				t.Fatalf("duplicate neighbor %d", nb)
			}
			seen[nb] = true
		}
	})
}
