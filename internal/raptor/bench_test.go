package raptor

import "testing"

// Repair-only decode throughput — the same shape cmd/bench measures, kept
// here so `go test -bench` can profile the decoder without the full suite.
func benchmarkDecode(b *testing.B, k, pl int) {
	c := mustNew(b, k, pl, 1)
	src := testSrc(b, k, pl, 2)
	budget := k + k/4 + 256
	base := 1 << 28
	b.SetBytes(int64(k * pl))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		pool, err := c.EncodeRange(src, base, base+budget)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		d := c.NewDecoder()
		done := false
		for j := 0; j < len(pool) && !done; j++ {
			if done, err = d.Add(base+j, pool[j]); err != nil {
				b.Fatal(err)
			}
		}
		if !done {
			b.Fatalf("budget %d exhausted", budget)
		}
		if _, err := d.Source(); err != nil {
			b.Fatal(err)
		}
		base += budget
	}
}

func BenchmarkDecodeK1000(b *testing.B)  { benchmarkDecode(b, 1000, 1024) }
func BenchmarkDecodeK10000(b *testing.B) { benchmarkDecode(b, 10000, 1024) }

// Systematic zero-loss intake: the path that must do no XOR work at all.
func BenchmarkDecodeSystematic(b *testing.B) {
	const k, pl = 10000, 1024
	c := mustNew(b, k, pl, 1)
	src := testSrc(b, k, pl, 2)
	enc, err := c.EncodeRange(src, 0, k)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(k * pl))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := c.NewDecoder()
		done := false
		for j := 0; j < k; j++ {
			if done, err = d.Add(j, enc[j]); err != nil {
				b.Fatal(err)
			}
		}
		if !done {
			b.Fatal("not done after k systematic packets")
		}
	}
}

func BenchmarkEncodeRepair(b *testing.B) {
	const k, pl = 10000, 1024
	c := mustNew(b, k, pl, 1)
	src := testSrc(b, k, pl, 2)
	base := 1 << 28
	b.SetBytes(int64(k * pl))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.EncodeRange(src, base, base+k); err != nil {
			b.Fatal(err)
		}
		base += k
	}
}
