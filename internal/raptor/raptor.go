// Package raptor implements a Raptor-style precoded systematic fountain
// code: the composition the fountain-codes survey presents as the fix for
// LT's ln(k) decoding cost. A sparse Tornado-style precode (internal/
// tornado's heavy-tail bipartite layer) extends the k source packets with
// s check packets into L = k+s intermediate symbols; a *weakened* robust
// soliton LT code over those intermediates generates the repair stream.
//
// Weakening means the inner degree distribution is truncated at a small
// constant maxD with the tail mass folded into the final spike, so the
// average degree is O(1) instead of O(ln k) and encode/decode run in
// linear time. Truncation alone would strand a small fraction of
// intermediates uncovered; the precode's check equations — known to both
// sides by construction, never transmitted — supply exactly the extra
// relations the peeling decoder needs to clean up that residue, which is
// why the O(k·√k) inactivation fallback drops out of the hot path.
//
// The code is systematic (SNIPPETS.md snippet 2's systematic=True idiom):
// encoding packet i < k IS source packet i, and repair packets i >= k are
// inner-coded over the intermediates. A receiver that loses nothing
// therefore reconstructs the file with zero XOR work — the paper's ideal
// "packets straight off the wire" path — while lossy receivers decode
// from any ≈1.02k distinct packets.
package raptor

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/code"
	"repro/internal/gf"
	"repro/internal/tornado"
)

// Default parameters. The inner distribution reuses the LT robust-soliton
// shape (c, δ) but truncated at DefaultMaxDegree; the precode sizes its
// check side as a small fraction of k. Tuned empirically at k ∈ {1000,
// 10000} — see EXPERIMENTS.md.
const (
	DefaultC     = 0.03
	DefaultDelta = 0.5
	// precodeMaxDegree caps the heavy-tail left degrees of the precode
	// graph; the mean left degree is ≈ 3, so precoding costs ≈ 3k XOR
	// rows regardless of the check count.
	precodeMaxDegree = 8
)

// DefaultMaxDegree returns the default inner-code degree truncation for k
// sources: ≈ 2√k, clamped to [16, 200]. The average inner degree is
// ≈ ln(maxD) + 2 — still effectively constant in k, the linear-time
// property — while the design overhead ε = 4/(maxD-5) shrinks as maxD
// grows. The √k scaling matches the finite-length sweet spot measured in
// EXPERIMENTS.md: at small k a low truncation keeps degree variance from
// swamping the ripple, at large k the tighter ε wins (64 at k=1000, 200
// at k=10000). The cap bounds the per-packet work for huge blocks.
func DefaultMaxDegree(k int) int {
	d := int(math.Ceil(2 * math.Sqrt(float64(k))))
	if d < 16 {
		d = 16
	}
	if d > 200 {
		d = 200
	}
	return d
}

// DefaultChecks returns the default precode check count for k sources
// under an inner code truncated at maxD. The coupling is the Raptor
// design rule: the weakened distribution's BP recovery stalls once its
// coverage rate N/L drops below ≈1, so the precode redundancy must stay
// in proportion to the design overhead ε = 4/(maxD-5) — S ≈ (ε/4)·k
// covers the stranded residue while an oversized precode inflates L and
// starves the inner ripple outright (S = k/10 costs ≈0.12 extra
// overhead at k=2000). Check equations are never transmitted and
// contribute rank for free; the cost of S is decoder memory and endgame
// width, not wire overhead.
func DefaultChecks(k, maxD int) int {
	if maxD < 8 {
		maxD = 8
	}
	s := k/(maxD-5) + 8
	if s < 2 {
		s = 2
	}
	return s
}

// Codec is the precoded rateless code over fixed-size packets. Immutable
// after construction and safe for concurrent use; the precode graph and
// degree CDF are built once and shared by every encoder and decoder of
// the session.
type Codec struct {
	k         int
	packetLen int
	seed      int64
	c         float64
	delta     float64
	s         int // precode checks
	maxD      int // inner-code degree truncation
	l         int // k + s intermediate symbols

	cdf []float64 // truncated robust soliton over [1, maxD]

	// checkSrc[j] lists the source symbols XORed into check intermediate
	// k+j: the static equation 0 = value(k+j) ⊕ ⊕_{i∈checkSrc[j]} value(i).
	checkSrc [][]int32
	// staticOf[v] lists the static equations covering intermediate v —
	// the reverse adjacency decoders walk when v resolves. For a check
	// intermediate k+j this is exactly {j} (each check owns one equation).
	staticOf [][]int32
	// staticDeg[j] is static equation j's initial unknown count:
	// len(checkSrc[j]) + 1 (its sources plus its own check symbol).
	staticDeg []int32

	// One-slot intermediate-symbol cache: core.Session emits the carousel
	// one EncodeRange(i, i+1) call at a time, so the precode expansion of
	// the session's source block must be computed once and reused, keyed
	// by the source slice's identity.
	encMu  sync.Mutex
	encKey *byte
	inter  [][]byte
}

// New constructs the codec for k source packets of packetLen bytes. seed
// is the advance agreement between sender and receivers: precode graph,
// degrees, and neighbor sets all derive from it. c <= 0, delta outside
// (0,1), checks <= 0, or maxD <= 0 select the defaults; checks and maxD
// are clamped to sane ranges so quantized wire parameters always yield a
// working codec.
func New(k, packetLen int, seed int64, c, delta float64, checks, maxD int) (*Codec, error) {
	if k <= 0 {
		return nil, fmt.Errorf("raptor: invalid k=%d", k)
	}
	if packetLen <= 0 {
		return nil, fmt.Errorf("raptor: invalid packetLen=%d", packetLen)
	}
	if c <= 0 {
		c = DefaultC
	}
	if delta <= 0 || delta >= 1 {
		delta = DefaultDelta
	}
	if maxD <= 0 {
		maxD = DefaultMaxDegree(k)
	}
	if maxD < 2 {
		maxD = 2
	}
	if checks <= 0 {
		checks = DefaultChecks(k, maxD)
	}
	if checks < 2 {
		checks = 2
	}
	if checks > k+4 {
		checks = k + 4
	}
	l := k + checks
	if maxD > l {
		maxD = l
	}
	rc := &Codec{
		k: k, packetLen: packetLen, seed: seed,
		c: c, delta: delta, s: checks, maxD: maxD, l: l,
	}
	rc.cdf = truncatedSolitonCDF(l, maxD, c, delta)
	// A distinct stream for the graph so precode wiring is decorrelated
	// from the inner-code neighbor draws sharing the session seed.
	rc.checkSrc = tornado.PrecodeGraph(k, checks, precodeMaxDegree, seed^0x5DEECE66D1CE4E5B)
	rc.staticOf = make([][]int32, l)
	rc.staticDeg = make([]int32, checks)
	for j, srcs := range rc.checkSrc {
		rc.staticDeg[j] = int32(len(srcs)) + 1
		for _, s := range srcs {
			rc.staticOf[s] = append(rc.staticOf[s], int32(j))
		}
		rc.staticOf[k+j] = []int32{int32(j)}
	}
	return rc, nil
}

// truncatedSolitonCDF is the weakened inner distribution, the Raptor
// paper's derivation from the soliton family:
//
//	Ω(x) ∝ μ·x + Σ_{d=2}^{D} x^d/(d(d-1)) + x^{D+1}/D,  D = maxD-1
//
// i.e. the ideal soliton truncated at D with its tail mass Σ_{d>D}
// 1/(d(d-1)) = 1/D folded into a spike at D+1, plus an explicit degree-1
// mass μ = ε/2 + (ε/2)², ε = 4/(D-4). Truncation makes the average
// degree ≈ ln(D) + 2 — a constant in k, the linear-time property — at
// the price of stranding a small residue the precode peels. The μ term
// is what a plain truncated *robust* soliton lacks: it seeds the ripple
// at reception rates below L (a robust soliton's ripple only ignites
// near L received symbols, which would forfeit the precode's rank
// advantage entirely). The robust-soliton τ(1) = R/L ripple-insurance
// term from the (c, δ) tunables is kept as a floor on μ, so the wire
// parameters shared with the LT codec remain live knobs.
func truncatedSolitonCDF(l, maxD int, c, delta float64) []float64 {
	d := maxD - 1
	eps := 1.0
	if d >= 5 {
		eps = 4.0 / float64(d-4)
	}
	mu := eps/2 + eps*eps/4
	if r := c * math.Log(float64(l)/delta) * math.Sqrt(float64(l)); r/float64(l) > mu {
		mu = r / float64(l)
	}
	pdf := make([]float64, maxD+1)
	pdf[1] = mu + 1/float64(l)
	for i := 2; i <= d; i++ {
		pdf[i] = 1 / (float64(i) * float64(i-1))
	}
	if d >= 1 {
		pdf[maxD] += 1 / float64(d)
	}
	cdf := make([]float64, maxD)
	sum := 0.0
	for i := 1; i <= maxD; i++ {
		sum += pdf[i]
		cdf[i-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[maxD-1] = 1
	return cdf
}

// Name implements code.Codec.
func (c *Codec) Name() string { return "raptor" }

// K implements code.Codec.
func (c *Codec) K() int { return c.k }

// N implements code.Codec: the encoding is unbounded.
func (c *Codec) N() int { return code.UnboundedN }

// PacketLen implements code.Codec.
func (c *Codec) PacketLen() int { return c.packetLen }

// Params returns the inner degree-distribution tunables (c, δ) in effect.
func (c *Codec) Params() (cc, delta float64) { return c.c, c.delta }

// Checks returns the precode check count s.
func (c *Codec) Checks() int { return c.s }

// MaxDegree returns the inner-code degree truncation point.
func (c *Codec) MaxDegree() int { return c.maxD }

// Intermediates returns L = k + s, the inner code's symbol space.
func (c *Codec) Intermediates() int { return c.l }

// Seed returns the session seed the packet streams derive from.
func (c *Codec) Seed() int64 { return c.seed }

// RatelessCode implements code.Rateless.
func (c *Codec) RatelessCode() {}

// ErrUnbounded is returned by Encode: a rateless code has no finite "full
// encoding" to materialize.
var ErrUnbounded = errors.New("raptor: rateless codec has no finite encoding; use EncodeRange")

// Encode implements code.Codec by failing: callers must use EncodeRange.
func (c *Codec) Encode(src [][]byte) ([][]byte, error) { return nil, ErrUnbounded }

// prng is the same splitmix64 construction the LT codec uses; repair
// packet index i's draws are a pure function of (seed, i).
type prng struct{ state uint64 }

func (p *prng) next() uint64 {
	p.state += 0x9E3779B97F4A7C15
	z := p.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (p *prng) uniform() float64 { return float64(p.next()>>11) / (1 << 53) }

func (c *Codec) stream(index uint32) prng {
	p := prng{state: uint64(c.seed) ^ (uint64(index)+1)*0xBF58476D1CE4E5B9}
	p.state = p.next()
	return p
}

// Degree returns encoding packet index's inner degree — deterministic,
// in [1, maxD]; systematic indices report 1.
func (c *Codec) Degree(index uint32) int {
	if int64(index) < int64(c.k) {
		return 1
	}
	p := c.stream(index)
	return c.degree(&p)
}

func (c *Codec) degree(p *prng) int {
	u := p.uniform()
	return sort.SearchFloat64s(c.cdf, u) + 1
}

// NeighborsInto writes encoding packet index's neighbor set over the
// intermediate symbol space [0, L) into buf (reused if capacity allows)
// and returns it. Systematic indices (index < k) are degree-1: the packet
// is intermediate `index` itself. Repair indices draw a truncated-soliton
// degree and rejection-sample that many distinct intermediates, exactly
// the LT idiom so the draw sequence is auditable against lt.Codec.
func (c *Codec) NeighborsInto(index uint32, buf []int) []int {
	buf = buf[:0]
	if int64(index) < int64(c.k) {
		return append(buf, int(index))
	}
	p := c.stream(index)
	d := c.degree(&p)
	if d >= c.l {
		for i := 0; i < c.l; i++ {
			buf = append(buf, i)
		}
		return buf
	}
	// Rejection sampling, the LT idiom: linear dup scan for the common
	// degrees (including the truncation spike, keeping the intake path
	// allocation-free), a set for rare draws beyond it.
	var dup map[int]struct{}
	if d > 256 {
		dup = make(map[int]struct{}, d)
	}
	for len(buf) < d {
		cand := int(p.next() % uint64(c.l))
		if dup != nil {
			if _, seen := dup[cand]; seen {
				continue
			}
			dup[cand] = struct{}{}
		} else {
			seen := false
			for _, b := range buf {
				if b == cand {
					seen = true
					break
				}
			}
			if seen {
				continue
			}
		}
		buf = append(buf, cand)
	}
	return buf
}

// intermediates returns the precode expansion of src: L symbols whose
// first k alias src and whose last s are the check XORs. Cached per
// source-slice identity (the resident session block) under encMu.
func (c *Codec) intermediates(src [][]byte) [][]byte {
	key := &src[0][0]
	c.encMu.Lock()
	defer c.encMu.Unlock()
	if c.encKey == key {
		return c.inter
	}
	inter := make([][]byte, c.l)
	copy(inter, src)
	store := make([]byte, c.s*c.packetLen)
	for j, srcs := range c.checkSrc {
		p := store[j*c.packetLen : (j+1)*c.packetLen]
		for _, s := range srcs {
			gf.XORSlice(p, src[s])
		}
		inter[c.k+j] = p
	}
	c.encKey = key
	c.inter = inter
	return inter
}

// EncodeRange implements code.RangeEncoder. Systematic entries alias src
// (zero copies, zero XOR — the lossless receiver's path costs nothing at
// the sender too); repair entries are freshly allocated inner-code XORs
// over the cached intermediates.
func (c *Codec) EncodeRange(src [][]byte, lo, hi int) ([][]byte, error) {
	if err := code.CheckSrc(src, c.k, c.packetLen); err != nil {
		return nil, err
	}
	if lo < 0 || hi < lo || hi > code.UnboundedN {
		return nil, fmt.Errorf("raptor: encode range [%d,%d) out of [0,%d)", lo, hi, code.UnboundedN)
	}
	out := make([][]byte, hi-lo)
	repairs := 0
	for i := lo; i < hi; i++ {
		if i >= c.k {
			repairs++
		}
	}
	var store []byte
	var inter [][]byte
	if repairs > 0 {
		store = make([]byte, repairs*c.packetLen)
		inter = c.intermediates(src)
	}
	var nbuf []int
	r := 0
	for i := lo; i < hi; i++ {
		if i < c.k {
			out[i-lo] = src[i]
			continue
		}
		p := store[r*c.packetLen : (r+1)*c.packetLen]
		r++
		nbuf = c.NeighborsInto(uint32(i), nbuf)
		for _, nb := range nbuf {
			gf.XORSlice(p, inter[nb])
		}
		out[i-lo] = p
	}
	return out, nil
}

// Interface conformance.
var (
	_ code.Codec        = (*Codec)(nil)
	_ code.RangeEncoder = (*Codec)(nil)
	_ code.Rateless     = (*Codec)(nil)
)
