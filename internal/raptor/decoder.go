// Raptor decoding: joint belief-propagation peeling over the L = k+s
// intermediate symbols, where the equation set is the union of
//
//   - the s *static* precode equations 0 = value(k+j) ⊕ ⊕ sources(j),
//     known to the decoder by construction and present from packet zero
//     (their "payload" is the implicit all-zero packet — never allocated,
//     never transmitted), and
//   - the received coded packets (systematic packets resolve their
//     intermediate directly; repair packets are inner-code equations).
//
// Static equations are free rank: a receiver needs only ≈k received
// symbols regardless of s, because the s check symbols come with their
// own defining equations. They are also why the weakened (truncated)
// inner distribution decodes at all — the residue it strands is exactly
// what the precode peels.
//
// Two mechanisms keep the hot path linear and the lossless path free:
//
// Parking. An equation whose single unknown is a *check* symbol that no
// other live equation wants is parked, not released: releasing it would
// spend check-degree XORs computing a value nobody reads. At zero loss
// every static equation ends parked on its own check symbol, so a
// receiver of the k systematic packets performs exactly zero XOR work.
// A parked equation is revived the moment a new packet registers as a
// waiter on its check symbol.
//
// Elimination endgame. When peeling stalls with a small residue, a
// reduced GF(2) system is solved over the unresolved sources plus only
// those check symbols some live received equation references — a check
// symbol appearing solely in its own static equation is a free variable,
// so that row and column drop together. The rank-deficit gate (needMore)
// bounds attempts, exactly as in the LT and Tornado decoders.
package raptor

import (
	"fmt"

	"repro/internal/bitmat"
	"repro/internal/code"
	"repro/internal/gf"
)

// eq is one decoding equation. Ids [0, s) are the static precode
// equations (data == nil: the implicit zero payload); received repair
// packets append after. data holds the raw payload as received; resolved
// neighbors are XORed out lazily at release time.
type eq struct {
	index     uint32 // wire index (received equations only)
	data      []byte // arena-backed payload; nil for static equations
	remaining int32  // unresolved neighbors; 0 = retired
}

type decoder struct {
	c *Codec

	values   [][]byte // per intermediate symbol; nil while unresolved
	srcLeft  int      // unresolved source symbols (done when 0)
	resolved int      // resolved intermediates (sources + checks)
	eqs      []eq     // [0,s) static, then received
	// Waiter lists (intermediate -> ids of buffered equations covering
	// it) as linked nodes in one growable arena — registration never
	// allocates per symbol.
	whead    []int32 // per intermediate: index into wnodes, -1 = empty
	wnodes   []wnode
	relq     []int32
	active   int                 // equations with remaining > 0
	parked   []int32             // per check j: 1+id of an equation parked on k+j, 0 if none
	seen     map[uint32]struct{} // distinct accepted wire indices
	needMore int                 // rank-deficit gate for the elimination endgame

	released int // coded-equation releases: the deferred-XOR events
	xors     int // payload XORSlice calls on the peeling path

	nbuf []int
	done bool

	// Slab arena + free list for payload buffers: the allocation-shape
	// fix the LT decoder gets in this PR, here from day one.
	slab []byte
	free [][]byte
}

// wnode is one waiter registration: equation id, plus the next node on
// the same intermediate's list.
type wnode struct {
	id   int32
	next int32
}

// NewDecoder implements code.Codec. The static equations are live
// immediately; a zero-source check (possible on tiny precodes) starts
// releasable and is parked on first drain.
func (c *Codec) NewDecoder() code.Decoder {
	d := &decoder{
		c:      c,
		values: make([][]byte, c.l),
		whead:  make([]int32, c.l),
		wnodes: make([]wnode, 0, 2*c.k),
		eqs:    make([]eq, c.s, c.s+c.k/2+16),
		parked: make([]int32, c.s),
		seen:   make(map[uint32]struct{}, c.k+c.k/8),
	}
	for v := range d.whead {
		d.whead[v] = -1
	}
	for j := 0; j < c.s; j++ {
		d.eqs[j].remaining = c.staticDeg[j]
		if d.eqs[j].remaining == 1 {
			d.relq = append(d.relq, int32(j))
		}
	}
	d.active = c.s
	d.srcLeft = c.k
	return d
}

// Add implements code.Decoder.
func (d *decoder) Add(i int, data []byte) (bool, error) {
	if err := code.CheckPacket(i, data, code.UnboundedN, d.c.packetLen); err != nil {
		return d.done, err
	}
	if d.done {
		return true, nil
	}
	index := uint32(i)
	if _, dup := d.seen[index]; dup {
		return false, nil
	}
	d.seen[index] = struct{}{}
	resBefore := d.resolved
	contributed := false
	if i < d.c.k {
		// Systematic packet: the payload IS intermediate i. No XOR, no
		// equation bookkeeping beyond the resolve ripple.
		if d.values[i] == nil {
			buf := d.alloc()
			copy(buf, data)
			contributed = true
			d.resolve(i, buf)
			d.drainRipple()
		}
	} else {
		d.nbuf = d.c.NeighborsInto(index, d.nbuf)
		unresolved := 0
		last := -1
		for _, nb := range d.nbuf {
			if d.values[nb] == nil {
				unresolved++
				last = nb
			}
		}
		switch unresolved {
		case 0:
			// Redundant at arrival: adds no equation, must not pay down a
			// pending elimination deficit.
		case 1:
			// Immediately releasable.
			buf := d.alloc()
			copy(buf, data)
			for _, nb := range d.nbuf {
				if v := d.values[nb]; v != nil {
					gf.XORSlice(buf, v)
					d.xors++
				}
			}
			d.released++
			contributed = true
			d.resolve(last, buf)
			d.drainRipple()
		default:
			id := int32(len(d.eqs))
			buf := d.alloc()
			copy(buf, data)
			d.eqs = append(d.eqs, eq{index: index, data: buf, remaining: int32(unresolved)})
			d.active++
			contributed = true
			for _, nb := range d.nbuf {
				if d.values[nb] != nil {
					continue
				}
				d.addWaiter(nb, id)
				if nb >= d.c.k {
					// A new customer for this check symbol: revive any
					// equation parked on it.
					if p := d.parked[nb-d.c.k]; p != 0 {
						d.parked[nb-d.c.k] = 0
						d.relq = append(d.relq, p-1)
					}
				}
			}
			d.drainRipple()
		}
	}
	// Pay down the elimination rank-deficit gate by actual progress: a
	// contributing equation adds prospective rank, and every symbol
	// resolved since the packet arrived removes a column from the residual
	// system. Counting contributions alone (the LT rule, where packets
	// never resolve symbols directly) would lock the endgame out for the
	// whole systematic prefix of a lossy stream.
	if d.needMore > 0 {
		progress := d.resolved - resBefore
		if contributed {
			progress++
		}
		if d.needMore -= progress; d.needMore < 0 {
			d.needMore = 0
		}
	}
	if !d.done {
		// Attempt the endgame only when peeling has actually stalled: an
		// Add that resolved nothing. While the ripple is alive, building
		// the residual system would be pure waste — near the active ≈
		// srcLeft boundary it is both large and rank-deficient, and each
		// failed build costs a full rhs reduction.
		d.tryEliminate(d.resolved == resBefore)
	}
	return d.done, nil
}

// resolve records intermediate s's value and decrements every live
// equation covering it: the static equations via the codec's reverse
// adjacency, the buffered received equations via the waiter lists.
func (d *decoder) resolve(s int, val []byte) {
	d.values[s] = val
	d.resolved++
	if s < d.c.k {
		d.srcLeft--
		if d.srcLeft == 0 {
			d.finish()
			return
		}
	} else if p := d.parked[s-d.c.k]; p != 0 {
		// Anything parked on this check symbol is now redundant; its
		// remaining hits 0 in the decrement loops below.
		d.parked[s-d.c.k] = 0
	}
	for _, j := range d.c.staticOf[s] {
		e := &d.eqs[j]
		if e.remaining > 0 {
			e.remaining--
			switch e.remaining {
			case 1:
				d.relq = append(d.relq, j)
			case 0:
				d.active--
			}
		}
	}
	for nid := d.whead[s]; nid >= 0; nid = d.wnodes[nid].next {
		id := d.wnodes[nid].id
		e := &d.eqs[id]
		if e.remaining > 0 {
			e.remaining--
			switch e.remaining {
			case 1:
				d.relq = append(d.relq, id)
			case 0:
				// Queued for release with s as its last unknown; now
				// fully covered, hence redundant.
				d.freeBuf(e.data)
				e.data = nil
				d.active--
			}
		}
	}
	d.whead[s] = -1 // nodes stay in the arena; freed wholesale at finish
}

// needed reports whether releasing equation id's check-symbol target
// would feed any *other* live equation. A static equation wants its own
// check only while it still has another unknown to peel (remaining > 1);
// a waiter likewise contributes nothing if the check is its sole unknown
// too (releasing either one retires both with no symbol gained).
func (d *decoder) needed(id int32, target int) bool {
	j := int32(target - d.c.k)
	if j != id && d.eqs[j].remaining > 1 {
		return true
	}
	for nid := d.whead[target]; nid >= 0; nid = d.wnodes[nid].next {
		if wid := d.wnodes[nid].id; wid != id && d.eqs[wid].remaining > 1 {
			return true
		}
	}
	return false
}

// drainRipple releases queued equations until the ripple is empty or the
// decode completes. Releasing performs the whole deferred XOR at once;
// equations whose last unknown is an unwanted check symbol are parked
// instead (see the package comment — this is the zero-loss zero-XOR
// path).
func (d *decoder) drainRipple() {
	for len(d.relq) > 0 && !d.done {
		id := d.relq[len(d.relq)-1]
		d.relq = d.relq[:len(d.relq)-1]
		e := &d.eqs[id]
		if e.remaining != 1 {
			continue // raced to 0: became redundant while queued
		}
		static := id < int32(d.c.s)
		target := -1
		if static {
			j := int(id)
			if d.values[d.c.k+j] == nil {
				target = d.c.k + j
			} else {
				for _, nb := range d.c.checkSrc[j] {
					if d.values[nb] == nil {
						target = int(nb)
						break
					}
				}
			}
		} else {
			d.nbuf = d.c.NeighborsInto(e.index, d.nbuf)
			for _, nb := range d.nbuf {
				if d.values[nb] == nil {
					target = nb
					break
				}
			}
		}
		if target < 0 {
			// Bookkeeping says one unknown but none found — defensive:
			// retire rather than corrupt.
			e.remaining = 0
			if e.data != nil {
				d.freeBuf(e.data)
				e.data = nil
			}
			d.active--
			continue
		}
		if target >= d.c.k && !d.needed(id, target) {
			d.parked[target-d.c.k] = id + 1
			continue
		}
		var val []byte
		if e.data != nil {
			val = e.data
			e.data = nil
		} else {
			val = d.alloc()
			clear(val)
		}
		if static {
			j := int(id)
			for _, nb := range d.c.checkSrc[j] {
				if v := d.values[nb]; v != nil {
					gf.XORSlice(val, v)
					d.xors++
				}
			}
			if v := d.values[d.c.k+j]; v != nil {
				gf.XORSlice(val, v)
				d.xors++
			}
		} else {
			for _, nb := range d.nbuf {
				if v := d.values[nb]; v != nil {
					gf.XORSlice(val, v)
					d.xors++
				}
			}
		}
		e.remaining = 0
		d.active--
		d.released++
		d.resolve(target, val)
	}
}

// elimMax bounds the residual system the endgame will solve, as in the
// LT decoder: elimination is cubic, so peeling must shrink the residue
// first. With the precode cleaning the truncated inner code's residue,
// the endgame system here is typically a few dozen columns — the
// fallback that dominated LT decode time becomes a footnote.
func (d *decoder) elimMax() int {
	if m := d.c.k / 8; m > 768 {
		return m
	}
	return 768
}

// tryEliminate solves the reduced residual system when peeling has
// stalled: unresolved sources plus the check symbols some live received
// equation references, over the live received equations plus the static
// equations whose own check is either resolved or referenced. A check
// symbol appearing only in its own static equation is a free variable —
// that row and column leave the system together, which keeps the matrix
// near the true information deficit instead of O(s) wide.
func (d *decoder) tryEliminate(stalled bool) {
	if d.done || d.needMore > 0 || d.srcLeft == 0 {
		return
	}
	// A live ripple usually makes the build pure waste — except at the
	// very end, where the residual system is tiny, solving it is cheaper
	// than the dribble of tail packets peeling would wait for.
	if !stalled && d.srcLeft > 768 {
		return
	}
	if d.srcLeft > d.elimMax() {
		return
	}
	if d.active < d.srcLeft {
		// Not enough live equations to cover the unknowns. This is an O(1)
		// check recomputed on every Add, so it must NOT set needMore: on a
		// lossy systematic stream the deficit shrinks by two per packet
		// (one equation in, one unknown out) and a counted-down gate would
		// overshoot, locking elimination out past the prefix.
		return
	}
	k, s := d.c.k, d.c.s
	colOf := make(map[int]int, 2*d.srcLeft)
	syms := make([]int, 0, 2*d.srcLeft)
	addCol := func(v int) {
		if _, ok := colOf[v]; !ok {
			colOf[v] = len(syms)
			syms = append(syms, v)
		}
	}
	for v := 0; v < k; v++ {
		if d.values[v] == nil {
			addCol(v)
		}
	}
	recvRows := make([]int32, 0, d.active)
	for id := int32(s); id < int32(len(d.eqs)); id++ {
		if d.eqs[id].remaining <= 0 {
			continue
		}
		d.nbuf = d.c.NeighborsInto(d.eqs[id].index, d.nbuf)
		for _, nb := range d.nbuf {
			if d.values[nb] == nil {
				addCol(nb)
			}
		}
		recvRows = append(recvRows, id)
	}
	staticRows := make([]int32, 0, s)
	for j := 0; j < s; j++ {
		if d.eqs[j].remaining <= 0 {
			continue
		}
		own := k + j
		if d.values[own] != nil {
			staticRows = append(staticRows, int32(j))
			continue
		}
		if _, ok := colOf[own]; ok {
			staticRows = append(staticRows, int32(j))
		}
	}
	cols := len(syms)
	if cols > 2*d.elimMax() {
		d.needMore = (cols - d.elimMax() + 3) / 4
		return
	}
	rows := len(recvRows) + len(staticRows)
	if rows < cols {
		d.needMore = deficitWait(cols - rows)
		return
	}
	// Received rows first (they carry the payload information), static
	// rows fill the surplus, capped as in the Tornado endgame.
	if max := cols + 64; rows > max {
		rows = max
	}
	m := bitmat.New(rows, cols)
	rhs := make([][]byte, rows)
	store := make([]byte, rows*d.c.packetLen)
	r := 0
	for _, id := range recvRows {
		if r == rows {
			break
		}
		buf := store[r*d.c.packetLen : (r+1)*d.c.packetLen]
		copy(buf, d.eqs[id].data)
		d.nbuf = d.c.NeighborsInto(d.eqs[id].index, d.nbuf)
		for _, nb := range d.nbuf {
			if v := d.values[nb]; v != nil {
				gf.XORSlice(buf, v)
			} else {
				m.Set(r, colOf[nb], true)
			}
		}
		rhs[r] = buf
		r++
	}
	for _, jd := range staticRows {
		if r == rows {
			break
		}
		j := int(jd)
		buf := store[r*d.c.packetLen : (r+1)*d.c.packetLen] // implicit zero payload
		for _, nb := range d.c.checkSrc[j] {
			if v := d.values[nb]; v != nil {
				gf.XORSlice(buf, v)
			} else {
				m.Set(r, colOf[int(nb)], true)
			}
		}
		own := k + j
		if v := d.values[own]; v != nil {
			gf.XORSlice(buf, v)
		} else {
			m.Set(r, colOf[own], true)
		}
		rhs[r] = buf
		r++
	}
	sol, rank, ok := bitmat.TrySolve(m, rhs)
	if !ok {
		d.needMore = deficitWait(cols - rank)
		return
	}
	for ci, v := range syms {
		if d.values[v] == nil {
			d.values[v] = sol[ci]
			if v < k {
				d.srcLeft--
			}
		}
	}
	d.resolved = d.c.l
	d.finish()
}

// deficitWait converts a rank deficit into the progress units to wait
// before the next elimination attempt. The floor adds hysteresis: a
// deficit of 1-2 would otherwise trigger a full (and likely still
// deficient) rebuild on nearly every subsequent packet.
func deficitWait(deficit int) int {
	if deficit < 8 {
		return 8
	}
	return deficit
}

// finish drops the equation state; values (some arena-backed) survive
// for Source.
func (d *decoder) finish() {
	d.done = true
	d.srcLeft = 0
	d.eqs = nil
	d.relq = nil
	d.whead = nil
	d.wnodes = nil
	d.parked = nil
	d.slab = nil
	d.free = nil
}

// alloc hands out one packet buffer from the slab arena (contents
// arbitrary — callers copy or clear).
func (d *decoder) alloc() []byte {
	if n := len(d.free); n > 0 {
		b := d.free[n-1]
		d.free = d.free[:n-1]
		return b
	}
	pl := d.c.packetLen
	if len(d.slab) < pl {
		n := 16 * pl
		if n < 16384 {
			n = 16384
		}
		d.slab = make([]byte, n)
	}
	b := d.slab[:pl:pl]
	d.slab = d.slab[pl:]
	return b
}

func (d *decoder) freeBuf(b []byte) {
	if b != nil {
		d.free = append(d.free, b)
	}
}

// addWaiter registers equation id on intermediate v: one arena append,
// one head swap.
func (d *decoder) addWaiter(v int, id int32) {
	d.wnodes = append(d.wnodes, wnode{id: id, next: d.whead[v]})
	d.whead[v] = int32(len(d.wnodes) - 1)
}

// Done implements code.Decoder.
func (d *decoder) Done() bool { return d.done }

// Received implements code.Decoder: distinct accepted packets.
func (d *decoder) Received() int { return len(d.seen) }

// Released implements code.ReleaseCounter: the number of coded-equation
// releases — each one a deferred-XOR event exposing a symbol. A receiver
// of the k systematic packets reports exactly 0.
func (d *decoder) Released() int { return d.released }

// XORs returns the payload XORSlice count on the peeling path (the
// elimination endgame's internal row combinations are not included).
// Zero loss ⇒ zero.
func (d *decoder) XORs() int { return d.xors }

// Source implements code.Decoder.
func (d *decoder) Source() ([][]byte, error) {
	if !d.done {
		return nil, code.ErrNotReady
	}
	for v, val := range d.values[:d.c.k] {
		if val == nil {
			return nil, fmt.Errorf("raptor: symbol %d unresolved after completion", v)
		}
	}
	return d.values[:d.c.k], nil
}
