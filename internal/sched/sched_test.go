package sched

import (
	"reflect"
	"testing"
	"testing/quick"
)

// TestTable5Golden reproduces the paper's Table 5 exactly: the packet
// transmission scheme for 4 layers, block size 8, rounds 1..8.
func TestTable5Golden(t *testing.T) {
	s, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int][][]int{
		// layer -> rounds 1..8 (paper is 1-based; we use round = rd-1)
		3: {{0, 1, 2, 3}, {4, 5, 6, 7}, {0, 1, 2, 3}, {4, 5, 6, 7}, {0, 1, 2, 3}, {4, 5, 6, 7}, {0, 1, 2, 3}, {4, 5, 6, 7}},
		2: {{4, 5}, {0, 1}, {6, 7}, {2, 3}, {4, 5}, {0, 1}, {6, 7}, {2, 3}},
		1: {{6}, {2}, {4}, {0}, {7}, {3}, {5}, {1}},
		0: {{7}, {3}, {5}, {1}, {6}, {2}, {4}, {0}},
	}
	for layer, rounds := range want {
		for rd, slots := range rounds {
			got := s.Slots(layer, rd)
			if !reflect.DeepEqual(got, slots) {
				t.Errorf("layer %d round %d: got %v, want %v", layer, rd+1, got, slots)
			}
		}
	}
}

// TestFigure7 checks the round-4 pattern for g=4 shown in Figure 7:
// layer assignments 1, 0, 2, 2, 3, 3, 3, 3 for slots 0..7 — i.e. slot 0
// is sent by layer 1, slot 1 by layer 0, slots 2-3 by layer 2, 4-7 by 3.
func TestFigure7(t *testing.T) {
	s, _ := New(4)
	round := 3 // paper's round 4
	owner := make(map[int]int)
	for layer := 0; layer < 4; layer++ {
		for _, slot := range s.Slots(layer, round) {
			if prev, dup := owner[slot]; dup {
				t.Fatalf("slot %d sent by layers %d and %d in round 4", slot, prev, layer)
			}
			owner[slot] = layer
		}
	}
	want := map[int]int{0: 1, 1: 0, 2: 2, 3: 2, 4: 3, 5: 3, 6: 3, 7: 3}
	if !reflect.DeepEqual(owner, want) {
		t.Fatalf("round 4 ownership = %v, want %v", owner, want)
	}
}

// TestOneLevelProperty: a receiver at subscription level l (layers 0..l)
// must see every one of the B slots exactly once per CumulativePeriod(l)
// rounds, with no duplicate inside the period.
func TestOneLevelProperty(t *testing.T) {
	for g := 1; g <= 8; g++ {
		s, err := New(g)
		if err != nil {
			t.Fatal(err)
		}
		for level := 0; level < g; level++ {
			period := s.CumulativePeriod(level)
			for start := 0; start < 2*s.BlockSize(); start += period {
				seen := make(map[int]bool)
				for rd := start; rd < start+period; rd++ {
					for layer := 0; layer <= level; layer++ {
						for _, slot := range s.Slots(layer, rd) {
							if seen[slot] {
								t.Fatalf("g=%d level=%d: duplicate slot %d within period starting at round %d", g, level, slot, start)
							}
							seen[slot] = true
						}
					}
				}
				if len(seen) != s.BlockSize() {
					t.Fatalf("g=%d level=%d: period covered %d of %d slots", g, level, len(seen), s.BlockSize())
				}
			}
		}
	}
}

// TestPerLayerPermutation: each individual layer also cycles through all
// slots without repetition every Period(layer) rounds ("the sender
// transmits a permutation of the entire encoding to each multicast layer").
func TestPerLayerPermutation(t *testing.T) {
	for g := 2; g <= 8; g++ {
		s, _ := New(g)
		for layer := 0; layer < g; layer++ {
			period := s.Period(layer)
			seen := make(map[int]bool)
			for rd := 0; rd < period; rd++ {
				for _, slot := range s.Slots(layer, rd) {
					if seen[slot] {
						t.Fatalf("g=%d layer=%d: slot %d repeated within period", g, layer, slot)
					}
					seen[slot] = true
				}
			}
			if len(seen) != s.BlockSize() {
				t.Fatalf("g=%d layer=%d: period covers %d of %d slots", g, layer, len(seen), s.BlockSize())
			}
		}
	}
}

func TestSlotsPerRound(t *testing.T) {
	s, _ := New(5)
	want := []int{1, 1, 2, 4, 8}
	for layer, w := range want {
		if got := s.SlotsPerRound(layer); got != w {
			t.Errorf("SlotsPerRound(%d) = %d, want %d", layer, got, w)
		}
		if got := len(s.Slots(layer, 3)); got != w {
			t.Errorf("len(Slots(%d)) = %d, want %d", layer, got, w)
		}
	}
	if s.CumulativeSlotsPerRound(3) != 8 {
		t.Error("cumulative slots wrong")
	}
}

func TestPacketIndicesPartialBlock(t *testing.T) {
	s, _ := New(4) // B = 8
	n := 20        // 2.5 blocks
	got := s.PacketIndices(3, 0, n)
	// Layer 3 round 0: slots 0-3 in each of blocks 0,1,2 -> 0..3, 8..11, 16..19.
	want := []int{0, 1, 2, 3, 8, 9, 10, 11, 16, 17, 18, 19}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	// Slots beyond n are skipped.
	got0 := s.PacketIndices(0, 0, n) // slot 7 -> 7, 15, 23(skip)
	want0 := []int{7, 15}
	if !reflect.DeepEqual(got0, want0) {
		t.Fatalf("got %v, want %v", got0, want0)
	}
}

func TestQuickNoOverlapAcrossLayers(t *testing.T) {
	// In any round, the slot sets of distinct layers are disjoint.
	err := quick.Check(func(gRaw, roundRaw uint8) bool {
		g := 2 + int(gRaw)%7
		s, _ := New(g)
		round := int(roundRaw)
		seen := map[int]bool{}
		for layer := 0; layer < g; layer++ {
			for _, slot := range s.Slots(layer, round) {
				if seen[slot] {
					return false
				}
				seen[slot] = true
			}
		}
		return len(seen) == s.BlockSize()
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("g=0 accepted")
	}
	if _, err := New(31); err == nil {
		t.Fatal("g=31 accepted")
	}
	s, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	if s.BlockSize() != 1 || len(s.Slots(0, 5)) != 1 {
		t.Fatal("single-layer schedule wrong")
	}
}

func TestSlotsPanicsOnBadLayer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	s, _ := New(3)
	s.Slots(3, 0)
}
