// Package sched implements the paper's layered packet-transmission
// schedule (§7.1.2, Table 5, Figure 7).
//
// The encoding of n packets is divided into blocks of B = 2^(g-1) packets
// for g layers. Transmission proceeds in rounds; in each round every layer
// sends a fixed block-relative slot set, the same in all blocks, with
// per-round slot counts 1, 1, 2, 4, ..., 2^(g-2) for layers 0..g-1 —
// giving the geometric cumulative rates of the layered multicast scheme
// (a receiver at level i gets 2^i slots per block per round).
//
// The slot sets are derived from the reverse binary encoding described in
// the paper. Writing j0 = round mod 2^(g-1) and rev_m for the m-bit
// reversal:
//
//	layer i >= 1: the 2^(i-1) slots whose (g-i)-bit prefix equals
//	              rev_(g-i)(j0) XOR ((2^(g-1-i)-1) << 1)
//	layer 0:      the single slot rev_(g-1)(j0) XOR (2^(g-1)-1)
//
// This reproduces Table 5 exactly and satisfies the One Level Property: a
// receiver subscribed to levels 0..l receives every one of the B slots
// exactly once per 2^(g-1-l) rounds, with no duplicates in between — so at
// a fixed subscription level, no duplicate packet arrives before the whole
// encoding has been seen (§7.1.2). Each individual layer likewise cycles
// through all B slots without repeats every 2^(g-i) rounds (for i >= 1;
// layer 0 every 2^(g-1) rounds).
package sched

import "fmt"

// Schedule generates the per-round slot sets for a g-layer transmission.
type Schedule struct {
	g int
	b int // block size, 2^(g-1)
}

// New constructs a schedule with g >= 1 layers.
func New(g int) (*Schedule, error) {
	if g < 1 || g > 30 {
		return nil, fmt.Errorf("sched: invalid layer count %d", g)
	}
	return &Schedule{g: g, b: 1 << (g - 1)}, nil
}

// Layers returns the number of layers g.
func (s *Schedule) Layers() int { return s.g }

// BlockSize returns B = 2^(g-1), the number of packets per schedule block.
func (s *Schedule) BlockSize() int { return s.b }

// SlotsPerRound returns the number of block-relative slots layer i sends
// each round (Table 5's "bandwidth per round"): 1 for layers 0 and 1,
// 2^(i-1) for layer i >= 1.
func (s *Schedule) SlotsPerRound(layer int) int {
	if layer == 0 {
		return 1
	}
	return 1 << (layer - 1)
}

// CumulativeSlotsPerRound returns the slots per round received at
// subscription level l (layers 0..l): 2^l.
func (s *Schedule) CumulativeSlotsPerRound(level int) int {
	return 1 << level
}

// Period returns the number of rounds after which layer i has sent every
// slot of the block exactly once.
func (s *Schedule) Period(layer int) int {
	if layer == 0 {
		return s.b
	}
	return 1 << (s.g - layer)
}

// CumulativePeriod returns the number of rounds a level-l subscriber needs
// to see the whole block exactly once: 2^(g-1-l).
func (s *Schedule) CumulativePeriod(level int) int {
	return 1 << (s.g - 1 - level)
}

// reverseBits reverses the low `width` bits of v.
func reverseBits(v, width int) int {
	r := 0
	for i := 0; i < width; i++ {
		r = (r << 1) | (v & 1)
		v >>= 1
	}
	return r
}

// Slots returns the block-relative slots layer i sends in the given round
// (0-based). The result is sorted ascending and has SlotsPerRound(layer)
// entries.
func (s *Schedule) Slots(layer, round int) []int {
	return s.AppendSlots(nil, layer, round)
}

// slotBase returns the first block-relative slot layer i sends in the
// given round; the layer's SlotsPerRound slots are consecutive from it.
// This is the one home of the reverse-binary slot derivation — both slot
// enumeration and packet-index expansion build on it.
func (s *Schedule) slotBase(layer, round int) int {
	if layer < 0 || layer >= s.g {
		panic(fmt.Sprintf("sched: layer %d out of range [0,%d)", layer, s.g))
	}
	if s.g == 1 {
		return 0 // single layer, single slot per block
	}
	j0 := round % s.b
	if layer == 0 {
		return reverseBits(j0, s.g-1) ^ (s.b - 1)
	}
	prefixBits := s.g - layer
	mask := ((1 << (s.g - 1 - layer)) - 1) << 1
	prefix := reverseBits(j0%(1<<prefixBits), prefixBits) ^ mask
	return prefix << (layer - 1)
}

// AppendSlots appends the round's block-relative slots for a layer to dst
// and returns the extended slice — the allocation-free form of Slots for
// callers that reuse a scratch buffer across rounds.
func (s *Schedule) AppendSlots(dst []int, layer, round int) []int {
	base := s.slotBase(layer, round)
	for i := 0; i < s.SlotsPerRound(layer); i++ {
		dst = append(dst, base+i)
	}
	return dst
}

// PacketIndices expands the round's slots for a layer into encoding-packet
// indices for an encoding of n packets: slot t yields t, t+B, t+2B, ...
// (one per block), skipping indices >= n when the last block is partial.
func (s *Schedule) PacketIndices(layer, round, n int) []int {
	return s.AppendPacketIndices(nil, layer, round, n)
}

// AppendPacketIndices is the allocation-free form of PacketIndices: the
// expanded indices are appended to dst. Steady-state carousel emission
// walks the schedule through a reused scratch slice, so packet index
// generation costs no allocations per round. The emitted order
// (block-major, slot-minor) is identical to PacketIndices'.
func (s *Schedule) AppendPacketIndices(dst []int, layer, round, n int) []int {
	base := s.slotBase(layer, round)
	slotCount := s.SlotsPerRound(layer)
	blocks := (n + s.b - 1) / s.b
	for b := 0; b < blocks; b++ {
		for i := 0; i < slotCount; i++ {
			if idx := b*s.b + base + i; idx < n {
				dst = append(dst, idx)
			}
		}
	}
	return dst
}
