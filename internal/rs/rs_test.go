package rs

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/code"
	"repro/internal/gf"
)

// Both codecs must satisfy code.Codec.
var (
	_ code.Codec = (*Vandermonde)(nil)
	_ code.Codec = (*Cauchy)(nil)
)

func randSource(rng *rand.Rand, k, packetLen int) [][]byte {
	src := make([][]byte, k)
	for i := range src {
		src[i] = make([]byte, packetLen)
		rng.Read(src[i])
	}
	return src
}

// decodeFrom feeds the decoder the packets whose indices are in recv
// and returns the recovered source.
func decodeFrom(t *testing.T, c code.Codec, enc [][]byte, recv []int) [][]byte {
	t.Helper()
	d := c.NewDecoder()
	done := false
	for _, i := range recv {
		var err error
		done, err = d.Add(i, enc[i])
		if err != nil {
			t.Fatalf("Add(%d): %v", i, err)
		}
	}
	if !done {
		t.Fatalf("decoder not done after %d packets (k=%d)", len(recv), c.K())
	}
	src, err := d.Source()
	if err != nil {
		t.Fatalf("Source: %v", err)
	}
	return src
}

func testAnyKOfN(t *testing.T, mk func(k, n, pl int) (code.Codec, error)) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(24)
		n := k + 1 + rng.Intn(2*k)
		pl := 32
		c, err := mk(k, n, pl)
		if err != nil {
			t.Logf("construct: %v", err)
			return false
		}
		src := randSource(rng, k, pl)
		enc, err := c.Encode(src)
		if err != nil {
			t.Logf("encode: %v", err)
			return false
		}
		// Systematic prefix.
		for i := 0; i < k; i++ {
			if !bytes.Equal(enc[i], src[i]) {
				return false
			}
		}
		// Random k-subset of the n packets decodes.
		recv := rng.Perm(n)[:k]
		got := decodeFrom(t, c, enc, recv)
		for i := range src {
			if !bytes.Equal(got[i], src[i]) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVandermondeAnyKOfN(t *testing.T) {
	testAnyKOfN(t, func(k, n, pl int) (code.Codec, error) { return NewVandermonde(k, n, pl) })
}

func TestCauchyAnyKOfN(t *testing.T) {
	testAnyKOfN(t, func(k, n, pl int) (code.Codec, error) { return NewCauchy(k, n, pl) })
}

func TestVandermondeRepairOnlyDecode(t *testing.T) {
	// Decode purely from repair packets (worst case for the matrix).
	rng := rand.New(rand.NewSource(11))
	c, err := NewVandermonde(8, 24, 64)
	if err != nil {
		t.Fatal(err)
	}
	src := randSource(rng, 8, 64)
	enc, _ := c.Encode(src)
	recv := []int{8, 9, 10, 11, 12, 13, 14, 15}
	got := decodeFrom(t, c, enc, recv)
	for i := range src {
		if !bytes.Equal(got[i], src[i]) {
			t.Fatalf("packet %d differs", i)
		}
	}
}

func TestCauchyRepairOnlyDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	c, err := NewCauchy(8, 24, 64)
	if err != nil {
		t.Fatal(err)
	}
	src := randSource(rng, 8, 64)
	enc, _ := c.Encode(src)
	recv := []int{16, 17, 18, 19, 20, 21, 22, 23}
	got := decodeFrom(t, c, enc, recv)
	for i := range src {
		if !bytes.Equal(got[i], src[i]) {
			t.Fatalf("packet %d differs", i)
		}
	}
}

func TestHalfSourceHalfRepair(t *testing.T) {
	// The paper's Table 3 protocol: k/2 source + k/2 repair packets.
	rng := rand.New(rand.NewSource(13))
	for _, mk := range []func() (code.Codec, error){
		func() (code.Codec, error) { return NewVandermonde(16, 32, 32) },
		func() (code.Codec, error) { return NewCauchy(16, 32, 32) },
	} {
		c, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		src := randSource(rng, 16, 32)
		enc, _ := c.Encode(src)
		recv := append(rng.Perm(16)[:8], shift(rng.Perm(16)[:8], 16)...)
		got := decodeFrom(t, c, enc, recv)
		for i := range src {
			if !bytes.Equal(got[i], src[i]) {
				t.Fatalf("%s: packet %d differs", c.Name(), i)
			}
		}
	}
}

func shift(xs []int, by int) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = x + by
	}
	return out
}

func TestDuplicatesIgnored(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	c, _ := NewCauchy(4, 8, 32)
	src := randSource(rng, 4, 32)
	enc, _ := c.Encode(src)
	d := c.NewDecoder()
	for i := 0; i < 10; i++ {
		d.Add(5, enc[5]) // same packet over and over
	}
	if d.Received() != 1 {
		t.Fatalf("Received = %d after duplicates, want 1", d.Received())
	}
	if d.Done() {
		t.Fatal("done after one distinct packet")
	}
}

func TestAddErrors(t *testing.T) {
	c, _ := NewVandermonde(4, 8, 32)
	d := c.NewDecoder()
	if _, err := d.Add(8, make([]byte, 32)); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := d.Add(0, make([]byte, 31)); err == nil {
		t.Fatal("short packet accepted")
	}
	if _, err := d.Source(); err == nil {
		t.Fatal("Source before done")
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewVandermonde(0, 4, 32); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewVandermonde(4, 4, 32); err == nil {
		t.Fatal("n=k accepted")
	}
	if _, err := NewVandermonde(4, 8, 31); err == nil {
		t.Fatal("odd packetLen accepted")
	}
	if _, err := NewVandermonde(40000, 70000, 32); err == nil {
		t.Fatal("n beyond field accepted")
	}
	if _, err := NewCauchy(4, 8, 24); err == nil {
		t.Fatal("packetLen not multiple of 16 accepted")
	}
	if _, err := NewCauchy(4, 8, 32); err != nil {
		t.Fatal(err)
	}
}

func TestDecodersIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	c, _ := NewCauchy(4, 8, 32)
	src := randSource(rng, 4, 32)
	enc, _ := c.Encode(src)
	d1 := c.NewDecoder()
	d2 := c.NewDecoder()
	d1.Add(0, enc[0])
	if d2.Received() != 0 {
		t.Fatal("decoders share state")
	}
}

func TestAddAfterDoneIgnored(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	c, _ := NewVandermonde(3, 6, 32)
	src := randSource(rng, 3, 32)
	enc, _ := c.Encode(src)
	d := c.NewDecoder()
	for i := 0; i < 3; i++ {
		d.Add(i, enc[i])
	}
	if !d.Done() {
		t.Fatal("not done at k packets")
	}
	done, err := d.Add(4, enc[4])
	if err != nil || !done {
		t.Fatalf("Add after done: done=%v err=%v", done, err)
	}
	if d.Received() != 3 {
		t.Fatalf("Received = %d, want 3", d.Received())
	}
}

func TestDecoderDataIsCopied(t *testing.T) {
	// Mutating the caller's buffer after Add must not corrupt decoding.
	rng := rand.New(rand.NewSource(17))
	c, _ := NewCauchy(2, 4, 32)
	src := randSource(rng, 2, 32)
	enc, _ := c.Encode(src)
	d := c.NewDecoder()
	buf := make([]byte, 32)
	copy(buf, enc[2])
	d.Add(2, buf)
	for i := range buf {
		buf[i] = 0xEE
	}
	d.Add(0, enc[0])
	got, err := d.Source()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[1], src[1]) {
		t.Fatal("decoder aliased caller buffer")
	}
}

func TestEncodeConcurrent(t *testing.T) {
	// One codec, many goroutines encoding at once: exercises the shared
	// per-coefficient table/schedule caches and the worker pool under -race.
	rng := rand.New(rand.NewSource(18))
	for _, mk := range []func() (code.Codec, error){
		func() (code.Codec, error) { return NewVandermonde(24, 48, 64) },
		func() (code.Codec, error) { return NewCauchy(24, 48, 64) },
	} {
		c, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		src := randSource(rng, 24, 64)
		want, err := c.Encode(src)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				got, err := c.Encode(src)
				if err != nil {
					t.Errorf("%s: concurrent encode: %v", c.Name(), err)
					return
				}
				for i := range want {
					if !bytes.Equal(got[i], want[i]) {
						t.Errorf("%s: concurrent encode diverges at packet %d", c.Name(), i)
						return
					}
				}
			}()
		}
		wg.Wait()
	}
}

func TestCauchyScheduleMatchesBitMatrix(t *testing.T) {
	// The cached diagonal-run schedule must cover exactly the set bits of
	// the multiplication bit-matrix, each exactly once.
	f := gf.New16()
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 200; trial++ {
		e := uint32(2 + rng.Intn(1<<16-2))
		var want [16][16]bool
		for j := 0; j < 16; j++ {
			col := f.Mul(e, 1<<uint(j))
			for i := 0; i < 16; i++ {
				want[i][j] = col&(1<<uint(i)) != 0
			}
		}
		var got [16][16]int
		for _, r := range mulRuns(f, e) {
			for m := 0; m < int(r.m); m++ {
				got[int(r.di)+m][int(r.si)+m]++
			}
		}
		for i := 0; i < 16; i++ {
			for j := 0; j < 16; j++ {
				w := 0
				if want[i][j] {
					w = 1
				}
				if got[i][j] != w {
					t.Fatalf("e=%#x: bit (%d,%d) covered %d times, want %d", e, i, j, got[i][j], w)
				}
			}
		}
	}
}

// TestEncodeRangeMatchesEncode: any window of EncodeRange must equal the
// corresponding slice of the full encoding, for both RS codecs.
func TestEncodeRangeMatchesEncode(t *testing.T) {
	const k, n, pl = 30, 60, 64
	rng := rand.New(rand.NewSource(11))
	src := make([][]byte, k)
	for i := range src {
		src[i] = make([]byte, pl)
		rng.Read(src[i])
	}
	codecs := []code.Codec{}
	v, err := NewVandermonde(k, n, pl)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCauchy(k, n, pl)
	if err != nil {
		t.Fatal(err)
	}
	codecs = append(codecs, v, c)
	for _, cd := range codecs {
		full, err := cd.Encode(src)
		if err != nil {
			t.Fatal(err)
		}
		re := cd.(code.RangeEncoder)
		for _, win := range [][2]int{{0, n}, {0, k}, {k, n}, {k - 3, k + 3}, {n - 5, n}, {17, 17}} {
			got, err := re.EncodeRange(src, win[0], win[1])
			if err != nil {
				t.Fatalf("%s range %v: %v", cd.Name(), win, err)
			}
			if len(got) != win[1]-win[0] {
				t.Fatalf("%s range %v: %d packets", cd.Name(), win, len(got))
			}
			for i, p := range got {
				if !bytes.Equal(p, full[win[0]+i]) {
					t.Fatalf("%s: packet %d differs from full encoding", cd.Name(), win[0]+i)
				}
			}
		}
		// Source windows must alias, not copy.
		got, err := re.EncodeRange(src, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if &got[0][0] != &src[0][0] {
			t.Fatalf("%s: source packet copied, want alias", cd.Name())
		}
		if _, err := re.EncodeRange(src, -1, 2); err == nil {
			t.Fatalf("%s: negative lo accepted", cd.Name())
		}
		if _, err := re.EncodeRange(src, 0, n+1); err == nil {
			t.Fatalf("%s: hi > n accepted", cd.Name())
		}
	}
}
