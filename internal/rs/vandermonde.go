// Package rs implements the two "standard" Reed-Solomon erasure-code
// baselines the paper benchmarks against (§5.2, Tables 2-3):
//
//   - Vandermonde codes in the style of Rizzo's fec [16]: symbols are
//     GF(2^16) elements, encoding evaluates the source polynomial at extra
//     points, and decoding inverts a k x k matrix by Gaussian elimination
//     (O(k^3)) — the behaviour that makes the baseline collapse at large k.
//   - Cauchy codes in the style of Blömer et al. [2]: the generator is a
//     Cauchy matrix expanded to bit matrices so that encoding and decoding
//     are pure XORs of sub-packets, and the decode-time matrix inversion
//     uses the closed-form O(x^2) Cauchy inverse.
//
// Both are systematic MDS codes: any k of the n encoding packets recover
// the source.
package rs

import (
	"fmt"

	"repro/internal/code"
	"repro/internal/gf"
	"repro/internal/gfmat"
)

// Vandermonde is a systematic Reed-Solomon erasure code over GF(2^16) in
// evaluation form: source packet j is the value of a degree-(k-1)
// polynomial at point j, and repair packet r is its value at point k+r.
type Vandermonde struct {
	k, n      int
	packetLen int
	f         *gf.Field
	// barycentric weights: w[j] = prod_{m != j, m < k} (j ^ m)
	weights []uint32
	invW    []uint32
}

// NewVandermonde constructs the codec. n must not exceed the field size
// (65536) and packetLen must be even (16-bit symbols).
func NewVandermonde(k, n, packetLen int) (*Vandermonde, error) {
	f := gf.New16()
	switch {
	case k <= 0 || n <= k:
		return nil, fmt.Errorf("rs: invalid k=%d n=%d", k, n)
	case n > f.Size():
		return nil, fmt.Errorf("rs: n=%d exceeds GF(2^16) size", n)
	case packetLen <= 0 || packetLen%2 != 0:
		return nil, fmt.Errorf("rs: packetLen %d must be positive and even", packetLen)
	}
	v := &Vandermonde{k: k, n: n, packetLen: packetLen, f: f}
	v.weights = make([]uint32, k)
	v.invW = make([]uint32, k)
	for j := 0; j < k; j++ {
		w := uint32(1)
		for m := 0; m < k; m++ {
			if m != j {
				w = f.Mul(w, uint32(j^m))
			}
		}
		v.weights[j] = w
		v.invW[j] = f.Inv(w)
	}
	return v, nil
}

// Name implements code.Codec.
func (v *Vandermonde) Name() string { return "rs-vandermonde" }

// K implements code.Codec.
func (v *Vandermonde) K() int { return v.k }

// N implements code.Codec.
func (v *Vandermonde) N() int { return v.n }

// PacketLen implements code.Codec.
func (v *Vandermonde) PacketLen() int { return v.packetLen }

// repairRow returns the k encoding coefficients of repair packet r
// (encoding packet index k+r), using the barycentric Lagrange form:
// c_j = w(x) / ((x ^ j) * W_j) with x = k + r.
func (v *Vandermonde) repairRow(r int, row []uint32) {
	f := v.f
	x := uint32(v.k + r)
	wx := uint32(1)
	for m := 0; m < v.k; m++ {
		wx = f.Mul(wx, x^uint32(m))
	}
	for j := 0; j < v.k; j++ {
		row[j] = f.Mul(wx, f.Inv(f.Mul(x^uint32(j), v.weights[j])))
	}
}

// Encode implements code.Codec. The returned slice holds the k source
// packets followed by n-k repair packets.
func (v *Vandermonde) Encode(src [][]byte) ([][]byte, error) {
	if err := code.CheckSrc(src, v.k, v.packetLen); err != nil {
		return nil, err
	}
	out := make([][]byte, v.n)
	copy(out, src)
	row := make([]uint32, v.k)
	for r := 0; r < v.n-v.k; r++ {
		v.repairRow(r, row)
		p := make([]byte, v.packetLen)
		for j, c := range row {
			if c == 0 {
				continue
			}
			tab := v.f.MulTab(c)
			gf.MulSliceAddTab16(tab, p, src[j])
		}
		out[v.k+r] = p
	}
	return out, nil
}

// NewDecoder implements code.Codec.
func (v *Vandermonde) NewDecoder() code.Decoder {
	return &vdmDecoder{c: v, have: make(map[int][]byte, v.k)}
}

type vdmDecoder struct {
	c    *Vandermonde
	have map[int][]byte // packet index -> payload (first k distinct kept)
	src  [][]byte       // decoded source, cached
}

func (d *vdmDecoder) Add(i int, data []byte) (bool, error) {
	if err := code.CheckPacket(i, data, d.c.n, d.c.packetLen); err != nil {
		return d.Done(), err
	}
	if d.Done() {
		return true, nil
	}
	if _, dup := d.have[i]; dup {
		return false, nil
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	d.have[i] = buf
	return d.Done(), nil
}

func (d *vdmDecoder) Done() bool { return len(d.have) >= d.c.k }

func (d *vdmDecoder) Received() int { return len(d.have) }

// Source implements code.Decoder. This is the expensive step the paper
// measures in Table 3: Gaussian inversion of the k x k reception matrix
// followed by reconstruction of the missing source packets.
func (d *vdmDecoder) Source() ([][]byte, error) {
	if d.src != nil {
		return d.src, nil
	}
	if !d.Done() {
		return nil, code.ErrNotReady
	}
	c := d.c
	f := c.f
	// Deterministic order: source packets first (their rows are units and
	// make the elimination cheaper), then repairs — mirroring how Rizzo's
	// decoder shuffles known source packets to the top.
	idx := make([]int, 0, c.k)
	for i := 0; i < c.n && len(idx) < c.k; i++ {
		if _, ok := d.have[i]; ok {
			idx = append(idx, i)
		}
	}
	m := gfmat.New(f, c.k, c.k)
	rowBuf := make([]uint32, c.k)
	for r, i := range idx {
		if i < c.k {
			m.Set(r, i, 1)
			continue
		}
		c.repairRow(i-c.k, rowBuf)
		copy(m.Row(r), rowBuf)
	}
	inv, err := m.Invert()
	if err != nil {
		return nil, fmt.Errorf("rs: reception matrix singular: %w", err)
	}
	src := make([][]byte, c.k)
	for _, i := range idx {
		if i < c.k {
			src[i] = d.have[i]
		}
	}
	for j := 0; j < c.k; j++ {
		if src[j] != nil {
			continue
		}
		p := make([]byte, c.packetLen)
		for r, coeff := range inv.Row(j) {
			if coeff == 0 {
				continue
			}
			tab := f.MulTab(coeff)
			gf.MulSliceAddTab16(tab, p, d.have[idx[r]])
		}
		src[j] = p
	}
	d.src = src
	return src, nil
}
