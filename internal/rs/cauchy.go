package rs

import (
	"fmt"

	"repro/internal/code"
	"repro/internal/gf"
	"repro/internal/gfmat"
)

// Cauchy is a systematic Cauchy Reed-Solomon erasure code (Blömer et al.,
// "An XOR-Based Erasure-Resilient Coding Scheme"). The generator's repair
// part is the Cauchy matrix C[i][j] = 1/((k+i) ^ j) over GF(2^16); each
// field coefficient is expanded into a 16x16 bit matrix so that all packet
// arithmetic is XOR of 1/16-packet sub-blocks.
type Cauchy struct {
	k, n      int
	packetLen int
	w         int // symbol width in bits (16)
	sub       int // sub-block length in bytes (packetLen / w)
	f         *gf.Field
}

// NewCauchy constructs the codec. packetLen must be a multiple of 16
// (the symbol width) and n must not exceed 65536.
func NewCauchy(k, n, packetLen int) (*Cauchy, error) {
	f := gf.New16()
	w := int(f.Width())
	switch {
	case k <= 0 || n <= k:
		return nil, fmt.Errorf("rs: invalid k=%d n=%d", k, n)
	case n > f.Size():
		return nil, fmt.Errorf("rs: n=%d exceeds GF(2^16) size", n)
	case packetLen <= 0 || packetLen%w != 0:
		return nil, fmt.Errorf("rs: packetLen %d must be a positive multiple of %d", packetLen, w)
	}
	return &Cauchy{k: k, n: n, packetLen: packetLen, w: w, sub: packetLen / w, f: f}, nil
}

// Name implements code.Codec.
func (c *Cauchy) Name() string { return "rs-cauchy" }

// K implements code.Codec.
func (c *Cauchy) K() int { return c.k }

// N implements code.Codec.
func (c *Cauchy) N() int { return c.n }

// PacketLen implements code.Codec.
func (c *Cauchy) PacketLen() int { return c.packetLen }

// coeff returns the Cauchy coefficient tying repair row r to source
// column j.
func (c *Cauchy) coeff(r, j int) uint32 {
	return c.f.Inv(uint32(c.k+r) ^ uint32(j))
}

// apply computes dst ^= e (x) src, where (x) is the bit-matrix expansion of
// multiplication by the field element e acting on w sub-blocks: output
// sub-block i accumulates input sub-block j whenever bit i of e·2^j is set.
// The column images e·2^j are computed inline so the hot path allocates
// nothing.
func (c *Cauchy) apply(e uint32, dst, src []byte) {
	if e == 0 {
		return
	}
	if e == 1 {
		gf.XORSlice(dst, src)
		return
	}
	var cols [16]uint32
	for j := 0; j < c.w; j++ {
		cols[j] = c.f.Mul(e, 1<<uint(j))
	}
	for i := 0; i < c.w; i++ {
		di := dst[i*c.sub : (i+1)*c.sub]
		bit := uint32(1) << uint(i)
		for j := 0; j < c.w; j++ {
			if cols[j]&bit != 0 {
				gf.XORSlice(di, src[j*c.sub:(j+1)*c.sub])
			}
		}
	}
}

// Encode implements code.Codec.
func (c *Cauchy) Encode(src [][]byte) ([][]byte, error) {
	if err := code.CheckSrc(src, c.k, c.packetLen); err != nil {
		return nil, err
	}
	out := make([][]byte, c.n)
	copy(out, src)
	for r := 0; r < c.n-c.k; r++ {
		p := make([]byte, c.packetLen)
		for j := 0; j < c.k; j++ {
			c.apply(c.coeff(r, j), p, src[j])
		}
		out[c.k+r] = p
	}
	return out, nil
}

// NewDecoder implements code.Codec.
func (c *Cauchy) NewDecoder() code.Decoder {
	return &cauchyDecoder{c: c, have: make(map[int][]byte, c.k)}
}

type cauchyDecoder struct {
	c    *Cauchy
	have map[int][]byte
	src  [][]byte
}

func (d *cauchyDecoder) Add(i int, data []byte) (bool, error) {
	if err := code.CheckPacket(i, data, d.c.n, d.c.packetLen); err != nil {
		return d.Done(), err
	}
	if d.Done() {
		return true, nil
	}
	if _, dup := d.have[i]; dup {
		return false, nil
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	d.have[i] = buf
	return d.Done(), nil
}

func (d *cauchyDecoder) Done() bool { return len(d.have) >= d.c.k }

func (d *cauchyDecoder) Received() int { return len(d.have) }

// Source implements code.Decoder. Missing source packets are recovered by
// (1) adjusting one received repair equation per missing packet by the
// known source packets (XOR bit-matrix applies), (2) inverting the
// missing-column/used-repair Cauchy submatrix with the closed-form O(x^2)
// inverse, and (3) applying the inverse to the adjusted values.
func (d *cauchyDecoder) Source() ([][]byte, error) {
	if d.src != nil {
		return d.src, nil
	}
	if !d.Done() {
		return nil, code.ErrNotReady
	}
	c := d.c
	src := make([][]byte, c.k)
	missing := make([]int, 0)
	for j := 0; j < c.k; j++ {
		if p, ok := d.have[j]; ok {
			src[j] = p
		} else {
			missing = append(missing, j)
		}
	}
	if len(missing) == 0 {
		d.src = src
		return src, nil
	}
	// Pick one received repair row per missing packet.
	repairs := make([]int, 0, len(missing))
	for i := c.k; i < c.n && len(repairs) < len(missing); i++ {
		if _, ok := d.have[i]; ok {
			repairs = append(repairs, i-c.k)
		}
	}
	if len(repairs) < len(missing) {
		return nil, code.ErrNotReady
	}
	// Adjusted right-hand sides: b_r = repair_r ^ sum_{known j} C[r][j] (x) src_j.
	b := make([][]byte, len(repairs))
	for bi, r := range repairs {
		buf := make([]byte, c.packetLen)
		copy(buf, d.have[c.k+r])
		for j := 0; j < c.k; j++ {
			if src[j] != nil {
				c.apply(c.coeff(r, j), buf, src[j])
			}
		}
		b[bi] = buf
	}
	// Invert the Cauchy submatrix with points x = k + repairs, y = missing.
	x := make([]uint32, len(repairs))
	y := make([]uint32, len(missing))
	for i, r := range repairs {
		x[i] = uint32(c.k + r)
	}
	for i, j := range missing {
		y[i] = uint32(j)
	}
	inv, err := gfmat.CauchyInverse(c.f, x, y)
	if err != nil {
		return nil, fmt.Errorf("rs: cauchy inverse: %w", err)
	}
	for mi, j := range missing {
		p := make([]byte, c.packetLen)
		for bi := range repairs {
			c.apply(inv.At(mi, bi), p, b[bi])
		}
		src[j] = p
	}
	d.src = src
	return src, nil
}
