package rs

import (
	"fmt"
	"sync/atomic"

	"repro/internal/code"
	"repro/internal/gf"
	"repro/internal/gfmat"
)

// Cauchy is a systematic Cauchy Reed-Solomon erasure code (Blömer et al.,
// "An XOR-Based Erasure-Resilient Coding Scheme"). The generator's repair
// part is the Cauchy matrix C[i][j] = 1/((k+i) ^ j) over GF(2^16); each
// field coefficient is expanded into a 16x16 bit matrix so that all packet
// arithmetic is XOR of 1/16-packet sub-blocks.
type Cauchy struct {
	k, n      int
	packetLen int
	w         int // symbol width in bits (16)
	sub       int // sub-block length in bytes (packetLen / w)
	f         *gf.Field
}

// NewCauchy constructs the codec. packetLen must be a multiple of 16
// (the symbol width) and n must not exceed 65536.
func NewCauchy(k, n, packetLen int) (*Cauchy, error) {
	f := gf.New16()
	w := int(f.Width())
	switch {
	case k <= 0 || n <= k:
		return nil, fmt.Errorf("rs: invalid k=%d n=%d", k, n)
	case n > f.Size():
		return nil, fmt.Errorf("rs: n=%d exceeds GF(2^16) size", n)
	case packetLen <= 0 || packetLen%w != 0:
		return nil, fmt.Errorf("rs: packetLen %d must be a positive multiple of %d", packetLen, w)
	}
	return &Cauchy{k: k, n: n, packetLen: packetLen, w: w, sub: packetLen / w, f: f}, nil
}

// Name implements code.Codec.
func (c *Cauchy) Name() string { return "rs-cauchy" }

// K implements code.Codec.
func (c *Cauchy) K() int { return c.k }

// N implements code.Codec.
func (c *Cauchy) N() int { return c.n }

// PacketLen implements code.Codec.
func (c *Cauchy) PacketLen() int { return c.packetLen }

// coeff returns the Cauchy coefficient tying repair row r to source
// column j.
func (c *Cauchy) coeff(r, j int) uint32 {
	return c.f.Inv(uint32(c.k+r) ^ uint32(j))
}

// xorRun is one diagonal run of the bit-matrix of multiplication by a
// fixed coefficient: XOR m consecutive sub-blocks of src, starting at
// block si, into the m consecutive dst sub-blocks starting at block di.
//
// Diagonal runs exist because column j+1 of the bit matrix is column j
// doubled: whenever e·2^j stays below the reduction threshold the next
// column is a pure shift, so set bits continue down the diagonal. Merging
// them turns many sub-block XORs into one longer XOR, which is where the
// vectorized XOR kernel earns its width (see the DESIGN.md ablation).
type xorRun struct{ di, si, m uint8 }

// runCache memoizes the XOR schedule per GF(2^16) coefficient. Cauchy
// codecs revisit the same coefficients for every packet (the encode matrix
// at fixed (k, n) uses at most n-1 distinct coefficients), so after warmup
// apply() does no bit-matrix work at all. The zero coefficient maps to an
// empty schedule and coefficient 1 is special-cased before lookup.
var runCache [1 << 16]atomic.Pointer[[]xorRun]

// mulRuns returns the diagonal-run XOR schedule of multiplication by e over
// GF(2^16), building and caching it on first use (concurrency-safe: racing
// builders store identical schedules). The cache is valid only for the
// shared gf.New16() field (schedules depend on the reduction polynomial);
// foreign fields get an uncached build.
func mulRuns(f *gf.Field, e uint32) []xorRun {
	e &= 0xFFFF
	if f != gf.New16() {
		return appendRuns(nil, f, e)
	}
	if p := runCache[e].Load(); p != nil {
		return *p
	}
	runs := appendRuns(make([]xorRun, 0, 16*16/2), f, e)
	runCache[e].Store(&runs)
	return runs
}

// appendRuns appends the diagonal runs of the bit-matrix of multiplication
// by e to runs. mulRuns wraps it with the schedule cache; the direct path
// exists for GF(2^16) fields other than the gf.New16() singleton, whose
// schedules must not share the cache.
func appendRuns(runs []xorRun, f *gf.Field, e uint32) []xorRun {
	const w = 16
	// cols[j] = e·2^j: column j of the bit matrix.
	var cols [w]uint32
	for j := 0; j < w; j++ {
		cols[j] = f.Mul(e, 1<<uint(j))
	}
	bit := func(i, j int) bool { return cols[j]&(1<<uint(i)) != 0 }
	var seen [w][w]bool
	for i := 0; i < w; i++ {
		for j := 0; j < w; j++ {
			if seen[i][j] || !bit(i, j) {
				continue
			}
			m := 1
			for i+m < w && j+m < w && bit(i+m, j+m) && !seen[i+m][j+m] {
				seen[i+m][j+m] = true
				m++
			}
			runs = append(runs, xorRun{di: uint8(i), si: uint8(j), m: uint8(m)})
		}
	}
	return runs
}

// apply computes dst ^= e (x) src, where (x) is the bit-matrix expansion of
// multiplication by the field element e acting on w sub-blocks: output
// sub-block i accumulates input sub-block j whenever bit i of e·2^j is set.
// The bit matrix is walked as cached diagonal runs so each schedule entry
// is one contiguous XOR.
func (c *Cauchy) apply(e uint32, dst, src []byte) {
	if e == 0 {
		return
	}
	if e == 1 {
		gf.XORSlice(dst, src)
		return
	}
	c.applySched(mulRuns(c.f, e), dst, src)
}

// applySched walks a prebuilt diagonal-run schedule.
func (c *Cauchy) applySched(sched []xorRun, dst, src []byte) {
	sub := c.sub
	for _, r := range sched {
		n := int(r.m) * sub
		d := dst[int(r.di)*sub:]
		s := src[int(r.si)*sub:]
		gf.XORSlice(d[:n], s[:n])
	}
}

// Encode implements code.Codec. Repair packets are independent, so they are
// generated by a GOMAXPROCS-sized worker pool over one shared backing store
// (the XOR-schedule cache is concurrency-safe).
func (c *Cauchy) Encode(src [][]byte) ([][]byte, error) {
	if err := code.CheckSrc(src, c.k, c.packetLen); err != nil {
		return nil, err
	}
	out := make([][]byte, c.n)
	copy(out, src)
	nrep := c.n - c.k
	store := make([]byte, nrep*c.packetLen)
	code.ParallelChunks(nrep, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			p := store[r*c.packetLen : (r+1)*c.packetLen]
			for j := 0; j < c.k; j++ {
				c.apply(c.coeff(r, j), p, src[j])
			}
			out[c.k+r] = p
		}
	})
	return out, nil
}

// EncodeRange implements code.RangeEncoder: every repair packet is an
// independent bit-matrix inner product over the sources, so any index
// window can be produced in isolation. Source indices alias src.
func (c *Cauchy) EncodeRange(src [][]byte, lo, hi int) ([][]byte, error) {
	if err := code.CheckSrc(src, c.k, c.packetLen); err != nil {
		return nil, err
	}
	if lo < 0 || hi < lo || hi > c.n {
		return nil, fmt.Errorf("rs: encode range [%d,%d) out of [0,%d)", lo, hi, c.n)
	}
	out := make([][]byte, hi-lo)
	var store []byte
	if rep := hi - max(lo, c.k); rep > 0 {
		store = make([]byte, rep*c.packetLen)
	}
	ri := 0
	for i := lo; i < hi; i++ {
		if i < c.k {
			out[i-lo] = src[i]
			continue
		}
		p := store[ri*c.packetLen : (ri+1)*c.packetLen]
		ri++
		r := i - c.k
		for j := 0; j < c.k; j++ {
			c.apply(c.coeff(r, j), p, src[j])
		}
		out[i-lo] = p
	}
	return out, nil
}

// NewDecoder implements code.Codec.
func (c *Cauchy) NewDecoder() code.Decoder {
	return &cauchyDecoder{c: c, have: make(map[int][]byte, c.k)}
}

type cauchyDecoder struct {
	c    *Cauchy
	have map[int][]byte
	src  [][]byte
}

func (d *cauchyDecoder) Add(i int, data []byte) (bool, error) {
	if err := code.CheckPacket(i, data, d.c.n, d.c.packetLen); err != nil {
		return d.Done(), err
	}
	if d.Done() {
		return true, nil
	}
	if _, dup := d.have[i]; dup {
		return false, nil
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	d.have[i] = buf
	return d.Done(), nil
}

func (d *cauchyDecoder) Done() bool { return len(d.have) >= d.c.k }

func (d *cauchyDecoder) Received() int { return len(d.have) }

// Source implements code.Decoder. Missing source packets are recovered by
// (1) adjusting one received repair equation per missing packet by the
// known source packets (XOR bit-matrix applies), (2) inverting the
// missing-column/used-repair Cauchy submatrix with the closed-form O(x^2)
// inverse, and (3) applying the inverse to the adjusted values.
func (d *cauchyDecoder) Source() ([][]byte, error) {
	if d.src != nil {
		return d.src, nil
	}
	if !d.Done() {
		return nil, code.ErrNotReady
	}
	c := d.c
	src := make([][]byte, c.k)
	missing := make([]int, 0)
	for j := 0; j < c.k; j++ {
		if p, ok := d.have[j]; ok {
			src[j] = p
		} else {
			missing = append(missing, j)
		}
	}
	if len(missing) == 0 {
		d.src = src
		return src, nil
	}
	// Pick one received repair row per missing packet.
	repairs := make([]int, 0, len(missing))
	for i := c.k; i < c.n && len(repairs) < len(missing); i++ {
		if _, ok := d.have[i]; ok {
			repairs = append(repairs, i-c.k)
		}
	}
	if len(repairs) < len(missing) {
		return nil, code.ErrNotReady
	}
	// Adjusted right-hand sides: b_r = repair_r ^ sum_{known j} C[r][j] (x) src_j.
	// Each adjustment is independent, so fan out across the pool.
	b := make([][]byte, len(repairs))
	bStore := make([]byte, len(repairs)*c.packetLen)
	code.ParallelChunks(len(repairs), func(lo, hi int) {
		for bi := lo; bi < hi; bi++ {
			r := repairs[bi]
			buf := bStore[bi*c.packetLen : (bi+1)*c.packetLen]
			copy(buf, d.have[c.k+r])
			for j := 0; j < c.k; j++ {
				if src[j] != nil {
					c.apply(c.coeff(r, j), buf, src[j])
				}
			}
			b[bi] = buf
		}
	})
	// Invert the Cauchy submatrix with points x = k + repairs, y = missing.
	x := make([]uint32, len(repairs))
	y := make([]uint32, len(missing))
	for i, r := range repairs {
		x[i] = uint32(c.k + r)
	}
	for i, j := range missing {
		y[i] = uint32(j)
	}
	inv, err := gfmat.CauchyInverse(c.f, x, y)
	if err != nil {
		return nil, fmt.Errorf("rs: cauchy inverse: %w", err)
	}
	// Inverse entries do go through the schedule cache even though they are
	// reception-specific: a schedule is ~250 bytes (vs the 1 KiB split
	// tables the Vandermonde decoder deliberately keeps out of its cache),
	// so even the all-coefficients worst case stays in the low MiB while
	// rebuilding per entry measurably halves reconstruction throughput.
	mStore := make([]byte, len(missing)*c.packetLen)
	code.ParallelChunks(len(missing), func(lo, hi int) {
		for mi := lo; mi < hi; mi++ {
			p := mStore[mi*c.packetLen : (mi+1)*c.packetLen]
			for bi := range repairs {
				c.apply(inv.At(mi, bi), p, b[bi])
			}
			src[missing[mi]] = p
		}
	})
	d.src = src
	return src, nil
}
