package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("bad summary: %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(1.25)) > 1e-12 {
		t.Fatalf("std = %v", s.Std)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatal("empty sample not zero")
	}
}

func TestCDFQuantileAndP(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2, 4})
	if c.Quantile(0) != 1 || c.Quantile(1) != 4 {
		t.Fatal("edge quantiles wrong")
	}
	if c.Quantile(0.5) != 3 {
		t.Fatalf("median-ish = %v", c.Quantile(0.5))
	}
	if c.P(0) != 0 || c.P(2) != 0.5 || c.P(10) != 1 {
		t.Fatalf("P wrong: %v %v %v", c.P(0), c.P(2), c.P(10))
	}
	if c.Len() != 4 {
		t.Fatal("len wrong")
	}
}

func TestCDFSampleMatchesDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := make([]float64, 1000)
	for i := range src {
		src[i] = rng.NormFloat64()
	}
	c := NewCDF(src)
	var resampled []float64
	for i := 0; i < 5000; i++ {
		resampled = append(resampled, c.Sample(rng.Float64()))
	}
	s1, s2 := Summarize(src), Summarize(resampled)
	if math.Abs(s1.Mean-s2.Mean) > 0.1 || math.Abs(s1.Std-s2.Std) > 0.1 {
		t.Fatalf("resampled stats diverge: %v vs %v", s1, s2)
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{0.1, 0.2, 0.9, -5, 99}, 0, 1, 2)
	if h[0] != 3 || h[1] != 2 {
		t.Fatalf("hist = %v", h)
	}
	if got := Histogram(nil, 0, 0, 0); len(got) != 0 {
		t.Fatal("degenerate histogram")
	}
}

func TestMeanMinOfR(t *testing.T) {
	// For uniform [0,1] samples, E[min of r] ≈ 1/(r+1).
	rng := rand.New(rand.NewSource(2))
	src := make([]float64, 20000)
	for i := range src {
		src[i] = rng.Float64()
	}
	c := NewCDF(src)
	for _, r := range []int{1, 2, 5, 10} {
		got := c.MeanMinOfR(r)
		want := 1 / float64(r+1)
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("r=%d: E[min] = %v, want ≈ %v", r, got, want)
		}
	}
}

func TestMeanMinOfRMatchesSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := make([]float64, 5000)
	for i := range src {
		src[i] = rng.ExpFloat64()
	}
	c := NewCDF(src)
	r := 7
	// Direct simulation from the same empirical distribution.
	sum := 0.0
	trials := 20000
	for tr := 0; tr < trials; tr++ {
		m := math.Inf(1)
		for i := 0; i < r; i++ {
			v := src[rng.Intn(len(src))]
			if v < m {
				m = v
			}
		}
		sum += m
	}
	sim := sum / float64(trials)
	got := c.MeanMinOfR(r)
	if math.Abs(got-sim) > 0.02 {
		t.Fatalf("order-stat %v vs simulated %v", got, sim)
	}
}

func TestQuantileMonotone(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(50))
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		c := NewCDF(xs)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := c.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}
