// Package stats provides the small statistical toolkit the experiment
// harness uses: summary statistics, empirical CDFs (for sampling Tornado
// reception overheads inside large population sweeps, §6.2), and
// deterministic PRNG plumbing.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the moments of a sample.
type Summary struct {
	N        int
	Mean     float64
	Std      float64
	Min, Max float64
}

// Summarize computes summary statistics of xs. An empty sample returns a
// zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	varSum := 0.0
	for _, x := range xs {
		d := x - s.Mean
		varSum += d * d
	}
	s.Std = math.Sqrt(varSum / float64(len(xs)))
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4f sd=%.4f min=%.4f max=%.4f", s.N, s.Mean, s.Std, s.Min, s.Max)
}

// CDF is an empirical distribution over float64 samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF (the input is copied).
func NewCDF(samples []float64) *CDF {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the sample count.
func (c *CDF) Len() int { return len(c.sorted) }

// Quantile returns the q-quantile (q in [0,1]) by nearest-rank.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	i := int(q * float64(len(c.sorted)))
	if i >= len(c.sorted) {
		i = len(c.sorted) - 1
	}
	return c.sorted[i]
}

// Sample draws a value using u in [0,1) (inverse-transform sampling).
func (c *CDF) Sample(u float64) float64 { return c.Quantile(u) }

// P returns the empirical P(X <= x).
func (c *CDF) P(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Histogram counts samples into equal-width bins over [lo, hi); values
// outside clamp to the edge bins. It returns the bin counts.
func Histogram(xs []float64, lo, hi float64, bins int) []int {
	out := make([]int, bins)
	if bins == 0 || hi <= lo {
		return out
	}
	w := (hi - lo) / float64(bins)
	for _, x := range xs {
		i := int((x - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		out[i]++
	}
	return out
}

// MeanMinOfR estimates E[min of r i.i.d. draws] from a sample distribution
// by exact order statistics on the empirical CDF: for sorted samples x_i,
// P(min > x_i) = ((n-i-1)/n)^r.
func (c *CDF) MeanMinOfR(r int) float64 {
	n := len(c.sorted)
	if n == 0 {
		return 0
	}
	if r <= 1 {
		sum := 0.0
		for _, x := range c.sorted {
			sum += x
		}
		return sum / float64(n)
	}
	// E[min] = Σ_i x_(i) · [P(min >= x_(i)) - P(min >= x_(i+1))]
	// with P(min >= x_(i)) = ((n-i)/n)^r for the empirical distribution.
	mean := 0.0
	prev := 1.0 // P(min >= x_(0)) = 1
	for i := 0; i < n; i++ {
		next := math.Pow(float64(n-i-1)/float64(n), float64(r))
		mean += c.sorted[i] * (prev - next)
		prev = next
	}
	return mean
}
