// LT decoding: belief-propagation peeling with lazy XOR release, plus an
// inactivation-style GF(2) elimination fallback (reusing internal/bitmat)
// so a stalled ripple does not cost tens of percent of extra reception —
// decoding completes near the rank bound, k plus a handful of packets.
package lt

import (
	"fmt"

	"repro/internal/bitmat"
	"repro/internal/code"
	"repro/internal/gf"
)

// pkt is one buffered coded packet. data holds the raw payload as received;
// resolved neighbors are NOT substituted into it eagerly — the XOR work is
// deferred until the packet is released (its unresolved count reaches one),
// so each payload is touched O(degree) times total instead of once per
// neighbor resolution order permutation.
type pkt struct {
	index     uint32
	data      []byte
	remaining int32 // unresolved neighbors; 0 = retired (consumed or redundant)
}

type decoder struct {
	c *Codec

	values   [][]byte // per source symbol; nil while unresolved
	resolved int
	// Waiter lists (symbol -> ids of buffered packets covering it) as
	// linked nodes in one growable arena: registration is an append plus
	// a head swap, never a per-symbol allocation.
	whead  []int32 // per symbol: index into wnodes, -1 = empty
	wnodes []wnode
	pkts   []pkt
	seen   map[uint32]struct{} // distinct accepted indices
	relq   []int32             // packet ids whose remaining just hit 1
	active int                 // buffered packets with remaining > 0

	// Elimination gating: after a failed fallback at rank r with u
	// unresolved symbols, at least u-r more independent equations are
	// needed; needMore counts arrivals down so the cubic elimination is
	// not retried on every packet.
	needMore int

	nbuf     []int // shared neighbor scratch
	done     bool
	released int // symbol-release XOR operations (code.ReleaseCounter)

	// Slab arena + free list for payload buffers: the steady-state intake
	// path allocates O(1) slabs per 16 packets instead of one buffer per
	// packet (the Tornado decoder's allocation shape).
	slab []byte
	free [][]byte
}

// wnode is one waiter registration: packet id, plus the next node on the
// same symbol's list.
type wnode struct {
	id   int32
	next int32
}

// NewDecoder implements code.Codec.
func (c *Codec) NewDecoder() code.Decoder {
	d := &decoder{
		c:      c,
		values: make([][]byte, c.k),
		whead:  make([]int32, c.k),
		wnodes: make([]wnode, 0, 2*c.k),
		pkts:   make([]pkt, 0, c.k/2+16),
		seen:   make(map[uint32]struct{}, c.k+c.k/8),
	}
	for s := range d.whead {
		d.whead[s] = -1
	}
	return d
}

// Add implements code.Decoder.
func (d *decoder) Add(i int, data []byte) (bool, error) {
	if err := code.CheckPacket(i, data, code.UnboundedN, d.c.packetLen); err != nil {
		return d.done, err
	}
	if d.done {
		return true, nil
	}
	index := uint32(i)
	if _, dup := d.seen[index]; dup {
		return false, nil
	}
	d.seen[index] = struct{}{}
	d.nbuf = d.c.NeighborsInto(index, d.nbuf)
	unresolved := 0
	last := -1
	for _, nb := range d.nbuf {
		if d.values[nb] == nil {
			unresolved++
			last = nb
		}
	}
	switch unresolved {
	case 0:
		// Redundant at arrival: every neighbor already known. It adds no
		// equation, so it must not count against a pending elimination
		// deficit either.
	case 1:
		// Immediately releasable: XOR the resolved neighbors out and the
		// remaining symbol's value is exposed.
		d.released++
		val := d.alloc()
		copy(val, data)
		for _, nb := range d.nbuf {
			if v := d.values[nb]; v != nil {
				gf.XORSlice(val, v)
			}
		}
		d.resolve(last, val)
		d.drainRipple()
	default:
		id := int32(len(d.pkts))
		buf := d.alloc()
		copy(buf, data)
		d.pkts = append(d.pkts, pkt{index: index, data: buf, remaining: int32(unresolved)})
		d.active++
		for _, nb := range d.nbuf {
			if d.values[nb] == nil {
				d.addWaiter(nb, id)
			}
		}
	}
	if unresolved > 0 && d.needMore > 0 {
		// Only packets that contributed an equation (a new row or a direct
		// resolution) pay down a failed elimination's rank deficit.
		d.needMore--
	}
	if !d.done {
		d.tryEliminate()
	}
	return d.done, nil
}

// resolve records symbol s's value and decrements the unresolved count of
// every buffered packet covering it; packets reaching count one join the
// release queue (the ripple).
func (d *decoder) resolve(s int, val []byte) {
	d.values[s] = val
	d.resolved++
	if d.resolved == d.c.k {
		d.finish()
		return
	}
	for nid := d.whead[s]; nid >= 0; nid = d.wnodes[nid].next {
		id := d.wnodes[nid].id
		p := &d.pkts[id]
		if p.remaining > 0 {
			p.remaining--
			switch p.remaining {
			case 1:
				d.relq = append(d.relq, id)
			case 0:
				// Was already queued for release with this as its last
				// unresolved symbol; now fully covered, hence redundant.
				d.freeBuf(p.data)
				p.data = nil
				d.active--
			}
		}
	}
	d.whead[s] = -1 // nodes stay in the arena; freed wholesale at finish
}

// drainRipple releases queued packets until the ripple is empty or the
// decode completes. Releasing a packet performs its whole deferred XOR at
// once: the raw payload combined with every resolved neighbor value yields
// the one still-unresolved neighbor.
func (d *decoder) drainRipple() {
	for len(d.relq) > 0 && !d.done {
		id := d.relq[len(d.relq)-1]
		d.relq = d.relq[:len(d.relq)-1]
		p := &d.pkts[id]
		if p.remaining != 1 {
			continue // raced to 0: became redundant while queued
		}
		d.released++
		d.nbuf = d.c.NeighborsInto(p.index, d.nbuf)
		val := p.data
		target := -1
		for _, nb := range d.nbuf {
			if v := d.values[nb]; v != nil {
				gf.XORSlice(val, v)
			} else {
				target = nb
			}
		}
		p.remaining = 0
		p.data = nil
		d.active--
		if target >= 0 {
			d.resolve(target, val)
		}
	}
}

// elimMax bounds the size of the residual system the inactivation fallback
// will solve: elimination is cubic in the unresolved-symbol count, so the
// decoder waits for peeling to shrink the residual below ~k/8 before paying
// it. Peeling alone closes most of the gap once reception passes k — the
// fallback only finishes the tail the ripple would otherwise stall on.
func (d *decoder) elimMax() int {
	if m := d.c.k / 8; m > 768 {
		return m
	}
	return 768
}

// tryEliminate runs the inactivation fallback when the ripple has dried up:
// the residual system — one GF(2) row per still-buffered packet over the
// unresolved symbols — is solved directly once it has at least as many
// equations as unknowns and is small enough (elimMax). On failure the rank
// deficit gates the next attempt, so the cubic cost is paid O(1) times per
// decode, not per packet.
func (d *decoder) tryEliminate() {
	cols := d.c.k - d.resolved
	rows := d.active
	if cols == 0 || cols > d.elimMax() || d.needMore > 0 || rows < cols {
		return
	}
	colOf := make(map[int]int, cols)
	syms := make([]int, 0, cols)
	for s := 0; s < d.c.k; s++ {
		if d.values[s] == nil {
			colOf[s] = len(syms)
			syms = append(syms, s)
		}
	}
	m := bitmat.New(rows, cols)
	rhs := make([][]byte, rows)
	store := make([]byte, rows*d.c.packetLen)
	r := 0
	for i := range d.pkts {
		p := &d.pkts[i]
		if p.remaining == 0 {
			continue
		}
		buf := store[r*d.c.packetLen : (r+1)*d.c.packetLen]
		copy(buf, p.data)
		d.nbuf = d.c.NeighborsInto(p.index, d.nbuf)
		for _, nb := range d.nbuf {
			if v := d.values[nb]; v != nil {
				gf.XORSlice(buf, v)
			} else {
				m.Set(r, colOf[nb], true)
			}
		}
		rhs[r] = buf
		r++
	}
	sol, rank, ok := bitmat.TrySolve(m, rhs)
	if !ok {
		d.needMore = cols - rank
		return
	}
	for ci, s := range syms {
		d.values[s] = sol[ci]
	}
	d.released += cols // each solved column is one exposed symbol
	d.resolved = d.c.k
	d.finish()
}

// finish releases the buffered packets and marks the decode complete.
func (d *decoder) finish() {
	d.done = true
	d.pkts = nil
	d.relq = nil
	d.whead = nil
	d.wnodes = nil
	d.slab = nil
	d.free = nil
}

// alloc hands out one packet buffer from the slab arena (contents
// arbitrary — callers copy over the full length).
func (d *decoder) alloc() []byte {
	if n := len(d.free); n > 0 {
		b := d.free[n-1]
		d.free = d.free[:n-1]
		return b
	}
	pl := d.c.packetLen
	if len(d.slab) < pl {
		n := 16 * pl
		if n < 16384 {
			n = 16384
		}
		d.slab = make([]byte, n)
	}
	b := d.slab[:pl:pl]
	d.slab = d.slab[pl:]
	return b
}

func (d *decoder) freeBuf(b []byte) {
	if b != nil {
		d.free = append(d.free, b)
	}
}

// addWaiter registers packet id on symbol s: one arena append, one head
// swap.
func (d *decoder) addWaiter(s int, id int32) {
	d.wnodes = append(d.wnodes, wnode{id: id, next: d.whead[s]})
	d.whead[s] = int32(len(d.wnodes) - 1)
}

// Done implements code.Decoder.
func (d *decoder) Done() bool { return d.done }

// Received implements code.Decoder: distinct accepted packets.
func (d *decoder) Received() int { return len(d.seen) }

// Released implements code.ReleaseCounter: symbol-release XOR operations
// performed so far. An LT code is never systematic, so every recovered
// symbol costs at least one release — the counter is nonzero for any
// completed decode (contrast the raptor decoder at zero loss).
func (d *decoder) Released() int { return d.released }

// Source implements code.Decoder.
func (d *decoder) Source() ([][]byte, error) {
	if !d.done {
		return nil, code.ErrNotReady
	}
	for s, v := range d.values {
		if v == nil {
			return nil, fmt.Errorf("lt: symbol %d unresolved after completion", s)
		}
	}
	return d.values, nil
}
