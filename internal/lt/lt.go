// Package lt implements a Luby Transform code: the rateless realization of
// the paper's ideal digital fountain (§3, §9). Where the repository's
// fixed-rate codecs stretch k source packets into n = 2k encoding packets
// and force the carousel to cycle, an LT encoder draws encoding packets
// from an effectively unlimited index space — packet i's degree and
// neighbor set are a pure function of (session seed, i), so any sender that
// knows the seed can produce packet i independently, and any k(1+ε)
// distinct packets reconstruct the source.
//
// The degree distribution is the robust soliton ("Primer and Recent
// Developments on Fountain Codes", Qureshi et al.): the ideal soliton
// ρ(1) = 1/k, ρ(d) = 1/(d(d-1)) keeps the expected ripple at one symbol per
// recovery, and the correction τ concentrates extra mass on degree 1..D
// (D ≈ k/R, R = c·ln(k/δ)·√k) so the ripple survives variance and the
// decoder fails with probability at most δ after k + O(√k·ln²(k/δ))
// packets. Tunables c and δ trade average degree against ripple robustness.
//
// Decoding is belief-propagation peeling with lazy XOR release (see
// decoder.go), backed by an inactivation-style GF(2) elimination fallback
// so reception overhead stays near the rank bound instead of stalling on an
// empty ripple.
package lt

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/code"
	"repro/internal/gf"
)

// Default degree-distribution parameters: a moderate spike (c) and failure
// target (δ) that keep the average degree near ln(k) while leaving the
// peeling decoder a comfortable ripple at k in the thousands.
const (
	DefaultC     = 0.05
	DefaultDelta = 0.5
)

// Codec is a rateless LT code over fixed-size packets. It is immutable
// after construction and safe for concurrent use; the degree CDF is built
// once and shared by every encoder and decoder of the session.
type Codec struct {
	k         int
	packetLen int
	seed      int64
	c         float64
	delta     float64
	cdf       []float64 // cdf[d-1] = P(degree <= d), d = 1..k
}

// New constructs the codec for k source packets of packetLen bytes. The
// seed is the advance agreement between sender and receivers (§5.1): both
// sides derive every packet's degree and neighbor set from it. c <= 0 or
// delta outside (0,1) select the defaults.
func New(k, packetLen int, seed int64, c, delta float64) (*Codec, error) {
	if k <= 0 {
		return nil, fmt.Errorf("lt: invalid k=%d", k)
	}
	if packetLen <= 0 {
		return nil, fmt.Errorf("lt: invalid packetLen=%d", packetLen)
	}
	if c <= 0 {
		c = DefaultC
	}
	if delta <= 0 || delta >= 1 {
		delta = DefaultDelta
	}
	lc := &Codec{k: k, packetLen: packetLen, seed: seed, c: c, delta: delta}
	lc.cdf = robustSolitonCDF(k, c, delta)
	return lc, nil
}

// robustSolitonCDF builds the cumulative robust soliton distribution
// μ(d) = (ρ(d) + τ(d)) / β over degrees 1..k.
func robustSolitonCDF(k int, c, delta float64) []float64 {
	fk := float64(k)
	pdf := make([]float64, k+1) // pdf[d], d = 1..k
	pdf[1] = 1 / fk
	for d := 2; d <= k; d++ {
		pdf[d] = 1 / (float64(d) * float64(d-1))
	}
	// τ: R/(d·k) for d < D, R·ln(R/δ)/k at the spike D = round(k/R). For
	// tiny k the spike can collapse onto degree 1 or exceed k; the clamps
	// degrade gracefully to the ideal soliton.
	R := c * math.Log(fk/delta) * math.Sqrt(fk)
	if R > 1 {
		D := int(math.Round(fk / R))
		if D < 1 {
			D = 1
		}
		if D > k {
			D = k
		}
		for d := 1; d < D; d++ {
			pdf[d] += R / (float64(d) * fk)
		}
		pdf[D] += R * math.Log(R/delta) / fk
	}
	cdf := make([]float64, k)
	sum := 0.0
	for d := 1; d <= k; d++ {
		sum += pdf[d]
		cdf[d-1] = sum
	}
	// Normalize by β = Σ(ρ+τ) and pin the tail so a draw of u → 1 can
	// never fall off the table.
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[k-1] = 1
	return cdf
}

// Name implements code.Codec.
func (c *Codec) Name() string { return "lt" }

// K implements code.Codec.
func (c *Codec) K() int { return c.k }

// N implements code.Codec: the encoding is unbounded; every index below
// the code.UnboundedN sentinel is a valid encoding packet.
func (c *Codec) N() int { return code.UnboundedN }

// PacketLen implements code.Codec.
func (c *Codec) PacketLen() int { return c.packetLen }

// Params returns the degree-distribution tunables (c, δ) in effect.
func (c *Codec) Params() (cc, delta float64) { return c.c, c.delta }

// Seed returns the session seed the packet streams derive from.
func (c *Codec) Seed() int64 { return c.seed }

// RatelessCode implements code.Rateless.
func (c *Codec) RatelessCode() {}

// ErrUnbounded is returned by Encode: a rateless code has no finite "full
// encoding" to materialize.
var ErrUnbounded = errors.New("lt: rateless codec has no finite encoding; use EncodeRange")

// Encode implements code.Codec by failing: callers must use EncodeRange
// (core sessions detect the Rateless capability and never call Encode).
func (c *Codec) Encode(src [][]byte) ([][]byte, error) { return nil, ErrUnbounded }

// prng is a splitmix64 stream. Packet index i's stream is seeded by mixing
// the session seed with i, so every encoding packet is an independent,
// reproducible draw — the property that lets unstaggered mirrors emit
// disjoint useful packets with no coordination beyond distinct indices.
type prng struct{ state uint64 }

func (p *prng) next() uint64 {
	p.state += 0x9E3779B97F4A7C15
	z := p.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float64 in [0, 1).
func (p *prng) uniform() float64 { return float64(p.next()>>11) / (1 << 53) }

// stream returns packet index i's PRNG, decorrelated from neighboring
// indices by one full mix round over (seed, index).
func (c *Codec) stream(index uint32) prng {
	p := prng{state: uint64(c.seed) ^ (uint64(index)+1)*0xBF58476D1CE4E5B9}
	p.state = p.next()
	return p
}

// degree samples the robust soliton distribution with the stream's next
// draw: binary search for the first CDF entry covering u.
func (c *Codec) degree(p *prng) int {
	u := p.uniform()
	return sort.SearchFloat64s(c.cdf, u) + 1
}

// Degree returns encoding packet index's degree — deterministic, in
// [1, k].
func (c *Codec) Degree(index uint32) int {
	p := c.stream(index)
	d := c.degree(&p)
	if d > c.k {
		d = c.k // unreachable (cdf tail is pinned); belt and braces
	}
	return d
}

// NeighborsInto writes encoding packet index's neighbor set — the source
// packets XORed into it — into buf (reused if capacity allows) and returns
// it. The set is deterministic in (seed, index, k), duplicate-free, and
// every entry is in [0, k).
func (c *Codec) NeighborsInto(index uint32, buf []int) []int {
	p := c.stream(index)
	d := c.degree(&p)
	buf = buf[:0]
	if d >= c.k {
		// Full-degree packet: enumerate rather than reject (coupon-collector
		// rejection at d = k would cost k·ln k draws).
		for i := 0; i < c.k; i++ {
			buf = append(buf, i)
		}
		return buf
	}
	// Rejection sampling keeps the draw sequence identical regardless of
	// how duplicates are detected: a linear scan for the common degrees
	// (including the robust-soliton spike, which would otherwise allocate
	// a map on a meaningful fraction of packets), a set once quadratic
	// scanning would genuinely bite.
	var dup map[int]struct{}
	if d > 256 {
		dup = make(map[int]struct{}, d)
	}
	for len(buf) < d {
		cand := int(p.next() % uint64(c.k))
		if dup != nil {
			if _, seen := dup[cand]; seen {
				continue
			}
			dup[cand] = struct{}{}
		} else {
			seen := false
			for _, b := range buf {
				if b == cand {
					seen = true
					break
				}
			}
			if seen {
				continue
			}
		}
		buf = append(buf, cand)
	}
	return buf
}

// EncodeRange implements code.RangeEncoder: encoding packets [lo, hi), each
// freshly allocated (an LT code is not systematic — every output is a coded
// combination, so nothing aliases src).
func (c *Codec) EncodeRange(src [][]byte, lo, hi int) ([][]byte, error) {
	if err := code.CheckSrc(src, c.k, c.packetLen); err != nil {
		return nil, err
	}
	if lo < 0 || hi < lo || hi > code.UnboundedN {
		return nil, fmt.Errorf("lt: encode range [%d,%d) out of [0,%d)", lo, hi, code.UnboundedN)
	}
	out := make([][]byte, hi-lo)
	store := make([]byte, (hi-lo)*c.packetLen)
	var nbuf []int
	for i := lo; i < hi; i++ {
		p := store[(i-lo)*c.packetLen : (i-lo+1)*c.packetLen]
		nbuf = c.NeighborsInto(uint32(i), nbuf)
		for _, nb := range nbuf {
			gf.XORSlice(p, src[nb])
		}
		out[i-lo] = p
	}
	return out, nil
}

// Interface conformance.
var (
	_ code.Codec        = (*Codec)(nil)
	_ code.RangeEncoder = (*Codec)(nil)
	_ code.Rateless     = (*Codec)(nil)
)
