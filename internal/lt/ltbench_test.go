package lt

import (
	"math/rand"
	"testing"
)

func BenchmarkDecodeAllocK1000(b *testing.B) {
	const k, pl = 1000, 1024
	c, err := New(k, pl, 1, 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	src := make([][]byte, k)
	for i := range src {
		src[i] = make([]byte, pl)
		rng.Read(src[i])
	}
	budget := k + k/4 + 256
	base := 1 << 28
	b.SetBytes(int64(k * pl))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		pool, err := c.EncodeRange(src, base, base+budget)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		d := c.NewDecoder()
		done := false
		for j := 0; j < len(pool) && !done; j++ {
			if done, err = d.Add(base+j, pool[j]); err != nil {
				b.Fatal(err)
			}
		}
		if !done {
			b.Fatal("budget exhausted")
		}
		base += budget
	}
}
